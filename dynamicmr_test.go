package dynamicmr

import (
	"fmt"
	"strings"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/core"
	"dynamicmr/internal/mapreduce"
)

func clusterConfigZero() cluster.Config { return cluster.Config{} }

func demoCluster(t *testing.T) *Cluster {
	t.Helper()
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 1, Skew: 1, Selectivity: 0.002, Rows: 200_000, Partitions: 40, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClusterDefaults(t *testing.T) {
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	if c.Now() != 0 {
		t.Fatal("clock not at zero")
	}
	if got := c.JobTracker().ClusterStatus().TotalMapSlots; got != 40 {
		t.Fatalf("TotalMapSlots = %d, want 40 (paper testbed)", got)
	}
	if len(c.Policies().Names()) != 5 {
		t.Fatal("Table I policies missing")
	}
}

func TestNewClusterInvalidHardware(t *testing.T) {
	if _, err := NewCluster(WithHardware(clusterConfigZero())); err == nil {
		t.Fatal("invalid hardware accepted")
	}
}

func TestMultiUserOption(t *testing.T) {
	c, err := NewCluster(WithMultiUserSlots())
	if err != nil {
		t.Fatal(err)
	}
	if got := c.JobTracker().ClusterStatus().TotalMapSlots; got != 160 {
		t.Fatalf("TotalMapSlots = %d, want 160", got)
	}
}

func TestLoadAndQuery(t *testing.T) {
	c := demoCluster(t)
	if got := c.Tables(); len(got) != 1 || got[0] != "lineitem" {
		t.Fatalf("Tables = %v", got)
	}
	res, err := c.Query("SELECT L_ORDERKEY, L_PARTKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 50")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Job == nil || res.Job.ResponseTime() <= 0 {
		t.Fatal("no job metadata")
	}
	if c.Now() <= 0 {
		t.Fatal("virtual clock did not advance")
	}
}

func TestSampleDirectAPI(t *testing.T) {
	c := demoCluster(t)
	res, err := c.Sample("lineitem", "L_QUANTITY > 50", 25, core.PolicyC, []string{"L_ORDERKEY"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 25 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Client == nil || res.Client.Policy().Name != core.PolicyC {
		t.Fatal("policy not honoured")
	}
	for _, r := range res.Rows {
		if r.Len() != 1 {
			t.Fatalf("projection not applied: %v", r)
		}
	}
	// Default policy restored for subsequent queries.
	if got := c.Session("default").Get(mapreduce.ConfDynamicPolicy, ""); got != "LA" {
		t.Fatalf("policy override leaked: %q", got)
	}
}

func TestSampleUnknownPolicy(t *testing.T) {
	c := demoCluster(t)
	if _, err := c.Sample("lineitem", "L_QUANTITY > 50", 5, "nope", nil); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestSessionsAreSticky(t *testing.T) {
	c := demoCluster(t)
	s1 := c.Session("alice")
	s1.Set("dynamic.job.policy", "HA")
	if c.Session("alice") != s1 {
		t.Fatal("session not reused")
	}
	if c.Session("bob") == s1 {
		t.Fatal("sessions shared across users")
	}
}

func TestWithFairScheduler(t *testing.T) {
	c, err := NewCluster(WithFairScheduler(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.JobTracker().Scheduler().Name(); got != "fair" {
		t.Fatalf("scheduler = %q", got)
	}
}

func TestParsePolicyXMLFacade(t *testing.T) {
	doc, err := core.DefaultRegistry().PolicyXML()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := ParsePolicyXML(doc)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(WithPolicies(reg))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Policies().Names()) != 5 {
		t.Fatal("custom registry not applied")
	}
}

func TestDuplicateTable(t *testing.T) {
	c := demoCluster(t)
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{Scale: 1, Rows: 1000, Partitions: 2}); err == nil {
		t.Fatal("duplicate table accepted")
	}
}

// TestHeadlineProperty verifies the paper's central claim end to end
// through the public API: dynamic sampling response times depend on
// the sample size, not the dataset size, while static (Hadoop-policy)
// response times grow with the data.
func TestHeadlineProperty(t *testing.T) {
	var dynTimes, statTimes []float64
	for _, scale := range []int{2, 4, 8} {
		c, err := NewCluster()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: scale, Skew: 0, Selectivity: 0.005,
			Rows: int64(scale) * 400_000, Seed: 7,
		}); err != nil {
			t.Fatal(err)
		}
		dyn, err := c.Sample("lineitem", "L_DISCOUNT = 0.11", 200, "LA", nil)
		if err != nil {
			t.Fatal(err)
		}
		stat, err := c.Sample("lineitem", "L_DISCOUNT = 0.11", 200, "Hadoop", nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dyn.Rows) != 200 || len(stat.Rows) != 200 {
			t.Fatalf("scale %d: samples %d/%d", scale, len(dyn.Rows), len(stat.Rows))
		}
		dynTimes = append(dynTimes, dyn.Job.ResponseTime())
		statTimes = append(statTimes, stat.Job.ResponseTime())
	}
	// Static response grows with scale; dynamic stays within 2x of its
	// smallest-scale value while the data grew 4x.
	if statTimes[2] <= statTimes[0]*1.5 {
		t.Errorf("static times did not grow with data: %v", statTimes)
	}
	if dynTimes[2] > dynTimes[0]*2 {
		t.Errorf("dynamic times grew with data: %v", dynTimes)
	}
}

func TestEstimateSelectivity(t *testing.T) {
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	// True selectivity 2%: 8000 matches in 400k rows over 40 partitions.
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 1, Skew: 0, Selectivity: 0.02, Rows: 400_000, Partitions: 40, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}
	est, err := c.EstimateSelectivity("lineitem", "L_DISCOUNT = 0.11", 0.1, "LA")
	if err != nil {
		t.Fatal(err)
	}
	if est.Selectivity < 0.015 || est.Selectivity > 0.025 {
		t.Fatalf("estimate %v far from true 0.02", est.Selectivity)
	}
	if est.PartitionsProcessed >= 40 {
		t.Fatalf("estimation scanned all %d partitions — no savings", est.PartitionsProcessed)
	}
	if est.Records == 0 || est.Matches == 0 {
		t.Fatalf("empty observation: %+v", est)
	}
	if est.ResponseTime <= 0 {
		t.Fatal("no response time")
	}
}

func TestEstimateSelectivityErrors(t *testing.T) {
	c := demoCluster(t)
	if _, err := c.EstimateSelectivity("nope", "L_DISCOUNT = 0.11", 0.1, ""); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := c.EstimateSelectivity("lineitem", "NOPE = 1", 0.1, ""); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := c.EstimateSelectivity("lineitem", "L_DISCOUNT <", 0.1, ""); err == nil {
		t.Error("malformed predicate accepted")
	}
	if _, err := c.EstimateSelectivity("lineitem", "L_DISCOUNT = 0.11", 0.1, "bogus"); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestEngineModeMemoryLifecycle(t *testing.T) {
	c, err := NewCluster(WithEngineMode(EngineModeMemory))
	if err != nil {
		t.Fatal(err)
	}
	if got := c.EngineMode(); got != EngineModeMemory {
		t.Fatalf("EngineMode = %q", got)
	}
	if _, err := c.LoadLineItem("lineitem", DatasetSpec{
		Scale: 1, Skew: 1, Selectivity: 0.002, Rows: 200_000, Partitions: 40, Seed: 5,
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		res, err := c.Query("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 50")
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 50 {
			t.Fatalf("query %d: rows = %d", i, len(res.Rows))
		}
	}
	st, ok := c.ResidentStats()
	if !ok {
		t.Fatal("memory-mode cluster reports no resident stats")
	}
	if st.Stores == 0 || st.Parts == 0 {
		t.Fatalf("queries left nothing resident: %+v", st)
	}
	c.Close()
	st, _ = c.ResidentStats()
	if st.Parts != 0 || st.ResidentBytes != 0 || st.PinnedBlocks != 0 || st.Sessions != 0 {
		t.Fatalf("Close did not purge the resident store: %+v", st)
	}
	c.Close() // idempotent
}

func TestEngineModeMatchesBaselineThroughFacade(t *testing.T) {
	run := func(mode string) (string, float64) {
		c, err := NewCluster(WithEngineMode(mode))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.LoadLineItem("lineitem", DatasetSpec{
			Scale: 1, Skew: 1, Selectivity: 0.002, Rows: 200_000, Partitions: 40, Seed: 5,
		}); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for i := 0; i < 2; i++ {
			res, err := c.Query("SELECT L_ORDERKEY, L_PARTKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 50")
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res.Rows {
				fmt.Fprintf(&sb, "%v\n", r)
			}
		}
		return sb.String(), c.Now()
	}
	baseRows, baseNow := run(EngineModeBaseline)
	memRows, memNow := run(EngineModeMemory)
	if baseRows != memRows {
		t.Error("memory engine changed query output")
	}
	if baseNow != memNow {
		t.Errorf("memory engine changed virtual clock: baseline %v, memory %v", baseNow, memNow)
	}
}

func TestEngineModeErrors(t *testing.T) {
	if _, err := NewCluster(WithEngineMode("turbo")); err == nil {
		t.Fatal("unknown engine mode accepted")
	}
	c, err := NewCluster()
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.EngineMode(); got != EngineModeBaseline {
		t.Fatalf("default EngineMode = %q", got)
	}
	if _, ok := c.ResidentStats(); ok {
		t.Fatal("baseline cluster reports resident stats")
	}
}

func TestQueryExplainThroughFacade(t *testing.T) {
	c := demoCluster(t)
	res, err := c.Query("EXPLAIN SELECT * FROM lineitem WHERE L_QUANTITY > 50 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "dynamic job") {
		t.Fatalf("explain:\n%s", res.Text)
	}
}
