// Command experiments regenerates every table and figure from the
// paper's evaluation section (§V) on the simulated cluster and prints
// the result grids, each annotated with the paper's qualitative claims
// for comparison.
//
// Usage:
//
//	experiments [-run all|tableI|tableII|tableIII|figure4|figure5|figure6|figure7|figure8]
//	            [-mode quick|paper] [-j N] [-scan-workers N] [-engine-mode baseline|memory]
//	            [-input-path full|skip|index] [-policies LIST] [-csv]
//	            [-trace-out DIR] [-report-out DIR] [-sample-interval S]
//	            [-diag-out DIR] [-archive-out DIR]
//	            [-alert-rules FILE] [-alerts-out DIR]
//	            [-log-out FILE] [-log-level LEVEL]
//	            [-bench-json FILE]
//
// -j runs up to N sweep cells concurrently (default runtime.NumCPU).
// Parallelism is across cells only: each cell owns a private simulated
// cluster whose virtual time never observes the pool, and results are
// assembled in enumeration order, so output is byte-identical to -j 1.
//
// -scan-workers sizes the sweep-wide scan-executor pool (default
// runtime.NumCPU; 0 disables it). The pool runs pure map record scans
// off the simulator goroutines, overlapping real compute with
// simulated I/O time; simulated costs come from split metadata and
// results are joined at completion-event time, so output is
// byte-identical at any setting.
//
// -engine-mode memory attaches a sweep-wide resident store (the
// in-memory session engine): repeated jobs over the same splits reuse
// partitioned, pre-sorted map outputs instead of rebuilding them, so a
// GROW round only shuffles its newly grabbed splits. Simulated costs
// are untouched, so output is byte-identical to baseline; only real
// wall-clock time and allocations improve.
//
// -input-path selects how map tasks read their splits: full (the
// default) reads every block and is byte-identical to the seed; skip
// consults the load-time zone maps and charges simulated I/O only for
// blocks that can contain predicate matches; index additionally reads
// matches through the per-partition clustered index and grabs
// statistically promising splits first. skip and index change
// simulated costs and provider decisions — the tables quantify the
// difference rather than hide it.
//
// -policies restricts the sweeps to a comma-separated subset of
// Table I's policies (e.g. -policies LA,Hadoop); CI's smoke job uses
// it to run a single figure-6 cell quickly.
//
// -bench-json writes per-artifact wall-clock timings as JSON to FILE
// (the BENCH_results.json perf trajectory).
//
// With -trace-out, each multi-user workload cell (figures 6-8) writes
// its 30-second utilization timeline as a CSV file into DIR (created
// if missing), alongside the printed summary tables.
//
// With -report-out, every figure cell (5-8) additionally runs with
// tracing and a utilization sampler enabled and writes one
// self-contained HTML run report into DIR (created if missing):
// cluster/per-node time-series, a slot-occupancy Gantt joined from the
// trace spans, and the Input Provider decision log. -sample-interval
// overrides the sampler cadence (virtual seconds; default 5 s for the
// single-user figure-5 cells, 30 s for the workload figures).
//
// With -diag-out, every figure cell (5-8) additionally runs with
// tracing enabled and writes its per-job diagnosis (critical path,
// time breakdown, anomalies) as a CSV file into DIR (created if
// missing). The diagnosis invariants — critical path tiles the
// makespan, breakdown components sum to it — are enforced per cell.
//
// With -archive-out, every figure cell (5-8) additionally runs with
// tracing enabled and writes one cross-run archive into DIR (created
// if missing): <cell>.archive.gz, schema dynamicmr.archive/1, holding
// the cell's trace spans, Input Provider decisions, per-job diagnoses,
// counters/gauges and run config. Archives from two sweeps feed
// `dynmr diff` for regression attribution. Cell archives are
// unstamped, so their bytes are deterministic across reruns.
//
// With -alert-rules, every figure cell (5-8) runs a private
// time-series engine (internal/tsdb) on its own virtual clock,
// evaluating the file's declarative alert/SLO rules (JSON
// {"rules": [...]}; threshold, rate_of_change, slo_burn); -alerts-out
// writes each archived cell's alert dump into DIR (created if
// missing) as <cell>.alerts.json, schema dynamicmr.alerts/1.
// -alerts-out without -alert-rules still runs the engine, so the
// dumps are schema-valid with an empty rule set. When -archive-out is
// also set, the cell archives carry the series and alert log, and
// `dynmr diff` between two sweeps attributes alert-set differences.
// Alert dumps carry only virtual timestamps, so cell bytes stay
// deterministic across reruns.
//
// With -log-out, the sweeps' structured log stream (job lifecycle,
// Input Provider decisions, query execution) is written to FILE as
// NDJSON, each record stamped with the originating cell's virtual
// clock; -log-level gates the records (debug includes every Input
// Provider decision).
//
// Quick mode (default) shrinks datasets and measurement windows about
// an order of magnitude and finishes in minutes; paper mode uses the
// full §V parameters (TPC-H scales 5-100, k = 10 000, 10 users,
// hour-long virtual windows).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"dynamicmr/internal/experiments"
	"dynamicmr/internal/tsdb"
	"dynamicmr/internal/vlog"
)

func main() {
	run := flag.String("run", "all", "comma-separated artifacts to regenerate: all, tableI, tableII, tableIII, figure4, figure5, figure6, figure7, figure8, ablationInterval, ablationThreshold, ablationGrab, ablationAdaptive, ablationEngine, ablationInputPath")
	mode := flag.String("mode", "quick", "quick (scaled-down, minutes) or paper (full §V parameters)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	traceOut := flag.String("trace-out", "", "directory for per-cell utilization timeline CSVs (figures 6-8)")
	reportOut := flag.String("report-out", "", "directory for per-cell self-contained HTML run reports (figures 5-8)")
	sampleInterval := flag.Float64("sample-interval", 0, "observability sampler cadence in virtual seconds for -report-out time-series (0 = per-figure default)")
	jobs := flag.Int("j", runtime.NumCPU(), "sweep cells to run concurrently (1 = sequential; output is identical either way)")
	scanWorkers := flag.Int("scan-workers", runtime.NumCPU(), "scan-executor pool size for off-sim-thread map scans (0 = inline; output is identical either way)")
	engineMode := flag.String("engine-mode", "baseline", "execution engine: baseline, or memory (resident map outputs reused across a sweep's jobs; output is identical either way)")
	inputPath := flag.String("input-path", "full", "map-task input path: full (every block read; seed-identical output), skip (zone-map skip-scan) or index (clustered-index reads + informed grab ordering)")
	policies := flag.String("policies", "", "comma-separated subset of Table I policies to sweep (default: all)")
	benchJSON := flag.String("bench-json", "", "write per-artifact wall-clock timings as JSON to FILE")
	diagOut := flag.String("diag-out", "", "directory for per-cell job-diagnosis CSVs (figures 5-8; enables tracing and enforces the diagnosis invariants)")
	archiveOut := flag.String("archive-out", "", "directory for per-cell cross-run archives (figures 5-8; *.archive.gz, compare with `dynmr diff`)")
	alertRules := flag.String("alert-rules", "", "load declarative alert/SLO rules from FILE (JSON {\"rules\": [...]}) and evaluate them on every cell's virtual clock")
	alertsOut := flag.String("alerts-out", "", "directory for per-cell alert dumps (figures 5-8; *.alerts.json, schema dynamicmr.alerts/1)")
	logOut := flag.String("log-out", "", "write the sweeps' virtual-clock NDJSON log stream to FILE")
	logLevel := flag.String("log-level", "info", "log level for -log-out: debug, info, warn or error")
	flag.Parse()

	var opt experiments.Options
	switch *mode {
	case "quick":
		opt = experiments.QuickOptions()
	case "paper":
		opt = experiments.DefaultOptions()
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (quick or paper)\n", *mode)
		os.Exit(2)
	}
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opt.TraceDir = *traceOut
	}
	if *reportOut != "" {
		if err := os.MkdirAll(*reportOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opt.ReportDir = *reportOut
	}
	if *diagOut != "" {
		if err := os.MkdirAll(*diagOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opt.DiagDir = *diagOut
	}
	if *archiveOut != "" {
		if err := os.MkdirAll(*archiveOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opt.ArchiveDir = *archiveOut
	}
	if *alertRules != "" {
		data, err := os.ReadFile(*alertRules)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		rules, err := tsdb.ParseRules(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		opt.AlertRules = rules
	}
	if *alertsOut != "" {
		if err := os.MkdirAll(*alertsOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opt.AlertsDir = *alertsOut
	}
	if *logOut != "" {
		level, err := vlog.ParseLevel(*logLevel)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(2)
		}
		f, err := os.Create(*logOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		opt.LogWriter = f
		opt.LogLevel = level
	}
	opt.SampleIntervalS = *sampleInterval
	opt.Parallelism = *jobs
	opt.ScanWorkers = *scanWorkers
	opt.EngineMode = *engineMode
	opt.InputPath = *inputPath
	if *policies != "" {
		opt.Policies = strings.Split(*policies, ",")
	}

	targets := strings.Split(strings.ToLower(*run), ",")
	want := func(name string) bool {
		for _, t := range targets {
			if t == "all" || t == strings.ToLower(name) {
				return true
			}
		}
		return false
	}

	emit := func(tables ...*experiments.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	type artifactTiming struct {
		Name    string  `json:"name"`
		Seconds float64 `json:"seconds"`
	}
	var timings []artifactTiming
	suiteStart := time.Now()
	timed := func(name string, f func() error) {
		if !want(name) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fail(name, err)
		}
		elapsed := time.Since(start)
		timings = append(timings, artifactTiming{Name: name, Seconds: elapsed.Seconds()})
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, elapsed.Round(time.Millisecond))
	}

	timed("tableI", func() error { emit(experiments.TableI()); return nil })
	timed("tableII", func() error {
		t, err := experiments.TableII(opt)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	timed("tableIII", func() error { emit(experiments.TableIII()); return nil })
	timed("figure4", func() error {
		t, err := experiments.Figure4(opt)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	timed("figure5", func() error {
		r, err := experiments.Figure5(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	timed("figure6", func() error {
		r, err := experiments.Figure6(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	timed("figure7", func() error {
		r, err := experiments.Figure7(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	timed("figure8", func() error {
		r, err := experiments.Figure8(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	for _, abl := range []struct {
		name string
		f    func(experiments.Options) (*experiments.Table, error)
	}{
		{"ablationInterval", experiments.AblationInterval},
		{"ablationThreshold", experiments.AblationThreshold},
		{"ablationGrab", experiments.AblationGrabScale},
		{"ablationAdaptive", experiments.AblationAdaptive},
		{"ablationEngine", experiments.AblationEngineMode},
		{"ablationInputPath", experiments.AblationInputPath},
	} {
		abl := abl
		timed(abl.name, func() error {
			t, err := abl.f(opt)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		})
	}

	if *benchJSON != "" {
		report := struct {
			Mode         string           `json:"mode"`
			Parallelism  int              `json:"parallelism"`
			ScanWorkers  int              `json:"scan_workers"`
			EngineMode   string           `json:"engine_mode"`
			InputPath    string           `json:"input_path"`
			GOMAXPROCS   int              `json:"gomaxprocs"`
			Policies     []string         `json:"policies"`
			Artifacts    []artifactTiming `json:"artifacts"`
			TotalSeconds float64          `json:"total_seconds"`
		}{
			Mode:         *mode,
			Parallelism:  *jobs,
			ScanWorkers:  *scanWorkers,
			EngineMode:   *engineMode,
			InputPath:    *inputPath,
			GOMAXPROCS:   runtime.GOMAXPROCS(0),
			Policies:     opt.Policies,
			Artifacts:    timings,
			TotalSeconds: time.Since(suiteStart).Seconds(),
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fail("bench-json", err)
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			fail("bench-json", err)
		}
		fmt.Fprintf(os.Stderr, "[benchmark timings written to %s]\n", *benchJSON)
	}
}
