// Command experiments regenerates every table and figure from the
// paper's evaluation section (§V) on the simulated cluster and prints
// the result grids, each annotated with the paper's qualitative claims
// for comparison.
//
// Usage:
//
//	experiments [-run all|tableI|tableII|tableIII|figure4|figure5|figure6|figure7|figure8]
//	            [-mode quick|paper] [-csv] [-trace-out DIR]
//
// With -trace-out, each multi-user workload cell (figures 6-8) writes
// its 30-second utilization timeline as a CSV file into DIR (created
// if missing), alongside the printed summary tables.
//
// Quick mode (default) shrinks datasets and measurement windows about
// an order of magnitude and finishes in minutes; paper mode uses the
// full §V parameters (TPC-H scales 5-100, k = 10 000, 10 users,
// hour-long virtual windows).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dynamicmr/internal/experiments"
)

func main() {
	run := flag.String("run", "all", "comma-separated artifacts to regenerate: all, tableI, tableII, tableIII, figure4, figure5, figure6, figure7, figure8, ablationInterval, ablationThreshold, ablationGrab, ablationAdaptive")
	mode := flag.String("mode", "quick", "quick (scaled-down, minutes) or paper (full §V parameters)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	traceOut := flag.String("trace-out", "", "directory for per-cell utilization timeline CSVs (figures 6-8)")
	flag.Parse()

	var opt experiments.Options
	switch *mode {
	case "quick":
		opt = experiments.QuickOptions()
	case "paper":
		opt = experiments.DefaultOptions()
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (quick or paper)\n", *mode)
		os.Exit(2)
	}
	if *traceOut != "" {
		if err := os.MkdirAll(*traceOut, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		opt.TraceDir = *traceOut
	}

	targets := strings.Split(strings.ToLower(*run), ",")
	want := func(name string) bool {
		for _, t := range targets {
			if t == "all" || t == strings.ToLower(name) {
				return true
			}
		}
		return false
	}

	emit := func(tables ...*experiments.Table) {
		for _, t := range tables {
			if *csv {
				fmt.Print(t.CSV())
			} else {
				fmt.Println(t.Render())
			}
		}
	}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}
	timed := func(name string, f func() error) {
		if !want(name) {
			return
		}
		start := time.Now()
		if err := f(); err != nil {
			fail(name, err)
		}
		fmt.Fprintf(os.Stderr, "[%s done in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	timed("tableI", func() error { emit(experiments.TableI()); return nil })
	timed("tableII", func() error {
		t, err := experiments.TableII(opt)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	timed("tableIII", func() error { emit(experiments.TableIII()); return nil })
	timed("figure4", func() error {
		t, err := experiments.Figure4(opt)
		if err != nil {
			return err
		}
		emit(t)
		return nil
	})
	timed("figure5", func() error {
		r, err := experiments.Figure5(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	timed("figure6", func() error {
		r, err := experiments.Figure6(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	timed("figure7", func() error {
		r, err := experiments.Figure7(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	timed("figure8", func() error {
		r, err := experiments.Figure8(opt)
		if err != nil {
			return err
		}
		emit(r.Tables()...)
		return nil
	})
	for _, abl := range []struct {
		name string
		f    func(experiments.Options) (*experiments.Table, error)
	}{
		{"ablationInterval", experiments.AblationInterval},
		{"ablationThreshold", experiments.AblationThreshold},
		{"ablationGrab", experiments.AblationGrabScale},
		{"ablationAdaptive", experiments.AblationAdaptive},
	} {
		abl := abl
		timed(abl.name, func() error {
			t, err := abl.f(opt)
			if err != nil {
				return err
			}
			emit(t)
			return nil
		})
	}
}
