// Command benchgate compares `go test -bench` output against the
// perf-trajectory budgets recorded in BENCH_results.json and exits
// non-zero on regression, so CI catches hot-path slowdowns the unit
// tests cannot see.
//
// Usage:
//
//	go test ./internal/sim ./internal/mapreduce -bench ... | benchgate [-budgets FILE] [-tolerance F] [INPUT]
//
// INPUT is a file holding the benchmark output ("-" or absent =
// stdin). Budgets come from the "bench_budgets" object of -budgets
// (default BENCH_results.json):
//
//	"bench_budgets": {
//	  "budgets": {
//	    "BenchmarkEventThroughput": {"ns_per_op": 63.2, "allocs_per_op": 0}
//	  }
//	}
//
// The gate is one-sided: a benchmark fails when its measured ns/op
// exceeds budget x (1 + tolerance), or its allocs/op exceed the
// integer allocation budget scaled the same way (a 0 budget therefore
// pins zero allocations). Running faster than budget always passes —
// budgets are ratchets, not targets. Every budgeted benchmark must
// appear in the input; a missing one fails the gate so renames don't
// silently drop coverage.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"strconv"
)

// budget is one benchmark's ceiling from BENCH_results.json.
type budget struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// result is one parsed `go test -bench` output line.
type result struct {
	nsPerOp     float64
	allocsPerOp int64
	hasAllocs   bool
}

// benchLine matches e.g.
//
//	BenchmarkEventThroughput-4  17983382  63.2 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.eE+]+) ns/op(?:\s+[\d.eE+]+ [MG]?B/s)?(?:\s+([\d.eE+]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	budgetsPath := flag.String("budgets", "BENCH_results.json", "JSON file whose bench_budgets object holds the per-benchmark ceilings")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression over budget before failing")
	flag.Parse()

	budgets, err := loadBudgets(*budgetsPath)
	if err != nil {
		fatal(err)
	}
	if len(budgets) == 0 {
		fatal(fmt.Errorf("%s has no bench_budgets entries", *budgetsPath))
	}

	in := os.Stdin
	if arg := flag.Arg(0); arg != "" && arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	failed := false
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		bud := budgets[name]
		res, ok := results[name]
		if !ok {
			fmt.Printf("FAIL %s: not found in benchmark output (renamed or no longer runs?)\n", name)
			failed = true
			continue
		}
		nsLimit := bud.NsPerOp * (1 + *tolerance)
		allocLimit := int64(math.Floor(float64(bud.AllocsPerOp) * (1 + *tolerance)))
		ok = true
		if res.nsPerOp > nsLimit {
			fmt.Printf("FAIL %s: %.1f ns/op exceeds budget %.1f ns/op (+%d%% tolerance -> limit %.1f)\n",
				name, res.nsPerOp, bud.NsPerOp, int(*tolerance*100), nsLimit)
			ok, failed = false, true
		}
		if res.hasAllocs && res.allocsPerOp > allocLimit {
			fmt.Printf("FAIL %s: %d allocs/op exceeds budget %d allocs/op (limit %d)\n",
				name, res.allocsPerOp, bud.AllocsPerOp, allocLimit)
			ok, failed = false, true
		}
		if ok {
			allocs := "?"
			if res.hasAllocs {
				allocs = strconv.FormatInt(res.allocsPerOp, 10)
			}
			fmt.Printf("ok   %s: %.1f ns/op (budget %.1f), %s allocs/op (budget %d)\n",
				name, res.nsPerOp, bud.NsPerOp, allocs, bud.AllocsPerOp)
		}
	}
	if failed {
		os.Exit(1)
	}
}

// loadBudgets extracts the bench_budgets object, ignoring the rest of
// the trajectory file.
func loadBudgets(path string) (map[string]budget, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		BenchBudgets struct {
			Budgets map[string]budget `json:"budgets"`
		} `json:"bench_budgets"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.BenchBudgets.Budgets, nil
}

// parseBench collects benchmark result lines keyed by name with the
// GOMAXPROCS suffix stripped; repeated runs keep the last measurement.
func parseBench(f *os.File) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{nsPerOp: ns}
		if m[4] != "" {
			n, err := strconv.ParseInt(m[4], 10, 64)
			if err == nil {
				r.allocsPerOp, r.hasAllocs = n, true
			}
		}
		out[m[1]] = r
	}
	return out, sc.Err()
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
