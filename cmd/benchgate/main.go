// Command benchgate compares `go test -bench` output against the
// perf-trajectory budgets recorded in BENCH_results.json and exits
// non-zero on regression, so CI catches hot-path slowdowns the unit
// tests cannot see.
//
// Usage:
//
//	go test ./internal/sim ./internal/mapreduce -bench ... | benchgate
//	    [-budgets FILE] [-tolerance F]
//	    [-trend FILE] [-trend-md FILE] [-suite FILE] [-archives DIR] [-rev REV]
//	    [INPUT]
//
// INPUT is a file holding the benchmark output ("-" or absent =
// stdin). Budgets come from the "bench_budgets" object of -budgets
// (default BENCH_results.json):
//
//	"bench_budgets": {
//	  "budgets": {
//	    "BenchmarkEventThroughput": {"ns_per_op": 63.2, "allocs_per_op": 0},
//	    "BenchmarkQueryRecord": {"ns_per_op": 50000, "allocs_per_op": 133, "tolerance_pct": 40}
//	  }
//	}
//
// The gate is one-sided: a benchmark fails when its measured ns/op
// exceeds budget x (1 + tolerance), or its allocs/op exceed the
// integer allocation budget scaled the same way (a 0 budget therefore
// pins zero allocations). Running faster than budget always passes —
// budgets are ratchets, not targets. A budget's optional
// "tolerance_pct" overrides the global -tolerance for that benchmark
// alone (40 means +40%), so noisy macro-benchmarks can run looser
// than tight micro-benchmarks. Every budgeted benchmark must appear
// in the input; a missing one fails the gate so renames don't
// silently drop coverage.
//
// With -trend, each gated run also appends one NDJSON record (schema
// dynamicmr.trend/1) to FILE — per-benchmark ns/op + allocs/op against
// their budgets, the overall pass/fail, optionally the experiment
// suite's wall-clock timings (-suite, a cmd/experiments -bench-json
// file) and the sha256 digests of any run archives (-archives DIR
// digests every *.archive.gz inside) — turning the point-in-time gate
// into a longitudinal series. -trend-md renders the series' most
// recent entries as a markdown table (for CI job summaries), and -rev
// stamps the record with a revision (e.g. the CI commit SHA).
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// budget is one benchmark's ceiling from BENCH_results.json.
type budget struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// TolerancePct, when present, overrides the global -tolerance for
	// this benchmark (percent: 40 allows +40% over budget).
	TolerancePct *float64 `json:"tolerance_pct,omitempty"`
}

// result is one parsed `go test -bench` output line.
type result struct {
	nsPerOp     float64
	allocsPerOp int64
	hasAllocs   bool
}

// trendBench is one benchmark's measurement in a trend record.
type trendBench struct {
	NsPerOp           float64 `json:"ns_per_op"`
	AllocsPerOp       *int64  `json:"allocs_per_op,omitempty"`
	BudgetNsPerOp     float64 `json:"budget_ns_per_op"`
	BudgetAllocsPerOp int64   `json:"budget_allocs_per_op"`
	TolerancePct      float64 `json:"tolerance_pct"`
	OK                bool    `json:"ok"`
}

// suiteTiming mirrors one artifact entry of a cmd/experiments
// -bench-json file.
type suiteTiming struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// suiteReport is the subset of the -bench-json file the trend keeps.
type suiteReport struct {
	Mode         string        `json:"mode,omitempty"`
	EngineMode   string        `json:"engine_mode,omitempty"`
	ScanWorkers  int           `json:"scan_workers,omitempty"`
	Artifacts    []suiteTiming `json:"artifacts,omitempty"`
	TotalSeconds float64       `json:"total_seconds"`
}

// trendRecord is one BENCH_trend.jsonl line (schema dynamicmr.trend/1).
type trendRecord struct {
	Schema     string                `json:"schema"`
	UnixMS     int64                 `json:"unix_ms"`
	GitRev     string                `json:"git_rev,omitempty"`
	Pass       bool                  `json:"pass"`
	Benchmarks map[string]trendBench `json:"benchmarks"`
	Suite      *suiteReport          `json:"suite,omitempty"`
	// Archives maps run-archive basenames to their sha256 hex digests,
	// tying a trend point to the exact run bundles it was measured
	// alongside.
	Archives map[string]string `json:"archives,omitempty"`
}

// trendSchemaVersion identifies BENCH_trend.jsonl records.
const trendSchemaVersion = "dynamicmr.trend/1"

func main() {
	budgetsPath := flag.String("budgets", "BENCH_results.json", "JSON file whose bench_budgets object holds the per-benchmark ceilings")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional regression over budget before failing (per-benchmark tolerance_pct overrides)")
	trendPath := flag.String("trend", "", "append this run as one NDJSON record (schema dynamicmr.trend/1) to FILE")
	trendMD := flag.String("trend-md", "", "render the trend series' recent entries as a markdown table to FILE (requires -trend)")
	suitePath := flag.String("suite", "", "embed the suite timings from FILE (a cmd/experiments -bench-json report) in the trend record")
	archivesDir := flag.String("archives", "", "embed sha256 digests of every *.archive.gz under DIR in the trend record")
	rev := flag.String("rev", "", "revision to stamp trend records with (e.g. the CI commit SHA)")
	flag.Parse()

	budgets, err := loadBudgets(*budgetsPath)
	if err != nil {
		fatal(err)
	}
	if len(budgets) == 0 {
		fatal(fmt.Errorf("%s has no bench_budgets entries", *budgetsPath))
	}

	var in io.Reader = os.Stdin
	if arg := flag.Arg(0); arg != "" && arg != "-" {
		f, err := os.Open(arg)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	results, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	failed, rows := gate(os.Stdout, budgets, results, *tolerance, *budgetsPath)

	if *trendPath != "" {
		rec := trendRecord{
			Schema:     trendSchemaVersion,
			UnixMS:     time.Now().UnixMilli(),
			GitRev:     *rev,
			Pass:       !failed,
			Benchmarks: rows,
		}
		if *suitePath != "" {
			s, err := loadSuite(*suitePath)
			if err != nil {
				fatal(err)
			}
			rec.Suite = s
		}
		if *archivesDir != "" {
			digests, err := digestArchives(*archivesDir)
			if err != nil {
				fatal(err)
			}
			rec.Archives = digests
		}
		if err := appendTrend(*trendPath, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("trend: appended %s record to %s\n", trendSchemaVersion, *trendPath)
		if *trendMD != "" {
			md, err := renderTrendMarkdown(*trendPath, 10)
			if err != nil {
				fatal(err)
			}
			if err := os.WriteFile(*trendMD, []byte(md), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("trend: markdown table written to %s\n", *trendMD)
		}
	} else if *trendMD != "" {
		fatal(fmt.Errorf("-trend-md requires -trend"))
	}

	if failed {
		os.Exit(1)
	}
}

// gate checks every budgeted benchmark against its measurement,
// printing one line per benchmark to w. It returns whether any check
// failed plus the per-benchmark trend rows (missing benchmarks are
// absent from the rows but still fail the gate).
func gate(w io.Writer, budgets map[string]budget, results map[string]result,
	globalTolerance float64, budgetsPath string) (failed bool, rows map[string]trendBench) {
	rows = make(map[string]trendBench)
	names := make([]string, 0, len(budgets))
	for name := range budgets {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		bud := budgets[name]
		res, ok := results[name]
		if !ok {
			fmt.Fprintf(w, "FAIL %s: budgeted in %s but not found in benchmark output (renamed or no longer runs?)\n",
				name, budgetsPath)
			failed = true
			continue
		}
		tol := globalTolerance
		tolNote := ""
		if bud.TolerancePct != nil {
			tol = *bud.TolerancePct / 100
			tolNote = " [per-benchmark]"
		}
		nsLimit := bud.NsPerOp * (1 + tol)
		allocLimit := int64(math.Floor(float64(bud.AllocsPerOp) * (1 + tol)))
		ok = true
		if res.nsPerOp > nsLimit {
			fmt.Fprintf(w, "FAIL %s: %.1f ns/op exceeds budget %.1f ns/op (+%d%% tolerance%s -> limit %.1f)\n",
				name, res.nsPerOp, bud.NsPerOp, int(tol*100), tolNote, nsLimit)
			ok, failed = false, true
		}
		if res.hasAllocs && res.allocsPerOp > allocLimit {
			fmt.Fprintf(w, "FAIL %s: %d allocs/op exceeds budget %d allocs/op (+%d%% tolerance%s -> limit %d)\n",
				name, res.allocsPerOp, bud.AllocsPerOp, int(tol*100), tolNote, allocLimit)
			ok, failed = false, true
		}
		if ok {
			allocs := "?"
			if res.hasAllocs {
				allocs = strconv.FormatInt(res.allocsPerOp, 10)
			}
			fmt.Fprintf(w, "ok   %s: %.1f ns/op (budget %.1f), %s allocs/op (budget %d)\n",
				name, res.nsPerOp, bud.NsPerOp, allocs, bud.AllocsPerOp)
		}
		row := trendBench{
			NsPerOp:           res.nsPerOp,
			BudgetNsPerOp:     bud.NsPerOp,
			BudgetAllocsPerOp: bud.AllocsPerOp,
			TolerancePct:      tol * 100,
			OK:                ok,
		}
		if res.hasAllocs {
			n := res.allocsPerOp
			row.AllocsPerOp = &n
		}
		rows[name] = row
	}
	return failed, rows
}

// benchLine matches e.g.
//
//	BenchmarkEventThroughput-4  17983382  63.2 ns/op  0 B/op  0 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.eE+]+) ns/op(?:\s+[\d.eE+]+ [MG]?B/s)?(?:\s+([\d.eE+]+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseBench collects benchmark result lines keyed by name with the
// GOMAXPROCS suffix stripped; repeated runs keep the last measurement.
func parseBench(r io.Reader) (map[string]result, error) {
	out := make(map[string]result)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		r := result{nsPerOp: ns}
		if m[4] != "" {
			n, err := strconv.ParseInt(m[4], 10, 64)
			if err == nil {
				r.allocsPerOp, r.hasAllocs = n, true
			}
		}
		out[m[1]] = r
	}
	return out, sc.Err()
}

// loadBudgets extracts the bench_budgets object, ignoring the rest of
// the trajectory file.
func loadBudgets(path string) (map[string]budget, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc struct {
		BenchBudgets struct {
			Budgets map[string]budget `json:"budgets"`
		} `json:"bench_budgets"`
	}
	if err := json.Unmarshal(buf, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc.BenchBudgets.Budgets, nil
}

// loadSuite reads a cmd/experiments -bench-json timings report.
func loadSuite(path string) (*suiteReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s suiteReport
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

// digestArchives maps every *.archive.gz basename under dir to its
// sha256 hex digest.
func digestArchives(dir string) (map[string]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.archive.gz"))
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("-archives %s: no *.archive.gz files", dir)
	}
	out := make(map[string]string, len(paths))
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			return nil, err
		}
		h := sha256.New()
		_, err = io.Copy(h, f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		out[filepath.Base(p)] = fmt.Sprintf("%x", h.Sum(nil))
	}
	return out, nil
}

// appendTrend appends one NDJSON record to the trend file.
func appendTrend(path string, rec trendRecord) error {
	buf, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(buf, '\n'))
	return err
}

// loadTrend reads every parseable record of a trend file, skipping
// records from other schemas.
func loadTrend(path string) ([]trendRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []trendRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec trendRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if rec.Schema != trendSchemaVersion {
			continue
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// renderTrendMarkdown renders the newest maxRows trend records as a
// markdown table, one row per run, one column per benchmark seen in
// those runs.
func renderTrendMarkdown(path string, maxRows int) (string, error) {
	recs, err := loadTrend(path)
	if err != nil {
		return "", err
	}
	if len(recs) == 0 {
		return "", fmt.Errorf("%s: no %s records", path, trendSchemaVersion)
	}
	if len(recs) > maxRows {
		recs = recs[len(recs)-maxRows:]
	}
	seen := make(map[string]bool)
	var names []string
	for _, r := range recs {
		for name := range r.Benchmarks {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sortStrings(names)

	var b strings.Builder
	b.WriteString("### Benchmark trend (ns/op, allocs/op)\n\n")
	b.WriteString("| when (UTC) | rev | gate |")
	for _, name := range names {
		fmt.Fprintf(&b, " %s |", strings.TrimPrefix(name, "Benchmark"))
	}
	b.WriteString(" suite |\n|---|---|---|")
	for range names {
		b.WriteString("---|")
	}
	b.WriteString("---|\n")
	for _, r := range recs {
		when := time.UnixMilli(r.UnixMS).UTC().Format("2006-01-02 15:04")
		rev := r.GitRev
		if rev == "" {
			rev = "—"
		} else if len(rev) > 12 {
			rev = rev[:12]
		}
		verdict := "pass"
		if !r.Pass {
			verdict = "**FAIL**"
		}
		fmt.Fprintf(&b, "| %s | %s | %s |", when, rev, verdict)
		for _, name := range names {
			tb, ok := r.Benchmarks[name]
			if !ok {
				b.WriteString(" — |")
				continue
			}
			cell := formatNs(tb.NsPerOp)
			if tb.AllocsPerOp != nil {
				cell += fmt.Sprintf(", %d", *tb.AllocsPerOp)
			}
			if !tb.OK {
				cell = "**" + cell + "**"
			}
			fmt.Fprintf(&b, " %s |", cell)
		}
		if r.Suite != nil {
			fmt.Fprintf(&b, " %.1fs |", r.Suite.TotalSeconds)
		} else {
			b.WriteString(" — |")
		}
		b.WriteString("\n")
	}
	return b.String(), nil
}

// formatNs renders an ns/op value compactly (63.2, 50.0k, 3.10M).
func formatNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fM", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fk", ns/1e3)
	default:
		return fmt.Sprintf("%.1f", ns)
	}
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(1)
}
