package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func f64(v float64) *float64 { return &v }

func TestGatePerBenchmarkTolerance(t *testing.T) {
	budgets := map[string]budget{
		// Global tolerance 0.10 → limit 110; measured 120 fails.
		"BenchmarkTight": {NsPerOp: 100, AllocsPerOp: 10},
		// Per-benchmark 50% → limit 150; the same +20% overrun passes.
		"BenchmarkLoose": {NsPerOp: 100, AllocsPerOp: 10, TolerancePct: f64(50)},
	}
	results := map[string]result{
		"BenchmarkTight": {nsPerOp: 120, allocsPerOp: 10, hasAllocs: true},
		"BenchmarkLoose": {nsPerOp: 120, allocsPerOp: 10, hasAllocs: true},
	}
	var out strings.Builder
	failed, rows := gate(&out, budgets, results, 0.10, "budgets.json")
	if !failed {
		t.Fatalf("want gate failure from BenchmarkTight; output:\n%s", out.String())
	}
	if !rows["BenchmarkLoose"].OK {
		t.Errorf("BenchmarkLoose should pass under its 50%% override; output:\n%s", out.String())
	}
	if rows["BenchmarkTight"].OK {
		t.Errorf("BenchmarkTight should fail under the 10%% global tolerance")
	}
	if got := rows["BenchmarkLoose"].TolerancePct; got != 50 {
		t.Errorf("BenchmarkLoose trend row tolerance = %v, want 50", got)
	}
	if got := rows["BenchmarkTight"].TolerancePct; got != 10 {
		t.Errorf("BenchmarkTight trend row tolerance = %v, want 10", got)
	}
}

func TestGateAllocOverrideAndRatchet(t *testing.T) {
	budgets := map[string]budget{
		// Zero alloc budget pins zero allocations regardless of tolerance.
		"BenchmarkZeroAlloc": {NsPerOp: 100, AllocsPerOp: 0, TolerancePct: f64(100)},
		// Faster than budget always passes.
		"BenchmarkFast": {NsPerOp: 100, AllocsPerOp: 10},
	}
	results := map[string]result{
		"BenchmarkZeroAlloc": {nsPerOp: 50, allocsPerOp: 1, hasAllocs: true},
		"BenchmarkFast":      {nsPerOp: 1, allocsPerOp: 0, hasAllocs: true},
	}
	var out strings.Builder
	failed, rows := gate(&out, budgets, results, 0.25, "budgets.json")
	if !failed {
		t.Fatalf("want failure from the 1-alloc overrun of a 0 budget; output:\n%s", out.String())
	}
	if rows["BenchmarkZeroAlloc"].OK {
		t.Errorf("BenchmarkZeroAlloc should fail: 1 alloc against a pinned-zero budget")
	}
	if !rows["BenchmarkFast"].OK {
		t.Errorf("BenchmarkFast should pass: budgets are ratchets, faster is fine")
	}
}

func TestGateMissingBenchmarkNamesBudgetFile(t *testing.T) {
	budgets := map[string]budget{"BenchmarkGone": {NsPerOp: 100}}
	var out strings.Builder
	failed, rows := gate(&out, budgets, map[string]result{}, 0.25, "my_budgets.json")
	if !failed {
		t.Fatal("missing benchmark must fail the gate")
	}
	if !strings.Contains(out.String(), "my_budgets.json") {
		t.Errorf("missing-benchmark error should name the budget file; got:\n%s", out.String())
	}
	if _, ok := rows["BenchmarkGone"]; ok {
		t.Errorf("missing benchmark should have no trend row")
	}
}

func TestParseBenchReader(t *testing.T) {
	in := strings.NewReader(`goos: linux
BenchmarkEventThroughput-4   	17983382	        63.2 ns/op	       0 B/op	       0 allocs/op
BenchmarkMapCompletion   	     100	   3000000 ns/op	  500000 B/op	     572 allocs/op
PASS
`)
	got, err := parseBench(in)
	if err != nil {
		t.Fatal(err)
	}
	ev, ok := got["BenchmarkEventThroughput"]
	if !ok || ev.nsPerOp != 63.2 || !ev.hasAllocs || ev.allocsPerOp != 0 {
		t.Errorf("EventThroughput = %+v, ok=%v", ev, ok)
	}
	mc := got["BenchmarkMapCompletion"]
	if mc.nsPerOp != 3000000 || mc.allocsPerOp != 572 {
		t.Errorf("MapCompletion = %+v", mc)
	}
}

func TestTrendAppendAndMarkdown(t *testing.T) {
	dir := t.TempDir()
	trend := filepath.Join(dir, "BENCH_trend.jsonl")
	allocs := int64(572)
	for i, pass := range []bool{true, false} {
		rec := trendRecord{
			Schema: trendSchemaVersion,
			UnixMS: int64(1754600000000 + i*60000),
			GitRev: "0123456789abcdef",
			Pass:   pass,
			Benchmarks: map[string]trendBench{
				"BenchmarkMapCompletion": {
					NsPerOp: 3.1e6, AllocsPerOp: &allocs,
					BudgetNsPerOp: 3.1e6, BudgetAllocsPerOp: 572,
					TolerancePct: 25, OK: pass,
				},
			},
			Suite:    &suiteReport{TotalSeconds: 42.5},
			Archives: map[string]string{"figure6_z0_LA.archive.gz": "deadbeef"},
		}
		if err := appendTrend(trend, rec); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := loadTrend(trend)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("loadTrend returned %d records, want 2", len(recs))
	}
	if recs[1].Pass || !recs[0].Pass {
		t.Errorf("pass flags lost on round-trip: %+v", recs)
	}
	if recs[0].Archives["figure6_z0_LA.archive.gz"] != "deadbeef" {
		t.Errorf("archive digest lost: %+v", recs[0].Archives)
	}

	md, err := renderTrendMarkdown(trend, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MapCompletion", "0123456789ab", "**FAIL**", "3.10M", "42.5s"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	// Unknown-schema lines are skipped, not fatal.
	f, err := os.OpenFile(trend, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{\"schema\":\"other/1\"}\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, err = loadTrend(trend)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Errorf("foreign-schema line should be skipped; got %d records", len(recs))
	}
}

func TestLoadBudgetsTolerancePct(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "b.json")
	doc := `{"bench_budgets":{"budgets":{
		"BenchmarkA":{"ns_per_op":10,"allocs_per_op":1},
		"BenchmarkB":{"ns_per_op":20,"allocs_per_op":2,"tolerance_pct":40}}}}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	budgets, err := loadBudgets(path)
	if err != nil {
		t.Fatal(err)
	}
	if budgets["BenchmarkA"].TolerancePct != nil {
		t.Errorf("BenchmarkA should have no override")
	}
	if tp := budgets["BenchmarkB"].TolerancePct; tp == nil || *tp != 40 {
		t.Errorf("BenchmarkB override = %v, want 40", tp)
	}
}
