// Command dynmr is a Hive-CLI-style shell against a simulated cluster
// with a generated LINEITEM table: type HiveQL (SELECT/SET/EXPLAIN/
// SHOW TABLES/DESCRIBE), watch dynamic jobs grow incrementally, and
// compare policies interactively.
//
// Usage:
//
//	dynmr [-scale N] [-skew 0|1|2] [-rows N] [-multiuser] [-fair]
//	      [-engine-mode baseline|memory] [-input-path full|skip|index]
//	      [-trace-out FILE] [-report-out FILE] [-sample-interval S]
//	      [-qstats-out FILE] [-alert-rules FILE] [-alerts-out FILE]
//	      [-log-out FILE] [-log-level LEVEL] [-e "SQL"]
//	dynmr serve [-addr HOST:PORT] [-policy NAME] [-k N] [-queries N] [-pace-ms MS]
//	      [-qstats-out FILE] [-pprof] ...
//	dynmr top [-addr HOST:PORT] [-follow] [-interval-ms MS]
//	dynmr explain [-policy NAME] [-k N] [-queries N] [-json] [-out FILE] ...
//	dynmr diff [-json | -html] [-out FILE] A.archive.gz B.archive.gz
//
// Without -e, statements are read from stdin (one per line, ';'
// optional). With -trace-out, a Chrome trace-event JSON file covering
// every task attempt, policy decision and utilization sample is
// written at exit — load it in https://ui.perfetto.dev or
// chrome://tracing. With -report-out, a self-contained HTML run report
// (utilization time-series, slot-occupancy Gantt, policy decision log)
// is written at exit. With -log-out, the runtime's structured log
// stream (job lifecycle, Input Provider decisions, query execution) is
// written as NDJSON, each record stamped with the virtual clock. With
// -qstats-out, the per-query registry dump (schema dynamicmr.qstats/1)
// is flushed at exit, like -archive-out. With -alert-rules, declarative
// alert/SLO rules are evaluated on the virtual clock while statements
// run; -alerts-out flushes the resulting alert dump (schema
// dynamicmr.alerts/1) at exit.
//
// The serve subcommand runs a paced loop of sampling queries while
// exposing live observability over HTTP: Prometheus text exposition on
// /metrics, JSON run status on /status, the per-query registry on
// /queries (schema dynamicmr.qstats/1; ?id=q-000001 for one record)
// and a self-refreshing HTML dashboard on /live (plus net/http/pprof
// under /debug/pprof/ with -pprof). SIGINT/SIGTERM shut it down
// gracefully, flushing -report-out, -log-out and -qstats-out.
//
// The top subcommand renders a text view of a running serve instance
// from its /status and /queries endpoints; -follow refreshes it like
// top(1).
//
// The explain subcommand runs sampling queries with tracing on and
// prints the post-run job diagnosis: per-job critical path, time
// breakdown and anomalies.
//
// With -archive-out (shell, serve and explain modes), a self-contained
// cross-run archive (schema dynamicmr.archive/1: trace spans, policy
// decisions, diagnoses, query stats, counters/gauges and run config,
// as gzip NDJSON) is written at exit. The diff subcommand compares two
// such archives: jobs are aligned by query ID, the nine-component time
// breakdowns are differenced (the per-component deltas sum to the
// makespan delta by construction), and the first divergent provider
// decision between twin runs is located.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dynamicmr"
	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/vlog"
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "serve":
			serveMain(os.Args[2:])
			return
		case "top":
			topMain(os.Args[2:])
			return
		case "explain":
			explainMain(os.Args[2:])
			return
		case "diff":
			diffMain(os.Args[2:])
			return
		}
	}
	scale := flag.Int("scale", 1, "TPC-H scale factor of the generated LINEITEM table")
	skewZ := flag.Float64("skew", 1, "Zipf exponent of the planted-match distribution (0, 1 or 2)")
	rows := flag.Int64("rows", 2_000_000, "row-count override (0 = full 6M x scale)")
	multi := flag.Bool("multiuser", false, "use the 16-map-slots-per-node configuration")
	fair := flag.Bool("fair", false, "use the Fair Scheduler instead of FIFO")
	exec := flag.String("e", "", "execute this statement and exit")
	maxRows := flag.Int("maxrows", 20, "result rows to print")
	eventLog := flag.Bool("trace", false, "print the task-level event log for each job")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable) at exit")
	reportOut := flag.String("report-out", "", "write a self-contained HTML run report at exit")
	archiveOut := flag.String("archive-out", "", "write a cross-run archive (dynamicmr.archive/1 gzip NDJSON, for `dynmr diff`) at exit")
	qstatsOut := flag.String("qstats-out", "", "write the per-query stats dump (dynamicmr.qstats/1 JSON) at exit")
	alertRules := flag.String("alert-rules", "", "load declarative alert/SLO rules from FILE (JSON {\"rules\": [...]}) and evaluate them on the virtual clock")
	alertsOut := flag.String("alerts-out", "", "write the alert dump (dynamicmr.alerts/1 JSON) at exit")
	sampleInterval := flag.Float64("sample-interval", 0, "utilization sampler cadence in virtual seconds for -report-out (0 = 30s default)")
	logOut := flag.String("log-out", "", "write the virtual-clock NDJSON log stream to FILE")
	logLevel := flag.String("log-level", "info", "log level for -log-out: debug, info, warn or error")
	engineMode := flag.String("engine-mode", dynamicmr.EngineModeBaseline, "execution engine: baseline or memory (resident map outputs reused across queries)")
	inputPath := flag.String("input-path", dynamicmr.InputPathFull, "map-task read path: full, skip (zone-map skip-scan) or index (clustered-index reads + informed grab ordering)")
	flag.Parse()

	opts := clusterOpts(*multi, *fair, *engineMode, *inputPath)
	if *traceOut != "" || *reportOut != "" || *archiveOut != "" {
		opts = append(opts, dynamicmr.WithTracing(trace.Config{}))
	}
	if *reportOut != "" {
		opts = append(opts, dynamicmr.WithUtilizationSampling(*sampleInterval))
	}
	if *qstatsOut != "" {
		opts = append(opts, dynamicmr.WithQueryStats())
	}
	if rules := loadAlertRules(*alertRules); len(rules) > 0 {
		opts = append(opts, dynamicmr.WithAlertRules(rules...))
	} else if *alertsOut != "" {
		// -alerts-out without rules still gets a schema-valid (empty)
		// dump, so pipelines can pass the flag unconditionally.
		opts = append(opts, dynamicmr.WithTimeSeries(0))
	}
	opts, logClose := withLogFlags(opts, *logOut, *logLevel)
	defer logClose()
	c, err := dynamicmr.NewCluster(opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	if *eventLog {
		c.JobTracker().Subscribe(func(e mapreduce.TaskEvent) {
			fmt.Fprintln(os.Stderr, e)
		})
	}
	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale: *scale, Skew: *skewZ, Rows: *rows, Seed: 42,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded table lineitem: %d rows, %d partitions, %d records matching %s\n",
		ds.TotalRows(), ds.NumPartitions(), ds.TotalMatches(), ds.Predicate())
	fmt.Printf("policies: %s (SET dynamic.job.policy = <name>)\n\n", strings.Join(c.Policies().Names(), ", "))

	runOne := func(sql string) {
		sql = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(sql), ";"))
		if sql == "" {
			return
		}
		res, err := c.Query(sql)
		if err != nil {
			fmt.Fprintf(os.Stderr, "error: %v\n", err)
			return
		}
		printResult(c, res, *maxRows)
	}

	shellConfig := runarchive.RunConfig{
		Seed: 42,
		Params: map[string]string{
			"scale": fmt.Sprintf("%d", *scale),
			"skew":  fmt.Sprintf("%g", *skewZ),
			"rows":  fmt.Sprintf("%d", *rows),
		},
	}
	if *exec != "" {
		runOne(*exec)
		writeTrace(c, *traceOut)
		writeReport(c, *reportOut, "dynmr session", reportParams(*scale, *skewZ, *rows))
		writeQStats(c, *qstatsOut)
		writeAlerts(c, *alertsOut)
		writeArchive(c, *archiveOut, "dynmr session", shellConfig)
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	fmt.Print("dynmr> ")
	for sc.Scan() {
		runOne(sc.Text())
		fmt.Print("dynmr> ")
	}
	writeTrace(c, *traceOut)
	writeReport(c, *reportOut, "dynmr session", reportParams(*scale, *skewZ, *rows))
	writeQStats(c, *qstatsOut)
	writeAlerts(c, *alertsOut)
	writeArchive(c, *archiveOut, "dynmr session", shellConfig)
}

// writeTrace exports the session's Chrome trace when -trace-out is set.
func writeTrace(c *dynamicmr.Cluster, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := c.Tracer().WriteChromeTrace(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote Chrome trace to %s (open in https://ui.perfetto.dev)\n", path)
}

func printResult(c *dynamicmr.Cluster, res *hive.Result, maxRows int) {
	switch res.Kind {
	case hive.ResultOK:
		fmt.Printf("OK (%s)\n", res.Text)
	case hive.ResultText:
		fmt.Println(res.Text)
	case hive.ResultRows:
		fmt.Println(strings.Join(res.Columns, " | "))
		for i, r := range res.Rows {
			if i >= maxRows {
				fmt.Printf("... (%d more rows)\n", len(res.Rows)-maxRows)
				break
			}
			fmt.Println(r.String())
		}
		job := res.Job
		fmt.Printf("-- %d row(s); response time %.2fs (virtual); %d/%d partitions processed",
			len(res.Rows), job.ResponseTime(), job.CompletedMaps(), job.ScheduledMaps())
		if res.Client != nil {
			fmt.Printf("; policy %s, %d provider evaluations", res.Client.Policy().Name, res.Client.Evaluations())
		}
		fmt.Printf("; cluster clock %.2fs\n", c.Now())
	}
}

// withLogFlags appends WithLogging when -log-out is set; the returned
// closer flushes the log file at exit.
func withLogFlags(opts []dynamicmr.Option, path, levelName string) ([]dynamicmr.Option, func()) {
	if path == "" {
		return opts, func() {}
	}
	level, err := vlog.ParseLevel(levelName)
	if err != nil {
		fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	return append(opts, dynamicmr.WithLogging(f, level)), func() {
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote virtual-clock log to %s\n", path)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dynmr:", err)
	os.Exit(1)
}
