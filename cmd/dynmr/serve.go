package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dynamicmr"
	"dynamicmr/internal/obs"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/tsdb"
)

// serveMain runs `dynmr serve`: a paced closed loop of sampling queries
// against the simulated cluster, with the observability surface exposed
// live over HTTP — Prometheus text exposition on /metrics, JSON run
// status on /status, the per-query registry on /queries and the
// self-refreshing HTML dashboard on /live. The simulated runtime is
// single-threaded, so the query loop advances the engine while holding
// the server's lock; after each query it publishes an immutable
// snapshot of every endpoint, so scrapes never block behind the pacer
// or a long engine burst.
//
// The time-series engine runs for every serve session (its cadence
// follows -sample-interval), so /tsdb serves rolling trend history and
// /live charts it. With -alert-rules, the declarative alert layer is
// evaluated on the virtual clock; /alerts serves the rule set, the
// firing set and the transition log (schema dynamicmr.alerts/1).
//
// SIGINT/SIGTERM shut the loop down gracefully: the current query
// finishes, every -*-out sink (-report-out, -log-out, -qstats-out,
// -alerts-out, -archive-out) is flushed schema-complete, the HTTP
// server drains, and the process exits 0.
func serveMain(args []string) {
	fs := flag.NewFlagSet("dynmr serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "HTTP listen address for /metrics, /status, /queries and /live")
	scale := fs.Int("scale", 1, "TPC-H scale factor of the generated LINEITEM table")
	skewZ := fs.Float64("skew", 1, "Zipf exponent of the planted-match distribution (0, 1 or 2)")
	rows := fs.Int64("rows", 2_000_000, "row-count override (0 = full 6M x scale)")
	multi := fs.Bool("multiuser", false, "use the 16-map-slots-per-node configuration")
	fair := fs.Bool("fair", false, "use the Fair Scheduler instead of FIFO")
	policy := fs.String("policy", "LA", "growth policy for the sampling queries")
	k := fs.Int64("k", 1000, "required sample size per query")
	queries := fs.Int("queries", 0, "number of queries to run before idling (0 = loop until interrupted)")
	paceMS := fs.Int("pace-ms", 500, "real milliseconds to sleep between queries (scrape window)")
	sampleInterval := fs.Float64("sample-interval", 5, "utilization sampler cadence in virtual seconds (single queries are short, so the default is denser than the workload figures' 30s)")
	reportOut := fs.String("report-out", "", "write the HTML run report to FILE on shutdown")
	qstatsOut := fs.String("qstats-out", "", "write the per-query stats dump (dynamicmr.qstats/1 JSON) to FILE on shutdown")
	alertRules := fs.String("alert-rules", "", "load declarative alert/SLO rules from FILE (JSON {\"rules\": [...]}) and evaluate them on the virtual clock")
	alertsOut := fs.String("alerts-out", "", "write the alert dump (dynamicmr.alerts/1 JSON) to FILE on shutdown")
	archiveOut := fs.String("archive-out", "", "write a cross-run archive (dynamicmr.archive/1, for `dynmr diff`) to FILE on shutdown")
	pprofOn := fs.Bool("pprof", false, "expose net/http/pprof profiling handlers under /debug/pprof/ (off by default)")
	logOut := fs.String("log-out", "", "write the virtual-clock NDJSON log stream to FILE")
	logLevel := fs.String("log-level", "info", "log level for -log-out: debug, info, warn or error")
	engineMode := fs.String("engine-mode", dynamicmr.EngineModeBaseline, "execution engine: baseline or memory (resident map outputs reused across queries)")
	inputPath := fs.String("input-path", dynamicmr.InputPathFull, "map-task read path: full, skip (zone-map skip-scan) or index (clustered-index reads + informed grab ordering)")
	fs.Parse(args)

	opts := append(clusterOpts(*multi, *fair, *engineMode, *inputPath),
		dynamicmr.WithQueryStats(),
		dynamicmr.WithUtilizationSampling(*sampleInterval),
		dynamicmr.WithTimeSeries(*sampleInterval))
	if rules := loadAlertRules(*alertRules); len(rules) > 0 {
		opts = append(opts, dynamicmr.WithAlertRules(rules...))
	}
	opts, logClose := withLogFlags(opts, *logOut, *logLevel)
	defer logClose()
	c, err := dynamicmr.NewCluster(opts...)
	if err != nil {
		fatal(err)
	}
	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale: *scale, Skew: *skewZ, Rows: *rows, Seed: 42,
	})
	if err != nil {
		fatal(err)
	}

	srv := obs.NewServer(c.Sampler())
	srv.SetQueryStats(c.QueryStats())
	srv.SetTSDB(c.TSDB())
	handler := srv.Handler()
	if *pprofOn {
		// Register the pprof handlers explicitly on our own mux rather
		// than importing the package for its DefaultServeMux side
		// effect, so profiling stays opt-in.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()
	fmt.Fprintf(os.Stderr, "dynmr serve: listening on http://%s (/metrics, /status, /queries, /tsdb, /alerts, /live); policy %s, k=%d\n",
		*addr, *policy, *k)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	pred := ds.Predicate().String()
	interrupted := false
loop:
	for n := 0; *queries == 0 || n < *queries; n++ {
		srv.Lock()
		res, err := c.Sample("lineitem", pred, *k, *policy, []string{"L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY"})
		srv.Unlock()
		if err != nil {
			fatal(err)
		}
		srv.Publish()
		job := res.Job
		fmt.Fprintf(os.Stderr, "query %d: %d row(s), response %.2fs, %d/%d partitions, clock %.2fs\n",
			n+1, len(res.Rows), job.ResponseTime(), job.CompletedMaps(), job.ScheduledMaps(), c.Now())
		select {
		case <-ctx.Done():
			interrupted = true
			break loop
		case <-time.After(time.Duration(*paceMS) * time.Millisecond):
		}
	}

	if !interrupted {
		fmt.Fprintf(os.Stderr, "dynmr serve: query loop done; still serving on http://%s (interrupt to exit)\n", *addr)
		<-ctx.Done()
	}
	fmt.Fprintln(os.Stderr, "dynmr serve: shutting down")

	srv.Lock()
	writeReport(c, *reportOut, fmt.Sprintf("dynmr serve — policy %s, scale %dx, z=%g", *policy, *scale, *skewZ),
		[][2]string{
			{"policy", *policy},
			{"scale", fmt.Sprintf("%dx", *scale)},
			{"skew z", fmt.Sprintf("%g", *skewZ)},
			{"sample k", fmt.Sprintf("%d", *k)},
			{"queries", fmt.Sprintf("%d", *queries)},
		})
	writeQStats(c, *qstatsOut)
	writeAlerts(c, *alertsOut)
	writeArchive(c, *archiveOut, fmt.Sprintf("dynmr serve — policy %s", *policy), runarchive.RunConfig{
		Policy: *policy,
		Seed:   42,
		Params: map[string]string{
			"scale":   fmt.Sprintf("%d", *scale),
			"skew":    fmt.Sprintf("%g", *skewZ),
			"k":       fmt.Sprintf("%d", *k),
			"queries": fmt.Sprintf("%d", *queries),
		},
	})
	srv.Unlock()
	// Release session state: resident map outputs, pinned blocks and
	// scan workers all go with the cluster.
	c.Close()

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dynmr serve: http shutdown: %v\n", err)
	}
}

// writeQStats flushes the per-query registry dump when -qstats-out is
// set. Caller holds the server lock (Dump reads the virtual clock).
func writeQStats(c *dynamicmr.Cluster, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := c.QueryStats().WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote per-query stats to %s\n", path)
}

// loadAlertRules parses the -alert-rules file; a parse error is fatal
// (a typoed rule must not silently disable alerting).
func loadAlertRules(path string) []tsdb.Rule {
	if path == "" {
		return nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	rules, err := tsdb.ParseRules(data)
	if err != nil {
		fatal(err)
	}
	return rules
}

// writeAlerts flushes the alert dump when -alerts-out is set. Caller
// holds the server lock (AlertsDump reads the virtual clock).
func writeAlerts(c *dynamicmr.Cluster, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	c.TSDB().Flush() // catch queries that finished after the last tick
	a := c.TSDB().AlertsDump()
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote alert dump to %s\n", path)
}

// clusterOpts assembles the hardware/scheduler/engine options shared
// with the shell mode.
func clusterOpts(multi, fair bool, engineMode, inputPath string) []dynamicmr.Option {
	var opts []dynamicmr.Option
	if multi {
		opts = append(opts, dynamicmr.WithMultiUserSlots())
	}
	if fair {
		opts = append(opts, dynamicmr.WithFairScheduler(5))
	}
	if engineMode != "" {
		opts = append(opts, dynamicmr.WithEngineMode(engineMode))
	}
	if inputPath != "" {
		opts = append(opts, dynamicmr.WithInputPath(inputPath))
	}
	return opts
}

// writeReport renders the HTML run report when -report-out is set.
func writeReport(c *dynamicmr.Cluster, path, title string, params [][2]string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := c.WriteReport(f, title, params); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote run report to %s\n", path)
}

// reportParams summarises the shell session for its report header.
func reportParams(scale int, skew float64, rows int64) [][2]string {
	return [][2]string{
		{"mode", "interactive shell"},
		{"scale", fmt.Sprintf("%dx", scale)},
		{"skew z", fmt.Sprintf("%g", skew)},
		{"rows", fmt.Sprintf("%d", rows)},
	}
}
