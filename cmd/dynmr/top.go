package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"strings"
	"time"

	"dynamicmr/internal/obs"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/tsdb"
)

// topMain runs `dynmr top`: a text view of a running `dynmr serve`
// instance, built from its /status and /queries endpoints. One-shot by
// default; -follow redraws the screen every -interval-ms like top(1).
func topMain(args []string) {
	fs := flag.NewFlagSet("dynmr top", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "address of the dynmr serve instance")
	follow := fs.Bool("follow", false, "refresh continuously instead of printing once")
	intervalMS := fs.Int("interval-ms", 1000, "refresh interval with -follow")
	fs.Parse(args)

	client := &http.Client{Timeout: 5 * time.Second}
	for {
		out, err := renderTop(client, *addr)
		if err != nil {
			fatal(err)
		}
		if *follow {
			// ANSI clear screen + home, like top(1).
			fmt.Print("\x1b[2J\x1b[H")
		}
		fmt.Print(out)
		if !*follow {
			return
		}
		time.Sleep(time.Duration(*intervalMS) * time.Millisecond)
	}
}

func fetchJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// renderTop formats one frame from the serve instance's endpoints.
func renderTop(client *http.Client, addr string) (string, error) {
	var status obs.StatusPayload
	if err := fetchJSON(client, "http://"+addr+"/status", &status); err != nil {
		return "", err
	}
	var dump qstats.Dump
	if err := fetchJSON(client, "http://"+addr+"/queries", &dump); err != nil {
		return "", err
	}
	// /tsdb and /alerts 404 when the serve instance predates the
	// time-series engine; the sections are simply omitted then.
	var trends tsdb.Dump
	haveTrends := fetchJSON(client, "http://"+addr+"/tsdb", &trends) == nil
	var alerts tsdb.AlertsDump
	haveAlerts := fetchJSON(client, "http://"+addr+"/alerts", &alerts) == nil

	var b strings.Builder
	fmt.Fprintf(&b, "dynmr @ %s — t=%.1fs virtual, %d events\n", addr, status.VirtualTimeS, status.ProcessedEvents)
	if haveAlerts && len(alerts.Active) > 0 {
		fmt.Fprintf(&b, "!! %d ALERT(S) FIRING:", len(alerts.Active))
		for _, a := range alerts.Active {
			fmt.Fprintf(&b, " %s (%.4g vs %.4g", a.Rule, a.Value, a.Threshold)
			if a.Severity != "" {
				fmt.Fprintf(&b, ", %s", a.Severity)
			}
			fmt.Fprintf(&b, ", since t=%.1fs)", a.SinceS)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "slots: map %d/%d, reduce %d/%d; queued %d maps %d reduces; %d running job(s)\n",
		status.MapSlotsUsed, status.MapSlots, status.ReduceSlotsUsed, status.ReduceSlots,
		status.QueuedMaps, status.QueuedReduces, status.RunningJobs)
	fmt.Fprintf(&b, "queries: %d started, %d finished, %d failed, %d in flight\n",
		dump.Started, dump.Finished, dump.Failed, len(dump.InFlight))
	if e := status.Engine; e != nil {
		fmt.Fprintf(&b, "engine: %.1f MB resident, %.1f MB pinned; %d delta-shuffle hit(s), %d stored, %d evicted, %d memo hit(s)\n",
			e.ResidentBytes/(1<<20), e.PinnedBytes/(1<<20),
			e.DeltaShuffleHits, e.ResidentStores, e.ResidentEvictions, e.MemoHits)
	}
	if sc := status.Scan; sc != nil {
		pct := 0.0
		if total := sc.BlocksRead + sc.BlocksSkipped; total > 0 {
			pct = float64(sc.BlocksSkipped) / float64(total) * 100
		}
		fmt.Fprintf(&b, "scan: input-path %s; %d blocks read, %d skipped (%.1f%%)\n",
			sc.InputPath, sc.BlocksRead, sc.BlocksSkipped, pct)
	}
	b.WriteString("\n")

	if haveTrends {
		writeTopTrends(&b, trends)
	}

	if len(dump.Policies) > 0 {
		fmt.Fprintf(&b, "%-8s %9s %7s %7s %9s %9s %9s %9s\n",
			"POLICY", "FINISHED", "FAILED", "QPS", "P50(VT)", "P90(VT)", "P99(VT)", "MAX(VT)")
		for _, p := range dump.Policies {
			fmt.Fprintf(&b, "%-8s %9d %7d %7.2f %9.3f %9.3f %9.3f %9.3f\n",
				p.Policy, p.Finished, p.Failed, p.QPS,
				p.VirtualP50S, p.VirtualP90S, p.VirtualP99S, p.VirtualMaxS)
		}
		b.WriteString("\n")
	}

	if len(dump.InFlight) > 0 {
		fmt.Fprintf(&b, "%-10s %6s %-8s %7s %9s %9s %11s\n",
			"IN-FLIGHT", "JOB", "POLICY", "K", "MATCHES", "SPLITS", "RECORDS")
		for _, q := range dump.InFlight {
			fmt.Fprintf(&b, "%-10s %6d %-8s %7d %9d %4d/%-4d %11d\n",
				q.ID, q.JobID, q.Policy, q.K, q.Matches, q.SplitsScanned, q.SplitsTotal, q.RecordsRead)
		}
		b.WriteString("\n")
	}

	const topFinishedRows = 15
	start := len(dump.Queries) - topFinishedRows
	if start < 0 {
		start = 0
	}
	if len(dump.Queries) > 0 {
		fmt.Fprintf(&b, "%-10s %-9s %-8s %11s %6s %9s %9s %8s %8s %8s\n",
			"RECENT", "STATE", "POLICY", "LATENCY(VT)", "ROWS", "OVERSHOOT", "SPLITS", "MAP(S)", "SHUF(S)", "RED(S)")
		for i := len(dump.Queries) - 1; i >= start; i-- {
			q := dump.Queries[i]
			fmt.Fprintf(&b, "%-10s %-9s %-8s %11.3f %6d %9d %4d/%-4d %8.2f %8.2f %8.2f\n",
				q.ID, q.State, q.Policy, q.LatencyVirtualS, q.Rows, q.OvershootRows,
				q.SplitsScanned, q.SplitsTotal, q.MapSeconds, q.ShuffleSeconds, q.ReduceSeconds)
		}
	}
	return b.String(), nil
}

// topTrendSeries are the time-series histories `dynmr top` sparklines;
// absent series are skipped.
var topTrendSeries = []string{
	"query.in_flight",
	"query.match_rate",
	"query.overshoot_ratio",
	"cluster.running_jobs",
	"scan.blocks_read",
	"scan.blocks_skipped",
}

// writeTopTrends renders unicode sparklines over each known series'
// raw ring.
func writeTopTrends(b *strings.Builder, trends tsdb.Dump) {
	byName := make(map[string][]tsdb.Point, len(trends.Series))
	for _, sd := range trends.Series {
		byName[sd.Name] = sd.Points
	}
	wrote := false
	for _, name := range topTrendSeries {
		pts := byName[name]
		if len(pts) < 2 {
			continue
		}
		if !wrote {
			fmt.Fprintf(b, "%-22s %-40s %12s %12s\n", "TREND", "", "LAST", "MAX")
			wrote = true
		}
		fmt.Fprintf(b, "%-22s %-40s %12.4g %12.4g\n",
			name, sparkline(pts, 40), pts[len(pts)-1].V, sparkMax(pts))
	}
	if wrote {
		b.WriteString("\n")
	}
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

func sparkMax(pts []tsdb.Point) float64 {
	max := 0.0
	for _, p := range pts {
		if p.V > max {
			max = p.V
		}
	}
	return max
}

// sparkline folds the series' newest points into width block-character
// cells scaled to the window maximum.
func sparkline(pts []tsdb.Point, width int) string {
	if len(pts) > width {
		pts = pts[len(pts)-width:]
	}
	max := sparkMax(pts)
	if max <= 0 {
		max = 1
	}
	out := make([]rune, 0, len(pts))
	for _, p := range pts {
		v := p.V / max
		if v < 0 {
			v = 0
		}
		i := int(v * float64(len(sparkRunes)-1))
		out = append(out, sparkRunes[i])
	}
	return string(out)
}
