package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynamicmr"
	"dynamicmr/internal/diag"
	"dynamicmr/internal/runarchive"
)

// diffMain runs `dynmr diff A B`: load two run archives (written with
// -archive-out), align their jobs by query ID (falling back to job
// ID), and render the cross-run comparison — per-component breakdown
// deltas that sum to the makespan delta, the first divergent provider
// decision, critical-path and anomaly differences — as text by
// default, JSON (schema dynamicmr.diff/1) with -json, or a
// side-by-side HTML report with -html. The delta-sum invariant is
// re-checked before rendering; a violation exits non-zero.
func diffMain(args []string) {
	fs := flag.NewFlagSet("dynmr diff", flag.ExitOnError)
	jsonOut := fs.Bool("json", false, "emit the diff as JSON (schema "+diag.DiffSchemaVersion+") instead of text")
	htmlOut := fs.Bool("html", false, "emit a side-by-side HTML report (paired breakdown stacks, aligned Gantts)")
	out := fs.String("out", "", "write the diff to FILE instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dynmr diff [-json | -html] [-out FILE] A.archive.gz B.archive.gz\n")
		fs.PrintDefaults()
	}
	fs.Parse(args)
	if fs.NArg() != 2 {
		fs.Usage()
		os.Exit(2)
	}
	if *jsonOut && *htmlOut {
		fatal(fmt.Errorf("diff: -json and -html are mutually exclusive"))
	}
	a, err := runarchive.LoadFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := runarchive.LoadFile(fs.Arg(1))
	if err != nil {
		fatal(err)
	}
	rep, err := runarchive.Compare(a, b)
	if err != nil {
		fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		fatal(fmt.Errorf("diff invariants violated: %w", err))
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	switch {
	case *jsonOut:
		err = rep.WriteJSON(w)
	case *htmlOut:
		err = rep.WriteHTML(w)
	default:
		err = rep.WriteText(w)
	}
	if err != nil {
		fatal(err)
	}
}

// writeArchive snapshots the cluster into a cross-run archive when
// -archive-out is set; shared by the shell, serve and explain modes.
func writeArchive(c *dynamicmr.Cluster, path, label string, cfg runarchive.RunConfig) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := c.WriteArchive(f, label, cfg); err != nil {
		f.Close()
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote run archive to %s (compare with `dynmr diff`)\n", path)
}
