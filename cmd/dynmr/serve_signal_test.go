package main

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dynamicmr/internal/qstats"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/tsdb"
)

// freePort reserves an ephemeral localhost port for the serve loop.
// The listener is closed before serveMain rebinds it; the window is
// tiny and a collision fails loudly, not silently.
func freePort(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// TestServeSignalFlushesSinks is the graceful-shutdown satellite: a
// SIGINT landing mid-run must let the current query finish and flush
// every -*-out sink schema-complete — the qstats dump, the alert dump
// (with the SLO rule that fired during the run), the run archive and
// the HTML report are all valid files, not torn writes.
func TestServeSignalFlushesSinks(t *testing.T) {
	dir := t.TempDir()
	rulesPath := filepath.Join(dir, "rules.json")
	qstatsPath := filepath.Join(dir, "qstats.json")
	alertsPath := filepath.Join(dir, "alerts.json")
	archivePath := filepath.Join(dir, "run.archive.gz")
	reportPath := filepath.Join(dir, "report.html")
	// A 1ms latency objective every query breaches, so the rule fires
	// deterministically once a collection tick sees a finished query.
	rules := `{"rules": [{"name": "latency-slo", "kind": "slo_burn", "objective_s": 0.001, "severity": "page"}]}`
	if err := os.WriteFile(rulesPath, []byte(rules), 0o644); err != nil {
		t.Fatal(err)
	}

	addr := freePort(t)
	done := make(chan struct{})
	go func() {
		defer close(done)
		serveMain([]string{
			"-addr", addr,
			"-rows", "400000", "-k", "200", "-pace-ms", "10",
			"-alert-rules", rulesPath,
			"-qstats-out", qstatsPath,
			"-alerts-out", alertsPath,
			"-archive-out", archivePath,
			"-report-out", reportPath,
		})
	}()

	// Wait until the loop has finished queries AND the alert layer has
	// fired, so the signal provably lands mid-run.
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("serve loop never reached a fired alert")
		}
		var dump qstats.Dump
		var alerts tsdb.AlertsDump
		if fetchJSON(client, "http://"+addr+"/queries", &dump) == nil && dump.Finished >= 2 &&
			fetchJSON(client, "http://"+addr+"/alerts", &alerts) == nil && len(alerts.Events) > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not shut down after SIGINT")
	}

	// Every sink is schema-complete.
	var qd qstats.Dump
	mustJSON(t, qstatsPath, &qd)
	if qd.Schema != qstats.SchemaVersion || qd.Finished < 2 {
		t.Fatalf("qstats dump: schema %q, finished %d", qd.Schema, qd.Finished)
	}
	var ad tsdb.AlertsDump
	mustJSON(t, alertsPath, &ad)
	if ad.Schema != tsdb.AlertsSchemaVersion {
		t.Fatalf("alerts dump schema %q", ad.Schema)
	}
	fired := false
	for _, e := range ad.Events {
		if e.Rule == "latency-slo" && e.State == tsdb.StateFiring {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("alert dump has no firing event: %+v", ad.Events)
	}

	f, err := os.Open(archivePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	a, err := runarchive.Load(f)
	if err != nil {
		t.Fatalf("flushed archive does not load: %v", err)
	}
	if a.Alerts == nil || len(a.Alerts.Events) == 0 || a.Series == nil {
		t.Fatal("flushed archive lost the tsdb layers")
	}

	html, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"<!DOCTYPE html>", "latency-slo"} {
		if !strings.Contains(string(html), want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func mustJSON(t *testing.T, path string, v any) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		t.Fatalf("%s: %v", path, err)
	}
}
