package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"dynamicmr"
	"dynamicmr/internal/diag"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/trace"
)

// explainMain runs `dynmr explain`: execute one or more sampling
// queries on a freshly built cluster with tracing on, then run the
// post-run diagnosis engine and render each job's critical path, time
// breakdown and anomalies — as human-readable text by default, or as
// schema-stable JSON with -json. The diagnosis invariants (critical
// path tiles the makespan; breakdown components sum to it) are checked
// before anything is printed; a violation exits non-zero, so the
// command doubles as an end-to-end validation of the trace stream.
func explainMain(args []string) {
	fs := flag.NewFlagSet("dynmr explain", flag.ExitOnError)
	scale := fs.Int("scale", 1, "TPC-H scale factor of the generated LINEITEM table")
	skewZ := fs.Float64("skew", 1, "Zipf exponent of the planted-match distribution (0, 1 or 2)")
	rows := fs.Int64("rows", 2_000_000, "row-count override (0 = full 6M x scale)")
	multi := fs.Bool("multiuser", false, "use the 16-map-slots-per-node configuration")
	fair := fs.Bool("fair", false, "use the Fair Scheduler instead of FIFO")
	policy := fs.String("policy", "LA", "growth policy for the sampling queries")
	k := fs.Int64("k", 1000, "required sample size per query")
	queries := fs.Int("queries", 1, "number of sampling queries to run and diagnose")
	spec := fs.Bool("speculative", false, "enable speculative execution for straggling maps")
	jsonOut := fs.Bool("json", false, "emit the diagnosis as JSON (schema "+diag.SchemaVersion+") instead of text")
	out := fs.String("out", "", "write the diagnosis to FILE instead of stdout")
	archiveOut := fs.String("archive-out", "", "also write a cross-run archive (dynamicmr.archive/1, for `dynmr diff`) to FILE")
	logOut := fs.String("log-out", "", "write the virtual-clock NDJSON log stream to FILE")
	logLevel := fs.String("log-level", "info", "log level for -log-out: debug, info, warn or error")
	engineMode := fs.String("engine-mode", dynamicmr.EngineModeBaseline, "execution engine: baseline or memory (resident map outputs reused across queries)")
	inputPath := fs.String("input-path", dynamicmr.InputPathFull, "map-task read path: full, skip (zone-map skip-scan) or index (clustered-index reads + informed grab ordering)")
	fs.Parse(args)

	opts := append(clusterOpts(*multi, *fair, *engineMode, *inputPath), dynamicmr.WithTracing(trace.Config{}))
	if *spec {
		opts = append(opts, dynamicmr.WithSpeculativeExecution())
	}
	opts, logClose := withLogFlags(opts, *logOut, *logLevel)
	defer logClose()
	c, err := dynamicmr.NewCluster(opts...)
	if err != nil {
		fatal(err)
	}
	defer c.Close()
	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale: *scale, Skew: *skewZ, Rows: *rows, Seed: 42,
	})
	if err != nil {
		fatal(err)
	}
	pred := ds.Predicate().String()
	for n := 0; n < *queries; n++ {
		res, err := c.Sample("lineitem", pred, *k, *policy, []string{"L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY"})
		if err != nil {
			fatal(err)
		}
		job := res.Job
		fmt.Fprintf(os.Stderr, "query %d: %d row(s), response %.2fs, %d/%d partitions, clock %.2fs\n",
			n+1, len(res.Rows), job.ResponseTime(), job.CompletedMaps(), job.ScheduledMaps(), c.Now())
	}

	rep, err := c.Diagnose()
	if err != nil {
		fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		fatal(fmt.Errorf("diagnosis invariants violated: %w", err))
	}
	writeArchive(c, *archiveOut, fmt.Sprintf("dynmr explain — policy %s", *policy), runarchive.RunConfig{
		Policy: *policy,
		Seed:   42,
		Params: map[string]string{
			"scale":   fmt.Sprintf("%d", *scale),
			"skew":    fmt.Sprintf("%g", *skewZ),
			"k":       fmt.Sprintf("%d", *k),
			"queries": fmt.Sprintf("%d", *queries),
		},
	})
	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *jsonOut {
		err = rep.WriteJSON(w)
	} else {
		err = rep.WriteText(w)
	}
	if err != nil {
		fatal(err)
	}
}
