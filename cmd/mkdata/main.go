// Command mkdata inspects the generated evaluation datasets: TPC-H
// LINEITEM rows, the Table II geometry, and the Figure 4 skew
// distributions, without running any jobs.
//
// Usage:
//
//	mkdata rows  [-scale N] [-seed N] [-n N]       print sample rows
//	mkdata info  [-scale N] [-skew Z]              print dataset geometry
//	mkdata skew  [-scale N] [-skew Z] [-top N]     print match distribution
//	mkdata policyxml                               print the Table I policy.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"dynamicmr/internal/core"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/tpch"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	scale := fs.Int("scale", 5, "TPC-H scale factor")
	seed := fs.Int64("seed", 1, "generator seed")
	skewZ := fs.Float64("skew", 1, "Zipf exponent (0, 1 or 2)")
	n := fs.Int("n", 10, "rows to print")
	top := fs.Int("top", 10, "partitions to print")
	fs.Parse(os.Args[2:])

	switch cmd {
	case "rows":
		gen := tpch.NewGenerator(uint64(*seed), *scale)
		fmt.Println(joinCols())
		for i := 0; i < *n; i++ {
			fmt.Println(gen.Row(int64(i)).String())
		}
	case "info":
		ds, err := dataset.Build(dataset.Spec{Scale: *scale, Seed: *seed, Z: *skewZ})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("name:        %s\n", ds.Name())
		fmt.Printf("rows:        %d\n", ds.TotalRows())
		fmt.Printf("bytes:       %d (%.2f GB)\n", ds.TotalBytes(), float64(ds.TotalBytes())/1e9)
		fmt.Printf("partitions:  %d\n", ds.NumPartitions())
		fmt.Printf("predicate:   %s\n", ds.Predicate())
		fmt.Printf("selectivity: %.4f%%\n", 100*float64(ds.TotalMatches())/float64(ds.TotalRows()))
		fmt.Printf("matches:     %d\n", ds.TotalMatches())
	case "skew":
		ds, err := dataset.Build(dataset.Spec{Scale: *scale, Seed: *seed, Z: *skewZ})
		if err != nil {
			fatal(err)
		}
		dist := ds.MatchDistribution()
		type pc struct {
			part  int
			count int64
		}
		ranked := make([]pc, len(dist))
		for i, c := range dist {
			ranked[i] = pc{i, c}
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].count > ranked[j].count })
		fmt.Printf("matching records across %d partitions (z=%g, %d matches):\n",
			len(dist), *skewZ, ds.TotalMatches())
		for i := 0; i < *top && i < len(ranked); i++ {
			fmt.Printf("  rank %2d: partition %3d holds %6d matches\n", i+1, ranked[i].part, ranked[i].count)
		}
	case "policyxml":
		doc, err := core.DefaultRegistry().PolicyXML()
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(doc)
	default:
		usage()
	}
}

func joinCols() string {
	out := ""
	for i, c := range tpch.LineItemSchema.Columns() {
		if i > 0 {
			out += "|"
		}
		out += c
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mkdata:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mkdata rows|info|skew|policyxml [flags]")
	os.Exit(2)
}
