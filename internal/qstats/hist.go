package qstats

import "math"

// Log-bucketed latency histogram. Buckets are geometric with 8 buckets
// per octave (ratio 2^(1/8) ≈ 1.09): bucket 0 holds everything below
// histMinBound seconds, bucket i (i >= 1) holds [minBound·2^((i-1)/8),
// minBound·2^(i/8)), and the last bucket is the overflow. 28 octaves
// above the 1 ms floor cover latencies up to ~3 virtual days, so a
// quantile estimate is never more than one bucket ratio (~9%) above
// the true value.
const (
	histMinBound         = 1e-3 // seconds; upper bound of bucket 0
	histBucketsPerOctave = 8
	histNumBuckets       = 1 + 28*histBucketsPerOctave
)

// Hist is a fixed-shape log-bucketed histogram. Because every Hist
// shares the same bucket boundaries, Merge is pure count addition and
// quantile estimates of a merged histogram are bounded by the shard
// estimates (see TestHistMergeBoundsQuantiles). The zero value is
// ready to use. Not safe for concurrent use; the Registry serialises
// access.
type Hist struct {
	counts   [histNumBuckets]int64
	count    int64
	sum      float64
	min, max float64
}

func histBucketOf(v float64) int {
	if !(v >= histMinBound) { // also catches NaN and negatives
		return 0
	}
	i := 1 + int(math.Floor(math.Log2(v/histMinBound)*histBucketsPerOctave))
	if i >= histNumBuckets {
		return histNumBuckets - 1
	}
	return i
}

// histBucketUpper returns bucket i's exclusive upper bound in seconds
// (+Inf for the overflow bucket).
func histBucketUpper(i int) float64 {
	if i >= histNumBuckets-1 {
		return math.Inf(1)
	}
	return histMinBound * math.Exp2(float64(i)/histBucketsPerOctave)
}

// Observe folds one latency (seconds) into the histogram.
func (h *Hist) Observe(v float64) {
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.counts[histBucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Hist) Count() int64 { return h.count }

// Sum returns the sum of observations in seconds.
func (h *Hist) Sum() float64 { return h.sum }

// Min returns the exact minimum observation (0 when empty).
func (h *Hist) Min() float64 { return h.min }

// Max returns the exact maximum observation (0 when empty).
func (h *Hist) Max() float64 { return h.max }

// Quantile estimates the q-quantile (0 < q <= 1) as the upper bound of
// the bucket where the cumulative count first reaches ceil(q·count).
// The estimate is an upper bound on the true quantile, at most one
// bucket ratio above it; it is deliberately NOT clamped to Max so that
// merged-histogram quantiles stay bounded by shard quantiles (the
// clamp breaks that property). Returns 0 when empty. For the overflow
// bucket the exact Max is returned instead of +Inf.
func (h *Hist) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum int64
	for i := 0; i < histNumBuckets; i++ {
		cum += h.counts[i]
		if cum >= target {
			if i == histNumBuckets-1 {
				return h.max
			}
			return histBucketUpper(i)
		}
	}
	return h.max
}

// Merge folds o's observations into h (count addition; both histograms
// share the package-fixed bucket layout).
func (h *Hist) Merge(o *Hist) {
	if o == nil || o.count == 0 {
		return
	}
	for i := range h.counts {
		h.counts[i] += o.counts[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// CumulativeLE returns the number of observations in buckets whose
// upper bound is <= le: the value of a Prometheus cumulative _bucket
// sample. Exact when le lies on a bucket boundary (the exposition
// ladder uses powers of 4 above the 1 ms floor, which are).
func (h *Hist) CumulativeLE(le float64) int64 {
	var cum int64
	for i := 0; i < histNumBuckets-1; i++ {
		if histBucketUpper(i) > le*(1+1e-12) {
			break
		}
		cum += h.counts[i]
	}
	return cum
}

// qpsWindow counts events inside a sliding wall-clock window.
type qpsWindow struct {
	window float64 // seconds
	times  []float64
	head   int
}

func (w *qpsWindow) add(t float64) { w.times = append(w.times, t) }

// rate returns events-per-second over the window ending at now,
// discarding expired entries as it goes.
func (w *qpsWindow) rate(now float64) float64 {
	cut := now - w.window
	for w.head < len(w.times) && w.times[w.head] < cut {
		w.head++
	}
	if w.head > 64 && w.head*2 > len(w.times) {
		w.times = append(w.times[:0:0], w.times[w.head:]...)
		w.head = 0
	}
	if w.window <= 0 {
		return 0
	}
	return float64(len(w.times)-w.head) / w.window
}
