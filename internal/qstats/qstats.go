// Package qstats is the per-query observability layer: a registry that
// assigns every sampling query a stable ID, tracks its lifecycle
// (submit / first-match / limit-hit / finish on both the virtual and
// the wall clock), attributes resources to it (splits grabbed, records
// read, map/shuffle/reduce seconds, overshoot versus k), folds finished
// queries into rolling log-bucketed latency histograms and windowed QPS
// per policy, and runs internal/diag incrementally over just that
// query's trace slice as it finishes — so the nine-component breakdown
// streams out live instead of only post-run.
//
// The registry hangs off the JobTracker event bus: the Hive session
// allocates an ID before submitting (so the ID rides the JobConf and
// the structured-log stream, vlog key "qid"), registers the job, and
// the registry does the rest from EventMapFinished/EventJobFinished
// callbacks on the engine goroutine. Trace spans and policy decisions
// are consumed through the incremental SpansSince /
// PolicyDecisionsSince cursors, never by copying the whole ring.
//
// Consumers: internal/obs serves the registry on /queries, /live and
// /metrics; cmd/dynmr dumps it on shutdown and renders `dynmr top`;
// the dynamicmr facade exposes it as Cluster.QueryStats(). All of it
// is absent — zero allocations, zero branches beyond a nil check —
// when the layer is disabled.
package qstats

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/trace"

	"sync"
)

// SchemaVersion identifies the JSON layout of Dump (the /queries
// payload and the -qstats-out file); see DESIGN.md "Per-query
// observability".
const SchemaVersion = "dynamicmr.qstats/1"

// Query states.
const (
	StateRunning   = "running"
	StateOK        = "ok"
	StateFailed    = "failed"
	StateAbandoned = "abandoned"
)

// DefaultMaxRecords bounds the finished-query detail list so an
// unbounded serve loop (-queries 0) cannot grow memory without limit;
// per-policy aggregates are unaffected by the trim.
const DefaultMaxRecords = 10000

// DefaultQPSWindowS is the sliding wall-clock window for the per-policy
// QPS gauge, in seconds.
const DefaultQPSWindowS = 60.0

// QueryRecord is the lifecycle and attribution record of one query.
// Timestamps with the VT suffix are virtual seconds; Wall timestamps
// are wall-clock seconds since the registry was created. Lifecycle
// fields that have not happened (yet) hold -1.
type QueryRecord struct {
	ID      string `json:"id"`
	JobID   int    `json:"job"`
	SQL     string `json:"query"`
	User    string `json:"user"`
	Policy  string `json:"policy"`
	K       int64  `json:"k"`
	Dynamic bool   `json:"dynamic"`
	State   string `json:"state"`
	Error   string `json:"error,omitempty"`

	SubmitVT     float64 `json:"submit_vt_s"`
	FirstMatchVT float64 `json:"first_match_vt_s"`
	LimitHitVT   float64 `json:"limit_hit_vt_s"`
	FinishVT     float64 `json:"finish_vt_s"`

	SubmitWall     float64 `json:"submit_wall_s"`
	FirstMatchWall float64 `json:"first_match_wall_s"`
	LimitHitWall   float64 `json:"limit_hit_wall_s"`
	FinishWall     float64 `json:"finish_wall_s"`

	LatencyVirtualS float64 `json:"latency_virtual_s"`
	LatencyWallS    float64 `json:"latency_wall_s"`

	// Resource attribution.
	SplitsTotal    int     `json:"splits_total"`
	SplitsGrabbed  int     `json:"splits_grabbed"`
	SplitsScanned  int     `json:"splits_scanned"`
	RecordsRead    int64   `json:"records_read"`
	Matches        int64   `json:"matches"`
	OvershootRows  int64   `json:"overshoot_rows"`
	Rows           int     `json:"rows"`
	ProviderEvals  int     `json:"provider_evaluations"`
	MapSeconds     float64 `json:"map_time_s"`
	ShuffleSeconds float64 `json:"shuffle_time_s"`
	ReduceSeconds  float64 `json:"reduce_time_s"`

	// Diagnosis is the per-query diag breakdown (critical path,
	// nine-component breakdown summing to the makespan, anomalies),
	// produced incrementally at finish; nil when tracing was disabled
	// or the job's spans were evicted before finish (DiagError says
	// why).
	Diagnosis *diag.JobDiagnosis `json:"diagnosis,omitempty"`
	DiagError string             `json:"diag_error,omitempty"`

	job *mapreduce.Job // engine-goroutine use only; not marshaled
}

// PolicyLatency is the rolling per-policy latency/QPS aggregate.
// Quantiles are log-bucket upper bounds (at most ~9% above the true
// value); Max values are exact.
type PolicyLatency struct {
	Policy     string  `json:"policy"`
	Finished   int64   `json:"finished"`
	Failed     int64   `json:"failed"`
	QPS        float64 `json:"qps_window"`
	QPSWindowS float64 `json:"qps_window_s"`

	WallP50S float64 `json:"wall_p50_s"`
	WallP90S float64 `json:"wall_p90_s"`
	WallP99S float64 `json:"wall_p99_s"`
	WallMaxS float64 `json:"wall_max_s"`

	VirtualP50S float64 `json:"virtual_p50_s"`
	VirtualP90S float64 `json:"virtual_p90_s"`
	VirtualP99S float64 `json:"virtual_p99_s"`
	VirtualMaxS float64 `json:"virtual_max_s"`
}

// Dump is the full registry snapshot serialised as SchemaVersion.
type Dump struct {
	Schema       string          `json:"schema"`
	VirtualTimeS float64         `json:"virtual_time_s"`
	WallTimeS    float64         `json:"wall_time_s"`
	Started      int64           `json:"queries_started"`
	Finished     int64           `json:"queries_finished"`
	Failed       int64           `json:"queries_failed"`
	Policies     []PolicyLatency `json:"policies"`
	InFlight     []QueryRecord   `json:"in_flight"`
	Queries      []QueryRecord   `json:"queries"`
}

type policyAgg struct {
	name     string
	finished int64
	failed   int64
	wall     Hist
	virtual  Hist
	qps      qpsWindow
}

// Registry tracks every query submitted through sessions wired to it.
// All methods are safe on a nil *Registry (the disabled state) and
// safe for concurrent use; event callbacks run on the engine
// goroutine, snapshot methods may run on HTTP handler goroutines.
type Registry struct {
	mu sync.Mutex

	jt    *mapreduce.JobTracker
	start time.Time
	now   func() float64 // wall seconds since start; injectable in tests

	nextID     int
	maxRecords int

	inflight map[int]*QueryRecord // keyed by job ID
	records  []*QueryRecord       // finished/abandoned, oldest first
	dropped  int64                // finished records trimmed from the list

	spanCursor     int64
	decisionCursor int
	spans          map[int][]trace.Span
	decisions      map[int][]trace.PolicyDecision

	policies []*policyAgg
	byPolicy map[string]*policyAgg

	started, finished, failed int64
}

// NewRegistry builds a registry bound to the JobTracker's event bus.
func NewRegistry(jt *mapreduce.JobTracker) *Registry {
	start := time.Now()
	r := &Registry{
		jt:         jt,
		start:      start,
		now:        func() float64 { return time.Since(start).Seconds() },
		maxRecords: DefaultMaxRecords,
		inflight:   make(map[int]*QueryRecord),
		spans:      make(map[int][]trace.Span),
		decisions:  make(map[int][]trace.PolicyDecision),
		byPolicy:   make(map[string]*policyAgg),
	}
	jt.Subscribe(r.onEvent)
	return r
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// AllocID reserves the next stable query ID. It is called before job
// submission so the ID can ride the JobConf (mapreduce.ConfQueryID)
// and appear in every log record the runtime emits for the job.
func (r *Registry) AllocID() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	return fmt.Sprintf("q-%06d", r.nextID)
}

// Register binds an allocated ID to a submitted job and opens its
// lifecycle record. totalSplits is the table's full split count (the
// denominator of "splits grabbed of N").
func (r *Registry) Register(id string, job *mapreduce.Job, sql string, totalSplits int) {
	if r == nil || job == nil {
		return
	}
	policy := job.Conf.Get(mapreduce.ConfDynamicPolicy, "")
	if policy == "" {
		if job.Dynamic {
			policy = "dynamic"
		} else {
			policy = "static"
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec := &QueryRecord{
		ID:      id,
		JobID:   job.ID,
		SQL:     sql,
		User:    job.User,
		Policy:  policy,
		K:       job.Conf.GetInt(mapreduce.ConfSampleSize, -1),
		Dynamic: job.Dynamic,
		State:   StateRunning,

		SubmitVT:       job.SubmitTime,
		FirstMatchVT:   -1,
		LimitHitVT:     -1,
		FinishVT:       -1,
		SubmitWall:     r.now(),
		FirstMatchWall: -1,
		LimitHitWall:   -1,
		FinishWall:     -1,

		SplitsTotal: totalSplits,
		job:         job,
	}
	r.inflight[job.ID] = rec
	r.started++
	// A job can be Done before Register runs (a static job over zero
	// splits completes inside Submit, before the session regains
	// control). Finalise it from the record we just opened.
	if job.Done() {
		r.finishLocked(rec, job.FinishTime)
	}
}

func (r *Registry) onEvent(e mapreduce.TaskEvent) {
	switch e.Type {
	case mapreduce.EventMapFinished:
		r.onProgress(e)
	case mapreduce.EventJobFinished:
		r.onFinished(e)
	}
}

// refreshLocked re-reads the job's live counters into the record. Only
// called on the engine goroutine (event callbacks), where touching the
// job is race-free.
func refreshLocked(rec *QueryRecord) {
	job := rec.job
	rec.SplitsGrabbed = job.ScheduledMaps()
	rec.SplitsScanned = job.CompletedMaps()
	rec.RecordsRead = job.Counters.MapInputRecords
	rec.Matches = job.Counters.MapOutputRecords
}

func (r *Registry) onProgress(e mapreduce.TaskEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.inflight[e.JobID]
	if !ok {
		return
	}
	refreshLocked(rec)
	if rec.Matches > 0 && rec.FirstMatchVT < 0 {
		rec.FirstMatchVT = e.Time
		rec.FirstMatchWall = r.now()
	}
	if rec.K > 0 && rec.Matches >= rec.K && rec.LimitHitVT < 0 {
		rec.LimitHitVT = e.Time
		rec.LimitHitWall = r.now()
	}
}

func (r *Registry) onFinished(e mapreduce.TaskEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.inflight[e.JobID]
	if !ok {
		return
	}
	r.finishLocked(rec, e.Time)
}

// finishLocked finalises a query: closes the lifecycle, attributes
// resources and phase seconds from the query's span slice, runs the
// incremental diagnosis, and folds the latency into the per-policy
// aggregates.
func (r *Registry) finishLocked(rec *QueryRecord, vt float64) {
	// Bucket any trace entries produced since the last finish while the
	// job is still in the inflight set, then take this job's slices.
	r.drainLocked()
	spans := r.spans[rec.JobID]
	decs := r.decisions[rec.JobID]
	delete(r.spans, rec.JobID)
	delete(r.decisions, rec.JobID)
	delete(r.inflight, rec.JobID)

	job := rec.job
	rec.job = nil
	rec.SplitsGrabbed = job.ScheduledMaps()
	rec.SplitsScanned = job.CompletedMaps()
	rec.RecordsRead = job.Counters.MapInputRecords
	rec.Matches = job.Counters.MapOutputRecords
	rec.Rows = len(job.Output())
	if rec.K >= 0 {
		if over := rec.Matches - rec.K; over > 0 {
			rec.OvershootRows = over
		}
	}
	if rec.Matches > 0 && rec.FirstMatchVT < 0 {
		rec.FirstMatchVT = vt
		rec.FirstMatchWall = r.now()
	}
	if rec.K > 0 && rec.Matches >= rec.K && rec.LimitHitVT < 0 {
		rec.LimitHitVT = vt
		rec.LimitHitWall = r.now()
	}

	rec.FinishVT = vt
	rec.FinishWall = r.now()
	rec.LatencyVirtualS = rec.FinishVT - rec.SubmitVT
	rec.LatencyWallS = rec.FinishWall - rec.SubmitWall
	if job.State() == mapreduce.StateSucceeded {
		rec.State = StateOK
	} else {
		rec.State = StateFailed
		rec.Error = job.Failure()
	}

	rec.ProviderEvals = len(decs)
	for _, s := range spans {
		switch s.Name {
		case trace.SpanMapAttempt:
			rec.MapSeconds += s.Duration()
		case trace.SpanShuffle, trace.SpanSort:
			rec.ShuffleSeconds += s.Duration()
		case trace.SpanReduceCPU, trace.SpanOutputWrite:
			rec.ReduceSeconds += s.Duration()
		}
	}

	if tr := r.jt.Tracer(); tr.Enabled() {
		d, err := diag.AnalyzeJob(rec.JobID, spans, decs, diag.Config{})
		if err != nil {
			rec.DiagError = err.Error()
		} else {
			rec.Diagnosis = d
		}
	}

	agg := r.byPolicy[rec.Policy]
	if agg == nil {
		agg = &policyAgg{name: rec.Policy, qps: qpsWindow{window: DefaultQPSWindowS}}
		r.byPolicy[rec.Policy] = agg
		r.policies = append(r.policies, agg)
	}
	agg.finished++
	r.finished++
	if rec.State == StateFailed {
		agg.failed++
		r.failed++
	}
	agg.wall.Observe(rec.LatencyWallS)
	agg.virtual.Observe(rec.LatencyVirtualS)
	agg.qps.add(rec.FinishWall)

	r.records = append(r.records, rec)
	// Amortised trim: let the slice overshoot by 25% before compacting
	// so the copy cost is O(1) per finished query, not O(maxRecords).
	if len(r.records) > r.maxRecords+r.maxRecords/4 {
		n := len(r.records) - r.maxRecords
		r.dropped += int64(n)
		r.records = append(r.records[:0:0], r.records[n:]...)
	}
}

// Abandon closes the record of a query whose caller gave up on it (a
// Hive deadline) while the job may still be running. The job's later
// EventJobFinished is ignored.
func (r *Registry) Abandon(job *mapreduce.Job, reason string) {
	if r == nil || job == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	rec, ok := r.inflight[job.ID]
	if !ok {
		return
	}
	delete(r.inflight, job.ID)
	delete(r.spans, job.ID)
	delete(r.decisions, job.ID)
	rec.job = nil
	rec.SplitsGrabbed = job.ScheduledMaps()
	rec.SplitsScanned = job.CompletedMaps()
	rec.RecordsRead = job.Counters.MapInputRecords
	rec.Matches = job.Counters.MapOutputRecords
	rec.State = StateAbandoned
	rec.Error = reason
	rec.FinishVT = r.jt.Engine().Now()
	rec.FinishWall = r.now()
	rec.LatencyVirtualS = rec.FinishVT - rec.SubmitVT
	rec.LatencyWallS = rec.FinishWall - rec.SubmitWall
	r.finished++
	r.failed++
	r.records = append(r.records, rec)
}

// drainLocked advances the trace cursors, bucketing fresh spans and
// policy decisions by the in-flight job they belong to. Entries for
// jobs the registry is not tracking (estimation jobs, finished jobs'
// stragglers) are discarded.
func (r *Registry) drainLocked() {
	tr := r.jt.Tracer()
	if !tr.Enabled() {
		return
	}
	spans, cur := tr.SpansSince(r.spanCursor)
	r.spanCursor = cur
	for _, s := range spans {
		if s.Job < 0 {
			continue
		}
		if _, ok := r.inflight[s.Job]; ok {
			r.spans[s.Job] = append(r.spans[s.Job], s)
		}
	}
	decs := tr.PolicyDecisionsSince(r.decisionCursor)
	r.decisionCursor += len(decs)
	for _, d := range decs {
		if _, ok := r.inflight[d.JobID]; ok {
			r.decisions[d.JobID] = append(r.decisions[d.JobID], d)
		}
	}
}

// Totals returns the started/finished/failed query counts.
func (r *Registry) Totals() (started, finished, failed int64) {
	if r == nil {
		return 0, 0, 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.started, r.finished, r.failed
}

// Summaries returns the finished queries, oldest first (bounded by
// DefaultMaxRecords; the oldest beyond the bound have been dropped).
func (r *Registry) Summaries() []QueryRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]QueryRecord, 0, len(r.records))
	for _, rec := range r.records {
		out = append(out, *rec)
	}
	return out
}

// FinishedSince returns copies of the finished-query records whose
// absolute sequence number (position in the finished stream, counting
// records already trimmed from retention) is >= seq, plus the next
// cursor value. Records that were trimmed before the caller caught up
// are simply gone — the cursor stays monotonic, so incremental
// consumers (the tsdb SLO-burn windows) never see a record twice.
func (r *Registry) FinishedSince(seq int64) ([]QueryRecord, int64) {
	if r == nil {
		return nil, seq
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	next := r.dropped + int64(len(r.records))
	if seq >= next {
		return nil, next
	}
	i := seq - r.dropped
	if i < 0 {
		i = 0
	}
	out := make([]QueryRecord, 0, int64(len(r.records))-i)
	for _, rec := range r.records[i:] {
		out = append(out, *rec)
	}
	return out, next
}

// InFlight returns the currently running queries, ordered by job ID.
func (r *Registry) InFlight() []QueryRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.inflightLocked()
}

func (r *Registry) inflightLocked() []QueryRecord {
	out := make([]QueryRecord, 0, len(r.inflight))
	for _, rec := range r.inflight {
		out = append(out, *rec)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].JobID < out[j-1].JobID; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Find returns the record with the given query ID, searching finished
// queries and then in-flight ones.
func (r *Registry) Find(id string) (QueryRecord, bool) {
	if r == nil {
		return QueryRecord{}, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := len(r.records) - 1; i >= 0; i-- {
		if r.records[i].ID == id {
			return *r.records[i], true
		}
	}
	for _, rec := range r.inflight {
		if rec.ID == id {
			return *rec, true
		}
	}
	return QueryRecord{}, false
}

// PolicyStats returns the rolling per-policy aggregates in
// first-seen order.
func (r *Registry) PolicyStats() []PolicyLatency {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.policyStatsLocked()
}

func (r *Registry) policyStatsLocked() []PolicyLatency {
	now := r.now()
	out := make([]PolicyLatency, 0, len(r.policies))
	for _, a := range r.policies {
		out = append(out, PolicyLatency{
			Policy:      a.name,
			Finished:    a.finished,
			Failed:      a.failed,
			QPS:         a.qps.rate(now),
			QPSWindowS:  a.qps.window,
			WallP50S:    a.wall.Quantile(0.50),
			WallP90S:    a.wall.Quantile(0.90),
			WallP99S:    a.wall.Quantile(0.99),
			WallMaxS:    a.wall.Max(),
			VirtualP50S: a.virtual.Quantile(0.50),
			VirtualP90S: a.virtual.Quantile(0.90),
			VirtualP99S: a.virtual.Quantile(0.99),
			VirtualMaxS: a.virtual.Max(),
		})
	}
	return out
}

// Dump snapshots the whole registry. The virtual clock is read from
// the engine, so callers must either hold the simulation lock or know
// the engine is idle.
func (r *Registry) Dump() Dump {
	if r == nil {
		return Dump{Schema: SchemaVersion}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	d := Dump{
		Schema:       SchemaVersion,
		VirtualTimeS: r.jt.Engine().Now(),
		WallTimeS:    r.now(),
		Started:      r.started,
		Finished:     r.finished,
		Failed:       r.failed,
		Policies:     r.policyStatsLocked(),
		InFlight:     r.inflightLocked(),
	}
	d.Queries = make([]QueryRecord, 0, len(r.records))
	for _, rec := range r.records {
		d.Queries = append(d.Queries, *rec)
	}
	return d
}

// WriteJSON writes the Dump as indented JSON (the -qstats-out file
// format, schema SchemaVersion).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Dump())
}
