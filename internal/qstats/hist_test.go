package qstats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHistBasics(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty hist not zero")
	}
	vals := []float64{0.002, 0.01, 0.05, 0.25, 1.3, 7}
	for _, v := range vals {
		h.Observe(v)
	}
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	if math.Abs(h.Sum()-sum) > 1e-12 {
		t.Fatalf("sum = %g want %g", h.Sum(), sum)
	}
	if h.Min() != 0.002 || h.Max() != 7 {
		t.Fatalf("min/max = %g/%g", h.Min(), h.Max())
	}
	// Quantile estimates are bucket upper bounds: at least the true
	// quantile, at most one bucket ratio (2^(1/8)) above it.
	ratio := math.Exp2(1.0 / histBucketsPerOctave)
	for i, q := range []float64{0.5, 0.9, 0.99} {
		truth := []float64{0.05, 7, 7}[i]
		got := h.Quantile(q)
		if got < truth || got > truth*ratio*(1+1e-9) {
			t.Errorf("Quantile(%g) = %g, want within [%g, %g]", q, got, truth, truth*ratio)
		}
	}
	// Monotone in q.
	if h.Quantile(0.99) < h.Quantile(0.5) {
		t.Fatal("quantiles not monotone")
	}
	// Sub-floor and negative observations land in bucket 0 whose upper
	// bound is the floor.
	var lo Hist
	lo.Observe(1e-6)
	lo.Observe(-3)
	if got := lo.Quantile(0.9); got != histMinBound {
		t.Fatalf("sub-floor quantile = %g, want %g", got, histMinBound)
	}
}

// TestHistMergeBoundsQuantiles is the satellite property test: for any
// sharding of observations into per-shard histograms, the merged
// histogram's quantile estimate lies within [min, max] of the shard
// estimates. This holds exactly because all Hists share one bucket
// layout and Quantile returns a bucket upper bound (not clamped to the
// shard max — see the Quantile doc).
func TestHistMergeBoundsQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		nShards := 2 + rng.Intn(4)
		shards := make([]*Hist, nShards)
		merged := &Hist{}
		direct := &Hist{}
		for i := range shards {
			shards[i] = &Hist{}
			n := 1 + rng.Intn(50)
			for j := 0; j < n; j++ {
				// Log-uniform latencies across ~7 decades.
				v := math.Exp(rng.Float64()*16 - 9)
				shards[i].Observe(v)
				direct.Observe(v)
			}
		}
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.Count() != direct.Count() || math.Abs(merged.Sum()-direct.Sum()) > 1e-9*direct.Sum() {
			t.Fatalf("trial %d: merge lost observations: count %d vs %d", trial, merged.Count(), direct.Count())
		}
		if merged.Min() != direct.Min() || merged.Max() != direct.Max() {
			t.Fatalf("trial %d: merge min/max mismatch", trial)
		}
		for _, q := range []float64{0.5, 0.9, 0.99, 1.0} {
			lo, hi := math.Inf(1), math.Inf(-1)
			for _, s := range shards {
				sq := s.Quantile(q)
				lo = math.Min(lo, sq)
				hi = math.Max(hi, sq)
			}
			got := merged.Quantile(q)
			if got < lo || got > hi {
				t.Fatalf("trial %d: merged Quantile(%g) = %g outside shard bounds [%g, %g]",
					trial, q, got, lo, hi)
			}
			// Merging must agree with observing everything directly.
			if got != direct.Quantile(q) {
				t.Fatalf("trial %d: merged Quantile(%g) = %g, direct = %g", trial, q, got, direct.Quantile(q))
			}
		}
	}
}

func TestHistCumulativeLE(t *testing.T) {
	var h Hist
	vals := []float64{0.0005, 0.002, 0.003, 0.01, 0.1, 2, 500, 1e7}
	for _, v := range vals {
		h.Observe(v)
	}
	for _, tc := range []struct {
		le   float64
		want int64
	}{
		{0.001, 1}, {0.004, 3}, {0.016, 4}, {0.256, 5}, {4.096, 6}, {1048.576, 7},
	} {
		if got := h.CumulativeLE(tc.le); got != tc.want {
			t.Errorf("CumulativeLE(%g) = %d, want %d", tc.le, got, tc.want)
		}
	}
	// The +Inf bucket in the exposition uses Count directly.
	if h.Count() != int64(len(vals)) {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestQPSWindow(t *testing.T) {
	w := qpsWindow{window: 60}
	for i := 0; i < 30; i++ {
		w.add(float64(i)) // one event per second for 30s
	}
	if got := w.rate(30); got != 0.5 {
		t.Fatalf("rate = %g, want 0.5", got)
	}
	// 70s later everything has expired.
	if got := w.rate(100); got != 0 {
		t.Fatalf("rate after expiry = %g, want 0", got)
	}
	// Compaction keeps the window correct.
	for i := 0; i < 1000; i++ {
		w.add(100 + float64(i)*0.01)
		w.rate(100 + float64(i)*0.01)
	}
	if got := w.rate(110); math.Abs(got-1000.0/60) > 1e-9 {
		t.Fatalf("rate after churn = %g, want %g", got, 1000.0/60)
	}
}
