package qstats

import (
	"strconv"

	"dynamicmr/internal/trace"
)

// promLadder is the cumulative le ladder for histogram exposition:
// powers of 4 above the 1 ms floor (each a fine-bucket boundary, so
// CumulativeLE is exact), then +Inf. Coarser than the internal
// 8-per-octave buckets to keep the /metrics payload small.
var promLadder = func() []float64 {
	out := make([]float64, 0, 11)
	for le := histMinBound; le <= 1100; le *= 4 {
		out = append(out, le)
	}
	return out
}()

func formatLE(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// PromFamilies renders the registry as Prometheus families: per-policy
// latency histograms (wall and virtual seconds), a per-policy windowed
// QPS gauge, and started/finished/failed counters. Names carry the
// given prefix (e.g. "dynmr.").
func (r *Registry) PromFamilies(prefix string) []trace.PromFamily {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	wall := trace.PromFamily{
		Name: prefix + "query.latency_wall_s",
		Help: "Wall-clock query latency by policy.",
		Type: trace.PromHistogram,
	}
	virt := trace.PromFamily{
		Name: prefix + "query.latency_virtual_s",
		Help: "Virtual-clock query latency by policy.",
		Type: trace.PromHistogram,
	}
	qps := trace.PromFamily{
		Name: prefix + "query.qps",
		Help: "Finished queries per second over the sliding window, by policy.",
		Type: trace.PromGauge,
	}
	now := r.now()
	for _, a := range r.policies {
		appendHist(&wall, a.name, &a.wall)
		appendHist(&virt, a.name, &a.virtual)
		qps.Samples = append(qps.Samples, trace.PromSample{
			Labels: []trace.PromLabel{{Name: "policy", Value: a.name}},
			Value:  a.qps.rate(now),
		})
	}

	counter := func(name, help string, v int64) trace.PromFamily {
		return trace.PromFamily{
			Name:    prefix + name,
			Help:    help,
			Type:    trace.PromCounter,
			Samples: []trace.PromSample{{Value: float64(v)}},
		}
	}
	return []trace.PromFamily{
		wall, virt, qps,
		counter("queries.started_total", "Queries registered.", r.started),
		counter("queries.finished_total", "Queries finished (any outcome).", r.finished),
		counter("queries.failed_total", "Queries failed or abandoned.", r.failed),
	}
}

func appendHist(f *trace.PromFamily, policy string, h *Hist) {
	for _, le := range promLadder {
		f.Samples = append(f.Samples, trace.PromSample{
			Suffix: "_bucket",
			Labels: []trace.PromLabel{{Name: "policy", Value: policy}, {Name: "le", Value: formatLE(le)}},
			Value:  float64(h.CumulativeLE(le)),
		})
	}
	f.Samples = append(f.Samples,
		trace.PromSample{
			Suffix: "_bucket",
			Labels: []trace.PromLabel{{Name: "policy", Value: policy}, {Name: "le", Value: "+Inf"}},
			Value:  float64(h.Count()),
		},
		trace.PromSample{
			Suffix: "_sum",
			Labels: []trace.PromLabel{{Name: "policy", Value: policy}},
			Value:  h.Sum(),
		},
		trace.PromSample{
			Suffix: "_count",
			Labels: []trace.PromLabel{{Name: "policy", Value: policy}},
			Value:  float64(h.Count()),
		},
	)
}
