package qstats

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
)

var schema = data.NewSchema("V")

func rig(t testing.TB, traced bool) (*sim.Engine, *dfs.DFS, *mapreduce.JobTracker) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := mapreduce.DefaultConfig()
	if traced {
		cfg.Trace = trace.Config{Enabled: true}
	}
	return eng, dfs.New(cl), mapreduce.NewJobTracker(cl, cfg, nil)
}

func mkFile(t testing.TB, fs *dfs.DFS, name string, blocks, recs int) *dfs.File {
	var srcs []data.Source
	for b := 0; b < blocks; b++ {
		rr := make([]data.Record, recs)
		for i := range rr {
			rr[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, rr))
	}
	f, err := fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// echoMapper emits every record, so MapOutputRecords counts matches.
func echoMapper(*mapreduce.JobConf) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(r data.Record, c *mapreduce.Collector) error {
		c.Emit("k", r)
		return nil
	})
}

func submitTracked(t testing.TB, r *Registry, jt *mapreduce.JobTracker, f *dfs.File, k int64, policy string) (*mapreduce.Job, string) {
	conf := mapreduce.NewJobConf()
	conf.SetInt(mapreduce.ConfSampleSize, k)
	if policy != "" {
		conf.Set(mapreduce.ConfDynamicPolicy, policy)
	}
	id := r.AllocID()
	conf.Set(mapreduce.ConfQueryID, id)
	splits := mapreduce.SplitsForFile(f)
	job := jt.Submit(mapreduce.JobSpec{Conf: conf, NewMapper: echoMapper}, splits)
	r.Register(id, job, "SELECT V FROM t WHERE p LIMIT k", len(splits))
	return job, id
}

func TestRegistryLifecycle(t *testing.T) {
	eng, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 12, 100)
	r := NewRegistry(jt)

	job, id := submitTracked(t, r, jt, f, 200, "LA")
	if id != "q-000001" {
		t.Fatalf("id = %q", id)
	}
	if got := r.InFlight(); len(got) != 1 || got[0].State != StateRunning {
		t.Fatalf("in-flight = %+v", got)
	}
	mapreduce.RunUntilDone(eng, job, 1e6)

	sums := r.Summaries()
	if len(sums) != 1 {
		t.Fatalf("summaries = %d", len(sums))
	}
	rec := sums[0]
	if rec.State != StateOK || rec.ID != id || rec.JobID != job.ID {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Matches != 1200 || rec.RecordsRead != 1200 {
		t.Fatalf("matches/read = %d/%d, want 1200/1200", rec.Matches, rec.RecordsRead)
	}
	if rec.OvershootRows != 1000 {
		t.Fatalf("overshoot = %d, want 1000", rec.OvershootRows)
	}
	if rec.SplitsGrabbed != 12 || rec.SplitsScanned != 12 || rec.SplitsTotal != 12 {
		t.Fatalf("splits = %d/%d/%d", rec.SplitsGrabbed, rec.SplitsScanned, rec.SplitsTotal)
	}
	// Lifecycle ordering: submit <= first-match <= limit-hit <= finish.
	if rec.FirstMatchVT < rec.SubmitVT || rec.LimitHitVT < rec.FirstMatchVT || rec.FinishVT < rec.LimitHitVT {
		t.Fatalf("lifecycle out of order: %+v", rec)
	}
	if rec.LatencyVirtualS != rec.FinishVT-rec.SubmitVT || rec.LatencyVirtualS <= 0 {
		t.Fatalf("virtual latency = %g", rec.LatencyVirtualS)
	}
	if rec.LatencyWallS < 0 || rec.FinishWall < rec.SubmitWall {
		t.Fatalf("wall clock went backwards: %+v", rec)
	}
	if rec.MapSeconds <= 0 || rec.ReduceSeconds <= 0 {
		t.Fatalf("phase seconds = map %g reduce %g", rec.MapSeconds, rec.ReduceSeconds)
	}
	// The incremental diagnosis ran and satisfies the diag invariant:
	// breakdown components sum to the query's makespan.
	if rec.Diagnosis == nil {
		t.Fatalf("no diagnosis (err %q)", rec.DiagError)
	}
	if err := rec.Diagnosis.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(rec.Diagnosis.Breakdown.Total() - rec.LatencyVirtualS); diff > 1e-6 {
		t.Fatalf("breakdown total %g != makespan %g", rec.Diagnosis.Breakdown.Total(), rec.LatencyVirtualS)
	}

	if got, ok := r.Find(id); !ok || got.ID != id {
		t.Fatalf("Find(%q) = %+v, %v", id, got, ok)
	}
	if _, ok := r.Find("q-999999"); ok {
		t.Fatal("Find invented a record")
	}

	ps := r.PolicyStats()
	if len(ps) != 1 || ps[0].Policy != "LA" || ps[0].Finished != 1 || ps[0].Failed != 0 {
		t.Fatalf("policy stats = %+v", ps)
	}
	if ps[0].VirtualP50S < rec.LatencyVirtualS || ps[0].VirtualMaxS != rec.LatencyVirtualS {
		t.Fatalf("latency stats = %+v vs %g", ps[0], rec.LatencyVirtualS)
	}
	if ps[0].QPS <= 0 {
		t.Fatalf("QPS = %g", ps[0].QPS)
	}

	started, finished, failed := r.Totals()
	if started != 1 || finished != 1 || failed != 0 {
		t.Fatalf("totals = %d/%d/%d", started, finished, failed)
	}
}

func TestRegistryDumpJSON(t *testing.T) {
	eng, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 6, 50)
	r := NewRegistry(jt)
	for i := 0; i < 3; i++ {
		job, _ := submitTracked(t, r, jt, f, 10, "HA")
		mapreduce.RunUntilDone(eng, job, 1e6)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var d Dump
	if err := json.Unmarshal(buf.Bytes(), &d); err != nil {
		t.Fatal(err)
	}
	if d.Schema != SchemaVersion {
		t.Fatalf("schema = %q", d.Schema)
	}
	if d.Started != 3 || d.Finished != 3 || len(d.Queries) != 3 || len(d.InFlight) != 0 {
		t.Fatalf("dump = %+v", d)
	}
	for i, q := range d.Queries {
		if q.Diagnosis == nil {
			t.Fatalf("query %d missing diagnosis", i)
		}
	}
	if len(d.Policies) != 1 || d.Policies[0].Policy != "HA" || d.Policies[0].Finished != 3 {
		t.Fatalf("policies = %+v", d.Policies)
	}
	// Nil registry still yields a schema-tagged empty dump.
	var nilReg *Registry
	if nd := nilReg.Dump(); nd.Schema != SchemaVersion || len(nd.Queries) != 0 {
		t.Fatalf("nil dump = %+v", nd)
	}
}

func TestRegistryUntracedStillCounts(t *testing.T) {
	eng, fs, jt := rig(t, false)
	f := mkFile(t, fs, "in", 4, 25)
	r := NewRegistry(jt)
	job, _ := submitTracked(t, r, jt, f, 5, "")
	mapreduce.RunUntilDone(eng, job, 1e6)
	sums := r.Summaries()
	if len(sums) != 1 || sums[0].State != StateOK {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Diagnosis != nil {
		t.Fatal("diagnosis without tracing")
	}
	if sums[0].Matches != 100 {
		t.Fatalf("matches = %d", sums[0].Matches)
	}
}

func TestRegistryIgnoresUnregisteredJobs(t *testing.T) {
	eng, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 4, 25)
	r := NewRegistry(jt)
	// A job submitted without Register (e.g. a selectivity-estimation
	// job) must not appear anywhere.
	job := jt.Submit(mapreduce.JobSpec{NewMapper: echoMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	if len(r.Summaries()) != 0 || len(r.InFlight()) != 0 {
		t.Fatal("unregistered job tracked")
	}
	started, _, _ := r.Totals()
	if started != 0 {
		t.Fatalf("started = %d", started)
	}
}

func TestRegistryAbandon(t *testing.T) {
	eng, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 4, 25)
	r := NewRegistry(jt)
	job, id := submitTracked(t, r, jt, f, 5, "C")
	r.Abandon(job, "deadline exceeded")
	mapreduce.RunUntilDone(eng, job, 1e6) // later finish must be ignored
	sums := r.Summaries()
	if len(sums) != 1 || sums[0].State != StateAbandoned || sums[0].ID != id {
		t.Fatalf("summaries = %+v", sums)
	}
	if sums[0].Error != "deadline exceeded" {
		t.Fatalf("error = %q", sums[0].Error)
	}
	_, finished, failed := r.Totals()
	if finished != 1 || failed != 1 {
		t.Fatalf("totals = %d/%d", finished, failed)
	}
}

func TestPromFamiliesExposition(t *testing.T) {
	eng, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 6, 50)
	r := NewRegistry(jt)
	for _, pol := range []string{"LA", "Hadoop"} {
		job, _ := submitTracked(t, r, jt, f, 10, pol)
		mapreduce.RunUntilDone(eng, job, 1e6)
	}
	var b strings.Builder
	if err := trace.WritePrometheus(&b, r.PromFamilies("dynmr.")); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE dynmr_query_latency_wall_s histogram",
		"# TYPE dynmr_query_latency_virtual_s histogram",
		`dynmr_query_latency_virtual_s_bucket{policy="LA",le="+Inf"} 1`,
		`dynmr_query_latency_virtual_s_count{policy="LA"} 1`,
		`dynmr_query_latency_virtual_s_count{policy="Hadoop"} 1`,
		`dynmr_query_qps{policy="LA"}`,
		"dynmr_queries_started_total 2",
		"dynmr_queries_finished_total 2",
		"dynmr_queries_failed_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Bucket lines are cumulative and end at +Inf == count.
	if !strings.Contains(out, `le="0.001"`) {
		t.Error("ladder floor missing")
	}
	if (*Registry)(nil).PromFamilies("x") != nil {
		t.Fatal("nil registry produced families")
	}
}

// BenchmarkQueryRecord measures the per-query bookkeeping cost the
// registry adds to a serve loop: ID allocation, registration, trace
// drain, phase attribution, the incremental diag run, histogram folds
// and record retention. The simulation itself runs once, outside the
// timed loop; each iteration replays the finalisation against the
// captured span slice (the dominant term, diag.AnalyzeJob included).
func BenchmarkQueryRecord(b *testing.B) {
	eng, fs, jt := rig(b, true)
	f := mkFile(b, fs, "in", 12, 100)
	r := NewRegistry(jt)
	job, _ := submitTracked(b, r, jt, f, 200, "LA")
	mapreduce.RunUntilDone(eng, job, 1e6)
	r.mu.Lock()
	seed := r.records[0]
	r.maxRecords = 1000
	r.mu.Unlock()
	var spans []trace.Span
	for _, s := range jt.Tracer().Spans() {
		if s.Job == job.ID {
			spans = append(spans, s)
		}
	}
	if seed.Diagnosis == nil {
		b.Fatalf("seed query has no diagnosis (%s)", seed.DiagError)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := r.AllocID()
		r.mu.Lock()
		rec := &QueryRecord{
			ID: id, JobID: job.ID, SQL: seed.SQL, User: job.User,
			Policy: "LA", K: 200, Dynamic: job.Dynamic, State: StateRunning,
			SubmitVT: job.SubmitTime, FirstMatchVT: -1, LimitHitVT: -1, FinishVT: -1,
			SubmitWall: r.now(), FirstMatchWall: -1, LimitHitWall: -1, FinishWall: -1,
			SplitsTotal: 12, job: job,
		}
		r.inflight[job.ID] = rec
		r.spans[job.ID] = spans
		r.started++
		r.finishLocked(rec, job.FinishTime)
		r.mu.Unlock()
	}
	b.StopTimer()
	if got := r.records[len(r.records)-1]; got.Diagnosis == nil {
		b.Fatalf("benchmark records lost diagnosis: %q", got.DiagError)
	}
}
