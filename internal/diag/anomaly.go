package diag

import (
	"fmt"
	"math"

	"dynamicmr/internal/trace"
)

// jobAnomalies runs the per-job detectors: map-attempt stragglers and
// speculative-kill waste.
func jobAnomalies(j *jobData, cfg Config) []Anomaly {
	var out []Anomaly
	if n := len(j.okMaps); n >= cfg.StragglerMinAttempts {
		mean, sd := meanStd(j.okMaps)
		thr := mean + cfg.StragglerSigma*sd
		if sd > 0 {
			for _, s := range j.okMaps {
				if d := s.Duration(); d > thr {
					out = append(out, Anomaly{
						Kind: AnomalyStraggler, Job: j.id,
						Task: s.Task, Attempt: s.Attempt, Node: s.Node,
						Value: d, Threshold: thr,
						Detail: fmt.Sprintf("map attempt ran %.3gs vs phase mean %.3gs±%.3gs (k=%g)",
							d, mean, sd, cfg.StragglerSigma),
					})
				}
			}
		}
	}
	var waste float64
	for _, s := range j.killed {
		waste += s.Duration()
	}
	if len(j.killed) > 0 {
		out = append(out, Anomaly{
			Kind: AnomalySpeculativeWaste, Job: j.id,
			Task: -1, Attempt: 0, Node: -1,
			Value: waste,
			Detail: fmt.Sprintf("%d killed attempt(s) burned %.3gs of slot time",
				len(j.killed), waste),
		})
	}
	return out
}

// clusterAnomalies inspects cluster-wide counters: a high
// map.scan_stalls / map.scan_async ratio means the async scan
// executor keeps blocking the simulation thread (undersized pool or
// scan-bound workload).
func clusterAnomalies(counters map[string]int64, cfg Config) []Anomaly {
	stalls := counters[trace.CounterScanStalls]
	async := counters[trace.CounterScanAsync]
	if async <= 0 || stalls <= 0 {
		return nil
	}
	ratio := float64(stalls) / float64(async)
	if ratio < cfg.ScanStallRatio {
		return nil
	}
	return []Anomaly{{
		Kind: AnomalyScanStalls, Job: -1, Task: -1, Attempt: 0, Node: -1,
		Value: ratio, Threshold: cfg.ScanStallRatio,
		Detail: fmt.Sprintf("%d of %d async scans stalled the simulation thread; consider more -scan-workers",
			stalls, async),
	}}
}

func meanStd(spans []trace.Span) (mean, sd float64) {
	n := float64(len(spans))
	if n == 0 {
		return 0, 0
	}
	for _, s := range spans {
		mean += s.Duration()
	}
	mean /= n
	var varSum float64
	for _, s := range spans {
		d := s.Duration() - mean
		varSum += d * d
	}
	return mean, math.Sqrt(varSum / n)
}
