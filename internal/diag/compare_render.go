package diag

import (
	"encoding/json"
	"fmt"
	"html"
	"io"
	"math"
	"strings"
)

// WriteJSON emits the diff as indented JSON (schema DiffSchemaVersion).
func (r *DiffReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders a human-readable cross-run comparison.
func (r *DiffReport) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("run diff: A=%s  B=%s  (%d aligned job(s); deltas are B−A)\n",
		r.ALabel, r.BLabel, len(r.Jobs))
	bw.printf("total makespan delta: %+.3fs\n", r.TotalMakespanDeltaS)
	for _, j := range r.Jobs {
		bw.printf("\n%s: job %d vs job %d — makespan %.3fs → %.3fs (%+.3fs)\n",
			j.Key, j.AJob, j.BJob, j.AMakespanS, j.BMakespanS, j.MakespanDeltaS)
		bw.printf("  %-18s %12s %12s %12s\n", "component", "A (s)", "B (s)", "delta (s)")
		for _, c := range j.Components {
			if c.AS == 0 && c.BS == 0 {
				continue
			}
			bw.printf("  %-18s %12.3f %12.3f %+12.3f\n", c.Name, c.AS, c.BS, c.DeltaS)
		}
		if d := j.FirstDivergence; d != nil {
			bw.printf("  first divergent decision at index %d (%s):\n", d.Index, d.Reason)
			if d.A != nil {
				bw.printf("    A: t=%.3fs %s %s added=%d limit=%d\n",
					d.A.TimeS, d.A.Policy, d.A.Verdict, d.A.Added, d.A.GrabLimit)
			} else {
				bw.printf("    A: (sequence ended)\n")
			}
			if d.B != nil {
				bw.printf("    B: t=%.3fs %s %s added=%d limit=%d\n",
					d.B.TimeS, d.B.Policy, d.B.Verdict, d.B.Added, d.B.GrabLimit)
			} else {
				bw.printf("    B: (sequence ended)\n")
			}
		} else {
			bw.printf("  provider decisions: identical twins\n")
		}
		if j.Path.FirstKindDifference >= 0 {
			bw.printf("  critical path: %d vs %d node(s), first kind difference at node %d\n",
				j.Path.ANodes, j.Path.BNodes, j.Path.FirstKindDifference)
		} else {
			bw.printf("  critical path: %d vs %d node(s), same kind sequence\n",
				j.Path.ANodes, j.Path.BNodes)
		}
		for _, s := range j.AnomaliesOnlyA {
			bw.printf("  anomaly only in A: %s\n", s)
		}
		for _, s := range j.AnomaliesOnlyB {
			bw.printf("  anomaly only in B: %s\n", s)
		}
	}
	if len(r.OnlyA) > 0 {
		bw.printf("\nonly in A: %s\n", strings.Join(r.OnlyA, ", "))
	}
	if len(r.OnlyB) > 0 {
		bw.printf("only in B: %s\n", strings.Join(r.OnlyB, ", "))
	}
	if len(r.AlertsOnlyA) > 0 {
		bw.printf("\nalerts only in A: %s\n", strings.Join(r.AlertsOnlyA, ", "))
	}
	if len(r.AlertsOnlyB) > 0 {
		bw.printf("alerts only in B: %s\n", strings.Join(r.AlertsOnlyB, ", "))
	}
	if len(r.CounterDeltas) > 0 {
		bw.printf("\ncounter deltas:\n")
		for _, c := range r.CounterDeltas {
			bw.printf("  %-28s %12d %12d %+12d\n", c.Name, c.A, c.B, c.Delta)
		}
	}
	return bw.err
}

// diffKindColor maps breakdown/path kinds to the diff report's
// palette. The renderer is self-contained (diag sits below obs in the
// import graph), so these are literal colors, not CSS variables.
func diffKindColor(kind string) string {
	switch kind {
	case KindSlotWait:
		return "#8899aa"
	case KindProviderWait:
		return "#c678dd"
	case KindStartup:
		return "#e5c07b"
	case KindDiskReadLocal, "data-read-local":
		return "#56b6c2"
	case KindDiskReadRemote, KindNetRead, "data-read-remote":
		return "#61afef"
	case KindMapCPU, "map-compute":
		return "#98c379"
	case KindShuffle:
		return "#d19a66"
	case KindSort, KindReduceCPU, KindOutputWrite, "reduce":
		return "#e06c75"
	default:
		return "#5c6370" // untraced
	}
}

// breakdownComponentKinds maps canonical component names back to a
// representative path kind for coloring Gantt bars consistently with
// the stacks.
var diffComponents = []string{
	"slot-wait", "provider-wait", "startup", "data-read-local",
	"data-read-remote", "map-compute", "shuffle", "reduce", "untraced",
}

// WriteHTML renders a self-contained side-by-side comparison: per
// aligned job, paired breakdown stacks (A over B on a shared scale)
// and aligned critical-path Gantts (both normalized to their submit
// time on a shared time axis), plus the component-delta table, the
// first divergent decision and the counter deltas.
func (r *DiffReport) WriteHTML(w io.Writer) error {
	esc := html.EscapeString
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en"><head><meta charset="utf-8">
<title>run diff</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; background: #1e2127; color: #abb2bf; margin: 24px; }
h1, h2, h3 { color: #e6e6e6; font-weight: 600; }
h1 { font-size: 20px; } h2 { font-size: 16px; margin-top: 28px; }
section { margin-bottom: 28px; }
table { border-collapse: collapse; margin: 8px 0; }
th, td { padding: 3px 10px; text-align: right; border-bottom: 1px solid #32363e; }
th { color: #7f848e; font-weight: 500; }
td:first-child, th:first-child { text-align: left; }
.pos { color: #e06c75; } .neg { color: #98c379; }
.legend { display: flex; flex-wrap: wrap; gap: 12px; margin: 8px 0; font-size: 12px; }
.key { display: inline-flex; align-items: center; gap: 5px; }
.swatch { width: 11px; height: 11px; border-radius: 2px; display: inline-block; }
.pair { margin: 6px 0 14px; }
.row { display: flex; align-items: center; gap: 8px; margin: 3px 0; }
.side { width: 120px; color: #7f848e; font-size: 12px; text-align: right; flex: none;
        overflow: hidden; text-overflow: ellipsis; white-space: nowrap; }
.stack { height: 16px; display: flex; border-radius: 3px; overflow: hidden; background: #282c34; }
.stack span { display: block; height: 100%; }
.note { color: #7f848e; font-size: 13px; }
svg text { fill: #7f848e; font: 10px system-ui, sans-serif; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>run diff — A: %s &nbsp;vs&nbsp; B: %s</h1>\n", esc(r.ALabel), esc(r.BLabel))
	fmt.Fprintf(&b, "<p class=\"note\">%d aligned job(s); deltas are B−A, so positive means B is slower. "+
		"Per-component deltas sum to the makespan delta by construction.</p>\n", len(r.Jobs))
	fmt.Fprintf(&b, "<p>total makespan delta: <b class=%q>%+.3fs</b></p>\n",
		deltaClass(r.TotalMakespanDeltaS), r.TotalMakespanDeltaS)

	// Legend shared by all stacks and Gantts.
	b.WriteString(`<div class="legend">`)
	for _, name := range diffComponents {
		fmt.Fprintf(&b, `<span class="key"><span class="swatch" style="background:%s"></span>%s</span>`,
			diffKindColor(name), esc(name))
	}
	b.WriteString("</div>\n")

	for _, j := range r.Jobs {
		fmt.Fprintf(&b, "<section>\n<h2>%s — makespan %.3fs → %.3fs (<span class=%q>%+.3fs</span>)</h2>\n",
			esc(j.Key), j.AMakespanS, j.BMakespanS, deltaClass(j.MakespanDeltaS), j.MakespanDeltaS)

		// Paired breakdown stacks on a shared scale: each stack's width
		// is its makespan's share of the slower side, so A and B are
		// directly comparable.
		scale := math.Max(j.AMakespanS, j.BMakespanS)
		writeStackRow := func(label string, d *JobDiagnosis) {
			fmt.Fprintf(&b, `<div class="row"><span class="side" title=%q>%s · job %d</span><div class="stack" style="width:%.2f%%">`,
				esc(label), esc(label), d.JobID, widthPct(d.MakespanS, scale))
			if d.MakespanS > 0 {
				for _, c := range d.Breakdown.Components() {
					if c.Seconds <= 0 {
						continue
					}
					pct := c.Seconds / d.MakespanS * 100
					fmt.Fprintf(&b, `<span style="width:%.3f%%;background:%s" title="%s %.3fs (%.1f%%)"></span>`,
						pct, diffKindColor(c.Name), esc(c.Name), c.Seconds, pct)
				}
			}
			b.WriteString("</div></div>\n")
		}
		b.WriteString(`<div class="pair">`)
		writeStackRow(r.ALabel, j.A)
		writeStackRow(r.BLabel, j.B)
		b.WriteString("</div>\n")

		// Aligned critical-path Gantt: both paths normalized to their
		// submit time, on one shared x axis.
		writeAlignedGantt(&b, j, scale, r.ALabel, r.BLabel)

		// Component delta table.
		b.WriteString("<table>\n<thead><tr><th>component</th><th>A (s)</th><th>B (s)</th><th>delta (s)</th></tr></thead>\n<tbody>\n")
		for _, c := range j.Components {
			if c.AS == 0 && c.BS == 0 {
				continue
			}
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%.3f</td><td>%.3f</td><td class=%q>%+.3f</td></tr>\n",
				esc(c.Name), c.AS, c.BS, deltaClass(c.DeltaS), c.DeltaS)
		}
		fmt.Fprintf(&b, "<tr><td><b>makespan</b></td><td>%.3f</td><td>%.3f</td><td class=%q><b>%+.3f</b></td></tr>\n",
			j.AMakespanS, j.BMakespanS, deltaClass(j.MakespanDeltaS), j.MakespanDeltaS)
		b.WriteString("</tbody>\n</table>\n")

		if d := j.FirstDivergence; d != nil {
			fmt.Fprintf(&b, "<p class=\"note\">⚠ first divergent provider decision at index %d (%s): ", d.Index, esc(d.Reason))
			if d.A != nil {
				fmt.Fprintf(&b, "A t=%.3fs %s %s added=%d limit=%d", d.A.TimeS, esc(d.A.Policy), esc(d.A.Verdict), d.A.Added, d.A.GrabLimit)
			} else {
				b.WriteString("A ended")
			}
			b.WriteString(" · ")
			if d.B != nil {
				fmt.Fprintf(&b, "B t=%.3fs %s %s added=%d limit=%d", d.B.TimeS, esc(d.B.Policy), esc(d.B.Verdict), d.B.Added, d.B.GrabLimit)
			} else {
				b.WriteString("B ended")
			}
			b.WriteString("</p>\n")
		} else {
			b.WriteString("<p class=\"note\">provider decisions: identical twins</p>\n")
		}
		for _, s := range j.AnomaliesOnlyA {
			fmt.Fprintf(&b, "<p class=\"note\">⚠ anomaly only in A: %s</p>\n", esc(s))
		}
		for _, s := range j.AnomaliesOnlyB {
			fmt.Fprintf(&b, "<p class=\"note\">⚠ anomaly only in B: %s</p>\n", esc(s))
		}
		b.WriteString("</section>\n")
	}

	if len(r.OnlyA) > 0 || len(r.OnlyB) > 0 {
		b.WriteString("<section>\n<h2>Unmatched jobs</h2>\n")
		if len(r.OnlyA) > 0 {
			fmt.Fprintf(&b, "<p class=\"note\">only in A: %s</p>\n", esc(strings.Join(r.OnlyA, ", ")))
		}
		if len(r.OnlyB) > 0 {
			fmt.Fprintf(&b, "<p class=\"note\">only in B: %s</p>\n", esc(strings.Join(r.OnlyB, ", ")))
		}
		b.WriteString("</section>\n")
	}

	if len(r.AlertsOnlyA) > 0 || len(r.AlertsOnlyB) > 0 {
		b.WriteString("<section>\n<h2>Alert differences</h2>\n")
		for _, s := range r.AlertsOnlyA {
			fmt.Fprintf(&b, "<p class=\"note\">⚠ alert only in A: %s</p>\n", esc(s))
		}
		for _, s := range r.AlertsOnlyB {
			fmt.Fprintf(&b, "<p class=\"note\">⚠ alert only in B: %s</p>\n", esc(s))
		}
		b.WriteString("</section>\n")
	}

	if len(r.CounterDeltas) > 0 {
		b.WriteString("<section>\n<h2>Counter deltas</h2>\n" +
			"<table>\n<thead><tr><th>counter</th><th>A</th><th>B</th><th>delta</th></tr></thead>\n<tbody>\n")
		for _, c := range r.CounterDeltas {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%+d</td></tr>\n",
				esc(c.Name), c.A, c.B, c.Delta)
		}
		b.WriteString("</tbody>\n</table>\n</section>\n")
	}

	b.WriteString("</body></html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeAlignedGantt draws both critical paths as two lanes on a shared
// time axis starting at each side's submit time.
func writeAlignedGantt(b *strings.Builder, j JobDelta, xmax float64, aLabel, bLabel string) {
	if xmax <= 0 || (len(j.A.CriticalPath) == 0 && len(j.B.CriticalPath) == 0) {
		return
	}
	const width, left, right, laneH, laneGap, top = 920.0, 120.0, 16.0, 16.0, 8.0, 6.0
	const bottom = 22.0
	plotW := width - left - right
	height := top + 2*laneH + laneGap + bottom
	esc := html.EscapeString
	fmt.Fprintf(b, `<svg viewBox="0 0 %g %g" width="100%%" role="img" aria-label="aligned critical paths">`,
		width, height)
	x := func(t float64) float64 { return left + t/xmax*plotW }
	lane := func(y float64, label string, d *JobDiagnosis) {
		fmt.Fprintf(b, `<text x="%g" y="%g" text-anchor="end">%s</text>`, left-6, y+laneH-4, esc(clipLabel(label, 18)))
		for _, n := range d.CriticalPath {
			s, e := n.Start-d.SubmitS, n.End-d.SubmitS
			if e <= s {
				continue
			}
			fmt.Fprintf(b, `<rect x="%.2f" y="%g" width="%.2f" height="%g" fill="%s"><title>%s [%.3f → %.3f] %.3fs</title></rect>`,
				x(s), y, math.Max(x(e)-x(s), 0.5), laneH, diffKindColor(n.Kind),
				esc(n.Kind), n.Start, n.End, n.End-n.Start)
		}
	}
	lane(top, aLabel, j.A)
	lane(top+laneH+laneGap, bLabel, j.B)
	// X axis: 0 .. xmax seconds since submit.
	axisY := top + 2*laneH + laneGap + 4
	fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#32363e"/>`, left, axisY, width-right, axisY)
	for i := 0; i <= 4; i++ {
		t := xmax * float64(i) / 4
		fmt.Fprintf(b, `<text x="%g" y="%g" text-anchor="middle">%.1fs</text>`, x(t), axisY+12, t)
	}
	b.WriteString("</svg>\n")
}

// widthPct maps a makespan onto the shared stack scale.
func widthPct(v, scale float64) float64 {
	if scale <= 0 {
		return 100
	}
	return v / scale * 100
}

// deltaClass colors positive deltas (B slower) red, negative green.
func deltaClass(d float64) string {
	switch {
	case d > 0:
		return "pos"
	case d < 0:
		return "neg"
	}
	return ""
}

// clipLabel shortens a label for an SVG lane caption.
func clipLabel(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
