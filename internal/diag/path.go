package diag

import (
	"math"
	"sort"

	"dynamicmr/internal/trace"
)

// criticalPath extracts the chain of intervals that determined the
// job's makespan by chaining backward from the finish time: at each
// cursor position it picks the attempt that finished last at or
// before the cursor (the one completion gated on), walks through its
// phase chain and queue wait, and classifies any remaining gap as
// provider wait (the Input Provider had not granted work) or slot
// wait (scheduling latency). The returned nodes tile
// [submit, finish] exactly, which is what makes the breakdown sum to
// the makespan by construction.
func criticalPath(j *jobData) []PathNode {
	submit, finish := j.span.Start, j.span.End
	tol := pathTol(finish)
	if finish-submit <= tol {
		return nil
	}
	used := make([]bool, len(j.attempts))
	var rev []PathNode // built finish→submit, reversed at the end
	cursor := finish
	var down *attempt // the attempt just after the current cursor
	// Each iteration either consumes an attempt or terminates, so the
	// guard only trips on malformed input (e.g. a truncated ring).
	guard := 4*len(j.attempts) + 64
	for cursor > submit+tol {
		guard--
		if guard < 0 {
			rev = append(rev, gapNode(submit, cursor, KindUntraced, nil,
				"path extraction gave up (inconsistent trace)"))
			cursor = submit
			break
		}
		best := -1
		for i := range j.attempts {
			if used[i] {
				continue
			}
			a := j.attempts[i].span
			if a.End > cursor+tol {
				continue
			}
			if best < 0 || a.End > j.attempts[best].span.End ||
				(a.End == j.attempts[best].span.End && a.Start > j.attempts[best].span.Start) {
				best = i
			}
		}
		if best < 0 {
			// No attempt finished in (submit, cursor]: the whole head
			// of the job is wait time.
			kind, det := classifyGap(j, submit, cursor)
			rev = append(rev, gapNode(submit, cursor, kind, down, det))
			cursor = submit
			break
		}
		a := &j.attempts[best]
		used[best] = true
		end := math.Min(a.span.End, cursor)
		if cursor-end > tol {
			kind, det := classifyGap(j, end, cursor)
			rev = append(rev, gapNode(end, cursor, kind, down, det))
		}
		nodes := attemptNodes(a, a.span.Start, end)
		for i := len(nodes) - 1; i >= 0; i-- {
			rev = append(rev, nodes[i])
		}
		cursor = math.Min(a.span.Start, end)
		down = a
		if qw := a.queueWait; qw != nil && qw.Start < cursor-tol {
			start := math.Max(qw.Start, submit)
			rev = append(rev, PathNode{Kind: KindSlotWait, Start: start, End: cursor,
				Task: a.span.Task, Attempt: a.span.Attempt, Node: a.span.Node,
				Detail: "queued, waiting for a free slot"})
			cursor = start
		}
	}
	if cursor > submit+tol {
		kind, det := classifyGap(j, submit, cursor)
		rev = append(rev, gapNode(submit, cursor, kind, down, det))
	} else if len(rev) > 0 && rev[len(rev)-1].Start > submit {
		// Snap a sub-tolerance residue so the path begins exactly at
		// the submit time.
		rev[len(rev)-1].Start = submit
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev
}

func pathTol(at float64) float64 { return 1e-9 * math.Max(1, math.Abs(at)) }

// classifyGap decides whether an idle interval on the path was the
// Input Provider's doing. A GROW/INIT decision coinciding with the
// gap's end means the work that unblocked the job was granted exactly
// then; WAIT/SKIP verdicts inside the gap mean the provider was
// explicitly idling the job. Everything else is scheduling latency
// (heartbeat wait, slot contention).
func classifyGap(j *jobData, start, end float64) (string, string) {
	tol := pathTol(end)
	i := sort.SearchFloat64s(j.growTimes, end-tol)
	if i < len(j.growTimes) && j.growTimes[i] <= end+tol {
		return KindProviderWait, "ends at an Input Provider INIT/GROW decision"
	}
	k := sort.SearchFloat64s(j.waitTimes, start+tol)
	if k < len(j.waitTimes) && j.waitTimes[k] < end-tol {
		return KindProviderWait, "Input Provider chose WAIT/SKIP during this interval"
	}
	return KindSlotWait, "no attempt running; scheduling gap"
}

func gapNode(start, end float64, kind string, down *attempt, detail string) PathNode {
	n := PathNode{Kind: kind, Start: start, End: end, Task: -1, Attempt: 0, Node: -1, Detail: detail}
	if down != nil {
		n.Task, n.Attempt, n.Node = down.span.Task, down.span.Attempt, down.span.Node
	}
	return n
}

// attemptNodes converts one attempt's phase chain into path nodes
// tiling [start, end]; holes (phases evicted from the trace ring)
// become untraced filler so tiling still holds.
func attemptNodes(a *attempt, start, end float64) []PathNode {
	tol := pathTol(end)
	if end-start <= 0 {
		return nil
	}
	hasNet := false
	if a.kind == trace.CatMap {
		for _, p := range a.phases {
			if p.Name == trace.SpanNetRead {
				hasNet = true
				break
			}
		}
	}
	var out []PathNode
	t := start
	emit := func(kind string, upto float64, detail string) {
		upto = math.Min(upto, end)
		if upto <= t {
			return
		}
		out = append(out, PathNode{Kind: kind, Start: t, End: upto,
			Task: a.span.Task, Attempt: a.span.Attempt, Node: a.span.Node, Detail: detail})
		t = upto
	}
	for _, p := range a.phases {
		if p.Start > t+tol {
			emit(KindUntraced, p.Start, "untraced hole in attempt")
		}
		emit(phaseKind(p.Name, hasNet), p.End, "")
	}
	if t < end-tol {
		emit(KindUntraced, end, "untraced tail of attempt")
	} else if t < end && len(out) > 0 {
		out[len(out)-1].End = end
	} else if len(out) == 0 {
		emit(KindUntraced, end, "attempt phases missing from trace")
	}
	return out
}

// phaseKind maps a phase span name to a path node kind. Phase names
// are unique across map and reduce chains except startup, which maps
// to the same kind either way; a map's disk read is classified
// local/remote by whether the attempt also transferred its split over
// the network.
func phaseKind(name string, hasNet bool) string {
	switch name {
	case trace.SpanStartup:
		return KindStartup
	case trace.SpanDiskRead:
		if hasNet {
			return KindDiskReadRemote
		}
		return KindDiskReadLocal
	case trace.SpanNetRead:
		return KindNetRead
	case trace.SpanMapCPU:
		return KindMapCPU
	case trace.SpanShuffle:
		return KindShuffle
	case trace.SpanSort:
		return KindSort
	case trace.SpanReduceCPU:
		return KindReduceCPU
	case trace.SpanOutputWrite:
		return KindOutputWrite
	}
	return KindUntraced
}
