package diag

import (
	"fmt"
	"math"
	"sort"

	"dynamicmr/internal/trace"
)

// DiffSchemaVersion identifies the JSON layout emitted by
// DiffReport.WriteJSON (dynmr diff -json); see DESIGN.md.
const DiffSchemaVersion = "dynamicmr.diff/1"

// RunSide is one side of a cross-run comparison: a run's diagnosis
// report plus the raw decision log and an optional job → query-ID
// alignment map. It is a plain value type so the archive layer (which
// sits above diag in the import graph) can adapt its bundles into it;
// see runarchive.Compare.
type RunSide struct {
	// Label names the side in rendered output ("baseline", the archive
	// label, ...).
	Label string
	// Report is the side's per-job diagnosis. Required; every job must
	// satisfy CheckInvariants (breakdown sums to makespan), which is
	// what makes the per-component deltas sum to the makespan delta by
	// construction.
	Report *Report
	// Decisions is the side's full Input Provider audit log, in record
	// order; Compare slices it per job to locate the first divergent
	// GROW/WAIT decision between twin runs.
	Decisions []trace.PolicyDecision
	// QueryByJob maps job IDs to stable query IDs (qstats "q-000001"
	// keys). When both sides carry an entry for a job, alignment uses
	// the query ID; jobs without one align by job ID.
	QueryByJob map[int]string
	// Alerts is the side's alert-event signature multiset ("rule(state)"
	// strings, in log order), when the run carried an alert log. Compare
	// reports the signatures unique to each side so a regression that
	// changes which alerts fire is attributed alongside the timing
	// deltas. Kept as plain strings so diag stays below the tsdb layer.
	Alerts []string
}

// key returns the alignment key for a job on this side.
func (s RunSide) key(jobID int) string {
	if id, ok := s.QueryByJob[jobID]; ok && id != "" {
		return id
	}
	return fmt.Sprintf("job-%d", jobID)
}

// ComponentDelta is one breakdown category's A/B values and their
// difference (B − A: positive means B spent longer).
type ComponentDelta struct {
	Name   string  `json:"name"`
	AS     float64 `json:"a_s"`
	BS     float64 `json:"b_s"`
	DeltaS float64 `json:"delta_s"`
}

// DecisionPoint summarises one provider decision for divergence
// reporting.
type DecisionPoint struct {
	// Index is the decision's position in the job's per-side sequence.
	Index   int     `json:"index"`
	TimeS   float64 `json:"time_s"`
	Policy  string  `json:"policy"`
	Verdict string  `json:"verdict"`
	Added   int     `json:"added"`
	// GrabLimit is the policy's partition cap at this step.
	GrabLimit int `json:"grab_limit"`
}

// Divergence is the first point where two jobs' provider decision
// sequences stop being twins. Sequences are compared position by
// position on (verdict, added, grab limit) — timestamps are reported
// but do not define divergence, so clock-shifted twins still align.
type Divergence struct {
	// Index is the first differing position.
	Index int `json:"index"`
	// A / B are the decisions at that position; nil when that side's
	// sequence ended first.
	A *DecisionPoint `json:"a,omitempty"`
	B *DecisionPoint `json:"b,omitempty"`
	// Reason is "verdict", "added", "grab-limit", "a-ended" or
	// "b-ended".
	Reason string `json:"reason"`
}

// PathDiff summarises how two critical paths differ structurally.
type PathDiff struct {
	ANodes int `json:"a_nodes"`
	BNodes int `json:"b_nodes"`
	// FirstKindDifference is the first path position whose node kind
	// differs (comparing the kind sequences only; durations are covered
	// by the breakdown deltas), or -1 when the sequences are identical.
	// When one path is a strict prefix of the other it is the shorter
	// length.
	FirstKindDifference int `json:"first_kind_difference"`
}

// JobDelta is the comparison of one aligned job pair.
type JobDelta struct {
	// Key is the alignment key (query ID or "job-N").
	Key  string `json:"key"`
	AJob int    `json:"a_job"`
	BJob int    `json:"b_job"`

	AMakespanS float64 `json:"a_makespan_s"`
	BMakespanS float64 `json:"b_makespan_s"`
	// MakespanDeltaS is B − A; it equals the sum of the component
	// deltas by construction (each side's breakdown sums to its
	// makespan), re-checked by Compare.
	MakespanDeltaS float64 `json:"makespan_delta_s"`
	// Components lists all nine breakdown categories in canonical
	// order, including zero-delta ones, so the sum property is visible
	// in the output.
	Components []ComponentDelta `json:"components"`

	// FirstDivergence is nil when the provider decision sequences are
	// twins.
	FirstDivergence *Divergence `json:"first_divergence,omitempty"`
	Path            PathDiff    `json:"path"`

	// AnomaliesOnlyA / AnomaliesOnlyB are anomaly signatures present on
	// one side only (sorted).
	AnomaliesOnlyA []string `json:"anomalies_only_a,omitempty"`
	AnomaliesOnlyB []string `json:"anomalies_only_b,omitempty"`

	// A and B carry the full per-side diagnoses for rendering (paired
	// breakdown stacks, aligned Gantts).
	A *JobDiagnosis `json:"a"`
	B *JobDiagnosis `json:"b"`
}

// CounterDelta is one trace counter's A/B values (only counters whose
// values differ are reported).
type CounterDelta struct {
	Name  string `json:"name"`
	A     int64  `json:"a"`
	B     int64  `json:"b"`
	Delta int64  `json:"delta"`
}

// DiffReport is the full cross-run comparison (schema
// DiffSchemaVersion).
type DiffReport struct {
	Schema string `json:"schema"`
	ALabel string `json:"a_label"`
	BLabel string `json:"b_label"`
	// Jobs holds the aligned pairs in A-side job order.
	Jobs []JobDelta `json:"jobs"`
	// OnlyA / OnlyB list alignment keys present on one side only.
	OnlyA []string `json:"only_a,omitempty"`
	OnlyB []string `json:"only_b,omitempty"`
	// TotalMakespanDeltaS sums the aligned jobs' makespan deltas.
	TotalMakespanDeltaS float64 `json:"total_makespan_delta_s"`
	// CounterDeltas lists trace counters whose values differ, sorted by
	// name.
	CounterDeltas []CounterDelta `json:"counter_deltas,omitempty"`
	// AlertsOnlyA / AlertsOnlyB are alert-event signatures ("rule(state)")
	// present on one side only (multiset difference, sorted).
	AlertsOnlyA []string `json:"alerts_only_a,omitempty"`
	AlertsOnlyB []string `json:"alerts_only_b,omitempty"`
}

// Compare diffs run B against run A: jobs are aligned by query ID when
// both sides carry one (falling back to job ID), each aligned pair's
// nine-component breakdown is differenced (the deltas sum to the
// makespan delta by construction — both sides' single-run invariants
// are re-verified, and the sum property itself is checked), the first
// divergent provider decision is located, and critical-path and
// anomaly differences are summarised.
func Compare(a, b RunSide) (*DiffReport, error) {
	if a.Report == nil || b.Report == nil {
		return nil, fmt.Errorf("diag: Compare needs a diagnosis report on both sides")
	}
	if err := a.Report.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("diag: side A (%s): %w", a.Label, err)
	}
	if err := b.Report.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("diag: side B (%s): %w", b.Label, err)
	}
	rep := &DiffReport{Schema: DiffSchemaVersion, ALabel: a.Label, BLabel: b.Label}

	bByKey := make(map[string]*JobDiagnosis, len(b.Report.Jobs))
	for i := range b.Report.Jobs {
		j := &b.Report.Jobs[i]
		k := b.key(j.JobID)
		if _, dup := bByKey[k]; dup {
			return nil, fmt.Errorf("diag: side B (%s): duplicate alignment key %q", b.Label, k)
		}
		bByKey[k] = j
	}
	matchedB := make(map[string]bool, len(bByKey))
	for i := range a.Report.Jobs {
		aj := &a.Report.Jobs[i]
		k := a.key(aj.JobID)
		bj, ok := bByKey[k]
		if !ok {
			rep.OnlyA = append(rep.OnlyA, k)
			continue
		}
		if matchedB[k] {
			return nil, fmt.Errorf("diag: side A (%s): duplicate alignment key %q", a.Label, k)
		}
		matchedB[k] = true
		jd, err := compareJob(k, aj, bj, a, b)
		if err != nil {
			return nil, err
		}
		rep.Jobs = append(rep.Jobs, jd)
		rep.TotalMakespanDeltaS += jd.MakespanDeltaS
	}
	for i := range b.Report.Jobs {
		k := b.key(b.Report.Jobs[i].JobID)
		if !matchedB[k] {
			rep.OnlyB = append(rep.OnlyB, k)
		}
	}
	sort.Strings(rep.OnlyA)
	sort.Strings(rep.OnlyB)
	rep.CounterDeltas = counterDeltas(a.Report.Counters, b.Report.Counters)
	rep.AlertsOnlyA, rep.AlertsOnlyB = stringMultisetDiff(a.Alerts, b.Alerts)
	return rep, nil
}

// stringMultisetDiff returns the signatures unique to each side
// (multiset semantics, mirroring anomalyDiff).
func stringMultisetDiff(sa, sb []string) (onlyA, onlyB []string) {
	ca := make(map[string]int)
	cb := make(map[string]int)
	for _, s := range sa {
		ca[s]++
	}
	for _, s := range sb {
		cb[s]++
	}
	for s, n := range ca {
		for i := cb[s]; i < n; i++ {
			onlyA = append(onlyA, s)
		}
	}
	for s, n := range cb {
		for i := ca[s]; i < n; i++ {
			onlyB = append(onlyB, s)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

// compareJob builds the delta record for one aligned pair and verifies
// the delta-sum invariant.
func compareJob(key string, aj, bj *JobDiagnosis, a, b RunSide) (JobDelta, error) {
	jd := JobDelta{
		Key: key, AJob: aj.JobID, BJob: bj.JobID,
		AMakespanS: aj.MakespanS, BMakespanS: bj.MakespanS,
		MakespanDeltaS: bj.MakespanS - aj.MakespanS,
		A:              aj, B: bj,
	}
	ac, bc := aj.Breakdown.Components(), bj.Breakdown.Components()
	sum := 0.0
	for i := range ac {
		d := ComponentDelta{Name: ac[i].Name, AS: ac[i].Seconds, BS: bc[i].Seconds,
			DeltaS: bc[i].Seconds - ac[i].Seconds}
		sum += d.DeltaS
		jd.Components = append(jd.Components, d)
	}
	// Both sides pass CheckInvariants, so this can only fire on a
	// future breakdown/Components drift — it is the diff-layer
	// restatement of the single-run sum invariant.
	tol := 1e-6 * math.Max(1, math.Max(aj.MakespanS, bj.MakespanS))
	if math.Abs(sum-jd.MakespanDeltaS) > tol {
		return jd, fmt.Errorf("diag: job %q: component deltas sum to %g, makespan delta is %g",
			key, sum, jd.MakespanDeltaS)
	}
	jd.FirstDivergence = firstDivergence(
		jobDecisions(a.Decisions, aj.JobID), jobDecisions(b.Decisions, bj.JobID))
	jd.Path = pathDiff(aj.CriticalPath, bj.CriticalPath)
	jd.AnomaliesOnlyA, jd.AnomaliesOnlyB = anomalyDiff(aj.Anomalies, bj.Anomalies)
	return jd, nil
}

// jobDecisions filters the audit log to one job, preserving order.
func jobDecisions(all []trace.PolicyDecision, jobID int) []trace.PolicyDecision {
	var out []trace.PolicyDecision
	for _, d := range all {
		if d.JobID == jobID {
			out = append(out, d)
		}
	}
	return out
}

func decisionPoint(i int, d trace.PolicyDecision) *DecisionPoint {
	return &DecisionPoint{Index: i, TimeS: d.Time, Policy: d.Policy,
		Verdict: d.Verdict, Added: d.Added, GrabLimit: d.GrabLimit}
}

// firstDivergence locates the first position where the two decision
// sequences differ on (verdict, added, grab limit); nil when they are
// twins.
func firstDivergence(da, db []trace.PolicyDecision) *Divergence {
	n := len(da)
	if len(db) < n {
		n = len(db)
	}
	for i := 0; i < n; i++ {
		switch {
		case da[i].Verdict != db[i].Verdict:
			return &Divergence{Index: i, A: decisionPoint(i, da[i]), B: decisionPoint(i, db[i]), Reason: "verdict"}
		case da[i].Added != db[i].Added:
			return &Divergence{Index: i, A: decisionPoint(i, da[i]), B: decisionPoint(i, db[i]), Reason: "added"}
		case da[i].GrabLimit != db[i].GrabLimit:
			return &Divergence{Index: i, A: decisionPoint(i, da[i]), B: decisionPoint(i, db[i]), Reason: "grab-limit"}
		}
	}
	switch {
	case len(da) > n:
		return &Divergence{Index: n, A: decisionPoint(n, da[n]), Reason: "b-ended"}
	case len(db) > n:
		return &Divergence{Index: n, B: decisionPoint(n, db[n]), Reason: "a-ended"}
	}
	return nil
}

// pathDiff compares critical-path kind sequences.
func pathDiff(pa, pb []PathNode) PathDiff {
	d := PathDiff{ANodes: len(pa), BNodes: len(pb), FirstKindDifference: -1}
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	for i := 0; i < n; i++ {
		if pa[i].Kind != pb[i].Kind {
			d.FirstKindDifference = i
			return d
		}
	}
	if len(pa) != len(pb) {
		d.FirstKindDifference = n
	}
	return d
}

// anomalySig is the identity used for anomaly set comparison: the kind
// plus the task it hit (cluster/job-scoped anomalies carry task -1).
func anomalySig(a Anomaly) string {
	if a.Task >= 0 {
		return fmt.Sprintf("%s(task %d)", a.Kind, a.Task)
	}
	return a.Kind
}

// anomalyDiff returns the anomaly signatures unique to each side.
func anomalyDiff(aa, ab []Anomaly) (onlyA, onlyB []string) {
	ca := make(map[string]int)
	cb := make(map[string]int)
	for _, x := range aa {
		ca[anomalySig(x)]++
	}
	for _, x := range ab {
		cb[anomalySig(x)]++
	}
	for sig, n := range ca {
		for i := cb[sig]; i < n; i++ {
			onlyA = append(onlyA, sig)
		}
	}
	for sig, n := range cb {
		for i := ca[sig]; i < n; i++ {
			onlyB = append(onlyB, sig)
		}
	}
	sort.Strings(onlyA)
	sort.Strings(onlyB)
	return onlyA, onlyB
}

// counterDeltas lists the counters whose values differ, sorted.
func counterDeltas(ca, cb map[string]int64) []CounterDelta {
	names := make(map[string]bool, len(ca)+len(cb))
	for k := range ca {
		names[k] = true
	}
	for k := range cb {
		names[k] = true
	}
	var out []CounterDelta
	for k := range names {
		if ca[k] == cb[k] {
			continue
		}
		out = append(out, CounterDelta{Name: k, A: ca[k], B: cb[k], Delta: cb[k] - ca[k]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CheckInvariants verifies the diff-level sum property for every
// aligned pair: the component deltas sum to the makespan delta. dynmr
// diff re-runs it before rendering so a violated invariant is a
// non-zero exit, not a silently wrong table.
func (r *DiffReport) CheckInvariants() error {
	for _, j := range r.Jobs {
		sum := 0.0
		for _, c := range j.Components {
			sum += c.DeltaS
		}
		tol := 1e-6 * math.Max(1, math.Max(j.AMakespanS, j.BMakespanS))
		if math.Abs(sum-j.MakespanDeltaS) > tol {
			return fmt.Errorf("job %q: component deltas sum to %g, makespan delta is %g",
				j.Key, sum, j.MakespanDeltaS)
		}
	}
	return nil
}
