// Package diag is the post-run job diagnosis engine: it consumes the
// trace span stream and the policy decision audit log and produces,
// per job, a critical path (the chain of attempts and waits whose
// durations sum to the makespan), a time breakdown partitioning that
// makespan into wait/read/compute/shuffle/reduce categories, and a
// set of detected anomalies (stragglers, speculative-kill waste,
// scan-stall spikes). It depends only on internal/trace, so every
// layer above (obs reports, the facade, both CLIs, experiments) can
// use it without import cycles.
package diag

import (
	"fmt"
	"math"
	"sort"

	"dynamicmr/internal/trace"
)

// Critical-path node kinds. The schema is part of the external
// contract (dynmr explain -json, per-cell CSVs); see DESIGN.md.
const (
	// KindSlotWait is time an enqueued task spent waiting for a free
	// slot (the queue-wait span) plus scheduling gaps between attempts
	// on the path (e.g. a reduce waiting for the next heartbeat after
	// the map phase finished).
	KindSlotWait = "slot-wait"
	// KindProviderWait is time the job had no runnable work because
	// the Input Provider had not granted splits yet: the gap ends at a
	// GROW/INIT decision, or WAIT/SKIP verdicts fall inside it.
	KindProviderWait = "provider-wait"
	// KindStartup is task JVM/process startup.
	KindStartup = "startup"
	// KindDiskReadLocal / KindDiskReadRemote split the disk-read phase
	// by whether the attempt read its split from the local node (no
	// net-read phase) or from a remote replica.
	KindDiskReadLocal  = "disk-read-local"
	KindDiskReadRemote = "disk-read-remote"
	// KindNetRead is the network transfer of a non-local split.
	KindNetRead = "net-read"
	// KindMapCPU is map-side predicate evaluation / record processing.
	KindMapCPU = "map-cpu"
	// KindShuffle is the reduce-side fetch of map output.
	KindShuffle = "shuffle"
	// KindSort is the reduce-side merge sort.
	KindSort = "sort"
	// KindReduceCPU is the reduce function proper.
	KindReduceCPU = "reduce-cpu"
	// KindOutputWrite is the reduce output write.
	KindOutputWrite = "output-write"
	// KindUntraced covers holes the extractor could not attribute
	// (e.g. phase spans evicted from a saturated trace ring).
	KindUntraced = "untraced"
)

// Anomaly kinds.
const (
	AnomalyStraggler        = "straggler"
	AnomalySpeculativeWaste = "speculative-waste"
	AnomalyScanStalls       = "scan-stalls"
)

// PathNode is one interval on a job's critical path. Nodes tile
// [submit, finish] exactly: node i's End equals node i+1's Start, the
// first Start is the submit time and the last End the finish time.
type PathNode struct {
	Kind  string  `json:"kind"`
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s"`
	// Task/Attempt/Node identify the attempt a phase node belongs to;
	// wait/gap nodes carry the *downstream* attempt (the one the wait
	// delayed) where known, else -1/0/-1.
	Task    int    `json:"task"`
	Attempt int    `json:"attempt"`
	Node    int    `json:"node"`
	Detail  string `json:"detail,omitempty"`
}

// Duration returns the node length in virtual seconds.
func (n PathNode) Duration() float64 { return n.End - n.Start }

// Breakdown partitions a job's makespan. Fields are virtual seconds;
// Total() always equals the makespan (pinned by CheckInvariants and
// by tests), because the breakdown is integrated directly over the
// critical path.
type Breakdown struct {
	SlotWaitS       float64 `json:"slot_wait_s"`
	ProviderWaitS   float64 `json:"provider_wait_s"`
	StartupS        float64 `json:"startup_s"`
	DataReadLocalS  float64 `json:"data_read_local_s"`
	DataReadRemoteS float64 `json:"data_read_remote_s"`
	MapComputeS     float64 `json:"map_compute_s"`
	ShuffleS        float64 `json:"shuffle_s"`
	ReduceS         float64 `json:"reduce_s"`
	UntracedS       float64 `json:"untraced_s"`
}

// Total sums the components.
func (b Breakdown) Total() float64 {
	return b.SlotWaitS + b.ProviderWaitS + b.StartupS + b.DataReadLocalS +
		b.DataReadRemoteS + b.MapComputeS + b.ShuffleS + b.ReduceS + b.UntracedS
}

// add accumulates a path node into the matching category.
func (b *Breakdown) add(n PathNode) {
	d := n.Duration()
	switch n.Kind {
	case KindSlotWait:
		b.SlotWaitS += d
	case KindProviderWait:
		b.ProviderWaitS += d
	case KindStartup:
		b.StartupS += d
	case KindDiskReadLocal:
		b.DataReadLocalS += d
	case KindDiskReadRemote, KindNetRead:
		b.DataReadRemoteS += d
	case KindMapCPU:
		b.MapComputeS += d
	case KindShuffle:
		b.ShuffleS += d
	case KindSort, KindReduceCPU, KindOutputWrite:
		b.ReduceS += d
	default:
		b.UntracedS += d
	}
}

// Anomaly is one detected irregularity, either job-scoped (straggler,
// speculative waste) or cluster-scoped (scan stalls; Job == -1).
type Anomaly struct {
	Kind string `json:"kind"`
	Job  int    `json:"job"`
	// Task/Attempt/Node are set for straggler anomalies, else -1/0/-1.
	Task    int `json:"task"`
	Attempt int `json:"attempt"`
	Node    int `json:"node"`
	// Value is the measured quantity (seconds for stragglers and
	// speculative waste, stall ratio for scan stalls) and Threshold
	// the bound it exceeded.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Detail    string  `json:"detail"`
}

// JobDiagnosis is the full diagnosis of one job.
type JobDiagnosis struct {
	JobID   int     `json:"job"`
	Outcome string  `json:"outcome"` // "ok" or "failed"
	SubmitS float64 `json:"submit_s"`
	FinishS float64 `json:"finish_s"`
	// MakespanS is FinishS - SubmitS (the job span's extent).
	MakespanS    float64    `json:"makespan_s"`
	CriticalPath []PathNode `json:"critical_path"`
	Breakdown    Breakdown  `json:"breakdown"`
	Anomalies    []Anomaly  `json:"anomalies"`
}

// SchemaVersion identifies the JSON layout emitted by WriteJSON;
// consumers (CI validation, downstream tooling) key on it.
const SchemaVersion = "dynamicmr.diag/1"

// Report is the diagnosis of every finished job visible in the trace,
// plus cluster-level context.
type Report struct {
	Schema string         `json:"schema"`
	Jobs   []JobDiagnosis `json:"jobs"`
	// ClusterAnomalies holds anomalies not tied to one job.
	ClusterAnomalies []Anomaly `json:"cluster_anomalies"`
	// Counters snapshots the trace counter registry.
	Counters map[string]int64 `json:"counters,omitempty"`
	// DroppedSpans is the trace ring's eviction count; when non-zero,
	// paths may contain untraced filler.
	DroppedSpans int64 `json:"dropped_spans"`
}

// Config tunes the analyzers. The zero value selects defaults.
type Config struct {
	// StragglerSigma is k in the "duration > mean + k*sigma" straggler
	// rule. Default 3.
	StragglerSigma float64
	// StragglerMinAttempts is the minimum number of completed map
	// attempts in a job before the straggler rule applies. Default 4.
	StragglerMinAttempts int
	// ScanStallRatio is the map.scan_stalls / map.scan_async fraction
	// above which a cluster scan-stall anomaly is reported. Default
	// 0.5.
	ScanStallRatio float64
}

func (c Config) withDefaults() Config {
	if c.StragglerSigma <= 0 {
		c.StragglerSigma = 3
	}
	if c.StragglerMinAttempts <= 0 {
		c.StragglerMinAttempts = 4
	}
	if c.ScanStallRatio <= 0 {
		c.ScanStallRatio = 0.5
	}
	return c
}

// FromTracer diagnoses every job recorded by tr using the default
// Config. It returns nil when tracing is disabled (nil tracer).
func FromTracer(tr *trace.Tracer) *Report {
	if !tr.Enabled() {
		return nil
	}
	return Analyze(tr.Spans(), tr.PolicyDecisions(), tr.Counters(), tr.Dropped(), Config{})
}

// Analyze builds a Report from raw trace data. spans must be in
// recording order (Tracer.Spans() order); decisions likewise.
func Analyze(spans []trace.Span, decisions []trace.PolicyDecision,
	counters map[string]int64, dropped int64, cfg Config) *Report {
	cfg = cfg.withDefaults()
	jobs := collectJobs(spans, decisions)
	rep := &Report{Schema: SchemaVersion, Counters: counters, DroppedSpans: dropped}
	for _, j := range jobs {
		d := diagnoseJob(j, cfg)
		rep.Jobs = append(rep.Jobs, d)
	}
	sort.Slice(rep.Jobs, func(a, b int) bool { return rep.Jobs[a].JobID < rep.Jobs[b].JobID })
	rep.ClusterAnomalies = clusterAnomalies(counters, cfg)
	return rep
}

// attempt pairs an enclosing attempt span with its phase chain.
type attempt struct {
	span      trace.Span
	kind      string // trace.CatMap or trace.CatReduce
	phases    []trace.Span
	queueWait *trace.Span
}

// jobData is everything collectJobs gathered for one job.
type jobData struct {
	id       int
	span     trace.Span // the enclosing SpanJob span
	attempts []attempt  // ok + failed attempts, both kinds
	killed   []trace.Span
	// okMapDurations feeds the straggler detector.
	okMaps []trace.Span
	// growTimes / waitTimes are decision timestamps for gap
	// classification, sorted ascending.
	growTimes []float64
	waitTimes []float64
}

type attemptKey struct {
	task, att int
	cat       string
}

func collectJobs(spans []trace.Span, decisions []trace.PolicyDecision) []*jobData {
	byID := make(map[int]*jobData)
	get := func(id int) *jobData {
		j := byID[id]
		if j == nil {
			j = &jobData{id: id, span: trace.Span{Job: id, Start: math.NaN()}}
			byID[id] = j
		}
		return j
	}
	phases := make(map[int]map[attemptKey][]trace.Span)
	queueWaits := make(map[int]map[attemptKey]trace.Span)
	isPhase := func(name string) bool {
		switch name {
		case trace.SpanStartup, trace.SpanDiskRead, trace.SpanNetRead, trace.SpanMapCPU,
			trace.SpanShuffle, trace.SpanSort, trace.SpanReduceCPU, trace.SpanOutputWrite:
			return true
		}
		return false
	}
	for _, s := range spans {
		if s.Job < 0 {
			continue
		}
		switch {
		case s.Name == trace.SpanJob:
			j := get(s.Job)
			j.span = s
		case s.Name == trace.SpanMapAttempt || s.Name == trace.SpanReduceAttempt:
			j := get(s.Job)
			switch s.Outcome {
			case trace.OutcomeOK, trace.OutcomeFailed:
				j.attempts = append(j.attempts, attempt{span: s, kind: s.Cat})
				if s.Name == trace.SpanMapAttempt && s.Outcome == trace.OutcomeOK {
					j.okMaps = append(j.okMaps, s)
				}
			case trace.OutcomeKilled:
				j.killed = append(j.killed, s)
			}
		case s.Name == trace.SpanQueueWait:
			m := queueWaits[s.Job]
			if m == nil {
				m = make(map[attemptKey]trace.Span)
				queueWaits[s.Job] = m
			}
			m[attemptKey{s.Task, s.Attempt, s.Cat}] = s
		case isPhase(s.Name) && (s.Cat == trace.CatMap || s.Cat == trace.CatReduce):
			m := phases[s.Job]
			if m == nil {
				m = make(map[attemptKey][]trace.Span)
				phases[s.Job] = m
			}
			k := attemptKey{s.Task, s.Attempt, s.Cat}
			m[k] = append(m[k], s)
		}
	}
	for _, d := range decisions {
		j := get(d.JobID)
		switch d.Verdict {
		case trace.VerdictGrow, trace.VerdictInit:
			j.growTimes = append(j.growTimes, d.Time)
		case trace.VerdictWait, trace.VerdictSkip:
			j.waitTimes = append(j.waitTimes, d.Time)
		}
	}
	var out []*jobData
	for _, j := range byID {
		// Jobs without an enclosing job span (still running, or the
		// span was evicted) cannot be diagnosed; skip them.
		if math.IsNaN(j.span.Start) {
			continue
		}
		for i := range j.attempts {
			a := &j.attempts[i]
			k := attemptKey{a.span.Task, a.span.Attempt, a.span.Cat}
			ph := phases[j.id][k]
			sort.Slice(ph, func(x, y int) bool { return ph[x].Start < ph[y].Start })
			a.phases = ph
			if qw, ok := queueWaits[j.id][k]; ok {
				q := qw
				a.queueWait = &q
			}
		}
		sort.Float64s(j.growTimes)
		sort.Float64s(j.waitTimes)
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].id < out[b].id })
	return out
}

func diagnoseJob(j *jobData, cfg Config) JobDiagnosis {
	d := JobDiagnosis{
		JobID:     j.id,
		Outcome:   j.span.Outcome,
		SubmitS:   j.span.Start,
		FinishS:   j.span.End,
		MakespanS: j.span.End - j.span.Start,
	}
	if d.Outcome == "" {
		d.Outcome = trace.OutcomeOK
	}
	d.CriticalPath = criticalPath(j)
	for _, n := range d.CriticalPath {
		d.Breakdown.add(n)
	}
	d.Anomalies = jobAnomalies(j, cfg)
	return d
}

// AnalyzeJob diagnoses a single job from a pre-filtered trace slice:
// the spans and decisions belonging to (or at least containing) the
// job. It is the incremental entry point the qstats registry calls as
// each query finishes, so a serve loop streams breakdowns out live
// instead of re-analyzing the whole ring post-run. The returned
// diagnosis has already passed CheckInvariants.
func AnalyzeJob(jobID int, spans []trace.Span, decisions []trace.PolicyDecision, cfg Config) (*JobDiagnosis, error) {
	rep := Analyze(spans, decisions, nil, 0, cfg)
	for i := range rep.Jobs {
		if rep.Jobs[i].JobID != jobID {
			continue
		}
		d := rep.Jobs[i]
		if err := d.CheckInvariants(); err != nil {
			return nil, fmt.Errorf("job %d: %w", jobID, err)
		}
		return &d, nil
	}
	return nil, fmt.Errorf("diag: no finished job %d in trace slice (%d spans)", jobID, len(spans))
}

// CheckInvariants verifies the pinned diagnosis contract for every
// job: the critical path tiles [submit, finish] contiguously and the
// breakdown components sum to the makespan.
func (r *Report) CheckInvariants() error {
	for _, j := range r.Jobs {
		if err := j.CheckInvariants(); err != nil {
			return fmt.Errorf("job %d: %w", j.JobID, err)
		}
	}
	return nil
}

// CheckInvariants verifies the contract for one job diagnosis; see
// Report.CheckInvariants. Exported so per-query consumers (the qstats
// registry) can re-assert the invariant on incrementally produced
// diagnoses.
func (j JobDiagnosis) CheckInvariants() error {
	tol := 1e-6 * math.Max(1, j.MakespanS)
	if j.MakespanS < 0 {
		return fmt.Errorf("negative makespan %g", j.MakespanS)
	}
	if j.MakespanS > tol && len(j.CriticalPath) == 0 {
		return fmt.Errorf("empty critical path for makespan %g", j.MakespanS)
	}
	if n := len(j.CriticalPath); n > 0 {
		if math.Abs(j.CriticalPath[0].Start-j.SubmitS) > tol {
			return fmt.Errorf("path starts at %g, submit is %g", j.CriticalPath[0].Start, j.SubmitS)
		}
		if math.Abs(j.CriticalPath[n-1].End-j.FinishS) > tol {
			return fmt.Errorf("path ends at %g, finish is %g", j.CriticalPath[n-1].End, j.FinishS)
		}
		for i := 0; i+1 < n; i++ {
			if math.Abs(j.CriticalPath[i].End-j.CriticalPath[i+1].Start) > tol {
				return fmt.Errorf("path gap between node %d (end %g) and node %d (start %g)",
					i, j.CriticalPath[i].End, i+1, j.CriticalPath[i+1].Start)
			}
		}
		for i, nd := range j.CriticalPath {
			if nd.End < nd.Start-tol {
				return fmt.Errorf("node %d has negative duration [%g, %g]", i, nd.Start, nd.End)
			}
		}
	}
	if diff := math.Abs(j.Breakdown.Total() - j.MakespanS); diff > tol {
		return fmt.Errorf("breakdown total %g != makespan %g (diff %g)",
			j.Breakdown.Total(), j.MakespanS, diff)
	}
	return nil
}
