package diag

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dynamicmr/internal/trace"
)

// variantTrace shifts the golden trace's GROW from t=30 to t=40 (one
// extra WAIT round), sliding wave two and the reduce 10 s later: the
// makespan grows 100 -> 110 and the entire +10 s lands in
// provider-wait, every other component unchanged.
func variantTrace() ([]trace.Span, []trace.PolicyDecision) {
	spans := []trace.Span{
		span(trace.SpanJob, trace.CatJob, 0, 110, 0, -1, 0, -1, trace.OutcomeOK),
		// Wave one is identical to the golden trace.
		span(trace.SpanQueueWait, trace.CatMap, 0, 2, 0, 0, 1, 2, ""),
		span(trace.SpanMapAttempt, trace.CatMap, 2, 20, 0, 0, 1, 2, trace.OutcomeOK),
		span(trace.SpanStartup, trace.CatMap, 2, 3, 0, 0, 1, 2, ""),
		span(trace.SpanDiskRead, trace.CatMap, 3, 10, 0, 0, 1, 2, ""),
		span(trace.SpanMapCPU, trace.CatMap, 10, 20, 0, 0, 1, 2, ""),
		// Wave two starts at the delayed GROW (t=40 instead of 30).
		span(trace.SpanQueueWait, trace.CatMap, 40, 42, 0, 1, 1, 5, ""),
		span(trace.SpanMapAttempt, trace.CatMap, 42, 60, 0, 1, 1, 5, trace.OutcomeOK),
		span(trace.SpanStartup, trace.CatMap, 42, 43, 0, 1, 1, 5, ""),
		span(trace.SpanDiskRead, trace.CatMap, 43, 50, 0, 1, 1, 5, ""),
		span(trace.SpanNetRead, trace.CatMap, 50, 54, 0, 1, 1, 5, ""),
		span(trace.SpanMapCPU, trace.CatMap, 54, 60, 0, 1, 1, 5, ""),
		// Reduce slides with it.
		span(trace.SpanReduceAttempt, trace.CatReduce, 65, 110, 0, 0, 1, 7, trace.OutcomeOK),
		span(trace.SpanStartup, trace.CatReduce, 65, 66, 0, 0, 1, 7, ""),
		span(trace.SpanShuffle, trace.CatReduce, 66, 80, 0, 0, 1, 7, ""),
		span(trace.SpanSort, trace.CatReduce, 80, 90, 0, 0, 1, 7, ""),
		span(trace.SpanReduceCPU, trace.CatReduce, 90, 105, 0, 0, 1, 7, ""),
		span(trace.SpanOutputWrite, trace.CatReduce, 105, 110, 0, 0, 1, 7, ""),
	}
	decisions := []trace.PolicyDecision{
		{Time: 0, JobID: 0, Policy: "LA", Verdict: trace.VerdictInit, Added: 1},
		{Time: 25, JobID: 0, Policy: "LA", Verdict: trace.VerdictWait},
		{Time: 32, JobID: 0, Policy: "LA", Verdict: trace.VerdictWait},
		{Time: 40, JobID: 0, Policy: "LA", Verdict: trace.VerdictGrow, Added: 1},
		{Time: 60, JobID: 0, Policy: "LA", Verdict: trace.VerdictEOI},
	}
	return spans, decisions
}

// side builds a RunSide from a canned trace, aligning job 0 to a query
// ID so the test also covers query-keyed alignment.
func side(t *testing.T, label string, spans []trace.Span, decisions []trace.PolicyDecision) RunSide {
	t.Helper()
	rep := Analyze(spans, decisions, nil, 0, Config{})
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("%s invariants: %v", label, err)
	}
	return RunSide{Label: label, Report: rep, Decisions: decisions,
		QueryByJob: map[int]string{0: "q-000001"}}
}

// TestGoldenCompare pins the full cross-run diff of the canned pair:
// exact per-component deltas, the delta-sum invariant, and the first
// divergent decision's index and reason.
func TestGoldenCompare(t *testing.T) {
	aSpans, aDecisions := goldenTrace()
	bSpans, bDecisions := variantTrace()
	a := side(t, "baseline", aSpans, aDecisions)
	b := side(t, "delayed-grow", bSpans, bDecisions)

	rep, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("diff invariants: %v", err)
	}
	if rep.Schema != DiffSchemaVersion || rep.ALabel != "baseline" || rep.BLabel != "delayed-grow" {
		t.Fatalf("header wrong: %+v", rep)
	}
	if len(rep.Jobs) != 1 || len(rep.OnlyA) != 0 || len(rep.OnlyB) != 0 {
		t.Fatalf("want 1 aligned job, got %d (+%d/-%d unmatched)", len(rep.Jobs), len(rep.OnlyA), len(rep.OnlyB))
	}
	j := rep.Jobs[0]
	if j.Key != "q-000001" {
		t.Errorf("alignment key = %q, want query ID", j.Key)
	}
	if j.AMakespanS != 100 || j.BMakespanS != 110 || j.MakespanDeltaS != 10 {
		t.Fatalf("makespans wrong: %+v", j)
	}

	wantDelta := map[string]float64{
		"slot-wait": 0, "provider-wait": 10, "startup": 0,
		"data-read-local": 0, "data-read-remote": 0, "map-compute": 0,
		"shuffle": 0, "reduce": 0, "untraced": 0,
	}
	if len(j.Components) != len(wantDelta) {
		t.Fatalf("want %d components, got %d", len(wantDelta), len(j.Components))
	}
	sum := 0.0
	for _, c := range j.Components {
		want, ok := wantDelta[c.Name]
		if !ok {
			t.Errorf("unexpected component %q", c.Name)
			continue
		}
		if c.DeltaS != want {
			t.Errorf("component %s: delta %g, want %g", c.Name, c.DeltaS, want)
		}
		sum += c.DeltaS
	}
	if math.Abs(sum-j.MakespanDeltaS) > 1e-9 {
		t.Errorf("component deltas sum to %g, makespan delta %g", sum, j.MakespanDeltaS)
	}

	// One extra WAIT round: position 2 flips GROW -> WAIT.
	div := j.FirstDivergence
	if div == nil {
		t.Fatal("want a divergence, decisions are not twins")
	}
	if div.Index != 2 || div.Reason != "verdict" {
		t.Fatalf("divergence = %+v, want index 2 reason verdict", div)
	}
	if div.A.Verdict != trace.VerdictGrow || div.B.Verdict != trace.VerdictWait {
		t.Fatalf("divergence decisions wrong: A=%+v B=%+v", div.A, div.B)
	}

	// The delay stretches a gap but visits the same node kinds.
	if j.Path.ANodes != 16 || j.Path.BNodes != 16 || j.Path.FirstKindDifference != -1 {
		t.Fatalf("path diff wrong: %+v", j.Path)
	}
	if len(j.AnomaliesOnlyA) != 0 || len(j.AnomaliesOnlyB) != 0 {
		t.Fatalf("anomaly sets should match: %v / %v", j.AnomaliesOnlyA, j.AnomaliesOnlyB)
	}
	if rep.TotalMakespanDeltaS != 10 {
		t.Errorf("total makespan delta = %g, want 10", rep.TotalMakespanDeltaS)
	}
}

// TestCompareTwinRuns diffs the golden trace against itself: all
// deltas zero, no divergence, identical paths.
func TestCompareTwinRuns(t *testing.T) {
	aSpans, aDecisions := goldenTrace()
	bSpans, bDecisions := goldenTrace()
	rep, err := Compare(side(t, "a", aSpans, aDecisions), side(t, "b", bSpans, bDecisions))
	if err != nil {
		t.Fatal(err)
	}
	j := rep.Jobs[0]
	if j.MakespanDeltaS != 0 || j.FirstDivergence != nil || j.Path.FirstKindDifference != -1 {
		t.Fatalf("twin diff not clean: %+v", j)
	}
	for _, c := range j.Components {
		if c.DeltaS != 0 {
			t.Errorf("twin component %s delta %g", c.Name, c.DeltaS)
		}
	}
	if len(rep.CounterDeltas) != 0 {
		t.Errorf("twin counter deltas: %+v", rep.CounterDeltas)
	}
}

// TestCompareUnmatchedAndCounters covers one-sided jobs and counter
// attribution.
func TestCompareUnmatchedAndCounters(t *testing.T) {
	aSpans, aDecisions := goldenTrace()
	bSpans, bDecisions := goldenTrace()
	a := side(t, "a", aSpans, aDecisions)
	b := side(t, "b", bSpans, bDecisions)
	// Different query IDs -> nothing aligns.
	b.QueryByJob = map[int]string{0: "q-000002"}
	a.Report.Counters = map[string]int64{"map.attempts": 2, "heartbeats": 50}
	b.Report.Counters = map[string]int64{"map.attempts": 3, "heartbeats": 50}

	rep, err := Compare(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 0 {
		t.Fatalf("want no aligned jobs, got %d", len(rep.Jobs))
	}
	if len(rep.OnlyA) != 1 || rep.OnlyA[0] != "q-000001" ||
		len(rep.OnlyB) != 1 || rep.OnlyB[0] != "q-000002" {
		t.Fatalf("unmatched keys wrong: %v / %v", rep.OnlyA, rep.OnlyB)
	}
	if len(rep.CounterDeltas) != 1 || rep.CounterDeltas[0].Name != "map.attempts" ||
		rep.CounterDeltas[0].Delta != 1 {
		t.Fatalf("counter deltas wrong: %+v", rep.CounterDeltas)
	}
}

// TestDiffRenderers smoke-checks all three output formats over the
// golden pair.
func TestDiffRenderers(t *testing.T) {
	aSpans, aDecisions := goldenTrace()
	bSpans, bDecisions := variantTrace()
	rep, err := Compare(side(t, "baseline", aSpans, aDecisions), side(t, "delayed-grow", bSpans, bDecisions))
	if err != nil {
		t.Fatal(err)
	}

	var jsonBuf bytes.Buffer
	if err := rep.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded DiffReport
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("diff JSON does not round-trip: %v", err)
	}
	if decoded.Schema != DiffSchemaVersion || len(decoded.Jobs) != 1 {
		t.Fatalf("decoded diff wrong: %+v", decoded)
	}

	var textBuf bytes.Buffer
	if err := rep.WriteText(&textBuf); err != nil {
		t.Fatal(err)
	}
	text := textBuf.String()
	for _, want := range []string{"baseline", "delayed-grow", "provider-wait", "+10.000"} {
		if !strings.Contains(text, want) {
			t.Errorf("text output missing %q:\n%s", want, text)
		}
	}

	var htmlBuf bytes.Buffer
	if err := rep.WriteHTML(&htmlBuf); err != nil {
		t.Fatal(err)
	}
	html := htmlBuf.String()
	for _, want := range []string{"<!DOCTYPE html>", "provider-wait", "q-000001"} {
		if !strings.Contains(html, want) {
			t.Errorf("HTML output missing %q", want)
		}
	}
}
