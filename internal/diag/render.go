package diag

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteJSON emits the report as indented JSON (schema SchemaVersion).
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// maxTextPathNodes caps the per-job critical-path listing in the text
// renderer; elided nodes are summarised.
const maxTextPathNodes = 64

// WriteText renders a human-readable diagnosis.
func (r *Report) WriteText(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("job diagnosis (%d job(s), %d dropped span(s))\n", len(r.Jobs), r.DroppedSpans)
	for _, j := range r.Jobs {
		bw.printf("\njob %d (%s): makespan %.3fs  [submit %.3fs → finish %.3fs]\n",
			j.JobID, j.Outcome, j.MakespanS, j.SubmitS, j.FinishS)
		bw.printf("  breakdown:\n")
		for _, c := range j.Breakdown.Components() {
			if c.Seconds == 0 {
				continue
			}
			pct := 0.0
			if j.MakespanS > 0 {
				pct = 100 * c.Seconds / j.MakespanS
			}
			bw.printf("    %-18s %10.3fs  %5.1f%%\n", c.Name, c.Seconds, pct)
		}
		bw.printf("  critical path (%d node(s)):\n", len(j.CriticalPath))
		shown := j.CriticalPath
		if len(shown) > maxTextPathNodes {
			shown = shown[:maxTextPathNodes]
		}
		for _, n := range shown {
			id := "-"
			if n.Task >= 0 {
				id = fmt.Sprintf("task %d att %d node %d", n.Task, n.Attempt, n.Node)
			}
			det := ""
			if n.Detail != "" {
				det = "  (" + n.Detail + ")"
			}
			bw.printf("    [%10.3f → %10.3f] %8.3fs  %-18s %s%s\n",
				n.Start, n.End, n.Duration(), n.Kind, id, det)
		}
		if extra := len(j.CriticalPath) - len(shown); extra > 0 {
			bw.printf("    … %d more node(s) elided (see -json)\n", extra)
		}
		for _, a := range j.Anomalies {
			bw.printf("  anomaly [%s]: %s\n", a.Kind, a.Detail)
		}
	}
	for _, a := range r.ClusterAnomalies {
		bw.printf("\ncluster anomaly [%s]: %s\n", a.Kind, a.Detail)
	}
	if len(r.Counters) > 0 {
		bw.printf("\ncounters:\n")
		names := make([]string, 0, len(r.Counters))
		for k := range r.Counters {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			bw.printf("  %-28s %d\n", k, r.Counters[k])
		}
	}
	return bw.err
}

// Component is one named breakdown category (stable rendering order).
type Component struct {
	Name    string
	Seconds float64
}

// Components returns the breakdown categories in canonical order.
func (b Breakdown) Components() []Component {
	return []Component{
		{"slot-wait", b.SlotWaitS},
		{"provider-wait", b.ProviderWaitS},
		{"startup", b.StartupS},
		{"data-read-local", b.DataReadLocalS},
		{"data-read-remote", b.DataReadRemoteS},
		{"map-compute", b.MapComputeS},
		{"shuffle", b.ShuffleS},
		{"reduce", b.ReduceS},
		{"untraced", b.UntracedS},
	}
}

// csvHeader is the per-job diagnosis CSV schema used by
// cmd/experiments -diag-out.
var csvHeader = []string{
	"job", "outcome", "submit_s", "finish_s", "makespan_s",
	"slot_wait_s", "provider_wait_s", "startup_s",
	"data_read_local_s", "data_read_remote_s",
	"map_compute_s", "shuffle_s", "reduce_s", "untraced_s",
	"path_nodes", "stragglers", "speculative_waste_s",
}

// WriteJobsCSV emits one row per diagnosed job.
func (r *Report) WriteJobsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for _, j := range r.Jobs {
		stragglers := 0
		waste := 0.0
		for _, a := range j.Anomalies {
			switch a.Kind {
			case AnomalyStraggler:
				stragglers++
			case AnomalySpeculativeWaste:
				waste += a.Value
			}
		}
		b := j.Breakdown
		row := []string{
			strconv.Itoa(j.JobID), j.Outcome,
			f(j.SubmitS), f(j.FinishS), f(j.MakespanS),
			f(b.SlotWaitS), f(b.ProviderWaitS), f(b.StartupS),
			f(b.DataReadLocalS), f(b.DataReadRemoteS),
			f(b.MapComputeS), f(b.ShuffleS), f(b.ReduceS), f(b.UntracedS),
			strconv.Itoa(len(j.CriticalPath)), strconv.Itoa(stragglers), f(waste),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
