package diag

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"dynamicmr/internal/trace"
)

// span is a test shorthand for a trace.Span.
func span(name, cat string, start, end float64, job, task, att, node int, outcome string) trace.Span {
	return trace.Span{
		Name: name, Cat: cat, Start: start, End: end,
		Job: job, Task: task, Attempt: att, Node: node, Outcome: outcome,
	}
}

// goldenTrace builds a canned two-wave map job with a reduce: map task
// 0 runs in wave one, the GROW at t=30 admits map task 1 (wave two),
// and the reduce finishes the job at t=100. Every phase boundary is
// hand-placed so the expected critical path is known exactly.
func goldenTrace() ([]trace.Span, []trace.PolicyDecision) {
	spans := []trace.Span{
		span(trace.SpanJob, trace.CatJob, 0, 100, 0, -1, 0, -1, trace.OutcomeOK),
		// Wave one: map task 0 on node 2, local read.
		span(trace.SpanQueueWait, trace.CatMap, 0, 2, 0, 0, 1, 2, ""),
		span(trace.SpanMapAttempt, trace.CatMap, 2, 20, 0, 0, 1, 2, trace.OutcomeOK),
		span(trace.SpanStartup, trace.CatMap, 2, 3, 0, 0, 1, 2, ""),
		span(trace.SpanDiskRead, trace.CatMap, 3, 10, 0, 0, 1, 2, ""),
		span(trace.SpanMapCPU, trace.CatMap, 10, 20, 0, 0, 1, 2, ""),
		// Wave two: map task 1 on node 5, remote read (disk + net).
		span(trace.SpanQueueWait, trace.CatMap, 30, 32, 0, 1, 1, 5, ""),
		span(trace.SpanMapAttempt, trace.CatMap, 32, 50, 0, 1, 1, 5, trace.OutcomeOK),
		span(trace.SpanStartup, trace.CatMap, 32, 33, 0, 1, 1, 5, ""),
		span(trace.SpanDiskRead, trace.CatMap, 33, 40, 0, 1, 1, 5, ""),
		span(trace.SpanNetRead, trace.CatMap, 40, 44, 0, 1, 1, 5, ""),
		span(trace.SpanMapCPU, trace.CatMap, 44, 50, 0, 1, 1, 5, ""),
		// Reduce task 0 on node 7 closes the job.
		span(trace.SpanReduceAttempt, trace.CatReduce, 55, 100, 0, 0, 1, 7, trace.OutcomeOK),
		span(trace.SpanStartup, trace.CatReduce, 55, 56, 0, 0, 1, 7, ""),
		span(trace.SpanShuffle, trace.CatReduce, 56, 70, 0, 0, 1, 7, ""),
		span(trace.SpanSort, trace.CatReduce, 70, 80, 0, 0, 1, 7, ""),
		span(trace.SpanReduceCPU, trace.CatReduce, 80, 95, 0, 0, 1, 7, ""),
		span(trace.SpanOutputWrite, trace.CatReduce, 95, 100, 0, 0, 1, 7, ""),
	}
	decisions := []trace.PolicyDecision{
		{Time: 0, JobID: 0, Policy: "LA", Verdict: trace.VerdictInit, Added: 1},
		{Time: 25, JobID: 0, Policy: "LA", Verdict: trace.VerdictWait},
		{Time: 30, JobID: 0, Policy: "LA", Verdict: trace.VerdictGrow, Added: 1},
		{Time: 50, JobID: 0, Policy: "LA", Verdict: trace.VerdictEOI},
	}
	return spans, decisions
}

// TestGoldenCriticalPath pins the exact critical path of the canned
// two-wave trace: every node kind, boundary and attribution.
func TestGoldenCriticalPath(t *testing.T) {
	spans, decisions := goldenTrace()
	rep := Analyze(spans, decisions, nil, 0, Config{})
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	if len(rep.Jobs) != 1 {
		t.Fatalf("want 1 job, got %d", len(rep.Jobs))
	}
	j := rep.Jobs[0]
	if j.JobID != 0 || j.Outcome != "ok" || j.MakespanS != 100 {
		t.Fatalf("job header wrong: %+v", j)
	}

	type node struct {
		kind       string
		start, end float64
		task       int
	}
	want := []node{
		{KindSlotWait, 0, 2, 0},         // map 0 queue-wait
		{KindStartup, 2, 3, 0},          //
		{KindDiskReadLocal, 3, 10, 0},   // no net-read phase -> local
		{KindMapCPU, 10, 20, 0},         //
		{KindProviderWait, 20, 30, 1},   // gap ends at the GROW t=30
		{KindSlotWait, 30, 32, 1},       // map 1 queue-wait
		{KindStartup, 32, 33, 1},        //
		{KindDiskReadRemote, 33, 40, 1}, // net-read sibling -> remote
		{KindNetRead, 40, 44, 1},        //
		{KindMapCPU, 44, 50, 1},         //
		{KindSlotWait, 50, 55, 0},       // reduce not yet scheduled
		{KindStartup, 55, 56, 0},        //
		{KindShuffle, 56, 70, 0},        //
		{KindSort, 70, 80, 0},           //
		{KindReduceCPU, 80, 95, 0},      //
		{KindOutputWrite, 95, 100, 0},   //
	}
	if len(j.CriticalPath) != len(want) {
		for _, n := range j.CriticalPath {
			t.Logf("  got node %-18s [%g, %g] task %d", n.Kind, n.Start, n.End, n.Task)
		}
		t.Fatalf("want %d path nodes, got %d", len(want), len(j.CriticalPath))
	}
	for i, w := range want {
		g := j.CriticalPath[i]
		if g.Kind != w.kind || g.Start != w.start || g.End != w.end || g.Task != w.task {
			t.Errorf("node %d: want %+v, got kind=%s [%g, %g] task %d", i, w, g.Kind, g.Start, g.End, g.Task)
		}
	}

	// Breakdown follows from the path, so each component is exact.
	b := j.Breakdown
	checks := []struct {
		name string
		got  float64
		want float64
	}{
		{"slot-wait", b.SlotWaitS, 2 + 2 + 5},
		{"provider-wait", b.ProviderWaitS, 10},
		{"startup", b.StartupS, 1 + 1 + 1},
		{"data-read-local", b.DataReadLocalS, 7},
		{"data-read-remote", b.DataReadRemoteS, 7 + 4},
		{"map-compute", b.MapComputeS, 10 + 6},
		{"shuffle", b.ShuffleS, 14},
		{"reduce", b.ReduceS, 10 + 15 + 5},
		{"untraced", b.UntracedS, 0},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("breakdown %s: want %g, got %g", c.name, c.want, c.got)
		}
	}
	if b.Total() != 100 {
		t.Errorf("breakdown total: want 100, got %g", b.Total())
	}
}

// TestSlotWaitGap flips the golden trace's GROW decision away from the
// second wave's start so the same gap classifies as slot-wait.
func TestSlotWaitGap(t *testing.T) {
	spans, decisions := goldenTrace()
	// Move the GROW off t=30 and drop the in-gap WAIT: now nothing
	// attributes the [20,30] gap to the Input Provider.
	decisions = []trace.PolicyDecision{
		{Time: 0, JobID: 0, Policy: "LA", Verdict: trace.VerdictInit, Added: 2},
	}
	rep := Analyze(spans, decisions, nil, 0, Config{})
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	j := rep.Jobs[0]
	found := false
	for _, n := range j.CriticalPath {
		if n.Start == 20 && n.End == 30 {
			found = true
			if n.Kind != KindSlotWait {
				t.Errorf("gap [20,30]: want %s, got %s", KindSlotWait, n.Kind)
			}
		}
	}
	if !found {
		t.Fatalf("gap [20,30] missing from path: %+v", j.CriticalPath)
	}
	if j.Breakdown.ProviderWaitS != 0 {
		t.Errorf("provider-wait should be 0 without GROW/WAIT evidence, got %g", j.Breakdown.ProviderWaitS)
	}
}

// TestWaitVerdictClassifiesGap puts a WAIT strictly inside the gap
// (with no GROW at its end) and expects provider-wait.
func TestWaitVerdictClassifiesGap(t *testing.T) {
	spans, _ := goldenTrace()
	decisions := []trace.PolicyDecision{
		{Time: 0, JobID: 0, Policy: "LA", Verdict: trace.VerdictInit, Added: 1},
		{Time: 24, JobID: 0, Policy: "LA", Verdict: trace.VerdictWait},
	}
	rep := Analyze(spans, decisions, nil, 0, Config{})
	j := rep.Jobs[0]
	for _, n := range j.CriticalPath {
		if n.Start == 20 && n.End == 30 && n.Kind != KindProviderWait {
			t.Errorf("gap [20,30] with in-gap WAIT: want %s, got %s", KindProviderWait, n.Kind)
		}
	}
}

// TestStragglerDetection plants one slow map among nine fast ones and
// expects exactly it to be flagged at k=2.
func TestStragglerDetection(t *testing.T) {
	spans := []trace.Span{
		span(trace.SpanJob, trace.CatJob, 0, 120, 3, -1, 0, -1, trace.OutcomeOK),
	}
	for i := 0; i < 9; i++ {
		spans = append(spans,
			span(trace.SpanMapAttempt, trace.CatMap, 0, 10, 3, i, 1, i%4, trace.OutcomeOK))
	}
	// The straggler: task 9 takes 100s (mean 19, sd 27; 100 > 19+2*27).
	spans = append(spans,
		span(trace.SpanMapAttempt, trace.CatMap, 0, 100, 3, 9, 1, 1, trace.OutcomeOK),
		span(trace.SpanReduceAttempt, trace.CatReduce, 100, 120, 3, 0, 1, 0, trace.OutcomeOK))

	rep := Analyze(spans, nil, nil, 0, Config{StragglerSigma: 2})
	if len(rep.Jobs) != 1 {
		t.Fatalf("want 1 job, got %d", len(rep.Jobs))
	}
	var stragglers []Anomaly
	for _, a := range rep.Jobs[0].Anomalies {
		if a.Kind == AnomalyStraggler {
			stragglers = append(stragglers, a)
		}
	}
	if len(stragglers) != 1 {
		t.Fatalf("want exactly 1 straggler, got %d: %+v", len(stragglers), stragglers)
	}
	s := stragglers[0]
	if s.Task != 9 || s.Value != 100 {
		t.Errorf("straggler should be task 9 (100s), got task %d value %g", s.Task, s.Value)
	}
	if s.Value <= s.Threshold {
		t.Errorf("straggler value %g must exceed its threshold %g", s.Value, s.Threshold)
	}

	// At the default k=3 the same trace is quiet (100 < 19+3*27).
	rep = Analyze(spans, nil, nil, 0, Config{})
	for _, a := range rep.Jobs[0].Anomalies {
		if a.Kind == AnomalyStraggler {
			t.Errorf("no straggler expected at k=3, got %+v", a)
		}
	}
}

// TestSpeculativeWaste sums killed-attempt time into one anomaly.
func TestSpeculativeWaste(t *testing.T) {
	spans := []trace.Span{
		span(trace.SpanJob, trace.CatJob, 0, 50, 1, -1, 0, -1, trace.OutcomeOK),
		span(trace.SpanMapAttempt, trace.CatMap, 0, 50, 1, 0, 1, 0, trace.OutcomeOK),
	}
	k1 := span(trace.SpanMapAttempt, trace.CatMap, 10, 17, 1, 0, 2, 3, trace.OutcomeKilled)
	k1.Speculative = true
	k2 := span(trace.SpanMapAttempt, trace.CatMap, 20, 23, 1, 1, 2, 2, trace.OutcomeKilled)
	k2.Speculative = true
	spans = append(spans, k1, k2)

	rep := Analyze(spans, nil, nil, 0, Config{})
	var waste []Anomaly
	for _, a := range rep.Jobs[0].Anomalies {
		if a.Kind == AnomalySpeculativeWaste {
			waste = append(waste, a)
		}
	}
	if len(waste) != 1 {
		t.Fatalf("want 1 speculative-waste anomaly, got %d", len(waste))
	}
	if got, want := waste[0].Value, 7.0+3.0; got != want {
		t.Errorf("wasted seconds: want %g, got %g", want, got)
	}
}

// TestScanStallAnomaly triggers the cluster-level stall-ratio rule.
func TestScanStallAnomaly(t *testing.T) {
	counters := map[string]int64{
		trace.CounterScanAsync:  100,
		trace.CounterScanStalls: 80,
	}
	rep := Analyze(nil, nil, counters, 0, Config{})
	if len(rep.ClusterAnomalies) != 1 || rep.ClusterAnomalies[0].Kind != AnomalyScanStalls {
		t.Fatalf("want one scan-stalls anomaly, got %+v", rep.ClusterAnomalies)
	}
	// Below the ratio: quiet.
	counters[trace.CounterScanStalls] = 10
	rep = Analyze(nil, nil, counters, 0, Config{})
	if len(rep.ClusterAnomalies) != 0 {
		t.Fatalf("want no anomalies at 10%% stalls, got %+v", rep.ClusterAnomalies)
	}
}

// TestFailedAttemptOnPath verifies a failed attempt that gated the
// task's retry participates in the critical path.
func TestFailedAttemptOnPath(t *testing.T) {
	spans := []trace.Span{
		span(trace.SpanJob, trace.CatJob, 0, 40, 2, -1, 0, -1, trace.OutcomeOK),
		// Attempt 1 fails at t=18; the retry queues until it starts at 20.
		span(trace.SpanQueueWait, trace.CatMap, 0, 4, 2, 0, 1, 0, ""),
		span(trace.SpanMapAttempt, trace.CatMap, 4, 18, 2, 0, 1, 0, trace.OutcomeFailed),
		span(trace.SpanQueueWait, trace.CatMap, 18, 20, 2, 0, 2, 1, ""),
		span(trace.SpanMapAttempt, trace.CatMap, 20, 40, 2, 0, 2, 1, trace.OutcomeOK),
	}
	rep := Analyze(spans, nil, nil, 0, Config{})
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	j := rep.Jobs[0]
	sawFailed := false
	for _, n := range j.CriticalPath {
		if n.Attempt == 1 && n.Kind == KindUntraced && n.Start == 4 && n.End == 18 {
			sawFailed = true
		}
	}
	if !sawFailed {
		t.Errorf("failed attempt 1 missing from path: %+v", j.CriticalPath)
	}
}

// TestUntracedFiller covers attempts whose phase spans were evicted:
// the attempt window must be tiled with untraced filler, and the
// breakdown still sums to the makespan.
func TestUntracedFiller(t *testing.T) {
	spans := []trace.Span{
		span(trace.SpanJob, trace.CatJob, 0, 30, 4, -1, 0, -1, trace.OutcomeOK),
		span(trace.SpanMapAttempt, trace.CatMap, 0, 30, 4, 0, 1, 0, trace.OutcomeOK),
		// No phase spans recorded (simulating ring eviction).
	}
	rep := Analyze(spans, nil, nil, 0, Config{})
	if err := rep.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	j := rep.Jobs[0]
	if j.Breakdown.UntracedS != 30 {
		t.Errorf("want 30s untraced, got %g", j.Breakdown.UntracedS)
	}
}

// TestJobsWithoutJobSpanSkipped: attempts for a job whose SpanJob
// never closed (still running at trace end) must not produce a
// diagnosis.
func TestJobsWithoutJobSpanSkipped(t *testing.T) {
	spans := []trace.Span{
		span(trace.SpanMapAttempt, trace.CatMap, 0, 10, 9, 0, 1, 0, trace.OutcomeOK),
	}
	rep := Analyze(spans, nil, nil, 0, Config{})
	if len(rep.Jobs) != 0 {
		t.Fatalf("unfinished job must be skipped, got %+v", rep.Jobs)
	}
}

// TestWriteJSONShape locks the wire names CI greps for.
func TestWriteJSONShape(t *testing.T) {
	spans, decisions := goldenTrace()
	rep := Analyze(spans, decisions, map[string]int64{"jobs.finished": 1}, 0, Config{})
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc["schema"] != SchemaVersion {
		t.Errorf("schema: want %q, got %v", SchemaVersion, doc["schema"])
	}
	jobs, ok := doc["jobs"].([]any)
	if !ok || len(jobs) != 1 {
		t.Fatalf("jobs array wrong: %v", doc["jobs"])
	}
	job := jobs[0].(map[string]any)
	for _, key := range []string{"job", "outcome", "submit_s", "finish_s", "makespan_s", "critical_path", "breakdown"} {
		if _, ok := job[key]; !ok {
			t.Errorf("job object missing %q", key)
		}
	}
}

// TestWriteTextRenders smoke-checks the human rendering.
func TestWriteTextRenders(t *testing.T) {
	spans, decisions := goldenTrace()
	rep := Analyze(spans, decisions, map[string]int64{"map.attempts": 2}, 0, Config{})
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"job 0 (ok)", "critical path", "provider-wait", "map.attempts"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

// TestWriteJobsCSV locks the CSV header and one data row.
func TestWriteJobsCSV(t *testing.T) {
	spans, decisions := goldenTrace()
	rep := Analyze(spans, decisions, nil, 0, Config{})
	var buf bytes.Buffer
	if err := rep.WriteJobsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("want header + 1 row, got %d records", len(recs))
	}
	if recs[0][0] != "job" || recs[0][4] != "makespan_s" {
		t.Errorf("header wrong: %v", recs[0])
	}
	if recs[1][0] != "0" || recs[1][4] != "100" {
		t.Errorf("row wrong: %v", recs[1])
	}
}

// TestBreakdownComponentsOrder pins the canonical component order the
// HTML report and CSV rely on.
func TestBreakdownComponentsOrder(t *testing.T) {
	var b Breakdown
	names := make([]string, 0)
	for _, c := range b.Components() {
		names = append(names, c.Name)
	}
	want := []string{
		KindSlotWait, KindProviderWait, KindStartup, "data-read-local",
		"data-read-remote", "map-compute", KindShuffle, "reduce", KindUntraced,
	}
	if len(names) != len(want) {
		t.Fatalf("want %d components, got %v", len(want), names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("component %d: want %s, got %s", i, want[i], names[i])
		}
	}
}

// TestInvariantViolationDetected corrupts a diagnosis and expects
// CheckInvariants to object.
func TestInvariantViolationDetected(t *testing.T) {
	spans, decisions := goldenTrace()
	rep := Analyze(spans, decisions, nil, 0, Config{})
	rep.Jobs[0].Breakdown.ShuffleS += 5 // break the sum
	if err := rep.CheckInvariants(); err == nil {
		t.Fatal("corrupted breakdown must fail CheckInvariants")
	}
	rep = Analyze(spans, decisions, nil, 0, Config{})
	rep.Jobs[0].CriticalPath[3].End += 1 // break the tiling
	if err := rep.CheckInvariants(); err == nil {
		t.Fatal("corrupted path tiling must fail CheckInvariants")
	}
}

// TestMeanStd sanity-checks the population standard deviation used by
// the straggler rule.
func TestMeanStd(t *testing.T) {
	spans := []trace.Span{
		span(trace.SpanMapAttempt, trace.CatMap, 0, 10, 0, 0, 1, 0, trace.OutcomeOK),
		span(trace.SpanMapAttempt, trace.CatMap, 0, 20, 0, 1, 1, 0, trace.OutcomeOK),
	}
	mean, sd := meanStd(spans)
	if mean != 15 || math.Abs(sd-5) > 1e-12 {
		t.Errorf("want mean 15 sd 5, got %g %g", mean, sd)
	}
}
