package sampling

import (
	"testing"

	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
)

const stubFP = "(A > 5)"

// statStubSrc is a slice source with hand-written zone statistics.
type statStubSrc struct {
	data.Source
	matches int64
}

func (s *statStubSrc) BlockStats(fp string) (data.BlockStats, bool) {
	if fp != stubFP {
		return data.BlockStats{}, false
	}
	return data.BlockStats{Blocks: 4, MatchBlocks: 1, Rows: 10, Matches: s.matches}, true
}

// statSplits builds one split per entry; matches < 0 yields a
// statistics-less block.
func statSplits(matches ...int64) []mapreduce.Split {
	out := make([]mapreduce.Split, len(matches))
	for i, m := range matches {
		recs := make([]data.Record, 10)
		for j := range recs {
			recs[j] = rec(int64(j), 0)
		}
		var src data.Source = data.NewSliceSource(testSchema, recs)
		if m >= 0 {
			src = &statStubSrc{Source: src, matches: m}
		}
		out[i] = mapreduce.Split{Block: &dfs.Block{Source: src,
			Replicas: []dfs.Location{{Node: 0, Disk: 0}}}}
	}
	return out
}

func indexConf() *mapreduce.JobConf {
	c := mapreduce.NewJobConf()
	c.Set(mapreduce.ConfInputPath, mapreduce.InputPathIndex)
	c.Set(mapreduce.ConfPredicate, stubFP)
	return c
}

// splitMatches reads a split's zone-map match count (-1 = no stats).
func splitMatches(s mapreduce.Split) int64 {
	if st, ok := s.Block.BlockStats(stubFP); ok {
		return st.Matches
	}
	return -1
}

func TestInformedOrderingSortsByMatches(t *testing.T) {
	p := NewProvider(100, 7)
	if err := p.Init(statSplits(3, 40, 0, 12, 7, 25, 1, 99), indexConf()); err != nil {
		t.Fatal(err)
	}
	got := p.InitialSplits(8)
	if len(got) != 8 {
		t.Fatalf("handed out %d splits", len(got))
	}
	for i := 1; i < len(got); i++ {
		if splitMatches(got[i-1]) < splitMatches(got[i]) {
			t.Fatalf("informed order not descending at %d: %d < %d",
				i, splitMatches(got[i-1]), splitMatches(got[i]))
		}
	}
	if splitMatches(got[0]) != 99 {
		t.Fatalf("hottest split not first: %d matches", splitMatches(got[0]))
	}
}

// Without the index input path the order must stay the seeded shuffle —
// informed ordering is strictly opt-in (it changes the policy game).
func TestInformedOrderingRequiresIndexMode(t *testing.T) {
	for _, conf := range []*mapreduce.JobConf{
		nil,
		func() *mapreduce.JobConf { // skip mode: charging changes, ordering must not
			c := indexConf()
			c.Set(mapreduce.ConfInputPath, mapreduce.InputPathSkip)
			return c
		}(),
		func() *mapreduce.JobConf { // index mode without a predicate: nothing to order by
			c := mapreduce.NewJobConf()
			c.Set(mapreduce.ConfInputPath, mapreduce.InputPathIndex)
			return c
		}(),
	} {
		splits := statSplits(3, 40, 0, 12, 7, 25, 1, 99)
		base := NewProvider(100, 7)
		if err := base.Init(splits, nil); err != nil {
			t.Fatal(err)
		}
		want := base.InitialSplits(8)

		p := NewProvider(100, 7)
		if err := p.Init(splits, conf); err != nil {
			t.Fatal(err)
		}
		got := p.InitialSplits(8)
		for i := range want {
			if want[i].Block != got[i].Block {
				t.Fatalf("conf %v reordered splits at %d", conf, i)
			}
		}
	}
}

// Statistics-less splits rank as zero matches and — the sort being
// stable — keep their shuffled relative order among themselves.
func TestInformedOrderingStatsLessKeepShuffledOrder(t *testing.T) {
	splits := statSplits(-1, 5, -1, 9, -1, -1, 2, -1)
	base := NewProvider(100, 11)
	if err := base.Init(splits, nil); err != nil {
		t.Fatal(err)
	}
	var shuffled []*dfs.Block
	for _, s := range base.InitialSplits(8) {
		if splitMatches(s) < 0 {
			shuffled = append(shuffled, s.Block)
		}
	}

	p := NewProvider(100, 11)
	if err := p.Init(splits, indexConf()); err != nil {
		t.Fatal(err)
	}
	got := p.InitialSplits(8)
	// The positive-match splits come first, descending.
	if splitMatches(got[0]) != 9 || splitMatches(got[1]) != 5 || splitMatches(got[2]) != 2 {
		t.Fatalf("match-rich splits not first: %d, %d, %d",
			splitMatches(got[0]), splitMatches(got[1]), splitMatches(got[2]))
	}
	var rest []*dfs.Block
	for _, s := range got[3:] {
		if m := splitMatches(s); m > 0 {
			t.Fatalf("match-rich split ranked after stat-less ones (%d matches)", m)
		}
		if splitMatches(s) < 0 {
			rest = append(rest, s.Block)
		}
	}
	if len(rest) != len(shuffled) {
		t.Fatalf("stat-less split count changed: %d vs %d", len(rest), len(shuffled))
	}
	for i := range rest {
		if rest[i] != shuffled[i] {
			t.Fatalf("stat-less splits lost their shuffled relative order at %d", i)
		}
	}
}

// The satellite grab-limit edge: a grab exceeding the remaining
// unscanned splits clamps to the remainder under informed ordering —
// the union of all grabs is the exact input set, no duplicates, no
// drops.
func TestGrabBeyondRemainingUnderInformedOrdering(t *testing.T) {
	splits := statSplits(3, 40, 0, 12, 7, 25, 1, 99)

	p := NewProvider(1_000_000, 13)
	if err := p.Init(splits, indexConf()); err != nil {
		t.Fatal(err)
	}
	seen := map[*dfs.Block]bool{}
	mark := func(ss []mapreduce.Split) {
		for _, s := range ss {
			if seen[s.Block] {
				t.Fatal("split handed out twice")
			}
			seen[s.Block] = true
		}
	}
	// First grab larger than the whole input: everything, exactly once.
	first := p.InitialSplits(50)
	if len(first) != len(splits) {
		t.Fatalf("oversized initial grab returned %d splits, want %d", len(first), len(splits))
	}
	mark(first)
	if p.Remaining() != 0 {
		t.Fatalf("remaining = %d after draining grab", p.Remaining())
	}
	// Further grabs are empty, not duplicated.
	if extra := p.take(10); len(extra) != 0 {
		t.Fatalf("drained provider handed out %d more splits", len(extra))
	}
	if len(seen) != len(splits) {
		t.Fatalf("union covers %d of %d splits", len(seen), len(splits))
	}

	// Same contract mid-stream: a partial grab then an oversized one.
	p2 := NewProvider(1_000_000, 13)
	if err := p2.Init(splits, indexConf()); err != nil {
		t.Fatal(err)
	}
	seen = map[*dfs.Block]bool{}
	mark(p2.InitialSplits(3))
	rest := p2.take(100)
	if len(rest) != len(splits)-3 {
		t.Fatalf("oversized mid-stream grab returned %d, want %d", len(rest), len(splits)-3)
	}
	mark(rest)
	if len(seen) != len(splits) {
		t.Fatalf("union covers %d of %d splits", len(seen), len(splits))
	}
}

// The estimator provider shares the contract (and the informed-order
// bias is available behind the same flag).
func TestEstimatorGrabBeyondRemainingUnderInformedOrdering(t *testing.T) {
	splits := statSplits(3, 40, 0, 12, 7, 25, 1, 99)
	p := NewEstimatorProvider(0.1, 17)
	if err := p.Init(splits, indexConf()); err != nil {
		t.Fatal(err)
	}
	got := p.InitialSplits(1000)
	if len(got) != len(splits) {
		t.Fatalf("oversized grab returned %d splits, want %d", len(got), len(splits))
	}
	if splitMatches(got[0]) != 99 {
		t.Fatalf("estimator ignored informed ordering: first split has %d matches", splitMatches(got[0]))
	}
	seen := map[*dfs.Block]bool{}
	for _, s := range got {
		if seen[s.Block] {
			t.Fatal("split handed out twice")
		}
		seen[s.Block] = true
	}
	if extra := p.take(5); len(extra) != 0 {
		t.Fatalf("drained estimator handed out %d more splits", len(extra))
	}
}
