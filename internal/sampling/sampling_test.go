package sampling

import (
	"testing"

	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/mapreduce"
)

var testSchema = data.NewSchema("A", "B")

func rec(a, b int64) data.Record {
	return data.NewRecord(testSchema, []data.Value{data.Int(a), data.Int(b)})
}

// predGt5 matches A > 5.
func predGt5() expr.Expr {
	return &expr.Binary{Op: expr.OpGt, L: &expr.Column{Name: "A"}, R: &expr.Literal{Val: data.Int(5)}}
}

func blockOf(recs ...data.Record) *dfs.Block {
	return &dfs.Block{Source: data.NewSliceSource(testSchema, recs),
		Replicas: []dfs.Location{{Node: 0, Disk: 0}}}
}

func TestMapperEmitsOnlyMatches(t *testing.T) {
	m := &Mapper{Predicate: predGt5(), K: 100}
	out := &mapreduce.Collector{}
	for _, r := range []data.Record{rec(1, 0), rec(6, 0), rec(5, 0), rec(10, 0)} {
		if err := m.Map(r, out); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() != 2 {
		t.Fatalf("emitted %d, want 2", out.Len())
	}
	for _, kv := range out.Pairs() {
		if kv.Key != DummyKey {
			t.Fatalf("key = %q, want dummy", kv.Key)
		}
		if kv.Value.MustGet("A").AsInt() <= 5 {
			t.Fatalf("non-matching record emitted: %v", kv.Value)
		}
	}
}

func TestMapperCapsAtK(t *testing.T) {
	m := &Mapper{Predicate: predGt5(), K: 3}
	out := &mapreduce.Collector{}
	for i := int64(0); i < 50; i++ {
		if err := m.Map(rec(100+i, 0), out); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() != 3 {
		t.Fatalf("emitted %d, want K=3 (Algorithm 1 bound)", out.Len())
	}
}

func TestMapperProjection(t *testing.T) {
	proj, _ := testSchema.Project("B")
	m := &Mapper{Predicate: predGt5(), K: 10, Projection: proj}
	out := &mapreduce.Collector{}
	m.Map(rec(9, 42), out)
	got := out.Pairs()[0].Value
	if got.Len() != 1 || got.MustGet("B").AsInt() != 42 {
		t.Fatalf("projection failed: %v", got)
	}
}

func TestMapperPredicateErrorPropagates(t *testing.T) {
	bad := &expr.Binary{Op: expr.OpGt, L: &expr.Column{Name: "MISSING"}, R: &expr.Literal{Val: data.Int(0)}}
	m := &Mapper{Predicate: bad, K: 10}
	if err := m.Map(rec(1, 1), &mapreduce.Collector{}); err == nil {
		t.Fatal("predicate error swallowed")
	}
}

func TestMapSplitScanFallback(t *testing.T) {
	b := blockOf(rec(1, 0), rec(7, 0), rec(9, 0), rec(2, 0))
	m := &Mapper{Predicate: predGt5(), K: 10}
	out := &mapreduce.Collector{}
	ctx := &mapreduce.TaskContext{Source: b.Source}
	if err := m.MapSplit(ctx, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("scan fallback emitted %d, want 2", out.Len())
	}
}

func TestMapSplitStopsAtK(t *testing.T) {
	var recs []data.Record
	for i := int64(0); i < 100; i++ {
		recs = append(recs, rec(10+i, 0))
	}
	b := blockOf(recs...)
	m := &Mapper{Predicate: predGt5(), K: 4}
	out := &mapreduce.Collector{}
	if err := m.MapSplit(&mapreduce.TaskContext{Source: b.Source}, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("emitted %d, want 4", out.Len())
	}
}

func TestMapSplitAcceleratedPath(t *testing.T) {
	ds, err := dataset.Build(dataset.Spec{
		Scale: 1, Seed: 5, Z: 0, Selectivity: 0.01, Partitions: 10, RowsOverride: 20_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Partition(0)
	m := &Mapper{Predicate: ds.Predicate(), K: 1_000_000}
	out := &mapreduce.Collector{}
	if err := m.MapSplit(&mapreduce.TaskContext{Source: p}, out); err != nil {
		t.Fatal(err)
	}
	if int64(out.Len()) != p.NumMatches() {
		t.Fatalf("accelerated path emitted %d, plan says %d", out.Len(), p.NumMatches())
	}
	// Every emitted record genuinely satisfies the predicate.
	for _, kv := range out.Pairs() {
		ok, err := expr.EvalBool(ds.Predicate(), kv.Value)
		if err != nil || !ok {
			t.Fatalf("emitted record fails predicate: %v (%v)", kv.Value, err)
		}
	}
}

func TestReducerTakesFirstK(t *testing.T) {
	r := &Reducer{K: 3}
	out := &mapreduce.Collector{}
	vals := []data.Record{rec(1, 0), rec(2, 0), rec(3, 0), rec(4, 0), rec(5, 0)}
	if err := r.Reduce(DummyKey, vals, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 3 {
		t.Fatalf("reduced to %d, want 3", out.Len())
	}
	for i, kv := range out.Pairs() {
		if kv.Value.MustGet("A").AsInt() != int64(i+1) {
			t.Fatalf("Algorithm 2 must take the FIRST k; got %v at %d", kv.Value, i)
		}
	}
}

func TestReducerRandomK(t *testing.T) {
	vals := make([]data.Record, 100)
	for i := range vals {
		vals[i] = rec(int64(i), 0)
	}
	r := &Reducer{K: 10, Random: true, Seed: 7}
	out := &mapreduce.Collector{}
	if err := r.Reduce(DummyKey, vals, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 10 {
		t.Fatalf("random-k emitted %d, want 10", out.Len())
	}
	// Deterministic under the same seed.
	out2 := &mapreduce.Collector{}
	(&Reducer{K: 10, Random: true, Seed: 7}).Reduce(DummyKey, vals, out2)
	for i := range out.Pairs() {
		if out.Pairs()[i].Value.String() != out2.Pairs()[i].Value.String() {
			t.Fatal("random-k not deterministic under fixed seed")
		}
	}
	// Not simply the first k (vanishing probability with 100 -> 10).
	firstK := true
	seen := map[int64]bool{}
	for _, kv := range out.Pairs() {
		v := kv.Value.MustGet("A").AsInt()
		if seen[v] {
			t.Fatalf("duplicate record %d in random sample", v)
		}
		seen[v] = true
		if v >= 10 {
			firstK = false
		}
	}
	if firstK {
		t.Fatal("random-k degenerated to first-k")
	}
}

func TestReducerFactoryReadsConf(t *testing.T) {
	conf := mapreduce.NewJobConf()
	conf.SetBool(mapreduce.ConfRandomSample, true)
	conf.SetInt(mapreduce.ConfRandomSeed, 99)
	red := NewReducerFactory(5)(conf).(*Reducer)
	if !red.Random || red.Seed != 99 {
		t.Fatalf("reducer = %+v", red)
	}
}

func TestReducerFewerThanK(t *testing.T) {
	r := &Reducer{K: 10}
	out := &mapreduce.Collector{}
	if err := r.Reduce(DummyKey, []data.Record{rec(1, 0)}, out); err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 {
		t.Fatalf("reduced to %d, want 1", out.Len())
	}
}

func TestNewJobSpecValidation(t *testing.T) {
	if _, err := NewJobSpec(nil, 10, nil, nil); err == nil {
		t.Error("nil predicate accepted")
	}
	if _, err := NewJobSpec(predGt5(), 0, nil, nil); err == nil {
		t.Error("zero k accepted")
	}
}

func TestNewJobSpecStampsConf(t *testing.T) {
	proj, _ := testSchema.Project("A")
	spec, err := NewJobSpec(predGt5(), 500, proj, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := spec.Conf
	if c.GetInt(mapreduce.ConfSampleSize, 0) != 500 {
		t.Error("sample size not set")
	}
	if c.Get(mapreduce.ConfPredicate, "") != predGt5().String() {
		t.Error("predicate not set")
	}
	if c.Get(mapreduce.ConfProjection, "") != "A" {
		t.Error("projection not set")
	}
	if c.GetInt(mapreduce.ConfNumReduces, 0) != 1 {
		t.Error("sampling job must use a single reduce")
	}
	if spec.NewMapper == nil || spec.NewReducer == nil {
		t.Error("factories missing")
	}
}
