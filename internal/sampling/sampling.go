// Package sampling implements predicate-based sampling as a MapReduce
// job (paper §II-B) plus the sampling Input Provider (§IV): the map
// logic emits up to k predicate-satisfying records under a dummy key
// (Algorithm 1), the single reduce selects the first k (Algorithm 2),
// and the provider converts observed selectivity into split-count
// increments bounded by the policy's grab limit.
package sampling

import (
	"fmt"
	"math/rand"
	"strings"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/mapreduce"
)

// DummyKey is the single intermediate key shared by all map outputs, so
// the lone reduce task receives one (key, list) pair (§II-B).
const DummyKey = "k_dummy"

// AcceleratedSource is implemented by record sources that can return
// the matching records for a known predicate without a full scan (the
// dataset package's planted partitions). The runtime charges full-scan
// I/O and CPU regardless; this only short-cuts the *real* record
// iteration, and tests verify byte-identical equivalence with scanning.
type AcceleratedSource interface {
	AcceleratedMatches(predicateFingerprint string, limit int64) ([]data.Record, bool)
}

// Mapper is Algorithm 1: for each input record, if fewer than k records
// have been found so far and the record satisfies the predicate, emit
// (k_dummy, record). It implements mapreduce.SplitMapper to exploit
// accelerated sources.
type Mapper struct {
	// Predicate is the sampling condition.
	Predicate expr.Expr
	// K is the required sample size; each map task emits at most K
	// pairs, since no other task is guaranteed to contribute any.
	K int64
	// Projection, when non-nil, is applied to each emitted record (the
	// Hive SELECT list).
	Projection *data.Schema

	found int64
}

// NewMapperFactory returns a mapreduce.JobSpec mapper factory for the
// predicate/k/projection triple.
func NewMapperFactory(pred expr.Expr, k int64, projection *data.Schema) func(*mapreduce.JobConf) mapreduce.Mapper {
	return func(*mapreduce.JobConf) mapreduce.Mapper {
		return &Mapper{Predicate: pred, K: k, Projection: projection}
	}
}

func (m *Mapper) emit(rec data.Record, out *mapreduce.Collector) {
	if m.Projection != nil {
		rec = rec.Project(m.Projection)
	}
	out.Emit(DummyKey, rec)
	m.found++
}

// Map implements Algorithm 1's per-record body.
func (m *Mapper) Map(rec data.Record, out *mapreduce.Collector) error {
	if m.found >= m.K {
		return nil
	}
	ok, err := expr.EvalBool(m.Predicate, rec)
	if err != nil {
		return fmt.Errorf("sampling: predicate: %w", err)
	}
	if ok {
		m.emit(rec, out)
	}
	return nil
}

// MapSplit implements mapreduce.SplitMapper: it uses the accelerated
// match path when the split's source supports this predicate, falling
// back to a full scan otherwise.
func (m *Mapper) MapSplit(ctx *mapreduce.TaskContext, out *mapreduce.Collector) error {
	if acc, ok := ctx.Source.(AcceleratedSource); ok {
		if matches, hit := acc.AcceleratedMatches(m.Predicate.String(), m.K); hit {
			for _, rec := range matches {
				if m.found >= m.K {
					break
				}
				m.emit(rec, out)
			}
			return nil
		}
	}
	var scanErr error
	ctx.Source.Scan(func(rec data.Record) bool {
		if m.found >= m.K {
			return false
		}
		if err := m.Map(rec, out); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	return scanErr
}

// Reducer is Algorithm 2: receive the single (k_dummy, list) pair and
// output the first k values — or, with Random set, a uniform random k
// of them (the paper's footnote 1 variant, via reservoir sampling).
type Reducer struct {
	// K is the required sample size.
	K int64
	// Random selects a uniform random k instead of the first k.
	Random bool
	// Seed drives the random selection.
	Seed int64
}

// NewReducerFactory returns a reducer factory for sample size k,
// honouring the sampling.random / sampling.random.seed conf keys.
func NewReducerFactory(k int64) func(*mapreduce.JobConf) mapreduce.Reducer {
	return func(conf *mapreduce.JobConf) mapreduce.Reducer {
		r := &Reducer{K: k}
		if conf != nil {
			r.Random = conf.GetBool(mapreduce.ConfRandomSample, false)
			r.Seed = conf.GetInt(mapreduce.ConfRandomSeed, 1)
		}
		return r
	}
}

// Reduce implements Algorithm 2.
func (r *Reducer) Reduce(key string, values []data.Record, out *mapreduce.Collector) error {
	if int64(len(values)) <= r.K {
		for _, v := range values {
			out.Emit(key, v)
		}
		return nil
	}
	if !r.Random {
		for _, v := range values[:r.K] {
			out.Emit(key, v)
		}
		return nil
	}
	// Reservoir-sample k of the candidates (Vitter's Algorithm R),
	// emitting in reservoir order.
	reservoir := make([]data.Record, r.K)
	copy(reservoir, values[:r.K])
	rng := rand.New(rand.NewSource(r.Seed))
	for i := r.K; i < int64(len(values)); i++ {
		j := rng.Int63n(i + 1)
		if j < r.K {
			reservoir[j] = values[i]
		}
	}
	for _, v := range reservoir {
		out.Emit(key, v)
	}
	return nil
}

// NewJobSpec assembles the complete sampling job: Algorithm 1 mapper,
// Algorithm 2 reducer, and a JobConf carrying the sampling parameters.
// projection may be nil (emit whole records).
func NewJobSpec(pred expr.Expr, k int64, projection *data.Schema, conf *mapreduce.JobConf) (mapreduce.JobSpec, error) {
	if pred == nil {
		return mapreduce.JobSpec{}, fmt.Errorf("sampling: predicate required")
	}
	if k <= 0 {
		return mapreduce.JobSpec{}, fmt.Errorf("sampling: sample size must be positive, got %d", k)
	}
	if conf == nil {
		conf = mapreduce.NewJobConf()
	}
	conf.SetInt(mapreduce.ConfSampleSize, k)
	conf.Set(mapreduce.ConfPredicate, pred.String())
	if projection != nil {
		conf.Set(mapreduce.ConfProjection, strings.Join(projection.Columns(), ","))
	}
	conf.SetInt(mapreduce.ConfNumReduces, 1)
	projCols := ""
	if projection != nil {
		projCols = strings.Join(projection.Columns(), ",")
	}
	return mapreduce.JobSpec{
		Conf:       conf,
		NewMapper:  NewMapperFactory(pred, k, projection),
		NewReducer: NewReducerFactory(k),
		// Algorithm 1's per-split output depends only on the split's
		// records and (predicate, k, projection): the mapper caps its
		// own emissions at k per task regardless of what other tasks
		// find, so it is safe to memoise under this key.
		MemoKey: fmt.Sprintf("sampling|k=%d|pred=%s|proj=%s", k, pred.String(), projCols),
		// Records the predicate rejects never reach the output, so the
		// runtime may skip statistics sub-blocks with no matches.
		FilterFingerprint: pred.String(),
	}, nil
}
