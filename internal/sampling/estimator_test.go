package sampling

import (
	"math"
	"testing"

	"dynamicmr/internal/core"
	"dynamicmr/internal/mapreduce"
)

func TestCountingMapperCounts(t *testing.T) {
	m := &CountingMapper{Predicate: predGt5()}
	out := &mapreduce.Collector{}
	for i := int64(0); i < 20; i++ {
		if err := m.Map(rec(i, 0), out); err != nil {
			t.Fatal(err)
		}
	}
	if out.Len() != 0 {
		t.Fatalf("counting mapper emitted %d records", out.Len())
	}
	// Values 6..19 match: 14 records.
	if got := out.UserCounters()[CounterMatches]; got != 14 {
		t.Fatalf("counted %d, want 14", got)
	}
}

func TestCountingMapperScanPath(t *testing.T) {
	b := blockOf(rec(1, 0), rec(7, 0), rec(9, 0))
	m := &CountingMapper{Predicate: predGt5()}
	out := &mapreduce.Collector{}
	if err := m.MapSplit(&mapreduce.TaskContext{Source: b.Source}, out); err != nil {
		t.Fatal(err)
	}
	if got := out.UserCounters()[CounterMatches]; got != 2 {
		t.Fatalf("counted %d, want 2", got)
	}
}

func estReport(records, matches int64, scheduled, completed, grab int) core.Report {
	return core.Report{
		Job: mapreduce.JobStatus{
			CompletedMaps:   completed,
			ScheduledMaps:   scheduled,
			MapInputRecords: records,
			UserCounters:    map[string]int64{CounterMatches: matches},
		},
		GrabLimit: grab,
	}
}

func TestEstimatorValidation(t *testing.T) {
	for _, bad := range []float64{0, -0.1, 1, 2} {
		p := NewEstimatorProvider(bad, 1)
		if err := p.Init(fakeSplits(4, 10), nil); err == nil {
			t.Errorf("MaxRelErr %v accepted", bad)
		}
	}
}

func TestEstimatorStopsWhenTight(t *testing.T) {
	p := NewEstimatorProvider(0.1, 1)
	if err := p.Init(fakeSplits(100, 1000), nil); err != nil {
		t.Fatal(err)
	}
	p.InitialSplits(4)
	// p̂ = 0.01 over 1M records: hw = 1.96*sqrt(.01*.99/1e6) ≈ 1.95e-4,
	// rel ≈ 0.0195 <= 0.1 and matches 10000 >= 30 → stop.
	resp, _ := p.Next(estReport(1_000_000, 10_000, 4, 4, 10))
	if resp != core.EndOfInput {
		t.Fatalf("resp = %v, want end of input", resp)
	}
	est := p.Last()
	if math.Abs(est.Selectivity-0.01) > 1e-12 {
		t.Fatalf("estimate = %v", est.Selectivity)
	}
	if est.RelativeError > 0.1 {
		t.Fatalf("relative error = %v", est.RelativeError)
	}
}

func TestEstimatorKeepsGoingWhenLoose(t *testing.T) {
	p := NewEstimatorProvider(0.05, 1)
	if err := p.Init(fakeSplits(100, 1000), nil); err != nil {
		t.Fatal(err)
	}
	p.InitialSplits(4)
	// Only 40 matches in 4000 records: rel err ≈ 0.31 > 0.05 → grab.
	resp, splits := p.Next(estReport(4000, 40, 4, 4, 10))
	if resp != core.InputAvailable || len(splits) != 10 {
		t.Fatalf("resp = %v with %d splits", resp, len(splits))
	}
}

func TestEstimatorMinMatchesGuard(t *testing.T) {
	p := NewEstimatorProvider(0.5, 1)
	if err := p.Init(fakeSplits(100, 1000), nil); err != nil {
		t.Fatal(err)
	}
	p.InitialSplits(4)
	// 5 matches from 1M records: rel err small but matches < 30 → keep
	// going.
	resp, _ := p.Next(estReport(1_000_000, 5, 4, 4, 10))
	if resp != core.InputAvailable {
		t.Fatalf("resp = %v, want input available (min-matches guard)", resp)
	}
}

func TestEstimatorExhaustion(t *testing.T) {
	p := NewEstimatorProvider(0.01, 1)
	if err := p.Init(fakeSplits(4, 10), nil); err != nil {
		t.Fatal(err)
	}
	p.InitialSplits(4)
	resp, _ := p.Next(estReport(40, 0, 4, 4, 10))
	if resp != core.EndOfInput {
		t.Fatalf("resp = %v, want end of input when exhausted", resp)
	}
}

func TestEstimatorWaitsAtZeroGrab(t *testing.T) {
	p := NewEstimatorProvider(0.1, 1)
	if err := p.Init(fakeSplits(100, 1000), nil); err != nil {
		t.Fatal(err)
	}
	p.InitialSplits(4)
	resp, _ := p.Next(estReport(4000, 4, 4, 4, 0))
	if resp != core.NoInputAvailable {
		t.Fatalf("resp = %v, want wait-and-see", resp)
	}
}

func TestEstimatorConfidenceLevels(t *testing.T) {
	for conf, wantZ := range map[float64]float64{0: 1.96, 0.95: 1.96, 0.90: 1.645, 0.99: 2.576} {
		p := &EstimatorProvider{MaxRelErr: 0.1, Confidence: conf}
		if got := p.z(); got != wantZ {
			t.Errorf("z(%v) = %v, want %v", conf, got, wantZ)
		}
	}
}

func TestEstimationJobSpec(t *testing.T) {
	spec, err := NewEstimationJobSpec(predGt5(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if spec.NewMapper == nil {
		t.Fatal("no mapper")
	}
	if spec.Conf.Get(mapreduce.ConfPredicate, "") == "" {
		t.Fatal("predicate not stamped")
	}
	if _, err := NewEstimationJobSpec(nil, nil); err == nil {
		t.Fatal("nil predicate accepted")
	}
}
