package sampling

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dynamicmr/internal/core"
	"dynamicmr/internal/mapreduce"
)

// informedOrder stably reorders already-shuffled splits so the
// statistically promising ones (more zone-map matches for the
// fingerprinted predicate) are grabbed first. Splits without statistics
// rank as zero matches; the sort is stable, so ties — including every
// split of a stat-less input — keep their shuffled relative order. Used
// only behind the index input-path flag: grabbing hot partitions first
// changes the policy game (observed selectivity is biased upward early,
// so providers estimate from a non-uniform prefix), which is precisely
// the informed-grab trade the flag opts into.
func informedOrder(splits []mapreduce.Split, fingerprint string) {
	matches := func(s mapreduce.Split) int64 {
		if st, ok := s.Block.BlockStats(fingerprint); ok {
			return st.Matches
		}
		return 0
	}
	sort.SliceStable(splits, func(i, j int) bool {
		return matches(splits[i]) > matches(splits[j])
	})
}

// informedGrab reports whether the conf opts into informed grab
// ordering, returning the predicate fingerprint to order by.
func informedGrab(conf *mapreduce.JobConf) (string, bool) {
	if conf == nil || conf.Get(mapreduce.ConfInputPath, "") != mapreduce.InputPathIndex {
		return "", false
	}
	fp := conf.Get(mapreduce.ConfPredicate, "")
	return fp, fp != ""
}

// Provider is the sampling Input Provider (§IV). It draws increments
// uniformly at random from the unprocessed partitions (randomising the
// produced sample), estimates predicate selectivity from the counters
// of finished maps, accounts for the expected output of in-flight maps,
// and converts the remaining match deficit into a number of splits —
// bounded by the policy's grab limit at each step.
type Provider struct {
	// K is the required sample size; read from the JobConf at Init if
	// zero.
	K int64
	// Seed drives the random split order.
	Seed int64

	splits    []mapreduce.Split // randomly permuted
	cursor    int               // splits[:cursor] have been handed out
	totalRecs int64             // records across all splits

	// decision trace for experiments
	estimates []float64
}

// NewProvider creates a provider for sample size k.
func NewProvider(k int64, seed int64) *Provider {
	return &Provider{K: k, Seed: seed}
}

// Init implements core.InputProvider: receive the complete input
// partition set and permute it uniformly at random (§IV: "the initial
// input and all subsequent increments are chosen randomly with a
// uniform distribution from the set of un-processed input partitions").
func (p *Provider) Init(all []mapreduce.Split, conf *mapreduce.JobConf) error {
	if p.K == 0 && conf != nil {
		p.K = conf.GetInt(mapreduce.ConfSampleSize, 0)
	}
	if p.K <= 0 {
		return fmt.Errorf("sampling: provider needs a positive sample size")
	}
	p.splits = append([]mapreduce.Split(nil), all...)
	rng := rand.New(rand.NewSource(p.Seed))
	rng.Shuffle(len(p.splits), func(i, j int) {
		p.splits[i], p.splits[j] = p.splits[j], p.splits[i]
	})
	if fp, ok := informedGrab(conf); ok {
		informedOrder(p.splits, fp)
	}
	p.totalRecs = 0
	for _, s := range p.splits {
		p.totalRecs += s.NumRecords()
	}
	p.cursor = 0
	return nil
}

// InitialSplits implements core.InputProvider. Like every grab, a grab
// larger than the remaining unscanned splits is clamped to the
// remainder (see take): under any ordering — shuffled or informed —
// each split is handed out exactly once, never duplicated or dropped.
func (p *Provider) InitialSplits(grab int) []mapreduce.Split {
	return p.take(grab)
}

// Remaining returns the number of partitions not yet handed out.
func (p *Provider) Remaining() int { return len(p.splits) - p.cursor }

// SelectivityEstimates returns the ρ̂ value observed at each
// consultation (for experiment diagnostics).
func (p *Provider) SelectivityEstimates() []float64 { return p.estimates }

// take advances the cursor over the (permuted, possibly
// informed-ordered) split sequence and returns the next n splits. n is
// clamped to [0, Remaining()]: a grab exceeding the unscanned remainder
// returns exactly the remainder, so the union of all grabs is the exact
// input set with no duplicates and no drops.
func (p *Provider) take(n int) []mapreduce.Split {
	if n < 0 {
		n = 0
	}
	if rem := p.Remaining(); n > rem {
		n = rem
	}
	out := p.splits[p.cursor : p.cursor+n]
	p.cursor += n
	return out
}

// Next implements core.InputProvider — the §IV estimation procedure.
func (p *Provider) Next(rep core.Report) (core.Response, []mapreduce.Split) {
	js := rep.Job

	// Favorable case: enough map output has been produced already.
	if js.MapOutputRecords >= p.K {
		return core.EndOfInput, nil
	}
	// Nothing left to add: close input; the job finishes with whatever
	// matches exist.
	if p.Remaining() == 0 {
		return core.EndOfInput, nil
	}

	grab := rep.GrabLimit
	if grab <= 0 {
		// Policy forbids growth right now (e.g. C with zero available
		// slots): wait and see.
		return core.NoInputAvailable, nil
	}

	// No finished maps yet: no statistics to estimate from. Feed the
	// allowance rather than stall.
	if js.CompletedMaps == 0 || js.MapInputRecords == 0 {
		return core.InputAvailable, p.take(grab)
	}

	// Estimated predicate selectivity ρ̂ from finished maps.
	rho := float64(js.MapOutputRecords) / float64(js.MapInputRecords)
	p.estimates = append(p.estimates, rho)

	// Expected records per split, from the observed splits (§IV: "given
	// the splits and the total input records processed so far, the
	// Input Provider computes the expected number of records in each
	// split").
	recsPerSplit := float64(js.MapInputRecords) / float64(js.CompletedMaps)
	if recsPerSplit <= 0 {
		recsPerSplit = float64(p.totalRecs) / float64(len(p.splits))
	}

	// Expected output from pending (scheduled but unfinished) maps.
	pendingMaps := js.ScheduledMaps - js.CompletedMaps
	expectedPending := float64(pendingMaps) * recsPerSplit * rho

	deficit := float64(p.K-js.MapOutputRecords) - expectedPending
	if deficit <= 0 {
		// In-flight work should already cover the sample: wait and see.
		return core.NoInputAvailable, nil
	}

	var splitsNeeded int
	if rho <= 0 {
		// No matches seen yet; no basis for an estimate. Keep feeding
		// within the allowance.
		splitsNeeded = grab
	} else {
		recordsNeeded := deficit / rho
		splitsNeeded = int(math.Ceil(recordsNeeded / recsPerSplit))
		if splitsNeeded < 1 {
			splitsNeeded = 1
		}
	}
	if splitsNeeded > grab {
		splitsNeeded = grab
	}
	return core.InputAvailable, p.take(splitsNeeded)
}

var _ core.InputProvider = (*Provider)(nil)
