package sampling

import (
	"math"
	"testing"

	"dynamicmr/internal/core"
	"dynamicmr/internal/data"
	"dynamicmr/internal/mapreduce"
)

// fakeSplits builds n standalone splits of `recs` records each.
func fakeSplits(n int, recs int) []mapreduce.Split {
	out := make([]mapreduce.Split, n)
	for i := range out {
		rr := make([]data.Record, recs)
		for j := range rr {
			rr[j] = rec(int64(j), 0)
		}
		out[i] = mapreduce.Split{Block: blockOf(rr...)}
	}
	return out
}

func initProvN(t *testing.T, k int64, n, recsEach int) *Provider {
	t.Helper()
	p := NewProvider(k, 42)
	if err := p.Init(fakeSplits(n, recsEach), nil); err != nil {
		t.Fatal(err)
	}
	return p
}

func report(completed, scheduled int, inputRecs, outputRecs int64, grab int) core.Report {
	return core.Report{
		Job: mapreduce.JobStatus{
			CompletedMaps:    completed,
			ScheduledMaps:    scheduled,
			MapInputRecords:  inputRecs,
			MapOutputRecords: outputRecs,
		},
		Cluster:   mapreduce.ClusterStatus{TotalMapSlots: 40},
		GrabLimit: grab,
	}
}

func TestProviderInitRequiresK(t *testing.T) {
	p := NewProvider(0, 1)
	if err := p.Init(fakeSplits(2, 5), nil); err == nil {
		t.Fatal("k=0 accepted without conf")
	}
	// K can come from the JobConf.
	conf := mapreduce.NewJobConf()
	conf.SetInt(mapreduce.ConfSampleSize, 77)
	p = NewProvider(0, 1)
	if err := p.Init(fakeSplits(2, 5), conf); err != nil {
		t.Fatal(err)
	}
	if p.K != 77 {
		t.Fatalf("K = %d", p.K)
	}
}

func TestInitialSplitsRespectGrab(t *testing.T) {
	p := initProvN(t, 100, 20, 10)
	got := p.InitialSplits(4)
	if len(got) != 4 {
		t.Fatalf("initial = %d, want 4", len(got))
	}
	if p.Remaining() != 16 {
		t.Fatalf("remaining = %d", p.Remaining())
	}
	// Unbounded grab takes everything.
	p2 := initProvN(t, 100, 20, 10)
	if got := p2.InitialSplits(math.MaxInt); len(got) != 20 {
		t.Fatalf("unbounded initial = %d", len(got))
	}
}

func TestRandomOrderIsSeededAndUniform(t *testing.T) {
	shared := fakeSplits(50, 1)
	a := NewProvider(10, 42)
	b := NewProvider(10, 42)
	if err := a.Init(shared, nil); err != nil {
		t.Fatal(err)
	}
	if err := b.Init(shared, nil); err != nil {
		t.Fatal(err)
	}
	sa := a.InitialSplits(50)
	sb := b.InitialSplits(50)
	for i := range sa {
		if sa[i].Block != sb[i].Block {
			t.Fatal("same seed produced different orders")
		}
	}
	c := NewProvider(10, 43)
	c.Init(shared, nil)
	sc := c.InitialSplits(50)
	same := 0
	for i := range sa {
		if sa[i].Block == sc[i].Block {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical orders")
	}
}

func TestEndOfInputWhenSampleComplete(t *testing.T) {
	p := initProvN(t, 100, 20, 1000)
	p.InitialSplits(4)
	resp, _ := p.Next(report(4, 4, 4000, 100, 8))
	if resp != core.EndOfInput {
		t.Fatalf("resp = %v, want end of input (output == k)", resp)
	}
	resp, _ = p.Next(report(4, 4, 4000, 150, 8))
	if resp != core.EndOfInput {
		t.Fatalf("resp = %v, want end of input (output > k)", resp)
	}
}

func TestEndOfInputWhenExhausted(t *testing.T) {
	p := initProvN(t, 1000, 4, 100)
	p.InitialSplits(4)
	resp, _ := p.Next(report(4, 4, 400, 1, 8))
	if resp != core.EndOfInput {
		t.Fatalf("resp = %v, want end of input (no partitions left)", resp)
	}
}

func TestWaitWhenGrabZero(t *testing.T) {
	p := initProvN(t, 100, 20, 1000)
	p.InitialSplits(4)
	resp, _ := p.Next(report(4, 4, 4000, 10, 0))
	if resp != core.NoInputAvailable {
		t.Fatalf("resp = %v, want wait-and-see at grab 0", resp)
	}
}

func TestNoStatsFeedsAllowance(t *testing.T) {
	p := initProvN(t, 100, 20, 1000)
	p.InitialSplits(2)
	resp, splits := p.Next(report(0, 2, 0, 0, 5))
	if resp != core.InputAvailable || len(splits) != 5 {
		t.Fatalf("resp = %v with %d splits, want input available with 5", resp, len(splits))
	}
}

func TestSelectivityDrivenGrab(t *testing.T) {
	// 40 splits x 1000 records. After 4 completed maps with 4000
	// records and 40 matches: ρ̂ = 0.01, recs/split = 1000, so each
	// split yields ~10 matches. Deficit = 100-40 = 60 → 6 splits.
	p := initProvN(t, 100, 40, 1000)
	p.InitialSplits(4)
	resp, splits := p.Next(report(4, 4, 4000, 40, 100))
	if resp != core.InputAvailable {
		t.Fatalf("resp = %v", resp)
	}
	if len(splits) != 6 {
		t.Fatalf("grabbed %d splits, want 6 (selectivity estimate)", len(splits))
	}
	if len(p.SelectivityEstimates()) != 1 || p.SelectivityEstimates()[0] != 0.01 {
		t.Fatalf("estimates = %v", p.SelectivityEstimates())
	}
}

func TestGrabBoundedByLimit(t *testing.T) {
	p := initProvN(t, 10000, 40, 1000)
	p.InitialSplits(4)
	// Deficit would need ~100 splits, grab limit is 8.
	resp, splits := p.Next(report(4, 4, 4000, 4, 8))
	if resp != core.InputAvailable || len(splits) != 8 {
		t.Fatalf("resp = %v with %d splits, want 8 (grab-limited)", resp, len(splits))
	}
}

func TestPendingMapsAccountedFor(t *testing.T) {
	// 4 of 12 scheduled maps done: ρ̂ = 0.05 (200 matches in 4000 recs).
	// Pending 8 maps × 1000 recs × 0.05 = 400 expected → with k = 500
	// and 200 found the deficit is 500-200-400 < 0 → wait and see.
	p := initProvN(t, 500, 40, 1000)
	p.InitialSplits(12)
	resp, _ := p.Next(report(4, 12, 4000, 200, 20))
	if resp != core.NoInputAvailable {
		t.Fatalf("resp = %v, want wait-and-see (pending covers deficit)", resp)
	}
}

func TestZeroSelectivityKeepsFeeding(t *testing.T) {
	p := initProvN(t, 100, 40, 1000)
	p.InitialSplits(4)
	resp, splits := p.Next(report(4, 4, 4000, 0, 6))
	if resp != core.InputAvailable || len(splits) != 6 {
		t.Fatalf("resp = %v with %d, want full allowance at ρ̂=0", resp, len(splits))
	}
}

func TestMinimumOneSplit(t *testing.T) {
	// Tiny deficit still grabs at least one split.
	p := initProvN(t, 101, 40, 1000)
	p.InitialSplits(4)
	// 100 matches from 4000 recs; deficit 1; ρ̂ = 0.025 → 40 records →
	// 0.04 splits → ceil → 1.
	resp, splits := p.Next(report(4, 4, 4000, 100, 10))
	if resp != core.InputAvailable || len(splits) != 1 {
		t.Fatalf("resp = %v with %d, want exactly 1 split", resp, len(splits))
	}
}

func TestProviderNeverHandsOutDuplicates(t *testing.T) {
	p := initProvN(t, 1_000_000, 30, 10)
	seen := map[any]bool{}
	count := 0
	mark := func(ss []mapreduce.Split) {
		for _, s := range ss {
			if seen[s.Block] {
				t.Fatal("split handed out twice")
			}
			seen[s.Block] = true
			count++
		}
	}
	mark(p.InitialSplits(7))
	for p.Remaining() > 0 {
		resp, ss := p.Next(report(count, count, int64(count*10), 0, 7))
		if resp == core.EndOfInput {
			break
		}
		mark(ss)
	}
	if count != 30 {
		t.Fatalf("handed out %d splits, want 30", count)
	}
}
