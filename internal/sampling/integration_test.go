package sampling

import (
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/core"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
)

// endToEnd runs a dynamic sampling job over a freshly built dataset
// under the named policy and returns the job client plus dataset.
func endToEnd(t *testing.T, policyName string, k int64, z float64) (*core.JobClient, *dataset.Dataset) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	jt := mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), nil)

	ds, err := dataset.Build(dataset.Spec{
		Scale: 1, Seed: 77, Z: z, Selectivity: 0.002, Partitions: 40, RowsOverride: 400_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]data.Source, ds.NumPartitions())
	for i, p := range ds.Partitions() {
		srcs[i] = p
	}
	f, err := fs.Create(ds.Name(), srcs, 1)
	if err != nil {
		t.Fatal(err)
	}

	proj, err := ds.Schema().Project("L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewJobSpec(ds.Predicate(), k, proj, nil)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.DefaultRegistry().Get(policyName)
	if err != nil {
		t.Fatal(err)
	}
	client, err := core.SubmitDynamic(jt, spec, mapreduce.SplitsForFile(f), NewProvider(k, 3), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(eng, client.Job(), 1e7) {
		t.Fatalf("job did not finish: state=%v providerErr=%v decisions=%+v",
			client.Job().State(), client.ProviderError(), client.Decisions())
	}
	return client, ds
}

func TestEndToEndSampleExact(t *testing.T) {
	// 400k rows at 0.002 selectivity = 800 matches; ask for 100.
	client, ds := endToEnd(t, core.PolicyLA, 100, 1)
	job := client.Job()
	if job.State() != mapreduce.StateSucceeded {
		t.Fatalf("state = %v (%s)", job.State(), job.Failure())
	}
	out := job.Output()
	if len(out) != 100 {
		t.Fatalf("sample size = %d, want exactly 100", len(out))
	}
	// Every record satisfies the predicate... but the output is
	// projected to 3 columns, so check the predicate columns survive
	// indirectly: for z=1 the predicate is on L_QUANTITY which is NOT
	// in the projection — instead verify structure and count here;
	// predicate correctness over unprojected output is covered below.
	for _, kv := range out {
		if kv.Key != DummyKey {
			t.Fatalf("output key %q", kv.Key)
		}
		if kv.Value.Len() != 3 {
			t.Fatalf("projected record has %d cols", kv.Value.Len())
		}
	}
	_ = ds
}

func TestEndToEndUnprojectedSatisfiesPredicate(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	jt := mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), nil)
	ds, err := dataset.Build(dataset.Spec{
		Scale: 1, Seed: 9, Z: 2, Selectivity: 0.002, Partitions: 40, RowsOverride: 400_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]data.Source, ds.NumPartitions())
	for i, p := range ds.Partitions() {
		srcs[i] = p
	}
	f, _ := fs.Create(ds.Name(), srcs, 1)
	spec, _ := NewJobSpec(ds.Predicate(), 50, nil, nil)
	pol, _ := core.DefaultRegistry().Get(core.PolicyMA)
	client, err := core.SubmitDynamic(jt, spec, mapreduce.SplitsForFile(f), NewProvider(50, 1), pol)
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(eng, client.Job(), 1e7) {
		t.Fatal("job did not finish")
	}
	out := client.Job().Output()
	if len(out) != 50 {
		t.Fatalf("sample = %d, want 50", len(out))
	}
	for _, kv := range out {
		ok, err := expr.EvalBool(ds.Predicate(), kv.Value)
		if err != nil || !ok {
			t.Fatalf("sampled record violates predicate: %v (%v)", kv.Value, err)
		}
	}
}

func TestEndToEndDynamicProcessesLessThanHadoop(t *testing.T) {
	cDyn, _ := endToEnd(t, core.PolicyLA, 50, 0)
	cHad, _ := endToEnd(t, core.PolicyHadoop, 50, 0)
	dyn := cDyn.Job().CompletedMaps()
	had := cHad.Job().CompletedMaps()
	if had != 40 {
		t.Fatalf("Hadoop policy processed %d partitions, want all 40", had)
	}
	if dyn >= had {
		t.Fatalf("dynamic job processed %d partitions, Hadoop %d — no savings", dyn, had)
	}
	// Both still produce a full sample.
	if len(cDyn.Job().Output()) != 50 || len(cHad.Job().Output()) != 50 {
		t.Fatalf("samples: dyn=%d had=%d", len(cDyn.Job().Output()), len(cHad.Job().Output()))
	}
}

func TestEndToEndInsufficientMatches(t *testing.T) {
	// Ask for more than exist: job must terminate with all matches.
	client, ds := endToEnd(t, core.PolicyHA, 10_000_000, 0)
	job := client.Job()
	if job.State() != mapreduce.StateSucceeded {
		t.Fatalf("state = %v", job.State())
	}
	if int64(len(job.Output())) != ds.TotalMatches() {
		t.Fatalf("got %d records, dataset has %d matches", len(job.Output()), ds.TotalMatches())
	}
	if job.CompletedMaps() != ds.NumPartitions() {
		t.Fatalf("processed %d partitions; must scan everything when k is unreachable", job.CompletedMaps())
	}
}

func TestEndToEndResponseTimesOrdered(t *testing.T) {
	// Single-user, uniform data: aggressive policies respond faster
	// than conservative ones on an idle cluster (paper Fig. 5 insight 3).
	cHA, _ := endToEnd(t, core.PolicyHA, 100, 0)
	cC, _ := endToEnd(t, core.PolicyC, 100, 0)
	if cHA.Job().ResponseTime() >= cC.Job().ResponseTime() {
		t.Fatalf("HA response %v >= C response %v on idle cluster",
			cHA.Job().ResponseTime(), cC.Job().ResponseTime())
	}
}
