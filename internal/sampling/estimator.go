package sampling

import (
	"fmt"
	"math"
	"math/rand"

	"dynamicmr/internal/core"
	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/mapreduce"
)

// Selectivity estimation is the second application of the incremental
// mechanism, realising §VI's suggestion (after Babu [3]) of "an
// efficient sampling harness that could be used to build partial
// statistics": a dynamic job consumes randomly-ordered partitions
// until the normal-approximation confidence interval around the
// observed match rate is tight enough, then stops — no fixed sample
// size, no full scan.

// CounterMatches is the user counter the counting mapper reports match
// counts under.
const CounterMatches = "estimator.matches"

// CountSource is implemented by sources that can report the match
// count for a fingerprinted predicate without scanning (the dataset
// package's planted partitions).
type CountSource interface {
	AcceleratedMatchCount(fingerprint string) (int64, bool)
}

// CountingMapper evaluates the predicate over its split and reports
// only the match count (via user counter), emitting no records — the
// cheapest possible statistics pass.
type CountingMapper struct {
	// Predicate is the condition whose selectivity is being estimated.
	Predicate expr.Expr
}

// Map implements mapreduce.Mapper.
func (m *CountingMapper) Map(rec data.Record, out *mapreduce.Collector) error {
	ok, err := expr.EvalBool(m.Predicate, rec)
	if err != nil {
		return err
	}
	if ok {
		out.Inc(CounterMatches, 1)
	}
	return nil
}

// MapSplit implements mapreduce.SplitMapper with count acceleration.
func (m *CountingMapper) MapSplit(ctx *mapreduce.TaskContext, out *mapreduce.Collector) error {
	if cs, ok := ctx.Source.(CountSource); ok {
		if n, hit := cs.AcceleratedMatchCount(m.Predicate.String()); hit {
			out.Inc(CounterMatches, n)
			return nil
		}
	}
	var scanErr error
	ctx.Source.Scan(func(rec data.Record) bool {
		if err := m.Map(rec, out); err != nil {
			scanErr = err
			return false
		}
		return true
	})
	return scanErr
}

// Estimate is the harness's result.
type Estimate struct {
	// Selectivity is the estimated match fraction p̂.
	Selectivity float64
	// Matches and Records are the observed totals.
	Matches int64
	Records int64
	// HalfWidth is the final confidence-interval half width (absolute).
	HalfWidth float64
	// RelativeError is HalfWidth / Selectivity.
	RelativeError float64
}

// EstimatorProvider is the statistics-harness Input Provider: it keeps
// adding randomly-chosen partitions (within the policy's grab limit)
// until the estimate p̂ = matches/records satisfies
//
//	z · sqrt(p̂(1-p̂)/records) ≤ MaxRelErr · p̂
//
// with at least MinMatches matches observed (so zero-match prefixes
// don't terminate the job with a degenerate interval).
type EstimatorProvider struct {
	// MaxRelErr is the target relative half-width (e.g. 0.1 = ±10%).
	MaxRelErr float64
	// Confidence selects z: 0 means 95% (z = 1.96).
	Confidence float64
	// MinMatches guards against early termination (default 30).
	MinMatches int64
	// Seed drives the random partition order.
	Seed int64

	splits []mapreduce.Split
	cursor int
	last   Estimate
}

// NewEstimatorProvider builds the provider for a target relative error.
func NewEstimatorProvider(maxRelErr float64, seed int64) *EstimatorProvider {
	return &EstimatorProvider{MaxRelErr: maxRelErr, Seed: seed}
}

// z returns the normal quantile for the configured confidence.
func (p *EstimatorProvider) z() float64 {
	switch p.Confidence {
	case 0, 0.95:
		return 1.96
	case 0.90:
		return 1.645
	case 0.99:
		return 2.576
	default:
		// Coarse fallback for other confidences.
		return 1.96
	}
}

// Init implements core.InputProvider.
func (p *EstimatorProvider) Init(all []mapreduce.Split, conf *mapreduce.JobConf) error {
	if p.MaxRelErr <= 0 || p.MaxRelErr >= 1 {
		return fmt.Errorf("sampling: estimator MaxRelErr %v outside (0,1)", p.MaxRelErr)
	}
	if p.MinMatches == 0 {
		p.MinMatches = 30
	}
	p.splits = append([]mapreduce.Split(nil), all...)
	rng := rand.New(rand.NewSource(p.Seed))
	rng.Shuffle(len(p.splits), func(i, j int) {
		p.splits[i], p.splits[j] = p.splits[j], p.splits[i]
	})
	// Informed ordering biases the estimator: the early prefix
	// over-represents match-rich partitions, so p̂ starts high and the
	// stopping rule can fire sooner than a uniform draw justifies. That
	// is the flag's explicit trade (fast biased statistics); leave the
	// flag off for unbiased estimates.
	if fp, ok := informedGrab(conf); ok {
		informedOrder(p.splits, fp)
	}
	p.cursor = 0
	return nil
}

// InitialSplits implements core.InputProvider. Grabs beyond the
// remaining unscanned splits clamp to the remainder (see take): no
// split is duplicated or dropped under any ordering.
func (p *EstimatorProvider) InitialSplits(grab int) []mapreduce.Split {
	return p.take(grab)
}

// take clamps n to [0, remaining] and advances the cursor; see
// Provider.take for the no-duplicate/no-drop contract.
func (p *EstimatorProvider) take(n int) []mapreduce.Split {
	if n < 0 {
		n = 0
	}
	if rem := len(p.splits) - p.cursor; n > rem {
		n = rem
	}
	out := p.splits[p.cursor : p.cursor+n]
	p.cursor += n
	return out
}

// Last returns the most recent estimate (valid once the job ends).
func (p *EstimatorProvider) Last() Estimate { return p.last }

// Next implements core.InputProvider.
func (p *EstimatorProvider) Next(rep core.Report) (core.Response, []mapreduce.Split) {
	records := rep.Job.MapInputRecords
	matches := rep.Job.UserCounters[CounterMatches]
	if records > 0 {
		phat := float64(matches) / float64(records)
		hw := p.z() * math.Sqrt(phat*(1-phat)/float64(records))
		p.last = Estimate{
			Selectivity: phat,
			Matches:     matches,
			Records:     records,
			HalfWidth:   hw,
		}
		if phat > 0 {
			p.last.RelativeError = hw / phat
			if matches >= p.MinMatches && p.last.RelativeError <= p.MaxRelErr {
				return core.EndOfInput, nil
			}
		}
	}
	if p.cursor >= len(p.splits) {
		return core.EndOfInput, nil
	}
	if rep.GrabLimit <= 0 {
		return core.NoInputAvailable, nil
	}
	// Feed within the allowance; without a stopping-rule hit, keep
	// sampling partitions.
	return core.InputAvailable, p.take(rep.GrabLimit)
}

// NewEstimationJobSpec assembles the counting job for a predicate.
func NewEstimationJobSpec(pred expr.Expr, conf *mapreduce.JobConf) (mapreduce.JobSpec, error) {
	if pred == nil {
		return mapreduce.JobSpec{}, fmt.Errorf("sampling: predicate required")
	}
	if conf == nil {
		conf = mapreduce.NewJobConf()
	}
	conf.Set(mapreduce.ConfPredicate, pred.String())
	conf.SetInt(mapreduce.ConfNumReduces, 1)
	return mapreduce.JobSpec{
		Conf:      conf,
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper { return &CountingMapper{Predicate: pred} },
		// The match count is a function of only the matching records, so
		// skip/index reads leave it unchanged. (The job stays un-memoised:
		// its value is the counter, not the empty output.)
		FilterFingerprint: pred.String(),
	}, nil
}

var _ core.InputProvider = (*EstimatorProvider)(nil)
