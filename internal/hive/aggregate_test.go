package hive

import (
	"math"
	"strings"
	"testing"

	"dynamicmr/internal/data"
)

func TestParseAggregates(t *testing.T) {
	sel := parseSelect(t,
		"SELECT L_RETURNFLAG, COUNT(*), SUM(L_QUANTITY), AVG(L_DISCOUNT), MIN(L_SHIPDATE), MAX(L_TAX) "+
			"FROM lineitem GROUP BY L_RETURNFLAG")
	if !sel.HasAggregates() {
		t.Fatal("aggregates not detected")
	}
	if len(sel.Items) != 6 {
		t.Fatalf("items = %d", len(sel.Items))
	}
	if sel.Items[1].Agg != "COUNT" || sel.Items[1].AggCol != "" {
		t.Fatalf("COUNT(*) parsed as %+v", sel.Items[1])
	}
	if sel.Items[2].Agg != "SUM" || sel.Items[2].AggCol != "L_QUANTITY" {
		t.Fatalf("SUM parsed as %+v", sel.Items[2])
	}
	if len(sel.GroupBy) != 1 || sel.GroupBy[0] != "L_RETURNFLAG" {
		t.Fatalf("group by = %v", sel.GroupBy)
	}
	// Print/reparse fixpoint for aggregate queries.
	s2 := parseSelect(t, sel.String())
	if sel.String() != s2.String() {
		t.Fatalf("fixpoint:\n%s\n%s", sel, s2)
	}
}

func TestParseAggregateErrors(t *testing.T) {
	bad := []string{
		"SELECT SUM(*) FROM t",
		"SELECT COUNT( FROM t",
		"SELECT COUNT(5) FROM t",
		"SELECT AVG() FROM t",
		"SELECT a FROM t GROUP BY",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestAggregateCountQuery(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("anna")
	res, err := s.Execute("SELECT COUNT(*) FROM lineitem WHERE L_DISCOUNT = 0.11")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	got := res.Rows[0].MustGet("COUNT(*)").AsInt()
	if got != r.ds.TotalMatches() {
		t.Fatalf("COUNT(*) = %d, want %d", got, r.ds.TotalMatches())
	}
	if res.Client != nil {
		t.Fatal("aggregate query must run statically")
	}
}

func TestAggregateCountAll(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("ben")
	res, err := s.Execute("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].At(0).AsInt(); got != r.ds.TotalRows() {
		t.Fatalf("COUNT(*) = %d, want %d", got, r.ds.TotalRows())
	}
}

func TestAggregateGroupBy(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("cleo")
	res, err := s.Execute(
		"SELECT L_RETURNFLAG, COUNT(*) FROM lineitem GROUP BY L_RETURNFLAG")
	if err != nil {
		t.Fatal(err)
	}
	// Natural returnflags are R, A, N.
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %d, want 3: %v", len(res.Rows), res.Rows)
	}
	var total int64
	flags := map[string]bool{}
	for _, row := range res.Rows {
		flags[row.MustGet("L_RETURNFLAG").AsString()] = true
		total += row.MustGet("COUNT(*)").AsInt()
	}
	if total != r.ds.TotalRows() {
		t.Fatalf("group counts sum %d, want %d", total, r.ds.TotalRows())
	}
	for _, f := range []string{"R", "A", "N"} {
		if !flags[f] {
			t.Fatalf("missing group %q", f)
		}
	}
}

func TestAggregateSumAvgMinMax(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("dora")
	res, err := s.Execute(
		"SELECT COUNT(L_QUANTITY), SUM(L_QUANTITY), AVG(L_QUANTITY), MIN(L_QUANTITY), MAX(L_QUANTITY) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	row := res.Rows[0]
	cnt := row.MustGet("COUNT(L_QUANTITY)").AsInt()
	sum := row.MustGet("SUM(L_QUANTITY)").AsFloat()
	avg := row.MustGet("AVG(L_QUANTITY)").AsFloat()
	minv := row.MustGet("MIN(L_QUANTITY)").AsInt()
	maxv := row.MustGet("MAX(L_QUANTITY)").AsInt()
	if cnt != r.ds.TotalRows() {
		t.Fatalf("count = %d", cnt)
	}
	if math.Abs(avg-sum/float64(cnt)) > 1e-9 {
		t.Fatalf("avg %v inconsistent with sum/count %v", avg, sum/float64(cnt))
	}
	// Natural quantities are 1..50 (none planted at z=0).
	if minv != 1 || maxv != 50 {
		t.Fatalf("min/max = %d/%d, want 1/50", minv, maxv)
	}
	if avg < 24 || avg > 27 {
		t.Fatalf("avg quantity = %v, expected ≈25.5", avg)
	}
}

func TestAggregateSemanticErrors(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("errs")
	for _, q := range []string{
		"SELECT L_RETURNFLAG, COUNT(*) FROM lineitem",             // col not grouped
		"SELECT COUNT(*) FROM lineitem GROUP BY NOPE",             // unknown group col
		"SELECT SUM(NOPE) FROM lineitem",                          // unknown agg col
		"SELECT L_RETURNFLAG FROM lineitem GROUP BY L_RETURNFLAG", // group by without aggregates
		"SELECT SUM(L_SHIPMODE) FROM lineitem",                    // non-numeric sum
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("Execute(%q) succeeded", q)
		}
	}
}

func TestAggregateWithLimit(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("lim")
	res, err := s.Execute(
		"SELECT L_LINENUMBER, COUNT(*) FROM lineitem GROUP BY L_LINENUMBER LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want LIMIT 2", len(res.Rows))
	}
}

func TestAggregateExplain(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("exp")
	res, err := s.Execute("EXPLAIN SELECT L_RETURNFLAG, AVG(L_TAX) FROM lineitem GROUP BY L_RETURNFLAG")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "AGGREGATE") || !strings.Contains(res.Text, "GROUP BY: L_RETURNFLAG") {
		t.Fatalf("explain:\n%s", res.Text)
	}
	if !strings.Contains(res.Text, "static job") {
		t.Fatalf("aggregates should plan statically:\n%s", res.Text)
	}
}

func TestAggregateUsesCombiner(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("comb")
	res, err := s.Execute("SELECT COUNT(*) FROM lineitem")
	if err != nil {
		t.Fatal(err)
	}
	// With 40 map tasks and one group, the combiner collapses each
	// task's output to a single partial: reduce input = 40 pairs.
	if res.Job.Counters.ReduceInputRecs != 40 {
		t.Fatalf("reduce input = %d, want 40 partials", res.Job.Counters.ReduceInputRecs)
	}
}

func TestAggregateAcceleratedMatchesScan(t *testing.T) {
	// COUNT over the planted predicate uses the accelerated path; the
	// result must equal the planted count (which the scan path also
	// produces — equivalence of the paths is covered in dataset tests).
	r := newSessionRig(t, 2)
	s := r.session("acc")
	res, err := s.Execute("SELECT COUNT(*) FROM lineitem WHERE L_SHIPMODE = 'DRONE'")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Rows[0].At(0).AsInt(); got != r.ds.TotalMatches() {
		t.Fatalf("accelerated COUNT = %d, want %d", got, r.ds.TotalMatches())
	}
}

func TestAggregateAvgEmptyIsNull(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("nul")
	res, err := s.Execute("SELECT AVG(L_QUANTITY), COUNT(*) FROM lineitem WHERE L_QUANTITY > 50")
	if err != nil {
		t.Fatal(err)
	}
	// z=0 dataset has no L_QUANTITY > 50 rows at all... but also no
	// matching rows means the reduce gets zero pairs and emits nothing.
	if len(res.Rows) != 0 {
		// Acceptable alternative: one row with NULL avg and 0 count.
		row := res.Rows[0]
		if !row.At(0).IsNull() || row.At(1).AsInt() != 0 {
			t.Fatalf("empty aggregate row = %v", row)
		}
	}
	_ = data.Null()
}
