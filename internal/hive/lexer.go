// Package hive implements a miniature HiveQL front end (§IV): a lexer,
// recursive-descent parser and compiler that turn
//
//	SELECT cols FROM table WHERE predicate LIMIT k
//
// into a (dynamic) MapReduce job whose JobConf carries the paper's
// dynamic.job / dynamic.job.policy / dynamic.input.provider parameters,
// plus SET for conf overrides, EXPLAIN, SHOW TABLES and DESCRIBE.
package hive

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tkEOF tokenKind = iota
	tkIdent
	tkKeyword
	tkNumber
	tkString
	tkOp
)

type token struct {
	kind tokenKind
	text string // keywords upper-cased; idents preserved; ops literal
	pos  int    // byte offset, for error messages
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "LIMIT": true,
	"AND": true, "OR": true, "NOT": true, "BETWEEN": true, "IN": true,
	"LIKE": true, "SET": true, "EXPLAIN": true, "SHOW": true,
	"TABLES": true, "DESCRIBE": true, "TRUE": true, "FALSE": true,
	"NULL": true, "AS": true, "GROUP": true, "BY": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"ORDER": true, "ASC": true, "DESC": true,
}

// lex tokenises a statement. SQL strings use single quotes with ”
// escaping; -- starts a line comment.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < len(src) && src[i+1] == '-':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsDigit(rune(c)) || (c == '.' && i+1 < len(src) && unicode.IsDigit(rune(src[i+1]))):
			j := i
			seenDot := false
			for j < len(src) {
				d := src[j]
				if unicode.IsDigit(rune(d)) {
					j++
				} else if d == '.' && !seenDot {
					seenDot = true
					j++
				} else {
					break
				}
			}
			toks = append(toks, token{kind: tkNumber, text: src[i:j], pos: i})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			word := src[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{kind: tkKeyword, text: up, pos: i})
			} else {
				toks = append(toks, token{kind: tkIdent, text: word, pos: i})
			}
			i = j
		case c == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < len(src) {
				if src[j] == '\'' {
					if j+1 < len(src) && src[j+1] == '\'' {
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					j++
					break
				}
				sb.WriteByte(src[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("hive: unterminated string at offset %d", i)
			}
			toks = append(toks, token{kind: tkString, text: sb.String(), pos: i})
			i = j
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "!=", "<>", "==":
				toks = append(toks, token{kind: tkOp, text: two, pos: i})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', ';':
				toks = append(toks, token{kind: tkOp, text: string(c), pos: i})
				i++
			default:
				return nil, fmt.Errorf("hive: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, token{kind: tkEOF, pos: len(src)})
	return toks, nil
}
