package hive

import (
	"strings"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/core"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/tpch"
)

// sessionRig builds a cluster with a small LINEITEM table registered.
type sessionRig struct {
	eng     *sim.Engine
	jt      *mapreduce.JobTracker
	catalog *Catalog
	ds      *dataset.Dataset
}

func newSessionRig(t *testing.T, z float64) *sessionRig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	jt := mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), nil)
	ds, err := dataset.Build(dataset.Spec{
		Scale: 1, Seed: 21, Z: z, Selectivity: 0.002, Partitions: 40, RowsOverride: 200_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srcs := make([]data.Source, ds.NumPartitions())
	for i, p := range ds.Partitions() {
		srcs[i] = p
	}
	f, err := fs.Create("lineitem", srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	catalog := NewCatalog()
	if err := catalog.Register(&Table{Name: "lineitem", Schema: tpch.LineItemSchema, File: f}); err != nil {
		t.Fatal(err)
	}
	return &sessionRig{eng: eng, jt: jt, catalog: catalog, ds: ds}
}

func (r *sessionRig) session(user string) *Session {
	return NewSession(r.jt, r.catalog, nil, user)
}

func TestSessionSamplingQuery(t *testing.T) {
	r := newSessionRig(t, 1)
	s := r.session("alice")
	res, err := s.Execute(
		"SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 100")
	if err != nil {
		t.Fatal(err)
	}
	if res.Kind != ResultRows {
		t.Fatalf("kind = %v", res.Kind)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("rows = %d, want 100", len(res.Rows))
	}
	if len(res.Columns) != 3 || res.Columns[0] != "L_ORDERKEY" {
		t.Fatalf("columns = %v", res.Columns)
	}
	if res.Client == nil {
		t.Fatal("LIMIT query should run dynamically by default")
	}
	if !res.Job.Conf.GetBool(mapreduce.ConfDynamicJob, false) {
		t.Fatal("dynamic.job not stamped by compiler")
	}
	if res.Job.Conf.Get(mapreduce.ConfDynamicPolicy, "") != DefaultPolicy {
		t.Fatalf("policy = %q", res.Job.Conf.Get(mapreduce.ConfDynamicPolicy, ""))
	}
	// Dynamic execution should have saved work.
	if res.Job.CompletedMaps() >= r.ds.NumPartitions() {
		t.Fatalf("processed all %d partitions despite dynamic execution", res.Job.CompletedMaps())
	}
}

func TestSessionPolicySelection(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("bob")
	if _, err := s.Execute("SET dynamic.job.policy = C"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Client == nil || res.Client.Policy().Name != core.PolicyC {
		t.Fatalf("policy not applied: %+v", res.Client)
	}
}

func TestSessionAdaptivePolicy(t *testing.T) {
	r := newSessionRig(t, 1)
	s := r.session("ada")
	s.Execute("SET dynamic.job.policy = Adaptive")
	res, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_QUANTITY > 50 LIMIT 100")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 100 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Client == nil || res.Client.Policy().Name != "Adaptive" {
		t.Fatalf("adaptive policy not engaged: %+v", res.Client.Policy())
	}
}

func TestSessionUnknownPolicyErrors(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("bob")
	s.Execute("SET dynamic.job.policy = bogus")
	_, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 10")
	if err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("err = %v", err)
	}
}

func TestSessionStaticOverride(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("carol")
	s.Execute("SET dynamic.job = false")
	res, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 10")
	if err != nil {
		t.Fatal(err)
	}
	if res.Client != nil {
		t.Fatal("static override ignored")
	}
	if res.Job.CompletedMaps() != r.ds.NumPartitions() {
		t.Fatalf("static job processed %d partitions, want all", res.Job.CompletedMaps())
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestSessionScanQuery(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("dave")
	// No LIMIT: a select-project query (the heterogeneous workload's
	// Non-Sampling class). Runs statically and returns every match.
	res, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11")
	if err != nil {
		t.Fatal(err)
	}
	if res.Client != nil {
		t.Fatal("scan query should be static")
	}
	if int64(len(res.Rows)) != r.ds.TotalMatches() {
		t.Fatalf("rows = %d, want all %d matches", len(res.Rows), r.ds.TotalMatches())
	}
}

func TestSessionSelectStarSchema(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("eve")
	res, err := s.Execute("SELECT * FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 16 {
		t.Fatalf("star projection returned %d columns", len(res.Columns))
	}
	for _, row := range res.Rows {
		if row.MustGet("L_DISCOUNT").AsFloat() != 0.11 {
			t.Fatalf("row violates predicate: %v", row)
		}
	}
}

func TestSessionLimitZero(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("zed")
	res, err := s.Execute("SELECT * FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Fatalf("LIMIT 0 returned %d rows", len(res.Rows))
	}
}

func TestSessionErrors(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("erin")
	for _, q := range []string{
		"SELECT * FROM nope LIMIT 1",
		"SELECT NOPE_COL FROM lineitem LIMIT 1",
		"SELECT * FROM lineitem WHERE NOPE = 1 LIMIT 1",
		"SELECT * FRM lineitem",
	} {
		if _, err := s.Execute(q); err == nil {
			t.Errorf("Execute(%q) succeeded", q)
		}
	}
}

func TestSessionExplain(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("frank")
	res, err := s.Execute("EXPLAIN SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 100")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"dynamic job", "POLICY: LA", "SAMPLE SIZE: 100", "INPUT PROVIDER", "40 partitions"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("explain output missing %q:\n%s", want, res.Text)
		}
	}
}

func TestSessionShowAndDescribe(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("gina")
	res, err := s.Execute("SHOW TABLES")
	if err != nil || !strings.Contains(res.Text, "lineitem") {
		t.Fatalf("SHOW TABLES = %q, %v", res.Text, err)
	}
	res, err = s.Execute("DESCRIBE lineitem")
	if err != nil || !strings.Contains(res.Text, "L_SHIPMODE") {
		t.Fatalf("DESCRIBE = %q, %v", res.Text, err)
	}
}

func TestSessionDeadlineExceeded(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("hasty")
	// A deadline far below any job's runtime must error, not hang.
	s.Execute("SET hive.exec.deadline.seconds = 0.5")
	_, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 5")
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want deadline error", err)
	}
	// Raising the deadline makes the same query succeed.
	s.Execute("SET hive.exec.deadline.seconds = 100000")
	if _, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 5"); err != nil {
		t.Fatal(err)
	}
}

func TestSessionUserFlowsToJob(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("hank")
	res, err := s.Execute("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	if res.Job.User != "hank" {
		t.Fatalf("job user = %q", res.Job.User)
	}
}

func TestSubmitAsync(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("ida")
	client, job, err := s.SubmitAsync("SELECT L_ORDERKEY FROM lineitem WHERE L_DISCOUNT = 0.11 LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	if client == nil || job.Done() {
		t.Fatal("job should be in flight")
	}
	if !mapreduce.RunUntilDone(r.eng, job, 1e7) {
		t.Fatal("async job did not finish")
	}
	if len(job.Output()) != 20 {
		t.Fatalf("output = %d", len(job.Output()))
	}
	if _, _, err := s.SubmitAsync("SET a = b"); err == nil {
		t.Fatal("SubmitAsync accepted non-SELECT")
	}
}
