package hive

import (
	"fmt"
	"strings"

	"dynamicmr/internal/expr"
)

// Statement is any parsed HiveQL statement.
type Statement interface {
	// String renders the statement in re-parseable SQL.
	String() string
}

// SelectItem is one entry of a SELECT list: a plain column or an
// aggregate call.
type SelectItem struct {
	// Column is the column name for plain items (Agg == "").
	Column string
	// Agg is the aggregate function (COUNT, SUM, AVG, MIN, MAX); ""
	// for plain columns.
	Agg string
	// AggCol is the aggregate's argument column; "" means COUNT(*).
	AggCol string
}

// IsAggregate reports whether the item is an aggregate call.
func (it SelectItem) IsAggregate() bool { return it.Agg != "" }

// Name returns the item's output column name.
func (it SelectItem) Name() string {
	if !it.IsAggregate() {
		return it.Column
	}
	arg := it.AggCol
	if arg == "" {
		arg = "*"
	}
	return fmt.Sprintf("%s(%s)", it.Agg, arg)
}

// String renders the item in SQL.
func (it SelectItem) String() string { return it.Name() }

// OrderKey is one ORDER BY entry.
type OrderKey struct {
	// Column is the output column to sort by.
	Column string
	// Desc selects descending order.
	Desc bool
}

// String renders the key in SQL.
func (k OrderKey) String() string {
	if k.Desc {
		return k.Column + " DESC"
	}
	return k.Column
}

// SelectStmt is
// SELECT items FROM table [WHERE pred] [GROUP BY cols]
// [ORDER BY keys] [LIMIT k].
type SelectStmt struct {
	// Items lists the projection; nil means "*" (Star selects).
	Items []SelectItem
	// Table is the source table name.
	Table string
	// Where is the predicate; nil means none.
	Where expr.Expr
	// GroupBy lists the grouping columns; nil means none.
	GroupBy []string
	// OrderBy lists the sort keys; nil means none. ORDER BY forces a
	// full (static) scan — a sorted LIMIT is a top-k query, not a
	// sample.
	OrderBy []OrderKey
	// Limit is the LIMIT value; -1 means absent.
	Limit int64
}

// Columns returns the plain projection column names, or nil for "*" or
// aggregate queries.
func (s *SelectStmt) Columns() []string {
	if s.Items == nil || s.HasAggregates() {
		return nil
	}
	out := make([]string, len(s.Items))
	for i, it := range s.Items {
		out[i] = it.Column
	}
	return out
}

// HasAggregates reports whether any select item is an aggregate.
func (s *SelectStmt) HasAggregates() bool {
	for _, it := range s.Items {
		if it.IsAggregate() {
			return true
		}
	}
	return false
}

// String implements Statement.
func (s *SelectStmt) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Items == nil {
		b.WriteString("*")
	} else {
		for i, it := range s.Items {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(it.String())
		}
	}
	fmt.Fprintf(&b, " FROM %s", s.Table)
	if s.Where != nil {
		fmt.Fprintf(&b, " WHERE %s", s.Where)
	}
	if len(s.GroupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(s.GroupBy, ", "))
	}
	if len(s.OrderBy) > 0 {
		keys := make([]string, len(s.OrderBy))
		for i, k := range s.OrderBy {
			keys[i] = k.String()
		}
		fmt.Fprintf(&b, " ORDER BY %s", strings.Join(keys, ", "))
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	return b.String()
}

// SetStmt is SET key = value (Hive's conf override mechanism; the paper
// selects the policy by "setting the dynamic.job.policy parameter
// accordingly" from the CLI).
type SetStmt struct {
	Key   string
	Value string
}

// String implements Statement.
func (s *SetStmt) String() string { return fmt.Sprintf("SET %s = %s", s.Key, s.Value) }

// ExplainStmt is EXPLAIN <select>.
type ExplainStmt struct {
	Select *SelectStmt
}

// String implements Statement.
func (s *ExplainStmt) String() string { return "EXPLAIN " + s.Select.String() }

// ShowTablesStmt is SHOW TABLES.
type ShowTablesStmt struct{}

// String implements Statement.
func (ShowTablesStmt) String() string { return "SHOW TABLES" }

// DescribeStmt is DESCRIBE <table>.
type DescribeStmt struct {
	Table string
}

// String implements Statement.
func (s *DescribeStmt) String() string { return "DESCRIBE " + s.Table }
