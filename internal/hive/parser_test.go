package hive

import (
	"strings"
	"testing"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
)

func parseSelect(t *testing.T, sql string) *SelectStmt {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want SelectStmt", sql, stmt)
	}
	return sel
}

func TestParsePaperQuery(t *testing.T) {
	// The §V-B query template.
	sel := parseSelect(t,
		"SELECT ORDERKEY, PARTKEY, SUPPKEY FROM LINEITEM WHERE L_QUANTITY > 50 LIMIT 10000")
	cols := sel.Columns()
	if len(cols) != 3 || cols[0] != "ORDERKEY" {
		t.Fatalf("columns = %v", cols)
	}
	if sel.Table != "LINEITEM" {
		t.Fatalf("table = %q", sel.Table)
	}
	if sel.Limit != 10000 {
		t.Fatalf("limit = %d", sel.Limit)
	}
	if sel.Where == nil || sel.Where.String() != "(L_QUANTITY > 50)" {
		t.Fatalf("where = %v", sel.Where)
	}
}

func TestParseStar(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t")
	if sel.Items != nil || sel.Columns() != nil {
		t.Fatalf("items = %v, want nil (*)", sel.Items)
	}
	if sel.Limit != -1 {
		t.Fatalf("limit = %d, want -1 (absent)", sel.Limit)
	}
	if sel.Where != nil {
		t.Fatal("where should be absent")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	cases := map[string]string{
		"a = 1 AND b = 2 OR c = 3":     "(((A = 1) AND (B = 2)) OR (C = 3))",
		"a = 1 OR b = 2 AND c = 3":     "((A = 1) OR ((B = 2) AND (C = 3)))",
		"NOT a = 1 AND b = 2":          "((NOT (A = 1)) AND (B = 2))",
		"a + b * c = 7":                "((A + (B * C)) = 7)",
		"(a + b) * c = 7":              "(((A + B) * C) = 7)",
		"a - b - c = 0":                "(((A - B) - C) = 0)",
		"a BETWEEN 1 AND 10":           "(A BETWEEN 1 AND 10)",
		"a NOT BETWEEN 1 AND 10":       "(NOT (A BETWEEN 1 AND 10))",
		"s IN ('x', 'y')":              "(S IN ('x', 'y'))",
		"s NOT IN ('x')":               "(NOT (S IN ('x')))",
		"s LIKE 'RA%'":                 "(S LIKE 'RA%')",
		"s NOT LIKE '%z'":              "(NOT (S LIKE '%z'))",
		"a != 2":                       "(A != 2)",
		"a <> 2":                       "(A != 2)",
		"a <= 0.05":                    "(A <= 0.05)",
		"d = '1994-01-01'":             "(D = '1994-01-01')",
		"-a < -5":                      "((-A) < -5)",
		"price * (1 - discount) > 900": "((PRICE * (1 - DISCOUNT)) > 900)",
	}
	for src, want := range cases {
		e, err := ParsePredicate(src)
		if err != nil {
			t.Errorf("ParsePredicate(%q): %v", src, err)
			continue
		}
		if e.String() != want {
			t.Errorf("ParsePredicate(%q) = %s, want %s", src, e, want)
		}
	}
}

func TestPredicateEvaluates(t *testing.T) {
	schema := data.NewSchema("Q", "MODE")
	rec := data.NewRecord(schema, []data.Value{data.Int(55), data.Str("RAIL")})
	e, err := ParsePredicate("q > 50 AND mode IN ('RAIL','AIR')")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := expr.EvalBool(e, rec)
	if err != nil || !ok {
		t.Fatalf("eval = %v, %v", ok, err)
	}
}

func TestParseReparseFixpoint(t *testing.T) {
	queries := []string{
		"SELECT A, B FROM t WHERE (A > 1) AND (B LIKE 'x%') LIMIT 5",
		"SELECT * FROM lineitem WHERE L_DISCOUNT = 0.11",
		"SELECT C FROM t WHERE C BETWEEN 1 AND 2 LIMIT 0",
	}
	for _, q := range queries {
		s1 := parseSelect(t, q)
		s2 := parseSelect(t, s1.String())
		if s1.String() != s2.String() {
			t.Errorf("fixpoint failed:\n1: %s\n2: %s", s1, s2)
		}
	}
}

func TestParseSet(t *testing.T) {
	stmt, err := Parse("SET dynamic.job.policy = LA")
	if err != nil {
		t.Fatal(err)
	}
	set, ok := stmt.(*SetStmt)
	if !ok || set.Key != "dynamic.job.policy" || set.Value != "LA" {
		t.Fatalf("parsed %+v", stmt)
	}
	stmt, _ = Parse("SET hive.exec.deadline.seconds = 3600;")
	if set := stmt.(*SetStmt); set.Value != "3600" {
		t.Fatalf("value = %q", set.Value)
	}
}

func TestParseOtherStatements(t *testing.T) {
	if _, err := Parse("SHOW TABLES"); err != nil {
		t.Error(err)
	}
	stmt, err := Parse("DESCRIBE lineitem")
	if err != nil {
		t.Error(err)
	}
	if d := stmt.(*DescribeStmt); d.Table != "lineitem" {
		t.Errorf("table = %q", d.Table)
	}
	stmt, err = Parse("EXPLAIN SELECT * FROM t LIMIT 3")
	if err != nil {
		t.Error(err)
	}
	if e := stmt.(*ExplainStmt); e.Select.Limit != 3 {
		t.Errorf("explain select = %+v", e.Select)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC * FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT x",
		"SELECT * FROM t LIMIT -1",
		"SELECT a b FROM t",
		"SELECT * FROM t WHERE a >",
		"SELECT * FROM t WHERE a LIKE 5",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT * FROM t WHERE 'unterminated",
		"SET x",
		"SET = 5",
		"SHOW",
		"DESCRIBE",
		"SELECT * FROM t; extra",
		"SELECT * FROM t WHERE a NOT",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestLexerStrings(t *testing.T) {
	e, err := ParsePredicate("name = 'o''neil'")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(e.String(), "o''neil") {
		t.Fatalf("escaped quote lost: %s", e)
	}
}

func TestLexerComments(t *testing.T) {
	sel := parseSelect(t, "SELECT * FROM t -- trailing comment\nWHERE a = 1")
	if sel.Where == nil {
		t.Fatal("comment swallowed WHERE clause")
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	sel := parseSelect(t, "select a from T where a between 1 and 2 limit 7")
	if sel.Limit != 7 || sel.Where == nil {
		t.Fatalf("parsed %+v", sel)
	}
}

func TestBoolLiterals(t *testing.T) {
	e, err := ParsePredicate("TRUE OR FALSE")
	if err != nil {
		t.Fatal(err)
	}
	ok, err := expr.EvalBool(e, data.NewRecord(data.NewSchema("X"), []data.Value{data.Int(0)}))
	if err != nil || !ok {
		t.Fatalf("TRUE OR FALSE = %v, %v", ok, err)
	}
}
