package hive

import "testing"

func BenchmarkParseQuery(b *testing.B) {
	const q = "SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM LINEITEM WHERE L_QUANTITY > 50 AND L_SHIPMODE IN ('RAIL','AIR') LIMIT 10000"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParsePredicate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParsePredicate("L_EXTENDEDPRICE * (1 - L_DISCOUNT) > 900 AND L_SHIPDATE BETWEEN '1994-01-01' AND '1994-12-31'"); err != nil {
			b.Fatal(err)
		}
	}
}
