package hive

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sort"
	"strings"

	"dynamicmr/internal/core"
	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/sampling"
	"dynamicmr/internal/vlog"
)

// Session conf keys (beyond the mapreduce.Conf* set).
const (
	// ConfDeadline bounds a query's virtual runtime in seconds.
	ConfDeadline = "hive.exec.deadline.seconds"
)

// DefaultPolicy is the policy used when dynamic.job.policy is unset —
// LA, which §VII singles out as "a good overall policy to use in both
// homogeneous and heterogeneous workload settings".
const DefaultPolicy = core.PolicyLA

// ResultKind classifies Execute's result.
type ResultKind uint8

const (
	// ResultRows carries query output rows.
	ResultRows ResultKind = iota
	// ResultOK is a side-effect-only acknowledgement (SET).
	ResultOK
	// ResultText carries informational text (EXPLAIN, SHOW, DESCRIBE).
	ResultText
)

// Result is the outcome of executing one statement.
type Result struct {
	Kind ResultKind
	// Columns names the output columns for ResultRows.
	Columns []string
	// Rows holds the output records for ResultRows.
	Rows []data.Record
	// Text holds EXPLAIN/SHOW/DESCRIBE output.
	Text string
	// Job is the MapReduce job that produced the rows, if one ran.
	Job *mapreduce.Job
	// Client is the dynamic JobClient, when the job ran dynamically.
	Client *core.JobClient
}

// Session executes HiveQL against a catalog on a simulated cluster. A
// session belongs to one user (Fair Scheduler pool) and holds its SET
// overrides, mirroring the Hive CLI.
type Session struct {
	jt       *mapreduce.JobTracker
	catalog  *Catalog
	policies *core.Registry
	user     string
	conf     map[string]string
	seed     int64
	queries  int64
	stats    *qstats.Registry
	// resident is the session's claim on the runtime's resident store
	// (memory engine mode); released by Close.
	resident *mapreduce.ResidentStore
	closed   bool
}

// NewSession creates a session for the given user. policies may be nil
// (Table I builtins).
func NewSession(jt *mapreduce.JobTracker, catalog *Catalog, policies *core.Registry, user string) *Session {
	if policies == nil {
		policies = core.DefaultRegistry()
	}
	if user == "" {
		user = "default"
	}
	return &Session{
		jt:       jt,
		catalog:  catalog,
		policies: policies,
		user:     user,
		conf:     make(map[string]string),
		seed:     int64(len(user)) * 7919,
	}
}

// Set applies a conf override (as the SET statement does).
func (s *Session) Set(key, value string) { s.conf[strings.ToLower(key)] = value }

// Get reads a conf override.
func (s *Session) Get(key, def string) string {
	if v, ok := s.conf[strings.ToLower(key)]; ok {
		return v
	}
	return def
}

// SetResidentStore attaches the runtime's resident store to the
// session's lifecycle: the session takes a retain claim that Close
// releases, so per-session resident state (partitioned map outputs,
// pinned blocks) is dropped when the last session using the store goes
// away. A nil store is a no-op.
func (s *Session) SetResidentStore(rs *mapreduce.ResidentStore) {
	if rs == nil || s.resident != nil {
		return
	}
	s.resident = rs
	rs.Retain()
}

// Close releases the session's per-session resources — today its
// resident-store claim; the store purges resident parts and unpins
// blocks when the last claim drops. Idempotent; the session must not
// be used after Close.
func (s *Session) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	if s.resident != nil {
		s.resident.Release()
		s.resident = nil
	}
	return nil
}

// SetQueryStats wires the per-query observability registry into the
// session: every subsequent SELECT gets a stable query ID (carried in
// the JobConf as mapreduce.ConfQueryID and logged as vlog key "qid")
// and a lifecycle record in the registry. A nil registry disables the
// layer.
func (s *Session) SetQueryStats(r *qstats.Registry) { s.stats = r }

// User returns the session's user (scheduler pool).
func (s *Session) User() string { return s.user }

// JobTracker returns the runtime the session submits to.
func (s *Session) JobTracker() *mapreduce.JobTracker { return s.jt }

// Execute parses and runs one statement, driving the simulation until
// any launched job completes (or the configured deadline passes).
func (s *Session) Execute(sql string) (*Result, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	switch st := stmt.(type) {
	case *SetStmt:
		s.Set(st.Key, st.Value)
		return &Result{Kind: ResultOK, Text: fmt.Sprintf("%s=%s", st.Key, st.Value)}, nil
	case ShowTablesStmt:
		return &Result{Kind: ResultText, Text: strings.Join(s.catalog.Names(), "\n")}, nil
	case *DescribeStmt:
		tab, err := s.catalog.Lookup(st.Table)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: ResultText, Text: strings.Join(tab.Schema.Columns(), "\n")}, nil
	case *ExplainStmt:
		plan, err := s.plan(st.Select)
		if err != nil {
			return nil, err
		}
		return &Result{Kind: ResultText, Text: plan.explain()}, nil
	case *SelectStmt:
		plan, err := s.plan(st)
		if err != nil {
			return nil, err
		}
		if s.stats.Enabled() {
			plan.queryID = s.stats.AllocID()
		}
		client, job, err := plan.submit()
		if err != nil {
			return nil, err
		}
		s.stats.Register(plan.queryID, job, sql, len(plan.splits))
		log := s.jt.Logger()
		if log.Enabled(context.Background(), slog.LevelInfo) {
			args := []any{
				slog.String(vlog.KeyComponent, "hive"),
				slog.String(vlog.KeyUser, s.user),
				slog.String(vlog.KeyQuery, sql),
				slog.Int(vlog.KeyJob, job.ID),
				slog.Bool("dynamic", job.Dynamic),
			}
			if plan.queryID != "" {
				args = append(args, slog.String(vlog.KeyQueryID, plan.queryID))
			}
			log.Info("query started", args...)
		}
		deadline := s.jt.Engine().Now() + s.deadline()
		if !mapreduce.RunUntilDone(s.jt.Engine(), job, deadline) {
			s.stats.Abandon(job, "deadline exceeded")
			return nil, fmt.Errorf("hive: query exceeded deadline (%gs virtual): %s", s.deadline(), sql)
		}
		if job.State() == mapreduce.StateFailed {
			return nil, fmt.Errorf("hive: job failed: %s", job.Failure())
		}
		if log.Enabled(context.Background(), slog.LevelInfo) {
			args := []any{
				slog.String(vlog.KeyComponent, "hive"),
				slog.String(vlog.KeyUser, s.user),
				slog.Int(vlog.KeyJob, job.ID),
				slog.Float64("response_s", job.ResponseTime()),
				slog.Int("rows", len(job.Output())),
			}
			if plan.queryID != "" {
				args = append(args, slog.String(vlog.KeyQueryID, plan.queryID))
			}
			log.Info("query finished", args...)
		}
		res := &Result{Kind: ResultRows, Columns: plan.outSchema.Columns(), Job: job, Client: client}
		for _, kv := range job.Output() {
			res.Rows = append(res.Rows, kv.Value)
		}
		if len(st.OrderBy) > 0 {
			if err := sortRows(res.Rows, st.OrderBy); err != nil {
				return nil, err
			}
		}
		// Aggregates and top-k queries compute over all input; LIMIT
		// then truncates the output rows.
		if (plan.agg != nil || len(st.OrderBy) > 0) && st.Limit >= 0 && int64(len(res.Rows)) > st.Limit {
			res.Rows = res.Rows[:st.Limit]
		}
		return res, nil
	}
	return nil, fmt.Errorf("hive: unhandled statement %T", stmt)
}

// SubmitAsync plans and submits a SELECT without driving the engine —
// the workload generator's entry point, where many users' queries run
// concurrently under one engine.
func (s *Session) SubmitAsync(sql string) (*core.JobClient, *mapreduce.Job, error) {
	stmt, err := Parse(sql)
	if err != nil {
		return nil, nil, err
	}
	sel, ok := stmt.(*SelectStmt)
	if !ok {
		return nil, nil, fmt.Errorf("hive: SubmitAsync needs a SELECT, got %T", stmt)
	}
	plan, err := s.plan(sel)
	if err != nil {
		return nil, nil, err
	}
	if s.stats.Enabled() {
		plan.queryID = s.stats.AllocID()
	}
	client, job, err := plan.submit()
	if err != nil {
		return nil, nil, err
	}
	s.stats.Register(plan.queryID, job, sql, len(plan.splits))
	return client, job, nil
}

func (s *Session) deadline() float64 {
	if v := s.Get(ConfDeadline, ""); v != "" {
		var f float64
		if _, err := fmt.Sscanf(v, "%g", &f); err == nil && f > 0 {
			return f
		}
	}
	return 1e7
}

// queryPlan is the compiled form of one SELECT.
type queryPlan struct {
	session    *Session
	stmt       *SelectStmt
	queryID    string
	table      *Table
	pred       expr.Expr
	projection *data.Schema
	outSchema  *data.Schema
	dynamic    bool
	adaptive   bool
	policy     *core.Policy
	k          int64
	splits     []mapreduce.Split
	agg        *aggPlan
}

// plan performs semantic analysis and builds the job plan, mirroring
// the paper's modified Hive compiler: a LIMIT query becomes a sampling
// job with the dynamic.job flag and an Input Provider wired in (§IV).
func (s *Session) plan(sel *SelectStmt) (*queryPlan, error) {
	tab, err := s.catalog.Lookup(sel.Table)
	if err != nil {
		return nil, err
	}
	p := &queryPlan{session: s, stmt: sel, table: tab}

	if sel.Where != nil {
		if err := expr.Validate(sel.Where, tab.Schema); err != nil {
			return nil, err
		}
		p.pred = sel.Where
	} else {
		p.pred = &expr.Literal{Val: data.Bool(true)}
	}

	if sel.HasAggregates() {
		agg, err := newAggPlan(sel, tab.Schema, p.pred)
		if err != nil {
			return nil, err
		}
		p.agg = agg
		p.outSchema = agg.outSchema
		p.splits = mapreduce.SplitsForFile(tab.File)
		// Aggregates need every matching record: always static.
		p.dynamic = false
		return p, p.validateOrderBy()
	}
	if len(sel.GroupBy) > 0 {
		return nil, fmt.Errorf("hive: GROUP BY requires aggregate functions in the SELECT list")
	}

	if cols := sel.Columns(); cols != nil {
		proj, err := tab.Schema.Project(cols...)
		if err != nil {
			return nil, err
		}
		p.projection = proj
		p.outSchema = proj
	} else {
		p.outSchema = tab.Schema
	}

	p.k = math.MaxInt64
	if sel.Limit >= 0 {
		p.k = sel.Limit
	}

	// The modified compiler marks LIMIT queries dynamic unless the user
	// disabled it (SET dynamic.job = false).
	dynDefault := sel.Limit >= 0
	p.dynamic = s.confBool(mapreduce.ConfDynamicJob, dynDefault)
	if len(sel.OrderBy) > 0 {
		// ORDER BY [+ LIMIT] is a top-k query over all matches, not a
		// sample: full static scan, sort, then truncate.
		p.dynamic = false
		p.k = math.MaxInt64
		if err := p.validateOrderBy(); err != nil {
			return nil, err
		}
	}
	if p.dynamic {
		name := s.Get(mapreduce.ConfDynamicPolicy, DefaultPolicy)
		if strings.EqualFold(name, "adaptive") {
			// §VII future work: pick the policy at runtime from load
			// and observed data characteristics.
			p.adaptive = true
			p.policy = core.AdaptiveEnvelopePolicy()
		} else {
			pol, err := s.policies.Get(name)
			if err != nil {
				return nil, err
			}
			p.policy = pol
		}
	}
	p.splits = mapreduce.SplitsForFile(tab.File)
	return p, nil
}

func (s *Session) confBool(key string, def bool) bool {
	v := strings.ToLower(s.Get(key, ""))
	switch v {
	case "true", "1", "yes":
		return true
	case "false", "0", "no":
		return false
	default:
		return def
	}
}

// buildConf assembles the JobConf for the plan.
func (p *queryPlan) buildConf() *mapreduce.JobConf {
	conf := mapreduce.NewJobConf()
	conf.Set(mapreduce.ConfJobName, p.stmt.String())
	conf.Set(mapreduce.ConfUser, p.session.user)
	if p.queryID != "" {
		conf.Set(mapreduce.ConfQueryID, p.queryID)
	}
	// Session overrides flow into the job (Hive semantics).
	for k, v := range p.session.conf {
		conf.Set(k, v)
	}
	// Surface the runtime's default input path in the conf when it is
	// not full and the session didn't override it, so the Input
	// Provider sees the mode too (informed grab ordering keys off the
	// conf). Full mode injects nothing: the conf stays byte-identical
	// to the seed's.
	if mode := p.session.jt.InputPath(); mode != mapreduce.InputPathFull && !conf.Has(mapreduce.ConfInputPath) {
		conf.Set(mapreduce.ConfInputPath, mode)
	}
	return conf
}

// submit launches the job (dynamically or statically).
func (p *queryPlan) submit() (*core.JobClient, *mapreduce.Job, error) {
	if p.agg != nil {
		spec := buildAggJobSpec(p.agg, p.buildConf())
		job := p.session.jt.Submit(spec, p.splits)
		return nil, job, nil
	}
	k := p.k
	if k == 0 {
		// LIMIT 0: a degenerate but legal query.
		k = 1
	}
	spec, err := sampling.NewJobSpec(p.pred, k, p.projection, p.buildConf())
	if err != nil {
		return nil, nil, err
	}
	if p.stmt.Limit == 0 {
		// Emit nothing: wrap the reducer.
		spec.NewReducer = func(*mapreduce.JobConf) mapreduce.Reducer {
			return mapreduce.ReducerFunc(func(string, []data.Record, *mapreduce.Collector) error { return nil })
		}
	}
	if !p.dynamic {
		job := p.session.jt.Submit(spec, p.splits)
		return nil, job, nil
	}
	p.session.queries++
	var provider core.InputProvider = sampling.NewProvider(k, p.session.seed+p.session.queries)
	if p.adaptive {
		provider = core.NewAdaptiveProvider(provider)
	}
	client, err := core.SubmitDynamic(p.session.jt, spec, p.splits, provider, p.policy)
	if err != nil {
		return nil, nil, err
	}
	return client, client.Job(), nil
}

// validateOrderBy checks every sort key against the output schema.
func (p *queryPlan) validateOrderBy() error {
	for _, k := range p.stmt.OrderBy {
		if !p.outSchema.Has(k.Column) {
			return fmt.Errorf("hive: ORDER BY column %q not in the output (have %s)",
				k.Column, strings.Join(p.outSchema.Columns(), ", "))
		}
	}
	return nil
}

// sortRows totally orders rows by the keys (stable; NULLs first as in
// data.Compare).
func sortRows(rows []data.Record, keys []OrderKey) error {
	var sortErr error
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range keys {
			a := rows[i].MustGet(k.Column)
			b := rows[j].MustGet(k.Column)
			c, err := data.Compare(a, b)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}

// explain renders the plan.
func (p *queryPlan) explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QUERY: %s\n", p.stmt)
	fmt.Fprintf(&b, "TABLE: %s (%d partitions, %d records)\n",
		p.table.Name, len(p.splits), p.table.File.TotalRecords())
	fmt.Fprintf(&b, "PREDICATE: %s\n", p.pred)
	if p.projection != nil {
		fmt.Fprintf(&b, "PROJECT: %s\n", strings.Join(p.projection.Columns(), ", "))
	}
	if p.agg != nil {
		fmt.Fprintf(&b, "AGGREGATE: %s (map-side hash aggregation + combiner)\n",
			strings.Join(p.outSchema.Columns(), ", "))
		if len(p.agg.groupBy) > 0 {
			fmt.Fprintf(&b, "GROUP BY: %s\n", strings.Join(p.agg.groupBy, ", "))
		}
	}
	if p.stmt.Limit >= 0 && p.agg == nil {
		fmt.Fprintf(&b, "SAMPLE SIZE: %d\n", p.stmt.Limit)
	}
	switch mode := p.session.Get(mapreduce.ConfInputPath, p.session.jt.InputPath()); mode {
	case mapreduce.InputPathSkip:
		fmt.Fprintf(&b, "INPUT PATH: skip (zone-map skip-scan; non-matching blocks unread)\n")
	case mapreduce.InputPathIndex:
		fmt.Fprintf(&b, "INPUT PATH: index (clustered-index read, informed grab ordering)\n")
	}
	if p.dynamic {
		fmt.Fprintf(&b, "EXECUTION: dynamic job (incremental input)\n")
		fmt.Fprintf(&b, "POLICY: %s (interval=%gs, threshold=%g%%, grab=%s)\n",
			p.policy.Name, p.policy.EvaluationIntervalS, p.policy.WorkThresholdPct, p.policy.GrabLimitExpr)
		fmt.Fprintf(&b, "INPUT PROVIDER: sampling.Provider (selectivity estimation)\n")
	} else {
		fmt.Fprintf(&b, "EXECUTION: static job (all %d partitions up front)\n", len(p.splits))
	}
	return b.String()
}
