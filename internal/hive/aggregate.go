package hive

import (
	"fmt"
	"strings"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/mapreduce"
)

// Aggregation queries (COUNT/SUM/AVG/MIN/MAX with optional GROUP BY)
// compile to the classic MapReduce aggregation plan: the mapper
// hash-aggregates its split into per-group partial states, a combiner
// merges partials per map task, and the reducer merges and finalises.
// Partial states travel as flat records: [group values..., partials...].

// groupSep joins group-by values into the intermediate key.
const groupSep = "\x1f"

// aggPartialWidth returns how many record fields the aggregate's
// partial state occupies.
func aggPartialWidth(fn string) int {
	if fn == "AVG" {
		return 2 // sum, count
	}
	return 1
}

// aggState is one group's in-progress aggregation.
type aggState struct {
	count int64
	sum   float64
	min   data.Value
	max   data.Value
	seen  bool
}

// update folds one input record into the state for the given spec.
func (st *aggState) update(it SelectItem, rec data.Record) error {
	switch it.Agg {
	case "COUNT":
		if it.AggCol != "" && rec.MustGet(it.AggCol).IsNull() {
			return nil
		}
		st.count++
	case "SUM", "AVG":
		v := rec.MustGet(it.AggCol)
		if v.IsNull() {
			return nil
		}
		if !v.IsNumeric() {
			return fmt.Errorf("hive: %s over non-numeric column %s", it.Agg, it.AggCol)
		}
		st.sum += v.AsFloat()
		st.count++
	case "MIN", "MAX":
		v := rec.MustGet(it.AggCol)
		if v.IsNull() {
			return nil
		}
		if !st.seen {
			st.min, st.max, st.seen = v, v, true
			return nil
		}
		c, err := data.Compare(v, st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = v
		}
		c, err = data.Compare(v, st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = v
		}
	default:
		return fmt.Errorf("hive: unknown aggregate %q", it.Agg)
	}
	return nil
}

// partialValues serialises the state for the spec into record fields.
func (st *aggState) partialValues(it SelectItem) []data.Value {
	switch it.Agg {
	case "COUNT":
		return []data.Value{data.Int(st.count)}
	case "SUM":
		return []data.Value{data.Float(st.sum)}
	case "AVG":
		return []data.Value{data.Float(st.sum), data.Int(st.count)}
	case "MIN":
		if !st.seen {
			return []data.Value{data.Null()}
		}
		return []data.Value{st.min}
	case "MAX":
		if !st.seen {
			return []data.Value{data.Null()}
		}
		return []data.Value{st.max}
	}
	return nil
}

// mergePartial folds serialised partial fields into the state.
func (st *aggState) mergePartial(it SelectItem, vals []data.Value) error {
	switch it.Agg {
	case "COUNT":
		st.count += vals[0].AsInt()
	case "SUM":
		st.sum += vals[0].AsFloat()
	case "AVG":
		st.sum += vals[0].AsFloat()
		st.count += vals[1].AsInt()
	case "MIN", "MAX":
		v := vals[0]
		if v.IsNull() {
			return nil
		}
		if !st.seen {
			st.min, st.max, st.seen = v, v, true
			return nil
		}
		c, err := data.Compare(v, st.min)
		if err != nil {
			return err
		}
		if c < 0 {
			st.min = v
		}
		c, err = data.Compare(v, st.max)
		if err != nil {
			return err
		}
		if c > 0 {
			st.max = v
		}
	default:
		return fmt.Errorf("hive: unknown aggregate %q", it.Agg)
	}
	return nil
}

// finalValue produces the aggregate's output value.
func (st *aggState) finalValue(it SelectItem) data.Value {
	switch it.Agg {
	case "COUNT":
		return data.Int(st.count)
	case "SUM":
		return data.Float(st.sum)
	case "AVG":
		if st.count == 0 {
			return data.Null()
		}
		return data.Float(st.sum / float64(st.count))
	case "MIN":
		if !st.seen {
			return data.Null()
		}
		return st.min
	case "MAX":
		if !st.seen {
			return data.Null()
		}
		return st.max
	}
	return data.Null()
}

// aggPlan carries the compiled aggregation layout.
type aggPlan struct {
	items   []SelectItem // the SELECT list, in output order
	aggs    []SelectItem // just the aggregates, in output order
	groupBy []string
	// partialSchema is [G0..Gk, A0_0, A0_1, A1_0, ...].
	partialSchema *data.Schema
	outSchema     *data.Schema
	pred          expr.Expr
}

// newAggPlan validates the statement and lays out the partial schema.
func newAggPlan(sel *SelectStmt, table *data.Schema, pred expr.Expr) (*aggPlan, error) {
	p := &aggPlan{items: sel.Items, groupBy: sel.GroupBy, pred: pred}
	inGroup := map[string]bool{}
	for _, g := range sel.GroupBy {
		if !table.Has(g) {
			return nil, fmt.Errorf("hive: GROUP BY column %q not in table", g)
		}
		inGroup[strings.ToUpper(g)] = true
	}
	var outCols []string
	for _, it := range sel.Items {
		outCols = append(outCols, it.Name())
		if it.IsAggregate() {
			if it.AggCol != "" && !table.Has(it.AggCol) {
				return nil, fmt.Errorf("hive: aggregate column %q not in table", it.AggCol)
			}
			p.aggs = append(p.aggs, it)
			continue
		}
		if !inGroup[strings.ToUpper(it.Column)] {
			return nil, fmt.Errorf("hive: column %q must appear in GROUP BY", it.Column)
		}
		if !table.Has(it.Column) {
			return nil, fmt.Errorf("hive: column %q not in table", it.Column)
		}
	}
	var partialCols []string
	for i, g := range sel.GroupBy {
		partialCols = append(partialCols, fmt.Sprintf("G%d_%s", i, g))
	}
	for i, a := range p.aggs {
		for w := 0; w < aggPartialWidth(a.Agg); w++ {
			partialCols = append(partialCols, fmt.Sprintf("A%d_%d", i, w))
		}
	}
	p.partialSchema = data.NewSchema(partialCols...)
	p.outSchema = data.NewSchema(outCols...)
	return p, nil
}

// groupKey renders a record's group-by values as the intermediate key.
func (p *aggPlan) groupKey(rec data.Record) string {
	if len(p.groupBy) == 0 {
		return ""
	}
	parts := make([]string, len(p.groupBy))
	for i, g := range p.groupBy {
		parts[i] = rec.MustGet(g).String()
	}
	return strings.Join(parts, groupSep)
}

// aggGroup is one group's mapper-side accumulation.
type aggGroup struct {
	groupVals []data.Value
	states    []aggState
}

// aggMapper hash-aggregates a split (mapreduce.SplitMapper) so each
// map task emits one partial record per group it saw.
type aggMapper struct {
	plan   *aggPlan
	groups map[string]*aggGroup
	order  []string
}

func (m *aggMapper) group(key string, rec data.Record) *aggGroup {
	g, ok := m.groups[key]
	if !ok {
		g = &aggGroup{states: make([]aggState, len(m.plan.aggs))}
		for _, col := range m.plan.groupBy {
			g.groupVals = append(g.groupVals, rec.MustGet(col))
		}
		m.groups[key] = g
		m.order = append(m.order, key)
	}
	return g
}

// Map implements mapreduce.Mapper (per-record path).
func (m *aggMapper) Map(rec data.Record, out *mapreduce.Collector) error {
	ok, err := expr.EvalBool(m.plan.pred, rec)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	g := m.group(m.plan.groupKey(rec), rec)
	for i, it := range m.plan.aggs {
		if err := g.states[i].update(it, rec); err != nil {
			return err
		}
	}
	return nil
}

// MapSplit implements mapreduce.SplitMapper: scan (or accelerated
// match retrieval) followed by one partial emission per group.
func (m *aggMapper) MapSplit(ctx *mapreduce.TaskContext, out *mapreduce.Collector) error {
	m.groups = make(map[string]*aggGroup)
	m.order = nil

	processed := false
	if acc, ok := ctx.Source.(interface {
		AcceleratedMatches(fingerprint string, limit int64) ([]data.Record, bool)
	}); ok {
		if matches, hit := acc.AcceleratedMatches(m.plan.pred.String(), -1); hit {
			for _, rec := range matches {
				g := m.group(m.plan.groupKey(rec), rec)
				for i, it := range m.plan.aggs {
					if err := g.states[i].update(it, rec); err != nil {
						return err
					}
				}
			}
			processed = true
		}
	}
	if !processed {
		var scanErr error
		ctx.Source.Scan(func(rec data.Record) bool {
			if err := m.Map(rec, out); err != nil {
				scanErr = err
				return false
			}
			return true
		})
		if scanErr != nil {
			return scanErr
		}
	}

	for _, key := range m.order {
		g := m.groups[key]
		vals := append([]data.Value(nil), g.groupVals...)
		for i, it := range m.plan.aggs {
			vals = append(vals, g.states[i].partialValues(it)...)
		}
		out.Emit(key, data.NewRecord(m.plan.partialSchema, vals))
	}
	return nil
}

// aggMerge merges partial records for one key into a fresh state set,
// returning the group values and merged states.
func (p *aggPlan) aggMerge(values []data.Record) ([]data.Value, []aggState, error) {
	states := make([]aggState, len(p.aggs))
	var groupVals []data.Value
	for vi, v := range values {
		if vi == 0 {
			for i := range p.groupBy {
				groupVals = append(groupVals, v.At(i))
			}
		}
		off := len(p.groupBy)
		for i, it := range p.aggs {
			w := aggPartialWidth(it.Agg)
			fields := make([]data.Value, w)
			for k := 0; k < w; k++ {
				fields[k] = v.At(off + k)
			}
			off += w
			if err := states[i].mergePartial(it, fields); err != nil {
				return nil, nil, err
			}
		}
	}
	return groupVals, states, nil
}

// aggCombiner merges one map task's partials per key back into a
// single partial record (mapreduce combiner).
type aggCombiner struct{ plan *aggPlan }

// Reduce implements mapreduce.Reducer.
func (c *aggCombiner) Reduce(key string, values []data.Record, out *mapreduce.Collector) error {
	groupVals, states, err := c.plan.aggMerge(values)
	if err != nil {
		return err
	}
	vals := append([]data.Value(nil), groupVals...)
	for i, it := range c.plan.aggs {
		vals = append(vals, states[i].partialValues(it)...)
	}
	out.Emit(key, data.NewRecord(c.plan.partialSchema, vals))
	return nil
}

// aggReducer merges all partials per key and emits the finalised
// output row in SELECT-list order.
type aggReducer struct{ plan *aggPlan }

// Reduce implements mapreduce.Reducer.
func (r *aggReducer) Reduce(key string, values []data.Record, out *mapreduce.Collector) error {
	groupVals, states, err := r.plan.aggMerge(values)
	if err != nil {
		return err
	}
	groupByIdx := map[string]int{}
	for i, g := range r.plan.groupBy {
		groupByIdx[strings.ToUpper(g)] = i
	}
	aggIdx := 0
	vals := make([]data.Value, 0, len(r.plan.items))
	for _, it := range r.plan.items {
		if it.IsAggregate() {
			vals = append(vals, states[aggIdx].finalValue(it))
			aggIdx++
		} else {
			vals = append(vals, groupVals[groupByIdx[strings.ToUpper(it.Column)]])
		}
	}
	out.Emit(key, data.NewRecord(r.plan.outSchema, vals))
	return nil
}

// buildAggJobSpec assembles the MapReduce job for an aggregation plan.
func buildAggJobSpec(plan *aggPlan, conf *mapreduce.JobConf) mapreduce.JobSpec {
	if conf == nil {
		conf = mapreduce.NewJobConf()
	}
	conf.SetInt(mapreduce.ConfNumReduces, 1)
	return mapreduce.JobSpec{
		Conf:        conf,
		NewMapper:   func(*mapreduce.JobConf) mapreduce.Mapper { return &aggMapper{plan: plan} },
		NewCombiner: func(*mapreduce.JobConf) mapreduce.Reducer { return &aggCombiner{plan: plan} },
		NewReducer:  func(*mapreduce.JobConf) mapreduce.Reducer { return &aggReducer{plan: plan} },
	}
}
