package hive

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strings"

	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/vlog"
)

// Table is a catalog entry: a named schema over a DFS file.
type Table struct {
	Name   string
	Schema *data.Schema
	File   *dfs.File
}

// Catalog maps table names to their storage (the Hive metastore's role
// here).
type Catalog struct {
	tables map[string]*Table
	log    *slog.Logger
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table), log: vlog.Nop()}
}

// SetLogger routes metastore events (table registrations) to l; nil
// restores the discard logger.
func (c *Catalog) SetLogger(l *slog.Logger) { c.log = vlog.Or(l) }

// Register adds a table; duplicate names are an error.
func (c *Catalog) Register(t *Table) error {
	if t.Name == "" || t.Schema == nil || t.File == nil {
		return fmt.Errorf("hive: table needs name, schema and file")
	}
	key := strings.ToLower(t.Name)
	if _, dup := c.tables[key]; dup {
		return fmt.Errorf("hive: table %q already registered", t.Name)
	}
	c.tables[key] = t
	if c.log.Enabled(context.Background(), slog.LevelDebug) {
		c.log.Debug("table registered",
			slog.String(vlog.KeyComponent, "catalog"),
			slog.String("table", t.Name),
			slog.Int("columns", len(t.Schema.Columns())),
			slog.Int64("records", t.File.TotalRecords()))
	}
	return nil
}

// Lookup resolves a table name (case-insensitive).
func (c *Catalog) Lookup(name string) (*Table, error) {
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("hive: table %q not found", name)
	}
	return t, nil
}

// Names returns registered table names, sorted.
func (c *Catalog) Names() []string {
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
