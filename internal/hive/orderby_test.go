package hive

import (
	"testing"
)

func TestParseOrderBy(t *testing.T) {
	sel := parseSelect(t, "SELECT A, B FROM t ORDER BY B DESC, A LIMIT 5")
	if len(sel.OrderBy) != 2 {
		t.Fatalf("order keys = %d", len(sel.OrderBy))
	}
	if sel.OrderBy[0].Column != "B" || !sel.OrderBy[0].Desc {
		t.Fatalf("first key = %+v", sel.OrderBy[0])
	}
	if sel.OrderBy[1].Column != "A" || sel.OrderBy[1].Desc {
		t.Fatalf("second key = %+v", sel.OrderBy[1])
	}
	// Fixpoint.
	s2 := parseSelect(t, sel.String())
	if sel.String() != s2.String() {
		t.Fatalf("fixpoint:\n%s\n%s", sel, s2)
	}
	// ASC is accepted and default.
	sel = parseSelect(t, "SELECT A FROM t ORDER BY A ASC")
	if sel.OrderBy[0].Desc {
		t.Fatal("ASC parsed as DESC")
	}
}

func TestParseOrderByAggregate(t *testing.T) {
	sel := parseSelect(t,
		"SELECT L_RETURNFLAG, COUNT(*) FROM t GROUP BY L_RETURNFLAG ORDER BY COUNT(*) DESC")
	if sel.OrderBy[0].Column != "COUNT(*)" || !sel.OrderBy[0].Desc {
		t.Fatalf("key = %+v", sel.OrderBy[0])
	}
}

func TestParseOrderByErrors(t *testing.T) {
	for _, q := range []string{
		"SELECT A FROM t ORDER A",
		"SELECT A FROM t ORDER BY",
		"SELECT A FROM t ORDER BY 5",
	} {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) accepted", q)
		}
	}
}

func TestOrderByExecution(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("ord")
	res, err := s.Execute(
		"SELECT L_ORDERKEY, L_QUANTITY FROM lineitem WHERE L_DISCOUNT = 0.11 ORDER BY L_QUANTITY DESC, L_ORDERKEY LIMIT 20")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 20 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Sorted descending by quantity, ties ascending by orderkey.
	for i := 1; i < len(res.Rows); i++ {
		q0 := res.Rows[i-1].MustGet("L_QUANTITY").AsInt()
		q1 := res.Rows[i].MustGet("L_QUANTITY").AsInt()
		if q1 > q0 {
			t.Fatalf("rows %d/%d out of order: %d then %d", i-1, i, q0, q1)
		}
		if q1 == q0 {
			k0 := res.Rows[i-1].MustGet("L_ORDERKEY").AsInt()
			k1 := res.Rows[i].MustGet("L_ORDERKEY").AsInt()
			if k1 < k0 {
				t.Fatalf("tie-break out of order: %d then %d", k0, k1)
			}
		}
	}
	// ORDER BY must force a full static scan (top-k, not a sample).
	if res.Client != nil {
		t.Fatal("ORDER BY query ran dynamically")
	}
	if res.Job.CompletedMaps() != r.ds.NumPartitions() {
		t.Fatalf("processed %d partitions, want all", res.Job.CompletedMaps())
	}
}

func TestOrderByWithAggregates(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("orda")
	res, err := s.Execute(
		"SELECT L_LINENUMBER, COUNT(*) FROM lineitem GROUP BY L_LINENUMBER ORDER BY COUNT(*) DESC LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].MustGet("COUNT(*)").AsInt() < res.Rows[1].MustGet("COUNT(*)").AsInt() {
		t.Fatal("aggregate ordering wrong")
	}
}

func TestOrderByUnknownColumn(t *testing.T) {
	r := newSessionRig(t, 0)
	s := r.session("ordbad")
	if _, err := s.Execute("SELECT L_ORDERKEY FROM lineitem ORDER BY NOPE"); err == nil {
		t.Fatal("unknown order column accepted")
	}
	// Column not in the projection is also rejected.
	if _, err := s.Execute("SELECT L_ORDERKEY FROM lineitem ORDER BY L_QUANTITY"); err == nil {
		t.Fatal("order by non-projected column accepted")
	}
}
