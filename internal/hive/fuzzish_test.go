package hive

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParserNeverPanicsOnRandomBytes feeds arbitrary byte soup to the
// parser: it must return (AST, nil) or (nil, error), never panic.
func TestParserNeverPanicsOnRandomBytes(t *testing.T) {
	f := func(input string) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("Parse(%q) panicked: %v", input, r)
			}
		}()
		_, _ = Parse(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParserNeverPanicsOnTokenSoup stresses the parser with random
// sequences of *valid* SQL tokens, which reach much deeper into the
// grammar than raw bytes do.
func TestParserNeverPanicsOnTokenSoup(t *testing.T) {
	vocab := []string{
		"SELECT", "FROM", "WHERE", "LIMIT", "AND", "OR", "NOT", "BETWEEN",
		"IN", "LIKE", "SET", "EXPLAIN", "SHOW", "TABLES", "DESCRIBE",
		"TRUE", "FALSE", "NULL", "lineitem", "L_QUANTITY", "*", ",", "(",
		")", "=", "<", ">", "<=", ">=", "!=", "+", "-", "/", "5", "0.05",
		"'RAIL'", ";",
	}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(12)
		parts := make([]string, n)
		for j := range parts {
			parts[j] = vocab[rng.Intn(len(vocab))]
		}
		input := strings.Join(parts, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse(%q) panicked: %v", input, r)
				}
			}()
			_, _ = Parse(input)
		}()
	}
}

// TestValidQueriesAlwaysReparse: whatever the parser accepts and
// renders must be accepted again and render identically (print/parse
// fixpoint over generated queries).
func TestValidQueriesAlwaysReparse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cols := []string{"A", "B", "C"}
	lits := []string{"1", "2.5", "'x'", "TRUE"}
	ops := []string{"=", "!=", "<", "<=", ">", ">="}
	var predicate func(depth int) string
	predicate = func(depth int) string {
		if depth <= 0 || rng.Intn(3) == 0 {
			return cols[rng.Intn(len(cols))] + " " + ops[rng.Intn(len(ops))] + " " + lits[rng.Intn(len(lits))]
		}
		switch rng.Intn(4) {
		case 0:
			return "(" + predicate(depth-1) + " AND " + predicate(depth-1) + ")"
		case 1:
			return "(" + predicate(depth-1) + " OR " + predicate(depth-1) + ")"
		case 2:
			return "NOT (" + predicate(depth-1) + ")"
		default:
			return cols[rng.Intn(len(cols))] + " BETWEEN 1 AND 10"
		}
	}
	for i := 0; i < 300; i++ {
		q := "SELECT A, B FROM t WHERE " + predicate(3)
		if rng.Intn(2) == 0 {
			q += " LIMIT 10"
		}
		s1, err := Parse(q)
		if err != nil {
			t.Fatalf("generated query rejected: %q: %v", q, err)
		}
		s2, err := Parse(s1.String())
		if err != nil {
			t.Fatalf("reparse rejected: %q: %v", s1, err)
		}
		if s1.String() != s2.String() {
			t.Fatalf("fixpoint failed:\n%s\n%s", s1, s2)
		}
	}
}
