package hive

import (
	"fmt"
	"strconv"
	"strings"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
)

// Parse turns one HiveQL statement (optionally ';'-terminated) into an
// AST.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{src: sql, toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(tkOp, ";")
	if p.peek().kind != tkEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return stmt, nil
}

// ParsePredicate parses a bare predicate expression ("L_QUANTITY > 50").
func ParsePredicate(src string) (expr.Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{src: src, toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tkEOF {
		return nil, p.errf("trailing input %q", p.peek().text)
	}
	return e, nil
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("hive: %s (at offset %d in %q)",
		fmt.Sprintf(format, args...), p.peek().pos, p.src)
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tkEOF {
		p.pos++
	}
	return t
}

// accept consumes the next token when it matches kind+text.
func (p *parser) accept(kind tokenKind, text string) bool {
	t := p.peek()
	if t.kind == kind && t.text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.accept(tkKeyword, kw) {
		return p.errf("expected %s, found %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) expectOp(op string) error {
	if !p.accept(tkOp, op) {
		return p.errf("expected %q, found %q", op, p.peek().text)
	}
	return nil
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tkKeyword {
		return nil, p.errf("expected a statement, found %q", t.text)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "SET":
		return p.parseSet()
	case "EXPLAIN":
		p.next()
		s, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: s}, nil
	case "SHOW":
		p.next()
		if err := p.expectKeyword("TABLES"); err != nil {
			return nil, err
		}
		return ShowTablesStmt{}, nil
	case "DESCRIBE":
		p.next()
		id := p.next()
		if id.kind != tkIdent {
			return nil, p.errf("DESCRIBE needs a table name")
		}
		return &DescribeStmt{Table: id.text}, nil
	}
	return nil, p.errf("unsupported statement %q", t.text)
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	if p.accept(tkOp, "*") {
		s.Items = nil
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			s.Items = append(s.Items, item)
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	t := p.next()
	if t.kind != tkIdent {
		return nil, p.errf("expected table name, found %q", t.text)
	}
	s.Table = t.text
	if p.accept(tkKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.accept(tkKeyword, "GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			t := p.next()
			if t.kind != tkIdent {
				return nil, p.errf("GROUP BY needs column names, found %q", t.text)
			}
			s.GroupBy = append(s.GroupBy, strings.ToUpper(t.text))
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			var key OrderKey
			t := p.next()
			switch {
			case t.kind == tkIdent:
				key.Column = strings.ToUpper(t.text)
			case t.kind == tkKeyword && aggregateFns[t.text]:
				// ORDER BY COUNT(*) etc: re-use the select-item parser
				// by backing up one token.
				p.pos--
				item, err := p.parseSelectItem()
				if err != nil {
					return nil, err
				}
				key.Column = item.Name()
			default:
				return nil, p.errf("ORDER BY needs column names, found %q", t.text)
			}
			if p.accept(tkKeyword, "DESC") {
				key.Desc = true
			} else {
				p.accept(tkKeyword, "ASC")
			}
			s.OrderBy = append(s.OrderBy, key)
			if !p.accept(tkOp, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "LIMIT") {
		t := p.next()
		if t.kind != tkNumber {
			return nil, p.errf("LIMIT needs a number, found %q", t.text)
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil || n < 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		s.Limit = n
	}
	return s, nil
}

var aggregateFns = map[string]bool{
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// parseSelectItem parses a plain column or an aggregate call.
func (p *parser) parseSelectItem() (SelectItem, error) {
	t := p.next()
	if t.kind == tkKeyword && aggregateFns[t.text] {
		if err := p.expectOp("("); err != nil {
			return SelectItem{}, err
		}
		item := SelectItem{Agg: t.text}
		if p.accept(tkOp, "*") {
			if t.text != "COUNT" {
				return SelectItem{}, p.errf("%s(*) is not valid; only COUNT(*)", t.text)
			}
		} else {
			arg := p.next()
			if arg.kind != tkIdent {
				return SelectItem{}, p.errf("%s needs a column argument, found %q", t.text, arg.text)
			}
			item.AggCol = strings.ToUpper(arg.text)
		}
		if err := p.expectOp(")"); err != nil {
			return SelectItem{}, err
		}
		return item, nil
	}
	if t.kind != tkIdent {
		return SelectItem{}, p.errf("expected column name or aggregate, found %q", t.text)
	}
	return SelectItem{Column: strings.ToUpper(t.text)}, nil
}

func (p *parser) parseSet() (Statement, error) {
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	key := p.next()
	if key.kind != tkIdent {
		return nil, p.errf("SET needs a parameter name, found %q", key.text)
	}
	if err := p.expectOp("="); err != nil {
		return nil, err
	}
	// Value: everything until ';' or EOF, re-joined (conf values may be
	// numbers, idents, keywords or strings).
	var parts []string
	for {
		t := p.peek()
		if t.kind == tkEOF || (t.kind == tkOp && t.text == ";") {
			break
		}
		p.next()
		parts = append(parts, t.text)
	}
	if len(parts) == 0 {
		return nil, p.errf("SET %s needs a value", key.text)
	}
	return &SetStmt{Key: key.text, Value: strings.Join(parts, " ")}, nil
}

// Expression grammar, loosest to tightest:
//
//	expr  := or
//	or    := and { OR and }
//	and   := not { AND not }
//	not   := NOT not | pred
//	pred  := add [ cmpOp add | [NOT] BETWEEN add AND add | [NOT] IN (...) | [NOT] LIKE 'pat' ]
//	add   := mul { (+|-) mul }
//	mul   := unary { (*|/) unary }
//	unary := - unary | primary
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tkKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.Binary{Op: expr.OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.accept(tkKeyword, "NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{X: x}, nil
	}
	return p.parsePredicate()
}

var cmpOps = map[string]expr.BinaryOp{
	"=": expr.OpEq, "==": expr.OpEq, "!=": expr.OpNe, "<>": expr.OpNe,
	"<": expr.OpLt, "<=": expr.OpLe, ">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parsePredicate() (expr.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Comparison?
	if t := p.peek(); t.kind == tkOp {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &expr.Binary{Op: op, L: l, R: r}, nil
		}
	}
	negate := false
	if p.accept(tkKeyword, "NOT") {
		negate = true
	}
	wrap := func(e expr.Expr) expr.Expr {
		if negate {
			return &expr.Not{X: e}
		}
		return e
	}
	switch {
	case p.accept(tkKeyword, "BETWEEN"):
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return wrap(&expr.Between{X: l, Lo: lo, Hi: hi}), nil
	case p.accept(tkKeyword, "IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []expr.Expr
		for {
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if p.accept(tkOp, ")") {
				break
			}
			if err := p.expectOp(","); err != nil {
				return nil, err
			}
		}
		return wrap(&expr.In{X: l, List: list}), nil
	case p.accept(tkKeyword, "LIKE"):
		t := p.next()
		if t.kind != tkString {
			return nil, p.errf("LIKE needs a string pattern, found %q", t.text)
		}
		return wrap(&expr.Like{X: l, Pattern: t.text}), nil
	}
	if negate {
		return nil, p.errf("dangling NOT")
	}
	return l, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &expr.Binary{Op: expr.OpAdd, L: l, R: r}
		case p.accept(tkOp, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &expr.Binary{Op: expr.OpSub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tkOp, "*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.Binary{Op: expr.OpMul, L: l, R: r}
		case p.accept(tkOp, "/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &expr.Binary{Op: expr.OpDiv, L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.accept(tkOp, "-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold literal negation so "-5" prints as -5, not (-5).
		if lit, ok := x.(*expr.Literal); ok && lit.Val.IsNumeric() {
			if lit.Val.Kind() == data.KindInt {
				return &expr.Literal{Val: data.Int(-lit.Val.AsInt())}, nil
			}
			return &expr.Literal{Val: data.Float(-lit.Val.AsFloat())}, nil
		}
		return &expr.Neg{X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.next()
	switch t.kind {
	case tkNumber:
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &expr.Literal{Val: data.Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &expr.Literal{Val: data.Int(n)}, nil
	case tkString:
		return &expr.Literal{Val: data.Str(t.text)}, nil
	case tkIdent:
		return &expr.Column{Name: strings.ToUpper(t.text)}, nil
	case tkKeyword:
		switch t.text {
		case "TRUE":
			return &expr.Literal{Val: data.Bool(true)}, nil
		case "FALSE":
			return &expr.Literal{Val: data.Bool(false)}, nil
		case "NULL":
			return &expr.Literal{Val: data.Null()}, nil
		}
	case tkOp:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
