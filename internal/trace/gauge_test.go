package trace

import (
	"math"
	"testing"
)

func TestGaugeAggregation(t *testing.T) {
	tr := New(Config{Enabled: true})

	if _, ok := tr.Gauge("never.set"); ok {
		t.Fatal("unset gauge reported ok")
	}
	if avg := (GaugeSnapshot{}).Avg(); avg != 0 {
		t.Fatalf("empty Avg = %v, want 0", avg)
	}

	for _, v := range []float64{40, 10, -5, 25} {
		tr.SetGauge("queue.depth", v)
	}
	g, ok := tr.Gauge("queue.depth")
	if !ok {
		t.Fatal("gauge missing after SetGauge")
	}
	if g.Last != 25 || g.Min != -5 || g.Max != 40 || g.Count != 4 {
		t.Fatalf("snapshot = %+v, want last 25 min -5 max 40 count 4", g)
	}
	if want := (40.0 + 10 - 5 + 25) / 4; math.Abs(g.Avg()-want) > 1e-12 {
		t.Fatalf("Avg = %v, want %v", g.Avg(), want)
	}

	tr.SetGauge("other", 1)
	all := tr.Gauges()
	if len(all) != 2 {
		t.Fatalf("Gauges() returned %d entries, want 2", len(all))
	}
	// The copy is detached from the registry.
	all["queue.depth"] = GaugeSnapshot{}
	if g2, _ := tr.Gauge("queue.depth"); g2.Count != 4 {
		t.Fatal("Gauges() copy aliases the registry")
	}
}

func TestGaugeNilTracer(t *testing.T) {
	var tr *Tracer
	tr.SetGauge("x", 1) // must not panic
	if _, ok := tr.Gauge("x"); ok {
		t.Fatal("nil tracer returned a gauge")
	}
	if tr.Gauges() != nil {
		t.Fatal("nil tracer returned a gauge map")
	}
}

func TestMetricNamesIncludesGauges(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Inc("a.counter", 1)
	tr.SetGauge("b.gauge", 2)
	tr.Observe("c.hist", 3)
	got := tr.MetricNames()
	want := []string{"a.counter", "b.gauge", "c.hist"}
	if len(got) != len(want) {
		t.Fatalf("MetricNames = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MetricNames = %v, want %v", got, want)
		}
	}
}
