package trace

// Policy decision verdicts. GROW/WAIT/EOI mirror the paper's
// three-way Input Provider response (§III-A); INIT records the
// submission-time grab and SKIP records an evaluation deferred by the
// work threshold before the provider was consulted (§III-B).
const (
	VerdictInit = "INIT"
	VerdictGrow = "GROW"
	VerdictWait = "WAIT"
	VerdictEOI  = "EOI"
	VerdictSkip = "SKIP"
)

// PolicyDecision is one entry of the Input Provider audit log: the
// inputs the evaluation saw (progress, map-output statistics, cluster
// load, the work threshold in force) and its verdict, so growth-curve
// anomalies in the Figure 5/6/7 reproductions can be explained from
// the log instead of re-derived.
type PolicyDecision struct {
	// Time of the evaluation (virtual seconds).
	Time float64
	// JobID identifies the dynamic job.
	JobID int
	// Policy is the governing policy's name — for adaptive jobs, the
	// policy selected at this step.
	Policy string
	// Verdict is one of the Verdict* constants.
	Verdict string
	// Added is the number of partitions handed to the job (GROW only).
	Added int
	// GrabLimit is the policy's partition cap for this step.
	GrabLimit int

	// Job-progress inputs.
	ScheduledMaps    int
	CompletedMaps    int
	PendingMaps      int
	RunningMaps      int
	MapInputRecords  int64
	MapOutputRecords int64

	// Cluster-load inputs (TS/AS/QT of the grab-limit expressions).
	TotalSlots  int
	FreeSlots   int
	QueuedTasks int
	// WorkThresholdPct is the policy's threshold; ProgressPct is the
	// newly-completed-work percentage measured against it.
	WorkThresholdPct float64
	ProgressPct      float64
}

// RecordPolicyDecision appends an entry to the audit log. Unlike the
// span ring the log is unbounded: it grows by one entry per
// evaluation interval, and completeness is the point of an audit.
func (t *Tracer) RecordPolicyDecision(d PolicyDecision) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.decisions = append(t.decisions, d)
	t.reg.counters[CounterPolicyEvals]++
	t.mu.Unlock()
}

// PolicyDecisions returns a copy of the audit log in record order.
func (t *Tracer) PolicyDecisions() []PolicyDecision {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]PolicyDecision(nil), t.decisions...)
}

// PolicyDecisionCount returns the audit log's length without copying
// it, so incremental consumers (the obs sampler) can poll cheaply.
func (t *Tracer) PolicyDecisionCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.decisions)
}

// PolicyDecisionsSince copies the audit log entries from index from
// onward (clamped to the log's bounds). Pairing it with
// PolicyDecisionCount lets a periodic sampler consume the log
// incrementally instead of re-copying the whole history every tick.
func (t *Tracer) PolicyDecisionsSince(from int) []PolicyDecision {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if from < 0 {
		from = 0
	}
	if from >= len(t.decisions) {
		return nil
	}
	return append([]PolicyDecision(nil), t.decisions[from:]...)
}
