package trace_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"dynamicmr"
	"dynamicmr/internal/trace"
)

// TestChromeTraceCrossChecksRuntime runs a dynamic sampling query with
// tracing enabled, exports the Chrome trace, parses it back, and
// cross-checks the span counts against the JobTracker's own counters
// and the JobClient's decision log: every map/reduce attempt and every
// policy decision must appear exactly once.
func TestChromeTraceCrossChecksRuntime(t *testing.T) {
	c, err := dynamicmr.NewCluster(dynamicmr.WithTracing(trace.Config{SampleIntervalS: 10}))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := c.LoadLineItem("lineitem", dynamicmr.DatasetSpec{
		Scale: 1, Skew: 1, Rows: 400_000, Partitions: 120, Selectivity: 0.005, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Query(fmt.Sprintf(
		"SELECT L_ORDERKEY FROM lineitem WHERE %s LIMIT 200", ds.Predicate()))
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Tracer()
	if !tr.Enabled() {
		t.Fatal("tracer disabled despite WithTracing")
	}
	if tr.Dropped() != 0 {
		t.Fatalf("ring evicted %d spans; raise capacity for this workload", tr.Dropped())
	}

	// Invariant: one enclosing map-attempt span per attempt outcome the
	// runtime counted.
	ctr := res.Job.Counters
	attempts := int(ctr.CompletedMaps + ctr.FailedMapAttempts + ctr.KilledAttempts)
	if attempts == 0 {
		t.Fatal("job ran no map attempts")
	}
	if got := tr.CountSpans(trace.SpanMapAttempt); got != attempts {
		t.Fatalf("map-attempt spans = %d, counters say %d attempts", got, attempts)
	}
	late := 0
	for _, s := range tr.Spans() {
		if s.Outcome == trace.OutcomeLate {
			late++
		}
	}
	if late != 0 {
		t.Fatalf("unexpected late attempts: %d", late)
	}
	if got := tr.Counter(trace.CounterMapAttempts); got != int64(attempts) {
		t.Fatalf("map.attempts counter = %d, want %d", got, attempts)
	}
	if reduces := tr.CountSpans(trace.SpanReduceAttempt); reduces < 1 ||
		reduces != tr.CountSpans(trace.SpanOutputWrite) {
		t.Fatalf("reduce-attempt spans = %d, output-write = %d",
			reduces, tr.CountSpans(trace.SpanOutputWrite))
	}
	// Non-speculative launches each record a queue wait.
	if got, want := tr.CountSpans(trace.SpanQueueWait),
		attempts-int(tr.Counter(trace.CounterMapSpeculative)); got != want {
		t.Fatalf("queue-wait spans = %d, want %d", got, want)
	}

	// The audit log carries the JobClient's decisions plus the INIT grab
	// and any threshold skips.
	decisions := tr.PolicyDecisions()
	inits, skips, consulted := 0, 0, 0
	for _, d := range decisions {
		switch d.Verdict {
		case trace.VerdictInit:
			inits++
		case trace.VerdictSkip:
			skips++
		default:
			consulted++
		}
	}
	if inits != 1 {
		t.Fatalf("INIT decisions = %d, want 1", inits)
	}
	if res.Client == nil {
		t.Fatal("query was not dynamic")
	}
	if got := len(res.Client.Decisions()); got != consulted {
		t.Fatalf("audit log has %d consultations, client logged %d", consulted, got)
	}
	if consulted == 0 {
		t.Fatal("expected at least one provider consultation; shrink the initial grab")
	}

	// Export and parse back: the JSON must round-trip the same counts.
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		OtherData struct {
			DroppedSpans int64 `json:"dropped_spans"`
		} `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if doc.OtherData.DroppedSpans != 0 {
		t.Fatalf("export reports %d dropped spans", doc.OtherData.DroppedSpans)
	}
	horizon := c.Now() * 1e6
	jsonMapAttempts, jsonVerdicts := 0, 0
	verdicts := map[string]bool{trace.VerdictInit: true, trace.VerdictGrow: true,
		trace.VerdictWait: true, trace.VerdictEOI: true, trace.VerdictSkip: true}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" {
			continue
		}
		if e.Ts < 0 || e.Ts > horizon+1 || e.Dur < 0 {
			t.Fatalf("event outside the virtual timeline: %+v (horizon %v)", e, horizon)
		}
		if e.Name == trace.SpanMapAttempt {
			if e.Ph != "X" {
				t.Fatalf("map-attempt exported as %q", e.Ph)
			}
			jsonMapAttempts++
		}
		if e.Cat == trace.CatPolicy && verdicts[e.Name] {
			jsonVerdicts++
		}
	}
	if jsonMapAttempts != attempts {
		t.Fatalf("JSON has %d map-attempt events, want %d", jsonMapAttempts, attempts)
	}
	if jsonVerdicts != len(decisions) {
		t.Fatalf("JSON has %d policy events, audit log has %d", jsonVerdicts, len(decisions))
	}
}
