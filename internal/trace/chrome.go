package trace

import (
	"encoding/json"
	"io"
	"strconv"
)

// Chrome trace-event lane layout: each job is a Chrome "process"
// (pid = JobID+1; pid 0 is the cluster), map tasks are threads by task
// index, reduce tasks and the job/policy lanes use high tid bands so
// they never collide with map task indices.
const (
	chromePidCluster   = 0
	chromeTidReduce    = 1_000_000
	chromeTidJobLane   = 2_000_000
	chromeTidPolicy    = 2_000_001
	chromeTidCounters  = 0
	chromeMicrosPerSec = 1e6
)

// WriteChromeTrace exports the buffered spans, the policy audit log
// and the utilization timeline as Chrome trace-event JSON, loadable in
// Perfetto or chrome://tracing. Virtual seconds map to trace
// microseconds, so one virtual second reads as 1 ms in the UI's
// default display unit.
//
// A nil (disabled) tracer writes a valid empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	var events []map[string]any
	jobs := map[int]bool{}

	for _, s := range t.Spans() {
		pid, tid := chromeLane(s)
		if s.Job >= 0 {
			jobs[s.Job] = true
		}
		ev := map[string]any{
			"name": s.Name,
			"cat":  s.Cat,
			"ts":   s.Start * chromeMicrosPerSec,
			"pid":  pid,
			"tid":  tid,
		}
		if s.Instant() {
			ev["ph"] = "i"
			ev["s"] = "t"
		} else {
			ev["ph"] = "X"
			ev["dur"] = s.Duration() * chromeMicrosPerSec
		}
		args := map[string]any{}
		if s.Job >= 0 {
			args["job"] = s.Job
		}
		if s.Task >= 0 {
			args["task"] = s.Task
		}
		if s.Node >= 0 {
			args["node"] = s.Node
		}
		if s.Attempt > 0 {
			args["attempt"] = s.Attempt
		}
		if s.Speculative {
			args["speculative"] = true
		}
		if s.Outcome != "" {
			args["outcome"] = s.Outcome
		}
		if len(args) > 0 {
			ev["args"] = args
		}
		events = append(events, ev)
	}

	for _, d := range t.PolicyDecisions() {
		jobs[d.JobID] = true
		events = append(events, map[string]any{
			"name": d.Verdict,
			"cat":  CatPolicy,
			"ph":   "i",
			"s":    "t",
			"ts":   d.Time * chromeMicrosPerSec,
			"pid":  d.JobID + 1,
			"tid":  chromeTidPolicy,
			"args": map[string]any{
				"policy":             d.Policy,
				"added":              d.Added,
				"grab_limit":         d.GrabLimit,
				"scheduled_maps":     d.ScheduledMaps,
				"completed_maps":     d.CompletedMaps,
				"pending_maps":       d.PendingMaps,
				"running_maps":       d.RunningMaps,
				"map_input_records":  d.MapInputRecords,
				"map_output_records": d.MapOutputRecords,
				"total_slots":        d.TotalSlots,
				"free_slots":         d.FreeSlots,
				"queued_tasks":       d.QueuedTasks,
				"work_threshold_pct": d.WorkThresholdPct,
				"progress_pct":       d.ProgressPct,
			},
		})
	}

	for _, m := range t.MetricSamples() {
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"cpu util %", m.CPUUtilPct},
			{"disk read KB/s", m.DiskReadKBs},
			{"slot occupancy %", m.SlotOccupancyPct},
		} {
			events = append(events, map[string]any{
				"name": c.name,
				"ph":   "C",
				"ts":   m.Time * chromeMicrosPerSec,
				"pid":  chromePidCluster,
				"tid":  chromeTidCounters,
				"args": map[string]any{"value": c.v},
			})
		}
	}

	meta := func(pid int, name string) map[string]any {
		return map[string]any{
			"name": "process_name", "ph": "M", "pid": pid, "tid": 0, "ts": 0,
			"args": map[string]any{"name": name},
		}
	}
	events = append(events, meta(chromePidCluster, "cluster"))
	for id := range jobs {
		events = append(events, meta(id+1, "job "+strconv.Itoa(id)))
	}

	doc := map[string]any{
		"traceEvents":     events,
		"displayTimeUnit": "ms",
		"otherData": map[string]any{
			"clock":         "virtual-seconds-as-microseconds",
			"dropped_spans": t.Dropped(),
		},
	}
	return json.NewEncoder(w).Encode(doc)
}

func chromeLane(s Span) (pid, tid int) {
	switch s.Cat {
	case CatNode:
		return chromePidCluster, s.Node
	case CatMap:
		return s.Job + 1, s.Task
	case CatReduce:
		return s.Job + 1, chromeTidReduce + s.Task
	case CatPolicy:
		return s.Job + 1, chromeTidPolicy
	case CatJob:
		return s.Job + 1, chromeTidJobLane
	default:
		return chromePidCluster, chromeTidCounters
	}
}
