package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafeAndDisabled(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Record(Span{Name: SpanMapAttempt})
	tr.Instant(EventHeartbeat, CatNode, 1, -1, -1, 0)
	tr.Inc(CounterHeartbeats, 1)
	tr.Observe(HistMapDuration, 1)
	tr.RecordPolicyDecision(PolicyDecision{})
	tr.RecordMetricSample(MetricSample{Time: 1})
	tr.OnMetricSample(func(MetricSample) {})
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer has spans: %v", got)
	}
	if tr.Counter(CounterHeartbeats) != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer accumulated state")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer trace is not valid JSON: %v", err)
	}
}

func TestNewDisabledReturnsNil(t *testing.T) {
	if New(Config{}) != nil {
		t.Fatal("New with Enabled=false must return nil")
	}
	if New(Config{Enabled: true}) == nil {
		t.Fatal("New with Enabled=true returned nil")
	}
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	if c.capacity() != DefaultCapacity {
		t.Fatalf("capacity() = %d", c.capacity())
	}
	if c.SampleInterval() != DefaultSampleIntervalS {
		t.Fatalf("SampleInterval() = %v", c.SampleInterval())
	}
	c = Config{Capacity: 8, SampleIntervalS: 5}
	if c.capacity() != 8 || c.SampleInterval() != 5 {
		t.Fatalf("overrides ignored: %d, %v", c.capacity(), c.SampleInterval())
	}
}

func TestRingKeepsNewestAndCountsDropped(t *testing.T) {
	tr := New(Config{Enabled: true, Capacity: 4})
	for i := 0; i < 10; i++ {
		tr.Record(Span{Name: SpanMapAttempt, Start: float64(i), End: float64(i) + 1, Task: i})
	}
	got := tr.Spans()
	if len(got) != 4 {
		t.Fatalf("len(Spans()) = %d, want 4", len(got))
	}
	for i, s := range got {
		if s.Task != 6+i {
			t.Fatalf("Spans()[%d].Task = %d, want %d (oldest-first, newest kept)", i, s.Task, 6+i)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped() = %d, want 6", tr.Dropped())
	}
	if tr.CountSpans(SpanMapAttempt) != 4 {
		t.Fatalf("CountSpans = %d", tr.CountSpans(SpanMapAttempt))
	}
}

func TestRingPartiallyFilled(t *testing.T) {
	tr := New(Config{Enabled: true, Capacity: 8})
	for i := 0; i < 3; i++ {
		tr.Record(Span{Name: SpanQueueWait, Task: i})
	}
	got := tr.Spans()
	if len(got) != 3 || got[0].Task != 0 || got[2].Task != 2 {
		t.Fatalf("partial ring wrong: %+v", got)
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped() = %d", tr.Dropped())
	}
}

// TestSpansSinceIncrementalCursor drives the cursor API through every
// ring state: partial fill, exact fill, wrapped with losses, and a
// stale cursor older than the retained window.
func TestSpansSinceIncrementalCursor(t *testing.T) {
	tr := New(Config{Enabled: true, Capacity: 4})

	if got, cur := tr.SpansSince(0); len(got) != 0 || cur != 0 {
		t.Fatalf("empty ring: got %d spans, cursor %d", len(got), cur)
	}

	// Partial fill: sequences 0..2.
	for i := 0; i < 3; i++ {
		tr.Record(Span{Name: SpanQueueWait, Task: i})
	}
	got, cur := tr.SpansSince(0)
	if len(got) != 3 || got[0].Task != 0 || got[2].Task != 2 || cur != 3 {
		t.Fatalf("partial fill: %+v cursor %d", got, cur)
	}
	if got, cur2 := tr.SpansSince(cur); len(got) != 0 || cur2 != 3 {
		t.Fatalf("caught-up cursor returned %d spans, cursor %d", len(got), cur2)
	}

	// Fill past capacity: sequences 3..9, ring retains 6..9.
	for i := 3; i < 10; i++ {
		tr.Record(Span{Name: SpanQueueWait, Task: i})
	}
	got, cur = tr.SpansSince(cur)
	if cur != 10 {
		t.Fatalf("cursor = %d, want 10", cur)
	}
	if len(got) != 4 || got[0].Task != 6 || got[3].Task != 9 {
		t.Fatalf("wrapped reads dropped the wrong spans: %+v", got)
	}
	if tr.SpanCount() != 10 {
		t.Fatalf("SpanCount = %d, want 10", tr.SpanCount())
	}

	// Mid-window cursor on a wrapped ring.
	tr.Record(Span{Name: SpanQueueWait, Task: 10}) // retains 7..10
	got, cur = tr.SpansSince(9)
	if len(got) != 2 || got[0].Task != 9 || got[1].Task != 10 || cur != 11 {
		t.Fatalf("mid-window read: %+v cursor %d", got, cur)
	}

	// A stale cursor (0) clamps to the oldest retained sequence.
	got, _ = tr.SpansSince(0)
	if len(got) != 4 || got[0].Task != 7 {
		t.Fatalf("stale cursor read: %+v", got)
	}

	// Nil tracer is safe.
	if got, cur := (*Tracer)(nil).SpansSince(5); got != nil || cur != 0 {
		t.Fatalf("nil tracer SpansSince = %v, %d", got, cur)
	}
	if (*Tracer)(nil).SpanCount() != 0 {
		t.Fatal("nil tracer SpanCount != 0")
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Inc(CounterMapAttempts, 2)
	tr.Inc(CounterMapAttempts, 3)
	if got := tr.Counter(CounterMapAttempts); got != 5 {
		t.Fatalf("counter = %d", got)
	}
	if got := tr.Counter("never-touched"); got != 0 {
		t.Fatalf("untouched counter = %d", got)
	}
	for _, v := range []float64{2, 8, 5} {
		tr.Observe(HistMapDuration, v)
	}
	h, ok := tr.Histogram(HistMapDuration)
	if !ok {
		t.Fatal("histogram missing")
	}
	if h.Count != 3 || h.Sum != 15 || h.Min != 2 || h.Max != 8 {
		t.Fatalf("histogram = %+v", h)
	}
	if h.Mean() != 5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if _, ok := tr.Histogram("never-touched"); ok {
		t.Fatal("phantom histogram")
	}
	var zero HistogramSnapshot
	if zero.Mean() != 0 {
		t.Fatal("empty histogram mean non-zero")
	}
	names := tr.MetricNames()
	if len(names) != 2 || names[0] != CounterMapAttempts || names[1] != HistMapDuration {
		t.Fatalf("MetricNames = %v", names)
	}
}

func TestPolicyLogCountsEvaluations(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.RecordPolicyDecision(PolicyDecision{Time: 1, JobID: 0, Policy: "LA", Verdict: VerdictGrow, Added: 4})
	tr.RecordPolicyDecision(PolicyDecision{Time: 2, JobID: 0, Policy: "LA", Verdict: VerdictEOI})
	ds := tr.PolicyDecisions()
	if len(ds) != 2 || ds[0].Verdict != VerdictGrow || ds[1].Verdict != VerdictEOI {
		t.Fatalf("decisions = %+v", ds)
	}
	if got := tr.Counter(CounterPolicyEvals); got != 2 {
		t.Fatalf("policy.evaluations = %d", got)
	}
}

func TestMetricSampleFanOut(t *testing.T) {
	tr := New(Config{Enabled: true})
	var got []MetricSample
	tr.OnMetricSample(func(m MetricSample) { got = append(got, m) })
	tr.RecordMetricSample(MetricSample{Time: 30, CPUUtilPct: 50})
	tr.RecordMetricSample(MetricSample{Time: 60, CPUUtilPct: 25})
	if len(got) != 2 || got[1].Time != 60 {
		t.Fatalf("subscriber saw %+v", got)
	}
	if len(tr.MetricSamples()) != 2 {
		t.Fatalf("timeline = %+v", tr.MetricSamples())
	}
}

func TestWriteChromeTraceUnitsAndLanes(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Record(Span{Name: SpanMapAttempt, Cat: CatMap, Start: 1.5, End: 3.5, Job: 0, Task: 7, Attempt: 1, Node: 2, Outcome: OutcomeOK})
	tr.Instant(EventHeartbeat, CatNode, 2, -1, -1, 3)
	tr.RecordPolicyDecision(PolicyDecision{Time: 4, JobID: 0, Policy: "LA", Verdict: VerdictGrow, Added: 2})
	tr.RecordMetricSample(MetricSample{Time: 30, CPUUtilPct: 42})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  int            `json:"pid"`
			Tid  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	byName := map[string]int{}
	for _, e := range doc.TraceEvents {
		byName[e.Name]++
		switch e.Name {
		case SpanMapAttempt:
			if e.Ph != "X" || e.Ts != 1.5e6 || e.Dur != 2e6 {
				t.Fatalf("map-attempt event wrong: %+v", e)
			}
			if e.Pid != 1 || e.Tid != 7 {
				t.Fatalf("map-attempt lane = pid %d tid %d", e.Pid, e.Tid)
			}
			if e.Args["outcome"] != OutcomeOK {
				t.Fatalf("map-attempt args = %v", e.Args)
			}
		case EventHeartbeat:
			if e.Ph != "i" || e.Pid != 0 || e.Tid != 3 {
				t.Fatalf("heartbeat event wrong: %+v", e)
			}
		case VerdictGrow:
			if e.Ph != "i" || e.Cat != CatPolicy || e.Ts != 4e6 {
				t.Fatalf("policy event wrong: %+v", e)
			}
		case "cpu util %":
			if e.Ph != "C" || e.Ts != 30e6 || e.Args["value"] != 42.0 {
				t.Fatalf("counter event wrong: %+v", e)
			}
		}
	}
	for _, want := range []string{SpanMapAttempt, EventHeartbeat, VerdictGrow, "cpu util %", "disk read KB/s", "slot occupancy %", "process_name"} {
		if byName[want] == 0 {
			t.Fatalf("missing %q events in export; got %v", want, byName)
		}
	}
}

func TestCSVExports(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.RecordMetricSample(MetricSample{Time: 30, CPUUtilPct: 10, DiskReadKBs: 20, SlotOccupancyPct: 30})
	tr.RecordPolicyDecision(PolicyDecision{Time: 4, JobID: 1, Policy: "MA", Verdict: VerdictWait, GrabLimit: 8})

	var buf bytes.Buffer
	if err := tr.WriteTimelineCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "time_s,") || lines[1] != "30,10,20,30" {
		t.Fatalf("timeline CSV = %q", buf.String())
	}

	buf.Reset()
	if err := tr.WritePolicyCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.Contains(lines[1], ",MA,WAIT,") {
		t.Fatalf("policy CSV = %q", buf.String())
	}
	if got := len(strings.Split(lines[0], ",")); got != len(strings.Split(lines[1], ",")) {
		t.Fatalf("policy CSV header/row column mismatch: %q", buf.String())
	}
}
