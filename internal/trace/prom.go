package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text-exposition encoding (version 0.0.4). The encoder is
// deliberately small: families are sorted by name, samples within a
// family keep their given order (callers build them deterministically),
// metric names are sanitized to the legal charset, and label values are
// escaped per the spec (backslash, double-quote, newline).

// PromType is a Prometheus metric family type.
type PromType string

const (
	PromCounter   PromType = "counter"
	PromGauge     PromType = "gauge"
	PromUntyped   PromType = "untyped"
	PromHistogram PromType = "histogram"
)

// PromLabel is one name="value" pair on a sample.
type PromLabel struct {
	Name  string
	Value string
}

// PromSample is one exposition line's worth of data. Suffix, when set,
// is appended verbatim to the sanitized family name — histogram
// families use it to emit the spec's _bucket/_sum/_count series under
// one # TYPE declaration.
type PromSample struct {
	Labels []PromLabel
	Value  float64
	Suffix string
}

// PromFamily is a named metric family: a HELP line, a TYPE line, and
// one or more samples.
type PromFamily struct {
	Name    string
	Help    string
	Type    PromType
	Samples []PromSample
}

// PromName sanitizes s into a legal Prometheus metric or label name:
// letters, digits, underscores, and (for metric names) colons survive;
// the registry's dots become underscores; anything else becomes an
// underscore; a leading digit gains an underscore prefix.
func PromName(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

var promValueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promHelpEscaper escapes HELP text: only backslash and newline, per
// the exposition format (quotes are legal in HELP).
var promHelpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// WritePrometheus encodes the families in deterministic order: sorted
// by sanitized family name, each with # HELP and # TYPE lines followed
// by its samples.
func WritePrometheus(w io.Writer, families []PromFamily) error {
	sorted := append([]PromFamily(nil), families...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return PromName(sorted[i].Name) < PromName(sorted[j].Name)
	})
	for _, f := range sorted {
		name := PromName(f.Name)
		if name == "" || len(f.Samples) == 0 {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, promHelpEscaper.Replace(f.Help)); err != nil {
				return err
			}
		}
		typ := f.Type
		if typ == "" {
			typ = PromUntyped
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, typ); err != nil {
			return err
		}
		for _, s := range f.Samples {
			if err := writePromSample(w, name, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromSample(w io.Writer, name string, s PromSample) error {
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(s.Suffix)
	if len(s.Labels) > 0 {
		b.WriteByte('{')
		for i, l := range s.Labels {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(PromName(l.Name))
			b.WriteString(`="`)
			b.WriteString(promValueEscaper.Replace(l.Value))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	_, err := fmt.Fprintf(w, "%s %v\n", b.String(), s.Value)
	return err
}

// PromFamilies converts the tracer's registry into exposition families:
// counters become <prefix><name>_total counters, gauges become plain
// gauges, histograms explode into _count/_sum counters plus _min/_max
// gauges (the registry keeps scalar aggregates, not buckets). Names are
// sanitized, families sorted by WritePrometheus.
func (t *Tracer) PromFamilies(prefix string) []PromFamily {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	fams := make([]PromFamily, 0, len(t.reg.counters)+len(t.reg.gauges)+4*len(t.reg.hists))
	for name, v := range t.reg.counters {
		fams = append(fams, PromFamily{
			Name:    prefix + name + "_total",
			Help:    "Registry counter " + name + ".",
			Type:    PromCounter,
			Samples: []PromSample{{Value: float64(v)}},
		})
	}
	for name, g := range t.reg.gauges {
		fams = append(fams, PromFamily{
			Name:    prefix + name,
			Help:    "Registry gauge " + name + " (most recent level).",
			Type:    PromGauge,
			Samples: []PromSample{{Value: g.Last}},
		})
	}
	for name, h := range t.reg.hists {
		fams = append(fams,
			PromFamily{
				Name:    prefix + name + "_count",
				Help:    "Observations folded into histogram " + name + ".",
				Type:    PromCounter,
				Samples: []PromSample{{Value: float64(h.Count)}},
			},
			PromFamily{
				Name:    prefix + name + "_sum",
				Help:    "Sum of histogram " + name + " observations.",
				Type:    PromCounter,
				Samples: []PromSample{{Value: h.Sum}},
			},
			PromFamily{
				Name:    prefix + name + "_min",
				Help:    "Minimum observation of histogram " + name + ".",
				Type:    PromGauge,
				Samples: []PromSample{{Value: h.Min}},
			},
			PromFamily{
				Name:    prefix + name + "_max",
				Help:    "Maximum observation of histogram " + name + ".",
				Type:    PromGauge,
				Samples: []PromSample{{Value: h.Max}},
			},
		)
	}
	return fams
}
