package trace

import (
	"math"
	"sort"
)

// Well-known registry metric names emitted by the runtime. The
// registry is open — any name may be used — but these are the ones the
// instrumentation produces and tests assert on.
const (
	CounterHeartbeats     = "heartbeats"
	CounterJobsSubmitted  = "jobs.submitted"
	CounterJobsFinished   = "jobs.finished"
	CounterMapAttempts    = "map.attempts"
	CounterMapFailed      = "map.failed"
	CounterMapKilled      = "map.killed"
	CounterMapSpeculative = "map.speculative"
	CounterMapLocal       = "map.local"
	CounterMapNonLocal    = "map.nonlocal"
	CounterPolicyEvals    = "policy.evaluations"
	// CounterScanAsync counts map attempts whose record scan was joined
	// from the scan executor; CounterScanStalls counts the subset whose
	// join actually blocked on real compute (real time slower than
	// simulated time).
	CounterScanAsync  = "map.scan_async"
	CounterScanStalls = "map.scan_stalls"
	// CounterScanBlocksRead / CounterScanBlocksSkipped count statistics
	// sub-blocks map attempts read vs. skipped via the zone map (the
	// skip/index input paths); under the full path nothing is skipped.
	CounterScanBlocksRead    = "scan.blocks_read"
	CounterScanBlocksSkipped = "scan.blocks_skipped"
	// Session-engine residency metrics (internal/mapreduce.ResidentStore
	// and the MapOutputCache). memo_hits/memo_misses surface the memo
	// cache's Stats() per runtime: one increment per lookup, from either
	// the scan-executor submit path or the inline execMapper path.
	// delta_shuffle_hits counts map completions served from an already
	// partitioned resident part (memory engine mode), resident_stores
	// counts parts admitted, resident_evictions counts parts dropped by
	// the bounded-memory policy, and residency_hints counts split batches
	// the Input Provider round loop marked session-hot.
	CounterMemoHits         = "engine.memo_hits"
	CounterMemoMisses       = "engine.memo_misses"
	CounterDeltaShuffleHits = "engine.delta_shuffle_hits"
	CounterResidentStores   = "engine.resident_stores"
	CounterResidentEvicted  = "engine.resident_evictions"
	CounterResidencyHints   = "engine.residency_hints"

	HistMapDuration    = "map.duration_s"
	HistMapQueueWait   = "map.queue_wait_s"
	HistReduceDuration = "reduce.duration_s"

	GaugeCPUUtilPct      = "cluster.cpu_util_pct"
	GaugeDiskReadKBs     = "cluster.disk_read_kb_s"
	GaugeNetworkUtilPct  = "cluster.network_util_pct"
	GaugeMapSlotPct      = "cluster.map_slot_pct"
	GaugeReduceSlotPct   = "cluster.reduce_slot_pct"
	GaugeQueuedMaps      = "cluster.queued_map_tasks"
	GaugeQueuedReduces   = "cluster.queued_reduce_tasks"
	GaugeRunningJobs     = "cluster.running_jobs"
	GaugeVirtualTime     = "sim.virtual_time_s"
	GaugeProcessedEvents = "sim.processed_events"
	// Residency levels: encoded bytes of resident shuffle partitions in
	// the store, and modeled bytes of the DFS blocks it has pinned.
	GaugeResidentBytes = "engine.resident_bytes"
	GaugePinnedBytes   = "engine.pinned_bytes"
)

// HistogramSnapshot summarises one histogram's observations.
type HistogramSnapshot struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// GaugeSnapshot summarises one gauge's history of set values: the most
// recent value plus min/max/avg aggregation over every Set since the
// tracer was created. Unlike a histogram a gauge is a point-in-time
// level (slots in use, queue depth), so Last is the primary reading and
// the aggregates describe the level's range over the run.
type GaugeSnapshot struct {
	Last  float64
	Min   float64
	Max   float64
	Sum   float64
	Count int64
}

// Avg returns Sum/Count (0 when the gauge was never set).
func (g GaugeSnapshot) Avg() float64 {
	if g.Count == 0 {
		return 0
	}
	return g.Sum / float64(g.Count)
}

// registry is the counter/gauge/histogram store behind a Tracer. It has
// no lock of its own: the Tracer's mutex guards it.
type registry struct {
	counters map[string]int64
	gauges   map[string]*GaugeSnapshot
	hists    map[string]*HistogramSnapshot
}

func newRegistry() registry {
	return registry{
		counters: make(map[string]int64),
		gauges:   make(map[string]*GaugeSnapshot),
		hists:    make(map[string]*HistogramSnapshot),
	}
}

// Inc adds delta to the named counter.
func (t *Tracer) Inc(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg.counters[name] += delta
}

// Counter returns the named counter's value (0 when never incremented).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.counters[name]
}

// Counters returns a copy of every counter.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.reg.counters))
	for k, v := range t.reg.counters {
		out[k] = v
	}
	return out
}

// SetGauge records the named gauge's current level and folds it into
// the gauge's min/max/avg aggregates.
func (t *Tracer) SetGauge(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.reg.gauges[name]
	if g == nil {
		g = &GaugeSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
		t.reg.gauges[name] = g
	}
	g.Last = v
	g.Sum += v
	g.Count++
	if v < g.Min {
		g.Min = v
	}
	if v > g.Max {
		g.Max = v
	}
}

// Gauge returns the named gauge's snapshot and whether it was ever set.
func (t *Tracer) Gauge(name string) (GaugeSnapshot, bool) {
	if t == nil {
		return GaugeSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	g := t.reg.gauges[name]
	if g == nil {
		return GaugeSnapshot{}, false
	}
	return *g, true
}

// Gauges returns a copy of every gauge snapshot.
func (t *Tracer) Gauges() map[string]GaugeSnapshot {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]GaugeSnapshot, len(t.reg.gauges))
	for k, v := range t.reg.gauges {
		out[k] = *v
	}
	return out
}

// Observe folds a value into the named histogram.
func (t *Tracer) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.reg.hists[name]
	if h == nil {
		h = &HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
		t.reg.hists[name] = h
	}
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Histogram returns the named histogram's snapshot and whether any
// value was ever observed.
func (t *Tracer) Histogram(name string) (HistogramSnapshot, bool) {
	if t == nil {
		return HistogramSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.reg.hists[name]
	if h == nil {
		return HistogramSnapshot{}, false
	}
	return *h, true
}

// MetricNames returns every registered counter, gauge, and histogram
// name, sorted, for diagnostics dumps.
func (t *Tracer) MetricNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.reg.counters)+len(t.reg.gauges)+len(t.reg.hists))
	for k := range t.reg.counters {
		names = append(names, k)
	}
	for k := range t.reg.gauges {
		names = append(names, k)
	}
	for k := range t.reg.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
