package trace

import (
	"math"
	"sort"
)

// Well-known registry metric names emitted by the runtime. The
// registry is open — any name may be used — but these are the ones the
// instrumentation produces and tests assert on.
const (
	CounterHeartbeats     = "heartbeats"
	CounterJobsSubmitted  = "jobs.submitted"
	CounterJobsFinished   = "jobs.finished"
	CounterMapAttempts    = "map.attempts"
	CounterMapFailed      = "map.failed"
	CounterMapKilled      = "map.killed"
	CounterMapSpeculative = "map.speculative"
	CounterMapLocal       = "map.local"
	CounterMapNonLocal    = "map.nonlocal"
	CounterPolicyEvals    = "policy.evaluations"

	HistMapDuration    = "map.duration_s"
	HistMapQueueWait   = "map.queue_wait_s"
	HistReduceDuration = "reduce.duration_s"
)

// HistogramSnapshot summarises one histogram's observations.
type HistogramSnapshot struct {
	Count int64
	Sum   float64
	Min   float64
	Max   float64
}

// Mean returns Sum/Count (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// registry is the counter/histogram store behind a Tracer. It has no
// lock of its own: the Tracer's mutex guards it.
type registry struct {
	counters map[string]int64
	hists    map[string]*HistogramSnapshot
}

func newRegistry() registry {
	return registry{
		counters: make(map[string]int64),
		hists:    make(map[string]*HistogramSnapshot),
	}
}

// Inc adds delta to the named counter.
func (t *Tracer) Inc(name string, delta int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reg.counters[name] += delta
}

// Counter returns the named counter's value (0 when never incremented).
func (t *Tracer) Counter(name string) int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.reg.counters[name]
}

// Counters returns a copy of every counter.
func (t *Tracer) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]int64, len(t.reg.counters))
	for k, v := range t.reg.counters {
		out[k] = v
	}
	return out
}

// Observe folds a value into the named histogram.
func (t *Tracer) Observe(name string, v float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.reg.hists[name]
	if h == nil {
		h = &HistogramSnapshot{Min: math.Inf(1), Max: math.Inf(-1)}
		t.reg.hists[name] = h
	}
	h.Count++
	h.Sum += v
	if v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
}

// Histogram returns the named histogram's snapshot and whether any
// value was ever observed.
func (t *Tracer) Histogram(name string) (HistogramSnapshot, bool) {
	if t == nil {
		return HistogramSnapshot{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.reg.hists[name]
	if h == nil {
		return HistogramSnapshot{}, false
	}
	return *h, true
}

// MetricNames returns every registered counter and histogram name,
// sorted, for diagnostics dumps.
func (t *Tracer) MetricNames() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	names := make([]string, 0, len(t.reg.counters)+len(t.reg.hists))
	for k := range t.reg.counters {
		names = append(names, k)
	}
	for k := range t.reg.hists {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
