package trace

import (
	"fmt"
	"io"
)

// WriteMetricCSV writes a utilization timeline as CSV with the
// paper's §V-D columns, one row per poll interval.
func WriteMetricCSV(w io.Writer, samples []MetricSample) error {
	if _, err := io.WriteString(w, "time_s,cpu_util_pct,disk_read_kbs,slot_occupancy_pct\n"); err != nil {
		return err
	}
	for _, m := range samples {
		if _, err := fmt.Fprintf(w, "%g,%g,%g,%g\n",
			m.Time, m.CPUUtilPct, m.DiskReadKBs, m.SlotOccupancyPct); err != nil {
			return err
		}
	}
	return nil
}

// WriteTimelineCSV writes the tracer's own utilization timeline. A
// nil tracer writes just the header.
func (t *Tracer) WriteTimelineCSV(w io.Writer) error {
	return WriteMetricCSV(w, t.MetricSamples())
}

// WritePolicyCSV writes the policy decision audit log as CSV, one row
// per Input Provider evaluation.
func (t *Tracer) WritePolicyCSV(w io.Writer) error {
	if _, err := io.WriteString(w,
		"time_s,job,policy,verdict,added,grab_limit,scheduled_maps,completed_maps,"+
			"pending_maps,running_maps,map_input_records,map_output_records,"+
			"total_slots,free_slots,queued_tasks,work_threshold_pct,progress_pct\n"); err != nil {
		return err
	}
	for _, d := range t.PolicyDecisions() {
		if _, err := fmt.Fprintf(w, "%g,%d,%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%d,%g,%g\n",
			d.Time, d.JobID, d.Policy, d.Verdict, d.Added, d.GrabLimit,
			d.ScheduledMaps, d.CompletedMaps, d.PendingMaps, d.RunningMaps,
			d.MapInputRecords, d.MapOutputRecords,
			d.TotalSlots, d.FreeSlots, d.QueuedTasks,
			d.WorkThresholdPct, d.ProgressPct); err != nil {
			return err
		}
	}
	return nil
}
