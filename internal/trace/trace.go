// Package trace is the virtual-clock-aware observability layer: a
// typed span/event recorder buffered in a fixed-capacity ring, an
// append-only audit log of Input Provider policy decisions, a periodic
// utilization timeline, and a counter/histogram registry — with
// exporters for Chrome trace-event JSON (Perfetto / chrome://tracing)
// and CSV timelines.
//
// The package is deliberately leaf-level: it knows nothing about the
// runtime that feeds it, so internal/sim, internal/mapreduce,
// internal/core, internal/metrics and internal/experiments can all
// depend on it without cycles. All timestamps are virtual seconds as
// reported by the discrete-event engine.
//
// Every method is safe on a nil *Tracer and does nothing, so
// instrumentation sites call unconditionally; a disabled run costs one
// nil check per site.
package trace

import "sync"

// Default sizing for Config zero values.
const (
	// DefaultCapacity is the span ring capacity (oldest spans are
	// evicted beyond it; see Tracer.Dropped).
	DefaultCapacity = 1 << 16
	// DefaultSampleIntervalS is the utilization poll period, the
	// paper's §V-D 30-second monitoring interval.
	DefaultSampleIntervalS = 30.0
)

// Config tunes the tracing subsystem. It is embedded in
// mapreduce.Config as the single switch for the whole layer.
type Config struct {
	// Enabled turns tracing on; when false no Tracer is constructed
	// and every instrumentation site reduces to a nil check.
	Enabled bool
	// Capacity bounds the span ring (default DefaultCapacity). The
	// policy audit log and the metric timeline are not ring-bounded:
	// they are the ground truth experiments re-read, and they grow by
	// one entry per evaluation / poll interval, not per task.
	Capacity int
	// SampleIntervalS is the utilization poll period in virtual
	// seconds (default DefaultSampleIntervalS).
	SampleIntervalS float64
}

func (c Config) capacity() int {
	if c.Capacity > 0 {
		return c.Capacity
	}
	return DefaultCapacity
}

// SampleInterval returns the effective utilization poll period.
func (c Config) SampleInterval() float64 {
	if c.SampleIntervalS > 0 {
		return c.SampleIntervalS
	}
	return DefaultSampleIntervalS
}

// Span names emitted by the runtime. A map attempt's timeline is
// queue-wait → startup → disk-read [→ net-read] → cpu, enclosed in a
// map-attempt span; a reduce attempt's is startup → shuffle → sort →
// reduce → output-write, enclosed in a reduce-attempt span.
const (
	SpanMapAttempt    = "map-attempt"
	SpanQueueWait     = "queue-wait"
	SpanStartup       = "startup"
	SpanDiskRead      = "disk-read"
	SpanNetRead       = "net-read"
	SpanMapCPU        = "cpu"
	SpanReduceAttempt = "reduce-attempt"
	SpanShuffle       = "shuffle"
	SpanSort          = "sort"
	SpanReduceCPU     = "reduce"
	SpanOutputWrite   = "output-write"
	SpanJob           = "job"
	SpanMapPhase      = "map-phase"
	SpanReducePhase   = "reduce-phase"

	// Instant events.
	EventHeartbeat         = "heartbeat"
	EventJobSubmitted      = "job-submitted"
	EventSpeculativeLaunch = "speculative-launch"
	EventMapKilled         = "map-killed"
	EventMapFailed         = "map-failed"
	EventPolicySwitch      = "policy-switch"
)

// Span categories (Chrome trace "cat" field).
const (
	CatMap    = "map"
	CatReduce = "reduce"
	CatJob    = "job"
	CatNode   = "node"
	CatPolicy = "policy"
)

// Attempt outcomes recorded on enclosing map-attempt/reduce-attempt
// spans.
const (
	OutcomeOK     = "ok"
	OutcomeFailed = "failed"
	OutcomeKilled = "killed"
	// OutcomeLate marks an attempt whose work finished after a sibling
	// already completed the task (or the job died) in the same instant;
	// its result is discarded and it appears in no JobTracker counter.
	OutcomeLate = "late"
)

// Span is one typed interval (or, when End == Start, one instant
// event) on the virtual timeline, keyed by job/task/attempt/node.
// Fields that do not apply hold -1 (ids) or 0 (attempt).
type Span struct {
	// Name is one of the Span*/Event* constants (or a caller-defined
	// name for external producers).
	Name string
	// Cat is the Chrome trace category (Cat* constants).
	Cat string
	// Start and End bound the span in virtual seconds; End == Start
	// marks an instant event.
	Start, End float64
	// Job, Task, Attempt, Node key the span to the runtime entity.
	Job, Task, Attempt, Node int
	// Speculative marks backup attempts.
	Speculative bool
	// Outcome is set on enclosing attempt spans (Outcome* constants).
	Outcome string
}

// Instant reports whether the span is a zero-duration event.
func (s Span) Instant() bool { return s.End == s.Start }

// Duration returns End - Start.
func (s Span) Duration() float64 { return s.End - s.Start }

// MetricSample is one interval-averaged utilization reading, the
// trace-layer form of the paper's 30-second monitoring rows.
type MetricSample struct {
	// Time is the interval's end (virtual seconds).
	Time float64
	// CPUUtilPct is mean CPU utilisation over the interval, in percent
	// of total core capacity.
	CPUUtilPct float64
	// DiskReadKBs is the mean per-disk transfer rate over the interval
	// in KB/s.
	DiskReadKBs float64
	// SlotOccupancyPct is the mean fraction of map slots occupied.
	SlotOccupancyPct float64
}

// Tracer records spans, policy decisions, metric samples, counters and
// histograms. A nil Tracer is the disabled state: every method is a
// no-op and Enabled reports false.
//
// The simulation engine is single-threaded, but experiments run many
// engines concurrently and exporters may be called from test
// goroutines, so the Tracer locks internally.
type Tracer struct {
	mu sync.Mutex

	cfg     Config
	spans   []Span // ring storage, capacity cfg.capacity()
	head    int    // next write position
	n       int    // occupied entries (<= cap)
	dropped int64

	decisions  []PolicyDecision
	samples    []MetricSample
	sampleSubs []func(MetricSample)

	reg registry
}

// New returns a Tracer for the configuration, or nil (the disabled
// tracer) when cfg.Enabled is false.
func New(cfg Config) *Tracer {
	if !cfg.Enabled {
		return nil
	}
	return &Tracer{cfg: cfg, reg: newRegistry()}
}

// Enabled reports whether the tracer records anything. It is the
// guard instrumentation sites use before assembling expensive args.
func (t *Tracer) Enabled() bool { return t != nil }

// Config returns the tracer's configuration (zero value when nil).
func (t *Tracer) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// Record appends a span to the ring, evicting the oldest when full.
func (t *Tracer) Record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	capacity := t.cfg.capacity()
	if len(t.spans) < capacity {
		t.spans = append(t.spans, s)
		t.head = len(t.spans) % capacity
		t.n = len(t.spans)
		return
	}
	t.spans[t.head] = s
	t.head = (t.head + 1) % capacity
	t.dropped++
}

// Instant records a zero-duration event.
func (t *Tracer) Instant(name, cat string, ts float64, job, task, node int) {
	t.Record(Span{Name: name, Cat: cat, Start: ts, End: ts, Job: job, Task: task, Node: node})
}

// Spans returns the buffered spans oldest-first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.n)
	if t.n < len(t.spans) || t.n < t.cfg.capacity() {
		out = append(out, t.spans[:t.n]...)
		return out
	}
	out = append(out, t.spans[t.head:]...)
	out = append(out, t.spans[:t.head]...)
	return out
}

// SpanCount returns the total number of spans ever recorded (buffered
// plus evicted): the sequence number the next Record call will receive.
// Pairing it with SpansSince lets incremental consumers (the qstats
// registry) poll cheaply without copying the whole ring.
func (t *Tracer) SpanCount() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int64(t.n) + t.dropped
}

// SpansSince returns the spans recorded at sequence >= from that are
// still buffered (oldest-first), plus the new cursor (the total
// recorded count). Spans evicted from the ring before being read are
// silently skipped — callers needing loss detection compare the
// requested cursor against SpanCount minus the buffered length. It
// mirrors PolicyDecisionsSince for the span ring.
func (t *Tracer) SpansSince(from int64) ([]Span, int64) {
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	total := int64(t.n) + t.dropped
	oldest := total - int64(t.n)
	if from < oldest {
		from = oldest
	}
	if from >= total {
		return nil, total
	}
	out := make([]Span, 0, total-from)
	if t.n < len(t.spans) || t.n < t.cfg.capacity() {
		// Ring not yet wrapped: sequence i lives at index i.
		out = append(out, t.spans[from:total]...)
		return out, total
	}
	// Wrapped ring: the oldest sequence lives at head.
	start := (t.head + int(from-oldest)) % len(t.spans)
	if start+int(total-from) <= len(t.spans) {
		out = append(out, t.spans[start:start+int(total-from)]...)
		return out, total
	}
	out = append(out, t.spans[start:]...)
	out = append(out, t.spans[:int(total-from)-(len(t.spans)-start)]...)
	return out, total
}

// CountSpans returns how many buffered spans carry the name.
func (t *Tracer) CountSpans(name string) int {
	n := 0
	for _, s := range t.Spans() {
		if s.Name == name {
			n++
		}
	}
	return n
}

// Dropped returns how many spans were evicted from the full ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// RecordMetricSample appends a utilization reading to the timeline and
// fans it out to subscribers (e.g. metrics.Sampler).
func (t *Tracer) RecordMetricSample(m MetricSample) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.samples = append(t.samples, m)
	subs := t.sampleSubs
	t.mu.Unlock()
	for _, fn := range subs {
		fn(m)
	}
}

// MetricSamples returns the utilization timeline collected so far.
func (t *Tracer) MetricSamples() []MetricSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]MetricSample(nil), t.samples...)
}

// OnMetricSample subscribes to future utilization readings. Callbacks
// run synchronously on the engine goroutine that polled the sample.
func (t *Tracer) OnMetricSample(fn func(MetricSample)) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampleSubs = append(t.sampleSubs, fn)
}
