package trace

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition encoder byte-for-byte:
// HELP/TYPE lines, label escaping (backslash, quote, newline), name
// sanitization (dots and dashes to underscores, leading digits
// prefixed), and deterministic family ordering regardless of input
// order.
func TestWritePrometheusGolden(t *testing.T) {
	families := []PromFamily{
		{
			Name: "dynmr.node.cpu_util_pct",
			Help: "Per-node CPU utilisation.",
			Type: PromGauge,
			Samples: []PromSample{
				{Labels: []PromLabel{{Name: "node", Value: "0"}}, Value: 87.5},
				{Labels: []PromLabel{{Name: "node", Value: "1"}}, Value: 12},
			},
		},
		{
			Name: "2map.attempts",
			Help: `backslash \ and
newline in help`,
			Type:    PromCounter,
			Samples: []PromSample{{Value: 42}},
		},
		{
			Name: "dynmr.policy.evals",
			Help: "Evaluations per policy.",
			Type: PromCounter,
			Samples: []PromSample{
				{Labels: []PromLabel{{Name: "policy", Value: `LA "quoted" \ slash` + "\nnewline"}}, Value: 7},
			},
		},
		{Name: "empty.family", Help: "No samples: omitted.", Type: PromGauge},
		{Name: "no.type", Samples: []PromSample{{Value: 1.5}}},
	}

	var b strings.Builder
	if err := WritePrometheus(&b, families); err != nil {
		t.Fatal(err)
	}
	want := `# HELP _2map_attempts backslash \\ and\nnewline in help
# TYPE _2map_attempts counter
_2map_attempts 42
# HELP dynmr_node_cpu_util_pct Per-node CPU utilisation.
# TYPE dynmr_node_cpu_util_pct gauge
dynmr_node_cpu_util_pct{node="0"} 87.5
dynmr_node_cpu_util_pct{node="1"} 12
# HELP dynmr_policy_evals Evaluations per policy.
# TYPE dynmr_policy_evals counter
dynmr_policy_evals{policy="LA \"quoted\" \\ slash\nnewline"} 7
# TYPE no_type untyped
no_type 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWritePrometheusHistogramGolden pins the histogram exposition
// byte-for-byte: one # TYPE histogram declaration followed by
// _bucket{le=...} series (cumulative, ending at +Inf), _sum and _count
// — the shape qstats emits for its per-policy latency families.
func TestWritePrometheusHistogramGolden(t *testing.T) {
	families := []PromFamily{
		{
			Name: "dynmr.query.latency_wall_s",
			Help: "Wall-clock query latency.",
			Type: PromHistogram,
			Samples: []PromSample{
				{Suffix: "_bucket", Labels: []PromLabel{{Name: "policy", Value: "LA"}, {Name: "le", Value: "0.001"}}, Value: 0},
				{Suffix: "_bucket", Labels: []PromLabel{{Name: "policy", Value: "LA"}, {Name: "le", Value: "0.004"}}, Value: 3},
				{Suffix: "_bucket", Labels: []PromLabel{{Name: "policy", Value: "LA"}, {Name: "le", Value: "+Inf"}}, Value: 5},
				{Suffix: "_sum", Labels: []PromLabel{{Name: "policy", Value: "LA"}}, Value: 0.0625},
				{Suffix: "_count", Labels: []PromLabel{{Name: "policy", Value: "LA"}}, Value: 5},
			},
		},
	}
	var b strings.Builder
	if err := WritePrometheus(&b, families); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dynmr_query_latency_wall_s Wall-clock query latency.
# TYPE dynmr_query_latency_wall_s histogram
dynmr_query_latency_wall_s_bucket{policy="LA",le="0.001"} 0
dynmr_query_latency_wall_s_bucket{policy="LA",le="0.004"} 3
dynmr_query_latency_wall_s_bucket{policy="LA",le="+Inf"} 5
dynmr_query_latency_wall_s_sum{policy="LA"} 0.0625
dynmr_query_latency_wall_s_count{policy="LA"} 5
`
	if got := b.String(); got != want {
		t.Errorf("histogram exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPromFamiliesFromRegistry(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Inc(CounterMapAttempts, 12)
	tr.SetGauge(GaugeCPUUtilPct, 55.5)
	tr.Observe(HistMapDuration, 2)
	tr.Observe(HistMapDuration, 6)

	var b strings.Builder
	if err := WritePrometheus(&b, tr.PromFamilies("dynmr.")); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE dynmr_map_attempts_total counter",
		"dynmr_map_attempts_total 12",
		"# TYPE dynmr_cluster_cpu_util_pct gauge",
		"dynmr_cluster_cpu_util_pct 55.5",
		"dynmr_map_duration_s_count 2",
		"dynmr_map_duration_s_sum 8",
		"dynmr_map_duration_s_min 2",
		"dynmr_map_duration_s_max 6",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, out)
		}
	}

	if (*Tracer)(nil).PromFamilies("x") != nil {
		t.Fatal("nil tracer produced families")
	}
}
