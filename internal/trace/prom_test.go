package trace

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition encoder byte-for-byte:
// HELP/TYPE lines, label escaping (backslash, quote, newline), name
// sanitization (dots and dashes to underscores, leading digits
// prefixed), and deterministic family ordering regardless of input
// order.
func TestWritePrometheusGolden(t *testing.T) {
	families := []PromFamily{
		{
			Name: "dynmr.node.cpu_util_pct",
			Help: "Per-node CPU utilisation.",
			Type: PromGauge,
			Samples: []PromSample{
				{Labels: []PromLabel{{Name: "node", Value: "0"}}, Value: 87.5},
				{Labels: []PromLabel{{Name: "node", Value: "1"}}, Value: 12},
			},
		},
		{
			Name: "2map.attempts",
			Help: `backslash \ and
newline in help`,
			Type:    PromCounter,
			Samples: []PromSample{{Value: 42}},
		},
		{
			Name: "dynmr.policy.evals",
			Help: "Evaluations per policy.",
			Type: PromCounter,
			Samples: []PromSample{
				{Labels: []PromLabel{{Name: "policy", Value: `LA "quoted" \ slash` + "\nnewline"}}, Value: 7},
			},
		},
		{Name: "empty.family", Help: "No samples: omitted.", Type: PromGauge},
		{Name: "no.type", Samples: []PromSample{{Value: 1.5}}},
	}

	var b strings.Builder
	if err := WritePrometheus(&b, families); err != nil {
		t.Fatal(err)
	}
	want := `# HELP _2map_attempts backslash \\ and\nnewline in help
# TYPE _2map_attempts counter
_2map_attempts 42
# HELP dynmr_node_cpu_util_pct Per-node CPU utilisation.
# TYPE dynmr_node_cpu_util_pct gauge
dynmr_node_cpu_util_pct{node="0"} 87.5
dynmr_node_cpu_util_pct{node="1"} 12
# HELP dynmr_policy_evals Evaluations per policy.
# TYPE dynmr_policy_evals counter
dynmr_policy_evals{policy="LA \"quoted\" \\ slash\nnewline"} 7
# TYPE no_type untyped
no_type 1.5
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestPromFamiliesFromRegistry(t *testing.T) {
	tr := New(Config{Enabled: true})
	tr.Inc(CounterMapAttempts, 12)
	tr.SetGauge(GaugeCPUUtilPct, 55.5)
	tr.Observe(HistMapDuration, 2)
	tr.Observe(HistMapDuration, 6)

	var b strings.Builder
	if err := WritePrometheus(&b, tr.PromFamilies("dynmr.")); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		"# TYPE dynmr_map_attempts_total counter",
		"dynmr_map_attempts_total 12",
		"# TYPE dynmr_cluster_cpu_util_pct gauge",
		"dynmr_cluster_cpu_util_pct 55.5",
		"dynmr_map_duration_s_count 2",
		"dynmr_map_duration_s_sum 8",
		"dynmr_map_duration_s_min 2",
		"dynmr_map_duration_s_max 6",
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing line %q:\n%s", line, out)
		}
	}

	if (*Tracer)(nil).PromFamilies("x") != nil {
		t.Fatal("nil tracer produced families")
	}
}
