package sim

import "testing"

func BenchmarkEventThroughput(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		if e.Pending() > 1024 {
			e.Run()
		}
	}
	e.Run()
}

func BenchmarkSharedResourceChurn(b *testing.B) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 4, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Submit(1, nil)
		if r.ActiveDemands() > 256 {
			e.Run()
		}
	}
	e.Run()
}

// BenchmarkEventCancelChurn exercises the schedule-cancel-reschedule
// pattern SharedResource.reschedule performs on every demand change —
// the case the Event freelist targets.
func BenchmarkEventCancelChurn(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var ev *Event
	for i := 0; i < b.N; i++ {
		if ev != nil {
			e.Cancel(ev)
		}
		ev = e.After(1, func() {})
		if i%1024 == 1023 {
			e.Run()
			ev = nil
		}
	}
	e.Run()
}

func BenchmarkFIFOQueue(b *testing.B) {
	e := NewEngine()
	q := NewFIFOQueue(e, "disk", 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Submit(1, nil)
		if q.QueueLength() > 256 {
			e.Run()
		}
	}
	e.Run()
}
