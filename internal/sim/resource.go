package sim

import (
	"fmt"
	"math"
)

// Demand is an outstanding request for service on a SharedResource.
type Demand struct {
	res       *SharedResource
	remaining float64 // units of work left
	done      func()
	active    bool
}

// Remaining returns the units of work the demand still needs.
func (d *Demand) Remaining() float64 { return d.remaining }

// SharedResource models a processor-sharing server: `capacity` units of
// work per second divided equally among active demands, with each demand
// additionally capped at maxPerUser units/second. It models a disk (bytes
// per second, one stream cannot exceed the platter rate), a node's CPU
// (core-seconds per second, one task cannot exceed one core), or a
// network fabric (bytes per second, one stream capped at NIC rate).
//
// The implementation recomputes the next completion whenever the set of
// active demands changes, which is the standard event-driven realisation
// of a PS queue.
type SharedResource struct {
	eng        *Engine
	name       string
	capacity   float64
	maxPerUser float64

	active     []*Demand
	lastUpdate float64
	// usedIntegral accumulates (aggregate service rate) dt; dividing a
	// window's delta by capacity*dt yields utilisation in [0,1].
	usedIntegral float64
	nextDone     *Event
	// nextTargets are the demands the pending completion event was
	// computed for. When the event fires they are mathematically done;
	// forcing their remaining to zero guards against float rounding
	// producing a zero-length event loop.
	nextTargets []*Demand
}

// NewSharedResource creates a processor-sharing resource. maxPerUser <= 0
// means "no per-user cap" (each user may consume the full capacity when
// alone).
func NewSharedResource(eng *Engine, name string, capacity, maxPerUser float64) *SharedResource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive, got %v", name, capacity))
	}
	if maxPerUser <= 0 {
		maxPerUser = capacity
	}
	return &SharedResource{eng: eng, name: name, capacity: capacity, maxPerUser: maxPerUser}
}

// Name returns the resource's diagnostic name.
func (r *SharedResource) Name() string { return r.name }

// Capacity returns the total service rate.
func (r *SharedResource) Capacity() float64 { return r.capacity }

// ActiveDemands returns the number of demands currently in service.
func (r *SharedResource) ActiveDemands() int { return len(r.active) }

// rate returns the per-demand service rate for n active demands.
func (r *SharedResource) rate(n int) float64 {
	if n == 0 {
		return 0
	}
	return math.Min(r.maxPerUser, r.capacity/float64(n))
}

// UsedIntegral returns the accumulated service (units of work delivered)
// up to the current virtual time. The difference of two readings divided
// by capacity*(t2-t1) is the mean utilisation over the window.
func (r *SharedResource) UsedIntegral() float64 {
	r.advance()
	return r.usedIntegral
}

// Utilization returns the instantaneous utilisation in [0, 1].
func (r *SharedResource) Utilization() float64 {
	n := len(r.active)
	if n == 0 {
		return 0
	}
	return r.rate(n) * float64(n) / r.capacity
}

// Submit enqueues `work` units and calls done when they have been served.
// Zero or negative work completes immediately (done is invoked via the
// event queue to preserve run-to-completion semantics).
func (r *SharedResource) Submit(work float64, done func()) *Demand {
	d := &Demand{res: r, remaining: work, done: done}
	if work <= 0 {
		r.eng.After(0, done)
		return d
	}
	r.advance()
	d.active = true
	r.active = append(r.active, d)
	r.reschedule()
	return d
}

// Cancel withdraws a demand before completion; done is not called.
func (r *SharedResource) Cancel(d *Demand) {
	if d == nil || !d.active {
		return
	}
	r.advance()
	d.active = false
	for i, x := range r.active {
		if x == d {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.reschedule()
}

// advance applies service accrued since lastUpdate to all active demands.
func (r *SharedResource) advance() {
	now := r.eng.Now()
	dt := now - r.lastUpdate
	if dt > 0 {
		n := len(r.active)
		if n > 0 {
			rate := r.rate(n)
			for _, d := range r.active {
				d.remaining -= rate * dt
				if d.remaining < 0 {
					d.remaining = 0
				}
			}
			r.usedIntegral += rate * float64(n) * dt
		}
		r.lastUpdate = now
	} else if dt == 0 {
		r.lastUpdate = now
	}
}

// reschedule recomputes the single pending "next completion" event.
func (r *SharedResource) reschedule() {
	if r.nextDone != nil {
		r.eng.Cancel(r.nextDone)
		r.nextDone = nil
	}
	r.nextTargets = r.nextTargets[:0]
	n := len(r.active)
	if n == 0 {
		return
	}
	rate := r.rate(n)
	minRem := math.Inf(1)
	for _, d := range r.active {
		if d.remaining < minRem {
			minRem = d.remaining
		}
	}
	for _, d := range r.active {
		if d.remaining <= minRem {
			r.nextTargets = append(r.nextTargets, d)
		}
	}
	dt := minRem / rate
	r.nextDone = r.eng.After(dt, r.complete)
}

// complete fires when the demand with least remaining work finishes.
func (r *SharedResource) complete() {
	r.nextDone = nil
	r.advance()
	// The targeted demands are mathematically finished at this instant;
	// force their remaining to zero so float rounding can never leave a
	// sliver that reschedules a zero-length event forever.
	for _, d := range r.nextTargets {
		if d.active {
			d.remaining = 0
		}
	}
	// Also sweep any other demand that has numerically finished.
	eps := 1e-12 * r.capacity
	var finished []*Demand
	var still []*Demand
	for _, d := range r.active {
		if d.remaining <= eps {
			d.remaining = 0
			d.active = false
			finished = append(finished, d)
		} else {
			still = append(still, d)
		}
	}
	r.active = still
	r.reschedule()
	for _, d := range finished {
		if d.done != nil {
			d.done()
		}
	}
}
