package sim

// FIFOQueue models a resource that serves one request at a time in
// arrival order at a fixed rate — e.g. a disk arm doing strictly
// sequential reads, or a lock. It is provided alongside SharedResource
// for substrates that want queueing rather than sharing semantics.
type FIFOQueue struct {
	eng  *Engine
	name string
	rate float64 // units of work per second

	busy    bool
	pending []*queued
	// usedIntegral accumulates busy time * rate (units served).
	usedIntegral float64
	busySince    float64
}

type queued struct {
	work float64
	done func()
}

// NewFIFOQueue creates a FIFO server with the given service rate.
func NewFIFOQueue(eng *Engine, name string, rate float64) *FIFOQueue {
	if rate <= 0 {
		panic("sim: FIFOQueue rate must be positive")
	}
	return &FIFOQueue{eng: eng, name: name, rate: rate}
}

// Name returns the queue's diagnostic name.
func (q *FIFOQueue) Name() string { return q.name }

// QueueLength returns the number of waiting (not in service) requests.
func (q *FIFOQueue) QueueLength() int { return len(q.pending) }

// Busy reports whether a request is in service.
func (q *FIFOQueue) Busy() bool { return q.busy }

// UsedIntegral returns total units of work served up to now.
func (q *FIFOQueue) UsedIntegral() float64 {
	if q.busy {
		return q.usedIntegral + (q.eng.Now()-q.busySince)*q.rate
	}
	return q.usedIntegral
}

// Submit enqueues work; done fires when it has been served.
func (q *FIFOQueue) Submit(work float64, done func()) {
	if work <= 0 {
		q.eng.After(0, done)
		return
	}
	q.pending = append(q.pending, &queued{work: work, done: done})
	if !q.busy {
		q.serveNext()
	}
}

func (q *FIFOQueue) serveNext() {
	if len(q.pending) == 0 {
		q.busy = false
		return
	}
	item := q.pending[0]
	q.pending = q.pending[1:]
	q.busy = true
	q.busySince = q.eng.Now()
	q.eng.After(item.work/q.rate, func() {
		q.usedIntegral += item.work
		q.busy = false
		if item.done != nil {
			item.done()
		}
		q.serveNext()
	})
}
