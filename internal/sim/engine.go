// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, and contended resources (processor
// sharing and FIFO). It is the substrate under the simulated cluster on
// which the mini MapReduce runtime executes.
//
// All times are in seconds of virtual time, represented as float64. The
// engine is single-threaded; callbacks scheduled on the engine run one at
// a time, so no locking is needed in simulation code.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Event is a scheduled callback. Events are ordered by time, with ties
// broken by scheduling order, which makes runs fully deterministic.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 if not queued
	fn       func()
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	queue   eventHeap
	stopped bool
	// processed counts events that have fired, for diagnostics.
	processed uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would break causality and always indicates a bug.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	ev := &Event{time: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Stop makes Run return after the current event's callback completes.
func (e *Engine) Stop() { e.stopped = true }

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil processes events with time <= t, then advances the clock to t.
// Events scheduled at exactly t do fire.
func (e *Engine) RunUntil(t float64) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].time <= t {
		e.step()
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Step fires the single next event. It reports false when the queue is
// empty. Drivers that keep periodic events alive (heartbeats) use Step
// in a condition loop instead of Run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := heap.Pop(&e.queue).(*Event)
	if ev.canceled {
		return
	}
	if ev.time < e.now {
		panic("sim: event time regression")
	}
	e.now = ev.time
	e.processed++
	ev.fn()
}
