// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock, an event queue, and contended resources (processor
// sharing and FIFO). It is the substrate under the simulated cluster on
// which the mini MapReduce runtime executes.
//
// All times are in seconds of virtual time, represented as float64. The
// engine is single-threaded; callbacks scheduled on the engine run one at
// a time, so no locking is needed in simulation code. Distinct Engine
// instances share no state, so independent simulations may run on
// separate goroutines concurrently (the experiment harness does).
package sim

import (
	"fmt"
	"math"
	"time"
)

// Event is a scheduled callback. Events are ordered by time, with ties
// broken by scheduling order, which makes runs fully deterministic.
//
// Event handles are single-owner: once the event has fired or been
// canceled the engine recycles the Event object for a later At/After
// call, so a holder must drop (nil out) its handle at that point and
// never Cancel through a stale one — a stale Cancel could silently
// cancel whatever unrelated event the object now represents. Every
// holder in this repository nils its handle inside the callback or
// immediately after Cancel; new code must follow the same discipline.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 if not queued
	fn       func()
	canceled bool
}

// Time returns the virtual time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event (valid only
// until the object is recycled; see the type comment).
func (e *Event) Canceled() bool { return e.canceled }

// Engine is a discrete-event simulator. The zero value is not usable; use
// NewEngine.
type Engine struct {
	now     float64
	seq     uint64
	queue   []*Event
	stopped bool
	// free holds fired/canceled Event objects for reuse. The DES hot
	// loop schedules and cancels millions of events (every resource
	// reschedule cancels and re-arms its completion event); recycling
	// them removes that allocation churn from the hot path.
	free []*Event
	// processed counts events that have fired, for diagnostics.
	processed uint64
	// blockedReal accumulates real (wall-clock) time spent inside
	// RealBlock, for diagnostics: it is how long the simulation loop
	// stalled waiting on real-world work (e.g. joining an async map
	// scan), which never advances the virtual clock.
	blockedReal time.Duration
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Processed returns the number of events fired so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn at absolute virtual time t. Scheduling in the past
// panics: it would break causality and always indicates a bug.
func (e *Engine) At(t float64, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) {
		panic("sim: scheduling event at NaN time")
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		ev.canceled = false
	} else {
		ev = &Event{}
	}
	ev.time, ev.seq, ev.fn = t, e.seq, fn
	e.seq++
	e.push(ev)
	return ev
}

// After schedules fn d seconds from now. Negative d panics.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Canceling an already-fired or
// already-canceled event through a still-held handle is a no-op (but
// see the Event comment: handles must be dropped once the object may
// have been recycled).
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	e.remove(ev)
	e.recycle(ev)
}

// Stop makes Run return after the current event's callback completes.
func (e *Engine) Stop() { e.stopped = true }

// RealBlock runs fn, which may block on real-world (wall-clock) work —
// typically joining a future computed off the simulator thread — and
// accounts the real time spent. It is the one sanctioned way for
// simulation code to wait on real work: the virtual clock is asserted
// unchanged across the call, so real-time stalls can never leak into
// simulated results, and the accumulated stall total is available via
// BlockedReal for diagnostics. fn may schedule events but must not
// advance the clock (only the event loop does that).
func (e *Engine) RealBlock(fn func()) {
	start := time.Now()
	before := e.now
	fn()
	if e.now != before {
		panic("sim: RealBlock callback advanced the virtual clock")
	}
	e.blockedReal += time.Since(start)
}

// BlockedReal returns the total real time the simulation loop has
// spent stalled inside RealBlock calls.
func (e *Engine) BlockedReal() time.Duration { return e.blockedReal }

// Run processes events until the queue is empty or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		e.step()
	}
}

// RunUntil processes events with time <= t, then advances the clock to t.
// Events scheduled at exactly t do fire.
//
// Stopped-clock semantics: when Stop fires mid-run, the clock is left
// at the last fired event's time rather than advancing to t — a
// stopped engine reports the virtual time it actually reached, and
// events still queued between Now() and t remain schedulable without
// appearing to be in the past. A regression test pins this behaviour.
func (e *Engine) RunUntil(t float64) {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped && e.queue[0].time <= t {
		e.step()
	}
	if !e.stopped && t > e.now {
		e.now = t
	}
}

// Step fires the single next event. It reports false when the queue is
// empty. Drivers that keep periodic events alive (heartbeats) use Step
// in a condition loop instead of Run.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	e.step()
	return true
}

func (e *Engine) step() {
	ev := e.pop()
	if ev.time < e.now {
		panic("sim: event time regression")
	}
	e.now = ev.time
	e.processed++
	ev.fn()
	e.recycle(ev)
}

// recycle returns a fired or canceled event to the freelist, releasing
// its callback so captured state does not outlive the event.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// less orders events by (time, seq).
func less(a, b *Event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up. The sift is hand-inlined rather
// than routed through container/heap: the overwhelmingly common case —
// scheduling at or after the times already queued along the path to
// the root — exits on the first comparison with zero swaps and no
// interface dispatch.
func (e *Engine) push(ev *Event) {
	i := len(e.queue)
	e.queue = append(e.queue, ev)
	for i > 0 {
		parent := (i - 1) / 2
		p := e.queue[parent]
		if less(p, ev) {
			break
		}
		e.queue[i] = p
		p.index = i
		i = parent
	}
	e.queue[i] = ev
	ev.index = i
}

// pop removes and returns the earliest event.
func (e *Engine) pop() *Event {
	ev := e.queue[0]
	n := len(e.queue) - 1
	last := e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if n > 0 {
		e.queue[0] = last
		last.index = 0
		e.siftDown(0)
	}
	ev.index = -1
	return ev
}

// remove deletes a queued event at an arbitrary heap position.
func (e *Engine) remove(ev *Event) {
	i := ev.index
	n := len(e.queue) - 1
	last := e.queue[n]
	e.queue[n] = nil
	e.queue = e.queue[:n]
	if i < n {
		e.queue[i] = last
		last.index = i
		e.siftDown(i)
		if last.index == i {
			e.siftUp(i)
		}
	}
	ev.index = -1
}

// siftUp restores the heap property moving e.queue[i] toward the root.
func (e *Engine) siftUp(i int) {
	ev := e.queue[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := e.queue[parent]
		if less(p, ev) {
			break
		}
		e.queue[i] = p
		p.index = i
		i = parent
	}
	e.queue[i] = ev
	ev.index = i
}

// siftDown restores the heap property moving e.queue[i] toward the
// leaves.
func (e *Engine) siftDown(i int) {
	n := len(e.queue)
	ev := e.queue[i]
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := e.queue[l]
		if r := l + 1; r < n && less(e.queue[r], c) {
			l, c = r, e.queue[r]
		}
		if less(ev, c) {
			break
		}
		e.queue[i] = c
		c.index = i
		i = l
	}
	e.queue[i] = ev
	ev.index = i
}
