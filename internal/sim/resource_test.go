package sim

import (
	"math"
	"math/rand"
	"testing"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleDemandServedAtPerUserCap(t *testing.T) {
	e := NewEngine()
	// Capacity 100/s but a single user capped at 25/s: 100 units take 4 s.
	r := NewSharedResource(e, "disk", 100, 25)
	var doneAt float64
	r.Submit(100, func() { doneAt = e.Now() })
	e.Run()
	if !almostEqual(doneAt, 4, 1e-9) {
		t.Fatalf("done at %v, want 4", doneAt)
	}
}

func TestUncappedSingleDemandUsesFullCapacity(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "disk", 50, 0)
	var doneAt float64
	r.Submit(100, func() { doneAt = e.Now() })
	e.Run()
	if !almostEqual(doneAt, 2, 1e-9) {
		t.Fatalf("done at %v, want 2", doneAt)
	}
}

func TestEqualSharingBetweenTwoDemands(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 10, 0)
	var d1At, d2At float64
	r.Submit(10, func() { d1At = e.Now() })
	r.Submit(10, func() { d2At = e.Now() })
	e.Run()
	// Both share 10/s equally: each gets 5/s, both finish at t=2.
	if !almostEqual(d1At, 2, 1e-9) || !almostEqual(d2At, 2, 1e-9) {
		t.Fatalf("done at %v and %v, want both 2", d1At, d2At)
	}
}

func TestLateArrivalSlowsEarlier(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 10, 0)
	var firstAt float64
	r.Submit(10, func() { firstAt = e.Now() })
	// At t=0.5 the first demand has 5 units left; second arrival halves
	// its rate to 5/s, so it finishes at 0.5 + 1 = 1.5.
	e.At(0.5, func() { r.Submit(100, nil) })
	e.RunUntil(2)
	if !almostEqual(firstAt, 1.5, 1e-9) {
		t.Fatalf("first done at %v, want 1.5", firstAt)
	}
}

func TestDepartureSpeedsUpRemainder(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 10, 0)
	var shortAt, longAt float64
	r.Submit(5, func() { shortAt = e.Now() })
	r.Submit(10, func() { longAt = e.Now() })
	e.Run()
	// Shared at 5/s each: short finishes at t=1 with long having 5 left,
	// which then runs at 10/s and finishes at t=1.5.
	if !almostEqual(shortAt, 1, 1e-9) {
		t.Fatalf("short done at %v, want 1", shortAt)
	}
	if !almostEqual(longAt, 1.5, 1e-9) {
		t.Fatalf("long done at %v, want 1.5", longAt)
	}
}

func TestPerUserCapWithFewUsers(t *testing.T) {
	e := NewEngine()
	// 4 cores, each task at most 1 core.
	r := NewSharedResource(e, "cpu", 4, 1)
	var at [2]float64
	r.Submit(2, func() { at[0] = e.Now() })
	r.Submit(2, func() { at[1] = e.Now() })
	e.Run()
	// Two tasks on four cores: each runs at its 1-core cap, 2 s each.
	for i, v := range at {
		if !almostEqual(v, 2, 1e-9) {
			t.Fatalf("task %d done at %v, want 2", i, v)
		}
	}
}

func TestOversubscriptionSharesCapacity(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 4, 1)
	n := 16
	doneAt := make([]float64, n)
	for i := 0; i < n; i++ {
		i := i
		r.Submit(1, func() { doneAt[i] = e.Now() })
	}
	e.Run()
	// 16 tasks share 4 cores: each at 0.25 core => 4 s.
	for i, v := range doneAt {
		if !almostEqual(v, 4, 1e-9) {
			t.Fatalf("task %d done at %v, want 4", i, v)
		}
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 1, 0)
	done := false
	r.Submit(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-work demand never completed")
	}
	if e.Now() != 0 {
		t.Fatalf("clock advanced to %v for zero work", e.Now())
	}
}

func TestCancelDemand(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 10, 0)
	var firstAt float64
	r.Submit(10, func() { firstAt = e.Now() })
	d := r.Submit(10, func() { t.Error("canceled demand completed") })
	e.At(0.5, func() { r.Cancel(d) })
	e.Run()
	// First shares at 5/s until t=0.5 (2.5 units done), then runs alone
	// at 10/s for the remaining 7.5 units: done at t=1.25.
	if !almostEqual(firstAt, 1.25, 1e-9) {
		t.Fatalf("first done at %v, want 1.25", firstAt)
	}
}

func TestUtilizationInstantaneous(t *testing.T) {
	e := NewEngine()
	r := NewSharedResource(e, "cpu", 4, 1)
	if r.Utilization() != 0 {
		t.Fatalf("idle utilization = %v, want 0", r.Utilization())
	}
	r.Submit(100, nil)
	if !almostEqual(r.Utilization(), 0.25, 1e-9) {
		t.Fatalf("one capped task utilization = %v, want 0.25", r.Utilization())
	}
	for i := 0; i < 7; i++ {
		r.Submit(100, nil)
	}
	if !almostEqual(r.Utilization(), 1.0, 1e-9) {
		t.Fatalf("8-task utilization = %v, want 1", r.Utilization())
	}
}

// Work conservation: total service delivered equals total work submitted
// once everything completes, for arbitrary arrival patterns.
func TestWorkConservationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		e := NewEngine()
		r := NewSharedResource(e, "cpu", 1+rng.Float64()*10, rng.Float64()*5)
		totalWork := 0.0
		completed := 0
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			w := rng.Float64() * 20
			totalWork += w
			at := rng.Float64() * 10
			e.At(at, func() {
				r.Submit(w, func() { completed++ })
			})
		}
		e.Run()
		if completed != n {
			t.Fatalf("trial %d: completed %d of %d", trial, completed, n)
		}
		got := r.UsedIntegral()
		if !almostEqual(got, totalWork, 1e-5*math.Max(1, totalWork)) {
			t.Fatalf("trial %d: served %v, submitted %v", trial, got, totalWork)
		}
	}
}

func TestFIFOQueueServesInOrder(t *testing.T) {
	e := NewEngine()
	q := NewFIFOQueue(e, "disk", 10)
	var order []int
	var times []float64
	for i := 0; i < 3; i++ {
		i := i
		q.Submit(10, func() { order = append(order, i); times = append(times, e.Now()) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO", order)
		}
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if !almostEqual(times[i], want[i], 1e-9) {
			t.Fatalf("completion times = %v, want %v", times, want)
		}
	}
}

func TestFIFOQueueLengthAndBusy(t *testing.T) {
	e := NewEngine()
	q := NewFIFOQueue(e, "disk", 1)
	q.Submit(10, nil)
	q.Submit(10, nil)
	q.Submit(10, nil)
	if !q.Busy() {
		t.Fatal("queue should be busy")
	}
	if q.QueueLength() != 2 {
		t.Fatalf("QueueLength = %d, want 2", q.QueueLength())
	}
	e.Run()
	if q.Busy() || q.QueueLength() != 0 {
		t.Fatal("queue should be drained")
	}
	if !almostEqual(q.UsedIntegral(), 30, 1e-9) {
		t.Fatalf("UsedIntegral = %v, want 30", q.UsedIntegral())
	}
}

func TestFIFOZeroWork(t *testing.T) {
	e := NewEngine()
	q := NewFIFOQueue(e, "disk", 1)
	done := false
	q.Submit(0, func() { done = true })
	e.Run()
	if !done {
		t.Fatal("zero-work request never completed")
	}
}
