package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		e.At(tm, func() { order = append(order, tm) })
	}
	e.Run()
	if !sort.Float64sAreSorted(order) {
		t.Fatalf("events fired out of order: %v", order)
	}
	if len(order) != len(times) {
		t.Fatalf("fired %d events, want %d", len(order), len(times))
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(1.0, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break violated: order[%d] = %d", i, v)
		}
	}
}

func TestAfterAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at float64
	e.After(2.5, func() { at = e.Now() })
	e.Run()
	if at != 2.5 {
		t.Fatalf("callback ran at %v, want 2.5", at)
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var trace []float64
	e.After(1, func() {
		trace = append(trace, e.Now())
		e.After(1, func() { trace = append(trace, e.Now()) })
	})
	e.Run()
	want := []float64{1, 2}
	if len(trace) != 2 || trace[0] != want[0] || trace[1] != want[1] {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(1, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelIsIdempotent(t *testing.T) {
	e := NewEngine()
	ev := e.At(1, func() {})
	e.Cancel(ev)
	e.Cancel(ev) // must not panic
	e.Cancel(nil)
	e.Run()
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var fired []int
	evs := make([]*Event, 10)
	for i := 0; i < 10; i++ {
		i := i
		evs[i] = e.At(float64(i), func() { fired = append(fired, i) })
	}
	e.Cancel(evs[4])
	e.Cancel(evs[7])
	e.Run()
	if len(fired) != 8 {
		t.Fatalf("fired %d events, want 8: %v", len(fired), fired)
	}
	for _, v := range fired {
		if v == 4 || v == 7 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.After(5, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(1, func() {})
	})
	e.Run()
}

func TestRunUntilAdvancesClockToBound(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++ })
	e.At(3, func() { fired++ })
	e.RunUntil(2)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2 {
		t.Fatalf("Now() = %v, want 2", e.Now())
	}
	e.RunUntil(10)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d after Stop, want 1", fired)
	}
	// Run can be resumed.
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

// Pins RunUntil's stopped-clock semantics: when Stop fires mid-run the
// clock stays at the last fired event's time instead of advancing to
// the bound, and the remaining events stay queued.
func TestRunUntilStoppedClockStaysAtLastEvent(t *testing.T) {
	e := NewEngine()
	e.At(1, func() { e.Stop() })
	fired := false
	e.At(5, func() { fired = true })
	e.RunUntil(10)
	if e.Now() != 1 {
		t.Fatalf("Now() = %v after Stop mid-run, want 1 (stopped clock must not advance to the bound)", e.Now())
	}
	if fired {
		t.Fatal("event after Stop fired")
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	// Resuming drains the queue and then advances to the bound.
	e.RunUntil(10)
	if !fired {
		t.Fatal("remaining event did not fire on resume")
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v after resume, want 10", e.Now())
	}
}

// Fired and canceled events return to the freelist and are reused by
// later At calls with their canceled flag cleared.
func TestFreelistRecyclesEvents(t *testing.T) {
	e := NewEngine()
	ev1 := e.At(1, func() {})
	e.Run()
	ev2 := e.At(2, func() {})
	if ev1 != ev2 {
		t.Fatal("fired event object was not recycled")
	}
	e.Cancel(ev2)
	ev3 := e.At(3, func() {})
	if ev3 != ev2 {
		t.Fatal("canceled event object was not recycled")
	}
	if ev3.Canceled() {
		t.Fatal("recycled event still marked canceled")
	}
	fired := false
	ev3.fn = func() { fired = true }
	e.Run()
	if !fired {
		t.Fatal("recycled event did not fire")
	}
}

// Canceling an event from inside its own callback must not push it to
// the freelist twice (a double recycle would hand the same object to
// two later At calls).
func TestCancelSelfDuringCallbackNoDoubleRecycle(t *testing.T) {
	e := NewEngine()
	var ev *Event
	ev = e.At(1, func() { e.Cancel(ev) })
	e.Run()
	a := e.At(2, func() {})
	b := e.At(3, func() {})
	if a == b {
		t.Fatal("event recycled twice: two live events share one object")
	}
	e.Run()
}

// Distinct engines share no state, so independent simulations can run
// on concurrent goroutines (the experiment harness does); run under
// -race.
func TestConcurrentEnginesIndependent(t *testing.T) {
	done := make(chan uint64)
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			e := NewEngine()
			var ev *Event
			for i := 0; i < 2000; i++ {
				if ev != nil && i%3 == 0 {
					e.Cancel(ev)
					ev = nil
				}
				ev = e.After(float64(g+1), func() {})
				if i%64 == 0 {
					e.Run()
					ev = nil
				}
			}
			e.Run()
			done <- e.Processed()
		}()
	}
	for g := 0; g < 4; g++ {
		if n := <-done; n == 0 {
			t.Fatal("engine processed no events")
		}
	}
}

func TestProcessedAndPendingCounters(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(float64(i), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending() = %d, want 5", e.Pending())
	}
	e.Run()
	if e.Processed() != 5 {
		t.Fatalf("Processed() = %d, want 5", e.Processed())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after Run, want 0", e.Pending())
	}
}

// Property: with any set of non-negative delays, the clock observed by
// callbacks is non-decreasing and every event fires exactly once.
func TestClockMonotonicityProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) > 512 {
			delays = delays[:512]
		}
		e := NewEngine()
		last := -1.0
		fired := 0
		ok := true
		for _, d := range delays {
			e.At(float64(d)/7.0, func() {
				now := e.Now()
				if now < last {
					ok = false
				}
				last = now
				fired++
			})
		}
		e.Run()
		return ok && fired == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaved schedule/cancel keeps the heap consistent.
func TestRandomCancelProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		var live []*Event
		fired := 0
		canceled := 0
		total := 200
		for i := 0; i < total; i++ {
			ev := e.At(rng.Float64()*100, func() { fired++ })
			live = append(live, ev)
			if rng.Intn(3) == 0 && len(live) > 0 {
				k := rng.Intn(len(live))
				if live[k].index >= 0 {
					e.Cancel(live[k])
					canceled++
				}
				live = append(live[:k], live[k+1:]...)
			}
		}
		e.Run()
		if fired+canceled != total {
			t.Fatalf("fired %d + canceled %d != %d", fired, canceled, total)
		}
	}
}

func TestRealBlockAccumulatesAndGuardsClock(t *testing.T) {
	e := NewEngine()
	if e.BlockedReal() != 0 {
		t.Fatalf("BlockedReal = %v on a fresh engine", e.BlockedReal())
	}
	ran := false
	e.RealBlock(func() { ran = true })
	if !ran {
		t.Fatal("RealBlock did not run the callback")
	}
	if e.Now() != 0 {
		t.Fatalf("RealBlock advanced virtual time to %v", e.Now())
	}
	if e.BlockedReal() < 0 {
		t.Fatalf("BlockedReal = %v", e.BlockedReal())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("RealBlock accepted a callback that advanced the virtual clock")
		}
	}()
	e.RealBlock(func() {
		e.At(1, func() {})
		e.Run()
	})
}
