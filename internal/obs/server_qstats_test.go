package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynamicmr/internal/data"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/tsdb"
)

func echoMapper(*mapreduce.JobConf) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec data.Record, c *mapreduce.Collector) error {
		c.Emit("k", rec)
		return nil
	})
}

func TestQueriesAndLiveEndpoints(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 8, 100)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	srv := NewServer(s)
	reg := qstats.NewRegistry(jt)
	srv.SetQueryStats(reg)

	var lastID string
	for i := 0; i < 3; i++ {
		id := reg.AllocID()
		conf := mapreduce.NewJobConf()
		conf.SetInt(mapreduce.ConfSampleSize, 50)
		conf.Set(mapreduce.ConfDynamicPolicy, "LA")
		conf.Set(mapreduce.ConfQueryID, id)
		job := jt.Submit(mapreduce.JobSpec{Conf: conf, NewMapper: echoMapper}, mapreduce.SplitsForFile(f))
		reg.Register(id, job, fmt.Sprintf("SELECT V FROM t LIMIT 50 -- %d", i), job.ScheduledMaps())
		mapreduce.RunUntilDone(eng, job, 1e6)
		lastID = id
	}
	eng.RunUntil(eng.Now() + 2)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	// /queries: full dump, schema-stamped, all three finished.
	rec := get("/queries")
	if rec.Code != 200 {
		t.Fatalf("/queries status %d", rec.Code)
	}
	var dump qstats.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad /queries JSON: %v", err)
	}
	if dump.Schema != qstats.SchemaVersion {
		t.Fatalf("schema %q", dump.Schema)
	}
	if dump.Finished != 3 || len(dump.Queries) != 3 || len(dump.InFlight) != 0 {
		t.Fatalf("dump totals: finished=%d queries=%d inflight=%d", dump.Finished, len(dump.Queries), len(dump.InFlight))
	}

	// /queries?id=: single-record detail.
	rec = get("/queries?id=" + lastID)
	if rec.Code != 200 {
		t.Fatalf("/queries?id status %d", rec.Code)
	}
	var q qstats.QueryRecord
	if err := json.Unmarshal(rec.Body.Bytes(), &q); err != nil {
		t.Fatalf("bad detail JSON: %v", err)
	}
	if q.ID != lastID || q.State != qstats.StateOK || q.LatencyVirtualS <= 0 {
		t.Fatalf("detail record: %+v", q)
	}
	if rec = get("/queries?id=q-999999"); rec.Code != 404 {
		t.Fatalf("missing id status %d", rec.Code)
	}

	// /live: HTML with the query rows and sparklines.
	rec = get("/live")
	if rec.Code != 200 {
		t.Fatalf("/live status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"<!DOCTYPE html>", lastID, "Per-policy latency", "polyline", "LA"} {
		if !strings.Contains(body, want) {
			t.Errorf("/live missing %q", want)
		}
	}

	// /metrics: per-policy latency histogram family present and well
	// formed alongside the existing families.
	rec = get("/metrics")
	body = rec.Body.String()
	for _, want := range []string{
		"# TYPE dynmr_query_latency_virtual_s histogram",
		`dynmr_query_latency_virtual_s_bucket{policy="LA",le="+Inf"} 3`,
		`dynmr_query_latency_virtual_s_count{policy="LA"} 3`,
		"dynmr_queries_finished_total 3",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPublishedEndpointsDoNotBlock is the narrow-lock satellite: after
// Publish, every endpoint must answer from the published snapshot even
// while the driver holds the simulation lock (as the paced serve loop
// does for long stretches).
func TestPublishedEndpointsDoNotBlock(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 6, 100)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	srv := NewServer(s)
	reg := qstats.NewRegistry(jt)
	srv.SetQueryStats(reg)
	db, err := tsdb.New(jt, tsdb.Config{IntervalS: 1, Rules: []tsdb.Rule{
		{Name: "jobs-high", Kind: tsdb.KindThreshold, Series: "cluster.running_jobs", Value: 1e9},
	}})
	if err != nil {
		t.Fatal(err)
	}
	db.SetQueryStats(reg)
	db.Start()
	srv.SetTSDB(db)

	id := reg.AllocID()
	conf := mapreduce.NewJobConf()
	conf.SetInt(mapreduce.ConfSampleSize, 50)
	conf.Set(mapreduce.ConfDynamicPolicy, "HA")
	conf.Set(mapreduce.ConfQueryID, id)
	job := jt.Submit(mapreduce.JobSpec{Conf: conf, NewMapper: echoMapper}, mapreduce.SplitsForFile(f))
	reg.Register(id, job, "SELECT V FROM t LIMIT 50", job.ScheduledMaps())
	mapreduce.RunUntilDone(eng, job, 1e6)
	srv.Publish()

	srv.Lock() // simulate the driver mid-advance
	defer srv.Unlock()

	paths := []string{"/metrics", "/status", "/queries", "/live", "/tsdb", "/alerts"}
	done := make(chan string, len(paths))
	for _, path := range paths {
		go func(p string) {
			rec := httptest.NewRecorder()
			srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
			if rec.Code != 200 || rec.Body.Len() == 0 {
				done <- fmt.Sprintf("%s: status %d len %d", p, rec.Code, rec.Body.Len())
				return
			}
			done <- ""
		}(path)
	}
	for range paths {
		select {
		case msg := <-done:
			if msg != "" {
				t.Error(msg)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("endpoint blocked behind the simulation lock")
		}
	}

	// The published /queries view matches the live registry.
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/queries", nil))
	var dump qstats.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("bad published /queries JSON: %v", err)
	}
	if dump.Finished != 1 || len(dump.Queries) != 1 || dump.Queries[0].ID != id {
		t.Fatalf("published dump: %+v", dump)
	}

	// The published /tsdb and /alerts views are schema-stamped snapshots.
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/tsdb", nil))
	var td tsdb.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &td); err != nil {
		t.Fatalf("bad published /tsdb JSON: %v", err)
	}
	if td.Schema != tsdb.SchemaVersion || len(td.Series) == 0 {
		t.Fatalf("published tsdb dump: schema %q, %d series", td.Schema, len(td.Series))
	}
	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/alerts", nil))
	var ad tsdb.AlertsDump
	if err := json.Unmarshal(rec.Body.Bytes(), &ad); err != nil {
		t.Fatalf("bad published /alerts JSON: %v", err)
	}
	if ad.Schema != tsdb.AlertsSchemaVersion || len(ad.Rules) != 1 {
		t.Fatalf("published alerts dump: schema %q, %d rules", ad.Schema, len(ad.Rules))
	}
}
