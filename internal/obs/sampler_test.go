package obs

import (
	"math"
	"strings"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
)

var schema = data.NewSchema("V")

func rig(t *testing.T, traced bool) (*sim.Engine, *cluster.Cluster, *dfs.DFS, *mapreduce.JobTracker) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := mapreduce.DefaultConfig()
	if traced {
		cfg.Trace = trace.Config{Enabled: true}
	}
	return eng, cl, dfs.New(cl), mapreduce.NewJobTracker(cl, cfg, nil)
}

func mkFile(t *testing.T, fs *dfs.DFS, name string, blocks, recs int) *dfs.File {
	t.Helper()
	var srcs []data.Source
	for b := 0; b < blocks; b++ {
		rr := make([]data.Record, recs)
		for i := range rr {
			rr[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, rr))
	}
	f, err := fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func nopMapper(*mapreduce.JobConf) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(data.Record, *mapreduce.Collector) error { return nil })
}

// TestSlotIntegralMatchesSpanDurations is the satellite cross-check:
// the sampled per-node slot-occupancy series, integrated back to
// occupied-slot-seconds, must agree with the sum of the trace's
// map-attempt span durations — an attempt holds exactly one slot from
// startAttempt to release, which is exactly its enclosing span.
func TestSlotIntegralMatchesSpanDurations(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 30, 400)

	s := NewSampler(jt, Config{IntervalS: 7})
	s.Start()
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	// Run past the next sample boundary so the tail interval lands.
	eng.RunUntil(eng.Now() + 2*s.Interval())

	var spanSeconds float64
	for _, sp := range jt.Tracer().Spans() {
		if sp.Name == trace.SpanMapAttempt {
			spanSeconds += sp.Duration()
		}
	}
	if spanSeconds == 0 {
		t.Fatal("no map-attempt spans recorded")
	}

	// Integrate per-node occupancy: pct/100 * slots * dt, summed over
	// nodes and samples.
	var sampled float64
	lastT := 0.0
	for _, snap := range s.Snapshots() {
		dt := snap.Time - lastT
		lastT = snap.Time
		for _, ns := range snap.Nodes {
			sampled += ns.MapSlotPct / 100 * float64(ns.MapSlots) * dt
		}
	}
	if math.Abs(sampled-spanSeconds) > 1e-6*spanSeconds+1e-9 {
		t.Fatalf("sampled slot integral %.9f != span duration sum %.9f", sampled, spanSeconds)
	}

	// The cluster-level series must integrate to the same value.
	var clusterInt float64
	lastT = 0
	for _, snap := range s.Snapshots() {
		dt := snap.Time - lastT
		lastT = snap.Time
		clusterInt += snap.MapSlotPct / 100 * float64(snap.TotalMapSlots) * dt
	}
	if math.Abs(clusterInt-spanSeconds) > 1e-6*spanSeconds+1e-9 {
		t.Fatalf("cluster slot integral %.9f != span duration sum %.9f", clusterInt, spanSeconds)
	}

	// And both must agree with the JobTracker's own integral.
	if jtInt := jt.MapSlotOccupancyIntegral(); math.Abs(jtInt-spanSeconds) > 1e-6*spanSeconds+1e-9 {
		t.Fatalf("JobTracker slot integral %.9f != span duration sum %.9f", jtInt, spanSeconds)
	}
}

// TestSamplerDoesNotPerturbSimulation: the same run with and without a
// sampler must finish at the same virtual time with the same event
// outcomes (enabling obs never changes results).
func TestSamplerDoesNotPerturbSimulation(t *testing.T) {
	run := func(sample bool) (finish float64, output int) {
		eng, _, fs, jt := rig(t, false)
		f := mkFile(t, fs, "in", 24, 300)
		if sample {
			s := NewSampler(jt, Config{IntervalS: 3})
			s.Start()
		}
		job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
		mapreduce.RunUntilDone(eng, job, 1e6)
		return job.FinishTime, len(job.Output())
	}
	offT, offN := run(false)
	onT, onN := run(true)
	if offT != onT || offN != onN {
		t.Fatalf("sampler perturbed the run: finish %v vs %v, output %d vs %d", offT, onT, offN, onN)
	}
}

func TestSamplerIdleAndRestart(t *testing.T) {
	eng, _, _, jt := rig(t, false)
	s := NewSampler(jt, Config{})
	if s.Interval() != DefaultIntervalS {
		t.Fatalf("default interval = %v", s.Interval())
	}
	s = NewSampler(jt, Config{IntervalS: 10})
	s.Start()
	// Idle engine: nothing schedules events besides the sampler itself.
	eng.RunUntil(35)
	snaps := s.Snapshots()
	if len(snaps) != 3 {
		t.Fatalf("idle snapshots = %d, want 3", len(snaps))
	}
	for _, sn := range snaps {
		if sn.CPUUtilPct != 0 || sn.MapSlotPct != 0 || sn.QueuedMaps != 0 {
			t.Fatalf("idle cluster read non-zero: %+v", sn)
		}
		if len(sn.Nodes) != 10 {
			t.Fatalf("snapshot has %d nodes", len(sn.Nodes))
		}
	}
	// Stop invalidates the pending tick; Start rebases cleanly.
	s.Stop()
	eng.RunUntil(100)
	if got := len(s.Snapshots()); got != 3 {
		t.Fatalf("sampler ticked after Stop: %d snapshots", got)
	}
	s.Start()
	eng.RunUntil(eng.Now() + 25)
	if got := len(s.Snapshots()); got != 5 {
		t.Fatalf("restart snapshots = %d, want 5", got)
	}
}

func TestNodeCSV(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 8, 200)
	s := NewSampler(jt, Config{IntervalS: 5})
	s.Start()
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	eng.RunUntil(eng.Now() + 10)

	var nodeBuf, clusterBuf strings.Builder
	if err := s.WriteNodeCSV(&nodeBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteClusterCSV(&clusterBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(nodeBuf.String()), "\n")
	wantRows := len(s.Snapshots())*10 + 1
	if len(lines) != wantRows {
		t.Fatalf("node CSV rows = %d, want %d", len(lines), wantRows)
	}
	if !strings.HasPrefix(lines[0], "time_s,node,cpu_util_pct") {
		t.Fatalf("node CSV header = %q", lines[0])
	}
	if !strings.HasPrefix(clusterBuf.String(), "time_s,cpu_util_pct") {
		t.Fatalf("cluster CSV header = %q", strings.SplitN(clusterBuf.String(), "\n", 2)[0])
	}
}

// TestGaugesPublished: sampling with tracing on mirrors cluster-level
// readings into the tracer's gauge registry.
func TestGaugesPublished(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 8, 200)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	eng.RunUntil(eng.Now() + 2)

	g, ok := jt.Tracer().Gauge(trace.GaugeCPUUtilPct)
	if !ok {
		t.Fatal("CPU gauge never set")
	}
	if g.Max <= 0 {
		t.Fatalf("CPU gauge max = %v, want > 0 during a job", g.Max)
	}
	if _, ok := jt.Tracer().Gauge(trace.GaugeVirtualTime); !ok {
		t.Fatal("virtual-time gauge never set")
	}
}

// TestSnapshotsSince pins the incremental cursor contract: consumers
// (the serve loop's published /live window) read only the new tail,
// never re-copying the whole series.
func TestSnapshotsSince(t *testing.T) {
	eng, _, fs, jt := rig(t, false)
	f := mkFile(t, fs, "in", 10, 300)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()

	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	eng.RunUntil(eng.Now() + 5)

	n := s.SnapshotCount()
	if n < 5 {
		t.Fatalf("expected several snapshots, got %d", n)
	}
	all := s.SnapshotsSince(0)
	if len(all) != n {
		t.Fatalf("SnapshotsSince(0) len %d, want %d", len(all), n)
	}
	if got := s.SnapshotsSince(-3); len(got) != n {
		t.Fatalf("negative cursor clamps to 0: len %d, want %d", len(got), n)
	}
	mid := n / 2
	tail := s.SnapshotsSince(mid)
	if len(tail) != n-mid || tail[0].Time != all[mid].Time {
		t.Fatalf("mid cursor: len %d first t=%v, want len %d first t=%v",
			len(tail), tail[0].Time, n-mid, all[mid].Time)
	}
	if got := s.SnapshotsSince(n); got != nil {
		t.Fatalf("caught-up cursor returns nil, got %d snaps", len(got))
	}

	// New samples appear only past the old cursor.
	eng.RunUntil(eng.Now() + 3)
	fresh := s.SnapshotsSince(n)
	if len(fresh) == 0 || fresh[0].Time <= all[n-1].Time {
		t.Fatalf("fresh tail wrong: %d snaps, first t=%v after t=%v",
			len(fresh), fresh[0].Time, all[n-1].Time)
	}
}
