package obs

import (
	"fmt"
	"strings"

	"dynamicmr/internal/diag"
)

// diagPalette maps breakdown components and path-node kinds to the
// report's categorical palette (CSS custom properties).
var diagPalette = map[string]string{
	diag.KindSlotWait:       "--series-4",
	diag.KindProviderWait:   "--series-5",
	diag.KindStartup:        "--series-7",
	diag.KindDiskReadLocal:  "--series-3",
	diag.KindDiskReadRemote: "--series-6",
	diag.KindNetRead:        "--series-6",
	diag.KindMapCPU:         "--series-1",
	diag.KindShuffle:        "--series-2",
	diag.KindSort:           "--series-8",
	diag.KindReduceCPU:      "--series-8",
	diag.KindOutputWrite:    "--series-8",
	diag.KindUntraced:       "--baseline",
	// Aggregate breakdown components that fold several kinds.
	"data-read-local":  "--series-3",
	"data-read-remote": "--series-6",
	"map-compute":      "--series-1",
	"reduce":           "--series-8",
}

func diagColor(kind string) string {
	if v, ok := diagPalette[kind]; ok {
		return v
	}
	return "--text-muted"
}

// maxDiagJobs bounds the per-job breakdown rows; maxDiagPathRows bounds
// the critical-path table of the featured (longest) job.
const (
	maxDiagJobs     = 12
	maxDiagPathRows = 40
)

// writeDiagSection renders the job-diagnosis section: one stacked
// breakdown bar per job (components sum to the makespan), anomaly
// notes, and the critical path of the longest job as a table.
func (r *Report) writeDiagSection(b *strings.Builder) {
	if r.Diag == nil || len(r.Diag.Jobs) == 0 {
		return
	}
	b.WriteString("<section>\n<h2>Job diagnosis</h2>\n")
	b.WriteString("<p class=\"note\">Each bar partitions the job's makespan along its critical path; components sum to the makespan by construction.</p>\n")

	// Legend over the components that actually occur.
	seen := map[string]bool{}
	var order []string
	for _, j := range r.Diag.Jobs {
		for _, c := range j.Breakdown.Components() {
			if c.Seconds > 0 && !seen[c.Name] {
				seen[c.Name] = true
				order = append(order, c.Name)
			}
		}
	}
	b.WriteString(`<div class="legend">`)
	for _, name := range order {
		fmt.Fprintf(b, `<span class="key"><span class="swatch" style="background:var(%s)"></span>%s</span>`,
			diagColor(name), esc(name))
	}
	b.WriteString("</div>\n")

	jobs := r.Diag.Jobs
	truncated := 0
	if len(jobs) > maxDiagJobs {
		truncated = len(jobs) - maxDiagJobs
		jobs = jobs[:maxDiagJobs]
	}
	for _, j := range jobs {
		fmt.Fprintf(b, `<div class="diag-row"><span class="diag-label">job %d (%s) · %ss</span><div class="stack">`,
			j.JobID, esc(j.Outcome), fnum(j.MakespanS))
		if j.MakespanS > 0 {
			for _, c := range j.Breakdown.Components() {
				if c.Seconds <= 0 {
					continue
				}
				pct := c.Seconds / j.MakespanS * 100
				fmt.Fprintf(b, `<span style="width:%.3f%%;background:var(%s)" title="%s %ss (%.1f%%)"></span>`,
					pct, diagColor(c.Name), esc(c.Name), fnum(c.Seconds), pct)
			}
		}
		b.WriteString("</div></div>\n")
		for _, a := range j.Anomalies {
			fmt.Fprintf(b, "<p class=\"note\">⚠ %s: %s</p>\n", esc(a.Kind), esc(a.Detail))
		}
	}
	if truncated > 0 {
		fmt.Fprintf(b, "<p class=\"note\">%d more job(s) omitted; the diagnosis CSV/JSON carries all of them.</p>\n", truncated)
	}
	for _, a := range r.Diag.ClusterAnomalies {
		fmt.Fprintf(b, "<p class=\"note\">⚠ cluster %s: %s</p>\n", esc(a.Kind), esc(a.Detail))
	}

	// Critical-path table for the longest job.
	longest := &r.Diag.Jobs[0]
	for i := range r.Diag.Jobs {
		if r.Diag.Jobs[i].MakespanS > longest.MakespanS {
			longest = &r.Diag.Jobs[i]
		}
	}
	fmt.Fprintf(b, "<h3>Critical path — job %d (%ss makespan)</h3>\n", longest.JobID, fnum(longest.MakespanS))
	b.WriteString("<table>\n<thead><tr><th></th><th>start (s)</th><th>end (s)</th><th>duration (s)</th>" +
		"<th>kind</th><th>task</th><th>attempt</th><th>node</th><th>detail</th></tr></thead>\n<tbody>\n")
	for i, n := range longest.CriticalPath {
		if i >= maxDiagPathRows {
			fmt.Fprintf(b, "<tr><td colspan=\"9\">… %d more node(s)</td></tr>\n", len(longest.CriticalPath)-maxDiagPathRows)
			break
		}
		task, att, node := "—", "—", "—"
		if n.Task >= 0 {
			task = fmt.Sprintf("%d", n.Task)
		}
		if n.Attempt > 0 {
			att = fmt.Sprintf("%d", n.Attempt)
		}
		if n.Node >= 0 {
			node = fmt.Sprintf("%d", n.Node)
		}
		fmt.Fprintf(b, "<tr><td><span class=\"swatch\" style=\"background:var(%s)\"></span></td>"+
			"<td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
			diagColor(n.Kind), fnum(n.Start), fnum(n.End), fnum(n.Duration()),
			esc(n.Kind), task, att, node, esc(n.Detail))
	}
	b.WriteString("</tbody>\n</table>\n</section>\n")
}

// critKey identifies a task attempt on some job's critical path, split
// by attempt category so map and reduce task IDs don't collide.
type critKey struct {
	job, task, attempt int
	kind               string // "map" or "reduce"
}

// mapKinds and reduceKinds classify path-node kinds whose attempt
// category is unambiguous.
func pathNodeCat(kind string) string {
	switch kind {
	case diag.KindDiskReadLocal, diag.KindDiskReadRemote, diag.KindNetRead, diag.KindMapCPU:
		return "map"
	case diag.KindShuffle, diag.KindSort, diag.KindReduceCPU, diag.KindOutputWrite:
		return "reduce"
	}
	return "" // startup, untraced, waits: resolved from siblings
}

// criticalBars collects the (job, task, attempt, kind) identities of
// every attempt appearing on any job's critical path, for the Gantt
// overlay. Ambiguous nodes (startup, untraced) inherit the category of
// a sibling node from the same attempt.
func (r *Report) criticalBars() map[critKey]bool {
	if r.Diag == nil {
		return nil
	}
	out := map[critKey]bool{}
	for _, j := range r.Diag.Jobs {
		// First pass: attempts with an unambiguous node.
		cat := map[[2]int]string{}
		for _, n := range j.CriticalPath {
			if c := pathNodeCat(n.Kind); c != "" && n.Task >= 0 && n.Attempt > 0 {
				cat[[2]int{n.Task, n.Attempt}] = c
			}
		}
		for _, n := range j.CriticalPath {
			if n.Task < 0 || n.Attempt <= 0 {
				continue
			}
			c := pathNodeCat(n.Kind)
			if c == "" {
				c = cat[[2]int{n.Task, n.Attempt}]
			}
			if c == "" {
				continue
			}
			out[critKey{job: j.JobID, task: n.Task, attempt: n.Attempt, kind: c}] = true
		}
	}
	return out
}
