package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/trace"
)

// TestStatusEngineSection pins the /status and /live session-engine
// surfacing: absent on a baseline run (gauges never set), present with
// the residency levels and reuse counters once the engine sets them.
func TestStatusEngineSection(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 10, 200)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	srv := NewServer(s)
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)

	getStatus := func() StatusPayload {
		t.Helper()
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
		var p StatusPayload
		if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
			t.Fatalf("bad /status JSON: %v", err)
		}
		return p
	}
	getLive := func() string {
		t.Helper()
		rec := httptest.NewRecorder()
		srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/live", nil))
		return rec.Body.String()
	}

	if p := getStatus(); p.Engine != nil {
		t.Fatalf("baseline run should have no engine section, got %+v", p.Engine)
	}
	if strings.Contains(getLive(), "Session engine") {
		t.Fatal("baseline /live should not show the session-engine table")
	}

	// A memory-mode runtime sets the residency gauges and counters.
	tr := jt.Tracer()
	tr.SetGauge(trace.GaugeResidentBytes, 3<<20)
	tr.SetGauge(trace.GaugePinnedBytes, 5<<20)
	tr.Inc(trace.CounterDeltaShuffleHits, 7)
	tr.Inc(trace.CounterResidentStores, 9)

	p := getStatus()
	if p.Engine == nil {
		t.Fatal("engine section missing after gauges were set")
	}
	if p.Engine.ResidentBytes != 3<<20 || p.Engine.PinnedBytes != 5<<20 ||
		p.Engine.DeltaShuffleHits != 7 || p.Engine.ResidentStores != 9 {
		t.Fatalf("engine section wrong: %+v", p.Engine)
	}
	live := getLive()
	if !strings.Contains(live, "Session engine") || !strings.Contains(live, "3.0 MB") {
		t.Fatalf("/live missing session-engine table:\n%s", live)
	}

	// The published (lock-free) snapshot path must carry the section too.
	srv.Publish()
	if p := getStatus(); p.Engine == nil || p.Engine.DeltaShuffleHits != 7 {
		t.Fatalf("published status lost the engine section: %+v", p.Engine)
	}
	if !strings.Contains(getLive(), "Session engine") {
		t.Fatal("published /live lost the session-engine table")
	}
}
