package obs

import (
	"fmt"
	"html"
	"io"
	"math"
	"strings"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
)

// Report is the self-contained HTML run report: per-node utilization
// timelines, the slot-occupancy Gantt, policy-decision overlay markers,
// and the registry's counters — everything inlined (no external assets)
// so the file can be archived as a CI artifact or mailed around.
type Report struct {
	// Title heads the report.
	Title string
	// Params are free-form key/value rows shown under the title (the
	// run's configuration: policy, scale, skew...).
	Params [][2]string

	Snaps     []Snapshot
	Gantt     Gantt
	Decisions []trace.PolicyDecision
	Policies  []PolicyState
	Counters  map[string]int64
	// Diag is the post-run job diagnosis (critical paths, time
	// breakdowns, anomalies); nil when the run was untraced.
	Diag *diag.Report
	// Dropped counts spans evicted from the trace ring; when non-zero
	// the Gantt is incomplete and the report says so.
	Dropped  int64
	Interval float64
	// Queries is the per-query registry detail (lifecycle, latency,
	// attribution), newest last; empty when qstats was not enabled.
	Queries []qstats.QueryRecord
	// QueryPolicies are the rolling per-policy latency aggregates that
	// accompany Queries.
	QueryPolicies []qstats.PolicyLatency
	// TotalSnaps is the sampler's full series length before thinning;
	// the data table notes when Snaps is a stride of it.
	TotalSnaps int
	// Alerts is the alert layer's final snapshot (rules, firing set,
	// transition log); nil when no time-series engine was attached. The
	// firing/resolved transitions also annotate the utilization chart.
	Alerts *tsdb.AlertsDump
}

// maxReportSamples bounds the chart paths and the data table: longer
// runs are strided down to roughly this many snapshots (the last one
// always kept) so paper-scale reports stay a viewable size. Full
// fidelity remains available through the sampler's CSV writers.
const maxReportSamples = 600

// thinSnaps strides snaps down to at most maxReportSamples+1 entries.
func thinSnaps(snaps []Snapshot) []Snapshot {
	if len(snaps) <= maxReportSamples {
		return snaps
	}
	stride := (len(snaps) + maxReportSamples - 1) / maxReportSamples
	out := make([]Snapshot, 0, maxReportSamples+1)
	for i := 0; i < len(snaps); i += stride {
		out = append(out, snaps[i])
	}
	if last := snaps[len(snaps)-1]; out[len(out)-1].Time != last.Time {
		out = append(out, last)
	}
	return out
}

// NewReport assembles a report from the sampler's recorded state and
// its tracker's tracer (spans, decisions, counters). Pass params for
// the run-configuration rows.
func NewReport(title string, s *Sampler, params [][2]string) *Report {
	tr := s.jt.Tracer()
	s.foldPolicyDecisions()
	snaps := s.Snapshots()
	return &Report{
		Title:      title,
		Params:     params,
		Snaps:      thinSnaps(snaps),
		Gantt:      BuildGantt(tr.Spans()),
		Decisions:  tr.PolicyDecisions(),
		Policies:   s.policySnapshot(),
		Counters:   tr.Counters(),
		Dropped:    tr.Dropped(),
		Diag:       diag.FromTracer(tr),
		Interval:   s.interval,
		TotalSnaps: len(snaps),
	}
}

// esc escapes text for HTML and attribute contexts.
func esc(s string) string { return html.EscapeString(s) }

// fnum trims a float for display.
func fnum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// point is one (time, value) vertex of a chart series.
type point struct{ x, y float64 }

// series is one named line on a chart; colorVar is the CSS custom
// property carrying its stroke ("--series-1"...).
type series struct {
	name     string
	colorVar string
	pts      []point
}

// marker is a vertical overlay line (policy decision) on a chart.
type marker struct {
	x     float64
	label string
	class string // "grow" or "eoi"
}

// chartGeom is the shared plot geometry.
type chartGeom struct {
	w, h                     float64
	left, right, top, bottom float64
	xmax, ymax               float64
}

func (g chartGeom) plotW() float64 { return g.w - g.left - g.right }
func (g chartGeom) plotH() float64 { return g.h - g.top - g.bottom }
func (g chartGeom) px(x float64) float64 {
	if g.xmax <= 0 {
		return g.left
	}
	return g.left + x/g.xmax*g.plotW()
}
func (g chartGeom) py(y float64) float64 {
	if g.ymax <= 0 {
		return g.h - g.bottom
	}
	return g.h - g.bottom - y/g.ymax*g.plotH()
}

// niceMax rounds v up to a tidy axis maximum.
func niceMax(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 2.5, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

// writeLineChart renders one SVG line chart with a 10% area wash under
// each series, hairline gridlines, one y axis, and per-vertex hover
// titles. yUnit annotates tick labels ("%" or "KB/s" or "").
func writeLineChart(b *strings.Builder, ss []series, markers []marker, g chartGeom, yUnit string) {
	fmt.Fprintf(b, `<svg viewBox="0 0 %g %g" role="img" preserveAspectRatio="xMidYMid meet">`, g.w, g.h)
	// Gridlines + y ticks.
	for i := 0; i <= 4; i++ {
		yv := g.ymax * float64(i) / 4
		y := g.py(yv)
		fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" class="grid"/>`, g.left, y, g.w-g.right, y)
		fmt.Fprintf(b, `<text x="%g" y="%g" class="tick" text-anchor="end">%s%s</text>`,
			g.left-6, y+3.5, fnum(yv), yUnit)
	}
	// X ticks.
	for i := 0; i <= 5; i++ {
		xv := g.xmax * float64(i) / 5
		x := g.px(xv)
		fmt.Fprintf(b, `<text x="%g" y="%g" class="tick" text-anchor="middle">%ss</text>`,
			x, g.h-g.bottom+14, fnum(xv))
	}
	// Baseline.
	fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" class="baseline"/>`,
		g.left, g.py(0), g.w-g.right, g.py(0))
	// Decision markers under the series.
	for _, m := range markers {
		x := g.px(m.x)
		fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" class="mark-%s"><title>%s</title></line>`,
			x, g.top, x, g.h-g.bottom, m.class, esc(m.label))
	}
	for _, s := range ss {
		if len(s.pts) == 0 {
			continue
		}
		var line, area strings.Builder
		for i, p := range s.pts {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&line, "%s%.2f %.2f", cmd, g.px(p.x), g.py(clampY(p.y, g.ymax)))
		}
		first, last := s.pts[0], s.pts[len(s.pts)-1]
		fmt.Fprintf(&area, "%sL%.2f %.2fL%.2f %.2fZ",
			line.String(), g.px(last.x), g.py(0), g.px(first.x), g.py(0))
		fmt.Fprintf(b, `<path d="%s" fill="var(%s)" fill-opacity="0.1" stroke="none"/>`, area.String(), s.colorVar)
		fmt.Fprintf(b, `<path d="%s" fill="none" stroke="var(%s)" stroke-width="2" stroke-linejoin="round"/>`,
			line.String(), s.colorVar)
		// Hover targets: invisible wide circles with titles.
		for _, p := range s.pts {
			fmt.Fprintf(b, `<circle cx="%.2f" cy="%.2f" r="7" fill="transparent"><title>%s · t=%ss · %s%s</title></circle>`,
				g.px(p.x), g.py(clampY(p.y, g.ymax)), esc(s.name), fnum(p.x), fnum(p.y), yUnit)
		}
	}
	b.WriteString(`</svg>`)
}

func clampY(v, ymax float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > ymax {
		return ymax
	}
	return v
}

// legend renders the series legend row (always present for >= 2
// series; swatches carry color, text wears ink tokens).
func legend(b *strings.Builder, ss []series) {
	if len(ss) < 2 {
		return
	}
	b.WriteString(`<div class="legend">`)
	for _, s := range ss {
		fmt.Fprintf(b, `<span class="key"><span class="swatch" style="background:var(%s)"></span>%s</span>`,
			s.colorVar, esc(s.name))
	}
	b.WriteString(`</div>`)
}

// xMax returns the report's shared time-axis extent.
func (r *Report) xMax() float64 {
	x := r.Interval
	for _, s := range r.Snaps {
		if s.Time > x {
			x = s.Time
		}
	}
	for _, bar := range r.Gantt.Bars {
		if bar.End > x {
			x = bar.End
		}
	}
	return x
}

// decisionMarkers thins the audit log to chart overlays: every GROW
// (capped) plus the EOI, which closes the job's input.
func (r *Report) decisionMarkers() []marker {
	var ms []marker
	for _, d := range r.Decisions {
		switch d.Verdict {
		case trace.VerdictGrow, trace.VerdictInit:
			ms = append(ms, marker{x: d.Time, class: "grow",
				label: fmt.Sprintf("%s job %d +%d splits (limit %d) @ %ss", d.Policy, d.JobID, d.Added, d.GrabLimit, fnum(d.Time))})
		case trace.VerdictEOI:
			ms = append(ms, marker{x: d.Time, class: "eoi",
				label: fmt.Sprintf("%s job %d end of input @ %ss", d.Policy, d.JobID, fnum(d.Time))})
		}
	}
	const capMarkers = 120
	if len(ms) > capMarkers {
		step := (len(ms) + capMarkers - 1) / capMarkers
		thin := ms[:0]
		for i := 0; i < len(ms); i += step {
			thin = append(thin, ms[i])
		}
		ms = thin
	}
	return ms
}

// alertMarkers overlays the alert log's firing/resolved transitions on
// the charts, next to the policy-decision markers.
func (r *Report) alertMarkers() []marker {
	if r.Alerts == nil {
		return nil
	}
	var ms []marker
	for _, e := range r.Alerts.Events {
		ms = append(ms, marker{x: e.TimeS, class: "alert",
			label: fmt.Sprintf("alert %s %s (%.4g vs %.4g) @ %ss", e.Rule, e.State, e.Value, e.Threshold, fnum(e.TimeS))})
	}
	const capAlertMarkers = 60
	if len(ms) > capAlertMarkers {
		ms = ms[len(ms)-capAlertMarkers:]
	}
	return ms
}

// WriteHTML renders the self-contained report.
func (r *Report) WriteHTML(w io.Writer) error {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	fmt.Fprintf(&b, "<title>%s</title>\n", esc(r.Title))
	b.WriteString(reportCSS)
	b.WriteString("</head>\n<body>\n<div class=\"viz-root\">\n")

	fmt.Fprintf(&b, "<h1>%s</h1>\n", esc(r.Title))
	if len(r.Params) > 0 {
		b.WriteString(`<dl class="params">`)
		for _, kv := range r.Params {
			fmt.Fprintf(&b, `<div><dt>%s</dt><dd>%s</dd></div>`, esc(kv[0]), esc(kv[1]))
		}
		b.WriteString("</dl>\n")
	}

	xmax := r.xMax()
	markers := append(r.decisionMarkers(), r.alertMarkers()...)
	wide := chartGeom{w: 920, h: 230, left: 52, right: 16, top: 12, bottom: 26, xmax: xmax, ymax: 100}

	// Cluster utilization (percent scale, one axis).
	util := []series{
		{name: "CPU util", colorVar: "--series-1"},
		{name: "Map slots", colorVar: "--series-2"},
		{name: "Reduce slots", colorVar: "--series-3"},
	}
	var disk series
	disk = series{name: "Disk read", colorVar: "--series-1"}
	var queued []series
	queued = []series{
		{name: "Queued maps", colorVar: "--series-1"},
		{name: "Queued reduces", colorVar: "--series-2"},
	}
	var diskMax, queueMax float64
	for _, s := range r.Snaps {
		util[0].pts = append(util[0].pts, point{s.Time, s.CPUUtilPct})
		util[1].pts = append(util[1].pts, point{s.Time, s.MapSlotPct})
		util[2].pts = append(util[2].pts, point{s.Time, s.ReduceSlotPct})
		disk.pts = append(disk.pts, point{s.Time, s.DiskReadKBs})
		queued[0].pts = append(queued[0].pts, point{s.Time, float64(s.QueuedMaps)})
		queued[1].pts = append(queued[1].pts, point{s.Time, float64(s.QueuedReduces)})
		diskMax = math.Max(diskMax, s.DiskReadKBs)
		queueMax = math.Max(queueMax, math.Max(float64(s.QueuedMaps), float64(s.QueuedReduces)))
	}

	b.WriteString("<section>\n<h2>Cluster utilization</h2>\n")
	fmt.Fprintf(&b, "<p class=\"note\">Interval means over %ss virtual-clock samples; vertical markers are Input Provider decisions (grow / end-of-input).</p>\n", fnum(r.Interval))
	legend(&b, util)
	writeLineChart(&b, util, markers, wide, "%")
	b.WriteString("\n<h3>Disk read (per-disk mean)</h3>\n")
	dg := wide
	dg.h = 170
	dg.ymax = niceMax(diskMax)
	writeLineChart(&b, []series{disk}, nil, dg, "")
	b.WriteString("\n<h3>Queue depth</h3>\n")
	qg := wide
	qg.h = 170
	qg.ymax = niceMax(queueMax)
	legend(&b, queued)
	writeLineChart(&b, queued, nil, qg, "")
	b.WriteString("</section>\n")

	// Per-policy splits granted (the growth curves that differentiate
	// LA from Hadoop).
	r.writeGrowthSection(&b, wide)

	// Per-node small multiples.
	r.writeNodeSection(&b, xmax)

	// Slot-occupancy Gantt (critical-path attempts outlined).
	r.writeGanttSection(&b, xmax, markers)

	// Per-job diagnosis: breakdown bars + critical path.
	r.writeDiagSection(&b)

	// Per-query registry detail (when qstats was enabled).
	r.writeQuerySection(&b)

	// Alert rules and the firing/resolved log (when the time-series
	// engine was attached).
	r.writeAlertSection(&b)

	// Policy summary + counters + data table.
	r.writePolicyTable(&b)
	r.writeDataTable(&b)
	r.writeCounters(&b)

	b.WriteString("</div>\n</body>\n</html>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// writeGrowthSection charts cumulative splits granted per policy.
func (r *Report) writeGrowthSection(b *strings.Builder, g chartGeom) {
	if len(r.Decisions) == 0 {
		return
	}
	// Cumulative Added per policy over time.
	order := []string{}
	cum := map[string]int{}
	pts := map[string][]point{}
	for _, d := range r.Decisions {
		if _, ok := cum[d.Policy]; !ok {
			order = append(order, d.Policy)
		}
		cum[d.Policy] += d.Added
		pts[d.Policy] = append(pts[d.Policy], point{d.Time, float64(cum[d.Policy])})
	}
	var ss []series
	var ymax float64
	for i, p := range order {
		if i >= 8 {
			break // categorical palette is eight slots; fold the rest away
		}
		s := series{name: p, colorVar: fmt.Sprintf("--series-%d", i+1), pts: pts[p]}
		ss = append(ss, s)
		ymax = math.Max(ymax, float64(cum[p]))
	}
	g.ymax = niceMax(ymax)
	g.h = 200
	b.WriteString("<section>\n<h2>Input growth (splits granted)</h2>\n")
	legend(b, ss)
	writeLineChart(b, ss, nil, g, "")
	b.WriteString("</section>\n")
}

// writeNodeSection renders per-node small multiples: CPU and map-slot
// occupancy per node on a shared percent axis.
func (r *Report) writeNodeSection(b *strings.Builder, xmax float64) {
	if len(r.Snaps) == 0 || len(r.Snaps[0].Nodes) == 0 {
		return
	}
	n := len(r.Snaps[0].Nodes)
	b.WriteString("<section>\n<h2>Per-node utilization</h2>\n")
	legend(b, []series{
		{name: "CPU util", colorVar: "--series-1"},
		{name: "Map slots", colorVar: "--series-2"},
	})
	b.WriteString(`<div class="multiples">`)
	for i := 0; i < n; i++ {
		cpu := series{name: "CPU util", colorVar: "--series-1"}
		slot := series{name: "Map slots", colorVar: "--series-2"}
		for _, s := range r.Snaps {
			if i < len(s.Nodes) {
				cpu.pts = append(cpu.pts, point{s.Time, s.Nodes[i].CPUUtilPct})
				slot.pts = append(slot.pts, point{s.Time, s.Nodes[i].MapSlotPct})
			}
		}
		fmt.Fprintf(b, `<figure><figcaption>node %d</figcaption>`, i)
		writeLineChart(b, []series{cpu, slot}, nil,
			chartGeom{w: 300, h: 120, left: 34, right: 8, top: 6, bottom: 20, xmax: xmax, ymax: 100}, "")
		b.WriteString(`</figure>`)
	}
	b.WriteString("</div>\n</section>\n")
}

// writeGanttSection renders the slot-occupancy Gantt: one lane per
// slot, map attempts in slot order, reduce attempts below them, with
// outcome-coded bars and decision markers.
func (r *Report) writeGanttSection(b *strings.Builder, xmax float64, markers []marker) {
	if len(r.Gantt.Bars) == 0 {
		return
	}
	b.WriteString("<section>\n<h2>Slot occupancy</h2>\n")
	if r.Dropped > 0 {
		fmt.Fprintf(b, "<p class=\"note\">⚠ %d spans were evicted from the trace ring; the oldest attempts are missing from this chart.</p>\n", r.Dropped)
	}
	crit := r.criticalBars()
	b.WriteString(`<div class="legend">` +
		`<span class="key"><span class="swatch" style="background:var(--series-1)"></span>map attempt</span>` +
		`<span class="key"><span class="swatch" style="background:var(--series-2)"></span>reduce attempt</span>` +
		`<span class="key"><span class="swatch" style="background:var(--status-critical)"></span>failed</span>` +
		`<span class="key"><span class="swatch" style="background:var(--status-serious)"></span>killed</span>`)
	if len(crit) > 0 {
		b.WriteString(`<span class="key"><span class="swatch crit" style="background:transparent"></span>on a critical path</span>`)
	}
	b.WriteString("</div>\n")

	const laneH, nodeGap, top, bottom, left, right, width = 8.0, 10.0, 8.0, 26.0, 52.0, 16.0, 920.0
	// Node order and lane offsets.
	nodes := make([]int, 0, len(r.Gantt.Lanes))
	for n := range r.Gantt.Lanes {
		nodes = append(nodes, n)
	}
	sortInts(nodes)
	offset := map[int]float64{}
	y := top
	for _, n := range nodes {
		offset[n] = y
		y += float64(r.Gantt.Lanes[n])*laneH + nodeGap
	}
	height := y - nodeGap + bottom
	g := chartGeom{w: width, h: height, left: left, right: right, top: top, bottom: bottom, xmax: xmax, ymax: 1}

	fmt.Fprintf(b, `<svg viewBox="0 0 %g %g" role="img" preserveAspectRatio="xMidYMid meet">`, width, height)
	for i := 0; i <= 5; i++ {
		xv := xmax * float64(i) / 5
		x := g.px(xv)
		fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" class="grid"/>`, x, top, x, height-bottom)
		fmt.Fprintf(b, `<text x="%g" y="%g" class="tick" text-anchor="middle">%ss</text>`, x, height-bottom+14, fnum(xv))
	}
	for _, m := range markers {
		x := g.px(m.x)
		fmt.Fprintf(b, `<line x1="%g" y1="%g" x2="%g" y2="%g" class="mark-%s"><title>%s</title></line>`,
			x, top, x, height-bottom, m.class, esc(m.label))
	}
	for _, n := range nodes {
		fmt.Fprintf(b, `<text x="%g" y="%g" class="tick" text-anchor="end">n%d</text>`,
			left-6, offset[n]+float64(r.Gantt.Lanes[n])*laneH/2+3, n)
	}
	const maxBars = 20000
	bars := r.Gantt.Bars
	truncated := false
	if len(bars) > maxBars {
		bars, truncated = bars[:maxBars], true
	}
	for _, bar := range bars {
		x0, x1 := g.px(bar.Start), g.px(bar.End)
		if x1-x0 < 0.75 {
			x1 = x0 + 0.75
		}
		fill := "var(--series-1)"
		if bar.Kind == "reduce" {
			fill = "var(--series-2)"
		}
		switch bar.Outcome {
		case trace.OutcomeFailed:
			fill = "var(--status-critical)"
		case trace.OutcomeKilled:
			fill = "var(--status-serious)"
		}
		opacity := ""
		if bar.Speculative {
			opacity = ` fill-opacity="0.55"`
		}
		spec := ""
		if bar.Speculative {
			spec = " (speculative)"
		}
		outcome := bar.Outcome
		if outcome == "" {
			outcome = "ok"
		}
		onPath, pathNote := "", ""
		if crit[critKey{job: bar.Job, task: bar.Task, attempt: bar.Attempt, kind: bar.Kind}] {
			onPath, pathNote = ` class="crit"`, " — on the critical path"
		}
		fmt.Fprintf(b, `<rect x="%.2f" y="%.2f" width="%.2f" height="%g" rx="1.5" fill="%s"%s%s><title>%s job %d task %d attempt %d%s [%s] %s–%ss%s</title></rect>`,
			x0, offset[bar.Node]+float64(bar.Lane)*laneH+1, x1-x0, laneH-2, fill, opacity, onPath,
			bar.Kind, bar.Job, bar.Task, bar.Attempt, spec, outcome, fnum(bar.Start), fnum(bar.End), pathNote)
	}
	b.WriteString("</svg>\n")
	if truncated {
		fmt.Fprintf(b, "<p class=\"note\">Showing the first %d of %d attempts.</p>\n", maxBars, len(r.Gantt.Bars))
	}
	b.WriteString("</section>\n")
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// writeQuerySection renders the per-query registry detail: the rolling
// per-policy latency summary and one row per finished query with its
// lifecycle and phase-time attribution.
func (r *Report) writeQuerySection(b *strings.Builder) {
	if len(r.Queries) == 0 && len(r.QueryPolicies) == 0 {
		return
	}
	b.WriteString("<section>\n<h2>Per-query stats</h2>\n")
	if len(r.QueryPolicies) > 0 {
		b.WriteString("<h3>Rolling per-policy latency (virtual seconds)</h3>\n<table>\n<thead><tr>" +
			"<th>policy</th><th>finished</th><th>failed</th><th>p50</th><th>p90</th><th>p99</th><th>max</th></tr></thead>\n<tbody>\n")
		for _, p := range r.QueryPolicies {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				esc(p.Policy), p.Finished, p.Failed,
				fnum(p.VirtualP50S), fnum(p.VirtualP90S), fnum(p.VirtualP99S), fnum(p.VirtualMaxS))
		}
		b.WriteString("</tbody>\n</table>\n")
	}
	if len(r.Queries) > 0 {
		const maxQueryRows = 200
		qs := r.Queries
		truncated := 0
		if len(qs) > maxQueryRows {
			truncated = len(qs) - maxQueryRows
			qs = qs[len(qs)-maxQueryRows:]
		}
		b.WriteString("<h3>Finished queries</h3>\n<table>\n<thead><tr>" +
			"<th>id</th><th>state</th><th>policy</th><th>k</th><th>latency (s)</th><th>first match (s)</th>" +
			"<th>limit hit (s)</th><th>rows</th><th>overshoot</th><th>splits</th><th>records</th>" +
			"<th>map s</th><th>shuffle s</th><th>reduce s</th></tr></thead>\n<tbody>\n")
		for _, q := range qs {
			fm, lh := "—", "—"
			if q.FirstMatchVT >= 0 {
				fm = fnum(q.FirstMatchVT - q.SubmitVT)
			}
			if q.LimitHitVT >= 0 {
				lh = fnum(q.LimitHitVT - q.SubmitVT)
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td>"+
				"<td>%d</td><td>%d</td><td>%d/%d</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				esc(q.ID), esc(q.State), esc(q.Policy), q.K, fnum(q.LatencyVirtualS), fm, lh,
				q.Rows, q.OvershootRows, q.SplitsScanned, q.SplitsTotal, q.RecordsRead,
				fnum(q.MapSeconds), fnum(q.ShuffleSeconds), fnum(q.ReduceSeconds))
		}
		b.WriteString("</tbody>\n</table>\n")
		if truncated > 0 {
			fmt.Fprintf(b, "<p class=\"note\">Showing the last %d of %d queries; the full set is in the qstats JSON dump.</p>\n", maxQueryRows, len(r.Queries))
		}
	}
	b.WriteString("</section>\n")
}

// writeAlertSection renders the alert layer's end-of-run snapshot: the
// still-firing set, then every firing/resolved transition, then the
// configured rules.
func (r *Report) writeAlertSection(b *strings.Builder) {
	a := r.Alerts
	if a == nil || (len(a.Rules) == 0 && len(a.Events) == 0) {
		return
	}
	b.WriteString("<section>\n<h2>Alerts</h2>\n")
	if len(a.Active) > 0 {
		fmt.Fprintf(b, "<p class=\"note\">⚠ %d alert(s) still firing at end of run.</p>\n", len(a.Active))
		b.WriteString("<table>\n<thead><tr><th>rule</th><th>since (s)</th><th>value</th><th>threshold</th><th>severity</th></tr></thead>\n<tbody>\n")
		for _, al := range a.Active {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				esc(al.Rule), fnum(al.SinceS), fnum(al.Value), fnum(al.Threshold), esc(al.Severity))
		}
		b.WriteString("</tbody>\n</table>\n")
	}
	if len(a.Events) > 0 {
		if a.Dropped > 0 {
			fmt.Fprintf(b, "<p class=\"note\">⚠ %d older alert events were dropped from the log.</p>\n", a.Dropped)
		}
		b.WriteString("<h3>Transitions</h3>\n<table>\n<thead><tr><th>t (s)</th><th>rule</th><th>state</th><th>value</th><th>threshold</th><th>severity</th><th>message</th></tr></thead>\n<tbody>\n")
		for _, e := range a.Events {
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				fnum(e.TimeS), esc(e.Rule), esc(e.State), fnum(e.Value), fnum(e.Threshold), esc(e.Severity), esc(e.Message))
		}
		b.WriteString("</tbody>\n</table>\n")
	}
	if len(a.Rules) > 0 {
		b.WriteString("<h3>Configured rules</h3>\n<table>\n<thead><tr><th>name</th><th>kind</th><th>series / objective</th><th>condition</th><th>window (s)</th><th>for (s)</th><th>severity</th></tr></thead>\n<tbody>\n")
		for _, rule := range a.Rules {
			target := rule.Series
			cond := fmt.Sprintf("%s %s", ruleOp(rule), fnum(rule.Value))
			if rule.Kind == tsdb.KindSLOBurn {
				target = fmt.Sprintf("latency ≤ %ss", fnum(rule.ObjectiveS))
				if rule.Policy != "" {
					target += " (" + rule.Policy + ")"
				}
				cond = fmt.Sprintf("burn %s %s%%", ruleOp(rule), fnum(rule.MaxBurnPct))
			}
			fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td></tr>\n",
				esc(rule.Name), esc(rule.Kind), esc(target), esc(cond), fnum(rule.WindowS), fnum(rule.ForS), esc(rule.Severity))
		}
		b.WriteString("</tbody>\n</table>\n")
	}
	b.WriteString("</section>\n")
}

// ruleOp mirrors the rule's operator default for display.
func ruleOp(r tsdb.Rule) string {
	if r.Op == "" {
		return ">"
	}
	return r.Op
}

func (r *Report) writePolicyTable(b *strings.Builder) {
	if len(r.Policies) == 0 {
		return
	}
	b.WriteString("<section>\n<h2>Input Provider state</h2>\n<table>\n<thead><tr>" +
		"<th>policy</th><th>evaluations</th><th>splits granted</th><th>last verdict</th>" +
		"<th>grab limit</th><th>work threshold</th><th>headroom</th></tr></thead>\n<tbody>\n")
	for _, p := range r.Policies {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%s</td><td>%d</td><td>%s%%</td><td>%s%%</td></tr>\n",
			esc(p.Policy), p.Evaluations, p.SplitsGranted, esc(p.LastVerdict), p.GrabLimit,
			fnum(p.WorkThresholdPct), fnum(p.HeadroomPct))
	}
	b.WriteString("</tbody>\n</table>\n</section>\n")
}

// writeDataTable is the accessibility table view of the cluster series.
func (r *Report) writeDataTable(b *strings.Builder) {
	if len(r.Snaps) == 0 {
		return
	}
	summary := "Data table (cluster samples)"
	if r.TotalSnaps > len(r.Snaps) {
		summary = fmt.Sprintf("Data table (%d of %d cluster samples — strided; CSVs carry the full series)",
			len(r.Snaps), r.TotalSnaps)
	}
	b.WriteString("<details>\n<summary>" + esc(summary) + "</summary>\n<table>\n<thead><tr>" +
		"<th>t (s)</th><th>CPU %</th><th>disk KB/s</th><th>net %</th><th>map slots %</th>" +
		"<th>reduce slots %</th><th>queued maps</th><th>queued reduces</th><th>jobs</th></tr></thead>\n<tbody>\n")
	for _, s := range r.Snaps {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			fnum(s.Time), fnum(s.CPUUtilPct), fnum(s.DiskReadKBs), fnum(s.NetworkUtilPct),
			fnum(s.MapSlotPct), fnum(s.ReduceSlotPct), s.QueuedMaps, s.QueuedReduces, s.RunningJobs)
	}
	b.WriteString("</tbody>\n</table>\n</details>\n")
}

func (r *Report) writeCounters(b *strings.Builder) {
	if len(r.Counters) == 0 {
		return
	}
	names := make([]string, 0, len(r.Counters))
	for k := range r.Counters {
		names = append(names, k)
	}
	sortStrings(names)
	b.WriteString("<details>\n<summary>Counters</summary>\n<table>\n<tbody>\n")
	for _, k := range names {
		fmt.Fprintf(b, "<tr><td>%s</td><td>%d</td></tr>\n", esc(k), r.Counters[k])
	}
	b.WriteString("</tbody>\n</table>\n</details>\n")
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// reportCSS carries the palette as CSS custom properties: light values
// on .viz-root, dark values under both the OS media query and an
// explicit data-theme toggle scope.
const reportCSS = `<style>
.viz-root {
  color-scheme: light;
  --surface-1: #fcfcfb;
  --page: #f9f9f7;
  --text-primary: #0b0b0b;
  --text-secondary: #52514e;
  --text-muted: #898781;
  --grid: #e1e0d9;
  --baseline: #c3c2b7;
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-4: #eda100;
  --series-5: #e87ba4;
  --series-6: #008300;
  --series-7: #4a3aa7;
  --series-8: #e34948;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  color: var(--text-primary);
  background: var(--page);
  margin: 0 auto;
  padding: 24px;
  max-width: 980px;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --surface-1: #1a1a19;
    --page: #0d0d0d;
    --text-primary: #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted: #898781;
    --grid: #2c2c2a;
    --baseline: #383835;
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
    --series-4: #c98500;
    --series-5: #d55181;
    --series-6: #008300;
    --series-7: #9085e9;
    --series-8: #e66767;
    --status-serious: #ec835a;
    --status-critical: #d03b3b;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --surface-1: #1a1a19;
  --page: #0d0d0d;
  --text-primary: #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted: #898781;
  --grid: #2c2c2a;
  --baseline: #383835;
  --series-1: #3987e5;
  --series-2: #d95926;
  --series-3: #199e70;
  --series-4: #c98500;
  --series-5: #d55181;
  --series-6: #008300;
  --series-7: #9085e9;
  --series-8: #e66767;
  --status-serious: #ec835a;
  --status-critical: #d03b3b;
}
body { margin: 0; background: var(--page); }
.viz-root h1 { font-size: 20px; margin: 0 0 8px; }
.viz-root h2 { font-size: 16px; margin: 24px 0 4px; }
.viz-root h3 { font-size: 13px; color: var(--text-secondary); margin: 14px 0 4px; font-weight: 600; }
.viz-root .note { color: var(--text-secondary); font-size: 12.5px; margin: 2px 0 8px; }
.viz-root section { background: var(--surface-1); border: 1px solid var(--grid); border-radius: 8px; padding: 12px 16px 16px; margin: 14px 0; }
.viz-root svg { display: block; width: 100%; height: auto; }
.viz-root .grid { stroke: var(--grid); stroke-width: 1; }
.viz-root .baseline { stroke: var(--baseline); stroke-width: 1; }
.viz-root .tick { fill: var(--text-muted); font-size: 10px; font-variant-numeric: tabular-nums; }
.viz-root .mark-grow { stroke: var(--text-muted); stroke-width: 1; stroke-dasharray: 2 3; }
.viz-root .mark-eoi { stroke: var(--text-secondary); stroke-width: 1.5; }
.viz-root .mark-alert { stroke: var(--status-critical); stroke-width: 1.5; stroke-dasharray: 4 3; }
.viz-root .legend { display: flex; flex-wrap: wrap; gap: 14px; margin: 6px 0; }
.viz-root .key { display: inline-flex; align-items: center; gap: 6px; color: var(--text-secondary); font-size: 12.5px; }
.viz-root .swatch { width: 10px; height: 10px; border-radius: 3px; display: inline-block; }
.viz-root .params { display: flex; flex-wrap: wrap; gap: 6px 22px; margin: 0 0 6px; }
.viz-root .params div { display: flex; gap: 6px; }
.viz-root .params dt { color: var(--text-muted); }
.viz-root .params dd { margin: 0; color: var(--text-secondary); font-variant-numeric: tabular-nums; }
.viz-root .multiples { display: grid; grid-template-columns: repeat(auto-fill, minmax(260px, 1fr)); gap: 10px; }
.viz-root figure { margin: 0; }
.viz-root figcaption { color: var(--text-muted); font-size: 11.5px; margin-bottom: 2px; }
.viz-root table { border-collapse: collapse; font-size: 12.5px; font-variant-numeric: tabular-nums; }
.viz-root th { text-align: left; color: var(--text-secondary); font-weight: 600; }
.viz-root th, .viz-root td { padding: 3px 14px 3px 0; border-bottom: 1px solid var(--grid); }
.viz-root details { margin: 12px 0; color: var(--text-secondary); }
.viz-root summary { cursor: pointer; }
.viz-root .crit { stroke: var(--text-primary); stroke-width: 1.2; }
.viz-root span.swatch.crit { border: 1.2px solid var(--text-primary); box-sizing: border-box; }
.viz-root .diag-row { display: flex; align-items: center; gap: 10px; margin: 4px 0; }
.viz-root .diag-label { flex: 0 0 190px; color: var(--text-secondary); font-size: 12.5px; font-variant-numeric: tabular-nums; }
.viz-root .stack { flex: 1; display: flex; height: 16px; border-radius: 3px; overflow: hidden; background: var(--grid); }
.viz-root .stack span { display: block; height: 100%; }
</style>
`
