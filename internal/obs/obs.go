// Package obs is the cluster resource-utilization observability layer:
// a sampler driven by the simulated clock that periodically snapshots
// every node's CPU and disk use, map/reduce slot occupancy, queue
// depths, and per-policy Input Provider state — plus exporters for the
// artifacts those snapshots feed: per-node time-series CSVs, a
// slot-occupancy Gantt joined from trace spans, a self-contained HTML
// run report, and a Prometheus/JSON HTTP surface (see server.go).
//
// The sampler reads the same monotonic service integrals the paper's
// §V-D monitoring tables are computed from, so a snapshot's interval
// averages agree with the end-of-run scalars by construction: the sum
// over snapshots of occupancy·Δt equals the occupied-slot-second
// integral, which equals the sum of attempt span durations.
package obs

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/trace"
)

// DefaultIntervalS is the sampling period when Config leaves it zero —
// the paper's 30-second monitoring interval.
const DefaultIntervalS = 30.0

// Config tunes the sampler.
type Config struct {
	// IntervalS is the virtual-clock sampling period (default
	// DefaultIntervalS).
	IntervalS float64
}

func (c Config) interval() float64 {
	if c.IntervalS > 0 {
		return c.IntervalS
	}
	return DefaultIntervalS
}

// NodeSample is one node's interval-averaged resource reading.
type NodeSample struct {
	// Node is the node id.
	Node int
	// CPUUtilPct is mean CPU utilisation over the interval, in percent
	// of the node's core capacity (speed factors included).
	CPUUtilPct float64
	// DiskReadKBs is the mean per-disk transfer rate over the interval
	// in KB/s.
	DiskReadKBs float64
	// MapSlotPct is mean map-slot occupancy over the interval, derived
	// from the node's occupied-slot-second integral.
	MapSlotPct float64
	// ReduceSlotPct is mean reduce-slot occupancy over the interval.
	ReduceSlotPct float64
	// MapSlotsUsed/MapSlots and ReduceSlotsUsed/ReduceSlots are the
	// instantaneous occupancy at the sample boundary.
	MapSlotsUsed    int
	MapSlots        int
	ReduceSlotsUsed int
	ReduceSlots     int
}

// PolicyState aggregates the Input Provider audit log per policy: how
// many splits each policy has granted so far and how much headroom its
// last evaluation had over the work threshold.
type PolicyState struct {
	// Policy is the policy name.
	Policy string
	// Evaluations counts audit-log entries seen for the policy.
	Evaluations int
	// SplitsGranted is the cumulative number of partitions handed out.
	SplitsGranted int
	// LastVerdict is the most recent Verdict* constant.
	LastVerdict string
	// GrabLimit is the most recent partition cap.
	GrabLimit int
	// WorkThresholdPct is the policy's threshold in force.
	WorkThresholdPct float64
	// HeadroomPct is the last ProgressPct minus WorkThresholdPct: how
	// far the newly-completed-work percentage cleared (positive) or
	// missed (negative) the threshold.
	HeadroomPct float64
}

// Snapshot is one sampling tick: cluster-level interval averages, the
// per-node breakdown, queue depths, and per-policy provider state.
type Snapshot struct {
	// Time is the interval's end (virtual seconds).
	Time float64
	// Nodes holds one entry per cluster node, in node-id order.
	Nodes []NodeSample

	// Cluster-level interval means.
	CPUUtilPct     float64
	DiskReadKBs    float64
	NetworkUtilPct float64
	MapSlotPct     float64
	ReduceSlotPct  float64

	// Instantaneous load at the sample boundary.
	OccupiedMapSlots    int
	TotalMapSlots       int
	OccupiedReduceSlots int
	TotalReduceSlots    int
	QueuedMaps          int
	QueuedReduces       int
	RunningJobs         int

	// Policies is the per-policy provider state at the boundary, in
	// first-seen order.
	Policies []PolicyState
}

// Sampler snapshots the cluster at a fixed virtual interval. It is
// driven by the engine's event loop (Start schedules a self-renewing
// tick), reads only monotonic integrals and instantaneous counters, and
// never mutates simulation state — enabling it cannot change a run's
// virtual timeline.
//
// The sampler is single-writer (the engine goroutine) with snapshot
// reads allowed from other goroutines: recorded state is guarded by the
// tracer-style convention that Snapshots/Latest copy under the engine
// owner's external synchronisation (the obs.Server serialises engine
// stepping and scrapes with its own mutex).
type Sampler struct {
	jt       *mapreduce.JobTracker
	interval float64
	gen      int // invalidates scheduled ticks from older Start calls

	// Integral baselines from the previous tick.
	lastT       float64
	lastCPU     []float64
	lastDisk    []float64
	lastMapInt  []float64
	lastRedInt  []float64
	lastNet     float64
	lastClusCPU float64
	lastClusDsk float64

	// Incremental policy aggregation.
	decisionsSeen int
	polState      map[string]*PolicyState
	polOrder      []string

	snaps []Snapshot
}

// NewSampler builds a sampler for the tracker's cluster. Call Start to
// begin ticking.
func NewSampler(jt *mapreduce.JobTracker, cfg Config) *Sampler {
	return &Sampler{jt: jt, interval: cfg.interval(), polState: make(map[string]*PolicyState)}
}

// Interval returns the sampling period in virtual seconds.
func (s *Sampler) Interval() float64 { return s.interval }

// Start (re)initialises baselines at the current virtual time and
// schedules the periodic tick. Calling Start again supersedes earlier
// schedules (generation guard), so Stop+Start never leaves a dangling
// tick loop.
func (s *Sampler) Start() {
	s.gen++
	gen := s.gen
	s.rebase()
	var tick func()
	tick = func() {
		if s.gen != gen {
			return
		}
		s.sample()
		s.jt.Engine().After(s.interval, tick)
	}
	s.jt.Engine().After(s.interval, tick)
}

// Stop invalidates scheduled ticks. Recorded snapshots remain readable.
func (s *Sampler) Stop() { s.gen++ }

// rebase captures integral baselines at now.
func (s *Sampler) rebase() {
	jt := s.jt
	cl := jt.Cluster()
	n := len(cl.Nodes)
	s.lastT = jt.Engine().Now()
	s.lastCPU = make([]float64, n)
	s.lastDisk = make([]float64, n)
	s.lastMapInt = make([]float64, n)
	s.lastRedInt = make([]float64, n)
	trackers := jt.TaskTrackers()
	for i, node := range cl.Nodes {
		s.lastCPU[i] = node.CPUUsedIntegral()
		s.lastDisk[i] = node.DiskUsedIntegral()
		s.lastMapInt[i] = trackers[i].MapSlotIntegral()
		s.lastRedInt[i] = trackers[i].ReduceSlotIntegral()
	}
	s.lastNet = cl.NetworkUsedIntegral()
	s.lastClusCPU = cl.CPUUsedIntegral()
	s.lastClusDsk = cl.DiskUsedIntegral()
}

// sample takes one snapshot and advances the baselines.
func (s *Sampler) sample() {
	jt := s.jt
	cl := jt.Cluster()
	now := jt.Engine().Now()
	dt := now - s.lastT
	if dt <= 0 {
		return
	}
	trackers := jt.TaskTrackers()
	snap := Snapshot{Time: now, Nodes: make([]NodeSample, len(cl.Nodes))}
	for i, node := range cl.Nodes {
		tt := trackers[i]
		cpu := node.CPUUsedIntegral()
		disk := node.DiskUsedIntegral()
		mapInt := tt.MapSlotIntegral()
		redInt := tt.ReduceSlotIntegral()
		ns := NodeSample{
			Node:            node.ID,
			CPUUtilPct:      100 * (cpu - s.lastCPU[i]) / (node.CPUCapacity() * dt),
			DiskReadKBs:     (disk - s.lastDisk[i]) / dt / float64(len(node.Disks)) / 1024,
			MapSlotsUsed:    tt.MapSlotsUsed(),
			MapSlots:        tt.MapSlots(),
			ReduceSlotsUsed: tt.ReduceSlotsUsed(),
			ReduceSlots:     tt.ReduceSlots(),
		}
		if tt.MapSlots() > 0 {
			ns.MapSlotPct = 100 * (mapInt - s.lastMapInt[i]) / (float64(tt.MapSlots()) * dt)
		}
		if tt.ReduceSlots() > 0 {
			ns.ReduceSlotPct = 100 * (redInt - s.lastRedInt[i]) / (float64(tt.ReduceSlots()) * dt)
		}
		snap.Nodes[i] = ns
		s.lastCPU[i], s.lastDisk[i], s.lastMapInt[i], s.lastRedInt[i] = cpu, disk, mapInt, redInt
	}

	net := cl.NetworkUsedIntegral()
	clusCPU := cl.CPUUsedIntegral()
	clusDsk := cl.DiskUsedIntegral()
	st := jt.ClusterStatus()
	snap.CPUUtilPct = 100 * (clusCPU - s.lastClusCPU) / (cl.CPUCapacity() * dt)
	snap.DiskReadKBs = (clusDsk - s.lastClusDsk) / dt / float64(cl.Cfg.TotalDisks()) / 1024
	snap.NetworkUtilPct = 100 * (net - s.lastNet) / (cl.NetworkCapacity() * dt)
	if st.TotalMapSlots > 0 {
		var used float64
		for _, ns := range snap.Nodes {
			used += ns.MapSlotPct * float64(ns.MapSlots)
		}
		snap.MapSlotPct = used / float64(st.TotalMapSlots)
	}
	if st.TotalReduceSlots > 0 {
		var used float64
		for _, ns := range snap.Nodes {
			used += ns.ReduceSlotPct * float64(ns.ReduceSlots)
		}
		snap.ReduceSlotPct = used / float64(st.TotalReduceSlots)
	}
	snap.OccupiedMapSlots = st.OccupiedMapSlots
	snap.TotalMapSlots = st.TotalMapSlots
	snap.OccupiedReduceSlots = st.OccupiedReduces
	snap.TotalReduceSlots = st.TotalReduceSlots
	snap.QueuedMaps = st.QueuedMapTasks
	snap.QueuedReduces = st.QueuedReduceTasks
	snap.RunningJobs = st.RunningJobs
	s.lastNet, s.lastClusCPU, s.lastClusDsk, s.lastT = net, clusCPU, clusDsk, now

	s.foldPolicyDecisions()
	snap.Policies = s.policySnapshot()
	s.snaps = append(s.snaps, snap)

	s.publishGauges(snap)
}

// foldPolicyDecisions consumes new audit-log entries incrementally.
func (s *Sampler) foldPolicyDecisions() {
	tr := s.jt.Tracer()
	if !tr.Enabled() {
		return
	}
	fresh := tr.PolicyDecisionsSince(s.decisionsSeen)
	s.decisionsSeen += len(fresh)
	for _, d := range fresh {
		ps := s.polState[d.Policy]
		if ps == nil {
			ps = &PolicyState{Policy: d.Policy}
			s.polState[d.Policy] = ps
			s.polOrder = append(s.polOrder, d.Policy)
		}
		ps.Evaluations++
		ps.SplitsGranted += d.Added
		ps.LastVerdict = d.Verdict
		ps.GrabLimit = d.GrabLimit
		ps.WorkThresholdPct = d.WorkThresholdPct
		ps.HeadroomPct = d.ProgressPct - d.WorkThresholdPct
	}
}

// policySnapshot copies the aggregated per-policy state in first-seen
// order.
func (s *Sampler) policySnapshot() []PolicyState {
	if len(s.polOrder) == 0 {
		return nil
	}
	out := make([]PolicyState, 0, len(s.polOrder))
	for _, name := range s.polOrder {
		out = append(out, *s.polState[name])
	}
	return out
}

// publishGauges mirrors the snapshot's cluster-level readings into the
// tracer's gauge registry, which PromFamilies then exposes on /metrics.
func (s *Sampler) publishGauges(snap Snapshot) {
	tr := s.jt.Tracer()
	if !tr.Enabled() {
		return
	}
	tr.SetGauge(trace.GaugeCPUUtilPct, snap.CPUUtilPct)
	tr.SetGauge(trace.GaugeDiskReadKBs, snap.DiskReadKBs)
	tr.SetGauge(trace.GaugeNetworkUtilPct, snap.NetworkUtilPct)
	tr.SetGauge(trace.GaugeMapSlotPct, snap.MapSlotPct)
	tr.SetGauge(trace.GaugeReduceSlotPct, snap.ReduceSlotPct)
	tr.SetGauge(trace.GaugeQueuedMaps, float64(snap.QueuedMaps))
	tr.SetGauge(trace.GaugeQueuedReduces, float64(snap.QueuedReduces))
	tr.SetGauge(trace.GaugeRunningJobs, float64(snap.RunningJobs))
	tr.SetGauge(trace.GaugeVirtualTime, snap.Time)
	tr.SetGauge(trace.GaugeProcessedEvents, float64(s.jt.Engine().Processed()))
}

// Snapshots returns the recorded time series.
func (s *Sampler) Snapshots() []Snapshot { return append([]Snapshot(nil), s.snaps...) }

// SnapshotCount returns how many snapshots have been recorded: the
// cursor SnapshotsSince expects next.
func (s *Sampler) SnapshotCount() int { return len(s.snaps) }

// SnapshotsSince returns the snapshots recorded at index >= from,
// mirroring trace.PolicyDecisionsSince: incremental consumers (the
// server's publish step, live dashboards) advance a cursor by the
// returned length instead of copying the whole series on every poll.
func (s *Sampler) SnapshotsSince(from int) []Snapshot {
	if from < 0 {
		from = 0
	}
	if from >= len(s.snaps) {
		return nil
	}
	return append([]Snapshot(nil), s.snaps[from:]...)
}

// Latest returns the most recent snapshot (ok false before the first
// tick).
func (s *Sampler) Latest() (Snapshot, bool) {
	if len(s.snaps) == 0 {
		return Snapshot{}, false
	}
	return s.snaps[len(s.snaps)-1], true
}

// JobTracker returns the runtime the sampler observes.
func (s *Sampler) JobTracker() *mapreduce.JobTracker { return s.jt }

// WriteNodeCSV writes the per-node time series in long form, one row
// per (sample, node).
func (s *Sampler) WriteNodeCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"time_s", "node", "cpu_util_pct", "disk_read_kb_s",
		"map_slot_pct", "map_slots_used", "map_slots",
		"reduce_slot_pct", "reduce_slots_used", "reduce_slots",
	}); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	for _, snap := range s.snaps {
		for _, ns := range snap.Nodes {
			if err := cw.Write([]string{
				f(snap.Time), fmt.Sprint(ns.Node), f(ns.CPUUtilPct), f(ns.DiskReadKBs),
				f(ns.MapSlotPct), fmt.Sprint(ns.MapSlotsUsed), fmt.Sprint(ns.MapSlots),
				f(ns.ReduceSlotPct), fmt.Sprint(ns.ReduceSlotsUsed), fmt.Sprint(ns.ReduceSlots),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteClusterCSV writes the cluster-level time series, one row per
// sample, with queue depths and per-policy splits-granted columns.
func (s *Sampler) WriteClusterCSV(w io.Writer) error {
	// Stable policy column set: union over all snapshots, sorted.
	polSet := map[string]bool{}
	for _, snap := range s.snaps {
		for _, ps := range snap.Policies {
			polSet[ps.Policy] = true
		}
	}
	policies := make([]string, 0, len(polSet))
	for p := range polSet {
		policies = append(policies, p)
	}
	sort.Strings(policies)

	header := []string{
		"time_s", "cpu_util_pct", "disk_read_kb_s", "network_util_pct",
		"map_slot_pct", "reduce_slot_pct", "queued_maps", "queued_reduces", "running_jobs",
	}
	for _, p := range policies {
		header = append(header, "splits_granted_"+p)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return fmt.Sprintf("%.3f", v) }
	for _, snap := range s.snaps {
		row := []string{
			f(snap.Time), f(snap.CPUUtilPct), f(snap.DiskReadKBs), f(snap.NetworkUtilPct),
			f(snap.MapSlotPct), f(snap.ReduceSlotPct),
			fmt.Sprint(snap.QueuedMaps), fmt.Sprint(snap.QueuedReduces), fmt.Sprint(snap.RunningJobs),
		}
		granted := map[string]int{}
		for _, ps := range snap.Policies {
			granted[ps.Policy] = ps.SplitsGranted
		}
		for _, p := range policies {
			row = append(row, fmt.Sprint(granted[p]))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
