package obs

import (
	"fmt"
	"html"
	"net/http"
	"strings"

	"dynamicmr/internal/qstats"
	"dynamicmr/internal/tsdb"
)

// handleLive serves the self-refreshing HTML dashboard: cluster
// utilisation sparklines over the recent snapshot window, the
// per-policy latency/QPS table, the in-flight query table, and the
// most recently finished queries. It prefers the published snapshot
// (lock-free) and falls back to a locked live read.
func (s *Server) handleLive(w http.ResponseWriter, _ *http.Request) {
	var (
		dump   qstats.Dump
		vt     float64
		recent []Snapshot
		engine *EngineStats
		scan   *ScanStats
		trends tsdb.Dump
		alerts tsdb.AlertsDump
	)
	if p := s.publishedState(); p != nil {
		dump, vt, recent, engine = p.dump, p.vt, p.recent, p.engine
		scan, trends, alerts = p.scan, p.trends, p.alerts
	} else {
		s.mu.Lock()
		dump = s.qs.Dump()
		vt = s.samp.JobTracker().Engine().Now()
		engine = engineStats(s.samp.JobTracker().Tracer())
		scan = scanStats(s.samp.JobTracker())
		if s.db.Enabled() {
			trends = s.db.Dump()
			alerts = s.db.AlertsDump()
		}
		fresh := s.samp.SnapshotsSince(s.snapCursor)
		s.snapCursor += len(fresh)
		s.recent = append(s.recent, fresh...)
		if len(s.recent) > liveRecentSnaps {
			s.recent = append(s.recent[:0:0], s.recent[len(s.recent)-liveRecentSnaps:]...)
		}
		recent = append([]Snapshot(nil), s.recent...)
		s.mu.Unlock()
	}

	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html><head><meta charset="utf-8"><meta http-equiv="refresh" content="2">
<title>dynmr live</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; background: #101418; color: #d8dee9; margin: 1.2em; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.4em; color: #88c0d0; }
table { border-collapse: collapse; margin-top: .4em; }
th, td { border: 1px solid #2e3440; padding: .25em .6em; text-align: right; font-size: .85em; }
th { background: #1b2128; color: #8fbcbb; } td:first-child, th:first-child { text-align: left; }
.spark { display: inline-block; margin-right: 2em; }
.spark svg { background: #151a20; border: 1px solid #2e3440; }
.cap { color: #616e7c; font-size: .8em; }
.ok { color: #a3be8c; } .running { color: #ebcb8b; } .failed, .abandoned { color: #bf616a; }
.alerts { background: #3b2226; border: 1px solid #bf616a; padding: .5em .8em; margin: .6em 0; }
.alerts b { color: #bf616a; }
</style></head><body>
`)
	fmt.Fprintf(&b, "<h1>dynmr live &mdash; t=%.1fs virtual, %d started / %d finished / %d failed</h1>\n",
		vt, dump.Started, dump.Finished, dump.Failed)

	if len(alerts.Active) > 0 {
		b.WriteString(`<div class="alerts"><b>⚠ ` + fmt.Sprint(len(alerts.Active)) + ` alert(s) firing</b>: `)
		for i, a := range alerts.Active {
			if i > 0 {
				b.WriteString(" &middot; ")
			}
			fmt.Fprintf(&b, "%s (%.4g vs %.4g", html.EscapeString(a.Rule), a.Value, a.Threshold)
			if a.Severity != "" {
				fmt.Fprintf(&b, ", %s", html.EscapeString(a.Severity))
			}
			fmt.Fprintf(&b, ", since t=%.1fs)", a.SinceS)
		}
		b.WriteString("</div>\n")
	}

	b.WriteString("<div>")
	writeSparkline(&b, "cluster CPU %", recent, func(sn Snapshot) float64 { return sn.CPUUtilPct }, 100)
	writeSparkline(&b, "map slot %", recent, func(sn Snapshot) float64 { return sn.MapSlotPct }, 100)
	writeSparkline(&b, "disk KB/s", recent, func(sn Snapshot) float64 { return sn.DiskReadKBs }, 0)
	b.WriteString("</div>\n")

	writeTrendPanels(&b, trends)

	if scan != nil {
		b.WriteString("<h2>Input path</h2>\n<table><tr><th>mode</th><th>blocks read</th><th>blocks skipped</th><th>skipped %</th></tr>\n")
		pct := 0.0
		if total := scan.BlocksRead + scan.BlocksSkipped; total > 0 {
			pct = float64(scan.BlocksSkipped) / float64(total) * 100
		}
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.1f%%</td></tr>\n",
			html.EscapeString(scan.InputPath), scan.BlocksRead, scan.BlocksSkipped, pct)
		b.WriteString("</table>\n")
	}

	if engine != nil {
		b.WriteString("<h2>Session engine (memory mode)</h2>\n<table><tr><th>resident</th><th>pinned</th><th>delta-shuffle hits</th><th>parts stored</th><th>parts evicted</th><th>memo hits</th></tr>\n")
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td><td>%d</td></tr>\n",
			fmtBytes(engine.ResidentBytes), fmtBytes(engine.PinnedBytes),
			engine.DeltaShuffleHits, engine.ResidentStores, engine.ResidentEvictions, engine.MemoHits)
		b.WriteString("</table>\n")
	}

	b.WriteString("<h2>Per-policy latency (rolling)</h2>\n<table><tr><th>policy</th><th>finished</th><th>failed</th><th>qps</th><th>virt p50</th><th>virt p90</th><th>virt p99</th><th>virt max</th><th>wall p50</th><th>wall p99</th></tr>\n")
	for _, p := range dump.Policies {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%.2f</td><td>%.3f</td><td>%.3f</td><td>%.3f</td><td>%.3f</td><td>%.3f</td><td>%.3f</td></tr>\n",
			html.EscapeString(p.Policy), p.Finished, p.Failed, p.QPS,
			p.VirtualP50S, p.VirtualP90S, p.VirtualP99S, p.VirtualMaxS,
			p.WallP50S, p.WallP99S)
	}
	b.WriteString("</table>\n")

	b.WriteString("<h2>In flight</h2>\n")
	if len(dump.InFlight) == 0 {
		b.WriteString(`<p class="cap">none</p>` + "\n")
	} else {
		b.WriteString("<table><tr><th>id</th><th>job</th><th>policy</th><th>k</th><th>matches</th><th>splits</th><th>records</th><th>age (vt s)</th><th>query</th></tr>\n")
		for _, q := range dump.InFlight {
			fmt.Fprintf(&b, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%d</td><td>%d</td><td>%d/%d</td><td>%d</td><td>%.2f</td><td>%s</td></tr>\n",
				html.EscapeString(q.ID), q.JobID, html.EscapeString(q.Policy), q.K, q.Matches,
				q.SplitsScanned, q.SplitsTotal, q.RecordsRead, vt-q.SubmitVT, html.EscapeString(clip(q.SQL, 60)))
		}
		b.WriteString("</table>\n")
	}

	b.WriteString("<h2>Recently finished</h2>\n<table><tr><th>id</th><th>state</th><th>policy</th><th>latency (vt s)</th><th>rows</th><th>overshoot</th><th>splits</th><th>records</th><th>map s</th><th>shuffle s</th><th>reduce s</th><th>query</th></tr>\n")
	const liveFinishedRows = 25
	start := len(dump.Queries) - liveFinishedRows
	if start < 0 {
		start = 0
	}
	for i := len(dump.Queries) - 1; i >= start; i-- {
		q := dump.Queries[i]
		fmt.Fprintf(&b, `<tr><td><a href="/queries?id=%s" style="color:inherit">%s</a></td><td class=%q>%s</td><td>%s</td><td>%.3f</td><td>%d</td><td>%d</td><td>%d/%d</td><td>%d</td><td>%.2f</td><td>%.2f</td><td>%.2f</td><td>%s</td></tr>`+"\n",
			html.EscapeString(q.ID), html.EscapeString(q.ID), q.State, q.State, html.EscapeString(q.Policy),
			q.LatencyVirtualS, q.Rows, q.OvershootRows, q.SplitsScanned, q.SplitsTotal, q.RecordsRead,
			q.MapSeconds, q.ShuffleSeconds, q.ReduceSeconds, html.EscapeString(clip(q.SQL, 60)))
	}
	b.WriteString("</table>\n")
	if len(alerts.Events) > 0 {
		b.WriteString("<h2>Recent alert events</h2>\n<table><tr><th>t (vt s)</th><th>rule</th><th>state</th><th>value</th><th>threshold</th><th>severity</th></tr>\n")
		const liveAlertRows = 15
		start := len(alerts.Events) - liveAlertRows
		if start < 0 {
			start = 0
		}
		for i := len(alerts.Events) - 1; i >= start; i-- {
			e := alerts.Events[i]
			cls := "ok"
			if e.State == tsdb.StateFiring {
				cls = "failed"
			}
			fmt.Fprintf(&b, "<tr><td>%.1f</td><td>%s</td><td class=%q>%s</td><td>%.4g</td><td>%.4g</td><td>%s</td></tr>\n",
				e.TimeS, html.EscapeString(e.Rule), cls, e.State, e.Value, e.Threshold, html.EscapeString(e.Severity))
		}
		b.WriteString("</table>\n")
	}

	fmt.Fprintf(&b, `<p class="cap">schema %s &middot; auto-refreshes every 2s &middot; <a href="/queries" style="color:#81a1c1">/queries</a> <a href="/metrics" style="color:#81a1c1">/metrics</a> <a href="/status" style="color:#81a1c1">/status</a> <a href="/tsdb" style="color:#81a1c1">/tsdb</a> <a href="/alerts" style="color:#81a1c1">/alerts</a></p>`+"\n", html.EscapeString(dump.Schema))
	b.WriteString("</body></html>\n")

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// liveTrendSeries are the time-series-engine histories /live charts
// when the engine is attached; absent series are skipped silently.
var liveTrendSeries = []struct {
	name  string
	label string
}{
	{"query.in_flight", "queries in flight"},
	{"query.match_rate", "match rate /s"},
	{"query.overshoot_ratio", "overshoot ratio"},
	{"query.split_cost_s", "split cost s"},
	{"cluster.running_jobs", "running jobs"},
	{"scan.blocks_read", "blocks read"},
	{"scan.blocks_skipped", "blocks skipped"},
	{"engine.resident_bytes", "resident bytes"},
	{"engine.pinned_bytes", "pinned bytes"},
}

// writeTrendPanels renders the tsdb-backed sparkline history panels:
// one per known series present in the dump (raw ring, full retained
// window).
func writeTrendPanels(b *strings.Builder, trends tsdb.Dump) {
	byName := make(map[string][]tsdb.Point, len(trends.Series))
	for _, sd := range trends.Series {
		byName[sd.Name] = sd.Points
	}
	wrote := false
	for _, ts := range liveTrendSeries {
		pts := byName[ts.name]
		if len(pts) < 2 {
			continue
		}
		if !wrote {
			b.WriteString("<h2>Trends (time-series engine)</h2>\n<div>")
			wrote = true
		}
		writeTrendSpark(b, ts.label, pts)
	}
	if wrote {
		b.WriteString("</div>\n")
	}
}

// writeTrendSpark renders one labelled sparkline over tsdb raw points,
// auto-scaled to the window's maximum.
func writeTrendSpark(b *strings.Builder, label string, pts []tsdb.Point) {
	const w, h = 220, 48
	fmt.Fprintf(b, `<span class="spark">%s<br><svg width="%d" height="%d">`, html.EscapeString(label), w, h)
	ceil := 0.0
	for _, p := range pts {
		if p.V > ceil {
			ceil = p.V
		}
	}
	if ceil <= 0 {
		ceil = 1
	}
	var poly strings.Builder
	for i, p := range pts {
		x := float64(i) / float64(len(pts)-1) * (w - 2)
		v := p.V / ceil
		if v < 0 {
			v = 0
		}
		y := (h - 2) * (1 - v)
		fmt.Fprintf(&poly, "%.1f,%.1f ", x+1, y+1)
	}
	fmt.Fprintf(b, `<polyline points=%q fill="none" stroke="#b48ead" stroke-width="1.5"/>`, strings.TrimSpace(poly.String()))
	fmt.Fprintf(b, `<text x="4" y="12" fill="#616e7c" font-size="9">%.4g</text>`, ceil)
	b.WriteString(`</svg></span>`)
}

// writeSparkline renders one labelled SVG polyline over the snapshot
// window. maxY fixes the axis ceiling; 0 auto-scales to the data.
func writeSparkline(b *strings.Builder, label string, snaps []Snapshot, val func(Snapshot) float64, maxY float64) {
	const w, h = 220, 48
	fmt.Fprintf(b, `<span class="spark">%s<br><svg width="%d" height="%d">`, html.EscapeString(label), w, h)
	if len(snaps) >= 2 {
		ceil := maxY
		if ceil <= 0 {
			for _, sn := range snaps {
				if v := val(sn); v > ceil {
					ceil = v
				}
			}
			if ceil <= 0 {
				ceil = 1
			}
		}
		var pts strings.Builder
		for i, sn := range snaps {
			x := float64(i) / float64(len(snaps)-1) * (w - 2)
			v := val(sn) / ceil
			if v > 1 {
				v = 1
			}
			y := (h - 2) * (1 - v)
			fmt.Fprintf(&pts, "%.1f,%.1f ", x+1, y+1)
		}
		fmt.Fprintf(b, `<polyline points=%q fill="none" stroke="#88c0d0" stroke-width="1.5"/>`, strings.TrimSpace(pts.String()))
		fmt.Fprintf(b, `<text x="4" y="12" fill="#616e7c" font-size="9">%.0f</text>`, ceil)
	}
	b.WriteString(`</svg></span>`)
}

// fmtBytes renders a byte level compactly (512 B, 37.2 KB, 4.1 MB).
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2f GB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.1f MB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1f KB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0f B", v)
	}
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
