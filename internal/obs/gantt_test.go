package obs

import (
	"testing"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/trace"
)

func TestBuildGanttLaneAssignment(t *testing.T) {
	spans := []trace.Span{
		{Name: trace.SpanMapAttempt, Node: 0, Start: 0, End: 10, Job: 0, Task: 0},
		{Name: trace.SpanMapAttempt, Node: 0, Start: 2, End: 6, Job: 0, Task: 1},
		{Name: trace.SpanMapAttempt, Node: 0, Start: 6, End: 12, Job: 0, Task: 2}, // reuses lane 1
		{Name: trace.SpanMapAttempt, Node: 1, Start: 0, End: 4, Job: 0, Task: 3},
		{Name: trace.SpanReduceAttempt, Node: 0, Start: 12, End: 20, Job: 0, Task: 0},
		{Name: trace.SpanQueueWait, Node: 0, Start: 0, End: 1},   // not an attempt: ignored
		{Name: trace.SpanMapAttempt, Node: -1, Start: 0, End: 1}, // unplaced: ignored
	}
	g := BuildGantt(spans)
	if len(g.Bars) != 5 {
		t.Fatalf("bars = %d, want 5", len(g.Bars))
	}
	// Node 0 maps need exactly 2 lanes (task 2 reuses task 1's lane).
	if g.MapLanes[0] != 2 {
		t.Fatalf("node 0 map lanes = %d, want 2", g.MapLanes[0])
	}
	// Reduce lane sits after the map lanes.
	for _, bar := range g.Bars {
		if bar.Kind == "reduce" && bar.Node == 0 && bar.Lane != 2 {
			t.Fatalf("reduce lane = %d, want 2", bar.Lane)
		}
	}
	if g.Lanes[0] != 3 || g.Lanes[1] != 1 {
		t.Fatalf("lane totals = %v", g.Lanes)
	}

	// Property: within one (node, lane), bars never overlap.
	type key struct{ node, lane int }
	lastEnd := map[key]float64{}
	for _, bar := range g.Bars {
		k := key{bar.Node, bar.Lane}
		if bar.Start < lastEnd[k]-1e-9 {
			t.Fatalf("overlap on node %d lane %d at %v", bar.Node, bar.Lane, bar.Start)
		}
		lastEnd[k] = bar.End
	}
}

// TestGanttLanesBoundedBySlots: on a real run, lanes per node never
// exceed the configured slot counts (an attempt holds a slot for
// exactly its span).
func TestGanttLanesBoundedBySlots(t *testing.T) {
	eng, cl, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 60, 300)
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)

	g := BuildGantt(jt.Tracer().Spans())
	if len(g.Bars) == 0 {
		t.Fatal("no bars from a traced run")
	}
	maxLanes := cl.Cfg.MapSlotsPerNode + cl.Cfg.ReduceSlotsPerNode
	for n, lanes := range g.Lanes {
		if lanes > maxLanes {
			t.Fatalf("node %d uses %d lanes, slot bound is %d", n, lanes, maxLanes)
		}
	}
}
