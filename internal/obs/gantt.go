package obs

import (
	"sort"

	"dynamicmr/internal/trace"
)

// GanttBar is one attempt's occupancy of a slot lane on a node.
type GanttBar struct {
	// Node is the node the attempt ran on.
	Node int
	// Lane is the slot lane within the node's kind group (greedy
	// assignment: the lowest lane free at the bar's start).
	Lane int
	// Kind is "map" or "reduce".
	Kind string
	// Start and End bound the attempt in virtual seconds.
	Start, End float64
	// Job, Task, Attempt identify the attempt.
	Job, Task, Attempt int
	// Outcome is the attempt outcome (trace.Outcome* constant).
	Outcome string
	// Speculative marks backup attempts.
	Speculative bool
}

// Gantt is the slot-occupancy chart data: bars in (node, lane, start)
// order plus the lane count per node so renderers can allocate rows.
type Gantt struct {
	Bars []GanttBar
	// Lanes maps node id to the number of lanes used on that node
	// (map and reduce lanes combined; reduce lanes follow map lanes).
	Lanes map[int]int
	// MapLanes maps node id to the number of map lanes, which is also
	// the lane offset of the node's first reduce lane.
	MapLanes map[int]int
}

// BuildGantt joins the trace's map-attempt and reduce-attempt spans
// with their node placement into slot lanes: within one node, map
// attempts greedily pack the lowest free map lane and reduce attempts
// the lowest free reduce lane (reduce lanes numbered after the node's
// map lanes). Because an attempt occupies a slot for exactly its span,
// the number of lanes never exceeds the node's configured slot count.
func BuildGantt(spans []trace.Span) Gantt {
	var bars []GanttBar
	for _, s := range spans {
		var kind string
		switch s.Name {
		case trace.SpanMapAttempt:
			kind = "map"
		case trace.SpanReduceAttempt:
			kind = "reduce"
		default:
			continue
		}
		if s.Node < 0 {
			continue
		}
		bars = append(bars, GanttBar{
			Node: s.Node, Kind: kind, Start: s.Start, End: s.End,
			Job: s.Job, Task: s.Task, Attempt: s.Attempt,
			Outcome: s.Outcome, Speculative: s.Speculative,
		})
	}
	sort.SliceStable(bars, func(i, j int) bool {
		if bars[i].Node != bars[j].Node {
			return bars[i].Node < bars[j].Node
		}
		if bars[i].Start != bars[j].Start {
			return bars[i].Start < bars[j].Start
		}
		return bars[i].End < bars[j].End
	})

	// Greedy lane assignment per (node, kind): track each lane's last
	// end time; a bar takes the lowest lane that is free at its start.
	type key struct {
		node int
		kind string
	}
	laneEnds := map[key][]float64{}
	const eps = 1e-9
	for i := range bars {
		k := key{bars[i].Node, bars[i].Kind}
		ends := laneEnds[k]
		lane := -1
		for l, end := range ends {
			if end <= bars[i].Start+eps {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(ends)
			ends = append(ends, 0)
		}
		ends[lane] = bars[i].End
		laneEnds[k] = ends
		bars[i].Lane = lane
	}

	g := Gantt{Bars: bars, Lanes: map[int]int{}, MapLanes: map[int]int{}}
	for k, ends := range laneEnds {
		if k.kind == "map" {
			g.MapLanes[k.node] = len(ends)
		}
	}
	// Offset reduce lanes past the node's map lanes and total up.
	for i := range g.Bars {
		if g.Bars[i].Kind == "reduce" {
			g.Bars[i].Lane += g.MapLanes[g.Bars[i].Node]
		}
	}
	for k, ends := range laneEnds {
		n := len(ends)
		if k.kind == "reduce" {
			n += g.MapLanes[k.node]
		}
		if n > g.Lanes[k.node] {
			g.Lanes[k.node] = n
		}
	}
	return g
}
