package obs

import (
	"encoding/json"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"

	"dynamicmr/internal/mapreduce"
)

// Exposition-format line shapes: comments (# HELP / # TYPE) and samples
// name{labels} value.
var (
	helpRe   = regexp.MustCompile(`^# HELP [a-zA-Z_:][a-zA-Z0-9_:]* .+$`)
	typeRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram|untyped)$`)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? -?[0-9.e+-]+$`)
)

func TestMetricsEndpoint(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 20, 300)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	srv := NewServer(s)

	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	eng.RunUntil(eng.Now() + 2)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := rec.Body.String()
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) < 20 {
		t.Fatalf("exposition suspiciously small (%d lines):\n%s", len(lines), body)
	}
	for _, line := range lines {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if !helpRe.MatchString(line) {
				t.Errorf("bad HELP line %q", line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			if !typeRe.MatchString(line) {
				t.Errorf("bad TYPE line %q", line)
			}
		default:
			if !sampleRe.MatchString(line) {
				t.Errorf("bad sample line %q", line)
			}
		}
	}
	for _, want := range []string{
		"dynmr_map_attempts_total ",
		"dynmr_virtual_time_seconds ",
		`dynmr_node_cpu_util_pct{node="0"} `,
		`dynmr_node_map_slots_used{node="9"} `,
		"dynmr_cluster_cpu_util_pct ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Families must be sorted by name: collect TYPE line names.
	var fams []string
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			fams = append(fams, strings.Fields(line)[2])
		}
	}
	for i := 1; i < len(fams); i++ {
		if fams[i] < fams[i-1] {
			t.Fatalf("families out of order: %q after %q", fams[i], fams[i-1])
		}
	}
}

func TestStatusEndpoint(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 10, 200)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	srv := NewServer(s)
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)

	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/status", nil))
	if rec.Code != 200 {
		t.Fatalf("/status status %d", rec.Code)
	}
	var payload StatusPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &payload); err != nil {
		t.Fatalf("bad /status JSON: %v", err)
	}
	if payload.VirtualTimeS <= 0 || payload.MapSlots != 40 || payload.Samples == 0 {
		t.Fatalf("implausible status: %+v", payload)
	}
	if payload.Latest == nil || len(payload.Latest.Nodes) != 10 {
		t.Fatal("status latest snapshot missing")
	}

	rec = httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path status %d", rec.Code)
	}
}
