package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
)

// Server is the live operational surface: a Prometheus text-exposition
// /metrics endpoint, a JSON /status, the per-query /queries listing
// (JSON, schema dynamicmr.qstats/1), and the self-refreshing /live
// HTML dashboard.
//
// The simulated runtime is single-threaded, so the driver loop and
// HTTP scrapes coordinate through the server's mutex: the driver holds
// Lock while stepping the engine; handlers hold it while reading live
// state. Because a single query can keep the engine busy for a long
// wall-clock stretch, a paced driver should additionally call Publish
// after each advance: Publish renders every endpoint's payload into an
// immutable snapshot that handlers then serve without touching the
// simulation lock at all, so scrapes never block behind the pacer or a
// long engine burst. Handlers fall back to the locked live read until
// the first Publish.
type Server struct {
	mu   sync.Mutex
	samp *Sampler
	qs   *qstats.Registry
	db   *tsdb.DB

	// Rolling window of recent snapshots for the /live sparklines,
	// maintained incrementally via SnapshotsSince. Guarded by mu.
	snapCursor int
	recent     []Snapshot

	pubMu sync.RWMutex
	pub   *published
}

// liveRecentSnaps bounds the /live utilization sparkline window.
const liveRecentSnaps = 240

// published is one immutable, pre-rendered view of every endpoint.
type published struct {
	metrics []byte
	status  []byte
	dump    qstats.Dump
	vt      float64
	recent  []Snapshot
	engine  *EngineStats
	scan    *ScanStats
	// tsdbJSON / alertsJSON are the pre-rendered /tsdb and /alerts
	// payloads; nil when no time-series engine is attached. trends and
	// alerts carry the structured views the /live panels render from.
	tsdbJSON   []byte
	alertsJSON []byte
	trends     tsdb.Dump
	alerts     tsdb.AlertsDump
}

// NewServer wraps a sampler for serving.
func NewServer(samp *Sampler) *Server { return &Server{samp: samp} }

// SetQueryStats attaches the per-query registry: /queries and /live
// gain query detail, and /metrics gains the per-policy latency
// histogram and QPS families.
func (s *Server) SetQueryStats(r *qstats.Registry) { s.qs = r }

// SetTSDB attaches the time-series engine: /tsdb and /alerts come
// alive, and /live gains trend sparklines and the active-alerts banner.
func (s *Server) SetTSDB(db *tsdb.DB) { s.db = db }

// Lock takes the simulation lock; the driver holds it while advancing
// the engine so scrapes never observe a half-stepped cluster.
func (s *Server) Lock() { s.mu.Lock() }

// Unlock releases the simulation lock.
func (s *Server) Unlock() { s.mu.Unlock() }

// Publish renders every endpoint's payload under the simulation lock
// and installs it as the served snapshot. Drivers call it after each
// engine advance (with the lock released); subsequent scrapes are
// lock-free and mutually consistent.
func (s *Server) Publish() {
	s.mu.Lock()
	var metrics bytes.Buffer
	err := trace.WritePrometheus(&metrics, s.promFamilies())
	status := s.statusPayload()
	dump := s.qs.Dump()
	vt := s.samp.JobTracker().Engine().Now()
	fresh := s.samp.SnapshotsSince(s.snapCursor)
	s.snapCursor += len(fresh)
	s.recent = append(s.recent, fresh...)
	if len(s.recent) > liveRecentSnaps {
		s.recent = append(s.recent[:0:0], s.recent[len(s.recent)-liveRecentSnaps:]...)
	}
	recent := append([]Snapshot(nil), s.recent...)
	var trends tsdb.Dump
	var alerts tsdb.AlertsDump
	if s.db.Enabled() {
		trends = s.db.Dump()
		alerts = s.db.AlertsDump()
	}
	s.mu.Unlock()
	if err != nil {
		return
	}
	statusJSON, err := json.MarshalIndent(status, "", "  ")
	if err != nil {
		return
	}
	p := &published{metrics: metrics.Bytes(), status: statusJSON, dump: dump, vt: vt, recent: recent,
		engine: status.Engine, scan: status.Scan}
	if s.db.Enabled() {
		p.trends, p.alerts = trends, alerts
		p.tsdbJSON, _ = json.MarshalIndent(trends, "", "  ")
		p.alertsJSON, _ = json.MarshalIndent(alerts, "", "  ")
	}
	s.pubMu.Lock()
	s.pub = p
	s.pubMu.Unlock()
}

func (s *Server) publishedState() *published {
	s.pubMu.RLock()
	defer s.pubMu.RUnlock()
	return s.pub
}

// Handler returns the HTTP mux serving the endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/queries", s.handleQueries)
	mux.HandleFunc("/tsdb", s.handleTSDB)
	mux.HandleFunc("/alerts", s.handleAlerts)
	mux.HandleFunc("/live", s.handleLive)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "dynmr observability endpoints:\n  /metrics  Prometheus text exposition\n  /status   JSON run status\n  /queries  JSON per-query stats (?id=q-000001 for detail)\n  /tsdb     JSON time-series history (schema dynamicmr.tsdb/1)\n  /alerts   JSON alert rules, active set and event log (schema dynamicmr.alerts/1)\n  /live     self-refreshing HTML dashboard")
	})
	return mux
}

// promFamilies assembles the full exposition set: registry families
// (counters, gauges, histogram scalars) plus live per-node, queue, and
// per-policy families derived from the latest snapshot, plus — when a
// query registry is attached — the per-policy latency histograms and
// query counters. Caller holds the lock.
func (s *Server) promFamilies() []trace.PromFamily {
	jt := s.samp.JobTracker()
	fams := jt.Tracer().PromFamilies("dynmr.")

	st := jt.ClusterStatus()
	gauge := func(name, help string, v float64) {
		fams = append(fams, trace.PromFamily{Name: name, Help: help, Type: trace.PromGauge,
			Samples: []trace.PromSample{{Value: v}}})
	}
	gauge("dynmr.virtual_time_seconds", "Current virtual-clock time.", jt.Engine().Now())
	gauge("dynmr.map_slots", "Configured cluster map slots.", float64(st.TotalMapSlots))
	gauge("dynmr.map_slots_occupied", "Occupied map slots.", float64(st.OccupiedMapSlots))
	gauge("dynmr.reduce_slots", "Configured cluster reduce slots.", float64(st.TotalReduceSlots))
	gauge("dynmr.reduce_slots_occupied", "Occupied reduce slots.", float64(st.OccupiedReduces))
	gauge("dynmr.queued_map_tasks", "Scheduled map tasks waiting for a slot.", float64(st.QueuedMapTasks))
	gauge("dynmr.queued_reduce_tasks", "Reduce partitions waiting for a slot.", float64(st.QueuedReduceTasks))
	gauge("dynmr.running_jobs", "Jobs submitted and not yet finished.", float64(st.RunningJobs))

	fams = append(fams, s.qs.PromFamilies("dynmr.")...)

	snap, ok := s.samp.Latest()
	if !ok {
		return fams
	}
	node := func(name, help string, val func(NodeSample) float64) {
		f := trace.PromFamily{Name: name, Help: help, Type: trace.PromGauge}
		for _, ns := range snap.Nodes {
			f.Samples = append(f.Samples, trace.PromSample{
				Labels: []trace.PromLabel{{Name: "node", Value: fmt.Sprint(ns.Node)}},
				Value:  val(ns),
			})
		}
		fams = append(fams, f)
	}
	node("dynmr.node.cpu_util_pct", "Per-node CPU utilisation over the last sample interval.",
		func(ns NodeSample) float64 { return ns.CPUUtilPct })
	node("dynmr.node.disk_read_kb_s", "Per-node mean per-disk transfer rate over the last sample interval.",
		func(ns NodeSample) float64 { return ns.DiskReadKBs })
	node("dynmr.node.map_slot_pct", "Per-node map-slot occupancy over the last sample interval.",
		func(ns NodeSample) float64 { return ns.MapSlotPct })
	node("dynmr.node.map_slots_used", "Per-node occupied map slots at the last sample.",
		func(ns NodeSample) float64 { return float64(ns.MapSlotsUsed) })
	node("dynmr.node.reduce_slots_used", "Per-node occupied reduce slots at the last sample.",
		func(ns NodeSample) float64 { return float64(ns.ReduceSlotsUsed) })

	if len(snap.Policies) > 0 {
		granted := trace.PromFamily{Name: "dynmr.policy.splits_granted",
			Help: "Cumulative input partitions granted by the Input Provider.", Type: trace.PromCounter}
		evals := trace.PromFamily{Name: "dynmr.policy.evaluations",
			Help: "Input Provider evaluations recorded.", Type: trace.PromCounter}
		headroom := trace.PromFamily{Name: "dynmr.policy.headroom_pct",
			Help: "Last progress percentage minus the policy's work threshold.", Type: trace.PromGauge}
		for _, ps := range snap.Policies {
			labels := []trace.PromLabel{{Name: "policy", Value: ps.Policy}}
			granted.Samples = append(granted.Samples, trace.PromSample{Labels: labels, Value: float64(ps.SplitsGranted)})
			evals.Samples = append(evals.Samples, trace.PromSample{Labels: labels, Value: float64(ps.Evaluations)})
			headroom.Samples = append(headroom.Samples, trace.PromSample{Labels: labels, Value: ps.HeadroomPct})
		}
		fams = append(fams, granted, evals, headroom)
	}
	return fams
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if p := s.publishedState(); p != nil {
		_, _ = w.Write(p.metrics)
		return
	}
	s.mu.Lock()
	fams := s.promFamilies()
	s.mu.Unlock()
	if err := trace.WritePrometheus(w, fams); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// StatusPayload is the /status JSON document.
type StatusPayload struct {
	VirtualTimeS    float64      `json:"virtual_time_s"`
	ProcessedEvents int64        `json:"processed_events"`
	RunningJobs     int          `json:"running_jobs"`
	MapSlots        int          `json:"map_slots"`
	MapSlotsUsed    int          `json:"map_slots_used"`
	ReduceSlots     int          `json:"reduce_slots"`
	ReduceSlotsUsed int          `json:"reduce_slots_used"`
	QueuedMaps      int          `json:"queued_map_tasks"`
	QueuedReduces   int          `json:"queued_reduce_tasks"`
	Samples         int          `json:"samples"`
	Engine          *EngineStats `json:"engine,omitempty"`
	Scan            *ScanStats   `json:"scan,omitempty"`
	Latest          *Snapshot    `json:"latest,omitempty"`
}

// ScanStats surfaces the input-path mode and its block-level effect:
// blocks actually read versus blocks the skip/index path proved it
// could avoid. Present only when the run uses a reduced input path or
// the scan counters are non-zero — a plain full-scan run reports no
// scan section at all.
type ScanStats struct {
	InputPath     string `json:"input_path"`
	BlocksRead    int64  `json:"blocks_read"`
	BlocksSkipped int64  `json:"blocks_skipped"`
}

// scanStats reads the input-path mode and scan counters off the
// tracker, returning nil for an unremarkable full-scan run.
func scanStats(jt *mapreduce.JobTracker) *ScanStats {
	tr := jt.Tracer()
	read := tr.Counter(trace.CounterScanBlocksRead)
	skipped := tr.Counter(trace.CounterScanBlocksSkipped)
	mode := jt.InputPath()
	if mode == "" {
		mode = mapreduce.InputPathFull
	}
	if mode == mapreduce.InputPathFull && read == 0 && skipped == 0 {
		return nil
	}
	return &ScanStats{InputPath: mode, BlocksRead: read, BlocksSkipped: skipped}
}

// EngineStats surfaces the in-memory session engine's residency levels
// (memory engine mode): bytes of resident shuffle partitions, modeled
// bytes of pinned DFS blocks, and the cumulative reuse counters.
// Present only when the runtime has set the residency gauges — a
// baseline run reports no engine section at all.
type EngineStats struct {
	ResidentBytes     float64 `json:"resident_bytes"`
	PinnedBytes       float64 `json:"pinned_bytes"`
	DeltaShuffleHits  int64   `json:"delta_shuffle_hits"`
	ResidentStores    int64   `json:"resident_stores"`
	ResidentEvictions int64   `json:"resident_evictions"`
	MemoHits          int64   `json:"memo_hits"`
}

// engineStats reads the session-engine gauges off a tracer, returning
// nil when the residency gauges were never set (baseline mode or
// tracing off).
func engineStats(tr *trace.Tracer) *EngineStats {
	resident, okR := tr.Gauge(trace.GaugeResidentBytes)
	pinned, okP := tr.Gauge(trace.GaugePinnedBytes)
	if !okR && !okP {
		return nil
	}
	return &EngineStats{
		ResidentBytes:     resident.Last,
		PinnedBytes:       pinned.Last,
		DeltaShuffleHits:  tr.Counter(trace.CounterDeltaShuffleHits),
		ResidentStores:    tr.Counter(trace.CounterResidentStores),
		ResidentEvictions: tr.Counter(trace.CounterResidentEvicted),
		MemoHits:          tr.Counter(trace.CounterMemoHits),
	}
}

// statusPayload builds the /status document. Caller holds the lock.
func (s *Server) statusPayload() StatusPayload {
	jt := s.samp.JobTracker()
	st := jt.ClusterStatus()
	payload := StatusPayload{
		VirtualTimeS:    jt.Engine().Now(),
		ProcessedEvents: int64(jt.Engine().Processed()),
		RunningJobs:     st.RunningJobs,
		MapSlots:        st.TotalMapSlots,
		MapSlotsUsed:    st.OccupiedMapSlots,
		ReduceSlots:     st.TotalReduceSlots,
		ReduceSlotsUsed: st.OccupiedReduces,
		QueuedMaps:      st.QueuedMapTasks,
		QueuedReduces:   st.QueuedReduceTasks,
		Samples:         s.samp.SnapshotCount(),
		Engine:          engineStats(jt.Tracer()),
		Scan:            scanStats(jt),
	}
	if snap, ok := s.samp.Latest(); ok {
		payload.Latest = &snap
	}
	return payload
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if p := s.publishedState(); p != nil {
		_, _ = w.Write(p.status)
		return
	}
	s.mu.Lock()
	payload := s.statusPayload()
	s.mu.Unlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}

// currentDump snapshots the query registry: the published view when
// one exists, otherwise a live read under the simulation lock.
func (s *Server) currentDump() qstats.Dump {
	if p := s.publishedState(); p != nil {
		return p.dump
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.qs.Dump()
}

// handleQueries serves the qstats dump (schema dynamicmr.qstats/1).
// ?id=q-000042 returns that single record — finished or in-flight —
// with its full diagnosis breakdown.
func (s *Server) handleQueries(w http.ResponseWriter, req *http.Request) {
	dump := s.currentDump()
	if id := req.URL.Query().Get("id"); id != "" {
		for i := len(dump.Queries) - 1; i >= 0; i-- {
			if dump.Queries[i].ID == id {
				writeJSON(w, dump.Queries[i])
				return
			}
		}
		for i := range dump.InFlight {
			if dump.InFlight[i].ID == id {
				writeJSON(w, dump.InFlight[i])
				return
			}
		}
		http.Error(w, fmt.Sprintf("no query %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, dump)
}

// handleTSDB serves the time-series engine's full dump (schema
// dynamicmr.tsdb/1): every series' raw ring plus its rollup levels.
// 404 when no engine is attached.
func (s *Server) handleTSDB(w http.ResponseWriter, _ *http.Request) {
	if !s.db.Enabled() {
		http.Error(w, "no time-series engine attached (run with tsdb enabled)", http.StatusNotFound)
		return
	}
	if p := s.publishedState(); p != nil && p.tsdbJSON != nil {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(p.tsdbJSON)
		return
	}
	s.mu.Lock()
	dump := s.db.Dump()
	s.mu.Unlock()
	writeJSON(w, dump)
}

// handleAlerts serves the alert layer's dump (schema dynamicmr.alerts/1):
// configured rules, currently firing set, transition log. 404 when no
// engine is attached.
func (s *Server) handleAlerts(w http.ResponseWriter, _ *http.Request) {
	if !s.db.Enabled() {
		http.Error(w, "no time-series engine attached (run with tsdb enabled)", http.StatusNotFound)
		return
	}
	if p := s.publishedState(); p != nil && p.alertsJSON != nil {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(p.alertsJSON)
		return
	}
	s.mu.Lock()
	dump := s.db.AlertsDump()
	s.mu.Unlock()
	writeJSON(w, dump)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
