package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"dynamicmr/internal/trace"
)

// Server is the live operational surface: a Prometheus text-exposition
// /metrics endpoint and a JSON /status, both reading the sampler's
// recorded state plus instantaneous cluster counters.
//
// The simulated runtime is single-threaded, so the driver loop and HTTP
// scrapes coordinate through the server's mutex: the driver holds Lock
// while stepping the engine, handlers hold it while reading. A scrape
// therefore observes a consistent snapshot between simulation bursts
// (the real-time mapping of the virtual clock is whatever the driver's
// pacing makes it).
type Server struct {
	mu   sync.Mutex
	samp *Sampler
}

// NewServer wraps a sampler for serving.
func NewServer(samp *Sampler) *Server { return &Server{samp: samp} }

// Lock takes the simulation lock; the driver holds it while advancing
// the engine so scrapes never observe a half-stepped cluster.
func (s *Server) Lock() { s.mu.Lock() }

// Unlock releases the simulation lock.
func (s *Server) Unlock() { s.mu.Unlock() }

// Handler returns the HTTP mux serving /metrics and /status.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "dynmr observability endpoints:\n  /metrics  Prometheus text exposition\n  /status   JSON run status")
	})
	return mux
}

// promFamilies assembles the full exposition set: registry families
// (counters, gauges, histogram scalars) plus live per-node, queue, and
// per-policy families derived from the latest snapshot. Caller holds
// the lock.
func (s *Server) promFamilies() []trace.PromFamily {
	jt := s.samp.JobTracker()
	fams := jt.Tracer().PromFamilies("dynmr.")

	st := jt.ClusterStatus()
	gauge := func(name, help string, v float64) {
		fams = append(fams, trace.PromFamily{Name: name, Help: help, Type: trace.PromGauge,
			Samples: []trace.PromSample{{Value: v}}})
	}
	gauge("dynmr.virtual_time_seconds", "Current virtual-clock time.", jt.Engine().Now())
	gauge("dynmr.map_slots", "Configured cluster map slots.", float64(st.TotalMapSlots))
	gauge("dynmr.map_slots_occupied", "Occupied map slots.", float64(st.OccupiedMapSlots))
	gauge("dynmr.reduce_slots", "Configured cluster reduce slots.", float64(st.TotalReduceSlots))
	gauge("dynmr.reduce_slots_occupied", "Occupied reduce slots.", float64(st.OccupiedReduces))
	gauge("dynmr.queued_map_tasks", "Scheduled map tasks waiting for a slot.", float64(st.QueuedMapTasks))
	gauge("dynmr.queued_reduce_tasks", "Reduce partitions waiting for a slot.", float64(st.QueuedReduceTasks))
	gauge("dynmr.running_jobs", "Jobs submitted and not yet finished.", float64(st.RunningJobs))

	snap, ok := s.samp.Latest()
	if !ok {
		return fams
	}
	node := func(name, help string, val func(NodeSample) float64) {
		f := trace.PromFamily{Name: name, Help: help, Type: trace.PromGauge}
		for _, ns := range snap.Nodes {
			f.Samples = append(f.Samples, trace.PromSample{
				Labels: []trace.PromLabel{{Name: "node", Value: fmt.Sprint(ns.Node)}},
				Value:  val(ns),
			})
		}
		fams = append(fams, f)
	}
	node("dynmr.node.cpu_util_pct", "Per-node CPU utilisation over the last sample interval.",
		func(ns NodeSample) float64 { return ns.CPUUtilPct })
	node("dynmr.node.disk_read_kb_s", "Per-node mean per-disk transfer rate over the last sample interval.",
		func(ns NodeSample) float64 { return ns.DiskReadKBs })
	node("dynmr.node.map_slot_pct", "Per-node map-slot occupancy over the last sample interval.",
		func(ns NodeSample) float64 { return ns.MapSlotPct })
	node("dynmr.node.map_slots_used", "Per-node occupied map slots at the last sample.",
		func(ns NodeSample) float64 { return float64(ns.MapSlotsUsed) })
	node("dynmr.node.reduce_slots_used", "Per-node occupied reduce slots at the last sample.",
		func(ns NodeSample) float64 { return float64(ns.ReduceSlotsUsed) })

	if len(snap.Policies) > 0 {
		granted := trace.PromFamily{Name: "dynmr.policy.splits_granted",
			Help: "Cumulative input partitions granted by the Input Provider.", Type: trace.PromCounter}
		evals := trace.PromFamily{Name: "dynmr.policy.evaluations",
			Help: "Input Provider evaluations recorded.", Type: trace.PromCounter}
		headroom := trace.PromFamily{Name: "dynmr.policy.headroom_pct",
			Help: "Last progress percentage minus the policy's work threshold.", Type: trace.PromGauge}
		for _, ps := range snap.Policies {
			labels := []trace.PromLabel{{Name: "policy", Value: ps.Policy}}
			granted.Samples = append(granted.Samples, trace.PromSample{Labels: labels, Value: float64(ps.SplitsGranted)})
			evals.Samples = append(evals.Samples, trace.PromSample{Labels: labels, Value: float64(ps.Evaluations)})
			headroom.Samples = append(headroom.Samples, trace.PromSample{Labels: labels, Value: ps.HeadroomPct})
		}
		fams = append(fams, granted, evals, headroom)
	}
	return fams
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	fams := s.promFamilies()
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := trace.WritePrometheus(w, fams); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// StatusPayload is the /status JSON document.
type StatusPayload struct {
	VirtualTimeS    float64   `json:"virtual_time_s"`
	ProcessedEvents int64     `json:"processed_events"`
	RunningJobs     int       `json:"running_jobs"`
	MapSlots        int       `json:"map_slots"`
	MapSlotsUsed    int       `json:"map_slots_used"`
	ReduceSlots     int       `json:"reduce_slots"`
	ReduceSlotsUsed int       `json:"reduce_slots_used"`
	QueuedMaps      int       `json:"queued_map_tasks"`
	QueuedReduces   int       `json:"queued_reduce_tasks"`
	Samples         int       `json:"samples"`
	Latest          *Snapshot `json:"latest,omitempty"`
}

func (s *Server) handleStatus(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jt := s.samp.JobTracker()
	st := jt.ClusterStatus()
	payload := StatusPayload{
		VirtualTimeS:    jt.Engine().Now(),
		ProcessedEvents: int64(jt.Engine().Processed()),
		RunningJobs:     st.RunningJobs,
		MapSlots:        st.TotalMapSlots,
		MapSlotsUsed:    st.OccupiedMapSlots,
		ReduceSlots:     st.TotalReduceSlots,
		ReduceSlotsUsed: st.OccupiedReduces,
		QueuedMaps:      st.QueuedMapTasks,
		QueuedReduces:   st.QueuedReduceTasks,
		Samples:         len(s.samp.snaps),
	}
	if snap, ok := s.samp.Latest(); ok {
		payload.Latest = &snap
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(payload)
}
