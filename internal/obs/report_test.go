package obs

import (
	"strings"
	"testing"

	"dynamicmr/internal/mapreduce"
)

func TestReportHTML(t *testing.T) {
	eng, _, fs, jt := rig(t, true)
	f := mkFile(t, fs, "in", 30, 300)
	s := NewSampler(jt, Config{IntervalS: 1})
	s.Start()
	job := jt.Submit(mapreduce.JobSpec{NewMapper: nopMapper}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	eng.RunUntil(eng.Now() + 2)

	rep := NewReport("test <run> & co", s, [][2]string{{"policy", "LA"}, {"scale", "1x"}})
	var b strings.Builder
	if err := rep.WriteHTML(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"<!DOCTYPE html>",
		"</html>",
		"<svg",
		"test &lt;run&gt; &amp; co", // title escaped
		"Cluster utilization",
		"Per-node utilization",
		"Slot occupancy",
		"Data table",
		"prefers-color-scheme: dark",
		"--series-1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Error("report contains non-finite values")
	}
	// One small-multiple figure per node.
	if got := strings.Count(out, "<figcaption>"); got != 10 {
		t.Errorf("node figures = %d, want 10", got)
	}
	// Map attempts appear as Gantt bars with hover titles.
	if !strings.Contains(out, "map job 0 task 0 attempt 1") {
		t.Error("Gantt bar titles missing")
	}
}

func TestThinSnaps(t *testing.T) {
	snaps := make([]Snapshot, 2000)
	for i := range snaps {
		snaps[i].Time = float64(i)
	}
	out := thinSnaps(snaps)
	if len(out) > maxReportSamples+1 {
		t.Fatalf("thinned to %d, cap is %d", len(out), maxReportSamples+1)
	}
	if out[0].Time != 0 || out[len(out)-1].Time != 1999 {
		t.Fatalf("endpoints lost: first %v last %v", out[0].Time, out[len(out)-1].Time)
	}
	if got := thinSnaps(snaps[:10]); len(got) != 10 {
		t.Fatalf("short series thinned: %d", len(got))
	}
}

func TestReportHTMLEmptyRun(t *testing.T) {
	_, _, _, jt := rig(t, true)
	s := NewSampler(jt, Config{})
	rep := NewReport("empty", s, nil)
	var b strings.Builder
	if err := rep.WriteHTML(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "</html>") {
		t.Fatal("empty-run report truncated")
	}
}
