// Package runarchive is the cross-run observability bundle: a
// versioned, self-contained file capturing everything one run's
// observability stack produced — trace spans, the Input Provider
// decision audit log, the utilization timeline, the counter/gauge
// registry, per-job diagnoses and the per-query registry dump — plus
// the run configuration that produced it (policy, engine mode, scan
// workers, seed, git revision). Two archives are the inputs to
// diag.Compare / `dynmr diff`, which attributes a regression or a win
// between runs instead of eyeballing two `dynmr explain` outputs.
//
// The on-disk format is gzip-compressed NDJSON: the first record is
// the manifest (schema SchemaVersion), every following record is a
// typed line {"t": <kind>, "d": <payload>}. All payloads use stable
// snake_case field names independent of the in-memory trace structs,
// so the file format is an external contract. Dump → Load → Dump is
// byte-identical (pinned by tests): map-valued payloads are emitted
// with sorted keys by encoding/json and floats round-trip through the
// shortest-representation encoder.
package runarchive

import (
	"bufio"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime/debug"
	"strconv"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
)

// SchemaVersion identifies the archive layout; consumers (dynmr diff,
// CI validation) key on it.
const SchemaVersion = "dynamicmr.archive/1"

// Record kinds of the NDJSON stream.
const (
	recManifest  = "manifest"
	recSpan      = "span"
	recDecision  = "decision"
	recSample    = "sample"
	recCounters  = "counters"
	recGauges    = "gauges"
	recDiagnosis = "diag"
	recQueries   = "qstats"
	recSeries    = "tsdb"
	recAlerts    = "alerts"
)

// RunConfig is the run's provenance: enough to re-run it and to tell
// whether two archives are comparable twins.
type RunConfig struct {
	// Policy is the growth policy the run's queries used ("" when the
	// run mixed policies; see Params).
	Policy string `json:"policy,omitempty"`
	// EngineMode is "baseline" or "memory".
	EngineMode string `json:"engine_mode,omitempty"`
	// InputPath is the map-task read path ("skip" or "index"; empty
	// means the full-scan default, keeping full-mode archives
	// byte-identical to those written before the field existed).
	InputPath string `json:"input_path,omitempty"`
	// ScanWorkers is the scan-executor pool size (0 = inline scans).
	ScanWorkers int `json:"scan_workers"`
	// Seed is the dataset seed.
	Seed int64 `json:"seed"`
	// GitRev is the VCS revision of the binary that produced the run
	// (see GitRev; empty when the build carries no VCS stamp).
	GitRev string `json:"git_rev,omitempty"`
	// Params carries free-form run parameters (scale, skew, k, ...).
	Params map[string]string `json:"params,omitempty"`
}

// Counts records how many payload lines of each kind follow the
// manifest; Load verifies the stream against it.
type Counts struct {
	Spans     int `json:"spans"`
	Decisions int `json:"decisions"`
	Samples   int `json:"samples"`
	Jobs      int `json:"jobs"`
	Queries   int `json:"queries"`
	// Series / AlertEvents count the time-series and alert layers;
	// omitempty keeps manifests of runs without a tsdb engine
	// byte-identical to those written before the fields existed.
	Series      int `json:"series,omitempty"`
	AlertEvents int `json:"alert_events,omitempty"`
}

// Manifest is the archive's first record.
type Manifest struct {
	Schema string `json:"schema"`
	// Label names the run ("figure6_z1_LA", "serve 2026-08-08", ...);
	// diff output uses it as the side heading.
	Label string `json:"label"`
	// CreatedUnixMS is the wall-clock write time (0 when the producer
	// wants deterministic bytes, e.g. golden tests).
	CreatedUnixMS int64 `json:"created_unix_ms,omitempty"`
	// VirtualTimeS is the engine clock when the archive was cut.
	VirtualTimeS float64   `json:"virtual_time_s"`
	Config       RunConfig `json:"config"`
	Counts       Counts    `json:"counts"`
	// DroppedSpans is the trace ring's eviction count at write time;
	// when non-zero the span stream is incomplete (diagnoses may carry
	// untraced filler).
	DroppedSpans int64 `json:"dropped_spans"`
}

// spanRecord is the wire form of trace.Span (which carries no JSON
// tags of its own — the archive schema is decoupled from the in-memory
// layout on purpose).
type spanRecord struct {
	Name        string  `json:"name"`
	Cat         string  `json:"cat,omitempty"`
	Start       float64 `json:"start_s"`
	End         float64 `json:"end_s"`
	Job         int     `json:"job"`
	Task        int     `json:"task"`
	Attempt     int     `json:"attempt"`
	Node        int     `json:"node"`
	Speculative bool    `json:"speculative,omitempty"`
	Outcome     string  `json:"outcome,omitempty"`
}

func toSpanRecord(s trace.Span) spanRecord {
	return spanRecord{Name: s.Name, Cat: s.Cat, Start: s.Start, End: s.End,
		Job: s.Job, Task: s.Task, Attempt: s.Attempt, Node: s.Node,
		Speculative: s.Speculative, Outcome: s.Outcome}
}

func (r spanRecord) span() trace.Span {
	return trace.Span{Name: r.Name, Cat: r.Cat, Start: r.Start, End: r.End,
		Job: r.Job, Task: r.Task, Attempt: r.Attempt, Node: r.Node,
		Speculative: r.Speculative, Outcome: r.Outcome}
}

// decisionRecord is the wire form of trace.PolicyDecision.
type decisionRecord struct {
	Time             float64 `json:"time_s"`
	JobID            int     `json:"job"`
	Policy           string  `json:"policy"`
	Verdict          string  `json:"verdict"`
	Added            int     `json:"added"`
	GrabLimit        int     `json:"grab_limit"`
	ScheduledMaps    int     `json:"scheduled_maps"`
	CompletedMaps    int     `json:"completed_maps"`
	PendingMaps      int     `json:"pending_maps"`
	RunningMaps      int     `json:"running_maps"`
	MapInputRecords  int64   `json:"map_input_records"`
	MapOutputRecords int64   `json:"map_output_records"`
	TotalSlots       int     `json:"total_slots"`
	FreeSlots        int     `json:"free_slots"`
	QueuedTasks      int     `json:"queued_tasks"`
	WorkThresholdPct float64 `json:"work_threshold_pct"`
	ProgressPct      float64 `json:"progress_pct"`
}

func toDecisionRecord(d trace.PolicyDecision) decisionRecord {
	return decisionRecord{Time: d.Time, JobID: d.JobID, Policy: d.Policy,
		Verdict: d.Verdict, Added: d.Added, GrabLimit: d.GrabLimit,
		ScheduledMaps: d.ScheduledMaps, CompletedMaps: d.CompletedMaps,
		PendingMaps: d.PendingMaps, RunningMaps: d.RunningMaps,
		MapInputRecords: d.MapInputRecords, MapOutputRecords: d.MapOutputRecords,
		TotalSlots: d.TotalSlots, FreeSlots: d.FreeSlots, QueuedTasks: d.QueuedTasks,
		WorkThresholdPct: d.WorkThresholdPct, ProgressPct: d.ProgressPct}
}

func (r decisionRecord) decision() trace.PolicyDecision {
	return trace.PolicyDecision{Time: r.Time, JobID: r.JobID, Policy: r.Policy,
		Verdict: r.Verdict, Added: r.Added, GrabLimit: r.GrabLimit,
		ScheduledMaps: r.ScheduledMaps, CompletedMaps: r.CompletedMaps,
		PendingMaps: r.PendingMaps, RunningMaps: r.RunningMaps,
		MapInputRecords: r.MapInputRecords, MapOutputRecords: r.MapOutputRecords,
		TotalSlots: r.TotalSlots, FreeSlots: r.FreeSlots, QueuedTasks: r.QueuedTasks,
		WorkThresholdPct: r.WorkThresholdPct, ProgressPct: r.ProgressPct}
}

// sampleRecord is the wire form of trace.MetricSample.
type sampleRecord struct {
	Time             float64 `json:"time_s"`
	CPUUtilPct       float64 `json:"cpu_util_pct"`
	DiskReadKBs      float64 `json:"disk_read_kb_s"`
	SlotOccupancyPct float64 `json:"slot_occupancy_pct"`
}

// gaugeRecord is the wire form of trace.GaugeSnapshot.
type gaugeRecord struct {
	Last  float64 `json:"last"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// Archive is one run's bundle in memory.
type Archive struct {
	Manifest  Manifest
	Spans     []trace.Span
	Decisions []trace.PolicyDecision
	Samples   []trace.MetricSample
	Counters  map[string]int64
	Gauges    map[string]trace.GaugeSnapshot
	// Diagnosis is the per-job diag report (schema dynamicmr.diag/1)
	// computed at write time, so diffing does not re-run the analyzer.
	Diagnosis *diag.Report
	// Queries is the per-query registry dump (schema
	// dynamicmr.qstats/1); nil when the run had no qstats layer.
	Queries *qstats.Dump
	// Series is the time-series engine dump (schema dynamicmr.tsdb/1);
	// nil when the run had no tsdb layer.
	Series *tsdb.Dump
	// Alerts is the alert layer's rules + firing set + event log (schema
	// dynamicmr.alerts/1); nil when the run had no tsdb layer.
	Alerts *tsdb.AlertsDump
}

// Source is the input to New: a label, the run's tracer, and optional
// pre-computed layers.
type Source struct {
	Label string
	// Tracer supplies spans, decisions, samples, counters and gauges.
	// It must be enabled.
	Tracer *trace.Tracer
	// Diagnosis overrides the diag report; nil runs diag.FromTracer.
	Diagnosis *diag.Report
	// Queries attaches the per-query dump; nil omits it.
	Queries *qstats.Dump
	// Series / Alerts attach the time-series and alert layers; nil
	// omits them.
	Series *tsdb.Dump
	Alerts *tsdb.AlertsDump
	// VirtualTimeS is the engine clock at archive time.
	VirtualTimeS float64
	// CreatedUnixMS stamps the manifest (0 = unstamped, deterministic
	// bytes).
	CreatedUnixMS int64
	Config        RunConfig
}

// New snapshots a run into an Archive. The diagnosis (computed here
// when src.Diagnosis is nil) is invariant-checked: every job's
// breakdown must sum to its makespan, the precondition for
// diff-by-construction in Compare.
func New(src Source) (*Archive, error) {
	if !src.Tracer.Enabled() {
		return nil, fmt.Errorf("runarchive: archiving requires an enabled tracer")
	}
	rep := src.Diagnosis
	if rep == nil {
		rep = diag.FromTracer(src.Tracer)
	}
	if err := rep.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("runarchive: diagnosis invariants: %w", err)
	}
	a := &Archive{
		Manifest: Manifest{
			Schema:        SchemaVersion,
			Label:         src.Label,
			CreatedUnixMS: src.CreatedUnixMS,
			VirtualTimeS:  src.VirtualTimeS,
			Config:        src.Config,
			DroppedSpans:  src.Tracer.Dropped(),
		},
		Spans:     src.Tracer.Spans(),
		Decisions: src.Tracer.PolicyDecisions(),
		Samples:   src.Tracer.MetricSamples(),
		Counters:  src.Tracer.Counters(),
		Gauges:    src.Tracer.Gauges(),
		Diagnosis: rep,
		Queries:   src.Queries,
		Series:    src.Series,
		Alerts:    src.Alerts,
	}
	a.Manifest.Counts = a.counts()
	return a, nil
}

// counts derives the manifest counts from the payload.
func (a *Archive) counts() Counts {
	c := Counts{Spans: len(a.Spans), Decisions: len(a.Decisions), Samples: len(a.Samples)}
	if a.Diagnosis != nil {
		c.Jobs = len(a.Diagnosis.Jobs)
	}
	if a.Queries != nil {
		c.Queries = len(a.Queries.Queries)
	}
	if a.Series != nil {
		c.Series = len(a.Series.Series)
	}
	if a.Alerts != nil {
		c.AlertEvents = len(a.Alerts.Events)
	}
	return c
}

// record is one NDJSON line.
type record struct {
	T string          `json:"t"`
	D json.RawMessage `json:"d"`
}

// jsonSafe reports whether s needs no JSON escaping (the fast path for
// the archive's fixed vocabulary of span names, categories and
// verdicts).
func jsonSafe(s string) bool {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c == '"' || c == '\\' || c >= 0x80 {
			return false
		}
	}
	return true
}

func appendString(b []byte, s string) []byte {
	if jsonSafe(s) {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	j, _ := json.Marshal(s)
	return append(b, j...)
}

// appendFloat encodes v the way encoding/json does: decimal notation
// in the normal range, exponent form outside it — so hand-encoded and
// reflected records agree on float formatting.
func appendFloat(b []byte, v float64) []byte {
	format := byte('f')
	if abs := math.Abs(v); abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, v, format, -1, 64)
	if format == 'e' {
		// encoding/json trims e-09 to e-9.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// The high-volume record kinds (spans, decisions, samples — tens of
// thousands per run) are encoded by hand into a reused buffer:
// reflection-based json.Marshal is ~40% of Write's CPU on a
// figure-6-sized stream (see BenchmarkArchiveWrite). The byte output
// matches what json.Marshal produced for the equivalent wire structs,
// omitempty semantics included.
func appendSpanLine(b []byte, s trace.Span) []byte {
	b = append(b, `{"t":"span","d":{"name":`...)
	b = appendString(b, s.Name)
	if s.Cat != "" {
		b = append(b, `,"cat":`...)
		b = appendString(b, s.Cat)
	}
	b = append(b, `,"start_s":`...)
	b = appendFloat(b, s.Start)
	b = append(b, `,"end_s":`...)
	b = appendFloat(b, s.End)
	b = append(b, `,"job":`...)
	b = strconv.AppendInt(b, int64(s.Job), 10)
	b = append(b, `,"task":`...)
	b = strconv.AppendInt(b, int64(s.Task), 10)
	b = append(b, `,"attempt":`...)
	b = strconv.AppendInt(b, int64(s.Attempt), 10)
	b = append(b, `,"node":`...)
	b = strconv.AppendInt(b, int64(s.Node), 10)
	if s.Speculative {
		b = append(b, `,"speculative":true`...)
	}
	if s.Outcome != "" {
		b = append(b, `,"outcome":`...)
		b = appendString(b, s.Outcome)
	}
	return append(b, "}}\n"...)
}

func appendDecisionLine(b []byte, d trace.PolicyDecision) []byte {
	b = append(b, `{"t":"decision","d":{"time_s":`...)
	b = appendFloat(b, d.Time)
	b = append(b, `,"job":`...)
	b = strconv.AppendInt(b, int64(d.JobID), 10)
	b = append(b, `,"policy":`...)
	b = appendString(b, d.Policy)
	b = append(b, `,"verdict":`...)
	b = appendString(b, d.Verdict)
	b = append(b, `,"added":`...)
	b = strconv.AppendInt(b, int64(d.Added), 10)
	b = append(b, `,"grab_limit":`...)
	b = strconv.AppendInt(b, int64(d.GrabLimit), 10)
	b = append(b, `,"scheduled_maps":`...)
	b = strconv.AppendInt(b, int64(d.ScheduledMaps), 10)
	b = append(b, `,"completed_maps":`...)
	b = strconv.AppendInt(b, int64(d.CompletedMaps), 10)
	b = append(b, `,"pending_maps":`...)
	b = strconv.AppendInt(b, int64(d.PendingMaps), 10)
	b = append(b, `,"running_maps":`...)
	b = strconv.AppendInt(b, int64(d.RunningMaps), 10)
	b = append(b, `,"map_input_records":`...)
	b = strconv.AppendInt(b, d.MapInputRecords, 10)
	b = append(b, `,"map_output_records":`...)
	b = strconv.AppendInt(b, d.MapOutputRecords, 10)
	b = append(b, `,"total_slots":`...)
	b = strconv.AppendInt(b, int64(d.TotalSlots), 10)
	b = append(b, `,"free_slots":`...)
	b = strconv.AppendInt(b, int64(d.FreeSlots), 10)
	b = append(b, `,"queued_tasks":`...)
	b = strconv.AppendInt(b, int64(d.QueuedTasks), 10)
	b = append(b, `,"work_threshold_pct":`...)
	b = appendFloat(b, d.WorkThresholdPct)
	b = append(b, `,"progress_pct":`...)
	b = appendFloat(b, d.ProgressPct)
	return append(b, "}}\n"...)
}

func appendSampleLine(b []byte, m trace.MetricSample) []byte {
	b = append(b, `{"t":"sample","d":{"time_s":`...)
	b = appendFloat(b, m.Time)
	b = append(b, `,"cpu_util_pct":`...)
	b = appendFloat(b, m.CPUUtilPct)
	b = append(b, `,"disk_read_kb_s":`...)
	b = appendFloat(b, m.DiskReadKBs)
	b = append(b, `,"slot_occupancy_pct":`...)
	b = appendFloat(b, m.SlotOccupancyPct)
	return append(b, "}}\n"...)
}

// writeChunkSize is the encoder → compressor hand-off granularity.
const writeChunkSize = 256 << 10

// encodeStream serializes every record into chunks sent over out, in
// stream order. It owns the encoding end of Write's pipeline; any
// marshal error is delivered as the final chunk.
func (a *Archive) encodeStream(out chan<- writeChunk, free <-chan []byte) {
	buf := (<-free)[:0]
	flush := func() {
		if len(buf) > 0 {
			out <- writeChunk{b: buf}
			buf = (<-free)[:0]
		}
	}
	emit := func(kind string, payload any) error {
		d, err := json.Marshal(payload)
		if err != nil {
			return err
		}
		buf = append(buf, `{"t":"`...)
		buf = append(buf, kind...)
		buf = append(buf, `","d":`...)
		buf = append(buf, d...)
		buf = append(buf, "}\n"...)
		if len(buf) >= writeChunkSize {
			flush()
		}
		return nil
	}
	if err := emit(recManifest, a.Manifest); err != nil {
		out <- writeChunk{err: err}
		close(out)
		return
	}
	for _, s := range a.Spans {
		buf = appendSpanLine(buf, s)
		if len(buf) >= writeChunkSize {
			flush()
		}
	}
	for _, d := range a.Decisions {
		buf = appendDecisionLine(buf, d)
		if len(buf) >= writeChunkSize {
			flush()
		}
	}
	for _, m := range a.Samples {
		buf = appendSampleLine(buf, m)
		if len(buf) >= writeChunkSize {
			flush()
		}
	}
	var err error
	if len(a.Counters) > 0 {
		err = emit(recCounters, a.Counters)
	}
	if err == nil && len(a.Gauges) > 0 {
		gs := make(map[string]gaugeRecord, len(a.Gauges))
		for k, g := range a.Gauges {
			gs[k] = gaugeRecord{Last: g.Last, Min: g.Min, Max: g.Max, Sum: g.Sum, Count: g.Count}
		}
		err = emit(recGauges, gs)
	}
	if err == nil && a.Diagnosis != nil {
		err = emit(recDiagnosis, a.Diagnosis)
	}
	if err == nil && a.Queries != nil {
		err = emit(recQueries, a.Queries)
	}
	if err == nil && a.Series != nil {
		err = emit(recSeries, a.Series)
	}
	if err == nil && a.Alerts != nil {
		err = emit(recAlerts, a.Alerts)
	}
	if err != nil {
		out <- writeChunk{err: err}
		close(out)
		return
	}
	flush()
	close(out)
}

type writeChunk struct {
	b   []byte
	err error
}

// Write emits the archive as gzip NDJSON. The manifest counts are
// recomputed from the payload, so Load → Write round-trips
// byte-identically regardless of what the Counts field held.
//
// Serialization and compression run as a two-stage pipeline (encoder
// goroutine → gzip on the caller), overlapping the two roughly
// equal-cost halves of the dump; the chunk channel is FIFO and
// single-producer/single-consumer, so the byte stream — and with it
// the byte-identity contract — is exactly the sequential one.
func (a *Archive) Write(w io.Writer) error {
	// BestSpeed keeps archiving invisible next to the simulation (the
	// stream is ~25% larger than default compression but ~4× faster to
	// produce); determinism is unaffected — the level is fixed and the
	// header carries no ModTime.
	zw, err := gzip.NewWriterLevel(w, gzip.BestSpeed)
	if err != nil {
		return err
	}
	a.Manifest.Schema = SchemaVersion
	a.Manifest.Counts = a.counts()
	out := make(chan writeChunk, 2)
	free := make(chan []byte, 3)
	for i := 0; i < 3; i++ {
		free <- make([]byte, 0, writeChunkSize+4096)
	}
	go a.encodeStream(out, free)
	for c := range out {
		if c.err != nil {
			return c.err // encoder closed out after an error
		}
		if err == nil {
			_, err = zw.Write(c.b)
		}
		free <- c.b // keep draining on error so the encoder finishes
	}
	if err != nil {
		return err
	}
	return zw.Close()
}

// WriteFile writes the archive to path.
func (a *Archive) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := a.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load parses a gzip NDJSON archive and validates it (schema match,
// counts consistent with the stream).
func Load(r io.Reader) (*Archive, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("runarchive: not a gzip stream: %w", err)
	}
	defer zr.Close()
	dec := json.NewDecoder(bufio.NewReader(zr))
	a := &Archive{}
	first := true
	for {
		var rec record
		if err := dec.Decode(&rec); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("runarchive: corrupt record: %w", err)
		}
		if first {
			if rec.T != recManifest {
				return nil, fmt.Errorf("runarchive: first record is %q, want %q", rec.T, recManifest)
			}
			if err := json.Unmarshal(rec.D, &a.Manifest); err != nil {
				return nil, fmt.Errorf("runarchive: manifest: %w", err)
			}
			if a.Manifest.Schema != SchemaVersion {
				return nil, fmt.Errorf("runarchive: schema %q, want %q", a.Manifest.Schema, SchemaVersion)
			}
			first = false
			continue
		}
		switch rec.T {
		case recManifest:
			return nil, fmt.Errorf("runarchive: duplicate manifest record")
		case recSpan:
			var sr spanRecord
			if err := json.Unmarshal(rec.D, &sr); err != nil {
				return nil, fmt.Errorf("runarchive: span record: %w", err)
			}
			a.Spans = append(a.Spans, sr.span())
		case recDecision:
			var dr decisionRecord
			if err := json.Unmarshal(rec.D, &dr); err != nil {
				return nil, fmt.Errorf("runarchive: decision record: %w", err)
			}
			a.Decisions = append(a.Decisions, dr.decision())
		case recSample:
			var mr sampleRecord
			if err := json.Unmarshal(rec.D, &mr); err != nil {
				return nil, fmt.Errorf("runarchive: sample record: %w", err)
			}
			a.Samples = append(a.Samples, trace.MetricSample{Time: mr.Time,
				CPUUtilPct: mr.CPUUtilPct, DiskReadKBs: mr.DiskReadKBs,
				SlotOccupancyPct: mr.SlotOccupancyPct})
		case recCounters:
			if err := json.Unmarshal(rec.D, &a.Counters); err != nil {
				return nil, fmt.Errorf("runarchive: counters record: %w", err)
			}
		case recGauges:
			var gs map[string]gaugeRecord
			if err := json.Unmarshal(rec.D, &gs); err != nil {
				return nil, fmt.Errorf("runarchive: gauges record: %w", err)
			}
			a.Gauges = make(map[string]trace.GaugeSnapshot, len(gs))
			for k, g := range gs {
				a.Gauges[k] = trace.GaugeSnapshot{Last: g.Last, Min: g.Min, Max: g.Max, Sum: g.Sum, Count: g.Count}
			}
		case recDiagnosis:
			a.Diagnosis = &diag.Report{}
			if err := json.Unmarshal(rec.D, a.Diagnosis); err != nil {
				return nil, fmt.Errorf("runarchive: diag record: %w", err)
			}
		case recQueries:
			a.Queries = &qstats.Dump{}
			if err := json.Unmarshal(rec.D, a.Queries); err != nil {
				return nil, fmt.Errorf("runarchive: qstats record: %w", err)
			}
		case recSeries:
			a.Series = &tsdb.Dump{}
			if err := json.Unmarshal(rec.D, a.Series); err != nil {
				return nil, fmt.Errorf("runarchive: tsdb record: %w", err)
			}
		case recAlerts:
			a.Alerts = &tsdb.AlertsDump{}
			if err := json.Unmarshal(rec.D, a.Alerts); err != nil {
				return nil, fmt.Errorf("runarchive: alerts record: %w", err)
			}
		default:
			// Unknown record kinds are skipped: forward compatibility
			// for minor additions within schema /1.
		}
	}
	if first {
		return nil, fmt.Errorf("runarchive: empty archive (no manifest)")
	}
	// Write omits empty counter/gauge records; normalize to the non-nil
	// maps New produces so load(write(a)) == a.
	if a.Counters == nil {
		a.Counters = map[string]int64{}
	}
	if a.Gauges == nil {
		a.Gauges = map[string]trace.GaugeSnapshot{}
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// LoadFile reads an archive from path.
func LoadFile(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return a, nil
}

// Validate checks the archive's internal consistency: schema version,
// manifest counts against the payload, and the diagnosis invariants
// (every job's breakdown sums to its makespan) when a diagnosis is
// present.
func (a *Archive) Validate() error {
	if a.Manifest.Schema != SchemaVersion {
		return fmt.Errorf("runarchive: schema %q, want %q", a.Manifest.Schema, SchemaVersion)
	}
	if got, want := a.counts(), a.Manifest.Counts; got != want {
		return fmt.Errorf("runarchive: manifest counts %+v do not match payload %+v", want, got)
	}
	if a.Diagnosis != nil {
		if a.Diagnosis.Schema != diag.SchemaVersion {
			return fmt.Errorf("runarchive: diag schema %q, want %q", a.Diagnosis.Schema, diag.SchemaVersion)
		}
		if err := a.Diagnosis.CheckInvariants(); err != nil {
			return fmt.Errorf("runarchive: diagnosis invariants: %w", err)
		}
	}
	if a.Queries != nil && a.Queries.Schema != qstats.SchemaVersion {
		return fmt.Errorf("runarchive: qstats schema %q, want %q", a.Queries.Schema, qstats.SchemaVersion)
	}
	if a.Series != nil && a.Series.Schema != tsdb.SchemaVersion {
		return fmt.Errorf("runarchive: tsdb schema %q, want %q", a.Series.Schema, tsdb.SchemaVersion)
	}
	if a.Alerts != nil && a.Alerts.Schema != tsdb.AlertsSchemaVersion {
		return fmt.Errorf("runarchive: alerts schema %q, want %q", a.Alerts.Schema, tsdb.AlertsSchemaVersion)
	}
	return nil
}

// RunSide adapts the archive for diag.Compare: the diagnosis report,
// the decision log, and the job → query-ID alignment map recovered
// from the qstats dump (finished queries carry both their stable query
// ID and the job ID it ran as).
func (a *Archive) RunSide() diag.RunSide {
	side := diag.RunSide{
		Label:     a.Manifest.Label,
		Report:    a.Diagnosis,
		Decisions: a.Decisions,
	}
	if a.Queries != nil {
		side.QueryByJob = make(map[int]string)
		for _, q := range a.Queries.Queries {
			side.QueryByJob[q.JobID] = q.ID
		}
		for _, q := range a.Queries.InFlight {
			side.QueryByJob[q.JobID] = q.ID
		}
	}
	if a.Alerts != nil {
		for _, e := range a.Alerts.Events {
			side.Alerts = append(side.Alerts, fmt.Sprintf("%s(%s)", e.Rule, e.State))
		}
	}
	return side
}

// Compare diffs two archives (B relative to A) through diag.Compare:
// jobs aligned by query ID (falling back to job ID), per-component
// breakdown deltas summing to the makespan delta, first divergent
// provider decision, critical-path and anomaly diffs.
func Compare(a, b *Archive) (*diag.DiffReport, error) {
	if a.Diagnosis == nil || b.Diagnosis == nil {
		return nil, fmt.Errorf("runarchive: both archives need a diagnosis to compare")
	}
	return diag.Compare(a.RunSide(), b.RunSide())
}

// GitRev returns the VCS revision baked into the running binary by the
// Go toolchain (12-hex prefix, "+dirty" suffix when the working tree
// was modified), or "" for builds without VCS stamping (go test, GOPATH
// builds).
func GitRev() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if rev == "" {
		return ""
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}
