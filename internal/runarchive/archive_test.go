package runarchive

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"dynamicmr/internal/qstats"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
)

// randomTracer populates an enabled tracer with r-sized randomized but
// diagnosis-valid content: nJobs simple one-map jobs (every phase
// boundary tiled so CheckInvariants holds), a decision log, metric
// samples, counters and gauges.
func randomTracer(r *rand.Rand, nJobs int) (*trace.Tracer, float64) {
	tr := trace.New(trace.Config{Enabled: true})
	now := 0.0
	for j := 0; j < nJobs; j++ {
		start := now + r.Float64()*5
		wait := 1 + r.Float64()*3
		run := 5 + r.Float64()*20
		end := start + wait + run
		tr.Record(trace.Span{Name: trace.SpanJob, Cat: trace.CatJob,
			Start: start, End: end, Job: j, Task: -1, Node: -1, Outcome: trace.OutcomeOK})
		tr.Record(trace.Span{Name: trace.SpanQueueWait, Cat: trace.CatMap,
			Start: start, End: start + wait, Job: j, Task: 0, Attempt: 1, Node: j % 4})
		tr.Record(trace.Span{Name: trace.SpanMapAttempt, Cat: trace.CatMap,
			Start: start + wait, End: end, Job: j, Task: 0, Attempt: 1, Node: j % 4,
			Outcome: trace.OutcomeOK})
		tr.Record(trace.Span{Name: trace.SpanMapCPU, Cat: trace.CatMap,
			Start: start + wait, End: end, Job: j, Task: 0, Attempt: 1, Node: j % 4})
		tr.RecordPolicyDecision(trace.PolicyDecision{
			Time: start, JobID: j, Policy: "LA", Verdict: trace.VerdictInit,
			Added: 1, GrabLimit: 1 + r.Intn(8),
			ScheduledMaps: 1, TotalSlots: 40, FreeSlots: r.Intn(40),
		})
		tr.RecordPolicyDecision(trace.PolicyDecision{
			Time: end, JobID: j, Policy: "LA", Verdict: trace.VerdictEOI,
		})
		now = end
	}
	for i := 0; i < r.Intn(20); i++ {
		tr.RecordMetricSample(trace.MetricSample{
			Time: float64(i+1) * 30, CPUUtilPct: r.Float64() * 100,
			DiskReadKBs: r.Float64() * 1e4, SlotOccupancyPct: r.Float64() * 100,
		})
	}
	for i := 0; i < r.Intn(6); i++ {
		tr.Inc(fmt.Sprintf("test.counter_%d", i), r.Int63n(1e6))
	}
	for i := 0; i < r.Intn(4); i++ {
		tr.SetGauge(fmt.Sprintf("test.gauge_%d", i), r.Float64()*1e9)
		tr.SetGauge(fmt.Sprintf("test.gauge_%d", i), r.Float64()*1e9)
	}
	return tr, now
}

// TestArchiveRoundTrip is the write→load→re-dump property over
// randomized archive contents: loaded fields equal the original, and
// the re-dump is byte-identical — the determinism the per-cell
// experiment archives rely on.
func TestArchiveRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		tr, vt := randomTracer(r, 1+r.Intn(7))
		src := Source{
			Label:        fmt.Sprintf("round-trip seed %d", seed),
			Tracer:       tr,
			VirtualTimeS: vt,
			Config: RunConfig{
				Policy: "LA", EngineMode: "memory", ScanWorkers: r.Intn(8),
				Seed: seed, GitRev: "abc123def456",
				Params: map[string]string{"figure": "6", "z": "2"},
			},
		}
		a, err := New(src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		var first bytes.Buffer
		if err := a.Write(&first); err != nil {
			t.Fatalf("seed %d write: %v", seed, err)
		}
		loaded, err := Load(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("seed %d load: %v", seed, err)
		}

		if !reflect.DeepEqual(loaded.Manifest, a.Manifest) {
			t.Fatalf("seed %d: manifest mismatch\n got %+v\nwant %+v", seed, loaded.Manifest, a.Manifest)
		}
		if !reflect.DeepEqual(loaded.Spans, a.Spans) {
			t.Fatalf("seed %d: %d spans do not round-trip", seed, len(a.Spans))
		}
		if !reflect.DeepEqual(loaded.Decisions, a.Decisions) {
			t.Fatalf("seed %d: decisions do not round-trip", seed)
		}
		if !reflect.DeepEqual(loaded.Samples, a.Samples) {
			t.Fatalf("seed %d: samples do not round-trip", seed)
		}
		if !reflect.DeepEqual(loaded.Counters, a.Counters) {
			t.Fatalf("seed %d: counters do not round-trip\n got %v\nwant %v", seed, loaded.Counters, a.Counters)
		}
		if !reflect.DeepEqual(loaded.Gauges, a.Gauges) {
			t.Fatalf("seed %d: gauges do not round-trip", seed)
		}
		if !reflect.DeepEqual(loaded.Diagnosis, a.Diagnosis) {
			t.Fatalf("seed %d: diagnosis does not round-trip", seed)
		}

		var second bytes.Buffer
		if err := loaded.Write(&second); err != nil {
			t.Fatalf("seed %d re-dump: %v", seed, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: re-dump is not byte-identical (%d vs %d bytes)",
				seed, first.Len(), second.Len())
		}
	}
}

// TestArchiveQueriesRoundTrip covers the qstats layer and the
// query-keyed RunSide alignment map.
func TestArchiveQueriesRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	tr, vt := randomTracer(r, 3)
	dump := &qstats.Dump{
		Schema: "dynamicmr.qstats/1", VirtualTimeS: vt,
		Started: 3, Finished: 2,
		Queries: []qstats.QueryRecord{
			{ID: "q-000001", JobID: 0, Policy: "LA", State: "ok"},
			{ID: "q-000002", JobID: 1, Policy: "LA", State: "ok"},
		},
		InFlight: []qstats.QueryRecord{{ID: "q-000003", JobID: 2, Policy: "LA"}},
	}
	a, err := New(Source{Label: "with queries", Tracer: tr, Queries: dump, VirtualTimeS: vt})
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Counts.Queries != 2 {
		t.Fatalf("manifest query count = %d, want 2", a.Manifest.Counts.Queries)
	}

	var buf bytes.Buffer
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Queries, a.Queries) {
		t.Fatalf("queries do not round-trip:\n got %+v\nwant %+v", loaded.Queries, a.Queries)
	}

	// RunSide aligns finished and in-flight jobs to query IDs.
	rs := loaded.RunSide()
	want := map[int]string{0: "q-000001", 1: "q-000002", 2: "q-000003"}
	if !reflect.DeepEqual(rs.QueryByJob, want) {
		t.Fatalf("QueryByJob = %v, want %v", rs.QueryByJob, want)
	}
}

// TestArchiveSeriesAndAlertsRoundTrip covers the tsdb layers: the
// series dump and alert log survive write→load with exact equality, a
// re-dump stays byte-identical, the manifest counts them, and RunSide
// exposes the alert signatures for diffing.
func TestArchiveSeriesAndAlertsRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	tr, vt := randomTracer(r, 2)
	series := &tsdb.Dump{
		Schema: tsdb.SchemaVersion, VirtualTimeS: vt, IntervalS: 5,
		Series: []tsdb.SeriesDump{
			{Name: "cluster.running_jobs", Points: []tsdb.Point{{T: 5, V: 1}, {T: 10, V: 2}}},
			{Name: "query.match_rate", Points: []tsdb.Point{{T: 10, V: 123.5}}},
		},
	}
	alerts := &tsdb.AlertsDump{
		Schema: tsdb.AlertsSchemaVersion, VirtualTimeS: vt,
		Rules: []tsdb.Rule{{Name: "latency-slo", Kind: tsdb.KindSLOBurn, ObjectiveS: 30}},
		Active: []tsdb.ActiveAlert{
			{Rule: "latency-slo", SinceS: 40, Value: 100, Severity: "page"},
		},
		Events: []tsdb.AlertEvent{
			{Rule: "latency-slo", State: tsdb.StateFiring, TimeS: 40, Value: 100},
		},
	}
	a, err := New(Source{Label: "with tsdb", Tracer: tr,
		Series: series, Alerts: alerts, VirtualTimeS: vt})
	if err != nil {
		t.Fatal(err)
	}
	if a.Manifest.Counts.Series != 2 || a.Manifest.Counts.AlertEvents != 1 {
		t.Fatalf("manifest counts: %+v", a.Manifest.Counts)
	}

	var first bytes.Buffer
	if err := a.Write(&first); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Series, a.Series) {
		t.Fatalf("series do not round-trip:\n got %+v\nwant %+v", loaded.Series, a.Series)
	}
	if !reflect.DeepEqual(loaded.Alerts, a.Alerts) {
		t.Fatalf("alerts do not round-trip:\n got %+v\nwant %+v", loaded.Alerts, a.Alerts)
	}
	var second bytes.Buffer
	if err := loaded.Write(&second); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatalf("re-dump is not byte-identical (%d vs %d bytes)", first.Len(), second.Len())
	}

	if got := loaded.RunSide().Alerts; !reflect.DeepEqual(got, []string{"latency-slo(firing)"}) {
		t.Fatalf("RunSide alerts = %v", got)
	}

	// A wrong schema in either layer fails Validate.
	bad := *a
	badSeries := *series
	badSeries.Schema = "dynamicmr.tsdb/999"
	bad.Series = &badSeries
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a wrong tsdb schema")
	}
	bad = *a
	badAlerts := *alerts
	badAlerts.Schema = "dynamicmr.alerts/999"
	bad.Alerts = &badAlerts
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a wrong alerts schema")
	}
}

// TestArchiveValidateRejectsCorruption checks the load-time guards:
// wrong schema, truncated payload, and count drift all fail loudly.
func TestArchiveValidateRejectsCorruption(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	tr, vt := randomTracer(r, 2)
	a, err := New(Source{Label: "guard", Tracer: tr, VirtualTimeS: vt})
	if err != nil {
		t.Fatal(err)
	}

	// Schema mismatch.
	bad := *a
	bad.Manifest.Schema = "dynamicmr.archive/999"
	var buf bytes.Buffer
	// Write recomputes the schema, so corrupt the in-memory copy via
	// Validate directly.
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a wrong schema")
	}

	// Count drift.
	bad = *a
	bad.Manifest.Counts.Spans++
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted a span-count drift")
	}

	// Truncated stream.
	buf.Reset()
	if err := a.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(buf.Bytes()[:buf.Len()/2])); err == nil {
		t.Fatal("Load accepted a truncated archive")
	}

	// Not an archive at all.
	if _, err := Load(bytes.NewReader([]byte("not gzip"))); err == nil {
		t.Fatal("Load accepted non-gzip input")
	}
}

// TestCompareRequiresDiagnosis pins the wrapper's error path.
func TestCompareRequiresDiagnosis(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	tr, vt := randomTracer(r, 1)
	a, err := New(Source{Label: "a", Tracer: tr, VirtualTimeS: vt})
	if err != nil {
		t.Fatal(err)
	}
	b := *a
	b.Diagnosis = nil
	if _, err := Compare(a, &b); err == nil {
		t.Fatal("Compare accepted an archive with no diagnosis")
	}
	if rep, err := Compare(a, a); err != nil || len(rep.Jobs) == 0 {
		t.Fatalf("self-compare failed: %v (%+v)", err, rep)
	}
}

// BenchmarkArchiveWrite measures the serialization + compression cost
// of dumping a figure-6-cell-sized archive (~40k spans).
func BenchmarkArchiveWrite(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	tr, vt := randomTracer(r, 10000)
	a, err := New(Source{Label: "bench", Tracer: tr, VirtualTimeS: vt})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Write(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// TestHandEncodersMatchReflection pins the hand-rolled span/decision/
// sample line encoders to the json.Marshal output of the wire structs
// they replaced, over randomized values including omitempty edges.
func TestHandEncodersMatchReflection(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	reflected := func(kind string, payload any) string {
		d, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		line, err := json.Marshal(record{T: kind, D: d})
		if err != nil {
			t.Fatal(err)
		}
		return string(line) + "\n"
	}
	outcomes := []string{"", trace.OutcomeOK, trace.OutcomeFailed, `odd"outcome\`}
	for i := 0; i < 200; i++ {
		s := trace.Span{
			Name: trace.SpanMapAttempt, Cat: trace.CatMap,
			Start: r.Float64() * 1e4, End: r.Float64() * 1e4,
			Job: r.Intn(100), Task: r.Intn(10) - 1, Attempt: r.Intn(3),
			Node: r.Intn(40) - 1, Speculative: r.Intn(2) == 0,
			Outcome: outcomes[r.Intn(len(outcomes))],
		}
		if i%5 == 0 {
			s.Cat = ""
			s.Start = r.Float64() * 1e-7 // exponent-form float
		}
		if got, want := string(appendSpanLine(nil, s)), reflected(recSpan, toSpanRecord(s)); got != want {
			t.Fatalf("span line drift:\n got %s\nwant %s", got, want)
		}
		d := trace.PolicyDecision{
			Time: r.Float64() * 1e4, JobID: r.Intn(100), Policy: "LA",
			Verdict: trace.VerdictGrow, Added: r.Intn(5), GrabLimit: r.Intn(10),
			ScheduledMaps: r.Intn(50), CompletedMaps: r.Intn(50),
			PendingMaps: r.Intn(50), RunningMaps: r.Intn(50),
			MapInputRecords: r.Int63n(1e9), MapOutputRecords: r.Int63n(1e9),
			TotalSlots: 40, FreeSlots: r.Intn(40), QueuedTasks: r.Intn(20),
			WorkThresholdPct: r.Float64() * 100, ProgressPct: r.Float64() * 100,
		}
		if got, want := string(appendDecisionLine(nil, d)), reflected(recDecision, toDecisionRecord(d)); got != want {
			t.Fatalf("decision line drift:\n got %s\nwant %s", got, want)
		}
		m := trace.MetricSample{Time: r.Float64() * 1e4, CPUUtilPct: r.Float64() * 100,
			DiskReadKBs: r.Float64() * 1e4, SlotOccupancyPct: r.Float64() * 100}
		want := reflected(recSample, sampleRecord{Time: m.Time, CPUUtilPct: m.CPUUtilPct,
			DiskReadKBs: m.DiskReadKBs, SlotOccupancyPct: m.SlotOccupancyPct})
		if got := string(appendSampleLine(nil, m)); got != want {
			t.Fatalf("sample line drift:\n got %s\nwant %s", got, want)
		}
	}
}
