package expr

import (
	"testing"

	"dynamicmr/internal/data"
)

func benchRecord() data.Record {
	s := data.NewSchema("L_QUANTITY", "L_SHIPMODE", "L_DISCOUNT")
	return data.NewRecord(s, []data.Value{data.Int(42), data.Str("RAIL"), data.Float(0.05)})
}

func BenchmarkPredicateEvalSimple(b *testing.B) {
	r := benchRecord()
	e := &Binary{Op: OpGt, L: &Column{Name: "L_QUANTITY"}, R: &Literal{Val: data.Int(50)}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBool(e, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredicateEvalCompound(b *testing.B) {
	r := benchRecord()
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpGt, L: &Column{Name: "L_QUANTITY"}, R: &Literal{Val: data.Int(10)}},
		R: &Binary{Op: OpOr,
			L: &Binary{Op: OpEq, L: &Column{Name: "L_SHIPMODE"}, R: &Literal{Val: data.Str("RAIL")}},
			R: &Between{X: &Column{Name: "L_DISCOUNT"}, Lo: &Literal{Val: data.Float(0.01)}, Hi: &Literal{Val: data.Float(0.1)}},
		}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EvalBool(e, r); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLikeMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = likeMatch("%foxes%hag%", "quickly foxes haggle blithely")
	}
}
