package expr

import (
	"sort"
	"strings"
	"testing"

	"dynamicmr/internal/data"
)

var testSchema = data.NewSchema("A", "B", "S", "F")

func rec(a, b int64, s string, f float64) data.Record {
	return data.NewRecord(testSchema, []data.Value{
		data.Int(a), data.Int(b), data.Str(s), data.Float(f),
	})
}

func col(n string) Expr               { return &Column{Name: n} }
func lint(v int64) Expr               { return &Literal{Val: data.Int(v)} }
func lfloat(v float64) Expr           { return &Literal{Val: data.Float(v)} }
func lstr(v string) Expr              { return &Literal{Val: data.Str(v)} }
func bin(op BinaryOp, l, r Expr) Expr { return &Binary{Op: op, L: l, R: r} }

func evalB(t *testing.T, e Expr, r data.Record) bool {
	t.Helper()
	b, err := EvalBool(e, r)
	if err != nil {
		t.Fatalf("EvalBool(%s): %v", e, err)
	}
	return b
}

func TestComparisons(t *testing.T) {
	r := rec(5, 10, "RAIL", 0.05)
	cases := []struct {
		e    Expr
		want bool
	}{
		{bin(OpEq, col("a"), lint(5)), true},
		{bin(OpEq, col("a"), lint(6)), false},
		{bin(OpNe, col("a"), lint(6)), true},
		{bin(OpLt, col("a"), col("b")), true},
		{bin(OpLe, col("a"), lint(5)), true},
		{bin(OpGt, col("b"), col("a")), true},
		{bin(OpGe, col("a"), lint(6)), false},
		{bin(OpEq, col("s"), lstr("RAIL")), true},
		{bin(OpEq, col("s"), lstr("AIR")), false},
		{bin(OpEq, col("f"), lfloat(0.05)), true},
		{bin(OpLt, col("f"), lint(1)), true},
	}
	for _, c := range cases {
		if got := evalB(t, c.e, r); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestBooleanConnectives(t *testing.T) {
	r := rec(5, 10, "RAIL", 0.05)
	tr := bin(OpEq, lint(1), lint(1))
	fa := bin(OpEq, lint(1), lint(2))
	cases := []struct {
		e    Expr
		want bool
	}{
		{bin(OpAnd, tr, tr), true},
		{bin(OpAnd, tr, fa), false},
		{bin(OpOr, fa, tr), true},
		{bin(OpOr, fa, fa), false},
		{&Not{X: fa}, true},
		{&Not{X: tr}, false},
	}
	for _, c := range cases {
		if got := evalB(t, c.e, r); got != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	r := rec(1, 2, "x", 0)
	// Right operand would error (string arithmetic) if evaluated.
	bad := bin(OpAdd, col("s"), lint(1))
	e := bin(OpAnd, bin(OpEq, lint(1), lint(2)), bad)
	if evalB(t, e, r) {
		t.Fatal("AND short-circuit returned true")
	}
	e = bin(OpOr, bin(OpEq, lint(1), lint(1)), bad)
	if !evalB(t, e, r) {
		t.Fatal("OR short-circuit returned false")
	}
}

func TestArithmetic(t *testing.T) {
	r := rec(6, 4, "", 0.5)
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{bin(OpAdd, col("a"), col("b")), data.Int(10)},
		{bin(OpSub, col("a"), col("b")), data.Int(2)},
		{bin(OpMul, col("a"), col("b")), data.Int(24)},
		{bin(OpDiv, col("a"), col("b")), data.Float(1.5)},
		{bin(OpAdd, col("a"), col("f")), data.Float(6.5)},
		{&Neg{X: col("a")}, data.Int(-6)},
		{&Neg{X: col("f")}, data.Float(-0.5)},
	}
	for _, c := range cases {
		v, err := c.e.Eval(r)
		if err != nil {
			t.Fatalf("%s: %v", c.e, err)
		}
		if !data.Equal(v, c.want) {
			t.Errorf("%s = %v, want %v", c.e, v, c.want)
		}
	}
}

func TestArithmeticErrors(t *testing.T) {
	r := rec(1, 0, "x", 0)
	if _, err := bin(OpDiv, col("a"), col("b")).Eval(r); err == nil {
		t.Error("division by zero did not error")
	}
	if _, err := bin(OpAdd, col("s"), lint(1)).Eval(r); err == nil {
		t.Error("string arithmetic did not error")
	}
	if _, err := (&Neg{X: col("s")}).Eval(r); err == nil {
		t.Error("string negation did not error")
	}
}

func TestUnknownColumn(t *testing.T) {
	r := rec(1, 2, "x", 0)
	if _, err := col("nope").Eval(r); err == nil {
		t.Fatal("unknown column did not error")
	}
}

func TestBetween(t *testing.T) {
	r := rec(5, 0, "1994-06-15", 0)
	e := &Between{X: col("a"), Lo: lint(1), Hi: lint(10)}
	if !evalB(t, e, r) {
		t.Error("5 BETWEEN 1 AND 10 = false")
	}
	e = &Between{X: col("a"), Lo: lint(6), Hi: lint(10)}
	if evalB(t, e, r) {
		t.Error("5 BETWEEN 6 AND 10 = true")
	}
	// Date strings compare lexicographically.
	e = &Between{X: col("s"), Lo: lstr("1994-01-01"), Hi: lstr("1994-12-31")}
	if !evalB(t, e, r) {
		t.Error("date BETWEEN failed")
	}
	// Bounds are inclusive.
	e = &Between{X: col("a"), Lo: lint(5), Hi: lint(5)}
	if !evalB(t, e, r) {
		t.Error("BETWEEN not inclusive")
	}
}

func TestIn(t *testing.T) {
	r := rec(5, 0, "RAIL", 0)
	e := &In{X: col("s"), List: []Expr{lstr("AIR"), lstr("RAIL")}}
	if !evalB(t, e, r) {
		t.Error("IN membership failed")
	}
	e = &In{X: col("s"), List: []Expr{lstr("AIR"), lstr("SHIP")}}
	if evalB(t, e, r) {
		t.Error("IN non-membership failed")
	}
	e = &In{X: col("a"), List: []Expr{lint(1), lfloat(5.0)}}
	if !evalB(t, e, r) {
		t.Error("IN cross-kind numeric equality failed")
	}
}

func TestLike(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"RAIL", "RAIL", true},
		{"RAIL", "RAILX", false},
		{"RA%", "RAIL", true},
		{"%IL", "RAIL", true},
		{"%AI%", "RAIL", true},
		{"R_IL", "RAIL", true},
		{"R_IL", "RAAIL", false},
		{"%", "", true},
		{"%%", "anything", true},
		{"a%b%c", "aXXbYYc", true},
		{"a%b%c", "aXXbYY", false},
		{"_", "", false},
		{"", "", true},
		{"%foxes%", "quickly foxes haggle", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pattern, c.s); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v, want %v", c.pattern, c.s, got, c.want)
		}
	}
	r := rec(0, 0, "REG AIR", 0)
	if !evalB(t, &Like{X: col("s"), Pattern: "REG%"}, r) {
		t.Error("Like node failed")
	}
	// LIKE on non-string is false, not an error.
	if evalB(t, &Like{X: col("a"), Pattern: "%"}, r) {
		t.Error("Like on int should be false")
	}
}

func TestNullComparisonsAreFalse(t *testing.T) {
	s := data.NewSchema("x")
	r := data.NewRecord(s, []data.Value{data.Null()})
	e := bin(OpEq, &Column{Name: "x"}, lint(1))
	if b, err := EvalBool(e, r); err != nil || b {
		t.Fatalf("NULL = 1 evaluated to %v, %v", b, err)
	}
	e = &Between{X: &Column{Name: "x"}, Lo: lint(0), Hi: lint(2)}
	if b, _ := EvalBool(e, r); b {
		t.Fatal("NULL BETWEEN should be false")
	}
}

func TestNonBooleanPredicateErrors(t *testing.T) {
	r := rec(1, 2, "x", 0)
	if _, err := EvalBool(col("a"), r); err == nil {
		t.Fatal("integer used as predicate did not error")
	}
}

func TestStringRendering(t *testing.T) {
	e := bin(OpAnd,
		bin(OpGt, col("L_QUANTITY"), lint(50)),
		bin(OpEq, col("L_SHIPMODE"), lstr("RAIL")))
	want := "((L_QUANTITY > 50) AND (L_SHIPMODE = 'RAIL'))"
	if e.String() != want {
		t.Fatalf("String = %q, want %q", e.String(), want)
	}
	// Quote escaping.
	l := &Literal{Val: data.Str("o'neil")}
	if l.String() != "'o''neil'" {
		t.Fatalf("quoted literal = %q", l.String())
	}
}

func TestStringIsStableFingerprint(t *testing.T) {
	mk := func() Expr {
		return bin(OpOr,
			&Between{X: col("f"), Lo: lfloat(0.1), Hi: lfloat(0.2)},
			&In{X: col("s"), List: []Expr{lstr("A"), lstr("B")}})
	}
	if mk().String() != mk().String() {
		t.Fatal("identical trees render differently")
	}
}

func TestColumns(t *testing.T) {
	e := bin(OpAnd,
		bin(OpGt, bin(OpMul, col("a"), col("f")), lint(1)),
		&Like{X: col("s"), Pattern: "%"})
	got := Columns(e)
	sort.Strings(got)
	want := "A,F,S"
	if strings.Join(got, ",") != want {
		t.Fatalf("Columns = %v, want %s", got, want)
	}
}

func TestValidate(t *testing.T) {
	e := bin(OpEq, col("a"), lint(1))
	if err := Validate(e, testSchema); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	e = bin(OpEq, col("missing"), lint(1))
	if err := Validate(e, testSchema); err == nil {
		t.Fatal("Validate accepted unknown column")
	}
}
