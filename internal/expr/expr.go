// Package expr defines the expression AST shared by the mini-Hive query
// layer and the dataset planner: column references, literals, arithmetic,
// comparisons, boolean connectives, BETWEEN, IN and LIKE, with an
// interpreter over data.Record rows.
package expr

import (
	"fmt"
	"strings"

	"dynamicmr/internal/data"
)

// Expr is a node of the expression tree. Implementations are immutable
// and safe for concurrent evaluation.
type Expr interface {
	// Eval computes the expression's value for a record.
	Eval(rec data.Record) (data.Value, error)
	// String renders the expression in re-parseable SQL syntax; two
	// structurally identical expressions render identically, so the
	// string doubles as a fingerprint.
	String() string
}

// Column references a record field by (case-insensitive) name.
type Column struct{ Name string }

// Eval implements Expr.
func (c *Column) Eval(rec data.Record) (data.Value, error) {
	v, ok := rec.Get(c.Name)
	if !ok {
		return data.Null(), fmt.Errorf("expr: unknown column %q", c.Name)
	}
	return v, nil
}

// String implements Expr.
func (c *Column) String() string { return strings.ToUpper(c.Name) }

// Literal is a constant value.
type Literal struct{ Val data.Value }

// Eval implements Expr.
func (l *Literal) Eval(data.Record) (data.Value, error) { return l.Val, nil }

// String implements Expr.
func (l *Literal) String() string {
	if l.Val.Kind() == data.KindString {
		return "'" + strings.ReplaceAll(l.Val.AsString(), "'", "''") + "'"
	}
	return l.Val.String()
}

// BinaryOp enumerates binary operators.
type BinaryOp uint8

// Binary operators, in no particular precedence order (precedence is a
// parser concern).
const (
	OpAdd BinaryOp = iota
	OpSub
	OpMul
	OpDiv
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAnd
	OpOr
)

var opNames = map[BinaryOp]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/",
	OpEq: "=", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAnd: "AND", OpOr: "OR",
}

// String returns the operator's SQL spelling.
func (op BinaryOp) String() string { return opNames[op] }

// Binary applies a binary operator to two sub-expressions.
type Binary struct {
	Op   BinaryOp
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(rec data.Record) (data.Value, error) {
	switch b.Op {
	case OpAnd, OpOr:
		lv, err := b.L.Eval(rec)
		if err != nil {
			return data.Null(), err
		}
		lb, err := truthy(lv)
		if err != nil {
			return data.Null(), err
		}
		// Short-circuit.
		if b.Op == OpAnd && !lb {
			return data.Bool(false), nil
		}
		if b.Op == OpOr && lb {
			return data.Bool(true), nil
		}
		rv, err := b.R.Eval(rec)
		if err != nil {
			return data.Null(), err
		}
		rb, err := truthy(rv)
		if err != nil {
			return data.Null(), err
		}
		return data.Bool(rb), nil
	}

	lv, err := b.L.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	rv, err := b.R.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	switch b.Op {
	case OpAdd, OpSub, OpMul, OpDiv:
		return arith(b.Op, lv, rv)
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		// SQL three-valued logic simplified: comparisons with NULL are false.
		if lv.IsNull() || rv.IsNull() {
			return data.Bool(false), nil
		}
		c, err := data.Compare(lv, rv)
		if err != nil {
			return data.Null(), err
		}
		switch b.Op {
		case OpEq:
			return data.Bool(c == 0), nil
		case OpNe:
			return data.Bool(c != 0), nil
		case OpLt:
			return data.Bool(c < 0), nil
		case OpLe:
			return data.Bool(c <= 0), nil
		case OpGt:
			return data.Bool(c > 0), nil
		default:
			return data.Bool(c >= 0), nil
		}
	}
	return data.Null(), fmt.Errorf("expr: unknown operator %v", b.Op)
}

// String implements Expr.
func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func arith(op BinaryOp, l, r data.Value) (data.Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return data.Null(), fmt.Errorf("expr: arithmetic on non-numeric values %v %s %v", l, op, r)
	}
	// Integer arithmetic stays integral except division.
	if l.Kind() == data.KindInt && r.Kind() == data.KindInt && op != OpDiv {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case OpAdd:
			return data.Int(a + b), nil
		case OpSub:
			return data.Int(a - b), nil
		case OpMul:
			return data.Int(a * b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case OpAdd:
		return data.Float(a + b), nil
	case OpSub:
		return data.Float(a - b), nil
	case OpMul:
		return data.Float(a * b), nil
	case OpDiv:
		if b == 0 {
			return data.Null(), fmt.Errorf("expr: division by zero")
		}
		return data.Float(a / b), nil
	}
	return data.Null(), fmt.Errorf("expr: bad arithmetic operator %v", op)
}

// Not negates a boolean sub-expression.
type Not struct{ X Expr }

// Eval implements Expr.
func (n *Not) Eval(rec data.Record) (data.Value, error) {
	v, err := n.X.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	b, err := truthy(v)
	if err != nil {
		return data.Null(), err
	}
	return data.Bool(!b), nil
}

// String implements Expr.
func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.X) }

// Neg is unary numeric negation.
type Neg struct{ X Expr }

// Eval implements Expr.
func (n *Neg) Eval(rec data.Record) (data.Value, error) {
	v, err := n.X.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	switch v.Kind() {
	case data.KindInt:
		return data.Int(-v.AsInt()), nil
	case data.KindFloat:
		return data.Float(-v.AsFloat()), nil
	default:
		return data.Null(), fmt.Errorf("expr: cannot negate %s", v.Kind())
	}
}

// String implements Expr.
func (n *Neg) String() string { return fmt.Sprintf("(-%s)", n.X) }

// Between tests Lo <= X <= Hi.
type Between struct{ X, Lo, Hi Expr }

// Eval implements Expr.
func (b *Between) Eval(rec data.Record) (data.Value, error) {
	x, err := b.X.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	lo, err := b.Lo.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	hi, err := b.Hi.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	if x.IsNull() || lo.IsNull() || hi.IsNull() {
		return data.Bool(false), nil
	}
	c1, err := data.Compare(lo, x)
	if err != nil {
		return data.Null(), err
	}
	c2, err := data.Compare(x, hi)
	if err != nil {
		return data.Null(), err
	}
	return data.Bool(c1 <= 0 && c2 <= 0), nil
}

// String implements Expr.
func (b *Between) String() string {
	return fmt.Sprintf("(%s BETWEEN %s AND %s)", b.X, b.Lo, b.Hi)
}

// In tests membership of X in a literal list.
type In struct {
	X    Expr
	List []Expr
}

// Eval implements Expr.
func (in *In) Eval(rec data.Record) (data.Value, error) {
	x, err := in.X.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	for _, e := range in.List {
		v, err := e.Eval(rec)
		if err != nil {
			return data.Null(), err
		}
		if data.Equal(x, v) {
			return data.Bool(true), nil
		}
	}
	return data.Bool(false), nil
}

// String implements Expr.
func (in *In) String() string {
	parts := make([]string, len(in.List))
	for i, e := range in.List {
		parts[i] = e.String()
	}
	return fmt.Sprintf("(%s IN (%s))", in.X, strings.Join(parts, ", "))
}

// Like matches X against a SQL LIKE pattern with % (any run) and _
// (any single character) wildcards.
type Like struct {
	X       Expr
	Pattern string
}

// Eval implements Expr.
func (l *Like) Eval(rec data.Record) (data.Value, error) {
	x, err := l.X.Eval(rec)
	if err != nil {
		return data.Null(), err
	}
	if x.Kind() != data.KindString {
		return data.Bool(false), nil
	}
	return data.Bool(likeMatch(l.Pattern, x.AsString())), nil
}

// String implements Expr.
func (l *Like) String() string {
	return fmt.Sprintf("(%s LIKE '%s')", l.X, strings.ReplaceAll(l.Pattern, "'", "''"))
}

// likeMatch implements LIKE with % and _ via iterative backtracking
// (the classic two-pointer glob algorithm, linear in practice).
func likeMatch(pattern, s string) bool {
	p, si := 0, 0
	star, starSi := -1, 0
	for si < len(s) {
		switch {
		case p < len(pattern) && (pattern[p] == '_' || pattern[p] == s[si]):
			p++
			si++
		case p < len(pattern) && pattern[p] == '%':
			star, starSi = p, si
			p++
		case star >= 0:
			starSi++
			si = starSi
			p = star + 1
		default:
			return false
		}
	}
	for p < len(pattern) && pattern[p] == '%' {
		p++
	}
	return p == len(pattern)
}

func truthy(v data.Value) (bool, error) {
	switch v.Kind() {
	case data.KindBool:
		return v.AsBool(), nil
	case data.KindNull:
		return false, nil
	default:
		return false, fmt.Errorf("expr: %s value used as boolean", v.Kind())
	}
}

// EvalBool evaluates e as a predicate over rec; non-boolean results are
// an error.
func EvalBool(e Expr, rec data.Record) (bool, error) {
	v, err := e.Eval(rec)
	if err != nil {
		return false, err
	}
	return truthy(v)
}

// Columns returns the set of column names referenced by the expression.
func Columns(e Expr) []string {
	set := map[string]bool{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Column:
			set[strings.ToUpper(x.Name)] = true
		case *Binary:
			walk(x.L)
			walk(x.R)
		case *Not:
			walk(x.X)
		case *Neg:
			walk(x.X)
		case *Between:
			walk(x.X)
			walk(x.Lo)
			walk(x.Hi)
		case *In:
			walk(x.X)
			for _, v := range x.List {
				walk(v)
			}
		case *Like:
			walk(x.X)
		}
	}
	walk(e)
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	return out
}

// Validate checks that every referenced column exists in the schema.
func Validate(e Expr, schema *data.Schema) error {
	for _, c := range Columns(e) {
		if !schema.Has(c) {
			return fmt.Errorf("expr: column %q not in schema", c)
		}
	}
	return nil
}
