package core

import (
	"context"
	"fmt"
	"log/slog"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/vlog"
)

// Decision records one Input Provider consultation, for diagnostics and
// experiments.
type Decision struct {
	// Time of the evaluation (virtual seconds).
	Time float64
	// Response returned by the provider.
	Response Response
	// Added is the number of partitions handed to the job.
	Added int
	// GrabLimit in force at this step.
	GrabLimit int
	// CompletedMaps at the time of the evaluation.
	CompletedMaps int
	// Policy is the name of the policy governing this step (for
	// adaptive providers, the policy selected at this evaluation).
	Policy string
}

// JobClient submits and supervises one dynamic job (§IV): it
// initialises the client-side Input Provider, submits the initial
// input, then — at every EvaluationInterval, when the work threshold is
// met — retrieves job status and cluster load from the JobTracker and
// relays the provider's decision back as AddSplits or EndOfInput.
//
// The provider executes inside the client; a panicking provider is
// isolated (recorded in ProviderError) and the job fails safe by
// closing its input, so the JobTracker — a single point of failure for
// the cluster — is never exposed to pluggable logic.
type JobClient struct {
	jt       *mapreduce.JobTracker
	policy   *Policy
	provider InputProvider
	job      *mapreduce.Job

	totalSplits     int
	addedSplits     int
	completedAtEval int
	decisions       []Decision
	providerErr     error
	inputClosed     bool
}

// SubmitDynamic configures spec as a dynamic job under the policy,
// obtains the initial input from the provider, submits, and starts the
// evaluation loop. allSplits is the job's complete input (what a static
// submission would process).
func SubmitDynamic(jt *mapreduce.JobTracker, spec mapreduce.JobSpec, allSplits []mapreduce.Split,
	provider InputProvider, policy *Policy) (*JobClient, error) {
	if provider == nil {
		return nil, fmt.Errorf("core: dynamic job needs an InputProvider")
	}
	if policy == nil {
		return nil, fmt.Errorf("core: dynamic job needs a Policy")
	}
	if err := policy.Compile(); err != nil {
		return nil, err
	}
	conf := spec.Conf
	if conf == nil {
		conf = mapreduce.NewJobConf()
		spec.Conf = conf
	}
	conf.SetBool(mapreduce.ConfDynamicJob, true)
	conf.Set(mapreduce.ConfDynamicPolicy, policy.Name)
	if !conf.Has(mapreduce.ConfDynamicProvider) {
		conf.Set(mapreduce.ConfDynamicProvider, fmt.Sprintf("%T", provider))
	}

	c := &JobClient{jt: jt, policy: policy, provider: provider, totalSplits: len(allSplits)}

	if ap, ok := provider.(*AdaptiveProvider); ok && ap.Tracer == nil {
		ap.Tracer = jt.Tracer()
	}

	if err := provider.Init(allSplits, conf); err != nil {
		return nil, fmt.Errorf("core: provider init: %w", err)
	}

	cs := jt.ClusterStatus()
	grab, err := policy.GrabLimitWith(cs.AvailableMapSlots(), cs.TotalMapSlots, cs.QueuedMapTasks)
	if err != nil {
		return nil, err
	}
	initial := c.safeInitial(grab)
	if len(initial) > grab {
		initial = initial[:grab]
	}
	c.addedSplits = len(initial)

	c.job = jt.Submit(spec, initial)
	// Residency hint: the splits this session has grabbed are its hot
	// working set (no-op unless the runtime has a resident store).
	jt.HintResidency(initial)
	c.auditDecision(trace.VerdictInit, jt.Status(c.job), cs, grab, c.addedSplits, 0)

	if c.providerErr != nil || c.addedSplits >= c.totalSplits {
		// Nothing more can ever be added: close input immediately so
		// the job behaves like a static one (the Hadoop policy's mode).
		c.closeInput()
	} else {
		jt.Engine().After(policy.EvaluationIntervalS, c.evaluate)
	}
	return c, nil
}

// Job returns the supervised job.
func (c *JobClient) Job() *mapreduce.Job { return c.job }

// Policy returns the governing policy.
func (c *JobClient) Policy() *Policy { return c.policy }

// Decisions returns the provider consultation log.
func (c *JobClient) Decisions() []Decision { return c.decisions }

// Evaluations returns how many times the provider was consulted after
// submission.
func (c *JobClient) Evaluations() int { return len(c.decisions) }

// ProviderError reports a provider panic, if one was isolated.
func (c *JobClient) ProviderError() error { return c.providerErr }

// InputClosed reports whether end-of-input has been declared.
func (c *JobClient) InputClosed() bool { return c.inputClosed }

func (c *JobClient) closeInput() {
	if c.inputClosed {
		return
	}
	c.inputClosed = true
	if err := c.jt.EndOfInput(c.job); err != nil && c.providerErr == nil {
		c.providerErr = err
	}
}

// policyName resolves the name of the policy governing the current
// step: providers that select policies at runtime (AdaptiveProvider)
// report their latest pick, everything else the submission policy.
func (c *JobClient) policyName() string {
	if cp, ok := c.provider.(interface{ CurrentPolicy() *Policy }); ok {
		if p := cp.CurrentPolicy(); p != nil {
			return p.Name
		}
	}
	return c.policy.Name
}

// auditDecision records one Input Provider evaluation — its inputs and
// verdict — in the tracer's audit log and the structured log stream.
// No-op when both tracing and logging are disabled.
func (c *JobClient) auditDecision(verdict string, status mapreduce.JobStatus,
	cs mapreduce.ClusterStatus, grab, added int, progressPct float64) {
	if log := c.jt.Logger(); log.Enabled(context.Background(), slog.LevelDebug) {
		args := []any{
			slog.String(vlog.KeyComponent, "jobclient"),
			slog.Int(vlog.KeyJob, status.JobID),
			slog.String(vlog.KeyPolicy, c.policyName()),
			slog.String(vlog.KeyVerdict, verdict),
			slog.Int("added", added),
			slog.Int("grab_limit", grab),
			slog.Int("completed_maps", status.CompletedMaps),
			slog.Int("pending_maps", status.PendingMaps),
			slog.Int("free_slots", cs.AvailableMapSlots()),
		}
		if qid := c.job.Conf.Get(mapreduce.ConfQueryID, ""); qid != "" {
			args = append(args, slog.String(vlog.KeyQueryID, qid))
		}
		log.Debug("input provider decision", args...)
	}
	tr := c.jt.Tracer()
	if !tr.Enabled() {
		return
	}
	tr.RecordPolicyDecision(trace.PolicyDecision{
		Time:             c.jt.Engine().Now(),
		JobID:            status.JobID,
		Policy:           c.policyName(),
		Verdict:          verdict,
		Added:            added,
		GrabLimit:        grab,
		ScheduledMaps:    status.ScheduledMaps,
		CompletedMaps:    status.CompletedMaps,
		PendingMaps:      status.PendingMaps,
		RunningMaps:      status.RunningMaps,
		MapInputRecords:  status.MapInputRecords,
		MapOutputRecords: status.MapOutputRecords,
		TotalSlots:       cs.TotalMapSlots,
		FreeSlots:        cs.AvailableMapSlots(),
		QueuedTasks:      cs.QueuedMapTasks,
		WorkThresholdPct: c.policy.WorkThresholdPct,
		ProgressPct:      progressPct,
	})
}

// safeInitial calls provider.InitialSplits with panic isolation.
func (c *JobClient) safeInitial(grab int) (out []mapreduce.Split) {
	defer func() {
		if r := recover(); r != nil {
			c.providerErr = fmt.Errorf("core: input provider panicked in InitialSplits: %v", r)
			out = nil
		}
	}()
	return c.provider.InitialSplits(grab)
}

// safeNext calls provider.Next with panic isolation.
func (c *JobClient) safeNext(rep Report) (resp Response, splits []mapreduce.Split) {
	defer func() {
		if r := recover(); r != nil {
			c.providerErr = fmt.Errorf("core: input provider panicked in Next: %v", r)
			resp, splits = EndOfInput, nil
		}
	}()
	return c.provider.Next(rep)
}

// evaluate is one tick of the evaluation loop.
func (c *JobClient) evaluate() {
	if c.job.Done() || c.inputClosed {
		return
	}
	status := c.jt.Status(c.job)

	// Work threshold (§III-B): require enough newly finished partitions
	// since the last provider consultation. Liveness override: when
	// every scheduled map has finished, waiting for more work to
	// complete would stall the job forever, so the provider is
	// consulted regardless (documented deviation; the paper does not
	// discuss the stall).
	progressPct := 0.0
	if c.totalSplits > 0 {
		progressPct = float64(status.CompletedMaps-c.completedAtEval) * 100 / float64(c.totalSplits)
	}
	idle := status.PendingMaps == 0 && status.RunningMaps == 0
	if !idle && c.policy.WorkThresholdPct > 0 && c.totalSplits > 0 {
		if progressPct < c.policy.WorkThresholdPct {
			c.auditDecision(trace.VerdictSkip, status, c.jt.ClusterStatus(), 0, 0, progressPct)
			c.jt.Engine().After(c.policy.EvaluationIntervalS, c.evaluate)
			return
		}
	}

	cs := c.jt.ClusterStatus()
	grab, err := c.policy.GrabLimitWith(cs.AvailableMapSlots(), cs.TotalMapSlots, cs.QueuedMapTasks)
	if err != nil {
		c.providerErr = err
		c.closeInput()
		return
	}
	rep := Report{Job: status, Cluster: cs, GrabLimit: grab}
	resp, splits := c.safeNext(rep)
	c.completedAtEval = status.CompletedMaps

	d := Decision{
		Time:          c.jt.Engine().Now(),
		Response:      resp,
		GrabLimit:     grab,
		CompletedMaps: status.CompletedMaps,
		Policy:        c.policyName(),
	}

	switch resp {
	case EndOfInput:
		c.decisions = append(c.decisions, d)
		c.auditDecision(trace.VerdictEOI, status, cs, grab, 0, progressPct)
		c.closeInput()
		return
	case InputAvailable:
		if len(splits) > grab {
			splits = splits[:grab]
		}
		if len(splits) > 0 {
			if err := c.jt.AddSplits(c.job, splits); err != nil {
				c.providerErr = err
				c.closeInput()
				return
			}
			c.addedSplits += len(splits)
			// GROW verdict: keep the session's expanding working set hot
			// in the resident store.
			c.jt.HintResidency(splits)
		}
		d.Added = len(splits)
		c.decisions = append(c.decisions, d)
		c.auditDecision(trace.VerdictGrow, status, cs, grab, len(splits), progressPct)
		if c.addedSplits >= c.totalSplits {
			// Everything scheduled; no future increment is possible.
			c.closeInput()
			return
		}
	case NoInputAvailable:
		c.decisions = append(c.decisions, d)
		c.auditDecision(trace.VerdictWait, status, cs, grab, 0, progressPct)
	}
	c.jt.Engine().After(c.policy.EvaluationIntervalS, c.evaluate)
}
