package core

import (
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
)

type rig struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *dfs.DFS
	jt  *mapreduce.JobTracker
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	return &rig{eng: eng, cl: cl, fs: dfs.New(cl),
		jt: mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), nil)}
}

var vSchema = data.NewSchema("V")

func (r *rig) file(t *testing.T, name string, blocks, recsEach int) []mapreduce.Split {
	t.Helper()
	var srcs []data.Source
	for b := 0; b < blocks; b++ {
		recs := make([]data.Record, recsEach)
		for i := range recs {
			recs[i] = data.NewRecord(vSchema, []data.Value{data.Int(int64(b*recsEach + i))})
		}
		srcs = append(srcs, data.NewSliceSource(vSchema, recs))
	}
	f, err := r.fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return mapreduce.SplitsForFile(f)
}

func passMapper(*mapreduce.JobConf) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec data.Record, out *mapreduce.Collector) error {
		out.Emit("k", rec)
		return nil
	})
}

// scriptedProvider walks a fixed grab schedule, ending input when the
// schedule is exhausted or `stopAfter` maps completed.
type scriptedProvider struct {
	all       []mapreduce.Split
	cursor    int
	schedule  []int // partitions to add at each Next
	step      int
	stopAfter int // end input once this many maps completed (0=disabled)
	initial   int
	inits     int
	reports   []Report
}

func (p *scriptedProvider) Init(all []mapreduce.Split, conf *mapreduce.JobConf) error {
	p.all = all
	p.inits++
	return nil
}

func (p *scriptedProvider) InitialSplits(grab int) []mapreduce.Split {
	n := p.initial
	if n > grab {
		n = grab
	}
	if n > len(p.all) {
		n = len(p.all)
	}
	p.cursor = n
	return p.all[:n]
}

func (p *scriptedProvider) Next(rep Report) (Response, []mapreduce.Split) {
	p.reports = append(p.reports, rep)
	if p.stopAfter > 0 && rep.Job.CompletedMaps >= p.stopAfter {
		return EndOfInput, nil
	}
	if p.step >= len(p.schedule) {
		return EndOfInput, nil
	}
	n := p.schedule[p.step]
	p.step++
	if n == 0 {
		return NoInputAvailable, nil
	}
	if p.cursor+n > len(p.all) {
		n = len(p.all) - p.cursor
	}
	out := p.all[p.cursor : p.cursor+n]
	p.cursor += n
	return InputAvailable, out
}

func la(t *testing.T) *Policy {
	t.Helper()
	p, err := DefaultRegistry().Get(PolicyLA)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDynamicJobGrowsIncrementally(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 20, 50)
	prov := &scriptedProvider{initial: 4, schedule: []int{4, 4, 0, 4}}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, la(t))
	if err != nil {
		t.Fatal(err)
	}
	job := c.Job()
	if !mapreduce.RunUntilDone(r.eng, job, 1e6) {
		t.Fatalf("job did not finish; state=%v decisions=%v providerErr=%v",
			job.State(), c.Decisions(), c.ProviderError())
	}
	if prov.inits != 1 {
		t.Fatalf("provider initialised %d times", prov.inits)
	}
	// 4 initial + 4+4+0+4 increments = 16 scheduled, then EndOfInput.
	if job.ScheduledMaps() != 16 {
		t.Fatalf("scheduled = %d, want 16", job.ScheduledMaps())
	}
	if job.CompletedMaps() != 16 {
		t.Fatalf("completed = %d", job.CompletedMaps())
	}
	if len(job.Output()) != 16*50 {
		t.Fatalf("output = %d", len(job.Output()))
	}
	if !c.InputClosed() {
		t.Fatal("input never closed")
	}
	// Decision log captured every provider consultation.
	if c.Evaluations() < 5 {
		t.Fatalf("evaluations = %d, want >= 5", c.Evaluations())
	}
}

func TestConfStampedDynamic(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 4, 10)
	prov := &scriptedProvider{initial: 4}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, la(t))
	if err != nil {
		t.Fatal(err)
	}
	conf := c.Job().Conf
	if !conf.GetBool(mapreduce.ConfDynamicJob, false) {
		t.Error("dynamic.job not set")
	}
	if conf.Get(mapreduce.ConfDynamicPolicy, "") != PolicyLA {
		t.Error("dynamic.job.policy not set")
	}
	if conf.Get(mapreduce.ConfDynamicProvider, "") == "" {
		t.Error("dynamic.input.provider not set")
	}
	mapreduce.RunUntilDone(r.eng, c.Job(), 1e6)
}

func TestInitialGrabRespectsPolicy(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 40, 10)
	// C on an idle 40-slot cluster: grab limit 4.
	pol, _ := DefaultRegistry().Get(PolicyC)
	prov := &scriptedProvider{initial: 40} // provider asks for everything
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, pol)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Job().ScheduledMaps(); got != 4 {
		t.Fatalf("initial scheduled = %d, want 4 (grab-limited)", got)
	}
	mapreduce.RunUntilDone(r.eng, c.Job(), 1e6)
}

func TestHadoopPolicyAddsEverythingUpFront(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 30, 10)
	pol, _ := DefaultRegistry().Get(PolicyHadoop)
	prov := &scriptedProvider{initial: 30}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, pol)
	if err != nil {
		t.Fatal(err)
	}
	if c.Job().ScheduledMaps() != 30 {
		t.Fatalf("scheduled = %d, want all 30", c.Job().ScheduledMaps())
	}
	if !c.InputClosed() {
		t.Fatal("input should close immediately when everything is scheduled")
	}
	if !mapreduce.RunUntilDone(r.eng, c.Job(), 1e6) {
		t.Fatal("job did not finish")
	}
	if c.Evaluations() != 0 {
		t.Fatalf("Hadoop-policy job consulted the provider %d times", c.Evaluations())
	}
}

func TestEndOfInputStopsEvaluation(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 20, 10)
	prov := &scriptedProvider{initial: 2, stopAfter: 2, schedule: []int{2, 2, 2, 2, 2, 2}}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, la(t))
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(r.eng, c.Job(), 1e6) {
		t.Fatal("job did not finish")
	}
	// Once completed >= 2 the provider said EndOfInput; the client must
	// not consult it afterwards.
	last := c.Decisions()[len(c.Decisions())-1]
	if last.Response != EndOfInput {
		t.Fatalf("last decision = %v", last.Response)
	}
	if c.Job().ScheduledMaps() >= 20 {
		t.Fatal("job consumed all input despite EndOfInput")
	}
}

func TestGrabLimitTruncatesProviderSplits(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 40, 10)
	// Provider tries to add 40 at once under C (limit 4 on idle cluster).
	pol, _ := DefaultRegistry().Get(PolicyC)
	prov := &scriptedProvider{initial: 1, schedule: []int{39}}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(r.eng, c.Job(), 1e6) {
		t.Fatal("job did not finish")
	}
	for _, d := range c.Decisions() {
		if d.Added > d.GrabLimit {
			t.Fatalf("added %d > grab limit %d", d.Added, d.GrabLimit)
		}
	}
}

func TestPanickingProviderIsIsolated(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 10, 10)
	prov := &panicProvider{all: splits}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, la(t))
	if err != nil {
		t.Fatal(err)
	}
	// The job completes with whatever input it had; the JobTracker
	// survives and can run further jobs.
	if !mapreduce.RunUntilDone(r.eng, c.Job(), 1e6) {
		t.Fatal("job did not reach terminal state after provider panic")
	}
	if c.ProviderError() == nil {
		t.Fatal("provider panic not recorded")
	}
	follow := r.jt.Submit(mapreduce.JobSpec{NewMapper: passMapper}, r.file(t, "in2", 2, 5))
	if !mapreduce.RunUntilDone(r.eng, follow, 1e6) {
		t.Fatal("JobTracker unusable after provider panic")
	}
}

type panicProvider struct{ all []mapreduce.Split }

func (p *panicProvider) Init([]mapreduce.Split, *mapreduce.JobConf) error { return nil }
func (p *panicProvider) InitialSplits(grab int) []mapreduce.Split {
	if grab > 2 {
		grab = 2
	}
	return p.all[:grab]
}
func (p *panicProvider) Next(Report) (Response, []mapreduce.Split) {
	panic("buggy provider")
}

func TestWorkThresholdSkipsEvaluations(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 40, 400)
	// Custom policy: huge threshold so intermediate evaluations are
	// skipped until maps complete; liveness still closes the job.
	pol := &Policy{Name: "strict", EvaluationIntervalS: 1, WorkThresholdPct: 50,
		GrabLimitExpr: "10"}
	prov := &scriptedProvider{initial: 10, schedule: []int{0, 0, 0}}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, pol)
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(r.eng, c.Job(), 1e6) {
		t.Fatal("job did not finish")
	}
	// With a 50% threshold over 40 splits (= 20 maps) and only 10 maps
	// ever scheduled, the threshold is never met by progress; only the
	// idle liveness override may consult the provider. The provider's
	// first consult happens once all 10 are done.
	if len(prov.reports) == 0 {
		t.Fatal("provider never consulted (liveness override broken)")
	}
	first := prov.reports[0]
	if first.Job.CompletedMaps != 10 {
		t.Fatalf("first consultation at %d completed maps, want 10 (threshold skip broken)",
			first.Job.CompletedMaps)
	}
}

func TestReportCarriesClusterLoad(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 10, 10)
	prov := &scriptedProvider{initial: 2, schedule: []int{2}}
	c, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits, prov, la(t))
	if err != nil {
		t.Fatal(err)
	}
	mapreduce.RunUntilDone(r.eng, c.Job(), 1e6)
	if len(prov.reports) == 0 {
		t.Fatal("no reports")
	}
	rep := prov.reports[0]
	if rep.Cluster.TotalMapSlots != 40 {
		t.Fatalf("report TS = %d", rep.Cluster.TotalMapSlots)
	}
	if rep.GrabLimit <= 0 {
		t.Fatalf("report grab limit = %d", rep.GrabLimit)
	}
	if rep.Job.JobID != c.Job().ID {
		t.Fatal("report job mismatch")
	}
}
