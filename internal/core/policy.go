// Package core implements the paper's contribution: the incremental
// job-expansion mechanism (§III) and its policies (Table I). A dynamic
// job begins with a subset of its input partitions; an Input Provider,
// invoked by the client-side JobClient at each evaluation interval with
// job statistics and cluster load, decides to end input, add
// partitions, or wait. Growth is governed by a Policy: an evaluation
// interval, a work threshold, and a grab-limit formula over AS
// (available map slots) and TS (total map slots).
package core

import (
	"encoding/xml"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"dynamicmr/internal/policyexpr"
)

// Policy governs a dynamic job's growth (§III-B).
type Policy struct {
	// Name identifies the policy (the dynamic.job.policy conf value).
	Name string
	// Description is the Table I prose.
	Description string
	// EvaluationIntervalS is the period between Input Provider
	// invocations (the paper fixes 4 s for all non-Hadoop policies).
	EvaluationIntervalS float64
	// WorkThresholdPct is the minimum work — completed partitions since
	// the last evaluation, as a percentage of the job's total input
	// partitions — required before the provider is re-invoked.
	WorkThresholdPct float64
	// GrabLimitExpr bounds the partitions added per step, as a formula
	// over AS and TS ("inf" = unbounded).
	GrabLimitExpr string

	// compiled holds the parsed GrabLimitExpr. Registry policies are
	// shared across concurrently-running experiment cells, so the lazy
	// compile path must be race-free: the pointer is published
	// atomically and Expr.Eval is a read-only walk.
	compiled atomic.Pointer[policyexpr.Expr]
}

// Compile parses GrabLimitExpr; it must be called (directly or via
// Registry/Builtins) before GrabLimit. Recompiling an already-compiled
// policy is a no-op unless the expression text changed, so concurrent
// submitters sharing one registry never re-publish the pointer.
func (p *Policy) Compile() error {
	if p.Name == "" {
		return fmt.Errorf("core: policy needs a name")
	}
	if p.EvaluationIntervalS <= 0 {
		return fmt.Errorf("core: policy %q needs a positive evaluation interval", p.Name)
	}
	if p.WorkThresholdPct < 0 || p.WorkThresholdPct > 100 {
		return fmt.Errorf("core: policy %q work threshold %v outside [0,100]", p.Name, p.WorkThresholdPct)
	}
	if e := p.compiled.Load(); e != nil && e.String() == p.GrabLimitExpr {
		return nil
	}
	e, err := policyexpr.Compile(p.GrabLimitExpr)
	if err != nil {
		return fmt.Errorf("core: policy %q grab limit: %w", p.Name, err)
	}
	p.compiled.Store(e)
	return nil
}

// GrabLimit evaluates the policy's grab limit for the given slot
// availability. The result is a whole number of partitions (ceil of the
// formula), never negative; math.MaxInt for unbounded.
func (p *Policy) GrabLimit(availableSlots, totalSlots int) (int, error) {
	return p.GrabLimitWith(availableSlots, totalSlots, 0)
}

// GrabLimitWith additionally binds QT — the cluster-wide queued
// (scheduled but slot-less) map task count — for formulas that react
// to backlog rather than instantaneous slot availability (the adaptive
// envelope uses it; Table I's formulas ignore it).
func (p *Policy) GrabLimitWith(availableSlots, totalSlots, queuedTasks int) (int, error) {
	e := p.compiled.Load()
	if e == nil || e.String() != p.GrabLimitExpr {
		if err := p.Compile(); err != nil {
			return 0, err
		}
		e = p.compiled.Load()
	}
	v, err := e.Eval(policyexpr.Env{
		"AS": float64(availableSlots),
		"TS": float64(totalSlots),
		"QT": float64(queuedTasks),
	})
	if err != nil {
		return 0, err
	}
	if math.IsInf(v, 1) {
		return math.MaxInt, nil
	}
	if v < 0 {
		return 0, nil
	}
	return int(math.Ceil(v - 1e-9)), nil
}

// Unbounded reports whether the grab limit is infinite (the Hadoop
// policy).
func (p *Policy) Unbounded() bool {
	lim, err := p.GrabLimit(0, 1)
	return err == nil && lim == math.MaxInt
}

// Builtin policy names (Table I).
const (
	PolicyHadoop = "Hadoop"
	PolicyHA     = "HA"
	PolicyMA     = "MA"
	PolicyLA     = "LA"
	PolicyC      = "C"
)

// Builtins returns the five Table I policies, compiled. The paper's MA
// and LA rows print "(AS < 0) ?" — a typo for AS > 0 given the prose
// ("either one-half of the available map slots (AS) or one-fifth of the
// total map slots (TS)"); we implement the prose reading.
func Builtins() []*Policy {
	ps := []*Policy{
		{
			Name:                PolicyHadoop,
			Description:         "Hadoop's default behaviour: all input in a single step",
			EvaluationIntervalS: 4,
			WorkThresholdPct:    0,
			GrabLimitExpr:       "inf",
		},
		{
			Name:                PolicyHA,
			Description:         "Highly Aggressive policy",
			EvaluationIntervalS: 4,
			WorkThresholdPct:    0,
			GrabLimitExpr:       "max(0.5*TS, AS)",
		},
		{
			Name:                PolicyMA,
			Description:         "Mid Aggressive policy",
			EvaluationIntervalS: 4,
			WorkThresholdPct:    5,
			GrabLimitExpr:       "AS > 0 ? 0.5*AS : 0.2*TS",
		},
		{
			Name:                PolicyLA,
			Description:         "Less Aggressive policy",
			EvaluationIntervalS: 4,
			WorkThresholdPct:    10,
			GrabLimitExpr:       "AS > 0 ? 0.2*AS : 0.1*TS",
		},
		{
			Name:                PolicyC,
			Description:         "Conservative policy",
			EvaluationIntervalS: 4,
			WorkThresholdPct:    15,
			GrabLimitExpr:       "0.1*AS",
		},
	}
	for _, p := range ps {
		if err := p.Compile(); err != nil {
			panic(err)
		}
	}
	return ps
}

// Registry holds the available policies (the contents of policy.xml).
type Registry struct {
	byName map[string]*Policy
	order  []string
}

// NewRegistry builds a registry from compiled policies.
func NewRegistry(ps ...*Policy) (*Registry, error) {
	r := &Registry{byName: make(map[string]*Policy)}
	for _, p := range ps {
		if err := r.Add(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// DefaultRegistry returns a registry holding the Table I builtins.
func DefaultRegistry() *Registry {
	r, err := NewRegistry(Builtins()...)
	if err != nil {
		panic(err)
	}
	return r
}

// Add compiles and registers a policy; duplicate names are an error.
func (r *Registry) Add(p *Policy) error {
	if err := p.Compile(); err != nil {
		return err
	}
	key := strings.ToLower(p.Name)
	if _, dup := r.byName[key]; dup {
		return fmt.Errorf("core: duplicate policy %q", p.Name)
	}
	r.byName[key] = p
	r.order = append(r.order, p.Name)
	return nil
}

// Get looks a policy up by name (case-insensitive).
func (r *Registry) Get(name string) (*Policy, error) {
	p, ok := r.byName[strings.ToLower(name)]
	if !ok {
		avail := append([]string(nil), r.order...)
		sort.Strings(avail)
		return nil, fmt.Errorf("core: unknown policy %q (available: %s)", name, strings.Join(avail, ", "))
	}
	return p, nil
}

// Names returns the registered policy names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }

// xmlPolicies is the policy.xml document layout (§IV: "the available
// policies are defined in a policy.xml file").
type xmlPolicies struct {
	XMLName  xml.Name    `xml:"policies"`
	Policies []xmlPolicy `xml:"policy"`
}

type xmlPolicy struct {
	Name               string  `xml:"name,attr"`
	Description        string  `xml:"description"`
	EvaluationInterval float64 `xml:"evaluationIntervalSeconds"`
	WorkThresholdPct   float64 `xml:"workThresholdPercent"`
	GrabLimit          string  `xml:"grabLimit"`
}

// PolicyXML renders the registry as a policy.xml document.
func (r *Registry) PolicyXML() ([]byte, error) {
	doc := xmlPolicies{}
	for _, name := range r.order {
		p := r.byName[strings.ToLower(name)]
		doc.Policies = append(doc.Policies, xmlPolicy{
			Name:               p.Name,
			Description:        p.Description,
			EvaluationInterval: p.EvaluationIntervalS,
			WorkThresholdPct:   p.WorkThresholdPct,
			GrabLimit:          p.GrabLimitExpr,
		})
	}
	out, err := xml.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append([]byte(xml.Header), append(out, '\n')...), nil
}

// ParsePolicyXML loads a policy.xml document into a new registry.
func ParsePolicyXML(doc []byte) (*Registry, error) {
	var parsed xmlPolicies
	if err := xml.Unmarshal(doc, &parsed); err != nil {
		return nil, fmt.Errorf("core: parsing policy.xml: %w", err)
	}
	r := &Registry{byName: make(map[string]*Policy)}
	for _, xp := range parsed.Policies {
		p := &Policy{
			Name:                xp.Name,
			Description:         xp.Description,
			EvaluationIntervalS: xp.EvaluationInterval,
			WorkThresholdPct:    xp.WorkThresholdPct,
			GrabLimitExpr:       xp.GrabLimit,
		}
		if err := r.Add(p); err != nil {
			return nil, err
		}
	}
	return r, nil
}
