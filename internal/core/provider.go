package core

import (
	"dynamicmr/internal/mapreduce"
)

// Response is the Input Provider's three-way answer (§III-A, Fig. 3).
type Response int

const (
	// EndOfInput: the job needs no further input; in-flight maps finish
	// and the reduce phase begins. The provider is not invoked again.
	EndOfInput Response = iota
	// InputAvailable: the provider supplies additional partitions.
	InputAvailable
	// NoInputAvailable: "wait and see" — reassess at the next
	// evaluation.
	NoInputAvailable
)

// String returns the paper's message name for the response.
func (r Response) String() string {
	switch r {
	case EndOfInput:
		return "end of input"
	case InputAvailable:
		return "input available"
	case NoInputAvailable:
		return "no input available"
	default:
		return "unknown"
	}
}

// Report is what the JobClient hands the Input Provider at each
// evaluation: job progress statistics, cluster load, and the grab limit
// the active policy allows for this step.
type Report struct {
	// Job is the job-status snapshot (completed maps, records
	// processed, map output produced, ...).
	Job mapreduce.JobStatus
	// Cluster is the capacity/load snapshot (TS, AS, running jobs).
	Cluster mapreduce.ClusterStatus
	// GrabLimit is the maximum number of partitions the policy permits
	// adding in this step (already evaluated from AS/TS).
	GrabLimit int
}

// InputProvider contains a dynamic job's logic for deciding input
// intake (§III-A). It is initialised with the job's complete input
// partition set, then consulted at each evaluation interval.
//
// Implementations run client-side (inside the JobClient, §IV), so a
// buggy provider cannot take down the JobTracker; the JobClient
// additionally isolates panics (see Run).
type InputProvider interface {
	// Init receives the complete input and the job configuration before
	// submission.
	Init(allSplits []mapreduce.Split, conf *mapreduce.JobConf) error
	// InitialSplits returns the splits forming the job's initial input,
	// at most grabLimit of them.
	InitialSplits(grabLimit int) []mapreduce.Split
	// Next assesses progress and answers with a response and, for
	// InputAvailable, the partitions to add (at most report.GrabLimit).
	Next(report Report) (Response, []mapreduce.Split)
}
