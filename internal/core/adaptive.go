package core

import (
	"fmt"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/trace"
)

// AdaptiveSelector implements the paper's §VII future-work proposal:
// "a more flexible model wherein a job could decide and change the
// policy at runtime, based on the discovered characteristics of the
// input data together with the existing load on the cluster."
//
// The selector re-picks a policy from an ordered spectrum (most
// conservative first) at every evaluation, from two signals:
//
//   - cluster load: the fraction of occupied map slots. A loaded
//     cluster pushes the job toward the conservative end (§III-B: "on
//     a more heavily loaded cluster, a job shall be cautious"), an
//     idle one toward the aggressive end ("resources would otherwise
//     be left idle").
//   - data yield: the observed match rate relative to what the job
//     needs. When observed selectivity is so low that most partitions
//     contribute nothing (the high-skew regime of §V-C), the selector
//     shifts one step more aggressive to compensate.
type AdaptiveSelector struct {
	// Spectrum orders candidate policies most-conservative first;
	// defaults to [C, LA, MA, HA].
	Spectrum []*Policy
	// LoadHigh and LoadLow bound the occupied-slot fraction that maps
	// onto the spectrum (defaults 0.75 / 0.25).
	LoadHigh, LoadLow float64

	switches  int
	lastIndex int
}

// NewAdaptiveSelector returns a selector over the default spectrum.
func NewAdaptiveSelector() *AdaptiveSelector {
	reg := DefaultRegistry()
	var spectrum []*Policy
	for _, name := range []string{PolicyC, PolicyLA, PolicyMA, PolicyHA} {
		p, err := reg.Get(name)
		if err != nil {
			panic(err)
		}
		spectrum = append(spectrum, p)
	}
	return &AdaptiveSelector{Spectrum: spectrum, LoadHigh: 0.75, LoadLow: 0.25, lastIndex: -1}
}

// Switches reports how many times the selection changed.
func (a *AdaptiveSelector) Switches() int { return a.switches }

// Pick selects the policy for the current conditions. estSelectivity
// is the job's observed match rate (<0 when unknown); neededRate is
// the match rate that would let the job finish with roughly the input
// it already has (<=0 when unknown).
func (a *AdaptiveSelector) Pick(cs mapreduce.ClusterStatus, estSelectivity, neededRate float64) *Policy {
	if len(a.Spectrum) == 0 {
		panic("core: adaptive selector with empty spectrum")
	}
	// Load counts queued (scheduled but slot-less) tasks as demand, not
	// just occupied slots: at the instant one job finishes, slots free
	// up briefly while other jobs' backlogs still saturate the cluster,
	// and instantaneous occupancy alone would misread that as idle.
	load := 0.0
	if cs.TotalMapSlots > 0 {
		load = float64(cs.OccupiedMapSlots+cs.QueuedMapTasks) / float64(cs.TotalMapSlots)
		if load > 1 {
			load = 1
		}
	}
	// Map load onto the spectrum: idle -> most aggressive (last),
	// saturated -> most conservative (first).
	span := a.LoadHigh - a.LoadLow
	var frac float64 // 0 = aggressive end, 1 = conservative end
	switch {
	case span <= 0 || load >= a.LoadHigh:
		frac = 1
	case load <= a.LoadLow:
		frac = 0
	default:
		frac = (load - a.LoadLow) / span
	}
	idx := int(float64(len(a.Spectrum)-1) * (1 - frac))

	// Starved for matches: step one notch more aggressive, since many
	// partitions are yielding nothing (high-skew compensation, §V-C).
	if estSelectivity >= 0 && neededRate > 0 && estSelectivity < neededRate/2 {
		idx++
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(a.Spectrum) {
		idx = len(a.Spectrum) - 1
	}
	if idx != a.lastIndex {
		if a.lastIndex >= 0 {
			a.switches++
		}
		a.lastIndex = idx
	}
	return a.Spectrum[idx]
}

// AdaptiveProvider wraps an InputProvider so each evaluation runs under
// the policy an AdaptiveSelector picks for current conditions: it
// recomputes the grab limit with the selected policy and forwards an
// adjusted report to the inner provider.
//
// The evaluation *cadence* (interval, work threshold) remains that of
// the policy the JobClient was submitted with; what adapts per step is
// the grab limit — the parameter the paper identifies as governing a
// job's demand on the cluster.
type AdaptiveProvider struct {
	// Inner is the decision logic being adapted (e.g. the sampling
	// provider).
	Inner InputProvider
	// Selector picks the step policy; nil means NewAdaptiveSelector().
	Selector *AdaptiveSelector
	// K is the sample target used to derive the needed match rate;
	// read from the JobConf when zero.
	K int64
	// Tracer, when enabled, receives a policy-switch instant whenever
	// the selection changes. SubmitDynamic wires it from the JobTracker.
	Tracer *trace.Tracer

	total    int64 // records across all input
	perSplit float64
	lastPol  *Policy
	polTrace []string
}

// NewAdaptiveProvider wraps inner with runtime policy selection.
func NewAdaptiveProvider(inner InputProvider) *AdaptiveProvider {
	return &AdaptiveProvider{Inner: inner, Selector: NewAdaptiveSelector()}
}

// Init implements InputProvider.
func (p *AdaptiveProvider) Init(all []mapreduce.Split, conf *mapreduce.JobConf) error {
	if p.Selector == nil {
		p.Selector = NewAdaptiveSelector()
	}
	if p.K == 0 && conf != nil {
		p.K = conf.GetInt(mapreduce.ConfSampleSize, 0)
	}
	p.total = 0
	for _, s := range all {
		p.total += s.NumRecords()
	}
	if len(all) > 0 {
		p.perSplit = float64(p.total) / float64(len(all))
	}
	return p.Inner.Init(all, conf)
}

// InitialSplits implements InputProvider.
func (p *AdaptiveProvider) InitialSplits(grab int) []mapreduce.Split {
	return p.Inner.InitialSplits(grab)
}

// Next implements InputProvider: re-evaluate the policy, recompute the
// grab limit under it, and delegate.
func (p *AdaptiveProvider) Next(rep Report) (Response, []mapreduce.Split) {
	est := -1.0
	if rep.Job.MapInputRecords > 0 {
		est = float64(rep.Job.MapOutputRecords) / float64(rep.Job.MapInputRecords)
	}
	needed := 0.0
	if p.K > 0 && rep.Job.ScheduledMaps > 0 && p.perSplit > 0 {
		needed = float64(p.K) / (float64(rep.Job.ScheduledMaps) * p.perSplit)
	}
	pol := p.Selector.Pick(rep.Cluster, est, needed)
	if p.lastPol != nil && pol != p.lastPol {
		p.Tracer.Instant(trace.EventPolicySwitch, trace.CatPolicy, rep.Job.Now, rep.Job.JobID, -1, -1)
	}
	p.lastPol = pol
	p.polTrace = append(p.polTrace, pol.Name)
	grab, err := pol.GrabLimitWith(rep.Cluster.AvailableMapSlots(),
		rep.Cluster.TotalMapSlots, rep.Cluster.QueuedMapTasks)
	if err == nil {
		rep.GrabLimit = grab
	}
	resp, splits := p.Inner.Next(rep)
	if resp == InputAvailable && len(splits) > rep.GrabLimit {
		splits = splits[:rep.GrabLimit]
	}
	return resp, splits
}

// CurrentPolicy returns the most recently selected policy.
func (p *AdaptiveProvider) CurrentPolicy() *Policy { return p.lastPol }

// PolicyTrace returns the policy chosen at each evaluation.
func (p *AdaptiveProvider) PolicyTrace() []string { return append([]string(nil), p.polTrace...) }

// AdaptiveEnvelopePolicy returns the cadence policy a JobClient should
// be submitted with when using an AdaptiveProvider: a 4 s evaluation
// interval, no work threshold, and a grab-limit expression that applies
// the selector's load→policy mapping to the *initial* grab (before the
// provider has been consulted): HA's limit on an idle cluster, an
// LA/MA blend at moderate load, C's at saturation. Subsequent steps are
// governed by the provider's per-evaluation selection.
func AdaptiveEnvelopePolicy() *Policy {
	p := &Policy{
		Name:                "Adaptive",
		Description:         "runtime policy selection (paper §VII future work)",
		EvaluationIntervalS: 4,
		WorkThresholdPct:    0,
		// Effective availability discounts the cluster-wide backlog so
		// momentary slot gaps in a loaded cluster don't read as idle.
		GrabLimitExpr: "(AS - QT) >= 0.75*TS ? max(0.5*TS, AS) : (AS - QT) >= 0.25*TS ? 0.35*AS : 0.1*AS",
	}
	if err := p.Compile(); err != nil {
		panic(err)
	}
	return p
}

var _ InputProvider = (*AdaptiveProvider)(nil)

func init() {
	// Guard against accidental spectrum misordering in future edits:
	// the default spectrum must run conservative -> aggressive.
	s := NewAdaptiveSelector()
	if len(s.Spectrum) != 4 || s.Spectrum[0].Name != PolicyC || s.Spectrum[3].Name != PolicyHA {
		panic(fmt.Sprintf("core: adaptive spectrum misordered: %v", s.Spectrum))
	}
}
