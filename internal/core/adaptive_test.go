package core

import (
	"testing"

	"dynamicmr/internal/mapreduce"
)

func cs(occupied, total int) mapreduce.ClusterStatus {
	return mapreduce.ClusterStatus{TotalMapSlots: total, OccupiedMapSlots: occupied}
}

func TestSelectorIdleClusterPicksAggressive(t *testing.T) {
	s := NewAdaptiveSelector()
	p := s.Pick(cs(0, 40), -1, 0)
	if p.Name != PolicyHA {
		t.Fatalf("idle cluster picked %s, want HA", p.Name)
	}
}

func TestSelectorSaturatedClusterPicksConservative(t *testing.T) {
	s := NewAdaptiveSelector()
	p := s.Pick(cs(40, 40), -1, 0)
	if p.Name != PolicyC {
		t.Fatalf("saturated cluster picked %s, want C", p.Name)
	}
}

func TestSelectorMidLoadPicksMiddle(t *testing.T) {
	s := NewAdaptiveSelector()
	p := s.Pick(cs(20, 40), -1, 0)
	if p.Name != PolicyLA && p.Name != PolicyMA {
		t.Fatalf("50%% load picked %s, want LA or MA", p.Name)
	}
}

func TestSelectorLowYieldStepsAggressive(t *testing.T) {
	s := NewAdaptiveSelector()
	base := s.Pick(cs(40, 40), -1, 0) // C
	s2 := NewAdaptiveSelector()
	starved := s2.Pick(cs(40, 40), 0.0001, 0.01) // yield far below need
	if starved.Name == base.Name {
		t.Fatalf("low yield did not shift policy (still %s)", starved.Name)
	}
}

func TestSelectorCountsSwitches(t *testing.T) {
	s := NewAdaptiveSelector()
	s.Pick(cs(0, 40), -1, 0)
	s.Pick(cs(0, 40), -1, 0)
	if s.Switches() != 0 {
		t.Fatalf("stable conditions counted %d switches", s.Switches())
	}
	s.Pick(cs(40, 40), -1, 0)
	if s.Switches() != 1 {
		t.Fatalf("switches = %d, want 1", s.Switches())
	}
}

func TestAdaptiveProviderDelegates(t *testing.T) {
	r := newRig(t)
	splits := r.file(t, "in", 30, 50)
	inner := &scriptedProvider{initial: 4, schedule: []int{4, 4, 4}}
	prov := NewAdaptiveProvider(inner)
	client, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits,
		prov, AdaptiveEnvelopePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(r.eng, client.Job(), 1e6) {
		t.Fatalf("adaptive job stuck: %v", client.ProviderError())
	}
	if client.Job().State() != mapreduce.StateSucceeded {
		t.Fatalf("state = %v", client.Job().State())
	}
	if len(prov.PolicyTrace()) == 0 {
		t.Fatal("no policies selected")
	}
	if prov.CurrentPolicy() == nil {
		t.Fatal("no current policy")
	}
	// The job grew incrementally: 4 initial + up to 12 more.
	if got := client.Job().ScheduledMaps(); got < 8 || got > 16 {
		t.Fatalf("scheduled = %d", got)
	}
}

func TestAdaptiveProviderGrabLimitEnforced(t *testing.T) {
	// Inner provider tries to hand out everything at once; the
	// adaptive wrapper must cap it to the selected policy's grab limit.
	r := newRig(t)
	splits := r.file(t, "in", 40, 400)
	inner := &scriptedProvider{initial: 1, schedule: []int{39, 39, 39, 39, 39, 39, 39, 39}}
	prov := NewAdaptiveProvider(inner)
	client, err := SubmitDynamic(r.jt, mapreduce.JobSpec{NewMapper: passMapper}, splits,
		prov, AdaptiveEnvelopePolicy())
	if err != nil {
		t.Fatal(err)
	}
	if !mapreduce.RunUntilDone(r.eng, client.Job(), 1e6) {
		t.Fatal("job stuck")
	}
	// HA on an idle 40-slot cluster caps at 40... the most aggressive
	// non-Hadoop step; verify at least one evaluation was capped below
	// the inner provider's 39-split offer plus initial (i.e. the job
	// was not fully scheduled after the first Next).
	decisions := client.Decisions()
	if len(decisions) == 0 {
		t.Fatal("no decisions")
	}
	first := decisions[0]
	if first.Added > 39 {
		t.Fatalf("first increment added %d", first.Added)
	}
}

func TestAdaptiveEnvelopePolicy(t *testing.T) {
	p := AdaptiveEnvelopePolicy()
	if p.WorkThresholdPct != 0 {
		t.Fatal("envelope must not throttle evaluations")
	}
	// Idle cluster: HA's grab (max(0.5*40, 40) = 40).
	if g, _ := p.GrabLimit(40, 40); g != 40 {
		t.Fatalf("idle grab = %d, want 40", g)
	}
	// Mid load: the LA/MA blend (0.35*20 = 7).
	if g, _ := p.GrabLimit(20, 40); g != 7 {
		t.Fatalf("mid-load grab = %d, want 7", g)
	}
	// Saturated: C's grab (0.1*4 = 0.4 -> ceil 1).
	if g, _ := p.GrabLimit(4, 40); g != 1 {
		t.Fatalf("loaded grab = %d, want 1", g)
	}
}

func TestAdaptiveProviderReadsKFromConf(t *testing.T) {
	conf := mapreduce.NewJobConf()
	conf.SetInt(mapreduce.ConfSampleSize, 123)
	prov := NewAdaptiveProvider(&scriptedProvider{initial: 1})
	if err := prov.Init(nil, conf); err != nil {
		t.Fatal(err)
	}
	if prov.K != 123 {
		t.Fatalf("K = %d", prov.K)
	}
}
