package core

import (
	"math"
	"strings"
	"testing"
)

func TestBuiltinsCompile(t *testing.T) {
	ps := Builtins()
	if len(ps) != 5 {
		t.Fatalf("Builtins = %d policies, want 5 (Table I)", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		names[p.Name] = true
	}
	for _, want := range []string{PolicyHadoop, PolicyHA, PolicyMA, PolicyLA, PolicyC} {
		if !names[want] {
			t.Fatalf("missing builtin %q", want)
		}
	}
}

func mustGet(t *testing.T, r *Registry, name string) *Policy {
	t.Helper()
	p, err := r.Get(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestTableIGrabLimits(t *testing.T) {
	r := DefaultRegistry()
	// Idle 40-slot cluster: AS=40, TS=40.
	cases := []struct {
		policy string
		as     int
		want   int
	}{
		{PolicyHadoop, 40, math.MaxInt},
		{PolicyHA, 40, 40}, // max(20, 40)
		{PolicyMA, 40, 20}, // 0.5*40
		{PolicyLA, 40, 8},  // 0.2*40
		{PolicyC, 40, 4},   // 0.1*40
		// Saturated cluster: AS=0.
		{PolicyHadoop, 0, math.MaxInt},
		{PolicyHA, 0, 20}, // max(20, 0)
		{PolicyMA, 0, 8},  // 0.2*40
		{PolicyLA, 0, 4},  // 0.1*40
		{PolicyC, 0, 0},   // 0.1*0
	}
	for _, c := range cases {
		p := mustGet(t, r, c.policy)
		got, err := p.GrabLimit(c.as, 40)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("%s GrabLimit(AS=%d, TS=40) = %d, want %d", c.policy, c.as, got, c.want)
		}
	}
}

func TestGrabLimitCeil(t *testing.T) {
	p := &Policy{Name: "x", EvaluationIntervalS: 1, GrabLimitExpr: "0.1*AS"}
	got, err := p.GrabLimit(15, 40) // 1.5 -> 2
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("GrabLimit = %d, want ceil(1.5)=2", got)
	}
}

func TestWorkThresholds(t *testing.T) {
	r := DefaultRegistry()
	want := map[string]float64{
		PolicyHadoop: 0, PolicyHA: 0, PolicyMA: 5, PolicyLA: 10, PolicyC: 15,
	}
	for name, thr := range want {
		if p := mustGet(t, r, name); p.WorkThresholdPct != thr {
			t.Errorf("%s threshold = %v, want %v", name, p.WorkThresholdPct, thr)
		}
	}
}

func TestEvaluationIntervalFourSeconds(t *testing.T) {
	for _, p := range Builtins() {
		if p.EvaluationIntervalS != 4 {
			t.Errorf("%s interval = %v, want 4 (§III-B)", p.Name, p.EvaluationIntervalS)
		}
	}
}

func TestUnbounded(t *testing.T) {
	r := DefaultRegistry()
	if !mustGet(t, r, PolicyHadoop).Unbounded() {
		t.Error("Hadoop policy should be unbounded")
	}
	if mustGet(t, r, PolicyC).Unbounded() {
		t.Error("C policy should be bounded")
	}
}

func TestPolicyValidation(t *testing.T) {
	bad := []*Policy{
		{Name: "", EvaluationIntervalS: 1, GrabLimitExpr: "1"},
		{Name: "x", EvaluationIntervalS: 0, GrabLimitExpr: "1"},
		{Name: "x", EvaluationIntervalS: 1, WorkThresholdPct: 101, GrabLimitExpr: "1"},
		{Name: "x", EvaluationIntervalS: 1, GrabLimitExpr: "1+"},
	}
	for i, p := range bad {
		if err := p.Compile(); err == nil {
			t.Errorf("bad policy %d compiled", i)
		}
	}
}

func TestRegistryLookup(t *testing.T) {
	r := DefaultRegistry()
	if _, err := r.Get("la"); err != nil {
		t.Errorf("case-insensitive lookup failed: %v", err)
	}
	if _, err := r.Get("nope"); err == nil {
		t.Error("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "available") {
		t.Errorf("error should list available policies: %v", err)
	}
	if len(r.Names()) != 5 {
		t.Errorf("Names = %v", r.Names())
	}
}

func TestRegistryDuplicate(t *testing.T) {
	r := DefaultRegistry()
	err := r.Add(&Policy{Name: "hadoop", EvaluationIntervalS: 1, GrabLimitExpr: "1"})
	if err == nil {
		t.Fatal("duplicate (case-insensitive) accepted")
	}
}

func TestPolicyXMLRoundTrip(t *testing.T) {
	r := DefaultRegistry()
	doc, err := r.PolicyXML()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(doc), "<policies>") || !strings.Contains(string(doc), "grabLimit") {
		t.Fatalf("unexpected xml:\n%s", doc)
	}
	r2, err := ParsePolicyXML(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Names()) != 5 {
		t.Fatalf("round-trip lost policies: %v", r2.Names())
	}
	for _, name := range r.Names() {
		a := mustGet(t, r, name)
		b := mustGet(t, r2, name)
		if a.GrabLimitExpr != b.GrabLimitExpr || a.WorkThresholdPct != b.WorkThresholdPct ||
			a.EvaluationIntervalS != b.EvaluationIntervalS {
			t.Fatalf("policy %s changed in round trip: %+v vs %+v", name, a, b)
		}
	}
	// Behaviour preserved too.
	ga, _ := mustGet(t, r, PolicyMA).GrabLimit(10, 40)
	gb, _ := mustGet(t, r2, PolicyMA).GrabLimit(10, 40)
	if ga != gb {
		t.Fatalf("grab limits diverge after round trip: %d vs %d", ga, gb)
	}
}

func TestParsePolicyXMLErrors(t *testing.T) {
	if _, err := ParsePolicyXML([]byte("not xml <")); err == nil {
		t.Error("malformed xml accepted")
	}
	bad := `<policies><policy name="x"><evaluationIntervalSeconds>1</evaluationIntervalSeconds><grabLimit>1+</grabLimit></policy></policies>`
	if _, err := ParsePolicyXML([]byte(bad)); err == nil {
		t.Error("bad grab expression accepted")
	}
}

func TestResponseString(t *testing.T) {
	if EndOfInput.String() != "end of input" ||
		InputAvailable.String() != "input available" ||
		NoInputAvailable.String() != "no input available" {
		t.Fatal("response names wrong")
	}
}
