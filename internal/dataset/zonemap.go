package dataset

import (
	"dynamicmr/internal/data"
	"dynamicmr/internal/tpch"
)

// StatBlockRows is the statistics sub-block granularity: each partition
// is covered by consecutive StatBlockRows-row zones, the unit the skip
// rule operates on. 4096 rows keeps quick partitions (~15k rows) at a
// handful of zones while workload partitions (~300k rows) get enough
// zones for skew to concentrate matches into a small fraction of them.
const StatBlockRows = 4096

// ZoneEntry is one sub-block's statistics: its row range, its byte
// cost, the exact planted-match count, and conservative min/max bounds
// for the predicate column. Because the planted predicates never match
// the generator's natural domain, the zone map is exact without any
// scan: Matches comes straight from the partition's planted positions,
// and the bounds are the natural domain extended by the plant domain
// when the zone holds planted rows.
type ZoneEntry struct {
	// FirstRow is the in-partition offset of the zone's first row.
	FirstRow int64
	// Rows and Bytes are the zone's extent (Bytes = Rows × avg row size,
	// matching the partition's own size accounting exactly).
	Rows  int64
	Bytes int64
	// Matches is the exact number of planted matching rows in the zone.
	Matches int64
	// Min and Max bound every value the predicate column takes in the
	// zone.
	Min, Max data.Value
}

// buildZones computes the partition's zone map and aggregate BlockStats
// from the already-sorted matchPos — O(zones + matches), no scan. Called
// once from Build.
func (p *Partition) buildZones() {
	lvl := p.ds.level
	nz := int((p.numRows + StatBlockRows - 1) / StatBlockRows)
	zones := make([]ZoneEntry, 0, nz)
	var stats data.BlockStats
	next := 0 // next unconsumed index into matchPos
	for first := int64(0); first < p.numRows; first += StatBlockRows {
		rows := p.numRows - first
		if rows > StatBlockRows {
			rows = StatBlockRows
		}
		var m int64
		for next < len(p.matchPos) && p.matchPos[next] < first+rows {
			m++
			next++
		}
		z := ZoneEntry{
			FirstRow: first,
			Rows:     rows,
			Bytes:    rows * tpch.AvgRowBytes,
			Matches:  m,
			Min:      lvl.natMin,
			Max:      lvl.natMax,
		}
		if m > 0 {
			if c, err := data.Compare(lvl.plantMin, z.Min); err == nil && c < 0 {
				z.Min = lvl.plantMin
			}
			if c, err := data.Compare(lvl.plantMax, z.Max); err == nil && c > 0 {
				z.Max = lvl.plantMax
			}
		}
		zones = append(zones, z)
		stats.Blocks++
		stats.Rows += rows
		stats.Bytes += z.Bytes
		if m > 0 {
			stats.MatchBlocks++
			stats.MatchRows += rows
			stats.MatchBytes += z.Bytes
			stats.Matches += m
		}
	}
	p.zones = zones
	p.stats = stats
}

// Zones returns the partition's zone map (read-only).
func (p *Partition) Zones() []ZoneEntry { return p.zones }

// BlockStats implements data.StatSource: the aggregate zone-map summary
// for the planted predicate's fingerprint. ok is false for any other
// fingerprint — the statistics only describe the planted family.
func (p *Partition) BlockStats(fingerprint string) (data.BlockStats, bool) {
	if fingerprint != p.ds.fp {
		return data.BlockStats{}, false
	}
	return p.stats, true
}

// PruneScan implements data.PrunableSource: a view of the partition
// restricted to what a skip-scan (indexed=false: every row of every
// match-admitting zone) or a clustered-index read (indexed=true: only
// the planted rows themselves) touches. The views generate the same
// records a full scan yields at the same positions, so filtering either
// view by the fingerprinted predicate reproduces the full-scan filter
// output exactly (property-tested). The fast accelerated paths delegate
// to the partition unchanged.
func (p *Partition) PruneScan(fingerprint string, indexed bool) (data.Source, bool) {
	if fingerprint != p.ds.fp {
		return nil, false
	}
	return &prunedView{p: p, indexed: indexed}, true
}

// prunedView is the transient pruned Source PruneScan returns. It is
// created per scan and never stored on a dfs.Block, so block identity
// (memo keys, executor keys, residency keys) always refers to the
// underlying partition.
type prunedView struct {
	p       *Partition
	indexed bool
}

func (v *prunedView) Schema() *data.Schema { return v.p.Schema() }

func (v *prunedView) NumRecords() int64 {
	if v.indexed {
		return v.p.stats.Matches
	}
	return v.p.stats.MatchRows
}

func (v *prunedView) SizeBytes() int64 {
	if v.indexed {
		return v.p.stats.Matches * tpch.AvgRowBytes
	}
	return v.p.stats.MatchBytes
}

// Scan yields the covered records in source order. The indexed view
// walks matchPos directly; the skip view replays the partition's scan
// loop zone by zone, skipping zones with no matches.
func (v *prunedView) Scan(yield func(data.Record) bool) {
	p := v.p
	gen := p.ds.generator()
	if v.indexed {
		for _, pos := range p.matchPos {
			if !yield(p.row(gen, pos, true)) {
				return
			}
		}
		return
	}
	next := 0 // index into matchPos of the next planted row
	for _, z := range p.zones {
		if z.Matches == 0 {
			continue
		}
		// Re-anchor next at the zone start: zones are visited in order,
		// so matchPos[next] is already >= z.FirstRow.
		for i := z.FirstRow; i < z.FirstRow+z.Rows; i++ {
			planted := next < len(p.matchPos) && p.matchPos[next] == i
			if planted {
				next++
			}
			if !yield(p.row(gen, i, planted)) {
				return
			}
		}
	}
}

// AcceleratedMatches delegates to the partition: the pruned views cover
// every planted row, so the accelerated shortcut is identical.
func (v *prunedView) AcceleratedMatches(fingerprint string, limit int64) ([]data.Record, bool) {
	return v.p.AcceleratedMatches(fingerprint, limit)
}

// AcceleratedMatchCount delegates to the partition.
func (v *prunedView) AcceleratedMatchCount(fingerprint string) (int64, bool) {
	return v.p.AcceleratedMatchCount(fingerprint)
}
