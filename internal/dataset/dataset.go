package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/skew"
	"dynamicmr/internal/tpch"
)

// DefaultSelectivity is the paper's fixed predicate selectivity (0.05%).
const DefaultSelectivity = 0.0005

// PartitionsPerScale reproduces Table II's geometry: a 5x dataset splits
// into 40 partitions, i.e. 8 partitions per unit of scale, one per disk
// at 5x on the 40-disk cluster.
const PartitionsPerScale = 8

// Spec describes a dataset to build.
type Spec struct {
	// Name of the DFS file / Hive table the dataset backs.
	Name string
	// Scale is the TPC-H scale factor (paper: 5, 10, 20, 40, 100).
	Scale int
	// Seed makes the dataset (rows, planting, jitter) deterministic.
	Seed int64
	// Z is the Zipf exponent for match placement (0, 1 or 2).
	Z float64
	// Selectivity of the planted predicate; 0 means DefaultSelectivity.
	Selectivity float64
	// Partitions overrides the partition count; 0 means
	// Scale*PartitionsPerScale.
	Partitions int
	// RowsOverride, when positive, replaces Scale*tpch.RowsPerScale as
	// the total row count. Tests use it to build small datasets that can
	// be fully scanned; production specs leave it zero.
	RowsOverride int64
}

// Dataset is a partitioned LINEITEM table with planted matches for one
// known predicate.
type Dataset struct {
	spec       Spec
	level      SkewLevel
	partitions []*Partition
	totalRows  int64
	matches    int64
	fp         string // predicate fingerprint
}

// Partition is one input partition (one DFS block's worth of rows). It
// implements data.Source; records are generated on demand. While
// pinned (dfs.Pinner — the memory engine mode pins the blocks behind
// resident splits) the partition keeps its planted-match records
// materialised, so repeated AcceleratedMatches calls within a session
// pay the generator cost once instead of once per query.
type Partition struct {
	ds       *Dataset
	index    int
	startRow int64 // global row id of first row
	numRows  int64
	// matchPos holds the sorted in-partition offsets of planted rows.
	matchPos []int64
	bytes    int64
	// zones is the load-time zone map (StatBlockRows-row sub-blocks with
	// min/max + exact match counts); stats is its aggregate summary.
	zones []ZoneEntry
	stats data.BlockStats

	// pinMu guards pins; hot is read lock-free by AcceleratedMatches,
	// which may run on scan-executor workers concurrently with a Pin on
	// a simulator goroutine.
	pinMu sync.Mutex
	pins  int
	hot   atomic.Pointer[[]data.Record]
	// hotServes counts AcceleratedMatches calls served from the pinned
	// materialisation, for residency tests.
	hotServes atomic.Int64
}

// Build constructs the dataset: partition sizes (with ±2% deterministic
// jitter, since real HDFS splits "may vary in the number of records"
// per §IV), Zipfian match counts per rank, a random rank→partition
// permutation, and sorted planted positions within each partition.
func Build(spec Spec) (*Dataset, error) {
	if spec.Scale <= 0 {
		return nil, fmt.Errorf("dataset: scale must be positive, got %d", spec.Scale)
	}
	level, err := LevelForZ(spec.Z)
	if err != nil {
		return nil, err
	}
	if spec.Selectivity == 0 {
		spec.Selectivity = DefaultSelectivity
	}
	if spec.Selectivity < 0 || spec.Selectivity > 1 {
		return nil, fmt.Errorf("dataset: selectivity %v out of [0,1]", spec.Selectivity)
	}
	if spec.Partitions == 0 {
		spec.Partitions = spec.Scale * PartitionsPerScale
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("lineitem_%dx_z%g", spec.Scale, spec.Z)
	}
	n := spec.Partitions
	totalRows := int64(spec.Scale) * tpch.RowsPerScale
	if spec.RowsOverride > 0 {
		totalRows = spec.RowsOverride
	}
	totalMatches := int64(float64(totalRows)*spec.Selectivity + 0.5)

	rng := rand.New(rand.NewSource(spec.Seed ^ 0x5eed))

	// Partition row counts: base ± up to 2% jitter, corrected to sum to
	// totalRows.
	base := totalRows / int64(n)
	rows := make([]int64, n)
	var sum int64
	for i := range rows {
		jitter := int64(float64(base) * 0.02 * (2*rng.Float64() - 1))
		rows[i] = base + jitter
		sum += rows[i]
	}
	rows[n-1] += totalRows - sum
	if rows[n-1] <= 0 {
		return nil, fmt.Errorf("dataset: partition geometry underflow (scale too small for %d partitions)", n)
	}

	// Matches per rank, then ranks shuffled onto partitions so the "hot"
	// partition sits at a random index.
	countsByRank := skew.Counts(totalMatches, spec.Z, n, spec.Seed^0x2f)
	perm := rng.Perm(n)
	matchCount := make([]int64, n)
	for rank, c := range countsByRank {
		matchCount[perm[rank]] = c
	}

	ds := &Dataset{spec: spec, level: level, totalRows: totalRows, matches: totalMatches,
		fp: level.Predicate.String()}

	var start int64
	for i := 0; i < n; i++ {
		m := matchCount[i]
		if m > rows[i] {
			// More matches drawn to this partition than it has rows
			// (only possible at tiny scales under extreme skew): clamp
			// and spill the excess to the following partition.
			if i+1 < n {
				matchCount[i+1] += m - rows[i]
			}
			m = rows[i]
		}
		p := &Partition{ds: ds, index: i, startRow: start, numRows: rows[i]}
		p.matchPos = samplePositions(rng, rows[i], m)
		p.bytes = rows[i] * tpch.AvgRowBytes
		p.buildZones()
		ds.partitions = append(ds.partitions, p)
		start += rows[i]
	}
	// Recount after any clamping.
	var planted int64
	for _, p := range ds.partitions {
		planted += int64(len(p.matchPos))
	}
	ds.matches = planted
	return ds, nil
}

// samplePositions picks m distinct offsets in [0, n) uniformly, sorted.
func samplePositions(rng *rand.Rand, n, m int64) []int64 {
	if m <= 0 {
		return nil
	}
	if m > n {
		panic("dataset: more positions than rows")
	}
	seen := make(map[int64]struct{}, m)
	pos := make([]int64, 0, m)
	for int64(len(pos)) < m {
		v := rng.Int63n(n)
		if _, dup := seen[v]; dup {
			continue
		}
		seen[v] = struct{}{}
		pos = append(pos, v)
	}
	sort.Slice(pos, func(i, j int) bool { return pos[i] < pos[j] })
	return pos
}

// Spec returns the build specification (with defaults filled in).
func (d *Dataset) Spec() Spec { return d.spec }

// Name returns the dataset/table name.
func (d *Dataset) Name() string { return d.spec.Name }

// Schema returns the LINEITEM schema.
func (d *Dataset) Schema() *data.Schema { return tpch.LineItemSchema }

// Predicate returns the planted predicate (the Table III predicate for
// the dataset's skew level).
func (d *Dataset) Predicate() expr.Expr { return d.level.Predicate }

// PredicateFingerprint returns Predicate().String(), the key the
// accelerated match path is indexed by.
func (d *Dataset) PredicateFingerprint() string { return d.fp }

// NumPartitions returns the partition count.
func (d *Dataset) NumPartitions() int { return len(d.partitions) }

// Partition returns partition i.
func (d *Dataset) Partition(i int) *Partition { return d.partitions[i] }

// Partitions returns all partitions in order.
func (d *Dataset) Partitions() []*Partition { return d.partitions }

// TotalRows returns the dataset cardinality.
func (d *Dataset) TotalRows() int64 { return d.totalRows }

// TotalMatches returns the number of planted matching records.
func (d *Dataset) TotalMatches() int64 { return d.matches }

// TotalBytes returns the dataset's encoded size estimate.
func (d *Dataset) TotalBytes() int64 {
	var b int64
	for _, p := range d.partitions {
		b += p.bytes
	}
	return b
}

// MatchDistribution returns planted matches per partition index.
func (d *Dataset) MatchDistribution() []int64 {
	out := make([]int64, len(d.partitions))
	for i, p := range d.partitions {
		out[i] = int64(len(p.matchPos))
	}
	return out
}

// generator returns the row generator for this dataset.
func (d *Dataset) generator() *tpch.Generator {
	return tpch.NewGenerator(uint64(d.spec.Seed), d.spec.Scale)
}

// Index returns the partition's position within the dataset.
func (p *Partition) Index() int { return p.index }

// Dataset returns the owning dataset.
func (p *Partition) Dataset() *Dataset { return p.ds }

// Schema implements data.Source.
func (p *Partition) Schema() *data.Schema { return tpch.LineItemSchema }

// NumRecords implements data.Source.
func (p *Partition) NumRecords() int64 { return p.numRows }

// SizeBytes implements data.Source.
func (p *Partition) SizeBytes() int64 { return p.bytes }

// NumMatches returns the number of planted matching rows.
func (p *Partition) NumMatches() int64 { return int64(len(p.matchPos)) }

// row materialises the partition's i-th record, applying the plant
// transform if position i carries a planted match.
func (p *Partition) row(gen *tpch.Generator, i int64, planted bool) data.Record {
	r := gen.Row(p.startRow + i)
	if planted {
		rng := &plantRNG{state: uint64(p.startRow+i) ^ uint64(p.ds.spec.Seed)*0x9e3779b9}
		r = p.ds.level.plant(r, rng)
	}
	return r
}

// Scan implements data.Source: every record in order, matches planted
// in place.
func (p *Partition) Scan(yield func(data.Record) bool) {
	gen := p.ds.generator()
	next := 0 // next planted position to watch for
	for i := int64(0); i < p.numRows; i++ {
		planted := next < len(p.matchPos) && p.matchPos[next] == i
		if planted {
			next++
		}
		if !yield(p.row(gen, i, planted)) {
			return
		}
	}
}

// Pin implements dfs.Pinner: it opens a hot-residency window. The
// planted-match record list is materialised lazily, by the first
// AcceleratedMatches call inside the window — a pinned partition the
// engine never re-reads costs nothing — and stays hot until the
// matching Unpin, so repeat calls serve slices of the cached records
// instead of re-running the generator. The cached records are the same
// pure-generator output a cold call produces, so results stay
// byte-identical.
func (p *Partition) Pin() {
	p.pinMu.Lock()
	defer p.pinMu.Unlock()
	p.pins++
}

// Unpin implements dfs.Pinner, dropping the hot materialisation with
// the last claim.
func (p *Partition) Unpin() {
	p.pinMu.Lock()
	defer p.pinMu.Unlock()
	if p.pins == 0 {
		return
	}
	p.pins--
	if p.pins == 0 {
		p.hot.Store(nil)
	}
}

// Pinned reports whether the partition currently holds the hot
// materialisation.
func (p *Partition) Pinned() bool { return p.hot.Load() != nil }

// HotServes returns how many AcceleratedMatches calls were served from
// the pinned materialisation.
func (p *Partition) HotServes() int64 { return p.hotServes.Load() }

// AcceleratedMatches returns the partition's matching records for the
// given predicate fingerprint without a full scan, or ok=false when the
// predicate is not the dataset's planted one. The returned records are
// byte-identical to what Scan would yield at the planted positions
// (property-tested), so a map task may use this as a shortcut while the
// simulator still charges full-scan I/O and CPU for the split. While
// the partition is pinned the records come from the hot
// materialisation; the returned slice is capacity-capped and must be
// treated as read-only either way.
func (p *Partition) AcceleratedMatches(fingerprint string, limit int64) ([]data.Record, bool) {
	if fingerprint != p.ds.fp {
		return nil, false
	}
	n := int64(len(p.matchPos))
	if limit >= 0 && limit < n {
		n = limit
	}
	if hot := p.hot.Load(); hot != nil && int64(len(*hot)) >= n {
		p.hotServes.Add(1)
		return (*hot)[:n:n], true
	}
	gen := p.ds.generator()
	out := make([]data.Record, 0, n)
	for _, pos := range p.matchPos[:n] {
		out = append(out, p.row(gen, pos, true))
	}
	p.pinMu.Lock()
	if p.pins > 0 {
		if hot := p.hot.Load(); hot == nil || int64(len(*hot)) < n {
			recs := out[:n:n]
			p.hot.Store(&recs)
		}
	}
	p.pinMu.Unlock()
	return out, true
}

// AcceleratedMatchCount returns the number of records matching the
// fingerprinted predicate without scanning or materialising, or
// ok=false when the predicate is not the planted one.
func (p *Partition) AcceleratedMatchCount(fingerprint string) (int64, bool) {
	if fingerprint != p.ds.fp {
		return 0, false
	}
	return p.NumMatches(), true
}

// ScanMatches runs the real filter path: full scan evaluating pred,
// collecting up to limit (<0 = all) matching records.
func (p *Partition) ScanMatches(pred expr.Expr, limit int64) ([]data.Record, error) {
	var out []data.Record
	var scanErr error
	p.Scan(func(r data.Record) bool {
		ok, err := expr.EvalBool(pred, r)
		if err != nil {
			scanErr = err
			return false
		}
		if ok {
			out = append(out, r)
			if limit >= 0 && int64(len(out)) >= limit {
				return false
			}
		}
		return true
	})
	return out, scanErr
}
