package dataset

import (
	"math/rand"
	"testing"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/tpch"
)

// fullScanMatches scans the whole partition and returns the rendered
// records satisfying pred together with their row positions — the
// ground truth every pruned view is checked against.
func fullScanMatches(t *testing.T, p *Partition, pred expr.Expr) (recs []string, positions []int64) {
	t.Helper()
	var i int64
	p.Scan(func(r data.Record) bool {
		ok, err := expr.EvalBool(pred, r)
		if err != nil {
			t.Fatalf("eval: %v", err)
		}
		if ok {
			recs = append(recs, r.String())
			positions = append(positions, i)
		}
		i++
		return true
	})
	return recs, positions
}

func TestZoneMapInvariants(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		ds, err := Build(smallSpec(z, 51))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ds.Partitions() {
			zones := p.Zones()
			var rows, bytes, matches int64
			var matchBlocks int
			for i, zn := range zones {
				if zn.FirstRow != int64(i)*StatBlockRows {
					t.Fatalf("z=%v p%d zone %d starts at %d", z, p.Index(), i, zn.FirstRow)
				}
				if zn.Bytes != zn.Rows*tpch.AvgRowBytes {
					t.Fatalf("z=%v p%d zone %d byte accounting", z, p.Index(), i)
				}
				rows += zn.Rows
				bytes += zn.Bytes
				matches += zn.Matches
				if zn.Matches > 0 {
					matchBlocks++
				}
			}
			if rows != p.NumRecords() || bytes != p.SizeBytes() {
				t.Fatalf("z=%v p%d zones cover %d rows / %d bytes, partition has %d / %d",
					z, p.Index(), rows, bytes, p.NumRecords(), p.SizeBytes())
			}
			if matches != p.NumMatches() {
				t.Fatalf("z=%v p%d zone matches sum %d, partition plants %d",
					z, p.Index(), matches, p.NumMatches())
			}
			st, ok := p.BlockStats(ds.PredicateFingerprint())
			if !ok {
				t.Fatalf("z=%v p%d: BlockStats rejected own fingerprint", z, p.Index())
			}
			if st.Blocks != len(zones) || st.MatchBlocks != matchBlocks ||
				st.Rows != rows || st.Bytes != bytes || st.Matches != matches {
				t.Fatalf("z=%v p%d: aggregate stats %+v disagree with zones", z, p.Index(), st)
			}
			if _, ok := p.BlockStats("(L_TAX = 0.5)"); ok {
				t.Fatalf("z=%v p%d: BlockStats accepted a foreign fingerprint", z, p.Index())
			}
		}
	}
}

// TestZoneBoundsAreConservative checks the zone-map contract the skip
// rule relies on: every value the predicate column takes in a zone lies
// within the zone's [Min, Max]. (For z=2 the bounds alone cannot prune
// — 'DRONE' sorts inside the natural [AIR, TRUCK] range — which is why
// the skip rule uses the exact match-presence bit instead.)
func TestZoneBoundsAreConservative(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		ds, err := Build(smallSpec(z, 53))
		if err != nil {
			t.Fatal(err)
		}
		col := ds.level.StatColumn()
		if col == "" {
			t.Fatalf("z=%v: no stat column", z)
		}
		for _, p := range ds.Partitions()[:4] {
			zones := p.Zones()
			var i int64
			p.Scan(func(r data.Record) bool {
				zn := zones[i/StatBlockRows]
				v := r.MustGet(col)
				if c, err := data.Compare(v, zn.Min); err != nil || c < 0 {
					t.Fatalf("z=%v p%d row %d: %s below zone min %s (%v)", z, p.Index(), i, v, zn.Min, err)
				}
				if c, err := data.Compare(v, zn.Max); err != nil || c > 0 {
					t.Fatalf("z=%v p%d row %d: %s above zone max %s (%v)", z, p.Index(), i, v, zn.Max, err)
				}
				i++
				return true
			})
		}
	}
}

// TestZoneMatchCountsExact checks that each zone's Matches is exactly
// the number of predicate-satisfying rows it contains — in particular,
// a Matches == 0 zone holds none, which is what makes skipping it
// lossless.
func TestZoneMatchCountsExact(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		ds, err := Build(smallSpec(z, 59))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ds.Partitions()[:6] {
			_, positions := fullScanMatches(t, p, ds.Predicate())
			perZone := make([]int64, len(p.Zones()))
			for _, pos := range positions {
				perZone[pos/StatBlockRows]++
			}
			for i, zn := range p.Zones() {
				if zn.Matches != perZone[i] {
					t.Fatalf("z=%v p%d zone %d: stats say %d matches, scan finds %d",
						z, p.Index(), i, zn.Matches, perZone[i])
				}
			}
		}
	}
}

// TestPruneScanRecordIdentity is the satellite property test: over
// randomized dataset geometry (selectivity, partition count, row
// count, skew), filtering the skip-scan view by the predicate and
// reading the indexed view both return records identical — content and
// order — to filtering a full scan, with the partition's planted match
// positions as ground truth.
func TestPruneScanRecordIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 6; trial++ {
		z := float64(rng.Intn(3))
		spec := Spec{
			Scale:        1,
			Seed:         rng.Int63n(1 << 30),
			Z:            z,
			Selectivity:  0.001 + rng.Float64()*0.01,
			Partitions:   3 + rng.Intn(8),
			RowsOverride: 20_000 + rng.Int63n(80_000),
		}
		ds, err := Build(spec)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		fp := ds.PredicateFingerprint()
		pred := ds.Predicate()
		for _, p := range ds.Partitions() {
			full, positions := fullScanMatches(t, p, pred)
			// Ground truth: the matching positions are exactly the planted
			// ones.
			if len(positions) != len(p.matchPos) {
				t.Fatalf("trial %d p%d: scan found %d matches, planted %d",
					trial, p.Index(), len(positions), len(p.matchPos))
			}
			for i := range positions {
				if positions[i] != p.matchPos[i] {
					t.Fatalf("trial %d p%d: match %d at row %d, planted at %d",
						trial, p.Index(), i, positions[i], p.matchPos[i])
				}
			}

			// Skip view: filtering it must reproduce the full-scan filter.
			skipSrc, ok := p.PruneScan(fp, false)
			if !ok {
				t.Fatalf("trial %d p%d: PruneScan rejected own fingerprint", trial, p.Index())
			}
			var skip []string
			var skipRows int64
			skipSrc.Scan(func(r data.Record) bool {
				skipRows++
				ok, err := expr.EvalBool(pred, r)
				if err != nil {
					t.Fatalf("eval: %v", err)
				}
				if ok {
					skip = append(skip, r.String())
				}
				return true
			})
			if skipRows != skipSrc.NumRecords() {
				t.Fatalf("trial %d p%d: skip view yielded %d rows, declares %d",
					trial, p.Index(), skipRows, skipSrc.NumRecords())
			}
			requireSame(t, "skip", trial, p.Index(), full, skip)

			// Indexed view: every yielded record is a match, in order.
			idxSrc, ok := p.PruneScan(fp, true)
			if !ok {
				t.Fatalf("trial %d p%d: indexed PruneScan rejected own fingerprint", trial, p.Index())
			}
			var idx []string
			idxSrc.Scan(func(r data.Record) bool {
				idx = append(idx, r.String())
				return true
			})
			if int64(len(idx)) != idxSrc.NumRecords() {
				t.Fatalf("trial %d p%d: indexed view yielded %d rows, declares %d",
					trial, p.Index(), len(idx), idxSrc.NumRecords())
			}
			requireSame(t, "index", trial, p.Index(), full, idx)
		}
	}
}

func requireSame(t *testing.T, mode string, trial, part int, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("trial %d p%d %s: %d records, full scan has %d", trial, part, mode, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("trial %d p%d %s: record %d differs:\nfull: %s\n%s: %s",
				trial, part, mode, i, want[i], mode, got[i])
		}
	}
}

func TestPruneScanRejectsForeignFingerprint(t *testing.T) {
	ds, err := Build(smallSpec(0, 67))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Partition(0).PruneScan("(L_TAX = 0.5)", false); ok {
		t.Fatal("PruneScan accepted a foreign fingerprint")
	}
}
