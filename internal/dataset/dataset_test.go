package dataset

import (
	"math"
	"testing"

	"dynamicmr/internal/expr"
	"dynamicmr/internal/tpch"
)

// smallSpec builds a fully scannable dataset: 40 partitions, 200k rows,
// selectivity boosted so planting is observable.
func smallSpec(z float64, seed int64) Spec {
	return Spec{
		Scale:        1,
		Seed:         seed,
		Z:            z,
		Selectivity:  0.005,
		Partitions:   40,
		RowsOverride: 200_000,
	}
}

func TestBuildGeometry(t *testing.T) {
	ds, err := Build(Spec{Scale: 5, Seed: 1, Z: 0})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumPartitions() != 40 {
		t.Fatalf("5x partitions = %d, want 40 (Table II)", ds.NumPartitions())
	}
	if ds.TotalRows() != 30_000_000 {
		t.Fatalf("5x rows = %d, want 30M", ds.TotalRows())
	}
	if math.Abs(float64(ds.TotalMatches())-15000) > 100 {
		t.Fatalf("5x matches = %d, want ≈15000 (0.05%%)", ds.TotalMatches())
	}
	var sum int64
	for _, p := range ds.Partitions() {
		sum += p.NumRecords()
		if p.NumRecords() <= 0 {
			t.Fatalf("partition %d empty", p.Index())
		}
		// Jitter stays within ±2.5% of the 750k base.
		if math.Abs(float64(p.NumRecords())-750_000) > 750_000*0.025 {
			t.Fatalf("partition %d rows %d outside jitter band", p.Index(), p.NumRecords())
		}
	}
	if sum != ds.TotalRows() {
		t.Fatalf("partition rows sum %d != total %d", sum, ds.TotalRows())
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Spec{Scale: 0, Z: 0}); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := Build(Spec{Scale: 1, Z: 0.7}); err == nil {
		t.Error("unknown skew level accepted")
	}
	if _, err := Build(Spec{Scale: 1, Z: 0, Selectivity: 1.5}); err == nil {
		t.Error("selectivity > 1 accepted")
	}
}

func TestDefaultNameAndSelectivity(t *testing.T) {
	ds, err := Build(Spec{Scale: 10, Seed: 3, Z: 2})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name() != "lineitem_10x_z2" {
		t.Fatalf("Name = %q", ds.Name())
	}
	if ds.Spec().Selectivity != DefaultSelectivity {
		t.Fatalf("Selectivity = %v", ds.Spec().Selectivity)
	}
}

func TestMatchDistributionConservation(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		ds, err := Build(smallSpec(z, 7))
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, c := range ds.MatchDistribution() {
			sum += c
		}
		if sum != ds.TotalMatches() {
			t.Fatalf("z=%v: distribution sums to %d, TotalMatches %d", z, sum, ds.TotalMatches())
		}
		want := int64(float64(ds.TotalRows())*0.005 + 0.5)
		if sum != want {
			t.Fatalf("z=%v: planted %d, want %d", z, sum, want)
		}
	}
}

func TestSkewConcentration(t *testing.T) {
	top := func(z float64) int64 {
		ds, err := Build(smallSpec(z, 11))
		if err != nil {
			t.Fatal(err)
		}
		var max int64
		for _, c := range ds.MatchDistribution() {
			if c > max {
				max = c
			}
		}
		return max
	}
	t0, t1, t2 := top(0), top(1), top(2)
	if !(t0 < t1 && t1 < t2) {
		t.Fatalf("top-partition matches should grow with skew: %d, %d, %d", t0, t1, t2)
	}
}

func TestScanCountsMatchPlan(t *testing.T) {
	ds, err := Build(smallSpec(1, 13))
	if err != nil {
		t.Fatal(err)
	}
	pred := ds.Predicate()
	for _, p := range ds.Partitions()[:8] {
		got, err := p.ScanMatches(pred, -1)
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(got)) != p.NumMatches() {
			t.Fatalf("partition %d: scan found %d matches, plan says %d",
				p.Index(), len(got), p.NumMatches())
		}
	}
}

func TestNaturalRowsNeverMatch(t *testing.T) {
	// A dataset planted for z=2 must contain no natural matches for the
	// z=0 and z=1 predicates beyond their own planting — i.e. a dataset
	// planted for one predicate has zero matches for the others.
	ds, err := Build(smallSpec(2, 17))
	if err != nil {
		t.Fatal(err)
	}
	for _, other := range []float64{0, 1} {
		pred, err := PredicateForZ(other)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ds.Partition(0).ScanMatches(pred, -1)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 0 {
			t.Fatalf("z=%v predicate matched %d natural rows in z=2 dataset", other, len(got))
		}
	}
}

func TestAcceleratedEqualsScan(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		ds, err := Build(smallSpec(z, 23))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ds.Partitions()[:6] {
			fast, ok := p.AcceleratedMatches(ds.PredicateFingerprint(), -1)
			if !ok {
				t.Fatalf("accelerated path rejected own fingerprint")
			}
			slow, err := p.ScanMatches(ds.Predicate(), -1)
			if err != nil {
				t.Fatal(err)
			}
			if len(fast) != len(slow) {
				t.Fatalf("z=%v p%d: fast %d records, slow %d", z, p.Index(), len(fast), len(slow))
			}
			for i := range fast {
				if fast[i].String() != slow[i].String() {
					t.Fatalf("z=%v p%d record %d differs:\nfast: %s\nslow: %s",
						z, p.Index(), i, fast[i], slow[i])
				}
			}
		}
	}
}

func TestAcceleratedRejectsForeignPredicate(t *testing.T) {
	ds, err := Build(smallSpec(0, 29))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ds.Partition(0).AcceleratedMatches("(L_TAX = 0.5)", -1); ok {
		t.Fatal("accelerated path accepted a foreign predicate")
	}
}

func TestAcceleratedLimit(t *testing.T) {
	ds, err := Build(smallSpec(0, 31))
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Partition(0)
	if p.NumMatches() < 3 {
		t.Skip("partition has too few matches for limit test")
	}
	got, ok := p.AcceleratedMatches(ds.PredicateFingerprint(), 2)
	if !ok || len(got) != 2 {
		t.Fatalf("limit=2 returned %d records, ok=%v", len(got), ok)
	}
}

func TestScanMatchesLimit(t *testing.T) {
	ds, err := Build(smallSpec(0, 37))
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Partition(1)
	if p.NumMatches() < 2 {
		t.Skip("too few matches")
	}
	got, err := p.ScanMatches(ds.Predicate(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("limit=1 returned %d", len(got))
	}
}

func TestDeterministicRebuild(t *testing.T) {
	a, err := Build(smallSpec(1, 41))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallSpec(1, 41))
	if err != nil {
		t.Fatal(err)
	}
	da, db := a.MatchDistribution(), b.MatchDistribution()
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("rebuild differs at partition %d", i)
		}
	}
	ra, _ := a.Partition(0).AcceleratedMatches(a.PredicateFingerprint(), 5)
	rb, _ := b.Partition(0).AcceleratedMatches(b.PredicateFingerprint(), 5)
	for i := range ra {
		if ra[i].String() != rb[i].String() {
			t.Fatalf("rebuilt record %d differs", i)
		}
	}
}

func TestPlantedRowsSatisfyPredicate(t *testing.T) {
	for _, z := range []float64{0, 1, 2} {
		ds, err := Build(smallSpec(z, 43))
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range ds.Partitions()[:4] {
			recs, _ := p.AcceleratedMatches(ds.PredicateFingerprint(), -1)
			for _, r := range recs {
				ok, err := expr.EvalBool(ds.Predicate(), r)
				if err != nil || !ok {
					t.Fatalf("z=%v: planted row does not satisfy predicate: %s (%v)", z, r, err)
				}
			}
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	ds, err := Build(Spec{Scale: 5, Seed: 1, Z: 0})
	if err != nil {
		t.Fatal(err)
	}
	want := ds.TotalRows() * tpch.AvgRowBytes
	if ds.TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d", ds.TotalBytes(), want)
	}
	p := ds.Partition(0)
	if p.SizeBytes() != p.NumRecords()*tpch.AvgRowBytes {
		t.Fatal("partition size accounting inconsistent")
	}
}

func TestSkewLevelsTable(t *testing.T) {
	levels := SkewLevels()
	if len(levels) != 3 {
		t.Fatalf("SkewLevels has %d rows, want 3 (Table III)", len(levels))
	}
	zs := map[float64]bool{}
	for _, l := range levels {
		zs[l.Z] = true
		if l.Predicate == nil || l.Name == "" {
			t.Fatalf("incomplete level %+v", l)
		}
	}
	for _, z := range []float64{0, 1, 2} {
		if !zs[z] {
			t.Fatalf("missing level z=%v", z)
		}
	}
	if _, err := LevelForZ(3); err == nil {
		t.Fatal("LevelForZ(3) should error")
	}
}

func TestPartitionAccessors(t *testing.T) {
	ds, err := Build(smallSpec(0, 47))
	if err != nil {
		t.Fatal(err)
	}
	p := ds.Partition(5)
	if p.Index() != 5 || p.Dataset() != ds {
		t.Fatal("partition accessors wrong")
	}
	if p.Schema() != tpch.LineItemSchema {
		t.Fatal("partition schema wrong")
	}
}
