// Package dataset builds the paper's evaluation datasets (§V-B):
// partitioned TPC-H LINEITEM files in which, for one known predicate per
// skew level, exactly selectivity×T records match, with the matching
// records distributed across partitions by a Zipfian draw.
//
// The predicates are chosen on columns whose *natural* generator domain
// can never satisfy them (the paper equivalently rewrites non-matching
// records "to ensure that the remaining records contained random values
// not satisfying the predicate"); planting a match then only requires
// rewriting the planted row's column into the out-of-domain value.
package dataset

import (
	"fmt"

	"dynamicmr/internal/data"
	"dynamicmr/internal/expr"
	"dynamicmr/internal/tpch"
)

// SkewLevel identifies a row of the paper's Table III: a Zipf exponent
// and its associated predicate.
type SkewLevel struct {
	// Z is the Zipfian exponent (0 = uniform, 1 = moderate, 2 = high).
	Z float64
	// Name is the human label used in figures.
	Name string
	// Predicate is the selection predicate whose matches are planted.
	Predicate expr.Expr
	// plant rewrites a base LINEITEM row into one satisfying Predicate.
	plant func(data.Record, *plantRNG) data.Record

	// Zone-map metadata for the predicate's column: the generator's
	// natural value domain [natMin, natMax] and the planted values'
	// domain [plantMin, plantMax]. A stat sub-block's min/max is the
	// natural domain, extended by the plant domain when the block holds
	// planted rows — conservative bounds that contain every value the
	// block can produce (pinned by TestZoneBoundsAreConservative).
	statColumn         string
	natMin, natMax     data.Value
	plantMin, plantMax data.Value
}

// StatColumn returns the predicate's column, the one the zone map keeps
// min/max bounds for.
func (l SkewLevel) StatColumn() string { return l.statColumn }

// plantRNG supplies deterministic randomness for plant transforms, so a
// planted row's free attributes vary rather than being constant.
type plantRNG struct{ state uint64 }

func (p *plantRNG) next() uint64 {
	p.state = p.state*6364136223846793005 + 1442695040888963407
	x := p.state
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return x
}

func (p *plantRNG) intn(n int64) int64 { return int64(p.next() % uint64(n)) }

// Table III equivalents. The paper picked "an arbitrary column" per skew
// level with overall selectivity fixed at 0.05%; we do the same with
// columns whose natural domains exclude the predicate's value:
//
//	z=0: L_DISCOUNT = 0.11      (natural discounts are 0.00–0.10)
//	z=1: L_QUANTITY > 50        (natural quantities are 1–50)
//	z=2: L_SHIPMODE = 'DRONE'   (not one of the seven TPC-H modes)
var skewLevels = []SkewLevel{
	{
		Z:    0,
		Name: "zero skew (uniform)",
		Predicate: &expr.Binary{Op: expr.OpEq,
			L: &expr.Column{Name: "L_DISCOUNT"},
			R: &expr.Literal{Val: data.Float(0.11)}},
		plant: func(r data.Record, _ *plantRNG) data.Record {
			return r.With("L_DISCOUNT", data.Float(0.11))
		},
		statColumn: "L_DISCOUNT",
		natMin:     data.Float(0.00), natMax: data.Float(0.10),
		plantMin: data.Float(0.11), plantMax: data.Float(0.11),
	},
	{
		Z:    1,
		Name: "moderate skew",
		Predicate: &expr.Binary{Op: expr.OpGt,
			L: &expr.Column{Name: "L_QUANTITY"},
			R: &expr.Literal{Val: data.Int(50)}},
		plant: func(r data.Record, rng *plantRNG) data.Record {
			return r.With("L_QUANTITY", data.Int(51+rng.intn(10)))
		},
		statColumn: "L_QUANTITY",
		natMin:     data.Int(1), natMax: data.Int(50),
		plantMin: data.Int(51), plantMax: data.Int(60),
	},
	{
		Z:    2,
		Name: "high skew",
		Predicate: &expr.Binary{Op: expr.OpEq,
			L: &expr.Column{Name: "L_SHIPMODE"},
			R: &expr.Literal{Val: data.Str("DRONE")}},
		plant: func(r data.Record, _ *plantRNG) data.Record {
			return r.With("L_SHIPMODE", data.Str("DRONE"))
		},
		// Note 'DRONE' sorts lexicographically *inside* ['AIR', 'TRUCK'],
		// so min/max range pruning alone cannot exclude it; the exact
		// match-presence bit (free, since matches are planted) is what
		// makes z=2 blocks skippable. See DESIGN.md "Input path".
		statColumn: "L_SHIPMODE",
		natMin:     data.Str("AIR"), natMax: data.Str("TRUCK"),
		plantMin: data.Str("DRONE"), plantMax: data.Str("DRONE"),
	},
}

// SkewLevels returns the Table III rows (z, name, predicate).
func SkewLevels() []SkewLevel { return skewLevels }

// LevelForZ returns the skew level for an exponent.
func LevelForZ(z float64) (SkewLevel, error) {
	for _, l := range skewLevels {
		if l.Z == z {
			return l, nil
		}
	}
	return SkewLevel{}, fmt.Errorf("dataset: no predicate defined for z=%v (have 0, 1, 2)", z)
}

// PredicateForZ returns the planted predicate for a skew exponent.
func PredicateForZ(z float64) (expr.Expr, error) {
	l, err := LevelForZ(z)
	if err != nil {
		return nil, err
	}
	return l.Predicate, nil
}

var _ = tpch.ShipModes // documented relationship: DRONE ∉ ShipModes
