package dataset

import "testing"

// BenchmarkAcceleratedVsScan is the ablation behind DESIGN.md's
// substitution note: the accelerated match path against the physical
// full-scan path on the same partition.
func BenchmarkAcceleratedMatches(b *testing.B) {
	ds, err := Build(Spec{Scale: 1, Seed: 1, Z: 0, Selectivity: 0.005, Partitions: 40, RowsOverride: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	p := ds.Partition(0)
	fp := ds.PredicateFingerprint()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.AcceleratedMatches(fp, -1); !ok {
			b.Fatal("no acceleration")
		}
	}
}

func BenchmarkScanMatches(b *testing.B) {
	ds, err := Build(Spec{Scale: 1, Seed: 1, Z: 0, Selectivity: 0.005, Partitions: 40, RowsOverride: 200_000})
	if err != nil {
		b.Fatal(err)
	}
	p := ds.Partition(0)
	pred := ds.Predicate()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ScanMatches(pred, -1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuild100Partitions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Build(Spec{Scale: 2, Seed: int64(i), Z: 2, Partitions: 100, RowsOverride: 1_000_000}); err != nil {
			b.Fatal(err)
		}
	}
}
