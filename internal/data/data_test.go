package data

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Null(), KindNull},
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{Str("x"), KindString},
		{Bool(true), KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("Kind() = %v, want %v", c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(-42).AsInt() != -42 {
		t.Error("AsInt round-trip failed")
	}
	if Float(1.5).AsFloat() != 1.5 {
		t.Error("AsFloat round-trip failed")
	}
	if Int(3).AsFloat() != 3.0 {
		t.Error("int AsFloat conversion failed")
	}
	if Str("abc").AsString() != "abc" {
		t.Error("AsString round-trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool round-trip failed")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misreported")
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(123), "123"},
		{Int(-5), "-5"},
		{Float(0.05), "0.05"},
		{Str("RAIL"), "RAIL"},
		{Bool(true), "true"},
		{Bool(false), "false"},
		{Null(), "\\N"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEncodedSizeMatchesString(t *testing.T) {
	vals := []Value{Int(0), Int(123456), Int(-9), Float(3.14), Str("hello"), Bool(true), Bool(false), Null()}
	for _, v := range vals {
		if v.EncodedSize() != len(v.String()) {
			t.Errorf("EncodedSize(%v) = %d, len(String) = %d", v, v.EncodedSize(), len(v.String()))
		}
	}
}

func TestEncodedSizeIntProperty(t *testing.T) {
	f := func(x int64) bool {
		v := Int(x)
		return v.EncodedSize() == len(v.String())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCompareNumericCrossKind(t *testing.T) {
	c, err := Compare(Int(3), Float(3.0))
	if err != nil || c != 0 {
		t.Fatalf("Compare(Int 3, Float 3.0) = %d, %v", c, err)
	}
	c, _ = Compare(Int(2), Float(2.5))
	if c != -1 {
		t.Fatalf("Compare(2, 2.5) = %d, want -1", c)
	}
	c, _ = Compare(Float(5), Int(4))
	if c != 1 {
		t.Fatalf("Compare(5.0, 4) = %d, want 1", c)
	}
}

func TestCompareStrings(t *testing.T) {
	c, err := Compare(Str("1994-01-01"), Str("1995-06-30"))
	if err != nil || c != -1 {
		t.Fatalf("date string compare = %d, %v", c, err)
	}
}

func TestCompareIncompatible(t *testing.T) {
	if _, err := Compare(Int(1), Str("1")); err == nil {
		t.Fatal("expected error comparing INT with STRING")
	}
	if _, err := Compare(Bool(true), Int(1)); err == nil {
		t.Fatal("expected error comparing BOOL with INT")
	}
}

func TestNullSortsFirst(t *testing.T) {
	c, err := Compare(Null(), Int(-1000))
	if err != nil || c != -1 {
		t.Fatalf("Compare(NULL, -1000) = %d, %v", c, err)
	}
	c, _ = Compare(Str("a"), Null())
	if c != 1 {
		t.Fatalf("Compare(a, NULL) = %d, want 1", c)
	}
}

func TestSchemaBasics(t *testing.T) {
	s := NewSchema("a", "B", "c")
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	i, ok := s.Index("b")
	if !ok || i != 1 {
		t.Fatalf("Index(b) = %d, %v", i, ok)
	}
	if !s.Has("C") || s.Has("d") {
		t.Fatal("Has misreported")
	}
	got := strings.Join(s.Columns(), ",")
	if got != "A,B,C" {
		t.Fatalf("Columns = %s", got)
	}
}

func TestSchemaDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate column did not panic")
		}
	}()
	NewSchema("x", "X")
}

func TestSchemaProject(t *testing.T) {
	s := NewSchema("a", "b", "c")
	p, err := s.Project("c", "a")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 || p.Columns()[0] != "C" {
		t.Fatalf("projected schema = %v", p.Columns())
	}
	if _, err := s.Project("nope"); err == nil {
		t.Fatal("projecting unknown column did not error")
	}
}

func TestRecordAccess(t *testing.T) {
	s := NewSchema("id", "name")
	r := NewRecord(s, []Value{Int(1), Str("alice")})
	if v, ok := r.Get("NAME"); !ok || v.AsString() != "alice" {
		t.Fatalf("Get(NAME) = %v, %v", v, ok)
	}
	if _, ok := r.Get("missing"); ok {
		t.Fatal("Get(missing) should fail")
	}
	if r.At(0).AsInt() != 1 {
		t.Fatal("At(0) wrong")
	}
	if r.MustGet("id").AsInt() != 1 {
		t.Fatal("MustGet wrong")
	}
}

func TestRecordArityMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("arity mismatch did not panic")
		}
	}()
	NewRecord(NewSchema("a", "b"), []Value{Int(1)})
}

func TestRecordProject(t *testing.T) {
	s := NewSchema("a", "b", "c")
	r := NewRecord(s, []Value{Int(1), Int(2), Int(3)})
	p, _ := s.Project("c", "a")
	pr := r.Project(p)
	if pr.At(0).AsInt() != 3 || pr.At(1).AsInt() != 1 {
		t.Fatalf("projected record = %v", pr)
	}
}

func TestRecordStringAndSize(t *testing.T) {
	s := NewSchema("a", "b", "c")
	r := NewRecord(s, []Value{Int(10), Str("xy"), Float(0.5)})
	if r.String() != "10|xy|0.5" {
		t.Fatalf("String = %q", r.String())
	}
	// 2+2+3 field bytes + 2 separators + 1 newline = 10.
	if r.EncodedSize() != len(r.String())+1 {
		t.Fatalf("EncodedSize = %d, want %d", r.EncodedSize(), len(r.String())+1)
	}
}

func TestRecordClone(t *testing.T) {
	s := NewSchema("a")
	r := NewRecord(s, []Value{Int(1)})
	c := r.Clone()
	c.vals[0] = Int(99)
	if r.At(0).AsInt() != 1 {
		t.Fatal("Clone is not independent")
	}
}

func TestSliceSource(t *testing.T) {
	s := NewSchema("a")
	recs := []Record{
		NewRecord(s, []Value{Int(1)}),
		NewRecord(s, []Value{Int(2)}),
		NewRecord(s, []Value{Int(3)}),
	}
	src := NewSliceSource(s, recs)
	if src.NumRecords() != 3 {
		t.Fatalf("NumRecords = %d", src.NumRecords())
	}
	wantBytes := int64(0)
	for _, r := range recs {
		wantBytes += int64(r.EncodedSize())
	}
	if src.SizeBytes() != wantBytes {
		t.Fatalf("SizeBytes = %d, want %d", src.SizeBytes(), wantBytes)
	}
	var seen []int64
	src.Scan(func(r Record) bool {
		seen = append(seen, r.At(0).AsInt())
		return len(seen) < 2 // early stop
	})
	if len(seen) != 2 {
		t.Fatalf("early stop failed: %v", seen)
	}
}

func TestFuncSource(t *testing.T) {
	s := NewSchema("n")
	src := &FuncSource{
		Sch: s, N: 5, Bytes: 10,
		Gen: func(yield func(Record) bool) {
			for i := int64(0); i < 5; i++ {
				if !yield(NewRecord(s, []Value{Int(i)})) {
					return
				}
			}
		},
	}
	count := 0
	src.Scan(func(Record) bool { count++; return true })
	if count != 5 || src.NumRecords() != 5 || src.SizeBytes() != 10 {
		t.Fatalf("FuncSource misbehaved: count=%d", count)
	}
}
