package data

// BlockStats summarises a source's load-time zone map for one predicate
// fingerprint: how many statistics sub-blocks the source is divided
// into, and how much of the source (blocks, rows, bytes, matches) a
// reader restricted to match-admitting sub-blocks would touch. The
// stats are computed when the dataset is built — the "aggressive
// elephant" observation that per-block min/max and match-presence
// summaries cost almost nothing at load time — so a scheduler or
// replica can answer "is this block promising?" without any read.
type BlockStats struct {
	// Blocks is the number of statistics sub-blocks covering the source;
	// MatchBlocks of them admit at least one matching record.
	Blocks      int
	MatchBlocks int
	// Rows and Bytes cover the whole source (equal to NumRecords and
	// SizeBytes); MatchRows and MatchBytes cover only the
	// match-admitting sub-blocks — what a skip-scan reads.
	Rows       int64
	Bytes      int64
	MatchRows  int64
	MatchBytes int64
	// Matches is the exact number of matching records — what a
	// clustered-index read returns.
	Matches int64
}

// StatSource is implemented by sources that computed per-block
// statistics for a predicate family at load time (the dataset package's
// planted partitions). ok is false when the fingerprint is not one the
// source has statistics for; callers must then fall back to a full
// scan.
type StatSource interface {
	BlockStats(fingerprint string) (BlockStats, bool)
}

// PrunableSource is implemented by sources that can present a pruned
// view of themselves for a fingerprinted predicate: a Source whose Scan
// yields only the records a skip-scan (indexed=false: every record of
// every match-admitting sub-block) or a clustered-index read
// (indexed=true: only the matching records) would surface, in source
// order. Both views yield exactly the records of a full scan restricted
// to their coverage, so a downstream filter on the fingerprinted
// predicate produces identical output either way (property-tested in
// the dataset package). ok is false when the source has no statistics
// for the fingerprint.
type PrunableSource interface {
	PruneScan(fingerprint string, indexed bool) (Source, bool)
}
