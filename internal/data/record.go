package data

import (
	"fmt"
	"strings"
)

// Schema names and orders the columns of a record. Schemas are immutable
// after construction and safe for concurrent use.
type Schema struct {
	cols  []string
	index map[string]int
}

// NewSchema builds a schema from column names. Names are matched
// case-insensitively (upper-cased internally, as in Hive).
func NewSchema(cols ...string) *Schema {
	s := &Schema{index: make(map[string]int, len(cols))}
	for _, c := range cols {
		u := strings.ToUpper(c)
		if _, dup := s.index[u]; dup {
			panic(fmt.Sprintf("data: duplicate column %q", c))
		}
		s.index[u] = len(s.cols)
		s.cols = append(s.cols, u)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Columns returns the column names in order. The caller must not modify
// the returned slice.
func (s *Schema) Columns() []string { return s.cols }

// Index returns the position of a column (case-insensitive) and whether
// it exists.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[strings.ToUpper(name)]
	return i, ok
}

// Has reports whether the schema contains the column.
func (s *Schema) Has(name string) bool {
	_, ok := s.Index(name)
	return ok
}

// Project returns a new schema with the given columns (which must exist).
func (s *Schema) Project(cols ...string) (*Schema, error) {
	for _, c := range cols {
		if !s.Has(c) {
			return nil, fmt.Errorf("data: unknown column %q", c)
		}
	}
	return NewSchema(cols...), nil
}

// Record is a flat row: values positionally aligned with a Schema.
type Record struct {
	schema *Schema
	vals   []Value
}

// NewRecord pairs a schema with values. The value count must match.
func NewRecord(schema *Schema, vals []Value) Record {
	if len(vals) != schema.Len() {
		panic(fmt.Sprintf("data: record has %d values for %d columns", len(vals), schema.Len()))
	}
	return Record{schema: schema, vals: vals}
}

// Schema returns the record's schema.
func (r Record) Schema() *Schema { return r.schema }

// Len returns the number of fields.
func (r Record) Len() int { return len(r.vals) }

// At returns the value at position i.
func (r Record) At(i int) Value { return r.vals[i] }

// Get returns the value of the named column.
func (r Record) Get(col string) (Value, bool) {
	i, ok := r.schema.Index(col)
	if !ok {
		return Null(), false
	}
	return r.vals[i], true
}

// MustGet returns the value of the named column, panicking if absent.
func (r Record) MustGet(col string) Value {
	v, ok := r.Get(col)
	if !ok {
		panic(fmt.Sprintf("data: record has no column %q", col))
	}
	return v
}

// Project returns a record containing only the given columns, bound to
// the provided projected schema (obtained from Schema.Project).
func (r Record) Project(proj *Schema) Record {
	vals := make([]Value, proj.Len())
	for i, c := range proj.Columns() {
		vals[i] = r.MustGet(c)
	}
	return Record{schema: proj, vals: vals}
}

// EncodedSize returns the record's size in bytes in the pipe-delimited
// text representation (fields + separators + newline), which is what the
// DFS charges for I/O.
func (r Record) EncodedSize() int {
	n := len(r.vals) // len-1 separators + newline
	for _, v := range r.vals {
		n += v.EncodedSize()
	}
	return n
}

// String renders the record as a pipe-delimited line.
func (r Record) String() string {
	var b strings.Builder
	for i, v := range r.vals {
		if i > 0 {
			b.WriteByte('|')
		}
		b.WriteString(v.String())
	}
	return b.String()
}

// Clone returns a deep copy whose value slice is independent.
func (r Record) Clone() Record {
	vals := make([]Value, len(r.vals))
	copy(vals, r.vals)
	return Record{schema: r.schema, vals: vals}
}

// With returns a copy of the record with the named column replaced.
// The original record is unchanged.
func (r Record) With(col string, v Value) Record {
	i, ok := r.schema.Index(col)
	if !ok {
		panic(fmt.Sprintf("data: record has no column %q", col))
	}
	c := r.Clone()
	c.vals[i] = v
	return c
}
