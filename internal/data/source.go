package data

// Source supplies the records of one DFS block/partition. Sources are
// usually generator-backed (records are produced deterministically on
// demand rather than materialised), so multi-terabyte datasets cost no
// memory.
type Source interface {
	// Schema of every record the source yields.
	Schema() *Schema
	// NumRecords is the exact number of records in the source.
	NumRecords() int64
	// SizeBytes is the encoded size of the source, used for I/O cost
	// accounting (what HDFS would report as the block length).
	SizeBytes() int64
	// Scan calls yield for each record in order until yield returns
	// false or records are exhausted.
	Scan(yield func(Record) bool)
}

// SliceSource is an in-memory Source backed by a slice of records.
type SliceSource struct {
	schema *Schema
	recs   []Record
	bytes  int64
}

// NewSliceSource builds a Source from materialised records.
func NewSliceSource(schema *Schema, recs []Record) *SliceSource {
	var bytes int64
	for _, r := range recs {
		bytes += int64(r.EncodedSize())
	}
	return &SliceSource{schema: schema, recs: recs, bytes: bytes}
}

// Schema implements Source.
func (s *SliceSource) Schema() *Schema { return s.schema }

// NumRecords implements Source.
func (s *SliceSource) NumRecords() int64 { return int64(len(s.recs)) }

// SizeBytes implements Source.
func (s *SliceSource) SizeBytes() int64 { return s.bytes }

// Scan implements Source.
func (s *SliceSource) Scan(yield func(Record) bool) {
	for _, r := range s.recs {
		if !yield(r) {
			return
		}
	}
}

// Records returns the backing slice (not a copy).
func (s *SliceSource) Records() []Record { return s.recs }

// FuncSource adapts a generator function into a Source.
type FuncSource struct {
	Sch   *Schema
	N     int64
	Bytes int64
	Gen   func(yield func(Record) bool)
}

// Schema implements Source.
func (f *FuncSource) Schema() *Schema { return f.Sch }

// NumRecords implements Source.
func (f *FuncSource) NumRecords() int64 { return f.N }

// SizeBytes implements Source.
func (f *FuncSource) SizeBytes() int64 { return f.Bytes }

// Scan implements Source.
func (f *FuncSource) Scan(yield func(Record) bool) { f.Gen(yield) }
