// Package data defines the record and value model shared by the DFS,
// the MapReduce runtime, the TPC-H generator and the mini-Hive layer:
// typed scalar values, column schemas, and flat records.
package data

import (
	"fmt"
	"strconv"
)

// Kind enumerates the scalar types a Value can hold.
type Kind uint8

const (
	// KindNull is the zero Value.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit float (used for decimals such as prices).
	KindFloat
	// KindString is a UTF-8 string (also used for dates, stored
	// as "YYYY-MM-DD" so lexicographic order equals date order).
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOL"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a typed scalar. The zero value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// Int wraps an int64.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float wraps a float64.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String wraps a string.
func Str(v string) Value { return Value{kind: KindString, s: v} }

// Bool wraps a bool.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Kind returns the value's type tag.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsInt returns the integer content; valid only for KindInt and KindBool.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the value as a float64, converting integers.
func (v Value) AsFloat() float64 {
	if v.kind == KindInt {
		return float64(v.i)
	}
	return v.f
}

// AsString returns the string content; valid only for KindString.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean content; valid only for KindBool.
func (v Value) AsBool() bool { return v.i != 0 }

// IsNumeric reports whether the value is an INT or FLOAT.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// String formats the value the way a text row file would store it.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "\\N"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'f', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return "?"
	}
}

// EncodedSize returns the number of bytes the value occupies in the
// delimited text representation used for size accounting.
func (v Value) EncodedSize() int {
	switch v.kind {
	case KindNull:
		return 2
	case KindInt:
		n := 1
		x := v.i
		if x < 0 {
			n++
			x = -x
		}
		for x >= 10 {
			n++
			x /= 10
		}
		return n
	case KindFloat:
		return len(strconv.FormatFloat(v.f, 'f', -1, 64))
	case KindString:
		return len(v.s)
	case KindBool:
		if v.i != 0 {
			return 4
		}
		return 5
	default:
		return 1
	}
}

// Compare orders two values: -1, 0, +1. Numeric kinds compare by value
// (INT vs FLOAT allowed); strings compare lexicographically; NULL sorts
// before everything; comparing incompatible kinds returns an error.
func Compare(a, b Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, nil
		case af > bf:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind == KindString && b.kind == KindString {
		switch {
		case a.s < b.s:
			return -1, nil
		case a.s > b.s:
			return 1, nil
		default:
			return 0, nil
		}
	}
	if a.kind == KindBool && b.kind == KindBool {
		switch {
		case a.i < b.i:
			return -1, nil
		case a.i > b.i:
			return 1, nil
		default:
			return 0, nil
		}
	}
	return 0, fmt.Errorf("data: cannot compare %s with %s", a.kind, b.kind)
}

// Equal reports deep equality with numeric cross-kind tolerance
// (Int(3) == Float(3.0)). Incomparable kinds are unequal.
func Equal(a, b Value) bool {
	c, err := Compare(a, b)
	return err == nil && c == 0
}
