package experiments

import (
	"os"
	"path/filepath"

	"dynamicmr/internal/obs"
)

// writeCellReport renders one cell's self-contained HTML observability
// report into opt.ReportDir (no-op when reporting is off). The sampler
// carries the cell's private tracer, so concurrent cells write fully
// independent reports.
func writeCellReport(opt Options, name, title string, samp *obs.Sampler, params [][2]string) error {
	if opt.ReportDir == "" || samp == nil {
		return nil
	}
	f, err := os.Create(filepath.Join(opt.ReportDir, name+".html"))
	if err != nil {
		return err
	}
	rep := obs.NewReport(title, samp, params)
	if err := rep.WriteHTML(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
