package experiments

import (
	"strings"
	"testing"

	"dynamicmr/internal/core"
)

// TestScanWorkersByteIdentical runs one figure-5 sweep inline and on
// 1- and 8-worker scan pools: every rendered table must be
// byte-identical. The executor moves real compute off the simulator
// goroutines but joins results at completion-event time, so virtual
// time — and with it every number the experiments print — must not
// observe it.
func TestScanWorkersByteIdentical(t *testing.T) {
	render := func(workers int) string {
		opt := tinyOptions()
		opt.Scales = []int{2}
		opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}
		opt.ScanWorkers = workers
		res, err := Figure5(opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var sb strings.Builder
		for _, tb := range res.Tables() {
			sb.WriteString(tb.CSV())
		}
		return sb.String()
	}
	base := render(0)
	for _, workers := range []int{1, 8} {
		if got := render(workers); got != base {
			t.Errorf("ScanWorkers=%d changed figure-5 output:\n--- inline ---\n%s\n--- workers=%d ---\n%s",
				workers, base, workers, got)
		}
	}
}
