package experiments

import (
	"sync"
	"sync/atomic"
)

// runCells executes cells 0..n-1 on a bounded worker pool. Each cell
// must be independent of the others — in this package every cell
// builds its own rig (engine, cluster, DFS, JobTracker), so cells
// share only concurrency-safe caches (dsCache, MapOutputCache) and
// read-only values (datasets, compiled policies). Callers write each
// cell's result into a pre-sized slice at index i, which keeps the
// assembled output in deterministic enumeration order: tables and
// CSVs are byte-identical at any parallelism, because virtual time
// inside a cell never observes the pool.
//
// parallelism <= 1 runs the cells sequentially on the calling
// goroutine. On error no new cells are started, in-flight cells drain,
// and the lowest-index recorded error is returned.
func runCells(parallelism, n int, cell func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			if err := cell(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(parallelism)
	for w := 0; w < parallelism; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				if failed.Load() {
					continue
				}
				if err := cell(i); err != nil {
					errs[i] = err
					failed.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
