package experiments

import (
	"fmt"
	"sync"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/tpch"
)

// rig is one experiment's simulated test bench.
type rig struct {
	eng     *sim.Engine
	cl      *cluster.Cluster
	fs      *dfs.DFS
	jt      *mapreduce.JobTracker
	catalog *hive.Catalog
}

// newRig builds a fresh cluster; multiUser selects the 16-slot
// configuration of §V-D.
func newRig(sched mapreduce.TaskScheduler, multiUser bool) *rig {
	eng := sim.NewEngine()
	cfg := cluster.PaperConfig()
	if multiUser {
		cfg = cfg.MultiUser()
	}
	cl := cluster.New(eng, cfg)
	return &rig{
		eng:     eng,
		cl:      cl,
		fs:      dfs.New(cl),
		jt:      mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), sched),
		catalog: hive.NewCatalog(),
	}
}

// load stores a dataset in the rig's DFS and registers it as a table.
func (r *rig) load(ds *dataset.Dataset, name string) (*dfs.File, error) {
	srcs := make([]data.Source, ds.NumPartitions())
	for i, p := range ds.Partitions() {
		srcs[i] = p
	}
	f, err := r.fs.Create(name, srcs, 1)
	if err != nil {
		return nil, err
	}
	if err := r.catalog.Register(&hive.Table{Name: name, Schema: tpch.LineItemSchema, File: f}); err != nil {
		return nil, err
	}
	return f, nil
}

// dsCache memoises dataset builds across cells: datasets are pure
// values independent of any engine, so one build serves every policy
// and run of a cell.
type dsCache struct {
	mu sync.Mutex
	m  map[string]*dataset.Dataset
}

func newDSCache() *dsCache { return &dsCache{m: make(map[string]*dataset.Dataset)} }

func (c *dsCache) get(spec dataset.Spec) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%s|%d|%g|%g|%d|%d|%d",
		spec.Name, spec.Scale, spec.Z, spec.Selectivity, spec.Partitions, spec.Seed, spec.RowsOverride)
	c.mu.Lock()
	defer c.mu.Unlock()
	if ds, ok := c.m[key]; ok {
		return ds, nil
	}
	ds, err := dataset.Build(spec)
	if err != nil {
		return nil, err
	}
	c.m[key] = ds
	return ds, nil
}
