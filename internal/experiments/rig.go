package experiments

import (
	"fmt"
	"io"
	"log/slog"
	"sync"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/mapreduce/executor"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/tpch"
	"dynamicmr/internal/trace"
	"dynamicmr/internal/tsdb"
	"dynamicmr/internal/vlog"
)

// sweepShared bundles the state every cell of one sweep shares: the
// dataset build cache, the map-output memo cache, and the scan
// executor pool (nil when Options.ScanWorkers is 0). All three are
// concurrency-safe; each cell otherwise owns a private rig, so
// parallel cells interact only through these.
type sweepShared struct {
	cache *dsCache
	memo  *mapreduce.MapOutputCache
	pool  *executor.Pool
	// resident is the sweep-wide resident store of the memory engine
	// mode (nil in baseline mode): partitioned, pre-sorted map outputs
	// shared across every cell's JobTracker, released by close.
	resident *mapreduce.ResidentStore
	// logW, when non-nil, is the sweep-wide structured-log sink
	// (already wrapped for line-atomic concurrent writes); each rig
	// binds its own virtual clock to it via a private vlog handler.
	logW     io.Writer
	logLevel slog.Leveler
	// inputPath is Options.InputPath, applied to every rig's runtime.
	inputPath string
	// alertRules / alerting carry Options' alert configuration into
	// every rig: when alerting, each rig runs a private time-series
	// engine (plus a qstats registry feeding its slo_burn rules) on its
	// own virtual clock. alertIntervalS is the collection cadence
	// (0 = tsdb default).
	alertRules     []tsdb.Rule
	alerting       bool
	alertIntervalS float64
}

// newSweepShared builds the shared state for one sweep.
func (o Options) newSweepShared() *sweepShared {
	sh := &sweepShared{
		cache:          newDSCache(),
		memo:           mapreduce.NewMapOutputCache(),
		pool:           executor.NewPool(o.ScanWorkers),
		inputPath:      o.InputPath,
		alertRules:     o.AlertRules,
		alerting:       o.alerting(),
		alertIntervalS: o.SampleIntervalS,
	}
	if o.memoryEngine() {
		// Unbounded within a sweep: resident bytes are bounded by the
		// memo the store wraps, and close() purges everything.
		sh.resident = mapreduce.NewResidentStore(sh.memo, 0)
		sh.resident.Retain()
	}
	if o.LogWriter != nil {
		sh.logW = vlog.LockWriter(o.LogWriter)
		sh.logLevel = o.LogLevel
		if sh.logLevel == nil {
			sh.logLevel = slog.LevelInfo
		}
	}
	return sh
}

// close stops the pool's workers and purges the resident store once
// the sweep's cells have drained. Safe on a sweep without either.
func (s *sweepShared) close() {
	if s.resident != nil {
		s.resident.Release()
	}
	s.pool.Close()
}

// rig is one experiment's simulated test bench.
type rig struct {
	eng     *sim.Engine
	cl      *cluster.Cluster
	fs      *dfs.DFS
	jt      *mapreduce.JobTracker
	catalog *hive.Catalog
	// qs and db are the per-cell query registry and time-series/alert
	// engine; both nil (and nil-safe) unless the sweep is alerting.
	qs *qstats.Registry
	db *tsdb.DB
}

// newRig builds a fresh cluster; multiUser selects the 16-slot
// configuration of §V-D. sh carries the sweep-wide shared state: the
// map-output cache every cell's JobTracker consults (policies change
// scheduling, not computation, so one cell's map outputs serve them
// all) and the scan-executor pool that runs pure record scans off each
// cell's simulator goroutine. traced enables the rig's private
// span/metric registry — each rig gets its own tracer, so concurrent
// cells never share one.
func newRig(sched mapreduce.TaskScheduler, multiUser bool, sh *sweepShared, traced bool) *rig {
	eng := sim.NewEngine()
	cfg := cluster.PaperConfig()
	if multiUser {
		cfg = cfg.MultiUser()
	}
	cl := cluster.New(eng, cfg)
	mrCfg := mapreduce.DefaultConfig()
	mrCfg.MapOutputCache = sh.memo
	mrCfg.ScanExecutor = sh.pool
	mrCfg.ResidentStore = sh.resident
	mrCfg.InputPath = sh.inputPath
	if traced {
		mrCfg.Trace = trace.Config{Enabled: true}
	}
	if sh.logW != nil {
		// Each rig owns its engine, so each binds a fresh virtual-clock
		// handler to the shared (locked) sink.
		mrCfg.Logger = vlog.New(sh.logW, sh.logLevel, eng.Now)
	}
	jt := mapreduce.NewJobTracker(cl, mrCfg, sched)
	catalog := hive.NewCatalog()
	catalog.SetLogger(jt.Logger())
	r := &rig{
		eng:     eng,
		cl:      cl,
		fs:      dfs.New(cl),
		jt:      jt,
		catalog: catalog,
	}
	if sh.alerting {
		// Each rig owns its engine, so each runs a private collection
		// tick; the registry feeds slo_burn rules and the per-query
		// series. Rules were validated by Options.validate before the
		// sweep started, so New cannot fail here.
		db, err := tsdb.New(jt, tsdb.Config{IntervalS: sh.alertIntervalS, Rules: sh.alertRules})
		if err != nil {
			panic("experiments: alert rules revalidated in newRig: " + err.Error())
		}
		r.qs = qstats.NewRegistry(jt)
		db.SetQueryStats(r.qs)
		db.Start()
		r.db = db
	}
	return r
}

// load stores a dataset in the rig's DFS and registers it as a table.
func (r *rig) load(ds *dataset.Dataset, name string) (*dfs.File, error) {
	srcs := make([]data.Source, ds.NumPartitions())
	for i, p := range ds.Partitions() {
		srcs[i] = p
	}
	f, err := r.fs.Create(name, srcs, 1)
	if err != nil {
		return nil, err
	}
	if err := r.catalog.Register(&hive.Table{Name: name, Schema: tpch.LineItemSchema, File: f}); err != nil {
		return nil, err
	}
	return f, nil
}

// dsCache memoises dataset builds across cells: datasets are pure
// values independent of any engine, so one build serves every policy
// and run of a cell. Concurrent cells requesting different keys build
// in parallel; cells requesting the same key share one build
// (singleflight via per-entry sync.Once) instead of serializing the
// whole cache behind a lock held during Build.
type dsCache struct {
	mu sync.Mutex
	m  map[string]*dsEntry
}

type dsEntry struct {
	once sync.Once
	ds   *dataset.Dataset
	err  error
}

func newDSCache() *dsCache { return &dsCache{m: make(map[string]*dsEntry)} }

func (c *dsCache) get(spec dataset.Spec) (*dataset.Dataset, error) {
	key := fmt.Sprintf("%s|%d|%g|%g|%d|%d|%d",
		spec.Name, spec.Scale, spec.Z, spec.Selectivity, spec.Partitions, spec.Seed, spec.RowsOverride)
	c.mu.Lock()
	e := c.m[key]
	if e == nil {
		e = &dsEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.ds, e.err = dataset.Build(spec) })
	return e.ds, e.err
}
