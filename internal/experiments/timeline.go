package experiments

import (
	"os"
	"path/filepath"

	"dynamicmr/internal/metrics"
	"dynamicmr/internal/trace"
)

// writeCellTimeline exports one workload cell's utilization timeline as
// CSV into opt.TraceDir (no-op when unset). The file carries the same
// columns the paper's §V-D monitoring reports.
func writeCellTimeline(opt Options, name string, sampler *metrics.Sampler) error {
	if opt.TraceDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(opt.TraceDir, name+".csv"))
	if err != nil {
		return err
	}
	if err := trace.WriteMetricCSV(f, sampler.Timeline()); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
