package experiments

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"dynamicmr/internal/core"
)

func TestRunCellsExecutesAllInAnyOrder(t *testing.T) {
	for _, par := range []int{0, 1, 2, 8, 100} {
		n := 37
		got := make([]int, n)
		if err := runCells(par, n, func(i int) error {
			got[i] = i + 1
			return nil
		}); err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		for i, v := range got {
			if v != i+1 {
				t.Fatalf("par=%d: cell %d not executed", par, i)
			}
		}
	}
	if err := runCells(4, 0, func(int) error { t.Fatal("cell called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestRunCellsStopsSchedulingOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	err := runCells(2, 100, func(i int) error {
		ran.Add(1)
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	// In-flight cells drain but the queue stops: far fewer than all 100.
	if n := ran.Load(); n >= 100 {
		t.Fatalf("all %d cells ran despite an early error", n)
	}

	// Sequential keeps fail-fast semantics.
	var seq int
	err = runCells(1, 10, func(i int) error {
		seq++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) || seq != 3 {
		t.Fatalf("sequential: err=%v after %d cells, want boom after 3", err, seq)
	}
}

func TestRunCellsReturnsLowestIndexError(t *testing.T) {
	err := runCells(4, 8, func(i int) error {
		return fmt.Errorf("cell %d failed", i)
	})
	if err == nil || err.Error() != "cell 0 failed" {
		t.Fatalf("err = %v, want lowest-index error", err)
	}
}

// TestFigure5ParallelCellsRace runs figure-5 cells concurrently (the
// satellite race check: two or more cells share only dsCache, the map
// output cache, and compiled registry policies) and requires the
// parallel result to equal the sequential one. Run under -race in CI.
func TestFigure5ParallelCellsRace(t *testing.T) {
	opt := tinyOptions()
	opt.Scales = []int{2}
	opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}
	// Reporting turns on each cell's private tracer and sampler, so this
	// also pins registry isolation across concurrent cells.
	opt.ReportDir = t.TempDir()

	opt.Parallelism = 1
	seq, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 2
	par, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Cells) != len(par.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(seq.Cells), len(par.Cells))
	}
	for i := range seq.Cells {
		if seq.Cells[i] != par.Cells[i] {
			t.Fatalf("cell %d diverged:\nseq %+v\npar %+v", i, seq.Cells[i], par.Cells[i])
		}
	}
}

// TestFigure6ParallelDeterminism is the satellite determinism check:
// Figure6 on tiny options, sequential versus -j 4, must render
// byte-identical tables and CSVs.
func TestFigure6ParallelDeterminism(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}

	opt.Parallelism = 1
	seq, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Parallelism = 4
	par, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}

	seqTables, parTables := seq.Tables(), par.Tables()
	if len(seqTables) != len(parTables) {
		t.Fatalf("table counts differ: %d vs %d", len(seqTables), len(parTables))
	}
	for i := range seqTables {
		if s, p := seqTables[i].Render(), parTables[i].Render(); s != p {
			t.Errorf("rendered table %d differs between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", i, s, p)
		}
		if s, p := seqTables[i].CSV(), parTables[i].CSV(); s != p {
			t.Errorf("CSV %d differs between -j 1 and -j 4:\n--- sequential ---\n%s\n--- parallel ---\n%s", i, s, p)
		}
	}
}
