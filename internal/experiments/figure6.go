package experiments

import (
	"fmt"

	"dynamicmr/internal/hive"
	"dynamicmr/internal/metrics"
	"dynamicmr/internal/obs"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/workload"
)

// Figure6Cell is one (policy, skew) multi-user measurement.
type Figure6Cell struct {
	Policy       string
	Z            float64
	Throughput   float64 // jobs/hour
	CPUUtilPct   float64
	DiskReadKBs  float64
	OccupancyPct float64
}

// Figure6Result holds the homogeneous multi-user study.
type Figure6Result struct {
	Opt   Options
	Cells []Figure6Cell
}

// Figure6 reproduces the homogeneous multi-user experiment (§V-D): 10
// closed-loop users, each repeatedly submitting the same sampling query
// against their own copy of the dataset, on the 16-slot-per-node
// cluster; throughput plus 30-second-interval CPU and disk readings per
// policy, for uniform and highly-skewed distributions.
func Figure6(opt Options) (*Figure6Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	type cellSpec struct {
		z      float64
		policy string
	}
	var specs []cellSpec
	for _, z := range []float64{0, 2} {
		for _, pol := range opt.Policies {
			specs = append(specs, cellSpec{z: z, policy: pol})
		}
	}
	cells := make([]Figure6Cell, len(specs))
	err := runCells(opt.parallelism(), len(specs), func(i int) error {
		cell, err := figure6Cell(opt, sh, specs[i].z, specs[i].policy)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure6Result{Opt: opt, Cells: cells}, nil
}

func figure6Cell(opt Options, sh *sweepShared, z float64, policy string) (Figure6Cell, error) {
	r := newRig(nil, true, sh, opt.traced()) // 16 map slots/node
	users := make([]*workload.User, opt.Users)
	for u := 0; u < opt.Users; u++ {
		// Per-user dataset copy (§V-D: "each works against a different
		// copy of the dataset").
		name := fmt.Sprintf("lineitem_u%d_z%g", u, z)
		ds, err := sh.cache.get(opt.workloadSpec(z, name, int64(u+1)*13))
		if err != nil {
			return Figure6Cell{}, err
		}
		if _, err := r.load(ds, name); err != nil {
			return Figure6Cell{}, err
		}
		sess := hive.NewSession(r.jt, r.catalog, nil, fmt.Sprintf("user%d", u))
		sess.SetQueryStats(r.qs)
		sess.Set("dynamic.job.policy", policy)
		pred := ds.Predicate().String()
		users[u] = &workload.User{
			Name:    fmt.Sprintf("user%d", u),
			Class:   "Sampling",
			Query:   fmt.Sprintf("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM %s WHERE %s LIMIT %d", name, pred, opt.SampleK),
			Session: sess,
		}
	}
	sampler := metrics.NewSampler(r.jt, 30)
	sampler.Start()
	var osamp *obs.Sampler
	if opt.reporting() {
		osamp = obs.NewSampler(r.jt, obs.Config{IntervalS: opt.sampleInterval(obs.DefaultIntervalS)})
		osamp.Start()
	}
	results, err := workload.Run(r.eng, users, workload.Config{WarmupS: opt.WarmupS, MeasureS: opt.MeasureS})
	if err != nil {
		return Figure6Cell{}, fmt.Errorf("figure6 (z=%g policy=%s): %w", z, policy, err)
	}
	cpu, disk, occ := sampler.Averages(opt.WarmupS)
	if err := writeCellTimeline(opt, fmt.Sprintf("figure6_z%g_%s", z, policy), sampler); err != nil {
		return Figure6Cell{}, err
	}
	if err := writeCellReport(opt, fmt.Sprintf("figure6_z%g_%s", z, policy),
		fmt.Sprintf("Figure 6 workload — z=%g, policy %s", z, policy), osamp, [][2]string{
			{"figure", "6 (homogeneous multi-user)"},
			{"skew z", fmt.Sprintf("%g", z)},
			{"policy", policy},
			{"users", fmt.Sprintf("%d", opt.Users)},
			{"window", fmt.Sprintf("%gs warmup + %gs measure", opt.WarmupS, opt.MeasureS)},
		}); err != nil {
		return Figure6Cell{}, err
	}
	rep, err := writeCellDiag(opt, fmt.Sprintf("figure6_z%g_%s", z, policy), r.jt)
	if err != nil {
		return Figure6Cell{}, err
	}
	if err := writeCellArchive(opt, fmt.Sprintf("figure6_z%g_%s", z, policy), r, rep, runarchive.RunConfig{
		Policy: policy,
		Params: map[string]string{
			"figure": "6",
			"z":      fmt.Sprintf("%g", z),
			"users":  fmt.Sprintf("%d", opt.Users),
		},
	}); err != nil {
		return Figure6Cell{}, err
	}
	if err := writeCellAlerts(opt, fmt.Sprintf("figure6_z%g_%s", z, policy), r); err != nil {
		return Figure6Cell{}, err
	}
	cs, _ := results.Class("Sampling")
	return Figure6Cell{
		Policy:       policy,
		Z:            z,
		Throughput:   cs.ThroughputJobsPerHour,
		CPUUtilPct:   cpu,
		DiskReadKBs:  disk,
		OccupancyPct: occ,
	}, nil
}

// Cell finds a measurement.
func (r *Figure6Result) Cell(policy string, z float64) (Figure6Cell, bool) {
	for _, c := range r.Cells {
		if c.Policy == policy && c.Z == z {
			return c, true
		}
	}
	return Figure6Cell{}, false
}

// Tables renders throughput, CPU and disk series per policy for the
// uniform and highly-skewed cases.
func (r *Figure6Result) Tables() []*Table {
	var out []*Table
	for _, z := range []float64{0, 2} {
		label := "uniform distribution"
		if z == 2 {
			label = "highly skewed distribution (z=2)"
		}
		t := &Table{
			Title:   fmt.Sprintf("Figure 6: homogeneous multi-user workload, %s", label),
			Columns: []string{"Policy", "Throughput (jobs/hour)", "CPU util (%)", "Disk reads (KB/s)", "Slot occupancy (%)"},
		}
		for _, p := range r.Opt.Policies {
			c, _ := r.Cell(p, z)
			t.AddRow(c.Policy, c.Throughput, c.CPUUtilPct, c.DiskReadKBs, c.OccupancyPct)
		}
		t.Notes = append(t.Notes,
			"paper: Hadoop gives the least throughput with the highest CPU/disk usage; throughput rises toward LA as GrabLimit shrinks; C slightly below LA",
		)
		if z == 2 {
			t.Notes = append(t.Notes, "paper: skew lowers throughput and raises resource usage for dynamic policies; Hadoop unaffected")
		}
		out = append(out, t)
	}
	return out
}
