package experiments

import (
	"fmt"

	"dynamicmr/internal/core"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/obs"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/sampling"
	"dynamicmr/internal/tpch"
)

// Figure5Cell is one (skew, scale, policy) measurement.
type Figure5Cell struct {
	Z      float64
	Scale  int
	Policy string
	// ResponseS is the mean job response time over opt.Runs runs.
	ResponseS float64
	// PartitionsProcessed is the mean number of map tasks completed.
	PartitionsProcessed float64
	// SampleSize is the produced sample size (should equal k whenever
	// the dataset holds at least k matches).
	SampleSize float64
}

// Figure5Result holds the full single-user study.
type Figure5Result struct {
	Opt   Options
	Cells []Figure5Cell
}

// Figure5 reproduces the single-user experiment (§V-C): for every
// combination of dataset size, skew and policy, run a predicate-based
// sampling job on an otherwise idle cluster (4 map slots/node) and
// measure response time, averaged over opt.Runs runs; Figure 5(d)'s
// partitions-processed series comes from the same runs.
func Figure5(opt Options) (*Figure5Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	reg := core.DefaultRegistry()

	type cellSpec struct {
		z      float64
		scale  int
		policy string
	}
	var specs []cellSpec
	for _, z := range []float64{0, 1, 2} {
		for _, scale := range opt.Scales {
			for _, polName := range opt.Policies {
				specs = append(specs, cellSpec{z: z, scale: scale, policy: polName})
			}
		}
	}
	cells := make([]Figure5Cell, len(specs))
	err := runCells(opt.parallelism(), len(specs), func(i int) error {
		s := specs[i]
		cell, err := figure5Cell(opt, sh, reg, s.z, s.scale, s.policy)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure5Result{Opt: opt, Cells: cells}, nil
}

// figure5Cell measures one (skew, scale, policy) combination over
// opt.Runs runs, each on a fresh idle cluster.
func figure5Cell(opt Options, sh *sweepShared, reg *core.Registry,
	z float64, scale int, polName string) (Figure5Cell, error) {
	ds, err := sh.cache.get(opt.datasetSpec(scale, z, fmt.Sprintf("lineitem_%dx_z%g", scale, z), 0))
	if err != nil {
		return Figure5Cell{}, err
	}
	pol, err := reg.Get(polName)
	if err != nil {
		return Figure5Cell{}, err
	}
	cell := Figure5Cell{Z: z, Scale: scale, Policy: pol.Name}
	for run := 0; run < opt.Runs; run++ {
		r := newRig(nil, false, sh, opt.traced()) // single-user: 4 slots/node
		// Report the cell's final run: single-user jobs are short, so a
		// 2 s default cadence keeps the time-series dense (the report
		// strides long series back down, so paper mode stays viewable).
		var osamp *obs.Sampler
		if opt.reporting() && run == opt.Runs-1 {
			osamp = obs.NewSampler(r.jt, obs.Config{IntervalS: opt.sampleInterval(2)})
			osamp.Start()
		}
		f, err := r.load(ds, ds.Name())
		if err != nil {
			return Figure5Cell{}, err
		}
		proj, err := tpch.LineItemSchema.Project("L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY")
		if err != nil {
			return Figure5Cell{}, err
		}
		spec, err := sampling.NewJobSpec(ds.Predicate(), opt.SampleK, proj, nil)
		if err != nil {
			return Figure5Cell{}, err
		}
		provider := sampling.NewProvider(opt.SampleK, opt.Seed+int64(run)*101+int64(scale))
		splits := mapreduce.SplitsForFile(f)
		client, err := core.SubmitDynamic(r.jt, spec, splits, provider, pol)
		if err != nil {
			return Figure5Cell{}, err
		}
		job := client.Job()
		// Figure 5 submits below the hive layer, so the alerting rig's
		// query registry is fed by hand — slo_burn rules need finished
		// queries.
		if r.qs.Enabled() {
			r.qs.Register(r.qs.AllocID(), job, "", len(splits))
		}
		if !mapreduce.RunUntilDone(r.eng, job, 1e8) {
			return Figure5Cell{}, fmt.Errorf("figure5: job stuck (z=%g scale=%d policy=%s)", z, scale, pol.Name)
		}
		if job.State() == mapreduce.StateFailed {
			return Figure5Cell{}, fmt.Errorf("figure5: job failed: %s", job.Failure())
		}
		if osamp != nil {
			// Run past the next sample boundary so the tail interval
			// lands in the series (the job itself may be shorter than
			// one interval).
			r.eng.RunUntil(r.eng.Now() + osamp.Interval())
			err := writeCellReport(opt,
				fmt.Sprintf("figure5_z%g_%dx_%s", z, scale, pol.Name),
				fmt.Sprintf("Figure 5 run — z=%g, scale %dx, policy %s", z, scale, pol.Name),
				osamp, [][2]string{
					{"figure", "5 (single-user response time)"},
					{"skew z", fmt.Sprintf("%g", z)},
					{"scale", fmt.Sprintf("%dx", scale)},
					{"policy", pol.Name},
					{"sample k", fmt.Sprintf("%d", opt.SampleK)},
					{"run", fmt.Sprintf("%d of %d", run+1, opt.Runs)},
				})
			if err != nil {
				return Figure5Cell{}, err
			}
		}
		cell.ResponseS += job.ResponseTime()
		cell.PartitionsProcessed += float64(job.CompletedMaps())
		cell.SampleSize += float64(len(job.Output()))
		if run == opt.Runs-1 {
			name := fmt.Sprintf("figure5_z%g_%dx_%s", z, scale, pol.Name)
			rep, err := writeCellDiag(opt, name, r.jt)
			if err != nil {
				return Figure5Cell{}, err
			}
			if err := writeCellArchive(opt, name, r, rep, runarchive.RunConfig{
				Policy: pol.Name,
				Params: map[string]string{
					"figure": "5",
					"z":      fmt.Sprintf("%g", z),
					"scale":  fmt.Sprintf("%d", scale),
				},
			}); err != nil {
				return Figure5Cell{}, err
			}
			if err := writeCellAlerts(opt, name, r); err != nil {
				return Figure5Cell{}, err
			}
		}
	}
	n := float64(opt.Runs)
	cell.ResponseS /= n
	cell.PartitionsProcessed /= n
	cell.SampleSize /= n
	return cell, nil
}

// Cell finds a measurement.
func (r *Figure5Result) Cell(z float64, scale int, policy string) (Figure5Cell, bool) {
	for _, c := range r.Cells {
		if c.Z == z && c.Scale == scale && c.Policy == policy {
			return c, true
		}
	}
	return Figure5Cell{}, false
}

// Tables renders Figure 5(a)–(c) (response time vs scale per policy,
// one table per skew) and Figure 5(d) (partitions processed, moderate
// skew).
func (r *Figure5Result) Tables() []*Table {
	var out []*Table
	skewName := map[float64]string{0: "(a) zero skew", 1: "(b) moderate skew", 2: "(c) high skew"}
	for _, z := range []float64{0, 1, 2} {
		t := &Table{
			Title:   fmt.Sprintf("Figure 5%s: response time (s) vs dataset size", skewName[z]),
			Columns: append([]string{"Scale"}, r.Opt.Policies...),
		}
		for _, scale := range r.Opt.Scales {
			row := []any{fmt.Sprintf("%dx", scale)}
			for _, p := range r.Opt.Policies {
				c, _ := r.Cell(z, scale, p)
				row = append(row, c.ResponseS)
			}
			t.AddRow(row...)
		}
		switch z {
		case 0:
			t.Notes = append(t.Notes, "paper: Hadoop response grows with input size; HA/MA fastest on idle cluster")
		case 2:
			t.Notes = append(t.Notes, "paper: conservatism has its worst effect under high skew; Hadoop unaffected by skew")
		}
		out = append(out, t)
	}
	d := &Table{
		Title:   "Figure 5(d): partitions processed per job (moderate skew)",
		Columns: append([]string{"Scale"}, r.Opt.Policies...),
		Notes:   []string{"paper: partitions processed under Hadoop is much higher than under any dynamic policy"},
	}
	for _, scale := range r.Opt.Scales {
		row := []any{fmt.Sprintf("%dx", scale)}
		for _, p := range r.Opt.Policies {
			c, _ := r.Cell(1, scale, p)
			row = append(row, c.PartitionsProcessed)
		}
		d.AddRow(row...)
	}
	out = append(out, d)
	return out
}
