package experiments

import (
	"fmt"

	"dynamicmr/internal/core"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/skew"
	"dynamicmr/internal/tpch"
)

// TableI renders the policy definitions (paper Table I) from the
// default registry — i.e. the parsed policy.xml contents.
func TableI() *Table {
	t := &Table{
		Title:   "Table I: Policies for incremental processing of input",
		Columns: []string{"Policy", "Description", "Work Threshold (% total input)", "Grab Limit", "Eval Interval (s)"},
	}
	reg := core.DefaultRegistry()
	for _, name := range reg.Names() {
		p, _ := reg.Get(name)
		t.AddRow(p.Name, p.Description, p.WorkThresholdPct, p.GrabLimitExpr, p.EvaluationIntervalS)
	}
	t.Notes = append(t.Notes,
		"paper's MA/LA rows print '(AS < 0)?', a typo for AS > 0 per the §III-B prose")
	return t
}

// TableII renders dataset properties per scale (paper Table II):
// cardinality, size, and partition count for each generated LINEITEM
// dataset.
func TableII(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Table II: Generated LINEITEM datasets",
		Columns: []string{"Scale", "Rows (M)", "Size (GB)", "Partitions", "Matches @0.05%"},
	}
	for _, s := range opt.Scales {
		rows := int64(s) * opt.rowsPerScale()
		bytes := rows * tpch.AvgRowBytes
		t.AddRow(
			fmt.Sprintf("%dx", s),
			float64(rows)/1e6,
			float64(bytes)/1e9,
			s*dataset.PartitionsPerScale,
			int64(float64(rows)*opt.Selectivity+0.5),
		)
	}
	t.Notes = append(t.Notes,
		"5x input partitions into 40 blocks, one per cluster disk (paper §V-B)")
	return t, nil
}

// TableIII renders the per-skew predicates (paper Table III): one
// predicate per Zipf exponent, overall selectivity fixed at 0.05%.
func TableIII() *Table {
	t := &Table{
		Title:   "Table III: Predicates and associated skew",
		Columns: []string{"Skew z", "Distribution", "Predicate", "Selectivity"},
	}
	for _, l := range dataset.SkewLevels() {
		t.AddRow(l.Z, l.Name, l.Predicate.String(), "0.05%")
	}
	t.Notes = append(t.Notes,
		"predicates target values outside the natural TPC-H domains so match placement is fully controlled",
	)
	return t
}

// Figure4 renders the distribution of matching records across the 40
// partitions of the 5x dataset for z = 0, 1, 2 (paper Figure 4:
// 15 000 matching records; z=2 concentrates ~8 700 in one partition,
// z=1 ~3 128).
func Figure4(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	const n = 40
	matches := int64(float64(5*opt.rowsPerScale())*opt.Selectivity + 0.5)
	zs := []float64{0, 1, 2}
	counts := make([][]int64, len(zs))
	if err := runCells(opt.parallelism(), len(zs), func(i int) error {
		counts[i] = skew.Counts(matches, zs[i], n, opt.Seed)
		return nil
	}); err != nil {
		return nil, err
	}
	byZ := map[float64][]int64{}
	for i, z := range zs {
		byZ[z] = counts[i]
	}
	t := &Table{
		Title:   fmt.Sprintf("Figure 4: matching records per partition, 5x input (%d matches, 40 partitions)", matches),
		Columns: []string{"Partition rank", "z=0", "z=1", "z=2"},
	}
	for k := 0; k < n; k++ {
		t.AddRow(k+1, byZ[0][k], byZ[1][k], byZ[2][k])
	}
	t.Notes = append(t.Notes,
		"paper: zero skew -> equal counts per partition; z=1 -> ~3128 in top partition; z=2 -> ~8700 in top partition (random draws, so ±10% run-to-run)",
	)
	return t, nil
}
