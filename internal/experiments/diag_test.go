package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"dynamicmr/internal/core"
)

// checkDiagCSV parses one per-cell diagnosis CSV and verifies the
// breakdown property on every job row: the nine breakdown components
// sum to the makespan (writeCellDiag already enforced the full
// invariant set in-process; this re-checks it from the file the way a
// downstream consumer would read it). Returns the number of job rows.
func checkDiagCSV(t *testing.T, dir, name string) int {
	t.Helper()
	f, err := os.Open(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("diagnosis CSV missing: %v", err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(recs) < 2 {
		t.Fatalf("%s has no job rows (the cell finished no jobs?)", name)
	}
	if recs[0][0] != "job" || recs[0][4] != "makespan_s" || recs[0][14] != "path_nodes" {
		t.Fatalf("%s header wrong: %v", name, recs[0])
	}
	num := func(row []string, i int) float64 {
		v, err := strconv.ParseFloat(row[i], 64)
		if err != nil {
			t.Fatalf("%s: column %d not numeric: %v", name, i, err)
		}
		return v
	}
	for r, row := range recs[1:] {
		makespan := num(row, 4)
		if makespan <= 0 {
			t.Errorf("%s row %d: non-positive makespan %g", name, r, makespan)
		}
		sum := 0.0
		for i := 5; i <= 13; i++ { // slot_wait_s .. untraced_s
			sum += num(row, i)
		}
		if tol := 1e-6 * makespan; sum < makespan-tol || sum > makespan+tol {
			t.Errorf("%s row %d: breakdown sums to %g, makespan %g", name, r, sum, makespan)
		}
		if num(row, 14) <= 0 {
			t.Errorf("%s row %d: empty critical path", name, r)
		}
	}
	return len(recs) - 1
}

// TestFigure5DiagDir: every figure-5 cell writes a diagnosis CSV whose
// breakdowns sum to the makespan; cells run in parallel so this also
// exercises per-cell tracer isolation under -race.
func TestFigure5DiagDir(t *testing.T) {
	opt := tinyOptions()
	opt.Scales = []int{2}
	opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}
	opt.DiagDir = t.TempDir()
	opt.Parallelism = 4
	if _, err := Figure5(opt); err != nil {
		t.Fatal(err)
	}
	for _, z := range []float64{0, 1, 2} {
		for _, pol := range opt.Policies {
			n := checkDiagCSV(t, opt.DiagDir, fmt.Sprintf("figure5_z%g_2x_%s_diag.csv", z, pol))
			if n != 1 {
				t.Errorf("figure5 z=%g %s: want 1 diagnosed job, got %d", z, pol, n)
			}
		}
	}
}

// TestFigure6DiagDir covers the multi-user cells: many jobs per cell,
// every one satisfying the breakdown invariant.
func TestFigure6DiagDir(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA}
	opt.DiagDir = t.TempDir()
	if _, err := Figure6(opt); err != nil {
		t.Fatal(err)
	}
	for _, z := range []float64{0, 2} {
		checkDiagCSV(t, opt.DiagDir, fmt.Sprintf("figure6_z%g_LA_diag.csv", z))
	}
}

// TestFigure7And8DiagDir covers the heterogeneous cells under both
// schedulers (figure 8 adds the Fair Scheduler).
func TestFigure7And8DiagDir(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA}
	opt.SamplingFractions = []float64{0.5}
	opt.DiagDir = t.TempDir()
	if _, err := Figure7(opt); err != nil {
		t.Fatal(err)
	}
	checkDiagCSV(t, opt.DiagDir, "figure7_frac0.5_LA_diag.csv")

	if _, err := Figure8(opt); err != nil {
		t.Fatal(err)
	}
	checkDiagCSV(t, opt.DiagDir, "figure8_frac0.5_LA_diag.csv")
}

// TestWriteCellDiagRequiresTracing: asking for diagnosis on an
// untraced rig is a loud error, not an empty CSV.
func TestWriteCellDiagRequiresTracing(t *testing.T) {
	opt := tinyOptions()
	opt.DiagDir = t.TempDir()
	sh := opt.newSweepShared()
	defer sh.close()
	r := newRig(nil, false, sh, false) // traced=false
	if _, err := writeCellDiag(opt, "untraced_cell", r.jt); err == nil {
		t.Fatal("writeCellDiag on an untraced rig must error")
	}
}
