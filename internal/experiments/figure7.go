package experiments

import (
	"fmt"

	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/metrics"
	"dynamicmr/internal/obs"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/workload"
)

// Figure7Cell is one (sampling fraction, policy) heterogeneous
// measurement.
type Figure7Cell struct {
	Fraction float64
	Policy   string
	// SamplingThroughput and NonSamplingThroughput are jobs/hour per
	// class.
	SamplingThroughput    float64
	NonSamplingThroughput float64
	// LocalityPct and OccupancyPct support the §V-F comparison.
	LocalityPct  float64
	OccupancyPct float64
}

// Figure7Result holds a heterogeneous-workload study under one
// scheduler.
type Figure7Result struct {
	Opt       Options
	Scheduler string
	Cells     []Figure7Cell
}

// Figure7 reproduces the heterogeneous-workload experiment with the
// default FIFO scheduler (§V-E): users split into a Sampling class
// (predicate-based samples, uniform match distribution) and a
// Non-Sampling class (select-project scans at 0.05% selectivity); the
// Sampling fraction varies, and per-class throughput is measured for
// each policy the Sampling class might adopt.
func Figure7(opt Options) (*Figure7Result, error) {
	return heterogeneous(opt, nil, "default (FIFO)")
}

// Figure8 repeats Figure 7 under the Fair Scheduler (§V-F), with a 5 s
// locality wait (delay scheduling).
func Figure8(opt Options) (*Figure7Result, error) {
	return heterogeneous(opt, func() mapreduce.TaskScheduler { return mapreduce.NewFairScheduler(5) }, "fair")
}

func heterogeneous(opt Options, mkSched func() mapreduce.TaskScheduler, schedName string) (*Figure7Result, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	type cellSpec struct {
		frac   float64
		policy string
	}
	var specs []cellSpec
	for _, frac := range opt.SamplingFractions {
		for _, pol := range opt.Policies {
			specs = append(specs, cellSpec{frac: frac, policy: pol})
		}
	}
	cells := make([]Figure7Cell, len(specs))
	err := runCells(opt.parallelism(), len(specs), func(i int) error {
		// Schedulers are stateful, so each cell constructs its own.
		var sched mapreduce.TaskScheduler
		if mkSched != nil {
			sched = mkSched()
		}
		cell, err := heterogeneousCell(opt, sh, sched, specs[i].frac, specs[i].policy)
		if err != nil {
			return err
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Figure7Result{Opt: opt, Scheduler: schedName, Cells: cells}, nil
}

func heterogeneousCell(opt Options, sh *sweepShared, sched mapreduce.TaskScheduler,
	frac float64, policy string) (Figure7Cell, error) {
	r := newRig(sched, true, sh, opt.traced())
	nSampling := int(frac*float64(opt.Users) + 0.5)
	if nSampling < 1 {
		nSampling = 1
	}
	if nSampling > opt.Users {
		nSampling = opt.Users
	}
	users := make([]*workload.User, 0, opt.Users)
	for u := 0; u < opt.Users; u++ {
		// Uniform match distribution for both classes (§V-E: "the
		// predicate used for sampling jobs corresponds to a uniform
		// distribution"; non-sampling queries are 0.05% select-project).
		name := fmt.Sprintf("lineitem_u%d", u)
		ds, err := sh.cache.get(opt.workloadSpec(0, name, int64(u+1)*17))
		if err != nil {
			return Figure7Cell{}, err
		}
		if _, err := r.load(ds, name); err != nil {
			return Figure7Cell{}, err
		}
		sess := hive.NewSession(r.jt, r.catalog, nil, fmt.Sprintf("user%d", u))
		sess.SetQueryStats(r.qs)
		pred := ds.Predicate().String()
		if u < nSampling {
			sess.Set("dynamic.job.policy", policy)
			users = append(users, &workload.User{
				Name:    fmt.Sprintf("user%d", u),
				Class:   "Sampling",
				Query:   fmt.Sprintf("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM %s WHERE %s LIMIT %d", name, pred, opt.SampleK),
				Session: sess,
			})
		} else {
			users = append(users, &workload.User{
				Name:    fmt.Sprintf("user%d", u),
				Class:   "Non-Sampling",
				Query:   fmt.Sprintf("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM %s WHERE %s", name, pred),
				Session: sess,
			})
		}
	}
	sampler := metrics.NewSampler(r.jt, 30)
	sampler.Start()
	var osamp *obs.Sampler
	if opt.reporting() {
		osamp = obs.NewSampler(r.jt, obs.Config{IntervalS: opt.sampleInterval(obs.DefaultIntervalS)})
		osamp.Start()
	}
	results, err := workload.Run(r.eng, users, workload.Config{WarmupS: opt.WarmupS, MeasureS: opt.MeasureS})
	if err != nil {
		return Figure7Cell{}, fmt.Errorf("heterogeneous (frac=%g policy=%s): %w", frac, policy, err)
	}
	_, _, occ := sampler.Averages(opt.WarmupS)
	fig, figLabel := "figure7", "Figure 7"
	if sched != nil {
		fig, figLabel = "figure8", "Figure 8"
	}
	if err := writeCellTimeline(opt, fmt.Sprintf("%s_frac%g_%s", fig, frac, policy), sampler); err != nil {
		return Figure7Cell{}, err
	}
	if err := writeCellReport(opt, fmt.Sprintf("%s_frac%g_%s", fig, frac, policy),
		fmt.Sprintf("%s workload — sampling fraction %g, policy %s", figLabel, frac, policy), osamp, [][2]string{
			{"figure", fig + " (heterogeneous workload)"},
			{"sampling fraction", fmt.Sprintf("%g", frac)},
			{"policy", policy},
			{"users", fmt.Sprintf("%d", opt.Users)},
			{"window", fmt.Sprintf("%gs warmup + %gs measure", opt.WarmupS, opt.MeasureS)},
		}); err != nil {
		return Figure7Cell{}, err
	}
	rep, err := writeCellDiag(opt, fmt.Sprintf("%s_frac%g_%s", fig, frac, policy), r.jt)
	if err != nil {
		return Figure7Cell{}, err
	}
	if err := writeCellArchive(opt, fmt.Sprintf("%s_frac%g_%s", fig, frac, policy), r, rep, runarchive.RunConfig{
		Policy: policy,
		Params: map[string]string{
			"figure":   fig,
			"fraction": fmt.Sprintf("%g", frac),
			"users":    fmt.Sprintf("%d", opt.Users),
		},
	}); err != nil {
		return Figure7Cell{}, err
	}
	if err := writeCellAlerts(opt, fmt.Sprintf("%s_frac%g_%s", fig, frac, policy), r); err != nil {
		return Figure7Cell{}, err
	}
	samp, _ := results.Class("Sampling")
	scan, _ := results.Class("Non-Sampling")
	return Figure7Cell{
		Fraction:              frac,
		Policy:                policy,
		SamplingThroughput:    samp.ThroughputJobsPerHour,
		NonSamplingThroughput: scan.ThroughputJobsPerHour,
		LocalityPct:           metrics.LocalityPct(r.jt),
		OccupancyPct:          occ,
	}, nil
}

// Cell finds a measurement.
func (r *Figure7Result) Cell(frac float64, policy string) (Figure7Cell, bool) {
	for _, c := range r.Cells {
		if c.Fraction == frac && c.Policy == policy {
			return c, true
		}
	}
	return Figure7Cell{}, false
}

// Tables renders per-class throughput against the sampling fraction for
// each policy, plus the scheduler's locality/occupancy summary.
func (r *Figure7Result) Tables() []*Table {
	mk := func(label string, pick func(Figure7Cell) float64) *Table {
		t := &Table{
			Title:   fmt.Sprintf("%s class throughput (jobs/hour), %s scheduler", label, r.Scheduler),
			Columns: append([]string{"Sampling fraction"}, r.Opt.Policies...),
		}
		for _, f := range r.Opt.SamplingFractions {
			row := []any{f}
			for _, p := range r.Opt.Policies {
				c, _ := r.Cell(f, p)
				row = append(row, pick(c))
			}
			t.AddRow(row...)
		}
		return t
	}
	a := mk("Sampling", func(c Figure7Cell) float64 { return c.SamplingThroughput })
	a.Notes = append(a.Notes,
		"paper: sampling-class throughput rises with the sampling fraction; policy ordering matches the homogeneous study")
	b := mk("Non-Sampling", func(c Figure7Cell) float64 { return c.NonSamplingThroughput })
	b.Notes = append(b.Notes,
		"paper: non-sampling throughput is least when the sampling class uses Hadoop; LA vs Hadoop raises it ~3x at 20% sampling users and up to ~8x at 80%")

	s := &Table{
		Title:   fmt.Sprintf("Scheduler behaviour, %s scheduler", r.Scheduler),
		Columns: []string{"Sampling fraction", "Policy", "Locality (%)", "Slot occupancy (%)"},
		Notes:   []string{"paper §V-F: Fair Scheduler ~88% locality at ~18% occupancy; default scheduler ~57% at ~44%"},
	}
	for _, c := range r.Cells {
		s.AddRow(c.Fraction, c.Policy, c.LocalityPct, c.OccupancyPct)
	}
	return []*Table{a, b, s}
}
