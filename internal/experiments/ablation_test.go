package experiments

import (
	"strconv"
	"testing"
)

func cellFloat(t *testing.T, tb *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tb.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q: %v", row, col, tb.Rows[row][col], err)
	}
	return v
}

func TestAblationInterval(t *testing.T) {
	tb, err := AblationInterval(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Very long intervals must cost response time versus short ones.
	short := cellFloat(t, tb, 0, 1) // 1s interval
	long := cellFloat(t, tb, 5, 1)  // 32s interval
	if long <= short {
		t.Errorf("32s-interval response %v <= 1s-interval response %v", long, short)
	}
	// Short intervals consult the provider at least as often.
	if cellFloat(t, tb, 0, 2) < cellFloat(t, tb, 5, 2) {
		t.Errorf("1s interval evaluated less often than 32s interval")
	}
}

func TestAblationThreshold(t *testing.T) {
	tb, err := AblationThreshold(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Higher thresholds never increase the consultation count.
	prev := cellFloat(t, tb, 0, 2)
	for i := 1; i < len(tb.Rows); i++ {
		cur := cellFloat(t, tb, i, 2)
		if cur > prev+0.5 {
			t.Errorf("threshold row %d: evaluations rose from %v to %v", i, prev, cur)
		}
		prev = cur
	}
	// Every row still produced a complete job (partitions > 0).
	for i := range tb.Rows {
		if cellFloat(t, tb, i, 3) <= 0 {
			t.Errorf("row %d processed no partitions", i)
		}
	}
}

func TestAblationGrabScale(t *testing.T) {
	tb, err := AblationGrabScale(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// The most aggressive setting is at least as fast as the most
	// conservative, single-user under high skew (§V-C).
	smallF := cellFloat(t, tb, 0, 1)
	bigF := cellFloat(t, tb, len(tb.Rows)-1, 1)
	if bigF > smallF {
		t.Errorf("f=1.0 response %v worse than f=0.05 response %v on idle cluster", bigF, smallF)
	}
}

func TestAblationEngineMode(t *testing.T) {
	opt := tinyOptions()
	opt.MeasureS = 300
	tb, err := AblationEngineMode(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Virtual time must not observe the engine mode: identical throughput.
	if base, mem := tb.Rows[0][1], tb.Rows[1][1]; base != mem {
		t.Errorf("throughput diverged across engine modes: baseline %s, memory %s", base, mem)
	}
	// Baseline reports no resident activity; memory mode must have
	// actually served map completions from resident parts.
	if hits := cellFloat(t, tb, 0, 2); hits != 0 {
		t.Errorf("baseline row reports %v delta hits", hits)
	}
	if hits := cellFloat(t, tb, 1, 2); hits <= 0 {
		t.Errorf("memory row reports %v delta hits, want > 0", hits)
	}
	if parts := cellFloat(t, tb, 1, 3); parts <= 0 {
		t.Errorf("memory row reports %v resident parts, want > 0", parts)
	}
}

func TestAblationAdaptive(t *testing.T) {
	opt := tinyOptions()
	opt.MeasureS = 300
	tb, err := AblationAdaptive(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	var cResp, haResp, adResp, cTp, haTp, adTp float64
	for i, r := range tb.Rows {
		switch r[0] {
		case "C":
			cResp, cTp = cellFloat(t, tb, i, 1), cellFloat(t, tb, i, 2)
		case "HA":
			haResp, haTp = cellFloat(t, tb, i, 1), cellFloat(t, tb, i, 2)
		case "Adaptive":
			adResp, adTp = cellFloat(t, tb, i, 1), cellFloat(t, tb, i, 2)
		}
	}
	// Idle cluster: HA beats C; adaptive must be closer to HA than C is.
	if haResp >= cResp {
		t.Fatalf("precondition failed: HA response %v >= C response %v", haResp, cResp)
	}
	if adResp > (haResp+cResp)/2 {
		t.Errorf("adaptive idle response %v not in HA's half (HA %v, C %v)", adResp, haResp, cResp)
	}
	// Shared cluster: C beats HA; adaptive must land in the
	// conservative half — the queued-backlog signal must stop it from
	// collapsing to HA's aggressive behaviour.
	if cTp <= haTp {
		t.Fatalf("precondition failed: C throughput %v <= HA throughput %v", cTp, haTp)
	}
	if adTp < (cTp+haTp)/2 {
		t.Errorf("adaptive multi-user throughput %v not in C's half (C %v, HA %v)", adTp, cTp, haTp)
	}
}
