// Package experiments reproduces every table and figure of the paper's
// evaluation (§V): one runner per artifact, each returning renderable
// result tables whose rows mirror what the paper reports. The cmd/
// experiments binary prints them; bench_test.go wraps each runner in a
// testing.B benchmark.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a renderable result grid.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the paper's corresponding qualitative claims, so a
	// reader can compare shape on the spot.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.2f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// Render produces an aligned text table.
func (t *Table) Render() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quoted as needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
