package experiments

import (
	"fmt"
	"path/filepath"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/runarchive"
)

// writeCellArchive snapshots one cell's trace into a cross-run archive
// (<name>.archive.gz, schema dynamicmr.archive/1) in opt.ArchiveDir;
// no-op when archiving is off. The manifest is left unstamped
// (CreatedUnixMS 0) so a cell's archive bytes are deterministic across
// reruns, matching the sweep's byte-identical output contract — two
// archives of the same cell differ only where the runs truly differed.
// rep is the cell's already-computed diag report when -diag-out also
// ran; nil makes New run the analyzer itself.
func writeCellArchive(opt Options, name string, jt *mapreduce.JobTracker, rep *diag.Report, cfg runarchive.RunConfig) error {
	if opt.ArchiveDir == "" {
		return nil
	}
	tr := jt.Tracer()
	if !tr.Enabled() {
		return fmt.Errorf("experiments: archive requested but cell %s ran untraced", name)
	}
	cfg.EngineMode = opt.EngineMode
	if cfg.EngineMode == "" {
		cfg.EngineMode = "baseline"
	}
	cfg.ScanWorkers = opt.ScanWorkers
	cfg.Seed = opt.Seed
	if cfg.GitRev == "" {
		cfg.GitRev = runarchive.GitRev()
	}
	a, err := runarchive.New(runarchive.Source{
		Label:        name,
		Tracer:       tr,
		Diagnosis:    rep,
		VirtualTimeS: jt.Engine().Now(),
		Config:       cfg,
	})
	if err != nil {
		return fmt.Errorf("experiments: archive (%s): %w", name, err)
	}
	return a.WriteFile(filepath.Join(opt.ArchiveDir, name+".archive.gz"))
}
