package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/runarchive"
	"dynamicmr/internal/tsdb"
)

// writeCellArchive snapshots one cell's trace into a cross-run archive
// (<name>.archive.gz, schema dynamicmr.archive/1) in opt.ArchiveDir;
// no-op when archiving is off. When the sweep is alerting, the cell's
// time-series dump and alert log ride along, so `dynmr diff` between
// two sweeps attributes alert-set differences too. The manifest is
// left unstamped (CreatedUnixMS 0) so a cell's archive bytes are
// deterministic across reruns, matching the sweep's byte-identical
// output contract — two archives of the same cell differ only where
// the runs truly differed. rep is the cell's already-computed diag
// report when -diag-out also ran; nil makes New run the analyzer
// itself.
func writeCellArchive(opt Options, name string, r *rig, rep *diag.Report, cfg runarchive.RunConfig) error {
	if opt.ArchiveDir == "" {
		return nil
	}
	tr := r.jt.Tracer()
	if !tr.Enabled() {
		return fmt.Errorf("experiments: archive requested but cell %s ran untraced", name)
	}
	cfg.EngineMode = opt.EngineMode
	if cfg.EngineMode == "" {
		cfg.EngineMode = "baseline"
	}
	cfg.ScanWorkers = opt.ScanWorkers
	cfg.Seed = opt.Seed
	if cfg.GitRev == "" {
		cfg.GitRev = runarchive.GitRev()
	}
	var series *tsdb.Dump
	var alerts *tsdb.AlertsDump
	if r.db.Enabled() {
		// The cell's clock stopped with its last job, after the last
		// scheduled tick — flush so that job reaches the series and the
		// slo_burn windows (idempotent across the alerts writer below).
		r.db.Flush()
		sd := r.db.Dump()
		ad := r.db.AlertsDump()
		series, alerts = &sd, &ad
	}
	a, err := runarchive.New(runarchive.Source{
		Label:        name,
		Tracer:       tr,
		Diagnosis:    rep,
		Series:       series,
		Alerts:       alerts,
		VirtualTimeS: r.jt.Engine().Now(),
		Config:       cfg,
	})
	if err != nil {
		return fmt.Errorf("experiments: archive (%s): %w", name, err)
	}
	return a.WriteFile(filepath.Join(opt.ArchiveDir, name+".archive.gz"))
}

// writeCellAlerts flushes one cell's alert dump (<name>.alerts.json,
// schema dynamicmr.alerts/1) into opt.AlertsDir; no-op when off. The
// dump carries only virtual timestamps, so its bytes are deterministic
// across reruns.
func writeCellAlerts(opt Options, name string, r *rig) error {
	if opt.AlertsDir == "" {
		return nil
	}
	f, err := os.Create(filepath.Join(opt.AlertsDir, name+".alerts.json"))
	if err != nil {
		return fmt.Errorf("experiments: alerts (%s): %w", name, err)
	}
	r.db.Flush() // catch jobs that finished after the last tick
	a := r.db.AlertsDump()
	if err := a.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("experiments: alerts (%s): %w", name, err)
	}
	return f.Close()
}
