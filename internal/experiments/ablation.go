package experiments

import (
	"fmt"

	"dynamicmr/internal/core"
	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sampling"
	"dynamicmr/internal/tpch"
	"dynamicmr/internal/workload"
)

// The ablations probe the design choices DESIGN.md calls out beyond
// the paper's own figures: the evaluation interval and work threshold
// (§III-B's two cadence parameters), the grab-limit scale (the
// conservative/aggressive dial Table I samples at five points), and
// the §VII runtime-adaptive policy extension.

// singleUserRun executes one dynamic sampling job on a fresh idle
// cluster under the given policy and provider wrapping, returning the
// finished job and its client.
func (o Options) singleUserRun(sh *sweepShared, z float64, pol *core.Policy,
	wrap func(core.InputProvider) core.InputProvider, conf *mapreduce.JobConf, seed int64) (*core.JobClient, error) {
	scale := o.Scales[len(o.Scales)-1]
	ds, err := sh.cache.get(o.datasetSpec(scale, z, fmt.Sprintf("lineitem_%dx_z%g", scale, z), 0))
	if err != nil {
		return nil, err
	}
	r := newRig(nil, false, sh, false)
	f, err := r.load(ds, ds.Name())
	if err != nil {
		return nil, err
	}
	proj, err := tpch.LineItemSchema.Project("L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY")
	if err != nil {
		return nil, err
	}
	spec, err := sampling.NewJobSpec(ds.Predicate(), o.SampleK, proj, conf)
	if err != nil {
		return nil, err
	}
	var provider core.InputProvider = sampling.NewProvider(o.SampleK, seed)
	if wrap != nil {
		provider = wrap(provider)
	}
	client, err := core.SubmitDynamic(r.jt, spec, mapreduce.SplitsForFile(f), provider, pol)
	if err != nil {
		return nil, err
	}
	if !mapreduce.RunUntilDone(r.eng, client.Job(), 1e8) {
		return nil, fmt.Errorf("ablation job stuck under %s", pol.Name)
	}
	if client.Job().State() == mapreduce.StateFailed {
		return nil, fmt.Errorf("ablation job failed: %s", client.Job().Failure())
	}
	return client, nil
}

// AblationInterval sweeps the EvaluationInterval for the LA policy:
// too-short intervals buy little, too-long ones stall the job between
// increments (§III-B parameter 1).
func AblationInterval(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	base, err := core.DefaultRegistry().Get(core.PolicyLA)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: evaluation interval (LA policy, single user, moderate skew)",
		Columns: []string{"Interval (s)", "Response (s)", "Evaluations", "Partitions"},
		Notes: []string{
			"§III-B: short intervals re-evaluate needlessly; long intervals leave the job waiting after its input drains",
		},
	}
	intervals := []float64{1, 2, 4, 8, 16, 32}
	clients := make([]*core.JobClient, len(intervals))
	err = runCells(opt.parallelism(), len(intervals), func(i int) error {
		pol := &core.Policy{
			Name:                fmt.Sprintf("LA-%gs", intervals[i]),
			EvaluationIntervalS: intervals[i],
			WorkThresholdPct:    base.WorkThresholdPct,
			GrabLimitExpr:       base.GrabLimitExpr,
		}
		client, err := opt.singleUserRun(sh, 1, pol, nil, nil, opt.Seed)
		if err != nil {
			return err
		}
		clients[i] = client
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, client := range clients {
		j := client.Job()
		t.AddRow(intervals[i], j.ResponseTime(), client.Evaluations(), j.CompletedMaps())
	}
	return t, nil
}

// AblationThreshold sweeps the WorkThreshold (§III-B parameter 2) for
// a fixed interval and grab limit.
func AblationThreshold(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	t := &Table{
		Title:   "Ablation: work threshold (LA grab limit, 4s interval, single user, moderate skew)",
		Columns: []string{"Threshold (%)", "Response (s)", "Evaluations", "Partitions"},
		Notes: []string{
			"higher thresholds suppress provider consultations; the idle-liveness override keeps the job from stalling outright",
		},
	}
	thresholds := []float64{0, 5, 10, 15, 25, 50}
	clients := make([]*core.JobClient, len(thresholds))
	err := runCells(opt.parallelism(), len(thresholds), func(i int) error {
		pol := &core.Policy{
			Name:                fmt.Sprintf("LA-t%g", thresholds[i]),
			EvaluationIntervalS: 4,
			WorkThresholdPct:    thresholds[i],
			GrabLimitExpr:       "AS > 0 ? 0.2*AS : 0.1*TS",
		}
		client, err := opt.singleUserRun(sh, 1, pol, nil, nil, opt.Seed)
		if err != nil {
			return err
		}
		clients[i] = client
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, client := range clients {
		j := client.Job()
		t.AddRow(thresholds[i], j.ResponseTime(), client.Evaluations(), j.CompletedMaps())
	}
	return t, nil
}

// AblationGrabScale sweeps the grab-limit scale f in "f*AS": the
// continuous version of Table I's conservative-to-aggressive spectrum,
// measured single-user (where aggression wins) — the counterpart of
// Figure 5's discrete policy points.
func AblationGrabScale(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	t := &Table{
		Title:   "Ablation: grab-limit scale f (limit = f*AS, single user, high skew)",
		Columns: []string{"f", "Response (s)", "Partitions", "Records read (M)"},
		Notes: []string{
			"small f reads least but pays rounds; large f overcomes skew by covering more partitions per step (§V-C)",
		},
	}
	scales := []float64{0.05, 0.1, 0.2, 0.5, 1.0}
	clients := make([]*core.JobClient, len(scales))
	err := runCells(opt.parallelism(), len(scales), func(i int) error {
		pol := &core.Policy{
			Name:                fmt.Sprintf("f=%g", scales[i]),
			EvaluationIntervalS: 4,
			WorkThresholdPct:    0,
			GrabLimitExpr:       fmt.Sprintf("%g*AS", scales[i]),
		}
		client, err := opt.singleUserRun(sh, 2, pol, nil, nil, opt.Seed)
		if err != nil {
			return err
		}
		clients[i] = client
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, client := range clients {
		j := client.Job()
		t.AddRow(scales[i], j.ResponseTime(), j.CompletedMaps(), float64(j.Counters.MapInputRecords)/1e6)
	}
	return t, nil
}

// AblationAdaptive compares the §VII runtime-adaptive policy against
// fixed C and HA in the two regimes where each fixed policy wins: a
// single user on an idle cluster (HA territory) and a homogeneous
// multi-user workload (conservative territory). The adaptive job
// should land near the winner in both.
func AblationAdaptive(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	sh := opt.newSweepShared()
	defer sh.close()
	reg := core.DefaultRegistry()

	t := &Table{
		Title:   "Ablation: runtime-adaptive policy (§VII future work) vs fixed policies",
		Columns: []string{"Policy", "Idle-cluster response (s)", "Multi-user throughput (jobs/hour)"},
		Notes: []string{
			"adaptive should approach HA's response when idle and the conservative policies' throughput when shared",
		},
	}

	type row struct {
		name  string
		fixed string // registry policy, or "" for adaptive
	}
	rows := []row{{"C", core.PolicyC}, {"HA", core.PolicyHA}, {"Adaptive", ""}}

	type measurement struct {
		idle float64
		tp   float64
	}
	out := make([]measurement, len(rows))
	err := runCells(opt.parallelism(), len(rows), func(i int) error {
		r := rows[i]
		// Regime 1: idle cluster, single job.
		var client *core.JobClient
		var err error
		if r.fixed != "" {
			pol, perr := reg.Get(r.fixed)
			if perr != nil {
				return perr
			}
			client, err = opt.singleUserRun(sh, 1, pol, nil, nil, opt.Seed)
		} else {
			client, err = opt.singleUserRun(sh, 1, core.AdaptiveEnvelopePolicy(),
				func(p core.InputProvider) core.InputProvider { return core.NewAdaptiveProvider(p) }, nil, opt.Seed)
		}
		if err != nil {
			return err
		}
		out[i].idle = client.Job().ResponseTime()

		// Regime 2: homogeneous multi-user workload.
		polName := r.fixed
		if polName == "" {
			polName = "Adaptive"
		}
		tp, err := adaptiveWorkloadThroughput(opt, sh, polName)
		if err != nil {
			return err
		}
		out[i].tp = tp
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, r := range rows {
		t.AddRow(r.name, out[i].idle, out[i].tp)
	}
	return t, nil
}

// AblationEngineMode runs the Figure 6 homogeneous workload (LA
// policy, uniform distribution) under both engine modes. The throughput
// column must be identical across rows — the memory engine never
// touches virtual time, so any divergence is a determinism regression —
// while the resident-store columns quantify the reuse the baseline pays
// for from scratch every round: delta-shuffle hits (map completions
// served from resident parts), admitted parts, their encoded bytes and
// the dataset blocks kept pinned hot. Cells run sequentially with a
// private store per mode, so every column is deterministic and the
// table can be pinned golden.
func AblationEngineMode(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ablation: engine mode (Figure 6 workload, LA policy, uniform distribution)",
		Columns: []string{"Engine", "Throughput (jobs/hour)", "Delta hits", "Parts", "Resident (MB)", "Pinned blocks"},
		Notes: []string{
			"throughput must match across modes: the memory engine reuses resident map outputs for real wall-clock time only, never virtual time",
		},
	}
	for _, mode := range []string{"baseline", "memory"} {
		mopt := opt
		mopt.EngineMode = mode
		mopt.Parallelism = 1 // sequential cells keep the resident counters schedule-deterministic
		sh := mopt.newSweepShared()
		cell, err := figure6Cell(mopt, sh, 0, core.PolicyLA)
		if err != nil {
			sh.close()
			return nil, fmt.Errorf("ablation engine mode (%s): %w", mode, err)
		}
		var hits uint64
		var parts, pinned int
		var mb float64
		if sh.resident != nil {
			st := sh.resident.Stats()
			hits = st.Hits
			parts = st.Parts
			pinned = st.PinnedBlocks
			mb = float64(st.ResidentBytes) / (1 << 20)
		}
		sh.close()
		t.AddRow(mode, cell.Throughput, hits, parts, mb, pinned)
	}
	return t, nil
}

// adaptiveWorkloadThroughput runs the Figure 6 homogeneous workload
// under the named policy ("Adaptive" routes through the adaptive
// provider) and returns jobs/hour.
func adaptiveWorkloadThroughput(opt Options, sh *sweepShared, policy string) (float64, error) {
	r := newRig(nil, true, sh, false)
	users := make([]*workload.User, opt.Users)
	for u := 0; u < opt.Users; u++ {
		name := fmt.Sprintf("li_ad_u%d", u)
		ds, err := sh.cache.get(opt.workloadSpec(0, name, int64(u+1)*19))
		if err != nil {
			return 0, err
		}
		if _, err := r.load(ds, name); err != nil {
			return 0, err
		}
		sess := hive.NewSession(r.jt, r.catalog, nil, fmt.Sprintf("user%d", u))
		sess.Set("dynamic.job.policy", policy)
		users[u] = &workload.User{
			Name:  fmt.Sprintf("user%d", u),
			Class: "Sampling",
			Query: fmt.Sprintf("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM %s WHERE %s LIMIT %d",
				name, ds.Predicate(), opt.SampleK),
			Session: sess,
		}
	}
	res, err := workload.Run(r.eng, users, workload.Config{WarmupS: opt.WarmupS, MeasureS: opt.MeasureS})
	if err != nil {
		return 0, err
	}
	cs, _ := res.Class("Sampling")
	return cs.ThroughputJobsPerHour, nil
}
