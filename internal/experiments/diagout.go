package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/mapreduce"
)

// writeCellDiag diagnoses every job a cell's runtime traced and writes
// the per-job breakdown CSV into opt.DiagDir (no-op when diagnosis is
// off). The diagnosis invariants — critical path tiles the makespan,
// breakdown components sum to it — are enforced here, so any figure
// 5-8 cell that violates them fails its sweep loudly instead of
// emitting a silently-wrong CSV.
func writeCellDiag(opt Options, name string, jt *mapreduce.JobTracker) error {
	if opt.DiagDir == "" {
		return nil
	}
	rep := diag.FromTracer(jt.Tracer())
	if rep == nil {
		return fmt.Errorf("experiments: diag requested but cell %s ran untraced", name)
	}
	if err := rep.CheckInvariants(); err != nil {
		return fmt.Errorf("experiments: diag invariants (%s): %w", name, err)
	}
	f, err := os.Create(filepath.Join(opt.DiagDir, name+"_diag.csv"))
	if err != nil {
		return err
	}
	if err := rep.WriteJobsCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
