package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"dynamicmr/internal/diag"
	"dynamicmr/internal/mapreduce"
)

// writeCellDiag diagnoses every job a cell's runtime traced and writes
// the per-job breakdown CSV into opt.DiagDir (no-op when diagnosis is
// off). The diagnosis invariants — critical path tiles the makespan,
// breakdown components sum to it — are enforced here, so any figure
// 5-8 cell that violates them fails its sweep loudly instead of
// emitting a silently-wrong CSV. The report is returned so
// writeCellArchive can bundle it without re-running the analyzer.
func writeCellDiag(opt Options, name string, jt *mapreduce.JobTracker) (*diag.Report, error) {
	if opt.DiagDir == "" {
		return nil, nil
	}
	rep := diag.FromTracer(jt.Tracer())
	if rep == nil {
		return nil, fmt.Errorf("experiments: diag requested but cell %s ran untraced", name)
	}
	if err := rep.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("experiments: diag invariants (%s): %w", name, err)
	}
	f, err := os.Create(filepath.Join(opt.DiagDir, name+"_diag.csv"))
	if err != nil {
		return nil, err
	}
	if err := rep.WriteJobsCSV(f); err != nil {
		f.Close()
		return nil, err
	}
	return rep, f.Close()
}
