package experiments

import (
	"fmt"
	"io"
	"log/slog"

	"dynamicmr/internal/core"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/tpch"
	"dynamicmr/internal/tsdb"
)

// Options scales an experiment run. DefaultOptions reproduces the
// paper's setup; QuickOptions shrinks datasets and windows roughly an
// order of magnitude so the whole suite runs in seconds (used by
// `go test -bench` and CI), preserving every qualitative shape.
type Options struct {
	// Scales are the dataset scale factors for Figure 5.
	Scales []int
	// Runs averages each Figure 5 cell over this many runs (paper: 5).
	Runs int
	// SampleK is the required sample size (paper: 10 000).
	SampleK int64
	// Selectivity of the planted predicates (paper: 0.05% = 0.0005).
	Selectivity float64
	// RowsPerScaleOverride, when > 0, substitutes for the TPC-H 6M
	// rows/scale (quick mode).
	RowsPerScaleOverride int64
	// WorkloadRowsPerScaleOverride, when > 0, applies to the multi-user
	// datasets (Figures 6-8) instead of RowsPerScaleOverride. The
	// multi-user contention effects require partitions to stay
	// I/O-dominated, so quick configurations shrink the partition count
	// (via WorkloadScale) but not the per-partition volume.
	WorkloadRowsPerScaleOverride int64
	// Users is the multi-user workload size (paper: 10).
	Users int
	// WarmupS and MeasureS bound workload runs.
	WarmupS  float64
	MeasureS float64
	// WorkloadScale is the dataset scale for Figures 6–8 (paper: 100).
	WorkloadScale int
	// SamplingFractions for Figures 7–8 (paper: 0.2–0.8).
	SamplingFractions []float64
	// Policies to evaluate (default: all of Table I).
	Policies []string
	// Seed makes the whole experiment deterministic.
	Seed int64
	// Parallelism bounds how many sweep cells run concurrently (the
	// cmd/experiments -j flag); 0 or 1 means sequential. Each cell owns
	// a private simulation rig and results are assembled in enumeration
	// order, so tables and CSVs are byte-identical at any setting —
	// parallelism is across cells, virtual time inside a cell is
	// untouched.
	Parallelism int
	// TraceDir, when set, receives one utilization-timeline CSV per
	// workload cell (figure6_*.csv, figure7_*.csv, ...), written from
	// the cell's metrics sampler. The directory must exist.
	TraceDir string
	// ReportDir, when set, enables tracing inside every cell's rig and
	// writes one self-contained HTML run report per cell
	// (figure5_*.html, figure6_*.html, ...). The directory must exist.
	// Each cell owns a private tracer and observability sampler, so
	// reports stay isolated under Parallelism > 1.
	ReportDir string
	// DiagDir, when set, enables tracing inside every cell's rig and
	// writes one per-job diagnosis CSV per cell (figure5_*_diag.csv,
	// ...) from internal/diag: makespan broken down into slot-wait /
	// provider-wait / read / compute / shuffle / reduce, critical-path
	// length, straggler and speculative-waste counts. The directory
	// must exist. Diagnosis invariants (breakdown sums to makespan) are
	// checked on every cell; a violation fails the sweep.
	DiagDir string
	// ArchiveDir, when set, enables tracing inside every cell's rig and
	// writes one cross-run archive per cell (figure5_*.archive.gz, ...;
	// schema dynamicmr.archive/1) capturing the cell's spans, policy
	// decisions, diagnoses, counters/gauges and run config, for
	// `dynmr diff` regression attribution between sweeps. The directory
	// must exist. Archives are unstamped, so a cell's bytes are
	// deterministic across reruns.
	ArchiveDir string
	// LogWriter, when non-nil, receives the virtual-clock NDJSON
	// structured log stream (internal/vlog) from every cell's runtime
	// at LogLevel. Cells run concurrently under Parallelism > 1;
	// writes are line-atomic via an internal lock.
	LogWriter io.Writer
	// LogLevel gates LogWriter records (default slog.LevelInfo).
	LogLevel slog.Leveler
	// SampleIntervalS overrides the observability sampler cadence used
	// for ReportDir time-series; 0 picks a per-figure default (5 s for
	// single-user Figure 5 cells, 30 s — the paper's §V-D monitoring
	// cadence — for the workload figures).
	SampleIntervalS float64
	// ScanWorkers sizes the sweep-wide scan-executor pool that runs
	// pure map record scans off the simulator goroutines (the
	// cmd/experiments -scan-workers flag); 0 disables it and scans run
	// inline at the completion event, exactly as before. The executor
	// only changes where and when real compute happens — simulated
	// costs come from split metadata and results are joined at
	// completion-event time — so all tables and CSVs are byte-identical
	// at any setting.
	ScanWorkers int
	// EngineMode selects the runtime engine for every cell (the
	// cmd/experiments -engine-mode flag): "" or "baseline" is the stock
	// runtime; "memory" attaches a sweep-wide resident store so repeated
	// jobs over the same splits reuse partitioned, pre-sorted map
	// outputs (delta-shuffle) and keep their dataset blocks pinned hot.
	// Like the scan executor, the store changes real wall-clock time and
	// allocations only: all tables and CSVs are byte-identical in either
	// mode.
	EngineMode string
	// AlertRules, when non-empty, runs a per-cell time-series engine
	// (internal/tsdb) evaluating these declarative alert/SLO rules on
	// the cell's virtual clock (the cmd/experiments -alert-rules flag).
	// Alerting enables tracing inside every rig — the engine's series
	// are fed from the trace counters/gauges — and wires a per-cell
	// qstats registry so slo_burn rules see finished queries. Like the
	// reporting options, alerting changes real wall-clock time only;
	// tables and CSVs stay byte-identical.
	AlertRules []tsdb.Rule
	// AlertsDir, when set, writes one alert dump per archived cell
	// (<cell>.alerts.json, schema dynamicmr.alerts/1) from the cell's
	// alert layer (the cmd/experiments -alerts-out flag). The directory
	// must exist. AlertsDir alone (no rules) still runs the engine, so
	// the dumps are schema-valid with an empty rule set. Dumps carry
	// only virtual timestamps, so a cell's bytes are deterministic
	// across reruns.
	AlertsDir string
	// InputPath selects how map tasks read their splits in every cell
	// (the cmd/experiments -input-path flag): "" or "full" is the seed
	// behaviour (every block read, byte-identical output); "skip" reads
	// only zone-map-promising sub-blocks; "index" additionally grabs
	// statistically promising splits first (informed grab ordering).
	// Unlike ScanWorkers/EngineMode, skip and index change simulated
	// costs and provider decisions — that is the point — so their
	// tables are NOT byte-identical to full's.
	InputPath string
}

// DefaultOptions is the paper-faithful configuration.
func DefaultOptions() Options {
	return Options{
		Scales:            []int{5, 10, 20, 40, 100},
		Runs:              5,
		SampleK:           10_000,
		Selectivity:       dataset.DefaultSelectivity,
		Users:             10,
		WarmupS:           600,
		MeasureS:          3600,
		WorkloadScale:     100,
		SamplingFractions: []float64{0.2, 0.4, 0.6, 0.8},
		Policies:          []string{core.PolicyC, core.PolicyLA, core.PolicyMA, core.PolicyHA, core.PolicyHadoop},
		Seed:              1,
	}
}

// QuickOptions shrinks everything for fast regeneration: smaller
// scales (same 20x spread), 1 run per cell, shorter windows, and a
// 600k-rows-per-scale substitute that keeps partitions I/O-bound.
func QuickOptions() Options {
	o := DefaultOptions()
	o.Scales = []int{5, 10, 20}
	o.Runs = 1
	o.SampleK = 1_000
	o.RowsPerScaleOverride = 600_000
	o.WorkloadRowsPerScaleOverride = 2_400_000 // 300k rows/partition
	o.WarmupS = 200
	o.MeasureS = 1200
	o.WorkloadScale = 20
	o.SamplingFractions = []float64{0.2, 0.5, 0.8}
	return o
}

func (o Options) validate() error {
	if len(o.Scales) == 0 || o.Runs <= 0 || o.SampleK <= 0 || o.Users <= 0 {
		return fmt.Errorf("experiments: incomplete options %+v", o)
	}
	if len(o.Policies) == 0 {
		return fmt.Errorf("experiments: no policies selected")
	}
	switch o.EngineMode {
	case "", "baseline", "memory":
	default:
		return fmt.Errorf("experiments: unknown engine mode %q (want baseline or memory)", o.EngineMode)
	}
	if !mapreduce.ValidInputPath(o.InputPath) {
		return fmt.Errorf("experiments: unknown input path %q (want full, skip or index)", o.InputPath)
	}
	if err := tsdb.ValidateRules(o.AlertRules); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// memoryEngine reports whether cells run with a resident store.
func (o Options) memoryEngine() bool { return o.EngineMode == "memory" }

// datasetSpec builds the Spec for one (scale, z) cell.
func (o Options) datasetSpec(scale int, z float64, name string, seedOffset int64) dataset.Spec {
	spec := dataset.Spec{
		Name:        name,
		Scale:       scale,
		Seed:        o.Seed + seedOffset,
		Z:           z,
		Selectivity: o.Selectivity,
		Partitions:  scale * dataset.PartitionsPerScale,
	}
	if o.RowsPerScaleOverride > 0 {
		spec.RowsOverride = int64(scale) * o.RowsPerScaleOverride
	}
	return spec
}

// workloadSpec builds the Spec for a Figures 6-8 per-user dataset.
func (o Options) workloadSpec(z float64, name string, seedOffset int64) dataset.Spec {
	spec := o.datasetSpec(o.WorkloadScale, z, name, seedOffset)
	if o.WorkloadRowsPerScaleOverride > 0 {
		spec.RowsOverride = int64(o.WorkloadScale) * o.WorkloadRowsPerScaleOverride
	}
	return spec
}

// reporting reports whether cells run with an obs sampler feeding
// HTML reports.
func (o Options) reporting() bool { return o.ReportDir != "" }

// traced reports whether cells run with tracing enabled — needed by
// the HTML reports, the per-cell diagnosis CSVs, the per-cell
// cross-run archives and the alert layer (whose series come from the
// trace counters/gauges).
func (o Options) traced() bool {
	return o.ReportDir != "" || o.DiagDir != "" || o.ArchiveDir != "" || o.alerting()
}

// alerting reports whether cells run with a time-series engine and
// alert layer attached.
func (o Options) alerting() bool { return len(o.AlertRules) > 0 || o.AlertsDir != "" }

// sampleInterval returns the report-sampler cadence, falling back to
// the given per-figure default.
func (o Options) sampleInterval(def float64) float64 {
	if o.SampleIntervalS > 0 {
		return o.SampleIntervalS
	}
	return def
}

// parallelism returns the effective worker count for runCells.
func (o Options) parallelism() int {
	if o.Parallelism < 1 {
		return 1
	}
	return o.Parallelism
}

// rowsPerScale returns the effective rows per unit scale.
func (o Options) rowsPerScale() int64 {
	if o.RowsPerScaleOverride > 0 {
		return o.RowsPerScaleOverride
	}
	return tpch.RowsPerScale
}
