package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dynamicmr/internal/core"
)

// checkReport fails unless the named report exists, is non-trivial, and
// looks like a complete HTML document with at least one chart.
func checkReport(t *testing.T, dir, name string) {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatalf("report missing: %v", err)
	}
	s := string(buf)
	if len(s) < 1024 {
		t.Fatalf("%s suspiciously small (%d bytes)", name, len(s))
	}
	for _, want := range []string{"<!DOCTYPE html>", "</html>", "<svg"} {
		if !strings.Contains(s, want) {
			t.Fatalf("%s missing %q", name, want)
		}
	}
}

// TestFigure5ReportDir: reporting writes one HTML report per cell and
// leaves the measured results (tracing on) within float-accrual noise
// of a plain run. Cells run in parallel, so this doubles as a -race
// check on per-cell tracer and sampler isolation.
func TestFigure5ReportDir(t *testing.T) {
	opt := tinyOptions()
	opt.Scales = []int{2}
	opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}

	plain, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}

	opt.ReportDir = t.TempDir()
	opt.Parallelism = 4
	rep, err := Figure5(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, z := range []float64{0, 1, 2} {
		for _, pol := range opt.Policies {
			checkReport(t, opt.ReportDir, fmt.Sprintf("figure5_z%g_2x_%s.html", z, pol))
		}
	}

	// Tracing subdivides shared-resource accrual, so allow float noise
	// but nothing qualitative.
	close := func(a, b float64) bool { return math.Abs(a-b) <= 1e-6*math.Max(1, math.Abs(b)) }
	for i := range plain.Cells {
		p, r := plain.Cells[i], rep.Cells[i]
		if !close(p.ResponseS, r.ResponseS) || !close(p.PartitionsProcessed, r.PartitionsProcessed) ||
			!close(p.SampleSize, r.SampleSize) {
			t.Errorf("cell %d drifted with reporting on:\nplain %+v\nreport %+v", i, p, r)
		}
	}
}

// TestFigure6ReportDir: workload cells write reports too (named after
// the cell), alongside the -trace-out CSVs.
func TestFigure6ReportDir(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA}
	opt.ReportDir = t.TempDir()
	opt.TraceDir = opt.ReportDir
	if _, err := Figure6(opt); err != nil {
		t.Fatal(err)
	}
	for _, z := range []float64{0, 2} {
		checkReport(t, opt.ReportDir, fmt.Sprintf("figure6_z%g_LA.html", z))
		if _, err := os.Stat(filepath.Join(opt.ReportDir, fmt.Sprintf("figure6_z%g_LA.csv", z))); err != nil {
			t.Fatalf("timeline CSV missing: %v", err)
		}
	}
}

// TestFigure7ReportDir covers the heterogeneous naming scheme.
func TestFigure7ReportDir(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA}
	opt.SamplingFractions = []float64{0.5}
	opt.ReportDir = t.TempDir()
	if _, err := Figure7(opt); err != nil {
		t.Fatal(err)
	}
	checkReport(t, opt.ReportDir, "figure7_frac0.5_LA.html")
}
