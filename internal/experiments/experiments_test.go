package experiments

import (
	"strings"
	"testing"

	"dynamicmr/internal/core"
)

// tinyOptions shrinks the suite far enough for unit tests while keeping
// partitions I/O-bound (several MB each).
func tinyOptions() Options {
	o := DefaultOptions()
	o.Scales = []int{2, 5}
	o.Runs = 1
	o.SampleK = 200
	o.RowsPerScaleOverride = 400_000
	// Workload cells: 25*8 = 200 partitions of 400k rows (~50 MB) per
	// user, so 4 users oversubscribe the 160 slots 5x with I/O-bound
	// maps — the regime the paper's multi-user results live in.
	o.WorkloadRowsPerScaleOverride = 3_200_000
	o.Users = 4
	o.WarmupS = 100
	o.MeasureS = 500
	o.WorkloadScale = 25
	o.SamplingFractions = []float64{0.25, 0.75}
	return o
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "T", Columns: []string{"A", "BB"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("x,y", 3.0)
	out := tb.Render()
	if !strings.Contains(out, "A") || !strings.Contains(out, "2.5") {
		t.Fatalf("render:\n%s", out)
	}
	csv := tb.CSV()
	if !strings.Contains(csv, "\"x,y\",3") {
		t.Fatalf("csv quoting failed:\n%s", csv)
	}
}

func TestTableI(t *testing.T) {
	tb := TableI()
	if len(tb.Rows) != 5 {
		t.Fatalf("Table I has %d rows", len(tb.Rows))
	}
	out := tb.Render()
	for _, want := range []string{"Hadoop", "HA", "MA", "LA", "C", "max(0.5*TS, AS)", "inf"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table I missing %q:\n%s", want, out)
		}
	}
}

func TestTableII(t *testing.T) {
	tb, err := TableII(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// 5x row: 30M rows, 40 partitions, 15000 matches.
	r := tb.Rows[0]
	if r[0] != "5x" || r[1] != "30" || r[3] != "40" || r[4] != "15000" {
		t.Fatalf("5x row = %v", r)
	}
}

func TestTableIII(t *testing.T) {
	tb := TableIII()
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	out := tb.Render()
	if !strings.Contains(out, "L_DISCOUNT") || !strings.Contains(out, "0.05%") {
		t.Fatalf("Table III:\n%s", out)
	}
}

func TestFigure4(t *testing.T) {
	tb, err := Figure4(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 40 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// First rank of z=2 should dominate z=1 which dominates z=0.
	if !(tb.Rows[0][3] > tb.Rows[0][2]) {
		t.Fatalf("z=2 top %s <= z=1 top %s", tb.Rows[0][3], tb.Rows[0][2])
	}
}

func TestFigure5Shapes(t *testing.T) {
	res, err := Figure5(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := res.Opt
	maxScale := opt.Scales[len(opt.Scales)-1]
	minScale := opt.Scales[0]

	// 1. Hadoop response grows with input size.
	small, _ := res.Cell(0, minScale, core.PolicyHadoop)
	big, _ := res.Cell(0, maxScale, core.PolicyHadoop)
	if big.ResponseS <= small.ResponseS {
		t.Errorf("Hadoop response did not grow with scale: %v -> %v", small.ResponseS, big.ResponseS)
	}

	// 2. Hadoop is skew-independent (within 25%).
	h0, _ := res.Cell(0, maxScale, core.PolicyHadoop)
	h2, _ := res.Cell(2, maxScale, core.PolicyHadoop)
	if h2.ResponseS > h0.ResponseS*1.25 || h2.ResponseS < h0.ResponseS*0.75 {
		t.Errorf("Hadoop skew-dependent: z0=%v z2=%v", h0.ResponseS, h2.ResponseS)
	}

	// 3. On the idle cluster HA beats C.
	ha, _ := res.Cell(1, maxScale, core.PolicyHA)
	c, _ := res.Cell(1, maxScale, core.PolicyC)
	if ha.ResponseS >= c.ResponseS {
		t.Errorf("HA %v not faster than C %v on idle cluster", ha.ResponseS, c.ResponseS)
	}

	// 4. Dynamic policies process far fewer partitions than Hadoop.
	had, _ := res.Cell(1, maxScale, core.PolicyHadoop)
	la, _ := res.Cell(1, maxScale, core.PolicyLA)
	if la.PartitionsProcessed >= had.PartitionsProcessed {
		t.Errorf("LA processed %v partitions, Hadoop %v", la.PartitionsProcessed, had.PartitionsProcessed)
	}
	if had.PartitionsProcessed != float64(maxScale*8) {
		t.Errorf("Hadoop processed %v, want all %d", had.PartitionsProcessed, maxScale*8)
	}

	// 5. Every policy produced the full sample.
	for _, cell := range res.Cells {
		if cell.SampleSize != float64(res.Opt.SampleK) {
			t.Errorf("%s z=%g %dx produced %v records, want %d",
				cell.Policy, cell.Z, cell.Scale, cell.SampleSize, res.Opt.SampleK)
		}
	}

	// Rendering sanity.
	tables := res.Tables()
	if len(tables) != 4 {
		t.Fatalf("tables = %d, want 4 (a-d)", len(tables))
	}
	if !strings.Contains(tables[3].Title, "partitions processed") {
		t.Fatalf("missing 5(d): %s", tables[3].Title)
	}
}

func TestFigure6Shapes(t *testing.T) {
	opt := tinyOptions()
	// Keep runtime low: only the policies the assertions need.
	opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}
	res, err := Figure6(opt)
	if err != nil {
		t.Fatal(err)
	}
	la, ok1 := res.Cell(core.PolicyLA, 0)
	had, ok2 := res.Cell(core.PolicyHadoop, 0)
	if !ok1 || !ok2 {
		t.Fatal("missing cells")
	}
	// Multi-user: LA outperforms Hadoop in throughput.
	if la.Throughput <= had.Throughput {
		t.Errorf("LA throughput %v <= Hadoop %v under shared load", la.Throughput, had.Throughput)
	}
	// Hadoop burns at least as much disk per unit time.
	if had.DiskReadKBs < la.DiskReadKBs {
		t.Errorf("Hadoop disk %v < LA disk %v", had.DiskReadKBs, la.DiskReadKBs)
	}
	if len(res.Tables()) != 2 {
		t.Fatalf("tables = %d", len(res.Tables()))
	}
}

func TestFigure7Shapes(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}
	res, err := Figure7(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Non-sampling class does better when the sampling class is
	// conservative (LA vs Hadoop), at every fraction.
	for _, f := range opt.SamplingFractions {
		la, _ := res.Cell(f, core.PolicyLA)
		had, _ := res.Cell(f, core.PolicyHadoop)
		if la.NonSamplingThroughput <= had.NonSamplingThroughput {
			t.Errorf("frac %g: non-sampling throughput LA %v <= Hadoop %v",
				f, la.NonSamplingThroughput, had.NonSamplingThroughput)
		}
	}
	// Sampling-class throughput rises with the sampling fraction.
	lo, _ := res.Cell(opt.SamplingFractions[0], core.PolicyLA)
	hi, _ := res.Cell(opt.SamplingFractions[len(opt.SamplingFractions)-1], core.PolicyLA)
	if hi.SamplingThroughput <= lo.SamplingThroughput {
		t.Errorf("sampling throughput did not rise with fraction: %v -> %v",
			lo.SamplingThroughput, hi.SamplingThroughput)
	}
	if len(res.Tables()) != 3 {
		t.Fatalf("tables = %d", len(res.Tables()))
	}
}

func TestFigure8FairScheduler(t *testing.T) {
	opt := tinyOptions()
	opt.Policies = []string{core.PolicyLA}
	opt.SamplingFractions = []float64{0.5}
	fair, err := Figure8(opt)
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := Figure7(opt)
	if err != nil {
		t.Fatal(err)
	}
	fc, _ := fair.Cell(0.5, core.PolicyLA)
	dc, _ := fifo.Cell(0.5, core.PolicyLA)
	// §V-F: Fair Scheduler trades occupancy for locality.
	if fc.LocalityPct <= dc.LocalityPct {
		t.Errorf("fair locality %v <= fifo locality %v", fc.LocalityPct, dc.LocalityPct)
	}
	if fc.OccupancyPct >= dc.OccupancyPct {
		t.Errorf("fair occupancy %v >= fifo occupancy %v", fc.OccupancyPct, dc.OccupancyPct)
	}
	if fair.Scheduler == fifo.Scheduler {
		t.Error("scheduler labels identical")
	}
}

func TestOptionsValidate(t *testing.T) {
	bad := Options{}
	if _, err := Figure5(bad); err == nil {
		t.Error("empty options accepted")
	}
	if _, err := TableII(bad); err == nil {
		t.Error("empty options accepted by TableII")
	}
}

func TestQuickOptionsValid(t *testing.T) {
	if err := QuickOptions().validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultOptions().validate(); err != nil {
		t.Fatal(err)
	}
}
