package experiments

import (
	"strings"
	"testing"

	"dynamicmr/internal/core"
)

// TestEngineModeByteIdentical runs one figure-5 sweep in baseline and
// memory engine mode: every rendered table must be byte-identical. The
// resident store reuses partitioned map outputs for real wall-clock
// time only — simulated costs come from split metadata either way — so
// virtual time, and with it every number the experiments print, must
// not observe the mode.
func TestEngineModeByteIdentical(t *testing.T) {
	render := func(mode string) string {
		opt := tinyOptions()
		opt.Scales = []int{2}
		opt.Policies = []string{core.PolicyLA, core.PolicyHadoop}
		opt.EngineMode = mode
		res, err := Figure5(opt)
		if err != nil {
			t.Fatalf("mode=%s: %v", mode, err)
		}
		var sb strings.Builder
		for _, tb := range res.Tables() {
			sb.WriteString(tb.CSV())
		}
		return sb.String()
	}
	base := render("baseline")
	if got := render("memory"); got != base {
		t.Errorf("memory engine changed figure-5 output:\n--- baseline ---\n%s\n--- memory ---\n%s", base, got)
	}
}
