package experiments

import (
	"fmt"

	"dynamicmr/internal/core"
	"dynamicmr/internal/mapreduce"
)

// AblationInputPath sweeps the map-task input path — full scan vs
// zone-map skip-scan vs clustered-index reads with informed grab
// ordering — across the three skew levels for the dynamic policies.
// The full rows are the seed-identical baseline (every block read, so
// blocks skipped is always zero); skip charges simulated I/O only for
// the zone-map-promising sub-blocks of each grabbed split; index
// additionally probes the per-partition clustered index, reading
// matches alone, and grabs statistically promising splits first. The
// interesting regime is z >= 1, where matches concentrate in few
// partitions and most zones admit none: skip-scan leaves those blocks
// unread and response times drop accordingly. Unlike the engine-mode
// ablation, the non-full rows are NOT expected to match full — skip
// and index change simulated costs and the selectivity the providers
// observe, which is exactly the policy-game shift the flag opts into.
// Cells run sequentially with a private runtime per mode, so every
// column is deterministic and the full rows can be pinned golden.
func AblationInputPath(opt Options) (*Table, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	reg := core.DefaultRegistry()
	var pols []string
	for _, p := range opt.Policies {
		switch p {
		case core.PolicyHA, core.PolicyMA, core.PolicyLA, core.PolicyC:
			pols = append(pols, p)
		}
	}
	if len(pols) == 0 {
		return nil, fmt.Errorf("experiments: input-path ablation needs at least one of HA, MA, LA or C")
	}
	t := &Table{
		Title:   "Ablation: input path (full scan vs skip-scan vs indexed grab, single user)",
		Columns: []string{"Path", "Z", "Policy", "Response (s)", "Partitions", "Blocks read", "Blocks skipped"},
		Notes: []string{
			"full reads every block (seed-identical baseline); skip reads only zone-map-promising blocks; index probes the clustered index and grabs match-rich splits first",
			"at z >= 1 matches concentrate in few partitions, so skip/index leave most blocks unread and response drops",
		},
	}
	// One dataset build per skew level, shared across the three modes:
	// the input path changes what a map task reads, never the data.
	cache := newDSCache()
	for _, mode := range []string{mapreduce.InputPathFull, mapreduce.InputPathSkip, mapreduce.InputPathIndex} {
		mopt := opt
		mopt.InputPath = mode
		mopt.Parallelism = 1 // sequential cells keep the counters schedule-deterministic
		sh := mopt.newSweepShared()
		sh.cache = cache
		for _, z := range []float64{0, 1, 2} {
			for _, name := range pols {
				pol, err := reg.Get(name)
				if err != nil {
					sh.close()
					return nil, err
				}
				// core.SubmitDynamic bypasses the Hive session, so the mode
				// must ride the job conf explicitly for the provider to see
				// it (informed ordering keys off ConfInputPath = index).
				conf := mapreduce.NewJobConf()
				conf.Set(mapreduce.ConfInputPath, mode)
				client, err := mopt.singleUserRun(sh, z, pol, nil, conf, mopt.Seed)
				if err != nil {
					sh.close()
					return nil, fmt.Errorf("ablation input path (%s, z=%g, %s): %w", mode, z, name, err)
				}
				j := client.Job()
				t.AddRow(mode, z, name, j.ResponseTime(), j.CompletedMaps(),
					j.Counters.ScanBlocksRead, j.Counters.ScanBlocksSkipped)
			}
		}
		sh.close()
	}
	return t, nil
}
