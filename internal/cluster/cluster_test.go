package cluster

import (
	"testing"

	"dynamicmr/internal/sim"
)

func TestPaperConfigMatchesSectionVA(t *testing.T) {
	c := PaperConfig()
	if c.Nodes != 10 || c.CoresPerNode != 4 || c.DisksPerNode != 4 {
		t.Fatalf("paper cluster should be 10 nodes x 4 cores x 4 disks, got %+v", c)
	}
	if c.TotalCores() != 40 || c.TotalDisks() != 40 {
		t.Fatalf("want 40 cores and 40 disks, got %d/%d", c.TotalCores(), c.TotalDisks())
	}
	if c.MapSlotsPerNode != 4 || c.TotalMapSlots() != 40 {
		t.Fatalf("single-user config should give 40 map slots, got %d", c.TotalMapSlots())
	}
}

func TestMultiUserSlots(t *testing.T) {
	c := PaperConfig().MultiUser()
	if c.MapSlotsPerNode != 16 || c.TotalMapSlots() != 160 {
		t.Fatalf("multi-user config should give 16 slots/node, got %+v", c)
	}
	// Hardware unchanged.
	if c.TotalCores() != 40 {
		t.Fatal("MultiUser must not change core count")
	}
}

func TestValidate(t *testing.T) {
	good := PaperConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("paper config invalid: %v", err)
	}
	bads := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.CoresPerNode = -1 },
		func(c *Config) { c.DisksPerNode = 0 },
		func(c *Config) { c.DiskBandwidth = 0 },
		func(c *Config) { c.NetworkBandwidth = -5 },
		func(c *Config) { c.MapSlotsPerNode = 0 },
		func(c *Config) { c.ReduceSlotsPerNode = 0 },
	}
	for i, mutate := range bads {
		c := PaperConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewBuildsTopology(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, PaperConfig())
	if len(c.Nodes) != 10 {
		t.Fatalf("built %d nodes", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i {
			t.Fatalf("node %d has ID %d", i, n.ID)
		}
		if len(n.Disks) != 4 {
			t.Fatalf("node %d has %d disks", i, len(n.Disks))
		}
		if n.CPU.Capacity() != 4 {
			t.Fatalf("node %d CPU capacity %v", i, n.CPU.Capacity())
		}
	}
	if c.Network == nil {
		t.Fatal("network not built")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

func TestCPUTaskCappedAtOneCore(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, PaperConfig())
	var doneAt float64
	// 2 core-seconds of work on an idle 4-core node: takes 2s at the
	// 1-core per-task cap.
	c.Node(0).CPU.Submit(2, func() { doneAt = eng.Now() })
	eng.Run()
	if doneAt != 2 {
		t.Fatalf("task done at %v, want 2 (1-core cap)", doneAt)
	}
}

func TestAggregateIntegrals(t *testing.T) {
	eng := sim.NewEngine()
	c := New(eng, PaperConfig())
	c.Node(0).CPU.Submit(3, nil)
	c.Node(5).Disks[2].Submit(80e6, nil)
	eng.Run()
	if got := c.CPUUsedIntegral(); got != 3 {
		t.Fatalf("CPUUsedIntegral = %v, want 3", got)
	}
	if got := c.DiskUsedIntegral(); got != 80e6 {
		t.Fatalf("DiskUsedIntegral = %v, want 80e6", got)
	}
	if c.CPUCapacity() != 40 {
		t.Fatalf("CPUCapacity = %v", c.CPUCapacity())
	}
	if c.DiskCapacity() != 40*80e6 {
		t.Fatalf("DiskCapacity = %v", c.DiskCapacity())
	}
}
