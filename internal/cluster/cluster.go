// Package cluster models the hardware of a shared-nothing Hadoop
// cluster on top of the discrete-event engine: nodes with cores and
// disks, a shared network fabric, and per-node map/reduce slot bounds.
// The paper's test cluster (§V-A) — 10 IBM x3650 nodes, each with four
// cores, 12 GB RAM and four disks — is the default configuration.
package cluster

import (
	"fmt"

	"dynamicmr/internal/sim"
)

// Config describes cluster hardware and slot configuration.
type Config struct {
	// Nodes is the number of worker machines.
	Nodes int
	// CoresPerNode is the CPU core count per machine.
	CoresPerNode int
	// DisksPerNode is the number of independent data disks per machine.
	DisksPerNode int
	// DiskBandwidth is each disk's sequential throughput in bytes/s.
	DiskBandwidth float64
	// NetworkBandwidth is the aggregate fabric capacity in bytes/s.
	NetworkBandwidth float64
	// NICBandwidth caps a single stream's network rate in bytes/s.
	NICBandwidth float64
	// MapSlotsPerNode bounds concurrent map tasks per node (§II-C:
	// "a Hadoop cluster is pre-configured with a bound on the number of
	// concurrent map tasks per node"). The paper uses 4 for the
	// single-user study and 16 for multi-user throughput.
	MapSlotsPerNode int
	// ReduceSlotsPerNode bounds concurrent reduce tasks per node.
	ReduceSlotsPerNode int
	// NodeSpeedFactors optionally scales each node's CPU and disk
	// capacity (stragglers: factor < 1 makes a node slower). Empty
	// means all nodes run at full speed; otherwise the slice must have
	// one entry per node.
	NodeSpeedFactors []float64
}

// PaperConfig returns the §V-A cluster: 10 nodes × 4 cores × 4 disks
// (40 cores, 40 disks), 4 map slots per node.
func PaperConfig() Config {
	return Config{
		Nodes:              10,
		CoresPerNode:       4,
		DisksPerNode:       4,
		DiskBandwidth:      80e6,   // ~80 MB/s sequential, 2012-era SATA
		NetworkBandwidth:   1250e6, // 10 GbE aggregate fabric
		NICBandwidth:       125e6,  // 1 GbE per stream
		MapSlotsPerNode:    4,
		ReduceSlotsPerNode: 2,
	}
}

// MultiUser returns the configuration with 16 map slots per node, the
// setting §V-D arrived at for maximum multi-user throughput.
func (c Config) MultiUser() Config {
	c.MapSlotsPerNode = 16
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, got %d", c.Nodes)
	case c.CoresPerNode <= 0:
		return fmt.Errorf("cluster: CoresPerNode must be positive, got %d", c.CoresPerNode)
	case c.DisksPerNode <= 0:
		return fmt.Errorf("cluster: DisksPerNode must be positive, got %d", c.DisksPerNode)
	case c.DiskBandwidth <= 0:
		return fmt.Errorf("cluster: DiskBandwidth must be positive, got %v", c.DiskBandwidth)
	case c.NetworkBandwidth <= 0:
		return fmt.Errorf("cluster: NetworkBandwidth must be positive, got %v", c.NetworkBandwidth)
	case c.MapSlotsPerNode <= 0:
		return fmt.Errorf("cluster: MapSlotsPerNode must be positive, got %d", c.MapSlotsPerNode)
	case c.ReduceSlotsPerNode <= 0:
		return fmt.Errorf("cluster: ReduceSlotsPerNode must be positive, got %d", c.ReduceSlotsPerNode)
	}
	if len(c.NodeSpeedFactors) != 0 {
		if len(c.NodeSpeedFactors) != c.Nodes {
			return fmt.Errorf("cluster: %d speed factors for %d nodes", len(c.NodeSpeedFactors), c.Nodes)
		}
		for i, f := range c.NodeSpeedFactors {
			if f <= 0 {
				return fmt.Errorf("cluster: node %d speed factor %v must be positive", i, f)
			}
		}
	}
	return nil
}

// speed returns node i's speed factor.
func (c Config) speed(i int) float64 {
	if len(c.NodeSpeedFactors) == 0 {
		return 1
	}
	return c.NodeSpeedFactors[i]
}

// TotalMapSlots returns the cluster-wide map slot capacity ("TS" in the
// paper's grab-limit formulas).
func (c Config) TotalMapSlots() int { return c.Nodes * c.MapSlotsPerNode }

// TotalCores returns the cluster-wide core count.
func (c Config) TotalCores() int { return c.Nodes * c.CoresPerNode }

// TotalDisks returns the cluster-wide disk count.
func (c Config) TotalDisks() int { return c.Nodes * c.DisksPerNode }

// Node is one worker machine: a shared CPU (capacity = cores, one task
// capped at one core) and independent disks.
type Node struct {
	ID    int
	CPU   *sim.SharedResource
	Disks []*sim.SharedResource
}

// Cluster is the instantiated hardware.
type Cluster struct {
	Eng     *sim.Engine
	Cfg     Config
	Nodes   []*Node
	Network *sim.SharedResource
}

// New builds a cluster on an engine. It panics on invalid configuration
// (construction-time bug, not a runtime condition).
func New(eng *sim.Engine, cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cluster{Eng: eng, Cfg: cfg}
	for i := 0; i < cfg.Nodes; i++ {
		speed := cfg.speed(i)
		n := &Node{
			ID: i,
			CPU: sim.NewSharedResource(eng, fmt.Sprintf("node%d.cpu", i),
				float64(cfg.CoresPerNode)*speed, speed),
		}
		for d := 0; d < cfg.DisksPerNode; d++ {
			n.Disks = append(n.Disks,
				sim.NewSharedResource(eng, fmt.Sprintf("node%d.disk%d", i, d),
					cfg.DiskBandwidth*speed, cfg.DiskBandwidth*speed))
		}
		c.Nodes = append(c.Nodes, n)
	}
	nic := cfg.NICBandwidth
	if nic <= 0 {
		nic = cfg.NetworkBandwidth
	}
	c.Network = sim.NewSharedResource(eng, "network", cfg.NetworkBandwidth, nic)
	return c
}

// CPUUsedIntegral returns core-seconds consumed on this node up to now.
func (n *Node) CPUUsedIntegral() float64 { return n.CPU.UsedIntegral() }

// CPUCapacity returns the node's core capacity (core-seconds/second),
// including any speed factor.
func (n *Node) CPUCapacity() float64 { return n.CPU.Capacity() }

// DiskUsedIntegral sums bytes transferred across this node's disks up
// to now.
func (n *Node) DiskUsedIntegral() float64 {
	var t float64
	for _, d := range n.Disks {
		t += d.UsedIntegral()
	}
	return t
}

// DiskCapacity returns the node's aggregate disk bandwidth in bytes/s,
// including any speed factor.
func (n *Node) DiskCapacity() float64 {
	var t float64
	for _, d := range n.Disks {
		t += d.Capacity()
	}
	return t
}

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.Nodes[i] }

// NetworkUsedIntegral returns bytes moved over the shared fabric up to
// now.
func (c *Cluster) NetworkUsedIntegral() float64 { return c.Network.UsedIntegral() }

// NetworkCapacity returns the fabric's aggregate bandwidth in bytes/s.
func (c *Cluster) NetworkCapacity() float64 { return c.Network.Capacity() }

// CPUUsedIntegral sums core-seconds consumed across all nodes up to now.
func (c *Cluster) CPUUsedIntegral() float64 {
	var t float64
	for _, n := range c.Nodes {
		t += n.CPU.UsedIntegral()
	}
	return t
}

// DiskUsedIntegral sums bytes read/written across all disks up to now.
func (c *Cluster) DiskUsedIntegral() float64 {
	var t float64
	for _, n := range c.Nodes {
		for _, d := range n.Disks {
			t += d.UsedIntegral()
		}
	}
	return t
}

// CPUCapacity returns aggregate core capacity (core-seconds per second).
func (c *Cluster) CPUCapacity() float64 {
	return float64(c.Cfg.Nodes * c.Cfg.CoresPerNode)
}

// DiskCapacity returns aggregate disk bandwidth in bytes/s.
func (c *Cluster) DiskCapacity() float64 {
	return float64(c.Cfg.Nodes*c.Cfg.DisksPerNode) * c.Cfg.DiskBandwidth
}
