package dfs

import (
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/sim"
)

func testCluster() *cluster.Cluster {
	return cluster.New(sim.NewEngine(), cluster.PaperConfig())
}

func sources(n int, recsEach int) []data.Source {
	s := data.NewSchema("v")
	out := make([]data.Source, n)
	for i := 0; i < n; i++ {
		recs := make([]data.Record, recsEach)
		for j := range recs {
			recs[j] = data.NewRecord(s, []data.Value{data.Int(int64(i*recsEach + j))})
		}
		out[i] = data.NewSliceSource(s, recs)
	}
	return out
}

func TestCreateAndOpen(t *testing.T) {
	d := New(testCluster())
	f, err := d.Create("t", sources(3, 10), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 3 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	got, err := d.Open("t")
	if err != nil || got != f {
		t.Fatalf("Open: %v", err)
	}
	if f.TotalRecords() != 30 {
		t.Fatalf("TotalRecords = %d", f.TotalRecords())
	}
	if !d.Exists("t") || d.Exists("u") {
		t.Fatal("Exists misreported")
	}
}

func TestCreateErrors(t *testing.T) {
	d := New(testCluster())
	if _, err := d.Create("", sources(1, 1), 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := d.Create("t", nil, 1); err == nil {
		t.Error("empty file accepted")
	}
	if _, err := d.Create("t", sources(1, 1), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("t", sources(1, 1), 1); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := d.Create("big", sources(1, 1), 11); err == nil {
		t.Error("replication > nodes accepted")
	}
}

func TestOpenMissing(t *testing.T) {
	d := New(testCluster())
	if _, err := d.Open("nope"); err == nil {
		t.Fatal("Open(missing) succeeded")
	}
}

func TestDeleteAndList(t *testing.T) {
	d := New(testCluster())
	d.Create("b", sources(1, 1), 1)
	d.Create("a", sources(1, 1), 1)
	names := d.List()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("List = %v", names)
	}
	if err := d.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if d.Exists("a") {
		t.Fatal("deleted file still exists")
	}
	if err := d.Delete("a"); err == nil {
		t.Fatal("double delete accepted")
	}
}

func TestRoundRobinPlacementEven(t *testing.T) {
	d := New(testCluster())
	// 40 blocks over 40 disks: exactly one primary per disk (the
	// paper's even-distribution setup).
	f, err := d.Create("lineitem", sources(40, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Location]int{}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 1 {
			t.Fatalf("block %d has %d replicas, want 1", b.ID, len(b.Replicas))
		}
		seen[b.Primary()]++
	}
	if len(seen) != 40 {
		t.Fatalf("blocks landed on %d distinct disks, want 40", len(seen))
	}
	for loc, n := range seen {
		if n != 1 {
			t.Fatalf("disk %+v has %d blocks", loc, n)
		}
	}
	// Each node holds exactly 4 blocks.
	for node := 0; node < 10; node++ {
		if got := d.BlocksOnNode(node); got != 4 {
			t.Fatalf("node %d holds %d blocks, want 4", node, got)
		}
	}
}

func TestPlacementContinuesAcrossFiles(t *testing.T) {
	d := New(testCluster())
	f1, _ := d.Create("a", sources(1, 1), 1)
	f2, _ := d.Create("b", sources(1, 1), 1)
	if f1.Blocks[0].Primary() == f2.Blocks[0].Primary() {
		t.Fatal("round-robin cursor did not advance across files")
	}
}

func TestReplication(t *testing.T) {
	d := New(testCluster())
	f, err := d.Create("r", sources(5, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range f.Blocks {
		if len(b.Replicas) != 3 {
			t.Fatalf("block %d has %d replicas", b.ID, len(b.Replicas))
		}
		nodes := map[int]bool{}
		for _, l := range b.Replicas {
			nodes[l.Node] = true
		}
		if len(nodes) != 3 {
			t.Fatalf("block %d replicas share nodes: %+v", b.ID, b.Replicas)
		}
	}
}

func TestLocalTo(t *testing.T) {
	d := New(testCluster())
	f, _ := d.Create("t", sources(1, 1), 1)
	b := f.Blocks[0]
	p := b.Primary()
	if loc, ok := b.LocalTo(p.Node); !ok || loc != p {
		t.Fatalf("LocalTo(primary node) = %+v, %v", loc, ok)
	}
	if _, ok := b.LocalTo(p.Node + 1); ok {
		t.Fatal("LocalTo(foreign node) = true")
	}
}

func TestBlockIDsUnique(t *testing.T) {
	d := New(testCluster())
	f1, _ := d.Create("a", sources(3, 1), 1)
	f2, _ := d.Create("b", sources(3, 1), 1)
	seen := map[BlockID]bool{}
	for _, f := range []*File{f1, f2} {
		for _, b := range f.Blocks {
			if seen[b.ID] {
				t.Fatalf("duplicate block ID %d", b.ID)
			}
			seen[b.ID] = true
		}
	}
}

func TestSizeAccounting(t *testing.T) {
	d := New(testCluster())
	srcs := sources(2, 5)
	f, _ := d.Create("t", srcs, 1)
	want := srcs[0].SizeBytes() + srcs[1].SizeBytes()
	if f.TotalBytes() != want {
		t.Fatalf("TotalBytes = %d, want %d", f.TotalBytes(), want)
	}
	if f.Blocks[0].NumRecords() != 5 {
		t.Fatalf("block records = %d", f.Blocks[0].NumRecords())
	}
}
