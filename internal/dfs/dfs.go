// Package dfs implements the distributed-filesystem substrate: files are
// sequences of blocks, each block holds a record source and is placed on
// one or more (node, disk) locations. Block placement is round-robin
// across all disks, matching the paper's setup of input "evenly
// distributed across the disks with no replication" (§V-B).
package dfs

import (
	"fmt"
	"sort"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
)

// BlockID identifies a block within one DFS instance.
type BlockID int64

// Location is a (node, disk) pair holding a replica.
type Location struct {
	Node int
	Disk int
}

// Block is one stored partition of a file.
type Block struct {
	ID       BlockID
	FileName string
	// Index is the block's ordinal within its file.
	Index int
	// Source supplies the block's records (often generator-backed).
	Source data.Source
	// Replicas are the locations holding the block, primary first.
	Replicas []Location
	// pins counts residency claims on the block (the memory engine
	// mode's session store pins the blocks behind resident splits).
	pins int
}

// Pinner is implemented by record sources that can keep hot state
// materialised while pinned (the dataset package's partitions cache
// their planted-match records). Pin/Unpin calls are refcount-collapsed
// by the block: the source sees only the first Pin and the last Unpin.
type Pinner interface {
	Pin()
	Unpin()
}

// Pin takes one residency claim on the block, forwarding the first
// claim to the source when it supports pinning. Pinning is a *real*
// memory residency signal only — it never changes the simulated I/O
// the runtime charges for reading the block.
func (b *Block) Pin() {
	b.pins++
	if b.pins == 1 {
		if p, ok := b.Source.(Pinner); ok {
			p.Pin()
		}
	}
}

// Unpin drops one residency claim, releasing the source's hot state
// with the last claim. Unpin without a matching Pin is a no-op.
func (b *Block) Unpin() {
	if b.pins == 0 {
		return
	}
	b.pins--
	if b.pins == 0 {
		if p, ok := b.Source.(Pinner); ok {
			p.Unpin()
		}
	}
}

// Pinned reports whether the block holds at least one residency claim.
func (b *Block) Pinned() bool { return b.pins > 0 }

// BlockStats returns the block's load-time zone-map summary for a
// predicate fingerprint, when the source computed one. Any replica can
// answer from it — the statistics live with the block metadata, so no
// read is charged.
func (b *Block) BlockStats(fingerprint string) (data.BlockStats, bool) {
	if s, ok := b.Source.(data.StatSource); ok {
		return s.BlockStats(fingerprint)
	}
	return data.BlockStats{}, false
}

// Promising reports whether the block may hold records matching the
// fingerprinted predicate. Without statistics the answer is true — the
// block must be read to know.
func (b *Block) Promising(fingerprint string) bool {
	s, ok := b.BlockStats(fingerprint)
	if !ok {
		return true
	}
	return s.MatchBlocks > 0
}

// SizeBytes returns the block length.
func (b *Block) SizeBytes() int64 { return b.Source.SizeBytes() }

// NumRecords returns the block's record count.
func (b *Block) NumRecords() int64 { return b.Source.NumRecords() }

// LocalTo reports whether some replica lives on the given node, and if
// so which location.
func (b *Block) LocalTo(node int) (Location, bool) {
	for _, l := range b.Replicas {
		if l.Node == node {
			return l, true
		}
	}
	return Location{}, false
}

// Primary returns the first replica location.
func (b *Block) Primary() Location { return b.Replicas[0] }

// File is a named sequence of blocks.
type File struct {
	Name   string
	Blocks []*Block
}

// TotalBytes sums block sizes.
func (f *File) TotalBytes() int64 {
	var t int64
	for _, b := range f.Blocks {
		t += b.SizeBytes()
	}
	return t
}

// PinnedBlocks returns how many of the file's blocks currently hold a
// residency claim; leak tests assert it returns to zero at teardown.
func (f *File) PinnedBlocks() int {
	n := 0
	for _, b := range f.Blocks {
		if b.Pinned() {
			n++
		}
	}
	return n
}

// TotalRecords sums block record counts.
func (f *File) TotalRecords() int64 {
	var t int64
	for _, b := range f.Blocks {
		t += b.NumRecords()
	}
	return t
}

// DFS is the namespace plus placement policy.
type DFS struct {
	cluster   *cluster.Cluster
	files     map[string]*File
	nextBlock BlockID
	rr        int // round-robin cursor over (node, disk) pairs
}

// New creates an empty filesystem over the cluster.
func New(c *cluster.Cluster) *DFS {
	return &DFS{cluster: c, files: make(map[string]*File)}
}

// Cluster returns the underlying cluster.
func (d *DFS) Cluster() *cluster.Cluster { return d.cluster }

// numDisks returns the cluster-wide disk count.
func (d *DFS) numDisks() int {
	return d.cluster.Cfg.Nodes * d.cluster.Cfg.DisksPerNode
}

// location maps a flat disk ordinal to a (node, disk) pair.
func (d *DFS) location(ordinal int) Location {
	dpn := d.cluster.Cfg.DisksPerNode
	return Location{Node: ordinal / dpn, Disk: ordinal % dpn}
}

// Create stores a file with one block per source, placing replicas
// round-robin across all disks. Replication < 1 defaults to 1 (the
// paper's "no replication" setup).
func (d *DFS) Create(name string, sources []data.Source, replication int) (*File, error) {
	if name == "" {
		return nil, fmt.Errorf("dfs: empty file name")
	}
	if _, exists := d.files[name]; exists {
		return nil, fmt.Errorf("dfs: file %q already exists", name)
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("dfs: file %q needs at least one block", name)
	}
	if replication < 1 {
		replication = 1
	}
	nd := d.numDisks()
	nodes := d.cluster.Cfg.Nodes
	if replication > nodes {
		return nil, fmt.Errorf("dfs: replication %d exceeds %d nodes", replication, nodes)
	}
	f := &File{Name: name}
	for i, src := range sources {
		b := &Block{ID: d.nextBlock, FileName: name, Index: i, Source: src}
		d.nextBlock++
		// Primary replica round-robin over all disks; further replicas
		// on subsequent *nodes* (one replica per node, as HDFS ensures).
		primary := d.location(d.rr % nd)
		d.rr++
		b.Replicas = append(b.Replicas, primary)
		for r := 1; r < replication; r++ {
			loc := Location{
				Node: (primary.Node + r) % nodes,
				Disk: (primary.Disk + r) % d.cluster.Cfg.DisksPerNode,
			}
			b.Replicas = append(b.Replicas, loc)
		}
		f.Blocks = append(f.Blocks, b)
	}
	d.files[name] = f
	return f, nil
}

// Open returns the named file.
func (d *DFS) Open(name string) (*File, error) {
	f, ok := d.files[name]
	if !ok {
		return nil, fmt.Errorf("dfs: file %q not found", name)
	}
	return f, nil
}

// Exists reports whether the file is present.
func (d *DFS) Exists(name string) bool {
	_, ok := d.files[name]
	return ok
}

// Delete removes the named file.
func (d *DFS) Delete(name string) error {
	if _, ok := d.files[name]; !ok {
		return fmt.Errorf("dfs: file %q not found", name)
	}
	delete(d.files, name)
	return nil
}

// List returns all file names, sorted.
func (d *DFS) List() []string {
	names := make([]string, 0, len(d.files))
	for n := range d.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BlocksOnNode returns how many block replicas live on the node; used
// by placement tests and locality diagnostics.
func (d *DFS) BlocksOnNode(node int) int {
	count := 0
	for _, f := range d.files {
		for _, b := range f.Blocks {
			if _, ok := b.LocalTo(node); ok {
				count++
			}
		}
	}
	return count
}
