package tsdb

import (
	"encoding/json"
	"math"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
)

var schema = data.NewSchema("V")

func rig(t *testing.T) (*sim.Engine, *dfs.DFS, *mapreduce.JobTracker) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	cfg := mapreduce.DefaultConfig()
	cfg.Trace = trace.Config{Enabled: true}
	return eng, dfs.New(cl), mapreduce.NewJobTracker(cl, cfg, nil)
}

func mkFile(t *testing.T, fs *dfs.DFS, name string, blocks, recs int) *dfs.File {
	t.Helper()
	var srcs []data.Source
	for b := 0; b < blocks; b++ {
		rr := make([]data.Record, recs)
		for i := range rr {
			rr[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, rr))
	}
	f, err := fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func echoMapper(*mapreduce.JobConf) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(rec data.Record, c *mapreduce.Collector) error {
		c.Emit("k", rec)
		return nil
	})
}

func TestSeriesRollups(t *testing.T) {
	s := newSeries(8, []Resolution{{StepS: 10, Capacity: 4}})
	for i := 0; i < 25; i++ {
		s.Append(float64(i), float64(i))
	}
	pts := s.Points()
	if len(pts) != 8 {
		t.Fatalf("raw points = %d, want 8 (ring capacity)", len(pts))
	}
	if pts[0].T != 17 || pts[7].T != 24 {
		t.Fatalf("raw window = [%g, %g], want [17, 24]", pts[0].T, pts[7].T)
	}
	bs := s.Buckets(0)
	// t=0..24 spans buckets starting 0,10,20; the last is still open.
	if len(bs) != 3 {
		t.Fatalf("buckets = %d, want 3", len(bs))
	}
	b0 := bs[0]
	if b0.Start != 0 || b0.Min != 0 || b0.Max != 9 || b0.Sum != 45 || b0.Count != 10 {
		t.Fatalf("bucket 0 = %+v", b0)
	}
	open := bs[2]
	if open.Start != 20 || open.Count != 5 || open.Min != 20 || open.Max != 24 {
		t.Fatalf("open bucket = %+v", open)
	}
}

func TestSeriesBucketRingWraps(t *testing.T) {
	s := newSeries(4, []Resolution{{StepS: 1, Capacity: 3}})
	for i := 0; i < 10; i++ {
		s.Append(float64(i), 1)
	}
	bs := s.Buckets(0)
	// 9 sealed buckets produced, 3 retained, plus the open one.
	if len(bs) != 4 {
		t.Fatalf("buckets = %d, want 4", len(bs))
	}
	if bs[0].Start != 6 || bs[3].Start != 9 {
		t.Fatalf("bucket window = [%g, %g], want [6, 9]", bs[0].Start, bs[3].Start)
	}
}

func TestSeriesAt(t *testing.T) {
	s := newSeries(16, nil)
	for _, ts := range []float64{1, 5, 9} {
		s.Append(ts, ts*10)
	}
	if p, ok := s.At(6); !ok || p.T != 5 {
		t.Fatalf("At(6) = %+v, %v", p, ok)
	}
	if _, ok := s.At(0.5); ok {
		t.Fatal("At before first point should miss")
	}
}

func TestParseRules(t *testing.T) {
	good := []byte(`{"rules": [
		{"name": "queue-depth", "kind": "threshold", "series": "cluster.queued_map_tasks", "op": ">=", "value": 100, "for_s": 60, "severity": "warn"},
		{"name": "latency-slo", "kind": "slo_burn", "policy": "LA", "objective_s": 30, "max_burn_pct": 5, "window_s": 300}
	]}`)
	rules, err := ParseRules(good)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[0].Name != "queue-depth" || rules[1].Kind != KindSLOBurn {
		t.Fatalf("rules = %+v", rules)
	}
	for _, bad := range []string{
		`{"rules": []}`,
		`{"rules": [{"name": "", "kind": "threshold", "series": "x"}]}`,
		`{"rules": [{"name": "a", "kind": "nope"}]}`,
		`{"rules": [{"name": "a", "kind": "threshold"}]}`,
		`{"rules": [{"name": "a", "kind": "slo_burn"}]}`,
		`{"rules": [{"name": "a", "kind": "threshold", "series": "x", "op": "!="}]}`,
		`{"rules": [{"name": "a", "kind": "threshold", "series": "x"}, {"name": "a", "kind": "threshold", "series": "x"}]}`,
		`{"rules": [{"name": "a", "kind": "threshold", "series": "x", "typo_field": 1}]}`,
	} {
		if _, err := ParseRules([]byte(bad)); err == nil {
			t.Errorf("ParseRules(%s) accepted invalid input", bad)
		}
	}
}

// TestThresholdRuleLifecycle drives the state machine directly: breach
// → pending under for_s → firing → resolved, with both transitions in
// the event log.
func TestThresholdRuleLifecycle(t *testing.T) {
	_, _, jt := rig(t)
	db, err := New(jt, Config{Rules: []Rule{
		{Name: "hot", Kind: KindThreshold, Series: "x", Op: ">", Value: 5, ForS: 10, Severity: "page"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	step := func(now, v float64) {
		db.put(now, "x", v)
		db.evaluate(now)
	}
	step(0, 3)
	if d := db.AlertsDump(); len(d.Active) != 0 || len(d.Events) != 0 {
		t.Fatalf("no breach yet: %+v", d)
	}
	step(10, 9) // breach starts; pending
	step(15, 9) // 5s held < for_s
	if d := db.AlertsDump(); len(d.Active) != 0 {
		t.Fatalf("fired before for_s elapsed: %+v", d.Active)
	}
	step(20, 9) // 10s held → fires
	d := db.AlertsDump()
	if len(d.Active) != 1 || d.Active[0].Rule != "hot" || d.Active[0].Severity != "page" {
		t.Fatalf("active = %+v", d.Active)
	}
	if len(d.Events) != 1 || d.Events[0].State != StateFiring || d.Events[0].TimeS != 20 {
		t.Fatalf("events = %+v", d.Events)
	}
	step(30, 2) // clears
	d = db.AlertsDump()
	if len(d.Active) != 0 {
		t.Fatalf("still active after clear: %+v", d.Active)
	}
	if len(d.Events) != 2 || d.Events[1].State != StateResolved {
		t.Fatalf("events = %+v", d.Events)
	}
	if d.Schema != AlertsSchemaVersion {
		t.Fatalf("schema %q", d.Schema)
	}
}

func TestRateOfChangeRule(t *testing.T) {
	_, _, jt := rig(t)
	db, err := New(jt, Config{Rules: []Rule{
		{Name: "ramp", Kind: KindRateOfChange, Series: "c", Value: 2, WindowS: 10},
	}})
	if err != nil {
		t.Fatal(err)
	}
	db.put(0, "c", 0)
	db.evaluate(0)
	db.put(10, "c", 10) // 1/s over the window: below
	db.evaluate(10)
	if d := db.AlertsDump(); len(d.Active) != 0 {
		t.Fatalf("1/s fired: %+v", d.Active)
	}
	db.put(20, "c", 40) // 3/s: above
	db.evaluate(20)
	if d := db.AlertsDump(); len(d.Active) != 1 {
		t.Fatalf("3/s did not fire: %+v", d.Active)
	}
}

// TestSLOBurnRule feeds synthetic finished queries into the burn window
// and checks both the firing decision and the derived burn series.
func TestSLOBurnRule(t *testing.T) {
	_, _, jt := rig(t)
	db, err := New(jt, Config{Rules: []Rule{
		{Name: "slo", Kind: KindSLOBurn, Policy: "LA", ObjectiveS: 10, MaxBurnPct: 50, WindowS: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	q := func(policy string, finish, lat float64) qstats.QueryRecord {
		return qstats.QueryRecord{Policy: policy, FinishVT: finish, LatencyVirtualS: lat}
	}
	// 1 of 3 LA queries over objective (other-policy record ignored).
	db.feedWindows([]qstats.QueryRecord{q("LA", 5, 3), q("LA", 6, 20), q("LA", 7, 4), q("Hadoop", 8, 99)})
	db.evaluate(10)
	if p, ok := db.Latest("slo.slo.burn_pct"); !ok || math.Abs(p.V-100.0/3) > 1e-9 {
		t.Fatalf("burn series = %+v, %v", p, ok)
	}
	if d := db.AlertsDump(); len(d.Active) != 0 {
		t.Fatalf("33%% burn fired at 50%% threshold: %+v", d.Active)
	}
	// Two more breaches push burn to 60%.
	db.feedWindows([]qstats.QueryRecord{q("LA", 11, 30), q("LA", 12, 30)})
	db.evaluate(15)
	if d := db.AlertsDump(); len(d.Active) != 1 || d.Active[0].Rule != "slo" {
		t.Fatalf("60%% burn did not fire: %+v", d.Active)
	}
	// Window slides past every observation → no data → resolves.
	db.evaluate(500)
	d := db.AlertsDump()
	if len(d.Active) != 0 {
		t.Fatalf("still active with empty window: %+v", d.Active)
	}
	if n := len(d.Events); n != 2 || d.Events[1].State != StateResolved {
		t.Fatalf("events = %+v", d.Events)
	}
}

// TestCollectEndToEnd runs a real traced job, ticks the engine-attached
// DB, and checks the collected series and the Dump schema round-trip.
func TestCollectEndToEnd(t *testing.T) {
	eng, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 8, 100)
	reg := qstats.NewRegistry(jt)
	db, err := New(jt, Config{IntervalS: 1})
	if err != nil {
		t.Fatal(err)
	}
	db.SetQueryStats(reg)
	db.Start()

	id := reg.AllocID()
	conf := mapreduce.NewJobConf()
	conf.SetInt(mapreduce.ConfSampleSize, 50)
	conf.Set(mapreduce.ConfDynamicPolicy, "LA")
	conf.Set(mapreduce.ConfQueryID, id)
	job := jt.Submit(mapreduce.JobSpec{Conf: conf, NewMapper: echoMapper}, mapreduce.SplitsForFile(f))
	reg.Register(id, job, "SELECT V FROM t LIMIT 50", job.ScheduledMaps())
	mapreduce.RunUntilDone(eng, job, 1e6)
	eng.RunUntil(eng.Now() + 5)

	d := db.Dump()
	if d.Schema != SchemaVersion || d.IntervalS != 1 {
		t.Fatalf("dump header: %+v", d)
	}
	want := map[string]bool{
		"cluster.running_jobs":   false,
		"cluster.map_slot_pct":   false,
		"query.in_flight":        false,
		"query.qps.LA":           false,
		"query.latency_p99_s.LA": false,
		"query.split_cost_s":     false,
	}
	for _, s := range d.Series {
		if _, ok := want[s.Name]; ok {
			want[s.Name] = true
		}
		if len(s.Points) == 0 {
			t.Errorf("series %s has no points", s.Name)
		}
		if len(s.Rollups) != 2 {
			t.Errorf("series %s has %d rollup levels, want 2", s.Name, len(s.Rollups))
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("series %s missing from dump", name)
		}
	}
	// The dump is JSON-stable.
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Dump
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || len(back.Series) != len(d.Series) {
		t.Fatalf("round-trip lost series: %d vs %d", len(back.Series), len(d.Series))
	}

	// Stop cancels the pending tick: no new points after.
	db.Stop()
	before := len(db.series["cluster.running_jobs"].Points())
	eng.RunUntil(eng.Now() + 10)
	if after := len(db.series["cluster.running_jobs"].Points()); after != before {
		t.Fatalf("ticks continued after Stop: %d -> %d points", before, after)
	}
}

// TestFlushCatchesPostTickFinish: short runs stop the clock the moment
// the last job completes, so a query finishing between ticks is
// invisible to the scheduled collection — Flush must deliver it to the
// slo_burn window and fire the rule, and a second Flush at the same
// virtual time must be a no-op.
func TestFlushCatchesPostTickFinish(t *testing.T) {
	eng, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 8, 100)
	reg := qstats.NewRegistry(jt)
	db, err := New(jt, Config{IntervalS: 1e6, Rules: []Rule{
		{Name: "latency-slo", Kind: KindSLOBurn, ObjectiveS: 1e-6},
	}})
	if err != nil {
		t.Fatal(err)
	}
	db.SetQueryStats(reg)
	db.Start()

	id := reg.AllocID()
	conf := mapreduce.NewJobConf()
	conf.SetInt(mapreduce.ConfSampleSize, 50)
	conf.Set(mapreduce.ConfDynamicPolicy, "LA")
	conf.Set(mapreduce.ConfQueryID, id)
	job := jt.Submit(mapreduce.JobSpec{Conf: conf, NewMapper: echoMapper}, mapreduce.SplitsForFile(f))
	reg.Register(id, job, "SELECT V FROM t LIMIT 50", job.ScheduledMaps())
	mapreduce.RunUntilDone(eng, job, 1e6)

	// The huge interval guarantees no scheduled tick ever ran.
	if d := db.AlertsDump(); len(d.Events) != 0 {
		t.Fatalf("tick ran before Flush: %+v", d.Events)
	}
	db.Flush()
	d := db.AlertsDump()
	if len(d.Active) != 1 || d.Active[0].Rule != "latency-slo" {
		t.Fatalf("Flush did not fire the breached SLO: %+v", d)
	}
	points := len(db.series["cluster.running_jobs"].Points())
	db.Flush() // clock unchanged → no-op
	if n := len(db.series["cluster.running_jobs"].Points()); n != points || len(db.AlertsDump().Events) != 1 {
		t.Fatalf("second Flush at the same time was not a no-op")
	}
}

// BenchmarkSeriesAppend pins the per-point cost of the hot append path:
// the ring and every rollup level are preallocated, so steady-state
// appends must not allocate (the CI gate budget pins allocs at 0).
func BenchmarkSeriesAppend(b *testing.B) {
	s := newSeries(DefaultRawCapacity, DefaultResolutions())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Append(float64(i), float64(i%97))
	}
}
