package tsdb

import "math"

// Point is one raw observation on the virtual clock.
type Point struct {
	T float64 `json:"t_s"`
	V float64 `json:"v"`
}

// Bucket is one sealed rollup interval: min/max/sum/count of the raw
// points whose timestamps fell in [Start, Start+step).
type Bucket struct {
	Start float64 `json:"start_s"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	Sum   float64 `json:"sum"`
	Count int64   `json:"count"`
}

// Resolution sizes one rollup level of a series: raw points are folded
// into StepS-wide buckets, of which the newest Capacity are retained.
type Resolution struct {
	StepS    float64 `json:"step_s"`
	Capacity int     `json:"capacity"`
}

// Series is a fixed-capacity downsampling ring buffer: the newest raw
// points plus one min/max/sum/count rollup ring per resolution level.
// All storage is allocated up front, so Append never allocates — the
// property BenchmarkSeriesAppend pins.
type Series struct {
	raw    []Point // ring; raw[head] is the next write slot
	head   int
	n      int
	levels []rollupLevel
}

// rollupLevel is one resolution's sealed-bucket ring plus the bucket
// currently being folded. A bucket seals when an appended timestamp
// crosses its step boundary, so rollups trail the raw ring by at most
// one step.
type rollupLevel struct {
	step    float64
	buckets []Bucket
	head    int
	n       int
	cur     Bucket
	open    bool
}

func newSeries(rawCap int, res []Resolution) *Series {
	s := &Series{raw: make([]Point, rawCap)}
	s.levels = make([]rollupLevel, len(res))
	for i, r := range res {
		s.levels[i] = rollupLevel{step: r.StepS, buckets: make([]Bucket, r.Capacity)}
	}
	return s
}

// Append records v at virtual time t. Timestamps must be non-decreasing
// (the engine clock guarantees it).
func (s *Series) Append(t, v float64) {
	s.raw[s.head] = Point{T: t, V: v}
	s.head++
	if s.head == len(s.raw) {
		s.head = 0
	}
	if s.n < len(s.raw) {
		s.n++
	}
	for i := range s.levels {
		l := &s.levels[i]
		start := math.Floor(t/l.step) * l.step
		if l.open && l.cur.Start != start {
			l.seal()
		}
		if !l.open {
			l.cur = Bucket{Start: start, Min: v, Max: v, Sum: v, Count: 1}
			l.open = true
			continue
		}
		if v < l.cur.Min {
			l.cur.Min = v
		}
		if v > l.cur.Max {
			l.cur.Max = v
		}
		l.cur.Sum += v
		l.cur.Count++
	}
}

func (l *rollupLevel) seal() {
	l.buckets[l.head] = l.cur
	l.head++
	if l.head == len(l.buckets) {
		l.head = 0
	}
	if l.n < len(l.buckets) {
		l.n++
	}
	l.open = false
}

// Points returns the retained raw points, oldest first.
func (s *Series) Points() []Point {
	out := make([]Point, 0, s.n)
	start := s.head - s.n
	if start < 0 {
		start += len(s.raw)
	}
	for i := 0; i < s.n; i++ {
		out = append(out, s.raw[(start+i)%len(s.raw)])
	}
	return out
}

// Latest returns the newest point, if any.
func (s *Series) Latest() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	i := s.head - 1
	if i < 0 {
		i += len(s.raw)
	}
	return s.raw[i], true
}

// At returns the newest point with timestamp <= t among the retained
// raw points.
func (s *Series) At(t float64) (Point, bool) {
	for i := 0; i < s.n; i++ {
		j := s.head - 1 - i
		if j < 0 {
			j += len(s.raw)
		}
		if s.raw[j].T <= t {
			return s.raw[j], true
		}
	}
	return Point{}, false
}

// Buckets returns level's retained rollup buckets oldest first, the
// still-open current bucket (partial by construction) last.
func (s *Series) Buckets(level int) []Bucket {
	l := &s.levels[level]
	out := make([]Bucket, 0, l.n+1)
	start := l.head - l.n
	if start < 0 {
		start += len(l.buckets)
	}
	for i := 0; i < l.n; i++ {
		out = append(out, l.buckets[(start+i)%len(l.buckets)])
	}
	if l.open {
		out = append(out, l.cur)
	}
	return out
}
