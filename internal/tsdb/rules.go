package tsdb

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Rule kinds.
const (
	KindThreshold    = "threshold"
	KindRateOfChange = "rate_of_change"
	KindSLOBurn      = "slo_burn"
)

// Alert states (AlertEvent.State).
const (
	StateFiring   = "firing"
	StateResolved = "resolved"
)

// Rule is one declarative alert rule, evaluated on the virtual clock at
// every collection tick:
//
//   - threshold: the named series' latest value, compared against Value.
//   - rate_of_change: the series' per-second rate over the trailing
//     WindowS (latest minus the value WindowS ago, over the elapsed
//     gap), compared against Value.
//   - slo_burn: the percentage of queries finished inside the trailing
//     WindowS whose virtual latency exceeded ObjectiveS (optionally
//     restricted to Policy), compared against MaxBurnPct. The burn
//     percentage is also recorded as the series "slo.<name>.burn_pct".
//
// A rule whose condition holds for ForS consecutive virtual seconds
// fires; when the condition clears, it resolves. Both transitions
// append an AlertEvent to the log.
type Rule struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Series names the input series (threshold, rate_of_change).
	Series string `json:"series,omitempty"`
	// Op is the comparison: ">", ">=", "<" or "<=" (default ">").
	Op string `json:"op,omitempty"`
	// Value is the threshold (threshold: series units;
	// rate_of_change: units per virtual second).
	Value float64 `json:"value,omitempty"`
	// Policy restricts an slo_burn rule to one policy ("" = all).
	Policy string `json:"policy,omitempty"`
	// ObjectiveS is the slo_burn latency objective in virtual seconds.
	ObjectiveS float64 `json:"objective_s,omitempty"`
	// MaxBurnPct is the tolerated slo_burn percentage (0 = any breach).
	MaxBurnPct float64 `json:"max_burn_pct,omitempty"`
	// WindowS is the trailing evaluation window in virtual seconds
	// (rate_of_change, slo_burn; default DefaultWindowS).
	WindowS float64 `json:"window_s,omitempty"`
	// ForS holds the condition this long before firing (default 0:
	// fire on the first breaching tick).
	ForS float64 `json:"for_s,omitempty"`
	// Severity is free-form ("page", "warn", ...), carried through to
	// events and surfaces.
	Severity string `json:"severity,omitempty"`
}

// DefaultWindowS is the trailing window for rules that need one but do
// not set it.
const DefaultWindowS = 60.0

// op returns the comparison operator with its default applied.
func (r Rule) op() string {
	if r.Op == "" {
		return ">"
	}
	return r.Op
}

// threshold returns the value the rule compares against.
func (r Rule) threshold() float64 {
	if r.Kind == KindSLOBurn {
		return r.MaxBurnPct
	}
	return r.Value
}

// window returns the rule's trailing window with its default applied.
func (r Rule) window() float64 {
	if r.WindowS > 0 {
		return r.WindowS
	}
	return DefaultWindowS
}

func (r Rule) validate() error {
	if r.Name == "" {
		return fmt.Errorf("tsdb: rule with empty name")
	}
	switch r.op() {
	case ">", ">=", "<", "<=":
	default:
		return fmt.Errorf("tsdb: rule %q: unknown op %q", r.Name, r.Op)
	}
	switch r.Kind {
	case KindThreshold:
		if r.Series == "" {
			return fmt.Errorf("tsdb: threshold rule %q needs a series", r.Name)
		}
	case KindRateOfChange:
		if r.Series == "" {
			return fmt.Errorf("tsdb: rate_of_change rule %q needs a series", r.Name)
		}
	case KindSLOBurn:
		if r.ObjectiveS <= 0 {
			return fmt.Errorf("tsdb: slo_burn rule %q needs objective_s > 0", r.Name)
		}
	default:
		return fmt.Errorf("tsdb: rule %q: unknown kind %q", r.Name, r.Kind)
	}
	if r.WindowS < 0 || r.ForS < 0 {
		return fmt.Errorf("tsdb: rule %q: negative window_s or for_s", r.Name)
	}
	return nil
}

// ValidateRules applies the per-rule checks plus the set-level
// duplicate-name check; ParseRules and New run it, and layers that
// accept rules programmatically (experiments.Options) run it up front
// so a bad rule fails the sweep before any cell starts.
func ValidateRules(rules []Rule) error {
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		if err := r.validate(); err != nil {
			return err
		}
		if seen[r.Name] {
			return fmt.Errorf("tsdb: duplicate rule name %q", r.Name)
		}
		seen[r.Name] = true
	}
	return nil
}

// ParseRules parses an alert-rules file: a JSON object {"rules": [...]}
// of Rule entries. Unknown fields are rejected so typos fail loudly
// instead of silently disabling a rule.
func ParseRules(data []byte) ([]Rule, error) {
	var doc struct {
		Rules []Rule `json:"rules"`
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("tsdb: parsing alert rules: %w", err)
	}
	if len(doc.Rules) == 0 {
		return nil, fmt.Errorf("tsdb: alert-rules file has no rules")
	}
	if err := ValidateRules(doc.Rules); err != nil {
		return nil, err
	}
	return doc.Rules, nil
}

// AlertEvent is one firing or resolved transition in the alert log.
type AlertEvent struct {
	Rule  string `json:"rule"`
	State string `json:"state"`
	// TimeS is the virtual time of the transition.
	TimeS float64 `json:"time_s"`
	// Value is the rule's evaluated value at the transition; Threshold
	// is what it was compared against.
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Severity  string  `json:"severity,omitempty"`
	Message   string  `json:"message,omitempty"`
}

// ActiveAlert is one currently-firing rule in an AlertsDump.
type ActiveAlert struct {
	Rule string `json:"rule"`
	// SinceS is the virtual time the rule started firing.
	SinceS    float64 `json:"since_s"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
	Severity  string  `json:"severity,omitempty"`
}

// compare applies op to (v, threshold).
func compare(op string, v, threshold float64) bool {
	switch op {
	case ">=":
		return v >= threshold
	case "<":
		return v < threshold
	case "<=":
		return v <= threshold
	default:
		return v > threshold
	}
}

// ruleState is one rule's evaluation state machine: inactive → pending
// (condition holds, ForS not yet elapsed) → firing → resolved.
type ruleState struct {
	rule         Rule
	pendingSince float64 // virtual time the condition started holding; -1 when clear
	firing       bool
	firingSince  float64
	lastValue    float64
	// window holds an slo_burn rule's trailing finished-query
	// observations (finish time, whether the objective was exceeded).
	window []burnObs
}

type burnObs struct {
	t    float64
	over bool
}

// value evaluates the rule at virtual time now. ok is false when the
// rule has no data yet (empty series, empty burn window): no-data never
// fires and never resolves a firing alert spuriously — it keeps the
// previous condition outcome false only when nothing ever fired.
func (db *DB) ruleValue(rs *ruleState, now float64) (v float64, ok bool) {
	r := rs.rule
	switch r.Kind {
	case KindThreshold:
		s := db.series[r.Series]
		if s == nil {
			return 0, false
		}
		p, ok := s.Latest()
		return p.V, ok
	case KindRateOfChange:
		s := db.series[r.Series]
		if s == nil {
			return 0, false
		}
		last, ok := s.Latest()
		if !ok {
			return 0, false
		}
		prev, ok := s.At(now - r.window())
		if !ok || last.T <= prev.T {
			return 0, false
		}
		return (last.V - prev.V) / (last.T - prev.T), true
	case KindSLOBurn:
		// Trim the window, then burn = % of finished queries over the
		// objective.
		cut := now - r.window()
		w := rs.window
		i := 0
		for i < len(w) && w[i].t < cut {
			i++
		}
		if i > 0 {
			w = append(w[:0:0], w[i:]...)
			rs.window = w
		}
		if len(w) == 0 {
			return 0, false
		}
		over := 0
		for _, o := range w {
			if o.over {
				over++
			}
		}
		return float64(over) / float64(len(w)) * 100, true
	}
	return 0, false
}

// transition advances the rule's state machine and appends firing /
// resolved events.
func (db *DB) transition(rs *ruleState, now, value float64, cond bool) {
	r := rs.rule
	rs.lastValue = value
	if cond {
		if rs.firing {
			return
		}
		if rs.pendingSince < 0 {
			rs.pendingSince = now
		}
		if now-rs.pendingSince >= r.ForS {
			rs.firing = true
			rs.firingSince = now
			db.emit(AlertEvent{
				Rule: r.Name, State: StateFiring, TimeS: now,
				Value: value, Threshold: r.threshold(), Severity: r.Severity,
				Message: fmt.Sprintf("%s: %.4g %s %.4g", r.Kind, value, r.op(), r.threshold()),
			})
		}
		return
	}
	rs.pendingSince = -1
	if rs.firing {
		rs.firing = false
		db.emit(AlertEvent{
			Rule: r.Name, State: StateResolved, TimeS: now,
			Value: value, Threshold: r.threshold(), Severity: r.Severity,
		})
	}
}
