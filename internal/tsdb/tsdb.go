// Package tsdb is the in-process time-series engine: fixed-capacity
// downsampling ring buffers (raw points plus min/max/sum/count rollups
// per resolution step) on the virtual clock, fed incrementally from the
// trace registry's counters and gauges, the qstats per-policy
// latency/QPS aggregates, the JobTracker's cluster status, and derived
// per-query series (match-arrival rate, per-split scan cost, overshoot
// ratio, in-flight count). On top sits the alert/SLO layer: declarative
// rules (threshold, rate-of-change, latency-objective burn) evaluated
// at every collection tick, producing a bounded firing/resolved event
// log with the stable schema AlertsSchemaVersion.
//
// The engine never samples on its own threads: Start schedules a
// self-renewing virtual tick on the simulation engine, exactly like the
// obs utilization sampler, so every collection and evaluation runs on
// the engine goroutine under the driver's lock. Snapshot methods (Dump,
// AlertsDump, Latest) must run under the same discipline — the obs
// server serializes them behind its simulation mutex and publishes
// pre-rendered payloads for lock-free scraping.
//
// tsdb sits below obs in the import graph (it imports trace, qstats and
// mapreduce only), so obs utilization readings reach it through the
// cluster.* gauges the sampler already publishes into the tracer.
package tsdb

import (
	"encoding/json"
	"io"
	"sort"

	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/qstats"
	"dynamicmr/internal/trace"
)

// SchemaVersion identifies the JSON layout of Dump (the /tsdb payload
// and the archive's series section).
const SchemaVersion = "dynamicmr.tsdb/1"

// AlertsSchemaVersion identifies the JSON layout of AlertsDump (the
// /alerts payload, the -alerts-out file and the archive's alert log).
const AlertsSchemaVersion = "dynamicmr.alerts/1"

// DefaultIntervalS is the collection cadence in virtual seconds.
const DefaultIntervalS = 5.0

// DefaultRawCapacity is the per-series raw ring size (at the default
// interval: 30 virtual minutes of full-resolution history).
const DefaultRawCapacity = 360

// maxAlertEvents bounds the alert log; the oldest half is dropped (and
// counted) past 125% of the cap, mirroring the qstats retention trim.
const maxAlertEvents = 1024

// DefaultResolutions is the default rollup ladder: 1-minute buckets for
// four virtual hours, 10-minute buckets for 40.
func DefaultResolutions() []Resolution {
	return []Resolution{{StepS: 60, Capacity: 240}, {StepS: 600, Capacity: 240}}
}

// Config parameterizes New. Zero values take the defaults above; Rules
// may be empty (trends without alerts).
type Config struct {
	IntervalS   float64
	RawCapacity int
	Resolutions []Resolution
	Rules       []Rule
}

// DB is one run's time-series engine. It is not internally locked: the
// tick runs on the engine goroutine and snapshot callers hold the same
// driver lock that gates engine stepping (the Sampler discipline). All
// methods are safe on a nil *DB — the disabled state costs a nil check.
type DB struct {
	jt  *mapreduce.JobTracker
	qs  *qstats.Registry
	cfg Config

	gen     int
	running bool

	series map[string]*Series
	order  []string

	// Derived-series state: the previous map-duration histogram
	// snapshot (per-split cost is its delta), the finished-query
	// cursor, and the previous tick time (rate denominators).
	prevMapHist trace.HistogramSnapshot
	qseq        int64
	lastTick    float64

	rules   []*ruleState
	events  []AlertEvent
	dropped int64
}

// New builds a DB bound to the JobTracker. Rules are validated (the
// same checks ParseRules applies); an invalid rule is an error, never
// silently dropped.
func New(jt *mapreduce.JobTracker, cfg Config) (*DB, error) {
	if cfg.IntervalS <= 0 {
		cfg.IntervalS = DefaultIntervalS
	}
	if cfg.RawCapacity <= 0 {
		cfg.RawCapacity = DefaultRawCapacity
	}
	if cfg.Resolutions == nil {
		cfg.Resolutions = DefaultResolutions()
	}
	db := &DB{
		jt:       jt,
		cfg:      cfg,
		series:   make(map[string]*Series),
		lastTick: jt.Engine().Now(),
	}
	if err := ValidateRules(cfg.Rules); err != nil {
		return nil, err
	}
	for _, r := range cfg.Rules {
		db.rules = append(db.rules, &ruleState{rule: r, pendingSince: -1})
	}
	return db, nil
}

// Enabled reports whether the engine exists.
func (db *DB) Enabled() bool { return db != nil }

// SetQueryStats attaches the qstats registry the per-query series and
// slo_burn rules read from.
func (db *DB) SetQueryStats(qs *qstats.Registry) {
	if db != nil {
		db.qs = qs
	}
}

// IntervalS returns the collection cadence.
func (db *DB) IntervalS() float64 {
	if db == nil {
		return 0
	}
	return db.cfg.IntervalS
}

// Start schedules the self-renewing collection tick on the virtual
// clock. Like the obs sampler, a generation counter lets Stop/Start
// cancel a pending tick without reaching into the engine's queue.
func (db *DB) Start() {
	if db == nil || db.running {
		return
	}
	db.running = true
	db.gen++
	gen := db.gen
	eng := db.jt.Engine()
	var tick func()
	tick = func() {
		if db.gen != gen {
			return
		}
		db.tick()
		eng.After(db.cfg.IntervalS, tick)
	}
	eng.After(db.cfg.IntervalS, tick)
}

// Stop cancels the pending tick.
func (db *DB) Stop() {
	if db == nil {
		return
	}
	db.gen++
	db.running = false
}

// tick is one collection + evaluation pass on the engine goroutine.
func (db *DB) tick() {
	now := db.jt.Engine().Now()
	db.collect(now)
	db.evaluate(now)
	db.lastTick = now
}

// Flush runs one final collection + evaluation pass at the current
// virtual time. The scheduled tick only fires while the engine is
// advancing, so a query that finishes after the last tick — the common
// shape for short runs, which stop the clock the moment the last job
// completes — would otherwise never reach the slo_burn windows or the
// rule state machines. Callers flush right before Dump/AlertsDump
// (same locking discipline). No-op if the clock has not moved since
// the last pass.
func (db *DB) Flush() {
	if db == nil || !db.running {
		return
	}
	now := db.jt.Engine().Now()
	if now <= db.lastTick {
		return
	}
	db.tick()
}

// at returns (creating on first use) the named series.
func (db *DB) at(name string) *Series {
	s := db.series[name]
	if s == nil {
		s = newSeries(db.cfg.RawCapacity, db.cfg.Resolutions)
		db.series[name] = s
		db.order = append(db.order, name)
	}
	return s
}

func (db *DB) put(t float64, name string, v float64) {
	db.at(name).Append(t, v)
}

// ownsName reports whether collect derives the series directly from
// the JobTracker, so the sampler-published tracer gauge of the same
// name must be skipped (one series per name, one writer per tick).
func ownsName(name string) bool {
	switch name {
	case "cluster.running_jobs", "cluster.queued_map_tasks", "cluster.queued_reduce_tasks",
		"cluster.map_slot_pct", "cluster.reduce_slot_pct":
		return true
	}
	return false
}

// collect appends one point per source series at virtual time now.
func (db *DB) collect(now float64) {
	st := db.jt.ClusterStatus()
	db.put(now, "cluster.running_jobs", float64(st.RunningJobs))
	db.put(now, "cluster.queued_map_tasks", float64(st.QueuedMapTasks))
	db.put(now, "cluster.queued_reduce_tasks", float64(st.QueuedReduceTasks))
	if st.TotalMapSlots > 0 {
		db.put(now, "cluster.map_slot_pct", float64(st.OccupiedMapSlots)/float64(st.TotalMapSlots)*100)
	}
	if st.TotalReduceSlots > 0 {
		db.put(now, "cluster.reduce_slot_pct", float64(st.OccupiedReduces)/float64(st.TotalReduceSlots)*100)
	}

	if tr := db.jt.Tracer(); tr.Enabled() {
		// Every registry counter and gauge becomes a series under its
		// own name: scan.blocks_read/skipped, engine.resident_bytes /
		// engine.pinned_bytes, and the cluster utilization gauges the
		// obs sampler publishes all arrive through this one path.
		for name, v := range tr.Counters() {
			db.put(now, name, float64(v))
		}
		for name, g := range tr.Gauges() {
			if ownsName(name) {
				continue
			}
			db.put(now, name, g.Last)
		}
		if h, ok := tr.Histogram(trace.HistMapDuration); ok {
			if dc := h.Count - db.prevMapHist.Count; dc > 0 {
				db.put(now, "query.split_cost_s", (h.Sum-db.prevMapHist.Sum)/float64(dc))
			}
			db.prevMapHist = h
		}
	}

	if db.qs.Enabled() {
		started, finished, _ := db.qs.Totals()
		db.put(now, "query.in_flight", float64(started-finished))
		for _, p := range db.qs.PolicyStats() {
			db.put(now, "query.qps."+p.Policy, p.QPS)
			db.put(now, "query.latency_p50_s."+p.Policy, p.VirtualP50S)
			db.put(now, "query.latency_p99_s."+p.Policy, p.VirtualP99S)
		}
		recs, next := db.qs.FinishedSince(db.qseq)
		db.qseq = next
		if dt := now - db.lastTick; dt > 0 && len(recs) > 0 {
			var matches, over, rows int64
			for _, q := range recs {
				matches += q.Matches
				over += q.OvershootRows
				rows += int64(q.Rows)
			}
			db.put(now, "query.match_rate", float64(matches)/dt)
			if rows > 0 {
				db.put(now, "query.overshoot_ratio", float64(over)/float64(rows))
			}
		}
		db.feedWindows(recs)
	}
}

// feedWindows pushes newly finished queries into every slo_burn rule's
// trailing window.
func (db *DB) feedWindows(recs []qstats.QueryRecord) {
	for _, rs := range db.rules {
		if rs.rule.Kind != KindSLOBurn {
			continue
		}
		for _, q := range recs {
			if rs.rule.Policy != "" && q.Policy != rs.rule.Policy {
				continue
			}
			rs.window = append(rs.window, burnObs{t: q.FinishVT, over: q.LatencyVirtualS > rs.rule.ObjectiveS})
		}
	}
}

// evaluate runs every rule's state machine at virtual time now.
func (db *DB) evaluate(now float64) {
	for _, rs := range db.rules {
		v, ok := db.ruleValue(rs, now)
		if rs.rule.Kind == KindSLOBurn && ok {
			db.put(now, "slo."+rs.rule.Name+".burn_pct", v)
		}
		cond := ok && compare(rs.rule.op(), v, rs.rule.threshold())
		db.transition(rs, now, v, cond)
	}
}

// emit appends a transition to the bounded alert log and mirrors it to
// the runtime's structured log stream.
func (db *DB) emit(e AlertEvent) {
	if len(db.events) > maxAlertEvents+maxAlertEvents/4 {
		n := len(db.events) - maxAlertEvents
		db.dropped += int64(n)
		db.events = append(db.events[:0:0], db.events[n:]...)
	}
	db.events = append(db.events, e)
	db.jt.Logger().Info("alert",
		"rule", e.Rule, "state", e.State,
		"value", e.Value, "threshold", e.Threshold, "severity", e.Severity)
}

// Latest returns the newest point of the named series.
func (db *DB) Latest(name string) (Point, bool) {
	if db == nil {
		return Point{}, false
	}
	s := db.series[name]
	if s == nil {
		return Point{}, false
	}
	return s.Latest()
}

// SeriesDump is one series in a Dump: raw points plus one rollup block
// per resolution level (the last bucket of each block is the still-open
// partial one).
type SeriesDump struct {
	Name    string       `json:"name"`
	Points  []Point      `json:"points"`
	Rollups []RollupDump `json:"rollups,omitempty"`
}

// RollupDump is one resolution level's buckets.
type RollupDump struct {
	StepS   float64  `json:"step_s"`
	Buckets []Bucket `json:"buckets"`
}

// Dump is the full engine snapshot, schema SchemaVersion. Series are
// sorted by name so the payload is deterministic.
type Dump struct {
	Schema       string       `json:"schema"`
	VirtualTimeS float64      `json:"virtual_time_s"`
	IntervalS    float64      `json:"interval_s"`
	Series       []SeriesDump `json:"series"`
}

// Dump snapshots every series. The virtual clock is read from the
// engine, so callers hold the simulation lock (as with qstats.Dump).
func (db *DB) Dump() Dump {
	if db == nil {
		return Dump{Schema: SchemaVersion}
	}
	d := Dump{Schema: SchemaVersion, VirtualTimeS: db.jt.Engine().Now(), IntervalS: db.cfg.IntervalS}
	names := append([]string(nil), db.order...)
	sort.Strings(names)
	for _, name := range names {
		s := db.series[name]
		sd := SeriesDump{Name: name, Points: s.Points()}
		for i := range s.levels {
			sd.Rollups = append(sd.Rollups, RollupDump{StepS: s.levels[i].step, Buckets: s.Buckets(i)})
		}
		d.Series = append(d.Series, sd)
	}
	return d
}

// AlertsDump is the alert layer's snapshot, schema AlertsSchemaVersion:
// the configured rules, the currently firing set, and the bounded
// transition log.
type AlertsDump struct {
	Schema       string        `json:"schema"`
	VirtualTimeS float64       `json:"virtual_time_s"`
	Rules        []Rule        `json:"rules,omitempty"`
	Active       []ActiveAlert `json:"active,omitempty"`
	Events       []AlertEvent  `json:"events,omitempty"`
	Dropped      int64         `json:"dropped_events,omitempty"`
}

// AlertsDump snapshots the alert layer (same locking discipline as
// Dump).
func (db *DB) AlertsDump() AlertsDump {
	if db == nil {
		return AlertsDump{Schema: AlertsSchemaVersion}
	}
	a := AlertsDump{
		Schema:       AlertsSchemaVersion,
		VirtualTimeS: db.jt.Engine().Now(),
		Dropped:      db.dropped,
	}
	for _, rs := range db.rules {
		a.Rules = append(a.Rules, rs.rule)
		if rs.firing {
			a.Active = append(a.Active, ActiveAlert{
				Rule: rs.rule.Name, SinceS: rs.firingSince,
				Value: rs.lastValue, Threshold: rs.rule.threshold(),
				Severity: rs.rule.Severity,
			})
		}
	}
	if len(db.events) > 0 {
		a.Events = append([]AlertEvent(nil), db.events...)
	}
	return a
}

// WriteJSON writes the dump as indented JSON.
func (d Dump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteJSON writes the alerts dump as indented JSON (the -alerts-out
// file format).
func (a AlertsDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}
