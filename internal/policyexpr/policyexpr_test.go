package policyexpr

import (
	"math"
	"testing"
	"testing/quick"
)

func eval(t *testing.T, src string, env Env) float64 {
	t.Helper()
	e, err := Compile(src)
	if err != nil {
		t.Fatalf("Compile(%q): %v", src, err)
	}
	v, err := e.Eval(env)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1+2":         3,
		"2*3+4":       10,
		"2+3*4":       14,
		"(2+3)*4":     20,
		"10/4":        2.5,
		"7-2-1":       4,
		"-5+2":        -3,
		"--4":         4,
		"0.5*40":      20,
		"1e2":         100,
		"2*(3+(4-1))": 12,
	}
	for src, want := range cases {
		if got := eval(t, src, nil); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestVariables(t *testing.T) {
	env := Env{"AS": 12, "TS": 40}
	if got := eval(t, "0.5*AS", env); got != 6 {
		t.Errorf("0.5*AS = %v", got)
	}
	if got := eval(t, "as + ts", env); got != 52 {
		t.Errorf("case-insensitive vars = %v", got)
	}
	e := MustCompile("MISSING + 1")
	if _, err := e.Eval(env); err == nil {
		t.Error("unknown variable did not error")
	}
}

func TestFunctions(t *testing.T) {
	env := Env{"AS": 12, "TS": 40}
	cases := map[string]float64{
		"max(0.5*TS, AS)": 20,
		"max(1, 2, 3)":    3,
		"min(0.5*TS, AS)": 12,
		"ceil(0.1*AS)":    2,
		"floor(0.9*AS)":   10,
		"max(AS, TS) + 1": 41,
	}
	for src, want := range cases {
		if got := eval(t, src, env); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestTernaryAndComparisons(t *testing.T) {
	cases := []struct {
		src  string
		env  Env
		want float64
	}{
		{"AS > 0 ? 0.5*AS : 0.2*TS", Env{"AS": 10, "TS": 40}, 5},
		{"AS > 0 ? 0.5*AS : 0.2*TS", Env{"AS": 0, "TS": 40}, 8},
		{"AS >= 10 ? 1 : 0", Env{"AS": 10}, 1},
		{"AS <= 9 ? 1 : 0", Env{"AS": 10}, 0},
		{"AS == 10 ? 7 : 8", Env{"AS": 10}, 7},
		{"AS != 10 ? 7 : 8", Env{"AS": 10}, 8},
		{"AS < 5 ? 1 : AS < 15 ? 2 : 3", Env{"AS": 10}, 2}, // nested
	}
	for _, c := range cases {
		if got := eval(t, c.src, c.env); got != c.want {
			t.Errorf("%q with %v = %v, want %v", c.src, c.env, got, c.want)
		}
	}
}

func TestInfinity(t *testing.T) {
	if got := eval(t, "inf", nil); !math.IsInf(got, 1) {
		t.Errorf("inf = %v", got)
	}
	if got := eval(t, "INFINITY", nil); !math.IsInf(got, 1) {
		t.Errorf("INFINITY = %v", got)
	}
	if got := eval(t, "min(inf, 5)", nil); got != 5 {
		t.Errorf("min(inf,5) = %v", got)
	}
}

func TestTableIFormulas(t *testing.T) {
	// The exact Table I grab limits under representative loads.
	type tc struct {
		expr   string
		as, ts float64
		want   float64
	}
	cases := []tc{
		{"inf", 0, 40, math.Inf(1)},              // Hadoop
		{"max(0.5*TS, AS)", 40, 40, 40},          // HA idle cluster
		{"max(0.5*TS, AS)", 4, 40, 20},           // HA loaded
		{"AS > 0 ? 0.5*AS : 0.2*TS", 40, 40, 20}, // MA idle
		{"AS > 0 ? 0.5*AS : 0.2*TS", 0, 40, 8},   // MA saturated
		{"AS > 0 ? 0.2*AS : 0.1*TS", 40, 40, 8},  // LA idle
		{"AS > 0 ? 0.2*AS : 0.1*TS", 0, 40, 4},   // LA saturated
		{"0.1*AS", 40, 40, 4},                    // C idle
		{"0.1*AS", 0, 40, 0},                     // C saturated
	}
	for _, c := range cases {
		got := eval(t, c.expr, Env{"AS": c.as, "TS": c.ts})
		if got != c.want && !(math.IsInf(got, 1) && math.IsInf(c.want, 1)) {
			t.Errorf("%q AS=%v TS=%v = %v, want %v", c.expr, c.as, c.ts, got, c.want)
		}
	}
}

func TestCompileErrors(t *testing.T) {
	bads := []string{
		"", "1+", "(1", "max(", "max()", "1 ? 2", "foo(1)", "ceil(1,2)",
		"@", "1 2", "AS >< TS",
	}
	for _, src := range bads {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q) accepted", src)
		}
	}
}

func TestDivisionByZero(t *testing.T) {
	e := MustCompile("1/AS")
	if _, err := e.Eval(Env{"AS": 0}); err == nil {
		t.Error("division by zero did not error")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustCompile on bad input did not panic")
		}
	}()
	MustCompile("1+")
}

func TestStringRoundTrip(t *testing.T) {
	src := "max(0.5*TS, AS)"
	e := MustCompile(src)
	if e.String() != src {
		t.Fatalf("String = %q", e.String())
	}
}

// Property: compiled constant expressions over two variables evaluate
// without error for any non-negative env, and repeated evaluation is
// stable.
func TestEvalStabilityProperty(t *testing.T) {
	e := MustCompile("AS > 0 ? 0.5*AS : 0.2*TS")
	f := func(as, ts uint16) bool {
		env := Env{"AS": float64(as), "TS": float64(ts)}
		a, err1 := e.Eval(env)
		b, err2 := e.Eval(env)
		return err1 == nil && err2 == nil && a == b && a >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
