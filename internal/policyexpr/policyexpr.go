// Package policyexpr implements the small arithmetic expression
// language in which growth policies state their grab limits — e.g.
// "max(0.5*TS, AS)" or "AS > 0 ? 0.5*AS : 0.2*TS" (Table I). The
// variables AS (available map slots) and TS (total map slots) are bound
// at evaluation time; "inf" denotes an unbounded limit.
//
// Grammar (standard precedence):
//
//	expr    := cond
//	cond    := cmp [ '?' expr ':' expr ]
//	cmp     := add [ ('<'|'<='|'>'|'>='|'=='|'!=') add ]
//	add     := mul { ('+'|'-') mul }
//	mul     := unary { ('*'|'/') unary }
//	unary   := '-' unary | primary
//	primary := number | 'inf' | ident | func '(' expr {',' expr} ')' | '(' expr ')'
//	func    := 'max' | 'min' | 'ceil' | 'floor'
package policyexpr

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"unicode"
)

// Expr is a compiled expression.
type Expr struct {
	src  string
	root node
}

// Env binds variable names (upper-cased) to values.
type Env map[string]float64

// Compile parses the expression once; Eval can then be called
// repeatedly.
func Compile(src string) (*Expr, error) {
	p := &parser{toks: nil, src: src}
	if err := p.lex(); err != nil {
		return nil, err
	}
	root, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if !p.eof() {
		return nil, fmt.Errorf("policyexpr: trailing input %q in %q", p.peek().text, src)
	}
	return &Expr{src: src, root: root}, nil
}

// MustCompile is Compile for known-good constant expressions.
func MustCompile(src string) *Expr {
	e, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return e
}

// String returns the source text.
func (e *Expr) String() string { return e.src }

// Eval computes the expression under the environment. Unknown variables
// are an error. +Inf is a valid result (unbounded grab limit).
func (e *Expr) Eval(env Env) (float64, error) {
	return e.root.eval(env)
}

// node is an AST node.
type node interface {
	eval(Env) (float64, error)
}

type numNode float64

func (n numNode) eval(Env) (float64, error) { return float64(n), nil }

type varNode string

func (v varNode) eval(env Env) (float64, error) {
	if val, ok := env[string(v)]; ok {
		return val, nil
	}
	return 0, fmt.Errorf("policyexpr: unknown variable %q", string(v))
}

type binNode struct {
	op   string
	l, r node
}

func (b *binNode) eval(env Env) (float64, error) {
	l, err := b.l.eval(env)
	if err != nil {
		return 0, err
	}
	r, err := b.r.eval(env)
	if err != nil {
		return 0, err
	}
	switch b.op {
	case "+":
		return l + r, nil
	case "-":
		return l - r, nil
	case "*":
		return l * r, nil
	case "/":
		if r == 0 {
			return 0, fmt.Errorf("policyexpr: division by zero")
		}
		return l / r, nil
	case "<":
		return b2f(l < r), nil
	case "<=":
		return b2f(l <= r), nil
	case ">":
		return b2f(l > r), nil
	case ">=":
		return b2f(l >= r), nil
	case "==":
		return b2f(l == r), nil
	case "!=":
		return b2f(l != r), nil
	}
	return 0, fmt.Errorf("policyexpr: bad operator %q", b.op)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

type negNode struct{ x node }

func (n *negNode) eval(env Env) (float64, error) {
	v, err := n.x.eval(env)
	return -v, err
}

type condNode struct{ c, t, f node }

func (n *condNode) eval(env Env) (float64, error) {
	c, err := n.c.eval(env)
	if err != nil {
		return 0, err
	}
	if c != 0 {
		return n.t.eval(env)
	}
	return n.f.eval(env)
}

type callNode struct {
	fn   string
	args []node
}

func (n *callNode) eval(env Env) (float64, error) {
	vals := make([]float64, len(n.args))
	for i, a := range n.args {
		v, err := a.eval(env)
		if err != nil {
			return 0, err
		}
		vals[i] = v
	}
	switch n.fn {
	case "max":
		out := math.Inf(-1)
		for _, v := range vals {
			out = math.Max(out, v)
		}
		return out, nil
	case "min":
		out := math.Inf(1)
		for _, v := range vals {
			out = math.Min(out, v)
		}
		return out, nil
	case "ceil":
		return math.Ceil(vals[0]), nil
	case "floor":
		return math.Floor(vals[0]), nil
	}
	return 0, fmt.Errorf("policyexpr: unknown function %q", n.fn)
}

// --- lexer ---

type tokKind uint8

const (
	tokNum tokKind = iota
	tokIdent
	tokOp
	tokEOF
)

type token struct {
	kind tokKind
	text string
	num  float64
}

type parser struct {
	src  string
	toks []token
	pos  int
}

func (p *parser) lex() error {
	s := p.src
	i := 0
	for i < len(s) {
		c := rune(s[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case unicode.IsDigit(c) || c == '.':
			j := i
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.' || s[j] == 'e' ||
				s[j] == 'E' || ((s[j] == '+' || s[j] == '-') && j > i && (s[j-1] == 'e' || s[j-1] == 'E'))) {
				j++
			}
			f, err := strconv.ParseFloat(s[i:j], 64)
			if err != nil {
				return fmt.Errorf("policyexpr: bad number %q in %q", s[i:j], p.src)
			}
			p.toks = append(p.toks, token{kind: tokNum, num: f})
			i = j
		case unicode.IsLetter(c) || c == '_':
			j := i
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			p.toks = append(p.toks, token{kind: tokIdent, text: s[i:j]})
			i = j
		default:
			two := ""
			if i+1 < len(s) {
				two = s[i : i+2]
			}
			switch two {
			case "<=", ">=", "==", "!=":
				p.toks = append(p.toks, token{kind: tokOp, text: two})
				i += 2
				continue
			}
			switch c {
			case '+', '-', '*', '/', '(', ')', ',', '?', ':', '<', '>':
				p.toks = append(p.toks, token{kind: tokOp, text: string(c)})
				i++
			default:
				return fmt.Errorf("policyexpr: unexpected character %q in %q", c, p.src)
			}
		}
	}
	p.toks = append(p.toks, token{kind: tokEOF})
	return nil
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}
func (p *parser) eof() bool { return p.peek().kind == tokEOF }

func (p *parser) accept(op string) bool {
	if t := p.peek(); t.kind == tokOp && t.text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(op string) error {
	if !p.accept(op) {
		return fmt.Errorf("policyexpr: expected %q at %q in %q", op, p.peek().text, p.src)
	}
	return nil
}

// --- recursive descent ---

func (p *parser) parseExpr() (node, error) { return p.parseCond() }

func (p *parser) parseCond() (node, error) {
	c, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	if !p.accept("?") {
		return c, nil
	}
	t, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(":"); err != nil {
		return nil, err
	}
	f, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &condNode{c: c, t: t, f: f}, nil
}

func (p *parser) parseCmp() (node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"<=", ">=", "==", "!=", "<", ">"} {
		if p.accept(op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &binNode{op: op, l: l, r: r}, nil
		}
	}
	return l, nil
}

func (p *parser) parseAdd() (node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "+", l: l, r: r}
		case p.accept("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "-", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (node, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "*", l: l, r: r}
		case p.accept("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = &binNode{op: "/", l: l, r: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (node, error) {
	if p.accept("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &negNode{x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	t := p.next()
	switch t.kind {
	case tokNum:
		return numNode(t.num), nil
	case tokIdent:
		name := strings.ToUpper(t.text)
		if name == "INF" || name == "INFINITY" {
			return numNode(math.Inf(1)), nil
		}
		lower := strings.ToLower(t.text)
		if p.accept("(") {
			var args []node
			if !p.accept(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if p.accept(")") {
						break
					}
					if err := p.expect(","); err != nil {
						return nil, err
					}
				}
			}
			if len(args) == 0 {
				return nil, fmt.Errorf("policyexpr: %s() needs arguments", lower)
			}
			switch lower {
			case "max", "min":
			case "ceil", "floor":
				if len(args) != 1 {
					return nil, fmt.Errorf("policyexpr: %s() takes one argument", lower)
				}
			default:
				return nil, fmt.Errorf("policyexpr: unknown function %q", t.text)
			}
			return &callNode{fn: lower, args: args}, nil
		}
		return varNode(name), nil
	case tokOp:
		if t.text == "(" {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, fmt.Errorf("policyexpr: unexpected token %q in %q", t.text, p.src)
}
