package metrics

import (
	"math"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
)

func rig(t *testing.T) (*sim.Engine, *cluster.Cluster, *dfs.DFS, *mapreduce.JobTracker) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	return eng, cl, dfs.New(cl), mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), nil)
}

var schema = data.NewSchema("V")

func mkFile(t *testing.T, fs *dfs.DFS, name string, blocks, recs int) *dfs.File {
	t.Helper()
	var srcs []data.Source
	for b := 0; b < blocks; b++ {
		rr := make([]data.Record, recs)
		for i := range rr {
			rr[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, rr))
	}
	f, err := fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSamplerIdleClusterReadsZero(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	eng.RunUntil(35)
	if len(s.Samples()) < 3 {
		t.Fatalf("samples = %d", len(s.Samples()))
	}
	for _, sm := range s.Samples() {
		if sm.CPUUtilPct != 0 || sm.DiskReadKBs != 0 || sm.SlotOccupancyPct != 0 {
			t.Fatalf("idle cluster sample non-zero: %+v", sm)
		}
	}
}

func TestSamplerSeesLoad(t *testing.T) {
	eng, _, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 80, 2000)
	job := jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(rec data.Record, out *mapreduce.Collector) error {
				return nil
			})
		},
	}, mapreduce.SplitsForFile(f))
	s := NewSampler(jt, 5)
	s.Start()
	mapreduce.RunUntilDone(eng, job, 1e6)
	cpu, disk, occ := s.Averages(0)
	if cpu <= 0 {
		t.Fatalf("cpu avg = %v", cpu)
	}
	if disk <= 0 {
		t.Fatalf("disk avg = %v", disk)
	}
	if occ <= 0 {
		t.Fatalf("occupancy avg = %v", occ)
	}
	if cpu > 100+1e-6 || occ > 100+1e-6 {
		t.Fatalf("percentages out of range: cpu=%v occ=%v", cpu, occ)
	}
}

func TestAveragesExcludeWarmup(t *testing.T) {
	eng, cl, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	// Occupy one core of node 0 from t=0 to t=20 (per-task 1-core cap).
	cl.Node(0).CPU.Submit(20, nil)
	eng.RunUntil(100)
	full, _, _ := s.Averages(0)
	late, _, _ := s.Averages(50)
	if full <= 0 {
		t.Fatalf("full-window cpu = %v", full)
	}
	if late != 0 {
		t.Fatalf("post-warmup cpu = %v, want 0 (load ended before t=50)", late)
	}
}

func TestSamplerStop(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	eng.RunUntil(25)
	n := len(s.Samples())
	s.Stop()
	eng.RunUntil(100)
	if len(s.Samples()) > n+1 {
		t.Fatalf("sampler kept running after Stop: %d -> %d", n, len(s.Samples()))
	}
}

func TestDefaultIntervalThirtySeconds(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 0)
	s.Start()
	eng.RunUntil(95)
	if got := len(s.Samples()); got != 3 {
		t.Fatalf("samples in 95s = %d, want 3 (30s interval)", got)
	}
	if math.Abs(s.Samples()[0].Time-30) > 1e-9 {
		t.Fatalf("first sample at %v", s.Samples()[0].Time)
	}
}

func TestLocalityPct(t *testing.T) {
	eng, _, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 40, 100)
	job := jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(data.Record, *mapreduce.Collector) error { return nil })
		},
	}, mapreduce.SplitsForFile(f))
	if LocalityPct(jt) != 0 {
		t.Fatal("locality non-zero before any maps")
	}
	mapreduce.RunUntilDone(eng, job, 1e6)
	if got := LocalityPct(jt); got < 50 || got > 100 {
		t.Fatalf("locality = %v%%", got)
	}
}
