package metrics

import (
	"math"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
)

func rig(t *testing.T) (*sim.Engine, *cluster.Cluster, *dfs.DFS, *mapreduce.JobTracker) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	return eng, cl, dfs.New(cl), mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), nil)
}

var schema = data.NewSchema("V")

func mkFile(t *testing.T, fs *dfs.DFS, name string, blocks, recs int) *dfs.File {
	t.Helper()
	var srcs []data.Source
	for b := 0; b < blocks; b++ {
		rr := make([]data.Record, recs)
		for i := range rr {
			rr[i] = data.NewRecord(schema, []data.Value{data.Int(int64(i))})
		}
		srcs = append(srcs, data.NewSliceSource(schema, rr))
	}
	f, err := fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSamplerIdleClusterReadsZero(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	eng.RunUntil(35)
	if len(s.Samples()) < 3 {
		t.Fatalf("samples = %d", len(s.Samples()))
	}
	for _, sm := range s.Samples() {
		if sm.CPUUtilPct != 0 || sm.DiskReadKBs != 0 || sm.SlotOccupancyPct != 0 {
			t.Fatalf("idle cluster sample non-zero: %+v", sm)
		}
	}
}

func TestSamplerSeesLoad(t *testing.T) {
	eng, _, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 80, 2000)
	job := jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(rec data.Record, out *mapreduce.Collector) error {
				return nil
			})
		},
	}, mapreduce.SplitsForFile(f))
	s := NewSampler(jt, 5)
	s.Start()
	mapreduce.RunUntilDone(eng, job, 1e6)
	cpu, disk, occ := s.Averages(0)
	if cpu <= 0 {
		t.Fatalf("cpu avg = %v", cpu)
	}
	if disk <= 0 {
		t.Fatalf("disk avg = %v", disk)
	}
	if occ <= 0 {
		t.Fatalf("occupancy avg = %v", occ)
	}
	if cpu > 100+1e-6 || occ > 100+1e-6 {
		t.Fatalf("percentages out of range: cpu=%v occ=%v", cpu, occ)
	}
}

func TestAveragesExcludeWarmup(t *testing.T) {
	eng, cl, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	// Occupy one core of node 0 from t=0 to t=20 (per-task 1-core cap).
	cl.Node(0).CPU.Submit(20, nil)
	eng.RunUntil(100)
	full, _, _ := s.Averages(0)
	late, _, _ := s.Averages(50)
	if full <= 0 {
		t.Fatalf("full-window cpu = %v", full)
	}
	if late != 0 {
		t.Fatalf("post-warmup cpu = %v, want 0 (load ended before t=50)", late)
	}
}

func TestSamplerStop(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	eng.RunUntil(25)
	n := len(s.Samples())
	s.Stop()
	eng.RunUntil(100)
	if len(s.Samples()) > n+1 {
		t.Fatalf("sampler kept running after Stop: %d -> %d", n, len(s.Samples()))
	}
}

func TestDefaultIntervalThirtySeconds(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 0)
	s.Start()
	eng.RunUntil(95)
	if got := len(s.Samples()); got != 3 {
		t.Fatalf("samples in 95s = %d, want 3 (30s interval)", got)
	}
	if math.Abs(s.Samples()[0].Time-30) > 1e-9 {
		t.Fatalf("first sample at %v", s.Samples()[0].Time)
	}
}

func TestLocalityPct(t *testing.T) {
	eng, _, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 40, 100)
	job := jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(data.Record, *mapreduce.Collector) error { return nil })
		},
	}, mapreduce.SplitsForFile(f))
	if LocalityPct(jt) != 0 {
		t.Fatal("locality non-zero before any maps")
	}
	mapreduce.RunUntilDone(eng, job, 1e6)
	if got := LocalityPct(jt); got < 50 || got > 100 {
		t.Fatalf("locality = %v%%", got)
	}
}

// submitScanJob runs a trivial scan over a fresh file, for load.
func submitScanJob(t *testing.T, fs *dfs.DFS, jt *mapreduce.JobTracker, name string, blocks, recs int) *mapreduce.Job {
	t.Helper()
	f := mkFile(t, fs, name, blocks, recs)
	return jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(data.Record, *mapreduce.Collector) error { return nil })
		},
	}, mapreduce.SplitsForFile(f))
}

func TestSamplerStartIdempotent(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	s.Start() // must not spawn a second poll loop
	eng.RunUntil(35)
	if got := len(s.Samples()); got != 3 {
		t.Fatalf("samples after double Start = %d, want 3 (one loop)", got)
	}
}

// TestSamplerStopStartNoDanglingLoop is the regression test for the
// Stop/Start re-entry bug: a stopped sampler's queued tick must not
// keep rescheduling, and a restart must run exactly one loop.
func TestSamplerStopStartNoDanglingLoop(t *testing.T) {
	eng, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	eng.RunUntil(25) // samples at 10, 20
	if got := len(s.Samples()); got != 2 {
		t.Fatalf("samples before Stop = %d", got)
	}
	s.Stop()
	eng.RunUntil(50) // the tick queued for t=30 must not fire or reschedule
	if got := len(s.Samples()); got != 2 {
		t.Fatalf("samples grew after Stop: %d", got)
	}
	s.Start()
	eng.RunUntil(85) // restarted loop: samples at 60, 70, 80 — once each
	if got := len(s.Samples()); got != 5 {
		t.Fatalf("samples after restart = %d, want 5 (no doubled loop)", got)
	}
	for i, sm := range s.Samples()[2:] {
		if want := 60 + 10*float64(i); math.Abs(sm.Time-want) > 1e-9 {
			t.Fatalf("restarted sample %d at t=%v, want %v", i, sm.Time, want)
		}
	}
}

func TestAveragesZeroSamples(t *testing.T) {
	_, _, _, jt := rig(t)
	s := NewSampler(jt, 10)
	cpu, disk, occ := s.Averages(0)
	if cpu != 0 || disk != 0 || occ != 0 {
		t.Fatalf("averages with no samples = %v, %v, %v", cpu, disk, occ)
	}
}

// TestAveragesWarmupBoundary places fromT strictly between two sample
// times: the earlier sample must be excluded, the later included.
func TestAveragesWarmupBoundary(t *testing.T) {
	eng, cl, _, jt := rig(t)
	s := NewSampler(jt, 10)
	s.Start()
	// Load only within the first interval: one core busy t=0..10.
	cl.Node(0).CPU.Submit(10, nil)
	eng.RunUntil(25) // samples at 10 (loaded) and 20 (idle)
	if got := len(s.Samples()); got != 2 {
		t.Fatalf("samples = %d", got)
	}
	full, _, _ := s.Averages(0)
	if full <= 0 {
		t.Fatalf("full-window cpu = %v", full)
	}
	mid, _, _ := s.Averages(15) // strictly between 10 and 20
	if mid != 0 {
		t.Fatalf("cpu from t=15 = %v, want 0 (only the idle sample remains)", mid)
	}
	atSecond, _, _ := s.Averages(20) // inclusive at the sample time
	if atSecond != 0 {
		t.Fatalf("cpu from t=20 = %v, want 0", atSecond)
	}
}

func TestSamplerConcurrentJobs(t *testing.T) {
	eng, _, fs, jt := rig(t)
	j1 := submitScanJob(t, fs, jt, "in1", 40, 2000)
	j2 := submitScanJob(t, fs, jt, "in2", 40, 2000)
	s := NewSampler(jt, 5)
	s.Start()
	mapreduce.RunUntilDone(eng, j1, 1e6)
	mapreduce.RunUntilDone(eng, j2, 1e6)
	cpu, disk, occ := s.Averages(0)
	if cpu <= 0 || disk <= 0 || occ <= 0 {
		t.Fatalf("concurrent-job averages = %v, %v, %v", cpu, disk, occ)
	}
	if cpu > 100+1e-6 || occ > 100+1e-6 {
		t.Fatalf("percentages out of range under concurrency: cpu=%v occ=%v", cpu, occ)
	}
	for i := 1; i < len(s.Samples()); i++ {
		if s.Samples()[i].Time <= s.Samples()[i-1].Time {
			t.Fatalf("samples out of order at %d: %+v", i, s.Samples())
		}
	}
}

// TestSamplerConsumesTraceStream checks the event-stream mode: with
// tracing enabled the sampler subscribes to the tracer's telemetry
// instead of running its own loop, and sees identical samples.
func TestSamplerConsumesTraceStream(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	cfg := mapreduce.DefaultConfig()
	cfg.Trace = trace.Config{Enabled: true, SampleIntervalS: 1}
	jt := mapreduce.NewJobTracker(cl, cfg, nil)

	s := NewSampler(jt, 30) // interval ignored in trace mode
	s.Start()
	job := submitScanJob(t, fs, jt, "in", 40, 2000)
	mapreduce.RunUntilDone(eng, job, 1e6)

	stream := jt.Tracer().MetricSamples()
	if len(stream) == 0 {
		t.Fatal("tracer collected no telemetry")
	}
	if got := len(s.Samples()); got != len(stream) {
		t.Fatalf("sampler has %d samples, tracer stream has %d", got, len(stream))
	}
	for i, sm := range s.Samples() {
		if sm != (Sample(stream[i])) {
			t.Fatalf("sample %d diverged: %+v vs %+v", i, sm, stream[i])
		}
	}
	cpu, _, occ := s.Averages(0)
	if cpu <= 0 || occ <= 0 {
		t.Fatalf("trace-mode averages = %v, %v", cpu, occ)
	}

	// Stop halts the sampler while the tracer keeps collecting.
	s.Stop()
	n := len(s.Samples())
	eng.RunUntil(eng.Now() + 50)
	if len(s.Samples()) != n {
		t.Fatal("stopped sampler kept consuming the stream")
	}
	if len(jt.Tracer().MetricSamples()) <= len(stream) {
		t.Fatal("tracer telemetry stopped with the sampler")
	}
}
