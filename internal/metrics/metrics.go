// Package metrics samples cluster resource usage over virtual time,
// reproducing §V-D's monitoring: "we monitored the CPU utilization (%)
// and disk reads (Kbs/sec) at 30 second intervals on each node",
// averaged over the cluster's cores and disks, plus §V-F's locality and
// slot-occupancy measures.
package metrics

import (
	"dynamicmr/internal/cluster"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
)

// Sample is one interval's averaged readings.
type Sample struct {
	// Time is the interval's end (virtual seconds).
	Time float64
	// CPUUtilPct is mean CPU utilisation over the interval, in percent
	// of total core capacity.
	CPUUtilPct float64
	// DiskReadKBs is the mean per-disk transfer rate over the interval
	// in KB/s (averaged over all disks, as the paper reports).
	DiskReadKBs float64
	// SlotOccupancyPct is the mean fraction of map slots occupied.
	SlotOccupancyPct float64
}

// Sampler polls the cluster at a fixed virtual interval.
type Sampler struct {
	eng      *sim.Engine
	cl       *cluster.Cluster
	jt       *mapreduce.JobTracker
	interval float64

	samples []Sample

	lastT    float64
	lastCPU  float64
	lastDisk float64
	lastSlot float64

	stopped bool
}

// NewSampler creates a sampler with the paper's 30 s interval when
// intervalS <= 0.
func NewSampler(jt *mapreduce.JobTracker, intervalS float64) *Sampler {
	if intervalS <= 0 {
		intervalS = 30
	}
	return &Sampler{
		eng:      jt.Engine(),
		cl:       jt.Cluster(),
		jt:       jt,
		interval: intervalS,
	}
}

// Start begins sampling; the first sample lands one interval from now.
func (s *Sampler) Start() {
	s.stopped = false
	s.lastT = s.eng.Now()
	s.lastCPU = s.cl.CPUUsedIntegral()
	s.lastDisk = s.cl.DiskUsedIntegral()
	s.lastSlot = s.jt.MapSlotOccupancyIntegral()
	s.eng.After(s.interval, s.tick)
}

// Stop halts sampling after the current interval.
func (s *Sampler) Stop() { s.stopped = true }

// Samples returns everything collected so far.
func (s *Sampler) Samples() []Sample { return s.samples }

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	now := s.eng.Now()
	dt := now - s.lastT
	cpu := s.cl.CPUUsedIntegral()
	disk := s.cl.DiskUsedIntegral()
	slot := s.jt.MapSlotOccupancyIntegral()
	if dt > 0 {
		totalSlots := float64(s.cl.Cfg.TotalMapSlots())
		s.samples = append(s.samples, Sample{
			Time:             now,
			CPUUtilPct:       100 * (cpu - s.lastCPU) / (s.cl.CPUCapacity() * dt),
			DiskReadKBs:      (disk - s.lastDisk) / dt / float64(s.cl.Cfg.TotalDisks()) / 1024,
			SlotOccupancyPct: 100 * (slot - s.lastSlot) / (totalSlots * dt),
		})
	}
	s.lastT, s.lastCPU, s.lastDisk, s.lastSlot = now, cpu, disk, slot
	s.eng.After(s.interval, s.tick)
}

// Averages aggregates samples taken at or after fromT (to exclude
// warm-up), returning mean CPU %, disk KB/s and slot occupancy %.
func (s *Sampler) Averages(fromT float64) (cpuPct, diskKBs, occupancyPct float64) {
	n := 0
	for _, sm := range s.samples {
		if sm.Time < fromT {
			continue
		}
		cpuPct += sm.CPUUtilPct
		diskKBs += sm.DiskReadKBs
		occupancyPct += sm.SlotOccupancyPct
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return cpuPct / float64(n), diskKBs / float64(n), occupancyPct / float64(n)
}

// LocalityPct returns the cluster-lifetime fraction of completed map
// tasks that read a node-local replica, in percent (§V-F).
func LocalityPct(jt *mapreduce.JobTracker) float64 {
	local, nonLocal := jt.LocalityStats()
	total := local + nonLocal
	if total == 0 {
		return 0
	}
	return 100 * float64(local) / float64(total)
}
