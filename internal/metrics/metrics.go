// Package metrics samples cluster resource usage over virtual time,
// reproducing §V-D's monitoring: "we monitored the CPU utilization (%)
// and disk reads (Kbs/sec) at 30 second intervals on each node",
// averaged over the cluster's cores and disks, plus §V-F's locality and
// slot-occupancy measures.
//
// The Sampler is a consumer of the internal/trace event stream: when
// the runtime was built with tracing enabled it subscribes to the
// tracer's telemetry samples instead of polling the integrals itself,
// so the two observers can never disagree. Without tracing it runs its
// own poll loop on the same mapreduce.UtilizationCursor arithmetic.
package metrics

import (
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/trace"
)

// Sample is one interval's averaged readings.
type Sample struct {
	// Time is the interval's end (virtual seconds).
	Time float64
	// CPUUtilPct is mean CPU utilisation over the interval, in percent
	// of total core capacity.
	CPUUtilPct float64
	// DiskReadKBs is the mean per-disk transfer rate over the interval
	// in KB/s (averaged over all disks, as the paper reports).
	DiskReadKBs float64
	// SlotOccupancyPct is the mean fraction of map slots occupied.
	SlotOccupancyPct float64
}

// Sampler polls the cluster at a fixed virtual interval, or — when the
// runtime has tracing enabled — records the tracer's telemetry stream.
type Sampler struct {
	eng      *sim.Engine
	jt       *mapreduce.JobTracker
	interval float64

	samples []Sample

	cursor *mapreduce.UtilizationCursor

	// gen invalidates stale poll loops: each Start bumps it, and a tick
	// scheduled by an earlier generation returns without rescheduling.
	gen        int
	running    bool
	stopped    bool
	subscribed bool
}

// NewSampler creates a sampler with the paper's 30 s interval when
// intervalS <= 0. The interval only applies to the standalone poll
// loop; with tracing enabled the tracer's sample interval governs.
func NewSampler(jt *mapreduce.JobTracker, intervalS float64) *Sampler {
	if intervalS <= 0 {
		intervalS = 30
	}
	return &Sampler{
		eng:      jt.Engine(),
		jt:       jt,
		interval: intervalS,
	}
}

// Start begins sampling; the first sample lands one interval from now.
// Start is idempotent while running — a second call does not spawn a
// second poll loop. After Stop, Start resumes with a fresh baseline.
func (s *Sampler) Start() {
	if s.running {
		return
	}
	s.running = true
	s.stopped = false
	if tr := s.jt.Tracer(); tr.Enabled() {
		// Event-stream mode: the tracer's telemetry poll is the single
		// source; subscribe once and filter while stopped.
		if !s.subscribed {
			s.subscribed = true
			tr.OnMetricSample(func(m trace.MetricSample) {
				if s.stopped {
					return
				}
				s.samples = append(s.samples, Sample(m))
			})
		}
		return
	}
	s.cursor = s.jt.NewUtilizationCursor()
	s.gen++
	gen := s.gen
	s.eng.After(s.interval, func() { s.tick(gen) })
}

// Stop halts sampling. Any poll callback already queued on the engine
// becomes a no-op, so Stop/Start cycles never stack loops.
func (s *Sampler) Stop() {
	s.stopped = true
	s.running = false
}

// Samples returns everything collected so far.
func (s *Sampler) Samples() []Sample { return s.samples }

// Timeline returns the collected samples as the trace package's sample
// type, ready for trace.WriteMetricCSV.
func (s *Sampler) Timeline() []trace.MetricSample {
	out := make([]trace.MetricSample, len(s.samples))
	for i, sm := range s.samples {
		out[i] = trace.MetricSample(sm)
	}
	return out
}

func (s *Sampler) tick(gen int) {
	if s.stopped || gen != s.gen {
		return
	}
	if p, ok := s.cursor.Advance(); ok {
		s.samples = append(s.samples, Sample(p))
	}
	s.eng.After(s.interval, func() { s.tick(gen) })
}

// Averages aggregates samples taken at or after fromT (to exclude
// warm-up), returning mean CPU %, disk KB/s and slot occupancy %.
func (s *Sampler) Averages(fromT float64) (cpuPct, diskKBs, occupancyPct float64) {
	n := 0
	for _, sm := range s.samples {
		if sm.Time < fromT {
			continue
		}
		cpuPct += sm.CPUUtilPct
		diskKBs += sm.DiskReadKBs
		occupancyPct += sm.SlotOccupancyPct
		n++
	}
	if n == 0 {
		return 0, 0, 0
	}
	return cpuPct / float64(n), diskKBs / float64(n), occupancyPct / float64(n)
}

// LocalityPct returns the cluster-lifetime fraction of completed map
// tasks that read a node-local replica, in percent (§V-F).
func LocalityPct(jt *mapreduce.JobTracker) float64 {
	local, nonLocal := jt.LocalityStats()
	total := local + nonLocal
	if total == 0 {
		return 0
	}
	return 100 * float64(local) / float64(total)
}
