package metrics

import (
	"math"
	"testing"

	"dynamicmr/internal/data"
	"dynamicmr/internal/mapreduce"
)

// TestDiskReadAccountingMatchesBytes checks the Figure 6 disk-read
// series against ground truth: a job that reads exactly B bytes must
// produce samples integrating to B.
func TestDiskReadAccountingMatchesBytes(t *testing.T) {
	eng, cl, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 20, 500)
	wantBytes := float64(f.TotalBytes())

	s := NewSampler(jt, 5)
	s.Start()
	job := jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(data.Record, *mapreduce.Collector) error { return nil })
		},
	}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	// Run past the last sample boundary so the final interval lands.
	eng.RunUntil(eng.Now() + 10)

	// Integrate the sampled per-disk KB/s back to bytes:
	// sample.DiskReadKBs * 1024 * interval * totalDisks.
	var readBytes float64
	var lastT float64
	for _, sm := range s.Samples() {
		dt := sm.Time - lastT
		lastT = sm.Time
		readBytes += sm.DiskReadKBs * 1024 * dt * float64(cl.Cfg.TotalDisks())
	}
	// Reduce output writes add a little on top of the reads; the map
	// reads must be within a few percent.
	if readBytes < wantBytes*0.98 {
		t.Fatalf("sampled disk volume %.0f < actual read volume %.0f", readBytes, wantBytes)
	}
	if readBytes > wantBytes*1.25 {
		t.Fatalf("sampled disk volume %.0f far above read volume %.0f", readBytes, wantBytes)
	}
	_ = math.Abs
}

// TestCPUAccountingMatchesWork: a job whose map CPU work is known
// integrates to the configured per-record cost.
func TestCPUAccountingMatchesWork(t *testing.T) {
	eng, cl, fs, jt := rig(t)
	f := mkFile(t, fs, "in", 10, 1000)
	job := jt.Submit(mapreduce.JobSpec{
		NewMapper: func(*mapreduce.JobConf) mapreduce.Mapper {
			return mapreduce.MapperFunc(func(data.Record, *mapreduce.Collector) error { return nil })
		},
	}, mapreduce.SplitsForFile(f))
	mapreduce.RunUntilDone(eng, job, 1e6)
	costs := mapreduce.DefaultCosts()
	wantCPU := float64(10*1000) * costs.MapCPUPerRecordS // map work
	got := cl.CPUUsedIntegral()
	if got < wantCPU*0.99 { // float accumulation tolerance
		t.Fatalf("CPU integral %v below map work %v", got, wantCPU)
	}
	// Sort/reduce overhead is small for empty map output.
	if got > wantCPU*1.5+0.1 {
		t.Fatalf("CPU integral %v far above map work %v", got, wantCPU)
	}
}
