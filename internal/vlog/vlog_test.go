package vlog

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

// TestVirtualClockStamping: every record carries vt from the supplied
// clock and no wall-clock "time" field.
func TestVirtualClockStamping(t *testing.T) {
	var buf bytes.Buffer
	now := 0.0
	log := New(&buf, slog.LevelInfo, func() float64 { return now })

	now = 12.5
	log.Info("first", slog.Int(KeyJob, 3))
	now = 99.25
	log.Warn("second")

	sc := bufio.NewScanner(&buf)
	var records []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("line not JSON: %v: %s", err, sc.Text())
		}
		records = append(records, m)
	}
	if len(records) != 2 {
		t.Fatalf("want 2 NDJSON records, got %d", len(records))
	}
	if vt := records[0][KeyVT]; vt != 12.5 {
		t.Errorf("record 0 vt: want 12.5, got %v", vt)
	}
	if vt := records[1][KeyVT]; vt != 99.25 {
		t.Errorf("record 1 vt: want 99.25, got %v", vt)
	}
	for i, m := range records {
		if _, ok := m[slog.TimeKey]; ok {
			t.Errorf("record %d still carries a wall-clock %q field: %v", i, slog.TimeKey, m)
		}
	}
	if records[0][KeyJob] != float64(3) {
		t.Errorf("job attr lost: %v", records[0])
	}
	if records[0][slog.MessageKey] != "first" {
		t.Errorf("message lost: %v", records[0])
	}
}

// TestLevelGating: records below the handler level produce no output,
// and Enabled reports it so call sites can skip attribute assembly.
func TestLevelGating(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelWarn, nil)
	if log.Enabled(context.Background(), slog.LevelInfo) {
		t.Error("info must be disabled at warn level")
	}
	log.Debug("nope")
	log.Info("nope")
	log.Warn("yes")
	lines := strings.Count(buf.String(), "\n")
	if lines != 1 {
		t.Errorf("want exactly 1 record, got %d: %s", lines, buf.String())
	}
}

// TestNop: the shared discard logger reports disabled at every level.
func TestNop(t *testing.T) {
	for _, lvl := range []slog.Level{slog.LevelDebug, slog.LevelInfo, slog.LevelWarn, slog.LevelError} {
		if Nop().Enabled(context.Background(), lvl) {
			t.Errorf("Nop must be disabled at %v", lvl)
		}
	}
	if Or(nil) != Nop() {
		t.Error("Or(nil) must return the shared Nop logger")
	}
	custom := slog.New(nopHandler{})
	if Or(custom) != custom {
		t.Error("Or must pass through a non-nil logger")
	}
}

// TestWithAttrs: attrs bound via With survive the vt re-issue.
func TestWithAttrs(t *testing.T) {
	var buf bytes.Buffer
	log := New(&buf, slog.LevelInfo, func() float64 { return 7 }).
		With(slog.String(KeyComponent, "jobtracker"))
	log.Info("msg", slog.Int(KeyJob, 1))
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m[KeyComponent] != "jobtracker" {
		t.Errorf("With attr lost: %v", m)
	}
	if m[KeyVT] != float64(7) {
		t.Errorf("vt lost under With: %v", m)
	}
}

// TestParseLevel covers the flag surface.
func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"":      slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel must reject unknown levels")
	}
}

// TestLockWriterConcurrent: records from concurrent loggers sharing
// one sink never interleave mid-line.
func TestLockWriterConcurrent(t *testing.T) {
	var buf bytes.Buffer
	w := LockWriter(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		log := New(w, slog.LevelInfo, func() float64 { return float64(g) })
		wg.Add(1)
		go func(log *slog.Logger) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				log.Info("concurrent", slog.Int("i", i), slog.String("pad", strings.Repeat("x", 64)))
			}
		}(log)
	}
	wg.Wait()
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("interleaved/corrupt line %d: %v", n, err)
		}
		n++
	}
	if n != 8*50 {
		t.Errorf("want 400 records, got %d", n)
	}
}

// TestCapture: the test sink records vt and attrs, including attrs
// bound via With.
func TestCapture(t *testing.T) {
	cap := NewCapture(slog.LevelDebug)
	log := cap.Logger(func() float64 { return 42 })
	log.With(slog.String(KeyPolicy, "LA")).Debug("decision", slog.String(KeyVerdict, "GROW"))
	entries := cap.Entries()
	if len(entries) != 1 {
		t.Fatalf("want 1 entry, got %d", len(entries))
	}
	e := entries[0]
	if e.VT != 42 || e.Message != "decision" || e.Level != slog.LevelDebug {
		t.Errorf("entry header wrong: %+v", e)
	}
	if e.Attrs[KeyPolicy] != "LA" || e.Attrs[KeyVerdict] != "GROW" {
		t.Errorf("attrs wrong: %+v", e.Attrs)
	}
}
