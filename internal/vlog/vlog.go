// Package vlog is a structured-logging facade for the simulated
// cluster. It wraps a standard log/slog handler so that every record
// is stamped with the *virtual* clock (seconds since simulation
// start, attribute "vt") instead of the wall clock, which is
// meaningless inside a discrete-event run. Library packages log
// through a *slog.Logger threaded in via configuration; the default
// is Nop(), so nothing is ever written to stdout/stderr unless a
// binary under cmd/ opts in with -log-out/-log-level.
//
// Attribute contract (see DESIGN.md "Structured logging"):
//
//	vt      float64  virtual time in seconds (every record)
//	job     int      job ID
//	task    int      task index within the job
//	attempt int      attempt sequence number
//	node    int      node (TaskTracker) index
//	policy  string   Input Provider policy name (Hadoop/HA/MA/LA/C)
//	verdict string   policy decision verdict (INIT/GROW/WAIT/EOI/SKIP)
//	user    string   session user
//	query   string   SQL statement text
//	qid     string   stable query ID assigned by the qstats registry
//	comp    string   emitting component (e.g. "jobtracker", "hive")
package vlog

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
	"sync"
	"time"
)

// Shared attribute keys. Emitters must use these constants so that
// records from different subsystems correlate on the same fields.
const (
	KeyVT        = "vt"
	KeyJob       = "job"
	KeyTask      = "task"
	KeyAttempt   = "attempt"
	KeyNode      = "node"
	KeyPolicy    = "policy"
	KeyVerdict   = "verdict"
	KeyUser      = "user"
	KeyQuery     = "query"
	KeyQueryID   = "qid"
	KeyComponent = "comp"
)

// Handler decorates an inner slog.Handler: it zeroes the wall-clock
// timestamp (slog JSON/text handlers omit a zero time) and prepends a
// "vt" attribute read from the virtual clock at Handle time.
type Handler struct {
	inner slog.Handler
	now   func() float64
}

// NewHandler wraps inner. now reads the virtual clock in seconds; a
// nil now stamps vt=0 on every record.
func NewHandler(inner slog.Handler, now func() float64) *Handler {
	return &Handler{inner: inner, now: now}
}

// Enabled implements slog.Handler.
func (h *Handler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

// Handle implements slog.Handler: the record is re-issued with a zero
// wall-clock time and a leading vt attribute.
func (h *Handler) Handle(ctx context.Context, r slog.Record) error {
	vt := 0.0
	if h.now != nil {
		vt = h.now()
	}
	out := slog.NewRecord(time.Time{}, r.Level, r.Message, r.PC)
	out.AddAttrs(slog.Float64(KeyVT, vt))
	r.Attrs(func(a slog.Attr) bool {
		out.AddAttrs(a)
		return true
	})
	return h.inner.Handle(ctx, out)
}

// WithAttrs implements slog.Handler.
func (h *Handler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &Handler{inner: h.inner.WithAttrs(attrs), now: h.now}
}

// WithGroup implements slog.Handler.
func (h *Handler) WithGroup(name string) slog.Handler {
	return &Handler{inner: h.inner.WithGroup(name), now: h.now}
}

// lockedWriter serialises concurrent rigs appending NDJSON lines to
// one file (slog handlers lock per handler, not per destination).
type lockedWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (lw *lockedWriter) Write(p []byte) (int, error) {
	lw.mu.Lock()
	defer lw.mu.Unlock()
	return lw.w.Write(p)
}

// LockWriter wraps w so writes from multiple handlers do not
// interleave mid-line.
func LockWriter(w io.Writer) io.Writer { return &lockedWriter{w: w} }

// New builds a virtual-clock NDJSON logger writing one JSON object
// per line to w at the given level. now reads the virtual clock.
func New(w io.Writer, level slog.Leveler, now func() float64) *slog.Logger {
	inner := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(NewHandler(inner, now))
}

// nopHandler discards everything; Enabled is false at every level so
// callers guarded with Logger.Enabled pay nothing.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nop = slog.New(nopHandler{})

// Nop returns the shared discard logger: the default for every
// library component when no logger is configured.
func Nop() *slog.Logger { return nop }

// Or returns l if non-nil, else the Nop logger, so library code never
// nil-checks its logger.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return nop
	}
	return l
}

// ParseLevel maps a -log-level flag value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug|info|warn|error)", s)
}

// Entry is one captured record (tests).
type Entry struct {
	Level   slog.Level
	Message string
	VT      float64
	Attrs   map[string]any
}

// Capture is an in-memory slog.Handler for tests: it records every
// entry along with the virtual timestamp the vlog Handler stamped.
type Capture struct {
	mu      sync.Mutex
	level   slog.Level
	entries []Entry
}

// NewCapture returns a capture sink accepting records at or above
// level.
func NewCapture(level slog.Level) *Capture { return &Capture{level: level} }

// Logger returns a virtual-clock logger feeding this capture.
func (c *Capture) Logger(now func() float64) *slog.Logger {
	return slog.New(NewHandler(c, now))
}

// Enabled implements slog.Handler.
func (c *Capture) Enabled(_ context.Context, level slog.Level) bool { return level >= c.level }

// Handle implements slog.Handler.
func (c *Capture) Handle(_ context.Context, r slog.Record) error {
	e := Entry{Level: r.Level, Message: r.Message, Attrs: make(map[string]any)}
	r.Attrs(func(a slog.Attr) bool {
		if a.Key == KeyVT {
			e.VT = a.Value.Float64()
		} else {
			e.Attrs[a.Key] = a.Value.Any()
		}
		return true
	})
	c.mu.Lock()
	c.entries = append(c.entries, e)
	c.mu.Unlock()
	return nil
}

// WithAttrs implements slog.Handler (attrs are folded into each
// record at Handle time by slog itself for derived loggers; Capture
// keeps it simple and shares the sink).
func (c *Capture) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &captureWith{c: c, attrs: attrs}
}

// WithGroup implements slog.Handler.
func (c *Capture) WithGroup(string) slog.Handler { return c }

// Entries returns a snapshot of captured records.
func (c *Capture) Entries() []Entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry, len(c.entries))
	copy(out, c.entries)
	return out
}

type captureWith struct {
	c     *Capture
	attrs []slog.Attr
}

func (cw *captureWith) Enabled(ctx context.Context, l slog.Level) bool {
	return cw.c.Enabled(ctx, l)
}

func (cw *captureWith) Handle(ctx context.Context, r slog.Record) error {
	out := slog.NewRecord(r.Time, r.Level, r.Message, r.PC)
	out.AddAttrs(cw.attrs...)
	r.Attrs(func(a slog.Attr) bool {
		out.AddAttrs(a)
		return true
	})
	return cw.c.Handle(ctx, out)
}

func (cw *captureWith) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &captureWith{c: cw.c, attrs: append(append([]slog.Attr{}, cw.attrs...), attrs...)}
}

func (cw *captureWith) WithGroup(string) slog.Handler { return cw }
