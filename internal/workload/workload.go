// Package workload implements the multi-user workload generator of
// §V-D/E: a group of closed-loop users, each submitting a query,
// waiting for its completion, and submitting again, against per-user
// dataset copies; runs proceed through a warm-up window into a
// measured steady-state window from which per-class throughput
// (jobs/hour) is computed.
package workload

import (
	"fmt"
	"sort"

	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
)

// User is one closed-loop workload participant.
type User struct {
	// Name identifies the user (and their Fair Scheduler pool).
	Name string
	// Class labels the user for per-class reporting ("Sampling",
	// "Non-Sampling", ...).
	Class string
	// Query is the HiveQL the user submits repeatedly.
	Query string
	// Session executes the queries (carries the user's SET overrides,
	// e.g. the policy).
	Session *hive.Session

	completed      int       // jobs finished inside the window
	totalCompleted int       // jobs finished at any time
	responseTimes  []float64 // response times inside the window
	inflight       *mapreduce.Job
	failures       int
}

// Completed returns the user's in-window completions.
func (u *User) Completed() int { return u.completed }

// Failures returns how many of the user's jobs failed.
func (u *User) Failures() int { return u.failures }

// ResponseTimes returns in-window response times.
func (u *User) ResponseTimes() []float64 { return u.responseTimes }

// Config shapes a run.
type Config struct {
	// WarmupS is excluded from measurement (reaching steady state).
	WarmupS float64
	// MeasureS is the measured steady-state window.
	MeasureS float64
	// MaxEvents caps engine events as a runaway guard (0 = 50M).
	MaxEvents uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MeasureS <= 0 {
		return fmt.Errorf("workload: MeasureS must be positive")
	}
	if c.WarmupS < 0 {
		return fmt.Errorf("workload: WarmupS must be non-negative")
	}
	return nil
}

// ClassStats aggregates one class's results.
type ClassStats struct {
	Class string
	// Users in the class.
	Users int
	// Completed jobs inside the measurement window.
	Completed int
	// ThroughputJobsPerHour is Completed scaled to an hour.
	ThroughputJobsPerHour float64
	// MeanResponseS is the mean in-window response time.
	MeanResponseS float64
	// MedianResponseS and P95ResponseS characterise the response-time
	// distribution (0 when no jobs completed).
	MedianResponseS float64
	P95ResponseS    float64
}

// Results summarises a run.
type Results struct {
	// Duration is the measured window length (virtual seconds).
	Duration float64
	// PerClass holds per-class aggregates, sorted by class name.
	PerClass []ClassStats
	// TotalThroughput is jobs/hour across all classes.
	TotalThroughput float64
}

// Class returns a class's stats.
func (r Results) Class(name string) (ClassStats, bool) {
	for _, c := range r.PerClass {
		if c.Class == name {
			return c, true
		}
	}
	return ClassStats{}, false
}

// Run drives the closed loop: every user keeps one query in flight
// from t=0; completions inside [WarmupS, WarmupS+MeasureS) count toward
// throughput. The engine must be the one under the users' sessions.
func Run(eng *sim.Engine, users []*User, cfg Config) (Results, error) {
	if err := cfg.Validate(); err != nil {
		return Results{}, err
	}
	if len(users) == 0 {
		return Results{}, fmt.Errorf("workload: no users")
	}
	maxEvents := cfg.MaxEvents
	if maxEvents == 0 {
		maxEvents = 50_000_000
	}

	start := eng.Now()
	measureStart := start + cfg.WarmupS
	end := measureStart + cfg.MeasureS

	jt := users[0].Session.JobTracker()
	submit := func(u *User) error {
		_, job, err := u.Session.SubmitAsync(u.Query)
		if err != nil {
			return fmt.Errorf("workload: user %s: %w", u.Name, err)
		}
		u.inflight = job
		return nil
	}
	for _, u := range users {
		if err := submit(u); err != nil {
			return Results{}, err
		}
	}

	events := uint64(0)
	for eng.Now() < end {
		if !eng.Step() {
			return Results{}, fmt.Errorf("workload: event queue drained unexpectedly")
		}
		events++
		if events > maxEvents {
			return Results{}, fmt.Errorf("workload: exceeded %d events at t=%.0fs", maxEvents, eng.Now())
		}
		for _, u := range users {
			if u.inflight == nil || !u.inflight.Done() {
				continue
			}
			job := u.inflight
			u.totalCompleted++
			if job.State() == mapreduce.StateFailed {
				u.failures++
			}
			finish := job.FinishTime
			if finish >= measureStart && finish < end {
				u.completed++
				u.responseTimes = append(u.responseTimes, job.ResponseTime())
			}
			// Release the finished job's buffers and bookkeeping so a
			// long run's cost stays proportional to in-flight work.
			if err := jt.Retire(job); err != nil {
				return Results{}, err
			}
			if err := submit(u); err != nil {
				return Results{}, err
			}
		}
	}

	return aggregate(users, cfg.MeasureS), nil
}

func aggregate(users []*User, duration float64) Results {
	byClass := map[string]*ClassStats{}
	responses := map[string][]float64{}
	var order []string
	for _, u := range users {
		cs := byClass[u.Class]
		if cs == nil {
			cs = &ClassStats{Class: u.Class}
			byClass[u.Class] = cs
			order = append(order, u.Class)
		}
		cs.Users++
		cs.Completed += u.completed
		for _, rt := range u.responseTimes {
			cs.MeanResponseS += rt
		}
		responses[u.Class] = append(responses[u.Class], u.responseTimes...)
	}
	sort.Strings(order)
	res := Results{Duration: duration}
	for _, name := range order {
		cs := byClass[name]
		if cs.Completed > 0 {
			cs.MeanResponseS /= float64(cs.Completed)
		}
		if rts := responses[name]; len(rts) > 0 {
			sort.Float64s(rts)
			cs.MedianResponseS = rts[len(rts)/2]
			p95 := int(float64(len(rts)) * 0.95)
			if p95 >= len(rts) {
				p95 = len(rts) - 1
			}
			cs.P95ResponseS = rts[p95]
		}
		cs.ThroughputJobsPerHour = float64(cs.Completed) * 3600 / duration
		res.PerClass = append(res.PerClass, *cs)
		res.TotalThroughput += cs.ThroughputJobsPerHour
	}
	return res
}
