package workload

import (
	"fmt"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dataset"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/hive"
	"dynamicmr/internal/mapreduce"
	"dynamicmr/internal/sim"
	"dynamicmr/internal/tpch"
)

// rig builds a multi-user test bench with per-user LINEITEM copies.
type rig struct {
	eng     *sim.Engine
	jt      *mapreduce.JobTracker
	catalog *hive.Catalog
}

func newRig(t *testing.T, nUsers int, sched mapreduce.TaskScheduler) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig().MultiUser())
	fs := dfs.New(cl)
	jt := mapreduce.NewJobTracker(cl, mapreduce.DefaultConfig(), sched)
	catalog := hive.NewCatalog()
	for u := 0; u < nUsers; u++ {
		// Paper-like geometry scaled down: I/O-dominated ~60 MB
		// partitions, many more partitions than map slots for scans,
		// and enough matches that LIMIT 100 needs only ~1 partition.
		ds, err := dataset.Build(dataset.Spec{
			Scale: 20, Seed: int64(100 + u), Z: 0, Selectivity: 0.0002,
			Partitions: 400, RowsOverride: 120_000_000,
			Name: fmt.Sprintf("lineitem_u%d", u),
		})
		if err != nil {
			t.Fatal(err)
		}
		srcs := make([]data.Source, ds.NumPartitions())
		for i, p := range ds.Partitions() {
			srcs[i] = p
		}
		f, err := fs.Create(ds.Name(), srcs, 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := catalog.Register(&hive.Table{Name: ds.Name(), Schema: tpch.LineItemSchema, File: f}); err != nil {
			t.Fatal(err)
		}
	}
	return &rig{eng: eng, jt: jt, catalog: catalog}
}

func (r *rig) samplingUser(t *testing.T, idx int, policy string) *User {
	t.Helper()
	name := fmt.Sprintf("user%d", idx)
	s := hive.NewSession(r.jt, r.catalog, nil, name)
	if policy != "" {
		s.Set("dynamic.job.policy", policy)
	}
	return &User{
		Name:    name,
		Class:   "Sampling",
		Query:   fmt.Sprintf("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM lineitem_u%d WHERE L_DISCOUNT = 0.11 LIMIT 100", idx),
		Session: s,
	}
}

func (r *rig) scanUser(t *testing.T, idx int) *User {
	t.Helper()
	name := fmt.Sprintf("scanner%d", idx)
	s := hive.NewSession(r.jt, r.catalog, nil, name)
	return &User{
		Name:    name,
		Class:   "Non-Sampling",
		Query:   fmt.Sprintf("SELECT L_ORDERKEY, L_PARTKEY, L_SUPPKEY FROM lineitem_u%d WHERE L_DISCOUNT = 0.11", idx),
		Session: s,
	}
}

func TestConfigValidation(t *testing.T) {
	if err := (Config{MeasureS: 0}).Validate(); err == nil {
		t.Error("zero MeasureS accepted")
	}
	if err := (Config{MeasureS: 10, WarmupS: -1}).Validate(); err == nil {
		t.Error("negative warmup accepted")
	}
	if err := (Config{MeasureS: 10}).Validate(); err != nil {
		t.Error(err)
	}
}

func TestRunRequiresUsers(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := Run(eng, nil, Config{MeasureS: 10}); err == nil {
		t.Fatal("empty user list accepted")
	}
}

func TestClosedLoopThroughput(t *testing.T) {
	r := newRig(t, 2, nil)
	users := []*User{r.samplingUser(t, 0, "LA"), r.samplingUser(t, 1, "LA")}
	res, err := Run(r.eng, users, Config{WarmupS: 100, MeasureS: 900})
	if err != nil {
		t.Fatal(err)
	}
	cs, ok := res.Class("Sampling")
	if !ok {
		t.Fatal("Sampling class missing")
	}
	if cs.Users != 2 {
		t.Fatalf("users = %d", cs.Users)
	}
	if cs.Completed == 0 {
		t.Fatal("no jobs completed inside the window")
	}
	wantTp := float64(cs.Completed) * 3600 / 900
	if cs.ThroughputJobsPerHour != wantTp {
		t.Fatalf("throughput = %v, want %v", cs.ThroughputJobsPerHour, wantTp)
	}
	if cs.MeanResponseS <= 0 {
		t.Fatalf("mean response = %v", cs.MeanResponseS)
	}
	if cs.MedianResponseS <= 0 || cs.P95ResponseS < cs.MedianResponseS {
		t.Fatalf("percentiles inconsistent: median %v p95 %v", cs.MedianResponseS, cs.P95ResponseS)
	}
	// Closed loop: at all times at most one job in flight per user.
	for _, u := range users {
		if u.Failures() != 0 {
			t.Fatalf("user %s had %d failures", u.Name, u.Failures())
		}
		if len(u.ResponseTimes()) != u.Completed() {
			t.Fatalf("response-time count mismatch for %s", u.Name)
		}
	}
}

func TestHeterogeneousClasses(t *testing.T) {
	r := newRig(t, 4, nil)
	users := []*User{
		r.samplingUser(t, 0, "LA"),
		r.samplingUser(t, 1, "LA"),
		r.scanUser(t, 2),
		r.scanUser(t, 3),
	}
	res, err := Run(r.eng, users, Config{WarmupS: 100, MeasureS: 400})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerClass) != 2 {
		t.Fatalf("classes = %d", len(res.PerClass))
	}
	samp, _ := res.Class("Sampling")
	scan, _ := res.Class("Non-Sampling")
	if samp.Completed == 0 || scan.Completed == 0 {
		t.Fatalf("both classes must make progress: %+v / %+v", samp, scan)
	}
	// Sampling jobs touch a fraction of the input; scans read all 40
	// partitions; sampling throughput must exceed scan throughput.
	if samp.ThroughputJobsPerHour <= scan.ThroughputJobsPerHour {
		t.Fatalf("sampling %.1f <= scan %.1f jobs/hour",
			samp.ThroughputJobsPerHour, scan.ThroughputJobsPerHour)
	}
	if res.TotalThroughput != samp.ThroughputJobsPerHour+scan.ThroughputJobsPerHour {
		t.Fatal("total throughput mismatch")
	}
}

func TestWarmupExcluded(t *testing.T) {
	r := newRig(t, 1, nil)
	users := []*User{r.samplingUser(t, 0, "HA")}
	res, err := Run(r.eng, users, Config{WarmupS: 2000, MeasureS: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Jobs completing before t=2000 must not count.
	cs, _ := res.Class("Sampling")
	if users[0].totalCompleted <= cs.Completed {
		t.Fatalf("warmup jobs counted: total=%d window=%d", users[0].totalCompleted, cs.Completed)
	}
}

func TestEventGuard(t *testing.T) {
	r := newRig(t, 1, nil)
	users := []*User{r.samplingUser(t, 0, "LA")}
	_, err := Run(r.eng, users, Config{WarmupS: 0, MeasureS: 1e6, MaxEvents: 100})
	if err == nil {
		t.Fatal("event guard did not trip")
	}
}

func TestFairSchedulerWorkload(t *testing.T) {
	r := newRig(t, 2, mapreduce.NewFairScheduler(5))
	users := []*User{r.samplingUser(t, 0, "LA"), r.samplingUser(t, 1, "LA")}
	res, err := Run(r.eng, users, Config{WarmupS: 100, MeasureS: 600})
	if err != nil {
		t.Fatal(err)
	}
	cs, _ := res.Class("Sampling")
	if cs.Completed == 0 {
		t.Fatal("no completions under fair scheduler")
	}
}
