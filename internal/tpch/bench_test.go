package tpch

import "testing"

func BenchmarkRowGeneration(b *testing.B) {
	g := NewGenerator(1, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Row(int64(i) % g.NumRows())
	}
}

func BenchmarkRowEncodedSize(b *testing.B) {
	g := NewGenerator(1, 1)
	r := g.Row(0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.EncodedSize()
	}
}

func BenchmarkMix(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc ^= mix(uint64(i))
	}
	_ = acc
}
