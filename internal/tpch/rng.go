// Package tpch generates TPC-H LINEITEM data deterministically and
// seekably: the i-th row of a given (seed, scale) is a pure function of
// (seed, i), so any sub-range of a multi-hundred-gigabyte dataset can be
// produced on demand without materialising the rest.
package tpch

// mix implements the SplitMix64 finaliser, used as a counter-based PRNG:
// hashing (seed, counter) gives independent, reproducible streams with
// random access — exactly what a seekable data generator needs.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rng is a cheap counter-based random stream for one row: successive
// calls hash an incrementing counter against the row's base state.
type rng struct {
	state uint64
	ctr   uint64
}

// rowRNG returns the random stream for row `row` of stream `seed`.
func rowRNG(seed, row uint64) *rng {
	return &rng{state: mix(seed ^ mix(row+0x51ed2701)), ctr: 0}
}

func (r *rng) next() uint64 {
	r.ctr++
	return mix(r.state + r.ctr*0x632be59bd9b4e019)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int64) int64 {
	if n <= 0 {
		panic("tpch: intn on non-positive bound")
	}
	return int64(r.next() % uint64(n))
}

// rangeInt returns a uniform integer in [lo, hi] inclusive.
func (r *rng) rangeInt(lo, hi int64) int64 {
	return lo + r.intn(hi-lo+1)
}

// float64n returns a uniform float in [0, 1).
func (r *rng) float64n() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// pick returns a uniformly chosen element of list.
func pick[T any](r *rng, list []T) T {
	return list[r.intn(int64(len(list)))]
}
