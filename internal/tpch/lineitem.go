package tpch

import (
	"fmt"

	"dynamicmr/internal/data"
)

// RowsPerScale is the LINEITEM cardinality at scale factor 1
// (the TPC-H spec's ~6M rows at SF 1; the paper's 5x dataset therefore
// holds 30 million rows, matching §V-B).
const RowsPerScale = 6_000_000

// LineItemSchema is the LINEITEM column set.
var LineItemSchema = data.NewSchema(
	"L_ORDERKEY", "L_PARTKEY", "L_SUPPKEY", "L_LINENUMBER",
	"L_QUANTITY", "L_EXTENDEDPRICE", "L_DISCOUNT", "L_TAX",
	"L_RETURNFLAG", "L_LINESTATUS",
	"L_SHIPDATE", "L_COMMITDATE", "L_RECEIPTDATE",
	"L_SHIPINSTRUCT", "L_SHIPMODE", "L_COMMENT",
)

// Column index constants into LineItemSchema, for fast generated access.
const (
	ColOrderKey = iota
	ColPartKey
	ColSuppKey
	ColLineNumber
	ColQuantity
	ColExtendedPrice
	ColDiscount
	ColTax
	ColReturnFlag
	ColLineStatus
	ColShipDate
	ColCommitDate
	ColReceiptDate
	ColShipInstruct
	ColShipMode
	ColComment
)

var (
	returnFlags   = []string{"R", "A", "N"}
	lineStatuses  = []string{"O", "F"}
	shipInstructs = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	// ShipModes are the seven TPC-H transport modes. Values outside this
	// set never occur naturally, which the skew planner exploits.
	ShipModes = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}

	commentNouns = []string{
		"packages", "requests", "accounts", "deposits", "foxes", "ideas",
		"theodolites", "pinto beans", "instructions", "dependencies",
		"excuses", "platelets", "asymptotes", "courts", "dolphins",
	}
	commentVerbs = []string{
		"sleep", "wake", "haggle", "nag", "cajole", "boost", "detect",
		"engage", "integrate", "doze", "snooze", "wake quickly",
	}
	commentAdverbs = []string{
		"quickly", "slowly", "carefully", "furiously", "blithely",
		"daringly", "ruthlessly", "silently", "finally",
	}
)

// Generator produces LINEITEM rows for a (seed, scale) pair. It is
// stateless per row and safe for concurrent use.
type Generator struct {
	seed  uint64
	scale int
	rows  int64
}

// NewGenerator creates a generator for the given random seed and TPC-H
// scale factor (the paper uses scales 5, 10, 20, 40 and 100).
func NewGenerator(seed uint64, scale int) *Generator {
	if scale <= 0 {
		panic(fmt.Sprintf("tpch: scale must be positive, got %d", scale))
	}
	return &Generator{seed: seed, scale: scale, rows: int64(scale) * RowsPerScale}
}

// Seed returns the generator's seed.
func (g *Generator) Seed() uint64 { return g.seed }

// Scale returns the TPC-H scale factor.
func (g *Generator) Scale() int { return g.scale }

// NumRows returns the LINEITEM cardinality at this scale.
func (g *Generator) NumRows() int64 { return g.rows }

// dateTableSize covers 1992-01-01 .. 1998-12-31 (2557 days) plus the
// slack commit/receipt offsets can add.
const dateTableSize = 2557 + 64

// dateTable holds every date string row generation can produce;
// materialising rows is hot (every accelerated match allocates one),
// so dates are precomputed once.
var dateTable = buildDateTable()

func buildDateTable() [dateTableSize]string {
	var out [dateTableSize]string
	for i := range out {
		out[i] = computeDateString(int64(i))
	}
	return out
}

// computeDateString formats an epoch-day offset from 1992-01-01 as
// YYYY-MM-DD, handling the 1992/1996 leap years.
func computeDateString(dayOffset int64) string {
	y := 1992
	d := dayOffset
	for {
		ylen := int64(365)
		if y%4 == 0 {
			ylen = 366
		}
		if d < ylen {
			break
		}
		d -= ylen
		y++
	}
	months := [...]int64{31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31}
	if y%4 == 0 {
		months[1] = 29
	}
	m := 0
	for d >= months[m] {
		d -= months[m]
		m++
	}
	return fmt.Sprintf("%04d-%02d-%02d", y, m+1, d+1)
}

// dateString returns the date `dayOffset` days after 1992-01-01.
func dateString(dayOffset int64) string {
	if dayOffset >= 0 && dayOffset < dateTableSize {
		return dateTable[dayOffset]
	}
	return computeDateString(dayOffset)
}

// Row generates row i (0-based). Rows are independent; generating row
// 10^9 costs the same as row 0.
func (g *Generator) Row(i int64) data.Record {
	if i < 0 || i >= g.rows {
		panic(fmt.Sprintf("tpch: row %d out of range [0,%d)", i, g.rows))
	}
	r := rowRNG(g.seed, uint64(i))

	orderKey := i/4 + 1 // ~4 lineitems per order
	lineNumber := i%4 + 1
	partKey := r.rangeInt(1, int64(g.scale)*200_000)
	suppKey := r.rangeInt(1, int64(g.scale)*10_000)
	quantity := r.rangeInt(1, 50)
	// retail price ~ 900..2100 scaled by quantity.
	retail := 900.0 + r.float64n()*1200.0
	extendedPrice := float64(quantity) * retail
	discount := float64(r.rangeInt(0, 10)) / 100.0
	tax := float64(r.rangeInt(0, 8)) / 100.0

	shipDay := r.rangeInt(1, 2526)
	commitDay := shipDay + r.rangeInt(-30, 30)
	if commitDay < 0 {
		commitDay = 0
	}
	receiptDay := shipDay + r.rangeInt(1, 30)

	var returnFlag string
	if shipDay < 1700 {
		returnFlag = returnFlags[r.intn(2)] // R or A for older shipments
	} else {
		returnFlag = "N"
	}
	var lineStatus string
	if shipDay < 1700 {
		lineStatus = "F"
	} else {
		lineStatus = lineStatuses[r.intn(2)]
	}

	comment := pick(r, commentAdverbs) + " " + pick(r, commentNouns) + " " + pick(r, commentVerbs)

	vals := []data.Value{
		data.Int(orderKey),
		data.Int(partKey),
		data.Int(suppKey),
		data.Int(lineNumber),
		data.Int(quantity),
		data.Float(round2(extendedPrice)),
		data.Float(discount),
		data.Float(tax),
		data.Str(returnFlag),
		data.Str(lineStatus),
		data.Str(dateString(shipDay)),
		data.Str(dateString(commitDay)),
		data.Str(dateString(receiptDay)),
		data.Str(pick(r, shipInstructs)),
		data.Str(pick(r, ShipModes)),
		data.Str(comment),
	}
	return data.NewRecord(LineItemSchema, vals)
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}

// AvgRowBytes is the measured average encoded row size, used to size
// partitions without generating them. It is validated by tests against
// the real generator within a small tolerance.
const AvgRowBytes = 125

// EstimatedSizeBytes returns the approximate encoded size of n rows.
func EstimatedSizeBytes(n int64) int64 { return n * AvgRowBytes }
