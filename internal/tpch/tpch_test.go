package tpch

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"dynamicmr/internal/data"
)

func TestGeneratorDeterministic(t *testing.T) {
	g1 := NewGenerator(1, 1)
	g2 := NewGenerator(1, 1)
	for _, i := range []int64{0, 1, 999, 123456, RowsPerScale - 1} {
		a, b := g1.Row(i), g2.Row(i)
		if a.String() != b.String() {
			t.Fatalf("row %d differs between identical generators:\n%s\n%s", i, a, b)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	g1 := NewGenerator(1, 1)
	g2 := NewGenerator(2, 1)
	same := 0
	for i := int64(0); i < 100; i++ {
		if g1.Row(i).String() == g2.Row(i).String() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 rows identical across seeds", same)
	}
}

func TestRowDomains(t *testing.T) {
	g := NewGenerator(42, 1)
	flags := map[string]bool{"R": true, "A": true, "N": true}
	statuses := map[string]bool{"O": true, "F": true}
	modes := make(map[string]bool)
	for _, m := range ShipModes {
		modes[m] = true
	}
	for i := int64(0); i < 5000; i++ {
		r := g.Row(i)
		q := r.At(ColQuantity).AsInt()
		if q < 1 || q > 50 {
			t.Fatalf("row %d quantity %d out of [1,50]", i, q)
		}
		d := r.At(ColDiscount).AsFloat()
		if d < 0 || d > 0.10+1e-12 {
			t.Fatalf("row %d discount %v out of [0,0.10]", i, d)
		}
		tax := r.At(ColTax).AsFloat()
		if tax < 0 || tax > 0.08+1e-12 {
			t.Fatalf("row %d tax %v out of [0,0.08]", i, tax)
		}
		if !flags[r.At(ColReturnFlag).AsString()] {
			t.Fatalf("row %d bad returnflag %q", i, r.At(ColReturnFlag).AsString())
		}
		if !statuses[r.At(ColLineStatus).AsString()] {
			t.Fatalf("row %d bad linestatus %q", i, r.At(ColLineStatus).AsString())
		}
		if !modes[r.At(ColShipMode).AsString()] {
			t.Fatalf("row %d bad shipmode %q", i, r.At(ColShipMode).AsString())
		}
		ep := r.At(ColExtendedPrice).AsFloat()
		if ep < float64(q)*900 || ep > float64(q)*2100+1 {
			t.Fatalf("row %d extendedprice %v inconsistent with quantity %d", i, ep, q)
		}
		pk := r.At(ColPartKey).AsInt()
		if pk < 1 || pk > 200_000 {
			t.Fatalf("row %d partkey %d out of range", i, pk)
		}
	}
}

func TestOrderKeyAndLineNumber(t *testing.T) {
	g := NewGenerator(1, 1)
	for i := int64(0); i < 20; i++ {
		r := g.Row(i)
		wantOrder := i/4 + 1
		wantLine := i%4 + 1
		if r.At(ColOrderKey).AsInt() != wantOrder {
			t.Fatalf("row %d orderkey = %d, want %d", i, r.At(ColOrderKey).AsInt(), wantOrder)
		}
		if r.At(ColLineNumber).AsInt() != wantLine {
			t.Fatalf("row %d linenumber = %d, want %d", i, r.At(ColLineNumber).AsInt(), wantLine)
		}
	}
}

func TestDatesWellFormedAndOrdered(t *testing.T) {
	g := NewGenerator(9, 1)
	for i := int64(0); i < 2000; i++ {
		r := g.Row(i)
		ship := r.At(ColShipDate).AsString()
		receipt := r.At(ColReceiptDate).AsString()
		for _, d := range []string{ship, receipt, r.At(ColCommitDate).AsString()} {
			if len(d) != 10 || d[4] != '-' || d[7] != '-' {
				t.Fatalf("malformed date %q", d)
			}
			if d < "1992-01-01" || d > "1998-12-31" {
				t.Fatalf("date %q outside TPC-H range", d)
			}
		}
		// Receipt strictly after ship; lexicographic compare is date order.
		if receipt <= ship {
			t.Fatalf("row %d receipt %q not after ship %q", i, receipt, ship)
		}
	}
}

func TestDateStringKnownValues(t *testing.T) {
	cases := map[int64]string{
		0:    "1992-01-01",
		30:   "1992-01-31",
		31:   "1992-02-01",
		59:   "1992-02-29", // 1992 is a leap year
		60:   "1992-03-01",
		365:  "1992-12-31",
		366:  "1993-01-01",
		2556: "1998-12-31",
	}
	for off, want := range cases {
		if got := dateString(off); got != want {
			t.Errorf("dateString(%d) = %q, want %q", off, got, want)
		}
	}
}

func TestScaleCardinality(t *testing.T) {
	for _, s := range []int{1, 5, 100} {
		g := NewGenerator(1, s)
		if g.NumRows() != int64(s)*RowsPerScale {
			t.Fatalf("scale %d: NumRows = %d", s, g.NumRows())
		}
	}
	if NewGenerator(1, 5).NumRows() != 30_000_000 {
		t.Fatal("5x should hold 30M rows per the paper")
	}
}

func TestScalePanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive scale did not panic")
		}
	}()
	NewGenerator(1, 0)
}

func TestRowOutOfRangePanics(t *testing.T) {
	g := NewGenerator(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range row did not panic")
		}
	}()
	g.Row(g.NumRows())
}

func TestAvgRowBytesCalibration(t *testing.T) {
	g := NewGenerator(3, 1)
	var total int64
	n := int64(20_000)
	for i := int64(0); i < n; i++ {
		total += int64(g.Row(i).EncodedSize())
	}
	avg := float64(total) / float64(n)
	if math.Abs(avg-AvgRowBytes) > 10 {
		t.Fatalf("measured avg row size %.1f deviates from AvgRowBytes %d", avg, AvgRowBytes)
	}
}

func TestQuantityRoughlyUniform(t *testing.T) {
	g := NewGenerator(11, 1)
	counts := make(map[int64]int)
	n := 50_000
	for i := 0; i < n; i++ {
		counts[g.Row(int64(i)).At(ColQuantity).AsInt()]++
	}
	want := float64(n) / 50
	for q := int64(1); q <= 50; q++ {
		if math.Abs(float64(counts[q])-want) > want*0.25 {
			t.Fatalf("quantity %d count %d deviates >25%% from uniform %v", q, counts[q], want)
		}
	}
}

func TestMixAvalanche(t *testing.T) {
	// Flipping one input bit should flip roughly half the output bits.
	base := mix(12345)
	for bit := uint(0); bit < 64; bit += 7 {
		d := base ^ mix(12345^(1<<bit))
		pop := 0
		for d != 0 {
			pop += int(d & 1)
			d >>= 1
		}
		if pop < 10 || pop > 54 {
			t.Fatalf("bit %d: poor avalanche, %d bits flipped", bit, pop)
		}
	}
}

func TestRowRNGIndependenceProperty(t *testing.T) {
	f := func(seed uint64, a, b uint32) bool {
		if a == b {
			return true
		}
		r1 := rowRNG(seed, uint64(a))
		r2 := rowRNG(seed, uint64(b))
		return r1.next() != r2.next()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaColumns(t *testing.T) {
	cols := LineItemSchema.Columns()
	if len(cols) != 16 {
		t.Fatalf("LINEITEM has %d columns, want 16", len(cols))
	}
	if !strings.HasPrefix(cols[0], "L_") {
		t.Fatalf("unexpected first column %q", cols[0])
	}
	if i, ok := LineItemSchema.Index("l_shipmode"); !ok || i != ColShipMode {
		t.Fatalf("Index(l_shipmode) = %d, %v", i, ok)
	}
}

func TestRecordFieldsMatchSchema(t *testing.T) {
	g := NewGenerator(5, 1)
	r := g.Row(0)
	if r.Len() != LineItemSchema.Len() {
		t.Fatalf("record has %d fields, schema %d", r.Len(), LineItemSchema.Len())
	}
	if r.Schema() != LineItemSchema {
		t.Fatal("record not bound to LineItemSchema")
	}
	if _, ok := r.Get("L_COMMENT"); !ok {
		t.Fatal("L_COMMENT missing")
	}
	var _ data.Record = r
}
