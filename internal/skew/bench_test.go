package skew

import "testing"

func BenchmarkSamplerDraw(b *testing.B) {
	s := NewSampler(1, 800, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = s.Draw()
	}
}

func BenchmarkCounts15k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Counts(15000, 2, 40, int64(i))
	}
}

func BenchmarkAnalyticCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = AnalyticCounts(15000, 2, 40)
	}
}
