// Package skew models the paper's §V-B data-skew methodology: the
// assignment of each predicate-matching record to an input partition is
// a random variable drawn from a Zipfian distribution over partition
// ranks, with exponent z in {0, 1, 2} giving zero, moderate and high
// skew.
package skew

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Weights returns the normalised Zipf(z) probability of each rank
// 1..n (index 0 is rank 1): f(k; z, N) = (1/k^z) / Σ(1/n^z).
func Weights(z float64, n int) []float64 {
	if n <= 0 {
		panic(fmt.Sprintf("skew: n must be positive, got %d", n))
	}
	if z < 0 {
		panic(fmt.Sprintf("skew: z must be non-negative, got %v", z))
	}
	w := make([]float64, n)
	sum := 0.0
	for k := 1; k <= n; k++ {
		v := 1 / math.Pow(float64(k), z)
		w[k-1] = v
		sum += v
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// Sampler draws partition ranks from Zipf(z, n) using inverse-CDF
// sampling with a deterministic seed.
type Sampler struct {
	cdf []float64
	rng *rand.Rand
}

// NewSampler creates a sampler over ranks [0, n) with exponent z.
func NewSampler(z float64, n int, seed int64) *Sampler {
	w := Weights(z, n)
	cdf := make([]float64, n)
	acc := 0.0
	for i, v := range w {
		acc += v
		cdf[i] = acc
	}
	cdf[n-1] = 1.0 // guard against rounding
	return &Sampler{cdf: cdf, rng: rand.New(rand.NewSource(seed))}
}

// Draw returns a rank in [0, n); rank 0 is the most frequent.
func (s *Sampler) Draw() int {
	u := s.rng.Float64()
	return sort.SearchFloat64s(s.cdf, u)
}

// Counts draws `total` assignments from Zipf(z, n) and returns how many
// landed on each rank. This is the paper's data-generation method: every
// matching record's containing partition is an independent Zipfian draw.
func Counts(total int64, z float64, n int, seed int64) []int64 {
	s := NewSampler(z, n, seed)
	counts := make([]int64, n)
	for i := int64(0); i < total; i++ {
		counts[s.Draw()]++
	}
	return counts
}

// AnalyticCounts apportions `total` across ranks exactly proportionally
// to the Zipf weights using largest-remainder rounding; useful as the
// noise-free reference in tests and figures.
func AnalyticCounts(total int64, z float64, n int) []int64 {
	w := Weights(z, n)
	counts := make([]int64, n)
	type frac struct {
		i int
		f float64
	}
	rem := make([]frac, n)
	var assigned int64
	for i, p := range w {
		exact := p * float64(total)
		c := int64(math.Floor(exact))
		counts[i] = c
		assigned += c
		rem[i] = frac{i: i, f: exact - float64(c)}
	}
	sort.Slice(rem, func(a, b int) bool {
		if rem[a].f != rem[b].f {
			return rem[a].f > rem[b].f
		}
		return rem[a].i < rem[b].i
	})
	for k := int64(0); k < total-assigned; k++ {
		counts[rem[k%int64(n)].i]++
	}
	return counts
}
