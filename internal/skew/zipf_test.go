package skew

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightsSumToOne(t *testing.T) {
	for _, z := range []float64{0, 0.5, 1, 2} {
		w := Weights(z, 40)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("z=%v: weights sum to %v", z, sum)
		}
	}
}

func TestWeightsZeroSkewUniform(t *testing.T) {
	w := Weights(0, 40)
	for i, v := range w {
		if math.Abs(v-1.0/40) > 1e-12 {
			t.Fatalf("z=0 weight[%d] = %v, want 0.025", i, v)
		}
	}
}

func TestWeightsMonotoneDecreasing(t *testing.T) {
	for _, z := range []float64{0.5, 1, 2} {
		w := Weights(z, 100)
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1] {
				t.Fatalf("z=%v: weights not decreasing at %d", z, i)
			}
		}
	}
}

func TestWeightsMatchFormula(t *testing.T) {
	// f(k; z, N) = (1/k^z) / H_{N,z}. Check k=1 for z=2, N=40:
	// H_{40,2} ≈ 1.62024; weight ≈ 0.61719.
	w := Weights(2, 40)
	if math.Abs(w[0]-0.61719) > 1e-3 {
		t.Fatalf("z=2 top weight = %v, want ≈0.617", w[0])
	}
	// z=1, N=40: H_40 ≈ 4.27854; top ≈ 0.23372.
	w = Weights(1, 40)
	if math.Abs(w[0]-0.23372) > 1e-3 {
		t.Fatalf("z=1 top weight = %v, want ≈0.2337", w[0])
	}
}

func TestWeightsPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Weights(1, 0) },
		func() { Weights(-1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestCountsConserveTotal(t *testing.T) {
	f := func(totalRaw uint16, seed int64) bool {
		total := int64(totalRaw)
		c := Counts(total, 1, 40, seed)
		var sum int64
		for _, v := range c {
			sum += v
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCountsDeterministic(t *testing.T) {
	a := Counts(10000, 2, 40, 7)
	b := Counts(10000, 2, 40, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("counts differ at %d with same seed", i)
		}
	}
	c := Counts(10000, 2, 40, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("counts identical across different seeds")
	}
}

// Paper Figure 4 shape: 15 000 matches over 40 partitions. z=2 puts
// most matches (paper: 8 700, analytic ≈ 9 258) in the top partition;
// z=1 puts ≈3 100–3 500 there; z=0 puts exactly 375 everywhere.
func TestFigure4Shape(t *testing.T) {
	const total = 15000

	c0 := Counts(total, 0, 40, 1)
	for i, v := range c0 {
		if math.Abs(float64(v)-375) > 375*0.25 {
			t.Fatalf("z=0 partition %d count %d far from uniform 375", i, v)
		}
	}

	c1 := Counts(total, 1, 40, 1)
	if c1[0] < 2800 || c1[0] > 4200 {
		t.Fatalf("z=1 top partition count %d outside [2800,4200] (paper: 3128)", c1[0])
	}

	c2 := Counts(total, 2, 40, 1)
	if c2[0] < 8000 || c2[0] > 10500 {
		t.Fatalf("z=2 top partition count %d outside [8000,10500] (paper: 8700)", c2[0])
	}
	if c2[0] <= c1[0] {
		t.Fatalf("higher skew should concentrate more: z2 top %d <= z1 top %d", c2[0], c1[0])
	}
}

func TestAnalyticCountsExact(t *testing.T) {
	c := AnalyticCounts(15000, 0, 40)
	for i, v := range c {
		if v != 375 {
			t.Fatalf("analytic z=0 count[%d] = %d, want 375", i, v)
		}
	}
	c = AnalyticCounts(15000, 2, 40)
	var sum int64
	for _, v := range c {
		sum += v
	}
	if sum != 15000 {
		t.Fatalf("analytic counts sum %d, want 15000", sum)
	}
	if math.Abs(float64(c[0])-9258) > 20 {
		t.Fatalf("analytic z=2 top = %d, want ≈9258", c[0])
	}
	for i := 1; i < len(c); i++ {
		if c[i] > c[i-1] {
			t.Fatalf("analytic counts not sorted decreasing at %d", i)
		}
	}
}

func TestAnalyticCountsConservationProperty(t *testing.T) {
	f := func(totalRaw uint16, zTenths uint8, nRaw uint8) bool {
		total := int64(totalRaw)
		n := int(nRaw%64) + 1
		z := float64(zTenths%30) / 10
		c := AnalyticCounts(total, z, n)
		var sum int64
		for _, v := range c {
			sum += v
			if v < 0 {
				return false
			}
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerDrawInRange(t *testing.T) {
	s := NewSampler(1.5, 17, 3)
	for i := 0; i < 10000; i++ {
		r := s.Draw()
		if r < 0 || r >= 17 {
			t.Fatalf("Draw() = %d out of [0,17)", r)
		}
	}
}

func TestSamplerMatchesWeights(t *testing.T) {
	n := 10
	z := 1.0
	s := NewSampler(z, n, 99)
	counts := make([]float64, n)
	draws := 200000
	for i := 0; i < draws; i++ {
		counts[s.Draw()]++
	}
	w := Weights(z, n)
	for i := range w {
		got := counts[i] / float64(draws)
		if math.Abs(got-w[i]) > 0.01 {
			t.Fatalf("rank %d frequency %v, want %v", i, got, w[i])
		}
	}
}
