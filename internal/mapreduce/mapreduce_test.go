package mapreduce

import (
	"fmt"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// testRig bundles a small simulated cluster.
type testRig struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	fs  *dfs.DFS
	jt  *JobTracker
}

func newRig(t *testing.T, sched TaskScheduler) *testRig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	return &testRig{eng: eng, cl: cl, fs: dfs.New(cl), jt: NewJobTracker(cl, DefaultConfig(), sched)}
}

var kvSchema = data.NewSchema("K", "V")

// makeFile stores a file with `blocks` blocks of `recsEach` records;
// record values are sequential integers.
func (r *testRig) makeFile(t *testing.T, name string, blocks, recsEach int) *dfs.File {
	t.Helper()
	var srcs []data.Source
	v := int64(0)
	for b := 0; b < blocks; b++ {
		recs := make([]data.Record, recsEach)
		for i := range recs {
			recs[i] = data.NewRecord(kvSchema, []data.Value{data.Int(v), data.Int(v * 10)})
			v++
		}
		srcs = append(srcs, data.NewSliceSource(kvSchema, recs))
	}
	f, err := r.fs.Create(name, srcs, 1)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// countMapper emits every record under a per-record key.
type countMapper struct{}

func (countMapper) Map(rec data.Record, out *Collector) error {
	out.Emit(rec.MustGet("K").String(), rec)
	return nil
}

// dummyKeyMapper emits all records under one key.
type dummyKeyMapper struct{}

func (dummyKeyMapper) Map(rec data.Record, out *Collector) error {
	out.Emit("dummy", rec)
	return nil
}

func TestJobConfTypedAccessors(t *testing.T) {
	c := NewJobConf()
	c.Set("s", "x")
	c.SetInt("i", 42)
	c.SetBool("b", true)
	c.SetFloat("f", 2.5)
	if c.Get("s", "") != "x" || c.GetInt("i", 0) != 42 || !c.GetBool("b", false) || c.GetFloat("f", 0) != 2.5 {
		t.Fatal("round-trip failed")
	}
	if c.Get("missing", "d") != "d" || c.GetInt("missing", 7) != 7 {
		t.Fatal("defaults failed")
	}
	c.Set("badint", "zz")
	if c.GetInt("badint", 3) != 3 {
		t.Fatal("malformed int did not fall back")
	}
	clone := c.Clone()
	clone.Set("s", "y")
	if c.Get("s", "") != "x" {
		t.Fatal("Clone not independent")
	}
	if len(c.Keys()) != 5 {
		t.Fatalf("Keys = %v", c.Keys())
	}
	if !c.Has("s") || c.Has("nope") {
		t.Fatal("Has misreported")
	}
}

func TestStaticJobRunsToCompletion(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 8, 100)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatalf("job did not finish: state=%v", job.State())
	}
	if job.State() != StateSucceeded {
		t.Fatalf("state = %v, failure = %q", job.State(), job.Failure())
	}
	if got := len(job.Output()); got != 800 {
		t.Fatalf("output pairs = %d, want 800", got)
	}
	if job.Counters.MapInputRecords != 800 || job.Counters.CompletedMaps != 8 {
		t.Fatalf("counters = %+v", job.Counters)
	}
	if job.ResponseTime() <= 0 {
		t.Fatalf("response time %v", job.ResponseTime())
	}
	if job.MapDoneTime <= job.SubmitTime || job.FinishTime < job.MapDoneTime {
		t.Fatalf("phase times inconsistent: %v %v %v", job.SubmitTime, job.MapDoneTime, job.FinishTime)
	}
}

func TestReduceGroupsByKey(t *testing.T) {
	r := newRig(t, nil)
	// 4 blocks, each with the same 3 keys (K values 0,1,2 repeat).
	var srcs []data.Source
	for b := 0; b < 4; b++ {
		recs := make([]data.Record, 3)
		for i := range recs {
			recs[i] = data.NewRecord(kvSchema, []data.Value{data.Int(int64(i)), data.Int(int64(b))})
		}
		srcs = append(srcs, data.NewSliceSource(kvSchema, recs))
	}
	f, _ := r.fs.Create("in", srcs, 1)
	type group struct {
		key string
		n   int
	}
	var groups []group
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return countMapper{} },
		NewReducer: func(*JobConf) Reducer {
			return ReducerFunc(func(key string, vals []data.Record, out *Collector) error {
				groups = append(groups, group{key, len(vals)})
				out.Emit(key, vals[0])
				return nil
			})
		},
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish")
	}
	if len(groups) != 3 {
		t.Fatalf("groups = %v, want 3 keys", groups)
	}
	for _, g := range groups {
		if g.n != 4 {
			t.Fatalf("key %s has %d values, want 4", g.key, g.n)
		}
	}
}

func TestMultipleReduces(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 4, 50)
	conf := NewJobConf()
	conf.SetInt(ConfNumReduces, 4)
	job := r.jt.Submit(JobSpec{
		Conf:      conf,
		NewMapper: func(*JobConf) Mapper { return countMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish")
	}
	if job.NumReduces() != 4 {
		t.Fatalf("NumReduces = %d", job.NumReduces())
	}
	if len(job.Output()) != 200 {
		t.Fatalf("output = %d, want 200", len(job.Output()))
	}
}

func TestDynamicJobIncrementalInput(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 10, 20)
	splits := SplitsForFile(f)
	conf := NewJobConf()
	conf.SetBool(ConfDynamicJob, true)
	job := r.jt.Submit(JobSpec{
		Conf:      conf,
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, splits[:2])

	// Drive a while: the job must NOT reach the reduce phase, because
	// input is still open even after both maps finish.
	for i := 0; i < 2000 && r.eng.Step(); i++ {
		if r.eng.Now() > 60 {
			break
		}
	}
	if job.CompletedMaps() != 2 {
		t.Fatalf("completed = %d, want 2", job.CompletedMaps())
	}
	if job.State() != StateMapPhase {
		t.Fatalf("dynamic job advanced to %v before end-of-input", job.State())
	}

	if err := r.jt.AddSplits(job, splits[2:5]); err != nil {
		t.Fatal(err)
	}
	if err := r.jt.EndOfInput(job); err != nil {
		t.Fatal(err)
	}
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish after end-of-input")
	}
	if job.CompletedMaps() != 5 {
		t.Fatalf("completed = %d, want 5", job.CompletedMaps())
	}
	if len(job.Output()) != 100 {
		t.Fatalf("output = %d, want 100 (5 splits x 20)", len(job.Output()))
	}
	// AddSplits after close must fail.
	if err := r.jt.AddSplits(job, splits[5:6]); err == nil {
		t.Fatal("AddSplits after EndOfInput accepted")
	}
	// EndOfInput is idempotent on a done job? (done -> error)
	if err := r.jt.EndOfInput(job); err == nil {
		t.Fatal("EndOfInput on finished job accepted")
	}
}

func TestStaticJobClosedAtSubmit(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 2, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !job.EndOfInputDeclared() {
		t.Fatal("static job input not closed at submit")
	}
	if err := r.jt.AddSplits(job, nil); err == nil {
		t.Fatal("AddSplits on static job accepted")
	}
}

func TestEmptyJobCompletes(t *testing.T) {
	r := newRig(t, nil)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, nil)
	if !RunUntilDone(r.eng, job, 1e5) {
		t.Fatal("empty job did not finish")
	}
	if len(job.Output()) != 0 {
		t.Fatal("empty job produced output")
	}
}

func TestTaskFailureRetries(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 4, 10)
	fails := 0
	r.jt.cfg.FailureInjector = func(j *Job, mt *MapTask) bool {
		// First attempt of task 2 fails once.
		if mt.Index == 2 && mt.Attempts == 1 {
			fails++
			return true
		}
		return false
	}
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish")
	}
	if job.State() != StateSucceeded {
		t.Fatalf("state = %v", job.State())
	}
	if fails != 1 || job.Counters.FailedMapAttempts != 1 {
		t.Fatalf("failed attempts = %d (injected %d)", job.Counters.FailedMapAttempts, fails)
	}
	// Output complete despite the retry.
	if len(job.Output()) != 40 {
		t.Fatalf("output = %d, want 40", len(job.Output()))
	}
}

func TestTaskFailureExhaustsAttempts(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 2, 10)
	r.jt.cfg.FailureInjector = func(j *Job, mt *MapTask) bool { return mt.Index == 0 }
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not reach terminal state")
	}
	if job.State() != StateFailed {
		t.Fatalf("state = %v, want FAILED", job.State())
	}
	if job.Failure() == "" {
		t.Fatal("no failure description")
	}
	if job.Counters.FailedMapAttempts != int64(r.jt.cfg.MaxTaskAttempts) {
		t.Fatalf("attempts = %d, want %d", job.Counters.FailedMapAttempts, r.jt.cfg.MaxTaskAttempts)
	}
}

func TestMapperErrorFailsAttempt(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 1, 5)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper {
			return MapperFunc(func(data.Record, *Collector) error {
				return fmt.Errorf("boom")
			})
		},
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not reach terminal state")
	}
	if job.State() != StateFailed {
		t.Fatalf("state = %v", job.State())
	}
}

func TestReducerErrorFailsJob(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 1, 5)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
		NewReducer: func(*JobConf) Reducer {
			return ReducerFunc(func(string, []data.Record, *Collector) error {
				return fmt.Errorf("reduce boom")
			})
		},
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not reach terminal state")
	}
	if job.State() != StateFailed {
		t.Fatalf("state = %v", job.State())
	}
}

func TestSlotBoundRespected(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 100, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	maxRunning := 0
	for !job.Done() && r.eng.Step() {
		if n := job.RunningMaps(); n > maxRunning {
			maxRunning = n
		}
		cs := r.jt.ClusterStatus()
		if cs.OccupiedMapSlots > cs.TotalMapSlots {
			t.Fatalf("occupied %d > total %d", cs.OccupiedMapSlots, cs.TotalMapSlots)
		}
	}
	if maxRunning > 40 {
		t.Fatalf("running maps peaked at %d, slot bound is 40", maxRunning)
	}
	if maxRunning < 30 {
		t.Fatalf("running maps peaked at %d; cluster underused", maxRunning)
	}
}

func TestLocalityPreferred(t *testing.T) {
	r := newRig(t, nil)
	// 40 blocks spread round-robin over 40 disks: with FIFO and free
	// slots everywhere, nearly every map should be node-local.
	f := r.makeFile(t, "in", 40, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish")
	}
	if job.Counters.LocalMaps < 30 {
		t.Fatalf("local maps = %d / 40; placement or locality preference broken", job.Counters.LocalMaps)
	}
}

func TestReplicationImprovesLocality(t *testing.T) {
	run := func(replication int) int64 {
		r := newRig(t, nil)
		var srcs []data.Source
		for b := 0; b < 12; b++ {
			recs := make([]data.Record, 10)
			for i := range recs {
				recs[i] = data.NewRecord(kvSchema, []data.Value{data.Int(int64(i)), data.Int(0)})
			}
			srcs = append(srcs, data.NewSliceSource(kvSchema, recs))
		}
		f, err := r.fs.Create("in", srcs, replication)
		if err != nil {
			t.Fatal(err)
		}
		job := r.jt.Submit(JobSpec{
			NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
		}, SplitsForFile(f))
		if !RunUntilDone(r.eng, job, 1e6) {
			t.Fatal("job stuck")
		}
		return job.Counters.LocalMaps
	}
	// With 12 blocks on 10 nodes, 3-way replication gives the
	// scheduler three local candidates per block; locality must not be
	// worse than unreplicated.
	if l3, l1 := run(3), run(1); l3 < l1 {
		t.Fatalf("replication reduced locality: %d (r=3) < %d (r=1)", l3, l1)
	}
}

func TestClusterStatusAvailableSlots(t *testing.T) {
	r := newRig(t, nil)
	cs := r.jt.ClusterStatus()
	if cs.TotalMapSlots != 40 || cs.AvailableMapSlots() != 40 {
		t.Fatalf("initial status %+v", cs)
	}
	f := r.makeFile(t, "in", 80, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
	}, SplitsForFile(f))
	// Run until mid-flight.
	for i := 0; i < 5000 && !job.Done(); i++ {
		r.eng.Step()
		cs = r.jt.ClusterStatus()
		if cs.OccupiedMapSlots == cs.TotalMapSlots {
			break
		}
	}
	if cs.AvailableMapSlots() != cs.TotalMapSlots-cs.OccupiedMapSlots {
		t.Fatal("AvailableMapSlots arithmetic wrong")
	}
	RunUntilDone(r.eng, job, 1e6)
}

func TestFIFOOrdersJobs(t *testing.T) {
	r := newRig(t, NewFIFOScheduler())
	f1 := r.makeFile(t, "a", 60, 10)
	f2 := r.makeFile(t, "b", 60, 10)
	j1 := r.jt.Submit(JobSpec{NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} }}, SplitsForFile(f1))
	j2 := r.jt.Submit(JobSpec{NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} }}, SplitsForFile(f2))
	if !RunAllUntilDone(r.eng, []*Job{j1, j2}, 1e6) {
		t.Fatal("jobs did not finish")
	}
	if j1.FinishTime > j2.FinishTime {
		t.Fatalf("FIFO: job1 finished at %v after job2 at %v", j1.FinishTime, j2.FinishTime)
	}
}

func TestFairSharesBetweenUsers(t *testing.T) {
	r := newRig(t, NewFairScheduler(0))
	mk := func(name, user string) *Job {
		f := r.makeFile(t, name, 80, 10)
		conf := NewJobConf()
		conf.Set(ConfUser, user)
		return r.jt.Submit(JobSpec{Conf: conf, NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} }},
			SplitsForFile(f))
	}
	j1 := mk("a", "alice")
	j2 := mk("b", "bob")
	// Sample running-map counts mid-flight: both users should hold
	// slots concurrently (unlike FIFO, where job 2 would starve).
	bothRunning := false
	for !j1.Done() || !j2.Done() {
		if !r.eng.Step() {
			break
		}
		if j1.RunningMaps() > 5 && j2.RunningMaps() > 5 {
			bothRunning = true
		}
		if r.eng.Now() > 1e6 {
			break
		}
	}
	if !bothRunning {
		t.Fatal("fair scheduler never ran both users' jobs concurrently")
	}
}

func TestSlotOccupancyIntegralGrows(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 10, 10)
	job := r.jt.Submit(JobSpec{NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} }}, SplitsForFile(f))
	RunUntilDone(r.eng, job, 1e6)
	if r.jt.MapSlotOccupancyIntegral() <= 0 {
		t.Fatal("occupancy integral did not grow")
	}
	local, nonLocal := r.jt.LocalityStats()
	if local+nonLocal != 10 {
		t.Fatalf("locality stats %d+%d != 10", local, nonLocal)
	}
}

func TestCombinerShrinksShuffle(t *testing.T) {
	r := newRig(t, nil)
	// 8 blocks of 50 records, every record keyed by K%3: without a
	// combiner the reduce sees 400 pairs; with one it sees <= 8*3.
	var srcs []data.Source
	for b := 0; b < 8; b++ {
		recs := make([]data.Record, 50)
		for i := range recs {
			recs[i] = data.NewRecord(kvSchema, []data.Value{data.Int(int64(i % 3)), data.Int(1)})
		}
		srcs = append(srcs, data.NewSliceSource(kvSchema, recs))
	}
	f, _ := r.fs.Create("in", srcs, 1)
	sumReducer := func(*JobConf) Reducer {
		return ReducerFunc(func(key string, vals []data.Record, out *Collector) error {
			var sum int64
			for _, v := range vals {
				sum += v.MustGet("V").AsInt()
			}
			out.Emit(key, data.NewRecord(kvSchema, []data.Value{data.Int(0), data.Int(sum)}))
			return nil
		})
	}
	job := r.jt.Submit(JobSpec{
		NewMapper:   func(*JobConf) Mapper { return countMapper{} },
		NewCombiner: sumReducer,
		NewReducer:  sumReducer,
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job stuck")
	}
	// Each block contributes at most 3 combined pairs.
	if job.Counters.ReduceInputRecs > 24 {
		t.Fatalf("reduce input %d pairs; combiner did not run", job.Counters.ReduceInputRecs)
	}
	// The final sums are correct: keys 0..2; key 0 appears 17 times per
	// block (i%3==0 for i in 0..49 -> 17), keys 1,2 appear 17 and 16.
	sums := map[string]int64{}
	for _, kv := range job.Output() {
		sums[kv.Key] = kv.Value.MustGet("V").AsInt()
	}
	if sums["0"] != 8*17 || sums["1"] != 8*17 || sums["2"] != 8*16 {
		t.Fatalf("sums = %v", sums)
	}
}

func TestCombinerErrorFailsAttempt(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 1, 5)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
		NewCombiner: func(*JobConf) Reducer {
			return ReducerFunc(func(string, []data.Record, *Collector) error {
				return fmt.Errorf("combiner boom")
			})
		},
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not reach terminal state")
	}
	if job.State() != StateFailed {
		t.Fatalf("state = %v", job.State())
	}
}

func TestRetire(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 4, 10)
	spec := JobSpec{NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} }}
	j1 := r.jt.Submit(spec, SplitsForFile(f))
	if err := r.jt.Retire(j1); err == nil {
		t.Fatal("retired a running job")
	}
	RunUntilDone(r.eng, j1, 1e6)
	if err := r.jt.Retire(j1); err != nil {
		t.Fatal(err)
	}
	if len(r.jt.Jobs()) != 0 {
		t.Fatalf("tracker still lists %d jobs", len(r.jt.Jobs()))
	}
	if j1.Output() != nil {
		t.Fatal("output not released")
	}
	// Tracker remains fully usable.
	f2 := r.makeFile(t, "in2", 4, 10)
	j2 := r.jt.Submit(spec, SplitsForFile(f2))
	if !RunUntilDone(r.eng, j2, 1e6) {
		t.Fatal("post-retire job did not finish")
	}
	if len(j2.Output()) != 40 {
		t.Fatalf("output = %d", len(j2.Output()))
	}
}

func TestRetireUnderFairScheduler(t *testing.T) {
	r := newRig(t, NewFairScheduler(5))
	f := r.makeFile(t, "in", 4, 10)
	job := r.jt.Submit(JobSpec{NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} }}, SplitsForFile(f))
	RunUntilDone(r.eng, job, 1e6)
	if err := r.jt.Retire(job); err != nil {
		t.Fatal(err)
	}
	fs := r.jt.Scheduler().(*FairScheduler)
	if len(fs.state) != 0 {
		t.Fatalf("fair scheduler retains %d job states", len(fs.state))
	}
}

func TestSplitMapperPath(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 3, 10)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return &splitCounter{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish")
	}
	// splitCounter emits exactly one pair per split.
	if len(job.Output()) != 3 {
		t.Fatalf("output = %d, want 3", len(job.Output()))
	}
}

// splitCounter is a SplitMapper emitting one summary pair per split.
type splitCounter struct{}

func (s *splitCounter) Map(rec data.Record, out *Collector) error {
	panic("Map must not be called when MapSplit is implemented")
}

func (s *splitCounter) MapSplit(ctx *TaskContext, out *Collector) error {
	n := int64(0)
	ctx.Source.Scan(func(data.Record) bool { n++; return true })
	out.Emit("count", data.NewRecord(data.NewSchema("N"), []data.Value{data.Int(n)}))
	return nil
}

func TestSetupCleanupMapper(t *testing.T) {
	r := newRig(t, nil)
	f := r.makeFile(t, "in", 2, 5)
	job := r.jt.Submit(JobSpec{
		NewMapper: func(*JobConf) Mapper { return &lifecycleMapper{} },
	}, SplitsForFile(f))
	if !RunUntilDone(r.eng, job, 1e6) {
		t.Fatal("job did not finish")
	}
	// Per task: 5 record pairs + 1 cleanup marker; 2 tasks => 12.
	if len(job.Output()) != 12 {
		t.Fatalf("output = %d, want 12", len(job.Output()))
	}
}

type lifecycleMapper struct{ setup bool }

var markerSchema = data.NewSchema("M")

func marker(s string) data.Record {
	return data.NewRecord(markerSchema, []data.Value{data.Str(s)})
}

func (m *lifecycleMapper) Setup(ctx *TaskContext) error {
	m.setup = true
	return nil
}

func (m *lifecycleMapper) Map(rec data.Record, out *Collector) error {
	if !m.setup {
		return fmt.Errorf("Map before Setup")
	}
	out.Emit("k", rec)
	return nil
}

func (m *lifecycleMapper) Cleanup(out *Collector) error {
	out.Emit("k", marker("cleanup"))
	return nil
}
