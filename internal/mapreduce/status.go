package mapreduce

// JobStatus is the snapshot the JobClient retrieves at each evaluation
// interval and forwards to the Input Provider (§III-A: "statistics
// about the output produced by finished mappers [and] the status of the
// job").
type JobStatus struct {
	JobID int
	State JobState
	// ScheduledMaps is the number of splits handed to the job so far.
	ScheduledMaps int
	CompletedMaps int
	RunningMaps   int
	PendingMaps   int
	// MapInputRecords is the number of input records processed by
	// finished map tasks.
	MapInputRecords int64
	// MapOutputRecords is the number of pairs emitted by finished map
	// tasks — for a sampling job, the matches found so far.
	MapOutputRecords int64
	// ScanBlocksRead / ScanBlocksSkip count statistics sub-blocks read
	// and zone-map-skipped by the job's map attempts so far (the
	// pay-for-what-you-read input path; both zero-skip under full).
	ScanBlocksRead int64
	ScanBlocksSkip int64
	// UserCounters snapshots the job's user-defined counters (§IV: the
	// job status "includes additional statistics"); nil when none.
	UserCounters map[string]int64
	SubmitTime   float64
	// Now is the virtual time of the snapshot.
	Now float64
}

// ClusterStatus summarises cluster capacity and load (§III-A: "the
// current load and the availability of map slots"). TS and AS in the
// paper's grab-limit formulas are TotalMapSlots and AvailableMapSlots.
type ClusterStatus struct {
	TotalMapSlots    int
	OccupiedMapSlots int
	TotalReduceSlots int
	OccupiedReduces  int
	RunningJobs      int
	QueuedMapTasks   int
	// QueuedReduceTasks counts reduce partitions whose jobs have entered
	// the reduce phase but which are not yet running on a slot.
	QueuedReduceTasks int
}

// AvailableMapSlots returns total minus occupied ("AS").
func (c ClusterStatus) AvailableMapSlots() int {
	return c.TotalMapSlots - c.OccupiedMapSlots
}
