package mapreduce

import (
	"fmt"
	"math/rand"
	"testing"

	"dynamicmr/internal/cluster"
	"dynamicmr/internal/data"
	"dynamicmr/internal/dfs"
	"dynamicmr/internal/sim"
)

// TestRandomJobGeometryProperty runs jobs with randomised block
// counts, record counts, reduce counts and injected failures and
// checks the invariants that must hold for every completed job:
// output cardinality, counter consistency, slot conservation, and
// phase-time ordering.
func TestRandomJobGeometryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 25; trial++ {
		blocks := 1 + rng.Intn(60)
		recsEach := 1 + rng.Intn(40)
		reduces := 1 + rng.Intn(4)
		failTask := -1
		if rng.Intn(2) == 0 {
			failTask = rng.Intn(blocks)
		}

		eng := sim.NewEngine()
		cl := cluster.New(eng, cluster.PaperConfig())
		fs := dfs.New(cl)
		schema := data.NewSchema("V")
		var srcs []data.Source
		total := 0
		for b := 0; b < blocks; b++ {
			recs := make([]data.Record, recsEach)
			for i := range recs {
				recs[i] = data.NewRecord(schema, []data.Value{data.Int(int64(total))})
				total++
			}
			srcs = append(srcs, data.NewSliceSource(schema, recs))
		}
		f, err := fs.Create("in", srcs, 1+rng.Intn(2))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		if failTask >= 0 {
			cfg.FailureInjector = func(j *Job, mt *MapTask) bool {
				return mt.Index == failTask && mt.Attempts == 1
			}
		}
		var sched TaskScheduler
		if rng.Intn(2) == 0 {
			sched = NewFairScheduler(float64(rng.Intn(6)))
		}
		jt := NewJobTracker(cl, cfg, sched)
		conf := NewJobConf()
		conf.SetInt(ConfNumReduces, int64(reduces))
		job := jt.Submit(JobSpec{
			Conf: conf,
			NewMapper: func(*JobConf) Mapper {
				return MapperFunc(func(rec data.Record, out *Collector) error {
					out.Emit(rec.MustGet("V").String(), rec)
					return nil
				})
			},
		}, SplitsForFile(f))

		if !RunUntilDone(eng, job, 1e7) {
			t.Fatalf("trial %d: job stuck (blocks=%d reduces=%d)", trial, blocks, reduces)
		}
		if job.State() != StateSucceeded {
			t.Fatalf("trial %d: state %v (%s)", trial, job.State(), job.Failure())
		}
		if got := len(job.Output()); got != total {
			t.Fatalf("trial %d: output %d, want %d", trial, got, total)
		}
		c := job.Counters
		if c.MapInputRecords != int64(total) {
			t.Fatalf("trial %d: MapInputRecords %d, want %d", trial, c.MapInputRecords, total)
		}
		if c.CompletedMaps != int64(blocks) {
			t.Fatalf("trial %d: CompletedMaps %d, want %d", trial, c.CompletedMaps, blocks)
		}
		if c.LocalMaps+c.NonLocalMaps != int64(blocks) {
			t.Fatalf("trial %d: locality counters %d+%d != %d", trial, c.LocalMaps, c.NonLocalMaps, blocks)
		}
		if failTask >= 0 && c.FailedMapAttempts != 1 {
			t.Fatalf("trial %d: FailedMapAttempts %d, want 1", trial, c.FailedMapAttempts)
		}
		if job.MapDoneTime < job.SubmitTime || job.FinishTime < job.MapDoneTime {
			t.Fatalf("trial %d: phase times out of order", trial)
		}
		cs := jt.ClusterStatus()
		if cs.OccupiedMapSlots != 0 || cs.OccupiedReduces != 0 {
			t.Fatalf("trial %d: slots leaked: %+v", trial, cs)
		}
	}
}

// TestResidentReuseProperty checks, over randomised job geometries,
// that resident-part reuse never aliases memory another job mutates.
// Each trial replays the same submission sequence on a baseline rig
// and a memory-mode rig: two keyed jobs (store, then serve resident),
// a burst of keyless churn jobs (these recycle collector buffers —
// the aliasing hazard), then a final keyed job served from parts that
// survived the churn. Every position must be byte-identical across
// modes, and the store must end with zero live part references.
func TestResidentReuseProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		blocks := 1 + rng.Intn(20)
		recsEach := 1 + rng.Intn(30)
		reduces := 1 + rng.Intn(4)
		churn := 1 + rng.Intn(3)
		srcs := makeSrcs(blocks, recsEach)

		keyed := func() JobSpec {
			conf := NewJobConf()
			conf.SetInt(ConfNumReduces, int64(reduces))
			return JobSpec{
				Conf:      conf,
				NewMapper: func(*JobConf) Mapper { return countMapper{} },
				MemoKey:   "prop|keyed",
			}
		}
		keyless := func() JobSpec {
			return JobSpec{
				Conf:      NewJobConf(),
				NewMapper: func(*JobConf) Mapper { return dummyKeyMapper{} },
			}
		}

		run := func(store *ResidentStore) []*Job {
			var r *testRig
			if store != nil {
				r = newResidentRig(t, store)
			} else {
				r = newRig(t, nil)
			}
			f, err := r.fs.Create("in", srcs, 1)
			if err != nil {
				t.Fatal(err)
			}
			var jobs []*Job
			jobs = append(jobs, runOK(t, r, keyed(), f), runOK(t, r, keyed(), f))
			for i := 0; i < churn; i++ {
				jobs = append(jobs, runOK(t, r, keyless(), f))
			}
			return append(jobs, runOK(t, r, keyed(), f))
		}

		base := run(nil)
		store := NewResidentStore(nil, 0)
		mem := run(store)
		st := store.Stats()
		if st.Hits == 0 {
			t.Fatalf("trial %d: no resident hits (blocks=%d reduces=%d)", trial, blocks, reduces)
		}
		if st.LiveRefs != 0 {
			t.Fatalf("trial %d: %d live part references leaked", trial, st.LiveRefs)
		}
		for i := range base {
			mustMatch(t, fmt.Sprintf("trial %d job %d", trial, i+1), base[i], mem[i])
		}
	}
}

// TestConcurrentJobsProperty checks cross-job isolation: several jobs
// with distinct data run together and each gets exactly its own
// records back.
func TestConcurrentJobsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.PaperConfig())
	fs := dfs.New(cl)
	jt := NewJobTracker(cl, DefaultConfig(), NewFairScheduler(2))
	schema := data.NewSchema("JOB", "V")

	const jobs = 5
	var all []*Job
	for j := 0; j < jobs; j++ {
		blocks := 2 + rng.Intn(10)
		recs := 1 + rng.Intn(20)
		var srcs []data.Source
		for b := 0; b < blocks; b++ {
			rr := make([]data.Record, recs)
			for i := range rr {
				rr[i] = data.NewRecord(schema, []data.Value{data.Int(int64(j)), data.Int(int64(i))})
			}
			srcs = append(srcs, data.NewSliceSource(schema, rr))
		}
		f, err := fs.Create(string(rune('a'+j)), srcs, 1)
		if err != nil {
			t.Fatal(err)
		}
		conf := NewJobConf()
		conf.Set(ConfUser, string(rune('a'+j)))
		job := jt.Submit(JobSpec{
			Conf: conf,
			NewMapper: func(*JobConf) Mapper {
				return MapperFunc(func(rec data.Record, out *Collector) error {
					out.Emit("k", rec)
					return nil
				})
			},
		}, SplitsForFile(f))
		all = append(all, job)
	}
	if !RunAllUntilDone(eng, all, 1e7) {
		t.Fatal("jobs stuck")
	}
	for j, job := range all {
		want := job.Counters.MapInputRecords
		if int64(len(job.Output())) != want {
			t.Fatalf("job %d: output %d, want %d", j, len(job.Output()), want)
		}
		for _, kv := range job.Output() {
			if kv.Value.MustGet("JOB").AsInt() != int64(j) {
				t.Fatalf("job %d received record of job %d", j, kv.Value.MustGet("JOB").AsInt())
			}
		}
	}
}
